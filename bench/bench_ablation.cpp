//===- bench_ablation.cpp - Per-feature ablation study ------------*- C++ -*-===//
///
/// \file
/// Extension of the paper's §4 necessity argument from examples to the full
/// benchmark suite: rebuild the PS-PDG with each feature removed and
/// measure what the planner loses — both in parallelization options
/// (Fig. 13 metric) and in ideal-machine critical path (Fig. 14 metric).
/// This quantifies each feature's contribution per benchmark.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "emulator/CriticalPath.h"
#include "parallel/PlanEnumerator.h"
#include "profiling/DepProfiler.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace psc;
using namespace psc::bench;

namespace {

double criticalPathWith(const Module &M, const FeatureSet &F) {
  CriticalPathModel Model(M, AbstractionKind::PSPDG, F);
  CriticalPathEvaluator Eval(Model);
  Interpreter I(M);
  I.addObserver(&Eval);
  I.run();
  return Eval.criticalPath();
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--json=", 7) == 0)
      JsonPath = argv[I] + 7;
    else {
      std::fprintf(stderr, "usage: bench_ablation [--json=PATH]\n");
      return 2;
    }
  }

  struct Ablation {
    const char *Name;
    FeatureSet F;
  };
  const std::vector<Ablation> Ablations = {
      {"full", FeatureSet::full()},
      {"-HN+UE", FeatureSet::withoutHierarchicalNodes()},
      {"-NT", FeatureSet::withoutNodeTraits()},
      {"-C", FeatureSet::withoutContexts()},
      {"-DSDE", FeatureSet::withoutDataSelectors()},
      {"-PSV", FeatureSet::withoutParallelVariables()},
  };

  std::printf("=== Ablation: PS-PDG planner power per removed feature ===\n");
  std::printf("(options = Fig. 13 metric; CP = Fig. 14 metric, normalized\n"
              " to the full PS-PDG's critical path — higher is worse)\n\n");

  std::printf("%-6s |", "Bench");
  for (const Ablation &A : Ablations)
    std::printf(" %13s", A.Name);
  std::printf("\n");

  std::vector<BenchRecord> Records;
  for (const Workload &W : nasWorkloads()) {
    PreparedWorkload P = prepare(W);

    std::printf("%-6s |", W.Name.c_str());
    std::vector<uint64_t> Options;
    std::vector<double> CPs;
    for (const Ablation &A : Ablations) {
      Options.push_back(
          enumerateOptions(*P.M, AbstractionKind::PSPDG, {}, &P.Coverage, A.F)
              .Total);
      CPs.push_back(criticalPathWith(*P.M, A.F));
    }
    for (size_t K = 0; K < Ablations.size(); ++K) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%llu/%.2f",
                    (unsigned long long)Options[K], CPs[K] / CPs[0]);
      std::printf(" %13s", Buf);
      Records.push_back({W.Name,
                         Ablations[K].Name,
                         1,
                         0.0,
                         0.0,
                         {{"options", static_cast<double>(Options[K])},
                          {"critical_path", CPs[K]},
                          {"cp_ratio_vs_full", CPs[K] / CPs[0]}}});
    }
    std::printf("\n");
  }

  // --- Speculation-stage ablation -------------------------------------------
  //
  // The same power metric over the oracle stack's speculative downgrade
  // stages: a profile trained in-process on each workload's own run, then
  // the Fig. 13 option count and DOALL-loop count under (a) the sound
  // stack, (b) memory speculation only, (c) memory + value speculation.
  // The deltas quantify what each speculation pillar buys the planner.
  struct SpecMode {
    const char *Name;
    std::vector<std::string> Oracles; ///< Empty = default per config.
  };
  const std::vector<SpecMode> SpecModes = {
      {"sound", {}},
      {"+spec", {"ssa", "control", "io", "opaque", "alias", "affine",
                 "spec"}},
      {"+spec+valuespec", {}}, // profile with no names = both stages
  };

  std::printf("\n=== Ablation: speculation stages (trained per workload) "
              "===\n\n");
  std::printf("%-6s |", "Bench");
  for (const SpecMode &S : SpecModes)
    std::printf(" %20s", S.Name);
  std::printf("   (options / DOALL loops)\n");

  for (const Workload &W : extendedWorkloads()) {
    PreparedWorkload P = prepare(W);
    // In-process training run (the profile→speculate workflow).
    ModuleAnalyses MA(*P.M);
    DepProfiler Prof(MA);
    Interpreter I(*P.M);
    I.addObserver(&Prof);
    I.run();
    DepProfile Profile = Prof.takeProfile();

    std::printf("%-6s |", W.Name.c_str());
    for (const SpecMode &S : SpecModes) {
      DepOracleConfig Cfg;
      if (std::strcmp(S.Name, "sound") != 0)
        Cfg = DepOracleConfig(S.Oracles, &Profile);
      OptionCount C = enumerateOptions(*P.M, AbstractionKind::PSPDG, {},
                                       &P.Coverage, FeatureSet(), Cfg);
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%llu/%u",
                    (unsigned long long)C.Total, C.DOALLLoops);
      std::printf(" %20s", Buf);
      Records.push_back({W.Name,
                         std::string("spec:") + S.Name,
                         1,
                         0.0,
                         0.0,
                         {{"options", static_cast<double>(C.Total)},
                          {"doall_loops", static_cast<double>(C.DOALLLoops)},
                          {"loops", static_cast<double>(C.LoopsConsidered)}}});
    }
    std::printf("\n");
  }

  if (!JsonPath.empty() && !writeBenchJson(JsonPath, "ablation", Records))
    return 1;

  std::printf("\nReading: 'options/CP-ratio'. A CP ratio above 1.00 means\n"
              "removing that feature lengthened the best plan's critical\n"
              "path — the per-benchmark cost of each PS-PDG extension.\n"
              "The speculation table counts options and DOALL-able loops\n"
              "under each downgrade-stage subset.\n");
  return 0;
}
