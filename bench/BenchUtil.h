//===- BenchUtil.h - Shared helpers for the benchmark harness ----*- C++ -*-===//
///
/// \file
/// Compiles a workload, profiles its loop coverage, and provides table
/// printing for the experiment reproductions.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_BENCH_BENCHUTIL_H
#define PSPDG_BENCH_BENCHUTIL_H

#include "emulator/Coverage.h"
#include "frontend/Frontend.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <memory>

namespace psc::bench {

/// A compiled + profiled workload.
struct PreparedWorkload {
  const Workload *W = nullptr;
  std::unique_ptr<Module> M;
  CoverageMap Coverage;
  uint64_t DynamicInstructions = 0;
};

inline PreparedWorkload prepare(const Workload &W) {
  PreparedWorkload P;
  P.W = &W;
  P.M = compileOrDie(W.Source, W.Name);
  ModuleAnalyses MA(*P.M);
  CoverageProfiler Cov(MA);
  Interpreter I(*P.M);
  I.addObserver(&Cov);
  RunResult R = I.run();
  P.Coverage = Cov.coverage();
  P.DynamicInstructions = R.InstructionsExecuted;
  return P;
}

} // namespace psc::bench

#endif // PSPDG_BENCH_BENCHUTIL_H
