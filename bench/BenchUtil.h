//===- BenchUtil.h - Shared helpers for the benchmark harness ----*- C++ -*-===//
///
/// \file
/// Compiles a workload, profiles its loop coverage, provides table printing
/// for the experiment reproductions, and writes the machine-readable
/// BENCH_*.json perf-trajectory records (see scripts/run_benches.sh).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_BENCH_BENCHUTIL_H
#define PSPDG_BENCH_BENCHUTIL_H

#include "emulator/Coverage.h"
#include "frontend/Frontend.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace psc::bench {

/// One perf-trajectory record: a (workload, engine, threads) measurement.
struct BenchRecord {
  std::string Workload; ///< "IS", "CG", ... or a micro-benchmark name.
  std::string Engine;   ///< The configuration axis: "walker", "bytecode",
                        ///< an abstraction ("pspdg"), or an ablation tag.
  unsigned Threads = 1;
  double NsPerIter = 0.0;    ///< Nanoseconds per full run / iteration.
  double InstrsPerSec = 0.0; ///< Interpreted instructions per second (0 if
                             ///< the record measures something else).
  /// Bench-specific metrics appended verbatim as extra JSON keys (e.g. the
  /// Fig. 13 option counts or the Fig. 14 critical paths). Keys must be
  /// stable across runs so successive baselines diff cleanly.
  std::vector<std::pair<std::string, double>> Extra;
};

/// Writes the records as the repo's tracked BENCH_<name>.json format:
/// one top-level object with a stable schema so successive baselines diff
/// cleanly. Returns false (with a message on stderr) if the file cannot be
/// written.
inline bool writeBenchJson(const std::string &Path, const std::string &Bench,
                           const std::vector<BenchRecord> &Records) {
  std::ostringstream OS;
  OS << "{\n  \"bench\": \"" << Bench << "\",\n  \"records\": [\n";
  for (size_t I = 0; I < Records.size(); ++I) {
    const BenchRecord &R = Records[I];
    OS << "    {\"workload\": \"" << R.Workload << "\", \"engine\": \""
       << R.Engine << "\", \"threads\": " << R.Threads
       << ", \"ns_per_iter\": " << static_cast<long long>(R.NsPerIter)
       << ", \"instrs_per_s\": " << static_cast<long long>(R.InstrsPerSec);
    for (const auto &[Key, Value] : R.Extra) {
      OS << ", \"" << Key << "\": ";
      // Integral metrics (counts) print exactly; ratios keep two decimals.
      if (Value == static_cast<double>(static_cast<long long>(Value)))
        OS << static_cast<long long>(Value);
      else {
        char Buf[32];
        std::snprintf(Buf, sizeof(Buf), "%.4f", Value);
        OS << Buf;
      }
    }
    OS << "}" << (I + 1 < Records.size() ? "," : "") << "\n";
  }
  OS << "  ]\n}\n";
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "bench: cannot write '%s'\n", Path.c_str());
    return false;
  }
  Out << OS.str();
  return true;
}

/// A compiled + profiled workload.
struct PreparedWorkload {
  const Workload *W = nullptr;
  std::unique_ptr<Module> M;
  CoverageMap Coverage;
  uint64_t DynamicInstructions = 0;
};

inline PreparedWorkload prepare(const Workload &W) {
  PreparedWorkload P;
  P.W = &W;
  P.M = compileOrDie(W.Source, W.Name);
  ModuleAnalyses MA(*P.M);
  CoverageProfiler Cov(MA);
  Interpreter I(*P.M);
  I.addObserver(&Cov);
  RunResult R = I.run();
  P.Coverage = Cov.coverage();
  P.DynamicInstructions = R.InstructionsExecuted;
  return P;
}

} // namespace psc::bench

#endif // PSPDG_BENCH_BENCHUTIL_H
