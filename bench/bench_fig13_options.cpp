//===- bench_fig13_options.cpp - Paper Fig. 13 reproduction -------*- C++ -*-===//
///
/// \file
/// Regenerates Fig. 13: "Number of parallelization options available to the
/// compiler", per NAS-like benchmark, for the four abstractions (OpenMP,
/// PDG, J&K, PS-PDG), on the paper's 56-core / 8-chunk-size machine model,
/// counting loops with ≥1% runtime coverage.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "parallel/PlanEnumerator.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace psc;
using namespace psc::bench;

int main(int argc, char **argv) {
  std::string JsonPath;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--json=", 7) == 0)
      JsonPath = argv[I] + 7;
    else {
      std::fprintf(stderr, "usage: bench_fig13_options [--json=PATH]\n");
      return 2;
    }
  }

  std::printf("=== Fig. 13: Total parallelization options considered ===\n");
  std::printf("(56 cores x 8 chunk sizes; loops with >=1%% coverage)\n\n");
  std::printf("%-6s %10s %10s %10s %10s   %s\n", "Bench", "OpenMP", "PDG",
              "J&K", "PS-PDG", "loops(PS-PDG: total/DOALL)");

  EnumeratorConfig Cfg; // paper defaults
  uint64_t Sum[4] = {0, 0, 0, 0};
  std::vector<BenchRecord> Records;

  for (const Workload &W : nasWorkloads()) {
    PreparedWorkload P = prepare(W);
    const AbstractionKind Kinds[] = {AbstractionKind::OpenMP,
                                     AbstractionKind::PDG, AbstractionKind::JK,
                                     AbstractionKind::PSPDG};
    uint64_t Totals[4];
    OptionCount Last;
    for (int K = 0; K < 4; ++K) {
      OptionCount R = enumerateOptions(*P.M, Kinds[K], Cfg, &P.Coverage);
      Totals[K] = R.Total;
      Sum[K] += R.Total;
      Records.push_back({W.Name,
                         abstractionName(Kinds[K]),
                         1,
                         0.0,
                         0.0,
                         {{"options", static_cast<double>(R.Total)},
                          {"loops_considered",
                           static_cast<double>(R.LoopsConsidered)},
                          {"doall_loops", static_cast<double>(R.DOALLLoops)}}});
      if (K == 3)
        Last = std::move(R);
    }
    std::printf("%-6s %10llu %10llu %10llu %10llu   %u/%u\n", W.Name.c_str(),
                (unsigned long long)Totals[0], (unsigned long long)Totals[1],
                (unsigned long long)Totals[2], (unsigned long long)Totals[3],
                Last.LoopsConsidered, Last.DOALLLoops);
  }
  std::printf("%-6s %10llu %10llu %10llu %10llu\n", "TOTAL",
              (unsigned long long)Sum[0], (unsigned long long)Sum[1],
              (unsigned long long)Sum[2], (unsigned long long)Sum[3]);

  if (!JsonPath.empty() && !writeBenchJson(JsonPath, "fig13_options", Records))
    return 1;

  std::printf("\nExpected shape (paper Fig. 13): the PS-PDG gives the\n"
              "compiler the largest option space; OpenMP (the programmer's\n"
              "static plan) the smallest; J&K sits between PDG and PS-PDG.\n");
  return 0;
}
