//===- bench_runtime.cpp - Engine throughput + measured vs predicted -----===//
///
/// \file
/// The runtime perf harness, two experiments per NAS-like workload:
///
///   1. Engine throughput — sequential interpreted-instructions/s of the
///      tree-walking reference engine vs the pre-decoded bytecode engine
///      (best of N reps each; both runs must produce identical output).
///   2. Predict→execute gap — the PS-PDG's best plan on real threads
///      (ParallelRuntime, bytecode engine) against the plan-constrained
///      ideal-machine prediction of §6.3 (critical-path model, Fig. 14).
///
///   bench_runtime [threads] [abs] [--json=PATH] [--check-faster]
///                 [--check-parallel] [--grain=auto|off|N] [--reps=N]
///     threads          — worker threads (default: hardware concurrency,
///                        max 8)
///     abs              — pdg | jk | pspdg (default pspdg)
///     --json=PATH      — also write BENCH_runtime.json perf records
///                        (workload, engine, threads, ns/iter, instrs/s,
///                        and par_speedup on the parallel records)
///     --check-faster   — exit non-zero if the bytecode engine is slower
///                        than the walker on any workload (CI perf gate)
///     --check-parallel — exit non-zero if the parallel run is slower
///                        than the sequential bytecode run beyond a 10%%
///                        noise margin on any workload (CI perf gate;
///                        needs --grain=auto so the plan compiler demotes
///                        loops below the machine's parallel grain)
///     --grain=MODE     — grain pass: auto (default; cost-model demotion
///                        + chunk sizing for this machine), off, or a
///                        forced DOALL chunk size N
///     --reps=N         — timing repetitions per measurement (default 3)
///
/// The prediction assumes unlimited cores and free communication, so the
/// measured column is bounded by the machine's core count while the
/// predicted column is not; the point of the table is that both move in
/// the same direction per workload, and that measured > 1 on the DOALL
/// workloads when real cores are available.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "emulator/CriticalPath.h"
#include "runtime/ParallelRuntime.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

using namespace psc;
using namespace psc::bench;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0)
      .count();
}

AbstractionKind parseAbs(const std::string &S) {
  if (S == "pdg")
    return AbstractionKind::PDG;
  if (S == "jk")
    return AbstractionKind::JK;
  return AbstractionKind::PSPDG;
}

struct SeqMeasurement {
  double BestMs = 0.0;
  uint64_t Instrs = 0;
  RunResult R;
};

/// Best-of-N sequential run under one engine. The decode cost of the
/// bytecode engine is included (each rep constructs a fresh Interpreter).
SeqMeasurement measureSeq(const Module &M, ExecEngineKind Engine,
                          unsigned Reps) {
  SeqMeasurement Out;
  Out.BestMs = 1e300;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    Interpreter I(M);
    I.setEngine(Engine);
    Clock::time_point T0 = Clock::now();
    RunResult R = I.run();
    double Ms = msSince(T0);
    if (Ms < Out.BestMs) {
      Out.BestMs = Ms;
      Out.Instrs = R.InstructionsExecuted;
      Out.R = std::move(R);
    }
  }
  return Out;
}

double instrsPerSec(uint64_t Instrs, double Ms) {
  return Ms > 0 ? static_cast<double>(Instrs) / (Ms * 1e-3) : 0.0;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Threads = std::min(8u, std::thread::hardware_concurrency());
  if (Threads == 0)
    Threads = 4;
  AbstractionKind Abs = AbstractionKind::PSPDG;
  std::string JsonPath;
  bool CheckFaster = false;
  bool CheckParallel = false;
  std::string GrainMode = "auto";
  unsigned Reps = 3;

  int Positional = 0;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--json=", 0) == 0) {
      JsonPath = A.substr(7);
    } else if (A == "--check-faster") {
      CheckFaster = true;
    } else if (A == "--check-parallel") {
      CheckParallel = true;
    } else if (A.rfind("--grain=", 0) == 0) {
      GrainMode = A.substr(8);
    } else if (A.rfind("--reps=", 0) == 0) {
      Reps = static_cast<unsigned>(std::max(1, std::atoi(A.c_str() + 7)));
    } else if (Positional == 0) {
      Threads = static_cast<unsigned>(std::max(1, std::atoi(A.c_str())));
      ++Positional;
    } else {
      Abs = parseAbs(A);
      ++Positional;
    }
  }

  std::printf("Execution engines + parallel plan execution "
              "(%s plan, %u threads, best of %u reps)\n",
              abstractionName(Abs), Threads, Reps);
  std::printf("%-4s %9s %9s %7s %8s %9s %10s %6s  %s\n", "WL", "walk(ms)",
              "byte(ms)", "engine", "par(ms)", "measured", "predicted",
              "match", "schedules");
  std::printf("---------------------------------------------------------------"
              "-----------------\n");

  std::vector<BenchRecord> Records;
  unsigned SlowerCount = 0;
  std::string SlowerList;
  unsigned ParSlowerCount = 0;
  std::string ParSlowerList;

  for (const Workload &W : nasWorkloads()) {
    std::unique_ptr<Module> M = compileOrDie(W.Source, W.Name);

    // Experiment 1: engine throughput on the sequential semantics.
    SeqMeasurement Walk = measureSeq(*M, ExecEngineKind::Walker, Reps);
    SeqMeasurement Byte = measureSeq(*M, ExecEngineKind::Bytecode, Reps);
    bool SeqMatch = Walk.R.Output == Byte.R.Output &&
                    Walk.R.ExitValue == Byte.R.ExitValue &&
                    Walk.Instrs == Byte.Instrs;
    if (Byte.BestMs > Walk.BestMs) {
      ++SlowerCount;
      SlowerList += (SlowerList.empty() ? "" : ", ") + W.Name;
    }

    // Experiment 2: the plan on real threads (bytecode engine). The
    // grain pass sizes the plan for THIS machine: loops whose modeled
    // parallel time cannot beat sequential demote, so the parallel run is
    // never slower than sequential by more than scheduling noise.
    GrainConfig Grain;
    if (GrainMode == "auto") {
      Grain.Enabled = true;
      unsigned HW = std::thread::hardware_concurrency();
      Grain.Workers = std::min(Threads, HW == 0 ? Threads : HW);
    } else if (GrainMode != "off") {
      Grain.Enabled = true;
      Grain.ForcedChunk = std::atol(GrainMode.c_str());
    }
    RuntimePlan Plan = buildRuntimePlan(*M, Abs, Threads, FeatureSet(), {},
                                        Grain);
    ParallelRuntime RT(*M, Plan, ExecEngineKind::Bytecode);
    double ParMs = 1e300;
    ParallelRunResult Par;
    for (unsigned Rep = 0; Rep < Reps; ++Rep) {
      Clock::time_point T1 = Clock::now();
      ParallelRunResult P = RT.run();
      double Ms = msSince(T1);
      if (Ms < ParMs) {
        ParMs = Ms;
        Par = std::move(P);
      }
    }

    // Predicted ideal-machine speedup from the critical-path model.
    CriticalPathReport CP = evaluateCriticalPaths(*M);
    double ModelCP = 0;
    switch (Abs) {
    case AbstractionKind::PDG:
      ModelCP = CP.PDG;
      break;
    case AbstractionKind::JK:
      ModelCP = CP.JK;
      break;
    default:
      ModelCP = CP.PSPDG;
      break;
    }
    double Predicted =
        ModelCP > 0
            ? static_cast<double>(CP.TotalDynamicInstructions) / ModelCP
            : 0.0;

    unsigned NumDoall = 0, NumHelix = 0, NumDswp = 0;
    for (const LoopExecStat &L : Par.Loops) {
      if (L.Invocations == 0)
        continue;
      if (L.Kind == ScheduleKind::DOALL)
        ++NumDoall;
      else if (L.Kind == ScheduleKind::HELIX)
        ++NumHelix;
      else if (L.Kind == ScheduleKind::DSWP)
        ++NumDswp;
    }

    bool Match = SeqMatch && Par.Error.empty() &&
                 Par.R.Output == Walk.R.Output &&
                 Par.R.ExitValue == Walk.R.ExitValue;
    std::printf("%-4s %9.2f %9.2f %6.2fx %8.2f %8.2fx %9.2fx %6s  %u DOALL, "
                "%u HELIX, %u DSWP\n",
                W.Name.c_str(), Walk.BestMs, Byte.BestMs,
                Byte.BestMs > 0 ? Walk.BestMs / Byte.BestMs : 0.0, ParMs,
                ParMs > 0 ? Byte.BestMs / ParMs : 0.0, Predicted,
                Match ? "yes" : "NO", NumDoall, NumHelix, NumDswp);
    if (!Match) {
      std::fprintf(stderr, "bench_runtime: %s diverged%s%s\n",
                   W.Name.c_str(), Par.Error.empty() ? "" : ": ",
                   Par.Error.c_str());
      return 1;
    }

    BenchRecord RW;
    RW.Workload = W.Name;
    RW.Engine = "walker";
    RW.Threads = 1;
    RW.NsPerIter = Walk.BestMs * 1e6;
    RW.InstrsPerSec = instrsPerSec(Walk.Instrs, Walk.BestMs);
    Records.push_back(RW);
    BenchRecord RB;
    RB.Workload = W.Name;
    RB.Engine = "bytecode";
    RB.Threads = 1;
    RB.NsPerIter = Byte.BestMs * 1e6;
    RB.InstrsPerSec = instrsPerSec(Byte.Instrs, Byte.BestMs);
    Records.push_back(RB);
    double ParSpeedup = ParMs > 0 ? Byte.BestMs / ParMs : 0.0;
    // The gate tolerance absorbs single-run scheduler noise; the grain
    // pass guarantees the *plan* never schedules a losing loop, not that
    // the OS never preempts a timing run.
    if (ParSpeedup < 0.90) {
      ++ParSlowerCount;
      ParSlowerList += (ParSlowerList.empty() ? "" : ", ") + W.Name;
    }
    BenchRecord RP;
    RP.Workload = W.Name;
    RP.Engine = "bytecode-parallel";
    RP.Threads = Threads;
    RP.NsPerIter = ParMs * 1e6;
    RP.InstrsPerSec = instrsPerSec(Par.R.InstructionsExecuted, ParMs);
    RP.Extra.push_back({"par_speedup", ParSpeedup});
    Records.push_back(RP);
  }

  if (!JsonPath.empty() && !writeBenchJson(JsonPath, "runtime", Records))
    return 1;

  if (CheckParallel && ParSlowerCount > 0) {
    std::fprintf(stderr,
                 "bench_runtime: parallel run slower than sequential "
                 "bytecode beyond tolerance on %u workload(s): %s\n",
                 ParSlowerCount, ParSlowerList.c_str());
    return 1;
  }
  if (CheckFaster && SlowerCount > 0) {
    std::fprintf(stderr,
                 "bench_runtime: bytecode engine slower than the walker on "
                 "%u workload(s): %s\n",
                 SlowerCount, SlowerList.c_str());
    return 1;
  }
  return 0; // every workload matched (divergence returns early above)
}
