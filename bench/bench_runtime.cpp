//===- bench_runtime.cpp - Measured vs predicted parallel speedup --------===//
///
/// \file
/// Closes the paper's predict→execute gap: for every NAS-like workload,
/// runs the PS-PDG's best plan on real threads (ParallelRuntime) and
/// compares the measured wall-clock speedup against the plan-constrained
/// ideal-machine prediction of §6.3 (critical-path model, Fig. 14).
///
///   bench_runtime [threads] [abs]
///     threads — worker threads (default: hardware concurrency, max 8)
///     abs     — pdg | jk | pspdg (default pspdg)
///
/// The prediction assumes unlimited cores and free communication, so the
/// measured column is bounded by the machine's core count while the
/// predicted column is not; the point of the table is that both move in
/// the same direction per workload, and that measured > 1 on the DOALL
/// workloads when real cores are available.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "emulator/CriticalPath.h"
#include "runtime/ParallelRuntime.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

using namespace psc;
using namespace psc::bench;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0)
      .count();
}

AbstractionKind parseAbs(const std::string &S) {
  if (S == "pdg")
    return AbstractionKind::PDG;
  if (S == "jk")
    return AbstractionKind::JK;
  return AbstractionKind::PSPDG;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Threads = std::min(8u, std::thread::hardware_concurrency());
  if (Threads == 0)
    Threads = 4;
  AbstractionKind Abs = AbstractionKind::PSPDG;
  if (Argc > 1)
    Threads = static_cast<unsigned>(std::max(1, std::atoi(Argv[1])));
  if (Argc > 2)
    Abs = parseAbs(Argv[2]);

  std::printf("Parallel plan execution: measured vs predicted speedup "
              "(%s plan, %u threads)\n",
              abstractionName(Abs), Threads);
  std::printf("%-4s %10s %10s %9s %10s %9s  %s\n", "WL", "seq(ms)",
              "par(ms)", "measured", "predicted", "match", "schedules");
  std::printf("---------------------------------------------------------------"
              "--------\n");

  for (const Workload &W : nasWorkloads()) {
    std::unique_ptr<Module> M = compileOrDie(W.Source, W.Name);

    Interpreter Seq(*M);
    Clock::time_point T0 = Clock::now();
    RunResult SeqR = Seq.run();
    double SeqMs = msSince(T0);

    RuntimePlan Plan = buildRuntimePlan(*M, Abs, Threads);
    ParallelRuntime RT(*M, Plan);
    Clock::time_point T1 = Clock::now();
    ParallelRunResult Par = RT.run();
    double ParMs = msSince(T1);

    // Predicted ideal-machine speedup from the critical-path model.
    CriticalPathReport CP = evaluateCriticalPaths(*M);
    double ModelCP = 0;
    switch (Abs) {
    case AbstractionKind::PDG:
      ModelCP = CP.PDG;
      break;
    case AbstractionKind::JK:
      ModelCP = CP.JK;
      break;
    default:
      ModelCP = CP.PSPDG;
      break;
    }
    double Predicted =
        ModelCP > 0
            ? static_cast<double>(CP.TotalDynamicInstructions) / ModelCP
            : 0.0;

    unsigned NumDoall = 0, NumHelix = 0, NumDswp = 0;
    for (const LoopExecStat &L : Par.Loops) {
      if (L.Invocations == 0)
        continue;
      if (L.Kind == ScheduleKind::DOALL)
        ++NumDoall;
      else if (L.Kind == ScheduleKind::HELIX)
        ++NumHelix;
      else if (L.Kind == ScheduleKind::DSWP)
        ++NumDswp;
    }

    bool Match = Par.Error.empty() && Par.R.Output == SeqR.Output &&
                 Par.R.ExitValue == SeqR.ExitValue;
    std::printf("%-4s %10.2f %10.2f %8.2fx %9.2fx %9s  %u DOALL, %u HELIX, "
                "%u DSWP\n",
                W.Name.c_str(), SeqMs, ParMs,
                ParMs > 0 ? SeqMs / ParMs : 0.0, Predicted,
                Match ? "yes" : "NO", NumDoall, NumHelix, NumDswp);
    if (!Match) {
      std::fprintf(stderr, "bench_runtime: %s diverged%s%s\n",
                   W.Name.c_str(), Par.Error.empty() ? "" : ": ",
                   Par.Error.c_str());
      return 1;
    }
  }
  return 0;
}
