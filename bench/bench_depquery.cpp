//===- bench_depquery.cpp - Oracle-stack query throughput --------*- C++ -*-===//
///
/// \file
/// Measures the dependence-oracle stack against the seed monolithic
/// analysis on the NAS workloads:
///
///   * monolith      — referenceDepEdges(): one fused pass, no query
///                     protocol (the pre-refactor baseline);
///   * stack-cold    — buildDepEdges() through a fresh DepOracleStack per
///                     build (protocol + dispatch overhead, empty cache);
///   * stack-shared  — repeated builds over one stack (the collaborative
///                     mode every consumer uses): cache-served queries.
///
/// Emits one JSON record per workload on stdout (machine-readable, for the
/// perf trajectory) and a human-readable table on stderr. The workload
/// with the most IR instructions is marked "largest": that row is the
/// headline number.
///
///   bench_depquery [repeats]   (default 20 builds per mode)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/DepOracle.h"
#include "analysis/ReferenceDependence.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace psc;
using namespace psc::bench;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

struct Row {
  std::string Name;
  size_t Instructions = 0;
  size_t Edges = 0;
  double MonolithBuildsPerSec = 0;
  double StackColdBuildsPerSec = 0;
  double StackSharedBuildsPerSec = 0;
  double QueriesPerSecCold = 0;
  double QueriesPerSecShared = 0;
  double SharedHitRate = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  unsigned Repeats = 20;
  if (Argc > 1)
    Repeats = static_cast<unsigned>(std::max(1, std::atoi(Argv[1])));

  std::vector<Row> Rows;
  size_t LargestIdx = 0;

  for (const Workload &W : nasWorkloads()) {
    auto M = compileOrDie(W.Source, W.Name);
    FunctionAnalysis FA(*M->getFunction("main"));

    Row R;
    R.Name = W.Name;
    R.Instructions = FA.instructions().size();

    // Monolithic baseline.
    Clock::time_point T0 = Clock::now();
    for (unsigned I = 0; I < Repeats; ++I) {
      auto Edges = referenceDepEdges(FA);
      R.Edges = Edges.size();
    }
    double MonoSec = secondsSince(T0);
    R.MonolithBuildsPerSec = Repeats / MonoSec;

    // Stack, cold cache each build.
    uint64_t ColdQueries = 0;
    T0 = Clock::now();
    for (unsigned I = 0; I < Repeats; ++I) {
      DepOracleStack Stack(FA);
      auto Edges = buildDepEdges(Stack);
      ColdQueries += Stack.cacheStats().Queries;
      if (Edges.size() != R.Edges) {
        std::fprintf(stderr, "bench_depquery: edge mismatch on %s\n",
                     W.Name.c_str());
        return 1;
      }
    }
    double ColdSec = secondsSince(T0);
    R.StackColdBuildsPerSec = Repeats / ColdSec;
    R.QueriesPerSecCold = ColdQueries / ColdSec;

    // Stack, shared cache across builds (the collaborative mode).
    DepOracleStack Shared(FA);
    (void)buildDepEdges(Shared); // warm (counted: consumers share warm stacks)
    T0 = Clock::now();
    for (unsigned I = 0; I < Repeats; ++I)
      (void)buildDepEdges(Shared);
    double SharedSec = secondsSince(T0);
    R.StackSharedBuildsPerSec = Repeats / SharedSec;
    const auto &CS = Shared.cacheStats();
    R.QueriesPerSecShared =
        (CS.Queries - CS.Queries / (Repeats + 1)) / SharedSec;
    R.SharedHitRate = CS.hitRate();

    if (Rows.empty() || R.Instructions > Rows[LargestIdx].Instructions)
      LargestIdx = Rows.size();
    Rows.push_back(R);
  }

  // Machine-readable trajectory records.
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::printf(
        "{\"bench\":\"depquery\",\"workload\":\"%s\",\"largest\":%s,"
        "\"instructions\":%zu,\"edges\":%zu,"
        "\"monolith_builds_per_sec\":%.1f,"
        "\"stack_cold_builds_per_sec\":%.1f,"
        "\"stack_shared_builds_per_sec\":%.1f,"
        "\"queries_per_sec_cold\":%.0f,"
        "\"queries_per_sec_shared\":%.0f,"
        "\"shared_cache_hit_rate\":%.4f}\n",
        R.Name.c_str(), I == LargestIdx ? "true" : "false", R.Instructions,
        R.Edges, R.MonolithBuildsPerSec, R.StackColdBuildsPerSec,
        R.StackSharedBuildsPerSec, R.QueriesPerSecCold, R.QueriesPerSecShared,
        R.SharedHitRate);
  }

  // Human summary.
  std::fprintf(stderr,
               "\nDependence queries: oracle stack vs seed monolith "
               "(%u builds/mode)\n",
               Repeats);
  std::fprintf(stderr, "%-4s %6s %6s %12s %12s %12s %14s %8s\n", "WL", "insts",
               "edges", "mono(b/s)", "cold(b/s)", "shared(b/s)", "q/s shared",
               "hit%");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::fprintf(stderr, "%-4s %6zu %6zu %12.1f %12.1f %12.1f %14.0f %7.1f%%%s\n",
                 R.Name.c_str(), R.Instructions, R.Edges,
                 R.MonolithBuildsPerSec, R.StackColdBuildsPerSec,
                 R.StackSharedBuildsPerSec, R.QueriesPerSecShared,
                 100.0 * R.SharedHitRate, I == LargestIdx ? "  <- largest" : "");
  }
  return 0;
}
