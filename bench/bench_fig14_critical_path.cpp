//===- bench_fig14_critical_path.cpp - Paper Fig. 14 reproduction -*- C++ -*-===//
///
/// \file
/// Regenerates Fig. 14: "Critical path reduction from abstraction-enabled
/// parallelism" — the critical path of each benchmark on an ideal machine
/// (unlimited cores, zero-cost communication) under each abstraction's
/// plan, reported as the reduction over the programmer's OpenMP plan
/// (values < 1 mean the abstraction cannot even recover the programmer's
/// parallelism — the PDG column, the paper's motivating observation).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "emulator/CriticalPath.h"

#include <cstdio>

using namespace psc;
using namespace psc::bench;

int main() {
  std::printf(
      "=== Fig. 14: Critical path reduction over the OpenMP plan ===\n");
  std::printf("(ideal machine; critical path in dynamic IR instructions)\n\n");
  std::printf("%-6s %12s %12s | %9s %9s %9s\n", "Bench", "seq-instrs",
              "CP(OpenMP)", "PDG", "J&K", "PS-PDG");

  for (const Workload &W : nasWorkloads()) {
    PreparedWorkload P = prepare(W);
    CriticalPathReport R = evaluateCriticalPaths(*P.M);
    std::printf("%-6s %12llu %12.0f | %8.2fx %8.2fx %8.2fx\n", W.Name.c_str(),
                (unsigned long long)R.TotalDynamicInstructions, R.OpenMP,
                R.OpenMP / R.PDG, R.OpenMP / R.JK, R.OpenMP / R.PSPDG);
  }

  std::printf(
      "\nExpected shape (paper Fig. 14): PDG < 1x everywhere (a sequential\n"
      "IR's PDG cannot recover the programmer's plan); J&K recovers the\n"
      "annotated loops; the PS-PDG matches or beats every other plan\n"
      "(>= 1x always, with large wins where data properties, orderless\n"
      "sections, and contexts unlock extra parallelism).\n");
  return 0;
}
