//===- bench_fig14_critical_path.cpp - Paper Fig. 14 reproduction -*- C++ -*-===//
///
/// \file
/// Regenerates Fig. 14: "Critical path reduction from abstraction-enabled
/// parallelism" — the critical path of each benchmark on an ideal machine
/// (unlimited cores, zero-cost communication) under each abstraction's
/// plan, reported as the reduction over the programmer's OpenMP plan
/// (values < 1 mean the abstraction cannot even recover the programmer's
/// parallelism — the PDG column, the paper's motivating observation).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "emulator/CriticalPath.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace psc;
using namespace psc::bench;

int main(int argc, char **argv) {
  std::string JsonPath;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--json=", 7) == 0)
      JsonPath = argv[I] + 7;
    else {
      std::fprintf(stderr, "usage: bench_fig14_critical_path [--json=PATH]\n");
      return 2;
    }
  }

  std::printf(
      "=== Fig. 14: Critical path reduction over the OpenMP plan ===\n");
  std::printf("(ideal machine; critical path in dynamic IR instructions)\n\n");
  std::printf("%-6s %12s %12s | %9s %9s %9s\n", "Bench", "seq-instrs",
              "CP(OpenMP)", "PDG", "J&K", "PS-PDG");

  std::vector<BenchRecord> Records;
  for (const Workload &W : nasWorkloads()) {
    PreparedWorkload P = prepare(W);
    CriticalPathReport R = evaluateCriticalPaths(*P.M);
    std::printf("%-6s %12llu %12.0f | %8.2fx %8.2fx %8.2fx\n", W.Name.c_str(),
                (unsigned long long)R.TotalDynamicInstructions, R.OpenMP,
                R.OpenMP / R.PDG, R.OpenMP / R.JK, R.OpenMP / R.PSPDG);
    const struct {
      const char *Abs;
      double CP;
    } Rows[] = {{"openmp", R.OpenMP},
                {"pdg", R.PDG},
                {"jk", R.JK},
                {"pspdg", R.PSPDG}};
    for (const auto &Row : Rows)
      Records.push_back(
          {W.Name,
           Row.Abs,
           1,
           0.0,
           0.0,
           {{"critical_path", Row.CP},
            {"reduction_vs_openmp", R.OpenMP / Row.CP},
            {"seq_instrs",
             static_cast<double>(R.TotalDynamicInstructions)}}});
  }

  if (!JsonPath.empty() &&
      !writeBenchJson(JsonPath, "fig14_critical_path", Records))
    return 1;

  std::printf(
      "\nExpected shape (paper Fig. 14): PDG < 1x everywhere (a sequential\n"
      "IR's PDG cannot recover the programmer's plan); J&K recovers the\n"
      "annotated loops; the PS-PDG matches or beats every other plan\n"
      "(>= 1x always, with large wins where data properties, orderless\n"
      "sections, and contexts unlock extra parallelism).\n");
  return 0;
}
