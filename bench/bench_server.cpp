//===- bench_server.cpp - resident-service load benchmark ----------------===//
///
/// \file
/// Load benchmark for the pscd resident analysis service: an in-process
/// Server on a unix-domain socket, hammered by C concurrent client
/// threads (one connection each, like real pscc --connect users).
///
/// Per session mode (analyze, run, full) the harness measures two phases
/// over K structurally distinct sources (distinct statement counts — the
/// body hash ignores constant *values*, so structure is what defeats the
/// caches):
///
///   * cold — every source's first session on a fresh server: the
///     frontend, bytecode decoder, and dependence-oracle chain all run;
///   * warm — repeated passes over the same sources: the L1 module cache
///     skips frontend + decode, and the L3 plan cache serves finished
///     plan lines with zero analysis work (on the warm window the L2
///     memo cache sees no traffic at all — L3 hits never reach it).
///
///   bench_server [--clients=N] [--sources=K] [--reps=N] [--json=PATH]
///                [--check]
///     --clients=N  concurrent client connections (default 4)
///     --sources=K  distinct programs per pass (default 16)
///     --reps=N     repetitions, best-of (default 3; each rep gets a
///                  fresh server so cold is really cold)
///     --json=PATH  write BENCH_server.json perf records (cold/warm
///                  sessions/s per mode, warm speedup, cache hit rates,
///                  per-stage warm-window latency means)
///     --check      CI gates: warm run-mode sessions/s ≥ 3× cold with
///                  warm module-cache hit rate ≥ 0.9, and warm
///                  analyze-mode sessions/s ≥ 3× cold with warm
///                  plan-cache hit rate ≥ 0.9
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "service/Client.h"
#include "service/Server.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace psc;
using namespace psc::bench;
using namespace psc::service;

namespace {

using Clock = std::chrono::steady_clock;

/// Source #J: compile-heavy (several helper functions, a loop body of
/// J+24 statements) but cheap to run — the shape that makes residency
/// pay. Each J is a structurally distinct program (distinct source key
/// AND distinct body hashes).
std::string makeSource(unsigned J) {
  std::string Src;
  for (unsigned F = 0; F < 4; ++F) {
    std::string Body;
    for (unsigned I = 0; I <= J + F * 3; ++I)
      Body += "    s = s + i + x;\n";
    Src += "int helper" + std::to_string(F) +
           "(int x) {\n  int i;\n  int s = 0;\n"
           "  for (i = 0; i < 4; i++) {\n" +
           Body + "  }\n  return s;\n}\n";
  }
  std::string Body;
  for (unsigned I = 0; I <= J + 24; ++I)
    Body += "    s = s + i;\n";
  Src += "int main() {\n  int i;\n  int s = 0;\n"
         "  for (i = 0; i < 8; i++) {\n" +
         Body +
         "  }\n  s = s + helper0(1) + helper1(2) + helper2(3) + "
         "helper3(4);\n  print(s);\n  return 0;\n}\n";
  return Src;
}

/// One timed pass: the C clients split the K sessions round-robin.
/// Returns seconds; aborts the process on any failed session.
double timedPass(const std::string &SocketPath, unsigned Clients,
                 const std::vector<std::string> &Sources,
                 const std::string &Mode) {
  std::vector<std::thread> Ts;
  Clock::time_point T0 = Clock::now();
  for (unsigned Cl = 0; Cl < Clients; ++Cl)
    Ts.emplace_back([&, Cl] {
      Client Conn;
      std::string Err;
      if (!Conn.connect(SocketPath, Err)) {
        std::fprintf(stderr, "bench_server: %s\n", Err.c_str());
        std::abort();
      }
      for (size_t I = Cl; I < Sources.size(); I += Clients) {
        Message Resp;
        // Distinct module names: these are different programs, not edits
        // of one program, so they must not cross-invalidate the L2.
        Message Req{{"op", "session"},
                    {"source", Sources[I]},
                    {"name", "bench" + std::to_string(I)},
                    {"mode", Mode}};
        if (!Conn.request(Req, Resp, Err) || field(Resp, "ok") != "1") {
          std::fprintf(stderr, "bench_server: session failed: %s%s\n",
                       Err.c_str(), field(Resp, "error").c_str());
          std::abort();
        }
      }
    });
  for (std::thread &T : Ts)
    T.join();
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

/// Pulls the integer after \p Key inside the \p Section object of the
/// stats JSON.
double statOf(const std::string &StatsJson, const char *Section,
              const char *Key) {
  size_t Pos = StatsJson.find("\"" + std::string(Section) + "\"");
  if (Pos == std::string::npos)
    return 0.0;
  std::string K = "\"" + std::string(Key) + "\":";
  Pos = StatsJson.find(K, Pos);
  if (Pos == std::string::npos)
    return 0.0;
  return std::atof(StatsJson.c_str() + Pos + K.size());
}

/// Hit rate of \p Section over the window between two stats snapshots —
/// the warm-phase rate, uncontaminated by the cold pass's misses.
double windowHitRate(const std::string &Before, const std::string &After,
                     const char *Section) {
  double Hits = statOf(After, Section, "hits") -
                statOf(Before, Section, "hits");
  double Misses = statOf(After, Section, "misses") -
                  statOf(Before, Section, "misses");
  return Hits + Misses > 0 ? Hits / (Hits + Misses) : 0.0;
}

/// Mean per-session stage latency over the window between two stats
/// snapshots (stage_compile / stage_plan / stage_run sections).
double windowStageMean(const std::string &Before, const std::string &After,
                       const char *Section) {
  double Ms = statOf(After, Section, "total_ms") -
              statOf(Before, Section, "total_ms");
  double N = statOf(After, Section, "count") -
             statOf(Before, Section, "count");
  return N > 0 ? Ms / N : 0.0;
}

struct ModeResult {
  double ColdSps = 0.0, WarmSps = 0.0;
  double ModuleHitRate = 0.0, MemoHitRate = 0.0, PlanHitRate = 0.0;
  /// Warm-window mean per-session stage latencies, ms.
  double StageCompileMs = 0.0, StagePlanMs = 0.0, StageRunMs = 0.0;
  double speedup() const { return ColdSps > 0 ? WarmSps / ColdSps : 0.0; }
};

ModeResult benchMode(const std::string &Mode, unsigned Clients,
                     const std::vector<std::string> &Sources,
                     unsigned Reps) {
  ModeResult Best;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    ServerConfig C;
    C.SocketPath = "/tmp/psc-bench-server-" + std::to_string(::getpid()) +
                   "-" + Mode + std::to_string(Rep) + ".sock";
    C.PoolThreads = Clients;
    Server S(C);
    std::string Err;
    if (!S.start(Err)) {
      std::fprintf(stderr, "bench_server: %s\n", Err.c_str());
      std::abort();
    }
    double ColdS = timedPass(C.SocketPath, Clients, Sources, Mode);
    std::string AfterCold = S.statsJson();
    // Warm passes over the same sources; best of 3 (the first also
    // settles any memo tables the cold pass raced on).
    double WarmS = timedPass(C.SocketPath, Clients, Sources, Mode);
    for (int P = 0; P < 2; ++P)
      WarmS = std::min(WarmS,
                       timedPass(C.SocketPath, Clients, Sources, Mode));
    double ColdSps = Sources.size() / ColdS;
    double WarmSps = Sources.size() / WarmS;
    if (WarmSps > Best.WarmSps) {
      Best.ColdSps = ColdSps;
      Best.WarmSps = WarmSps;
      std::string AfterWarm = S.statsJson();
      Best.ModuleHitRate = windowHitRate(AfterCold, AfterWarm,
                                         "module_cache");
      Best.MemoHitRate = windowHitRate(AfterCold, AfterWarm, "memo_cache");
      Best.PlanHitRate = windowHitRate(AfterCold, AfterWarm, "plan_cache");
      Best.StageCompileMs = windowStageMean(AfterCold, AfterWarm,
                                            "stage_compile");
      Best.StagePlanMs = windowStageMean(AfterCold, AfterWarm,
                                         "stage_plan");
      Best.StageRunMs = windowStageMean(AfterCold, AfterWarm, "stage_run");
    }
    S.stop();
  }
  return Best;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Clients = 4, NumSources = 16, Reps = 3;
  std::string JsonPath;
  bool Check = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--clients=", 0) == 0)
      Clients = static_cast<unsigned>(std::atoi(A.c_str() + 10));
    else if (A.rfind("--sources=", 0) == 0)
      NumSources = static_cast<unsigned>(std::atoi(A.c_str() + 10));
    else if (A.rfind("--reps=", 0) == 0)
      Reps = static_cast<unsigned>(std::atoi(A.c_str() + 7));
    else if (A.rfind("--json=", 0) == 0)
      JsonPath = A.substr(7);
    else if (A == "--check")
      Check = true;
    else {
      std::fprintf(stderr,
                   "usage: bench_server [--clients=N] [--sources=K] "
                   "[--reps=N] [--json=PATH] [--check]\n");
      return 2;
    }
  }
  if (Clients == 0 || NumSources == 0 || Reps == 0) {
    std::fprintf(stderr, "bench_server: counts must be positive\n");
    return 2;
  }

  std::vector<std::string> Sources;
  for (unsigned J = 0; J < NumSources; ++J)
    Sources.push_back(makeSource(J));

  std::printf("== resident-service load (%u clients, %u sources, "
              "best of %u) ==\n",
              Clients, NumSources, Reps);
  std::printf("%-8s %12s %12s %8s %10s %9s\n", "mode", "cold sess/s",
              "warm sess/s", "speedup", "L1 hits", "L3 hits");

  std::vector<BenchRecord> Records;
  ModeResult RunRes, AnalyzeRes;
  for (const char *Mode : {"analyze", "run", "full"}) {
    ModeResult R = benchMode(Mode, Clients, Sources, Reps);
    if (std::strcmp(Mode, "run") == 0)
      RunRes = R;
    if (std::strcmp(Mode, "analyze") == 0)
      AnalyzeRes = R;
    std::printf("%-8s %12.1f %12.1f %7.2fx %9.0f%% %8.0f%%\n", Mode,
                R.ColdSps, R.WarmSps, R.speedup(), R.ModuleHitRate * 100,
                R.PlanHitRate * 100);
    BenchRecord Cold;
    Cold.Workload = "server";
    Cold.Engine = std::string("cold_") + Mode;
    Cold.Threads = Clients;
    Cold.NsPerIter = 1e9 / R.ColdSps;
    Cold.Extra.push_back({"sessions_per_s", R.ColdSps});
    Records.push_back(Cold);
    BenchRecord Warm;
    Warm.Workload = "server";
    Warm.Engine = std::string("warm_") + Mode;
    Warm.Threads = Clients;
    Warm.NsPerIter = 1e9 / R.WarmSps;
    Warm.Extra.push_back({"sessions_per_s", R.WarmSps});
    Warm.Extra.push_back({"warm_speedup", R.speedup()});
    Warm.Extra.push_back({"module_cache_hit_rate", R.ModuleHitRate});
    Warm.Extra.push_back({"memo_cache_hit_rate", R.MemoHitRate});
    Warm.Extra.push_back({"plan_cache_hit_rate", R.PlanHitRate});
    Warm.Extra.push_back({"stage_compile_ms", R.StageCompileMs});
    Warm.Extra.push_back({"stage_plan_ms", R.StagePlanMs});
    Warm.Extra.push_back({"stage_run_ms", R.StageRunMs});
    Records.push_back(Warm);
  }

  if (!JsonPath.empty() && !writeBenchJson(JsonPath, "server", Records))
    return 1;

  if (Check) {
    if (RunRes.speedup() < 3.0) {
      std::fprintf(stderr,
                   "bench_server: CHECK FAILED — warm run sessions/s only "
                   "%.2fx cold (gate: 3x)\n",
                   RunRes.speedup());
      return 1;
    }
    if (RunRes.ModuleHitRate < 0.9) {
      std::fprintf(stderr,
                   "bench_server: CHECK FAILED — warm module-cache hit "
                   "rate %.2f (gate: 0.9)\n",
                   RunRes.ModuleHitRate);
      return 1;
    }
    if (AnalyzeRes.speedup() < 3.0) {
      std::fprintf(stderr,
                   "bench_server: CHECK FAILED — warm analyze sessions/s "
                   "only %.2fx cold (gate: 3x)\n",
                   AnalyzeRes.speedup());
      return 1;
    }
    if (AnalyzeRes.PlanHitRate < 0.9) {
      std::fprintf(stderr,
                   "bench_server: CHECK FAILED — warm plan-cache hit rate "
                   "%.2f (gate: 0.9)\n",
                   AnalyzeRes.PlanHitRate);
      return 1;
    }
    std::printf("check: warm run sessions/s %.2fx cold (>= 3x), module "
                "hit rate %.2f (>= 0.9) — OK\n",
                RunRes.speedup(), RunRes.ModuleHitRate);
    std::printf("check: warm analyze sessions/s %.2fx cold (>= 3x), plan "
                "hit rate %.2f (>= 0.9) — OK\n",
                AnalyzeRes.speedup(), AnalyzeRes.PlanHitRate);
  }
  return 0;
}
