//===- bench_micro.cpp - Component micro-benchmarks ----------------*- C++ -*-===//
///
/// \file
/// google-benchmark timings of the compiler stack's components on the IS
/// kernel (the paper's Fig. 3 program) and on synthetic inputs: frontend,
/// dependence analysis, PDG and PS-PDG construction, SCC decomposition,
/// option enumeration, fingerprinting, and the interpreter.
///
//===----------------------------------------------------------------------===//

#include "analysis/DependenceAnalysis.h"
#include "emulator/Interpreter.h"
#include "frontend/Frontend.h"
#include "parallel/PlanEnumerator.h"
#include "pdg/PDG.h"
#include "pspdg/Fingerprint.h"
#include "pspdg/PSPDGBuilder.h"
#include "support/SCCIterator.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace psc;

namespace {

const std::string &isSource() { return findWorkload("IS")->Source; }

void BM_FrontendCompile(benchmark::State &State) {
  for (auto _ : State) {
    auto M = compileOrDie(isSource(), "IS");
    benchmark::DoNotOptimize(M.get());
  }
}
BENCHMARK(BM_FrontendCompile);

void BM_DependenceAnalysis(benchmark::State &State) {
  auto M = compileOrDie(isSource(), "IS");
  const Function *F = M->getFunction("main");
  for (auto _ : State) {
    FunctionAnalysis FA(*F);
    DependenceInfo DI(FA);
    benchmark::DoNotOptimize(DI.edges().size());
  }
}
BENCHMARK(BM_DependenceAnalysis);

void BM_PDGBuild(benchmark::State &State) {
  auto M = compileOrDie(isSource(), "IS");
  FunctionAnalysis FA(*M->getFunction("main"));
  DependenceInfo DI(FA);
  for (auto _ : State) {
    PDG G(FA, DI);
    benchmark::DoNotOptimize(G.numNodes());
  }
}
BENCHMARK(BM_PDGBuild);

void BM_PSPDGBuild(benchmark::State &State) {
  auto M = compileOrDie(isSource(), "IS");
  FunctionAnalysis FA(*M->getFunction("main"));
  DependenceInfo DI(FA);
  for (auto _ : State) {
    auto G = buildPSPDG(FA, DI);
    benchmark::DoNotOptimize(G->numNodes());
  }
}
BENCHMARK(BM_PSPDGBuild);

void BM_Fingerprint(benchmark::State &State) {
  auto M = compileOrDie(isSource(), "IS");
  FunctionAnalysis FA(*M->getFunction("main"));
  DependenceInfo DI(FA);
  auto G = buildPSPDG(FA, DI);
  for (auto _ : State)
    benchmark::DoNotOptimize(fingerprintHash(*G));
}
BENCHMARK(BM_Fingerprint);

void BM_OptionEnumeration(benchmark::State &State) {
  auto M = compileOrDie(isSource(), "IS");
  for (auto _ : State) {
    OptionCount R = enumerateOptions(*M, AbstractionKind::PSPDG);
    benchmark::DoNotOptimize(R.Total);
  }
}
BENCHMARK(BM_OptionEnumeration);

void BM_InterpreterThroughput(benchmark::State &State) {
  auto M = compileOrDie(isSource(), "IS");
  uint64_t Instrs = 0;
  for (auto _ : State) {
    Interpreter I(*M);
    RunResult R = I.run();
    Instrs += R.InstructionsExecuted;
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughput);

void BM_TarjanSCC(benchmark::State &State) {
  // Ring-of-rings synthetic graph.
  unsigned N = static_cast<unsigned>(State.range(0));
  std::vector<std::vector<unsigned>> Adj(N);
  for (unsigned I = 0; I < N; ++I) {
    Adj[I].push_back((I + 1) % N);
    if (I % 10 == 0)
      Adj[I].push_back((I + N / 2) % N);
  }
  for (auto _ : State) {
    SCCResult R = computeSCCs(
        N, [&Adj](unsigned Node) -> const std::vector<unsigned> & {
          return Adj[Node];
        });
    benchmark::DoNotOptimize(R.numComponents());
  }
}
BENCHMARK(BM_TarjanSCC)->Arg(100)->Arg(1000)->Arg(10000);

void BM_WorkloadCompile(benchmark::State &State) {
  const Workload &W = nasWorkloads()[static_cast<size_t>(State.range(0))];
  State.SetLabel(W.Name);
  for (auto _ : State) {
    auto M = compileOrDie(W.Source, W.Name);
    benchmark::DoNotOptimize(M.get());
  }
}
BENCHMARK(BM_WorkloadCompile)->DenseRange(0, 7);

} // namespace

BENCHMARK_MAIN();
