//===- bench_micro.cpp - Component micro-benchmarks ----------------*- C++ -*-===//
///
/// \file
/// Component-level timings of the compiler stack on the IS kernel (the
/// paper's Fig. 3 program) and on synthetic inputs: frontend, dependence
/// analysis, PDG and PS-PDG construction, SCC decomposition, option
/// enumeration, fingerprinting, the bytecode decoder, and both execution
/// engines.
///
/// Two modes:
///   * `bench_micro --json=PATH [--reps=N]` — dependency-free mode: times
///     the decode pass and both engines' interpreted-instruction
///     throughput, writing BENCH_micro.json records (the tracked perf
///     trajectory; see scripts/run_benches.sh).
///   * `bench_micro [gbench args]` — the full Google-Benchmark suite, when
///     the library is available (PSC_HAVE_GBENCH).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/DependenceAnalysis.h"
#include "emulator/Bytecode.h"
#include "emulator/Interpreter.h"
#include "frontend/Frontend.h"
#include "obs/Trace.h"
#include "parallel/PlanEnumerator.h"
#include "pdg/PDG.h"
#include "pspdg/Fingerprint.h"
#include "pspdg/PSPDGBuilder.h"
#include "runtime/ParallelRuntime.h"
#include "runtime/SpecValidation.h"
#include "runtime/ThreadPool.h"
#include "support/SCCIterator.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstring>

using namespace psc;
using namespace psc::bench;

namespace {

const std::string &isSource() { return findWorkload("IS")->Source; }

// --- JSON mode ---------------------------------------------------------------

using Clock = std::chrono::steady_clock;

double nsSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - T0).count();
}

/// Best-of-N wall time of one thunk, in nanoseconds.
template <class Fn> double bestNs(unsigned Reps, Fn &&F) {
  double Best = 1e300;
  for (unsigned R = 0; R < Reps; ++R) {
    Clock::time_point T0 = Clock::now();
    F();
    Best = std::min(Best, nsSince(T0));
  }
  return Best;
}

int runJsonMode(const std::string &Path, unsigned Reps) {
  std::vector<BenchRecord> Records;
  auto Add = [&](const std::string &Name, const std::string &Engine,
                 double Ns, double InstrsPerSec) {
    BenchRecord R;
    R.Workload = Name;
    R.Engine = Engine;
    R.Threads = 1;
    R.NsPerIter = Ns;
    R.InstrsPerSec = InstrsPerSec;
    Records.push_back(R);
  };

  // Component micros on IS.
  Add("frontend_compile", "frontend",
      bestNs(Reps, [] { compileOrDie(isSource(), "IS"); }), 0);

  auto M = compileOrDie(isSource(), "IS");
  Add("bytecode_decode", "bytecode",
      bestNs(Reps, [&] { BytecodeModule BM(*M); }), 0);

  // Engine throughput on every workload (the headline trajectory metric).
  double BytecodeNsPerInstr = 0;
  unsigned BytecodeSamples = 0;
  for (const Workload &W : nasWorkloads()) {
    auto WM = compileOrDie(W.Source, W.Name);
    for (ExecEngineKind E :
         {ExecEngineKind::Walker, ExecEngineKind::Bytecode}) {
      uint64_t Instrs = 0;
      double Ns = bestNs(Reps, [&] {
        Interpreter I(*WM);
        I.setEngine(E);
        Instrs = I.run().InstructionsExecuted;
      });
      Add(W.Name, execEngineName(E), Ns,
          Ns > 0 ? static_cast<double>(Instrs) / (Ns * 1e-9) : 0);
      if (E == ExecEngineKind::Bytecode && Instrs > 0) {
        BytecodeNsPerInstr += Ns / static_cast<double>(Instrs);
        ++BytecodeSamples;
      }
    }
  }
  if (BytecodeSamples)
    BytecodeNsPerInstr /= BytecodeSamples;

  // Parallel-overhead calibration: the measurements behind the grain
  // model's constants (Schedule.h GrainConfig; derivation in DESIGN.md
  // §11). Each cost is reported both in nanoseconds and — via the mean
  // bytecode ns/instruction above — in interpreted-instruction
  // equivalents (the unit GrainConfig uses).
  {
    ThreadPool Pool(4);
    // Warm the pool (lazy thread spawn must not count as per-chunk cost).
    Pool.submit([] {});
    Pool.wait();
    // pool_spawn_join: submit+execute+join of one empty task — the
    // irreducible per-chunk scheduling cost (GrainConfig::SpawnCost plus
    // the amortized share of JoinCost).
    double SpawnNs = bestNs(Reps, [&] {
      for (int T = 0; T < 64; ++T)
        Pool.submit([] {});
      Pool.wait();
    }) / 64.0;
    BenchRecord RS;
    RS.Workload = "pool_spawn_join";
    RS.Engine = "runtime";
    RS.Threads = 4;
    RS.NsPerIter = SpawnNs;
    if (BytecodeNsPerInstr > 0)
      RS.Extra.push_back(
          {"instr_equiv", SpawnNs / BytecodeNsPerInstr});
    Records.push_back(RS);
    // region_lock: one uncontended lock/unlock of the critical/atomic
    // region spinlock (ExecCore.h RegionLock) — bounds the cost a
    // `#pragma psc atomic` body adds per execution.
    ExecState S(*M);
    double LockNs = bestNs(Reps, [&] {
      for (int T = 0; T < 1024; ++T) {
        S.regionLock().lock();
        S.regionLock().unlock();
      }
    }) / 1024.0;
    BenchRecord RL;
    RL.Workload = "region_lock";
    RL.Engine = "runtime";
    RL.Threads = 1;
    RL.NsPerIter = LockNs;
    if (BytecodeNsPerInstr > 0)
      RL.Extra.push_back({"instr_equiv", LockNs / BytecodeNsPerInstr});
    Records.push_back(RL);
    // Speculation-overhead calibration: the measurements behind the
    // SpecCostModel constants (PlanEnumerator.h; derivation in its
    // comment). A speculative schedule pays per obligation per iteration:
    // each watched endpoint logs a SpecAccessRec into the worker's log,
    // and the validator folds every logged record into its per-location
    // iteration-range table before the conflict check.
    MemObject SpecObj;
    SpecObj.I.resize(64);
    // spec_watch_access: appending one watched access to the worker log —
    // the per-access cost setSpecWatch adds to every watched load/store.
    SpecAccessLog WatchLog;
    double WatchNs = bestNs(Reps, [&] {
      WatchLog.clear();
      for (int T = 0; T < 1024; ++T) {
        SpecAccessRec R;
        R.Obj = &SpecObj;
        R.Off = static_cast<uint64_t>(T & 63);
        R.Iter = T;
        R.Watch = static_cast<uint32_t>(T & 1);
        R.IsWrite = (T & 1) != 0;
        WatchLog.push_back(R);
      }
    }) / 1024.0;
    BenchRecord RW;
    RW.Workload = "spec_watch_access";
    RW.Engine = "runtime";
    RW.Threads = 1;
    RW.NsPerIter = WatchNs;
    if (BytecodeNsPerInstr > 0)
      RW.Extra.push_back({"instr_equiv", WatchNs / BytecodeNsPerInstr});
    Records.push_back(RW);
    // spec_validate_pair: per logged access, the cost of folding the log
    // into the validator's (location, watch) iteration-range table plus
    // the amortized share of the conflict-pair check (one assumed pair,
    // the batch DOALL shape).
    std::vector<std::pair<unsigned, unsigned>> OnePair = {{0, 1}};
    double ValidateNs = bestNs(Reps, [&] {
      SpecValidator V(OnePair);
      V.add(WatchLog);
      std::string Why;
      (void)V.validate(&Why);
    }) / static_cast<double>(WatchLog.size());
    BenchRecord RV;
    RV.Workload = "spec_validate_pair";
    RV.Engine = "runtime";
    RV.Threads = 1;
    RV.NsPerIter = ValidateNs;
    if (BytecodeNsPerInstr > 0)
      RV.Extra.push_back({"instr_equiv", ValidateNs / BytecodeNsPerInstr});
    Records.push_back(RV);
  }

  // trace_off_overhead: the DESIGN.md §13 zero-cost-when-off claim,
  // measured. Every probe compiled into the dispatch hot path (the
  // per-chunk spans in ParallelRuntime) reduces to one relaxed flag load
  // and a branch when tracing is off. Three measurements: the untraced
  // parallel run's wall time, the number of probes that same run fires
  // (counted by tracing one execution), and the off-mode cost of the
  // exact probe shape — giving the modeled overhead fraction that
  // run_benches.sh --check gates at <= 2%.
  {
    RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 4);
    ParallelRuntime RT(*M, Plan, ExecEngineKind::Bytecode);
    double RunNs = bestNs(Reps, [&] { RT.run(); });
    obs::traceEnable();
    RT.run();
    obs::traceDisable();
    double Fires = static_cast<double>(obs::traceCollect().size());
    // Off-mode cost of the hot-path probe shape: a span open/close with
    // two formatted args, amortized over 2^20 firings. Instants cost one
    // flag check instead of two, so charging every firing the full span
    // price is conservative.
    constexpr int kProbes = 1 << 20;
    double ProbeNs = bestNs(Reps, [&] {
                       for (int T = 0; T < kProbes; ++T)
                         obs::TraceSpan Span("bench.probe",
                                             "header=%u chunk=%ld", 0u,
                                             static_cast<long>(T));
                     }) /
                     kProbes;
    BenchRecord RO;
    RO.Workload = "trace_off_overhead";
    RO.Engine = "bytecode";
    RO.Threads = 4;
    RO.NsPerIter = RunNs;
    RO.Extra.push_back({"off_ns_per_probe", ProbeNs});
    RO.Extra.push_back({"probe_fires", Fires});
    RO.Extra.push_back(
        {"overhead_pct", RunNs > 0 ? 100.0 * Fires * ProbeNs / RunNs : 0});
    Records.push_back(RO);
    // trace_on_overhead: the cost of actually recording, measured rather
    // than modeled — the same parallel run with the recorder armed vs.
    // disarmed. Arming stays outside the timed thunk: traceEnable()
    // reallocates every thread's 2 MB ring, a one-time session cost that
    // would otherwise dwarf the per-event price on a millisecond run.
    // Push cost is identical once rings wrap (newest win, same write),
    // so steady-state reps measure full recording cost. Armed sessions
    // are opt-in, but a profiling run must not distort what it profiles,
    // so run_benches.sh --check gates the measured fraction <= 5%.
    obs::traceEnable();
    double OnNs = bestNs(Reps, [&] { RT.run(); });
    obs::traceDisable();
    obs::traceEnable(); // leave clean rings behind for any later user
    obs::traceDisable();
    BenchRecord RN;
    RN.Workload = "trace_on_overhead";
    RN.Engine = "bytecode";
    RN.Threads = 4;
    RN.NsPerIter = OnNs;
    RN.Extra.push_back({"untraced_ns", RunNs});
    RN.Extra.push_back({"events_per_run", Fires});
    RN.Extra.push_back(
        {"overhead_pct", RunNs > 0 ? 100.0 * (OnNs - RunNs) / RunNs : 0});
    Records.push_back(RN);
  }

  if (!writeBenchJson(Path, "micro", Records))
    return 1;
  std::printf("bench_micro: wrote %zu records to %s\n", Records.size(),
              Path.c_str());
  return 0;
}

} // namespace

// --- Google-Benchmark suite --------------------------------------------------

#ifdef PSC_HAVE_GBENCH

#include <benchmark/benchmark.h>

namespace {

void BM_FrontendCompile(benchmark::State &State) {
  for (auto _ : State) {
    auto M = compileOrDie(isSource(), "IS");
    benchmark::DoNotOptimize(M.get());
  }
}
BENCHMARK(BM_FrontendCompile);

void BM_DependenceAnalysis(benchmark::State &State) {
  auto M = compileOrDie(isSource(), "IS");
  const Function *F = M->getFunction("main");
  for (auto _ : State) {
    FunctionAnalysis FA(*F);
    DependenceInfo DI(FA);
    benchmark::DoNotOptimize(DI.edges().size());
  }
}
BENCHMARK(BM_DependenceAnalysis);

void BM_PDGBuild(benchmark::State &State) {
  auto M = compileOrDie(isSource(), "IS");
  FunctionAnalysis FA(*M->getFunction("main"));
  DependenceInfo DI(FA);
  for (auto _ : State) {
    PDG G(FA, DI);
    benchmark::DoNotOptimize(G.numNodes());
  }
}
BENCHMARK(BM_PDGBuild);

void BM_PSPDGBuild(benchmark::State &State) {
  auto M = compileOrDie(isSource(), "IS");
  FunctionAnalysis FA(*M->getFunction("main"));
  DependenceInfo DI(FA);
  for (auto _ : State) {
    auto G = buildPSPDG(FA, DI);
    benchmark::DoNotOptimize(G->numNodes());
  }
}
BENCHMARK(BM_PSPDGBuild);

void BM_Fingerprint(benchmark::State &State) {
  auto M = compileOrDie(isSource(), "IS");
  FunctionAnalysis FA(*M->getFunction("main"));
  DependenceInfo DI(FA);
  auto G = buildPSPDG(FA, DI);
  for (auto _ : State)
    benchmark::DoNotOptimize(fingerprintHash(*G));
}
BENCHMARK(BM_Fingerprint);

void BM_OptionEnumeration(benchmark::State &State) {
  auto M = compileOrDie(isSource(), "IS");
  for (auto _ : State) {
    OptionCount R = enumerateOptions(*M, AbstractionKind::PSPDG);
    benchmark::DoNotOptimize(R.Total);
  }
}
BENCHMARK(BM_OptionEnumeration);

void BM_BytecodeDecode(benchmark::State &State) {
  auto M = compileOrDie(isSource(), "IS");
  for (auto _ : State) {
    BytecodeModule BM(*M);
    benchmark::DoNotOptimize(BM.forFunction(M->getFunction("main")));
  }
}
BENCHMARK(BM_BytecodeDecode);

void BM_WalkerThroughput(benchmark::State &State) {
  auto M = compileOrDie(isSource(), "IS");
  uint64_t Instrs = 0;
  for (auto _ : State) {
    Interpreter I(*M);
    I.setEngine(ExecEngineKind::Walker);
    RunResult R = I.run();
    Instrs += R.InstructionsExecuted;
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WalkerThroughput);

void BM_BytecodeThroughput(benchmark::State &State) {
  auto M = compileOrDie(isSource(), "IS");
  BytecodeModule BM(*M); // decode hoisted: measure pure dispatch
  uint64_t Instrs = 0;
  for (auto _ : State) {
    Interpreter I(*M);
    I.setEngine(ExecEngineKind::Bytecode);
    I.setBytecode(&BM);
    RunResult R = I.run();
    Instrs += R.InstructionsExecuted;
  }
  State.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(Instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BytecodeThroughput);

void BM_TarjanSCC(benchmark::State &State) {
  // Ring-of-rings synthetic graph.
  unsigned N = static_cast<unsigned>(State.range(0));
  std::vector<std::vector<unsigned>> Adj(N);
  for (unsigned I = 0; I < N; ++I) {
    Adj[I].push_back((I + 1) % N);
    if (I % 10 == 0)
      Adj[I].push_back((I + N / 2) % N);
  }
  for (auto _ : State) {
    SCCResult R = computeSCCs(
        N, [&Adj](unsigned Node) -> const std::vector<unsigned> & {
          return Adj[Node];
        });
    benchmark::DoNotOptimize(R.numComponents());
  }
}
BENCHMARK(BM_TarjanSCC)->Arg(100)->Arg(1000)->Arg(10000);

void BM_WorkloadCompile(benchmark::State &State) {
  const Workload &W = nasWorkloads()[static_cast<size_t>(State.range(0))];
  State.SetLabel(W.Name);
  for (auto _ : State) {
    auto M = compileOrDie(W.Source, W.Name);
    benchmark::DoNotOptimize(M.get());
  }
}
BENCHMARK(BM_WorkloadCompile)->DenseRange(0, 7);

} // namespace

#endif // PSC_HAVE_GBENCH

int main(int argc, char **argv) {
  std::string JsonPath;
  unsigned Reps = 3;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--json=", 7) == 0)
      JsonPath = argv[I] + 7;
    else if (std::strncmp(argv[I], "--reps=", 7) == 0)
      Reps = static_cast<unsigned>(std::max(1, std::atoi(argv[I] + 7)));
  }
  if (!JsonPath.empty())
    return runJsonMode(JsonPath, Reps);

#ifdef PSC_HAVE_GBENCH
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  std::fprintf(stderr,
               "bench_micro: built without Google Benchmark; only "
               "--json=PATH mode is available\n");
  return 2;
#endif
}
