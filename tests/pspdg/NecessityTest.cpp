//===- NecessityTest.cpp - Paper §4: every feature is necessary ---*- C++ -*-===//
///
/// For each PS-PDG feature, a pair of semantically-different programs
/// (paper Fig. 11 A–E) must:
///   (1) map to *different* PS-PDGs when the feature is available, and
///   (2) collapse onto the *same* abstraction when it is removed.
/// Fingerprints implement "same abstraction" (canonical serialization).
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "pspdg/Fingerprint.h"
#include "pspdg/PSPDGBuilder.h"
#include "workloads/NecessityPairs.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

std::string fingerprintOf(const std::string &Source, const FeatureSet &F) {
  Compiled C = analyze(Source);
  if (!C.DI)
    return "<compile error>";
  auto G = buildPSPDG(*C.FA, *C.DI, F);
  return fingerprint(*G);
}

class NecessityTest : public ::testing::TestWithParam<NecessityPair> {};

TEST_P(NecessityTest, FullPSPDGDistinguishesThePair) {
  const NecessityPair &P = GetParam();
  std::string Fast = fingerprintOf(P.Fast, FeatureSet::full());
  std::string Slow = fingerprintOf(P.Slow, FeatureSet::full());
  EXPECT_NE(Fast, Slow)
      << "the full PS-PDG must distinguish " << P.Name;
}

TEST_P(NecessityTest, AblatedPSPDGCollapsesThePair) {
  const NecessityPair &P = GetParam();
  std::string Fast = fingerprintOf(P.Fast, P.Ablated);
  std::string Slow = fingerprintOf(P.Slow, P.Ablated);
  EXPECT_EQ(Fast, Slow)
      << "without " << P.Feature << ", " << P.Name
      << " must be indistinguishable";
}

TEST_P(NecessityTest, HashAgreesWithFingerprint) {
  const NecessityPair &P = GetParam();
  Compiled CF = analyze(P.Fast);
  Compiled CS = analyze(P.Slow);
  ASSERT_TRUE(CF.DI && CS.DI);
  auto GF = buildPSPDG(*CF.FA, *CF.DI, P.Ablated);
  auto GS = buildPSPDG(*CS.FA, *CS.DI, P.Ablated);
  EXPECT_EQ(fingerprint(*GF) == fingerprint(*GS),
            fingerprintHash(*GF) == fingerprintHash(*GS));
}

INSTANTIATE_TEST_SUITE_P(
    Fig11, NecessityTest, ::testing::ValuesIn(necessityPairs()),
    [](const ::testing::TestParamInfo<NecessityPair> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(FingerprintTest, IdenticalProgramsAreEqual) {
  const char *Src = R"(
int a[8];
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 8; i++) { a[i] = i; }
  return 0;
}
)";
  EXPECT_EQ(fingerprintOf(Src, FeatureSet::full()),
            fingerprintOf(Src, FeatureSet::full()));
}

TEST(FingerprintTest, DifferentConstantsDiffer) {
  const char *A = "int main() { return 1; }";
  const char *B = "int main() { return 2; }";
  EXPECT_NE(fingerprintOf(A, FeatureSet::full()),
            fingerprintOf(B, FeatureSet::full()));
}

TEST(FingerprintTest, BareGroupingIsTransparent) {
  // A master region with traits removed adds no constraints, so the
  // fingerprint equals the region-free program's.
  const char *WithRegion = R"(
int x;
int main() {
  #pragma psc master
  { x = 1; }
  return x;
}
)";
  const char *Without = R"(
int x;
int main() {
  { x = 1; }
  return x;
}
)";
  EXPECT_EQ(fingerprintOf(WithRegion, FeatureSet::withoutNodeTraits()),
            fingerprintOf(Without, FeatureSet::withoutNodeTraits()));
  EXPECT_NE(fingerprintOf(WithRegion, FeatureSet::full()),
            fingerprintOf(Without, FeatureSet::full()));
}

} // namespace
