//===- SufficiencyTest.cpp - Paper §5: PS-PDG captures the PPM ----*- C++ -*-===//
///
/// The paper groups the OpenMP 5.0 parallel semantics into three families
/// and maps each onto PS-PDG extensions (§5.1–§5.3). These tests exercise
/// the corresponding PSC constructs one by one and check that the expected
/// PS-PDG elements appear — i.e. that no construct is silently dropped.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "pspdg/PSPDGBuilder.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

std::unique_ptr<PSPDG> build(const Compiled &C) {
  return buildPSPDG(*C.FA, *C.DI, FeatureSet::full());
}

// --- §5.1 Declaration of independence ---------------------------------------

TEST(SufficiencyTest, ParallelForMapsToContextualizedIndependence) {
  Compiled C = analyze(R"(
int a[32];
int idx[32];
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 32; i++) { a[idx[i]] += 1; }
  return 0;
}
)");
  auto G = build(C);
  const Loop *L = loopAt(*C.FA, 0);
  // Loop node exists, is a context, and the conservative carried deps on
  // the shared array were removed at exactly this loop.
  ASSERT_NE(G->loopNode(L->getHeader()), NoContext);
  EXPECT_TRUE(G->node(G->loopNode(L->getHeader())).IsContext);
  for (const PSDirectedEdge &E : G->directedEdges())
    if (E.MemObject && E.MemObject->getName() == "a") {
      EXPECT_TRUE(E.CarriedAtHeaders.empty());
    }
}

TEST(SufficiencyTest, IndependenceScopedToAnnotatedLoopOnly) {
  // Inner worksharing: outer-carried deps must survive.
  Compiled C = analyze(R"(
double buf[1024];
int idx[32];
int main() {
  int i;
  int j;
  for (i = 1; i < 32; i++) {
    #pragma psc for
    for (j = 0; j < 32; j++) {
      buf[idx[j] * 32 + i] = buf[idx[j] * 32 + i - 1] + 1.0;
    }
  }
  return 0;
}
)");
  auto G = build(C);
  const Loop *Outer = loopAt(*C.FA, 0);
  const Loop *Inner = loopAt(*C.FA, 1);
  bool OuterCarried = false, InnerCarried = false;
  for (const PSDirectedEdge &E : G->directedEdges()) {
    if (!E.MemObject || E.MemObject->getName() != "buf")
      continue;
    if (E.CarriedAtHeaders.count(Outer->getHeader()))
      OuterCarried = true;
    if (E.CarriedAtHeaders.count(Inner->getHeader()))
      InnerCarried = true;
  }
  EXPECT_TRUE(OuterCarried);  // dependence between outer iterations is real
  EXPECT_FALSE(InnerCarried); // declared independent in this context
}

TEST(SufficiencyTest, BarrierConstrainsViaMarker) {
  Compiled C = analyze(R"(
int main() {
  #pragma psc parallel
  {
    #pragma psc barrier
  }
  return 0;
}
)");
  ASSERT_TRUE(C.FA);
  bool Marker = false;
  for (Instruction *I : C.FA->instructions())
    if (auto *CI = dyn_cast<CallInst>(I))
      if (CI->getCallee()->getName() == intrinsics::BarrierMarker)
        Marker = true;
  EXPECT_TRUE(Marker);
}

// --- §5.2 Data and its properties ---------------------------------------------

TEST(SufficiencyTest, ThreadPrivateBecomesPrivatizableVariable) {
  Compiled C = analyze(R"(
int buf[64];
#pragma psc threadprivate(buf)
int main() {
  int i;
  #pragma psc for
  for (i = 0; i < 64; i++) { buf[i % 8] += i; }
  return 0;
}
)");
  auto G = build(C);
  const PSVariable *V = G->variableFor(C.M->getGlobal("buf"));
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->Kind, PSVariable::VarKind::Privatizable);
  EXPECT_FALSE(V->DefNodes.empty());
}

TEST(SufficiencyTest, PrivateClauseBecomesPrivatizableVariable) {
  Compiled C = analyze(R"(
int a[16];
int main() {
  int i;
  int t;
  #pragma psc parallel for private(t)
  for (i = 0; i < 16; i++) { t = a[i]; a[i] = t * 2; }
  return 0;
}
)");
  auto G = build(C);
  bool Found = false;
  for (const PSVariable &V : G->variables())
    if (V.Name == "t" && V.Kind == PSVariable::VarKind::Privatizable)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(SufficiencyTest, BuiltinReductionsBecomeReducibleVariables) {
  Compiled C = analyze(R"(
double s;
double m;
int main() {
  int i;
  #pragma psc parallel for reduction(+: s) reduction(max: m)
  for (i = 0; i < 16; i++) { s = s + i; m = fmax(m, i * 1.0); }
  return 0;
}
)");
  auto G = build(C);
  unsigned Reducibles = 0;
  for (const PSVariable &V : G->variables())
    if (V.Kind == PSVariable::VarKind::Reducible)
      ++Reducibles;
  EXPECT_EQ(Reducibles, 2u);
}

TEST(SufficiencyTest, CustomReducerRecordedAsMergeNode) {
  Compiled C = analyze(R"(
double pt[4];
#pragma psc reducible(pt : merge)
void merge(double a[], double b[]) {
  int k;
  for (k = 0; k < 4; k++) { a[k] = a[k] + b[k]; }
}
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 64; i++) { pt[i % 4] += 1.0; }
  return 0;
}
)");
  auto G = build(C);
  const PSVariable *V = G->variableFor(C.M->getGlobal("pt"));
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->Kind, PSVariable::VarKind::Reducible);
  EXPECT_EQ(V->Op, ReduceOp::Custom);
  ASSERT_NE(V->CustomReducer, nullptr);
  EXPECT_EQ(V->CustomReducer->getName(), "merge");
}

TEST(SufficiencyTest, FirstPrivateBecomesAllConsumersSelector) {
  Compiled C = analyze(R"(
int seed;
int a[16];
int main() {
  int i;
  seed = 7;
  #pragma psc parallel for firstprivate(seed)
  for (i = 0; i < 16; i++) { a[i] = seed + i; }
  return 0;
}
)");
  auto G = build(C);
  bool Found = false;
  for (const PSDirectedEdge &E : G->directedEdges())
    if (E.Selector && E.Selector->Kind == SelectorKind::AllConsumers)
      Found = true;
  EXPECT_TRUE(Found);
}

// --- §5.3 Ordering ---------------------------------------------------------------

TEST(SufficiencyTest, CriticalMapsToUnorderedAtomicNode) {
  Compiled C = analyze(R"(
int x;
int idx[32];
int hist[8];
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 32; i++) {
    #pragma psc critical
    { hist[idx[i]] += 1; }
  }
  return 0;
}
)");
  auto G = build(C);
  bool NodeOK = false;
  for (PSNodeId N = 0; N < G->numNodes(); ++N)
    if (G->node(N).Region == PSRegionKind::CriticalRegion &&
        G->node(N).hasTrait(TraitKind::Atomic) &&
        G->node(N).hasTrait(TraitKind::Unordered))
      NodeOK = true;
  EXPECT_TRUE(NodeOK);
  EXPECT_FALSE(G->undirectedEdges().empty());
}

TEST(SufficiencyTest, AtomicMapsLikeCritical) {
  Compiled C = analyze(R"(
double q[8];
int idx[32];
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 32; i++) {
    #pragma psc atomic
    q[idx[i]] += 1.0;
  }
  return 0;
}
)");
  auto G = build(C);
  bool Found = false;
  for (PSNodeId N = 0; N < G->numNodes(); ++N)
    if (G->node(N).Region == PSRegionKind::AtomicRegion &&
        G->node(N).hasTrait(TraitKind::Atomic))
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(SufficiencyTest, NamedCriticalsAreSeparateLocks) {
  // Two different lock names: conflicts between them are NOT absorbed
  // into an undirected edge (they can overlap).
  Compiled C = analyze(R"(
int x;
int y;
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 16; i++) {
    #pragma psc critical(lockx)
    { x += 1; }
    #pragma psc critical(locky)
    { y += 1; }
  }
  return 0;
}
)");
  auto G = build(C);
  // Undirected edges exist within each lock (self pairs) but never between
  // the two regions of different names.
  for (const PSUndirectedEdge &E : G->undirectedEdges()) {
    const PSNode &A = G->node(E.A);
    const PSNode &B = G->node(E.B);
    EXPECT_EQ(A.CriticalName, B.CriticalName);
  }
}

} // namespace
