//===- PSPDGBuilderTest.cpp - PS-PDG construction ----------------*- C++ -*-===//

#include "../TestUtil.h"
#include "pspdg/PSPDGBuilder.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

std::unique_ptr<PSPDG> build(const Compiled &C,
                             const FeatureSet &F = FeatureSet()) {
  return buildPSPDG(*C.FA, *C.DI, F);
}

TEST(PSPDGBuilderTest, RootIsFunctionContext) {
  Compiled C = analyze("int main() { return 0; }");
  auto G = build(C);
  EXPECT_TRUE(G->node(G->root()).IsHierarchical);
  EXPECT_EQ(G->node(G->root()).Region, PSRegionKind::Function);
  EXPECT_TRUE(G->node(G->root()).IsContext);
}

TEST(PSPDGBuilderTest, MarkerCallsHaveNoLeaves) {
  Compiled C = analyze(R"(
int x;
int main() {
  #pragma psc critical
  { x = 1; }
  return x;
}
)");
  auto G = build(C);
  for (Instruction *I : C.FA->instructions())
    if (auto *CI = dyn_cast<CallInst>(I)) {
      if (Module::isMarkerIntrinsicName(CI->getCallee()->getName()))
        EXPECT_EQ(G->leafOf(I), NoContext);
      else
        EXPECT_NE(G->leafOf(I), NoContext);
    }
}

TEST(PSPDGBuilderTest, LoopsBecomeHierarchicalContextNodes) {
  Compiled C = analyze(R"(
int a[8];
int main() {
  int i;
  int j;
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) { a[j] = i; }
  }
  return 0;
}
)");
  auto G = build(C);
  const Loop *Outer = loopAt(*C.FA, 0);
  const Loop *Inner = loopAt(*C.FA, 1);
  PSNodeId ON = G->loopNode(Outer->getHeader());
  PSNodeId IN = G->loopNode(Inner->getHeader());
  ASSERT_NE(ON, NoContext);
  ASSERT_NE(IN, NoContext);
  EXPECT_TRUE(G->node(ON).IsContext);
  // Inner loop node nests (transitively) under the outer loop node.
  PSNodeId P = G->node(IN).Parent;
  while (P != NoContext && P != ON)
    P = G->node(P).Parent;
  EXPECT_EQ(P, ON);
}

TEST(PSPDGBuilderTest, CriticalRegionGetsAtomicUnorderedTraits) {
  Compiled C = analyze(R"(
int x;
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 8; i++) {
    #pragma psc critical
    { x += 1; }
  }
  return x;
}
)");
  auto G = build(C);
  bool Found = false;
  for (PSNodeId N = 0; N < G->numNodes(); ++N) {
    const PSNode &Node = G->node(N);
    if (Node.Region == PSRegionKind::CriticalRegion) {
      Found = true;
      EXPECT_TRUE(Node.hasTrait(TraitKind::Atomic));
      EXPECT_TRUE(Node.hasTrait(TraitKind::Unordered));
    }
  }
  EXPECT_TRUE(Found);
}

TEST(PSPDGBuilderTest, SingleRegionGetsSingularTrait) {
  Compiled C = analyze(R"(
int main() {
  #pragma psc parallel
  {
    #pragma psc single
    { print(1); }
  }
  return 0;
}
)");
  auto G = build(C);
  bool Found = false;
  for (PSNodeId N = 0; N < G->numNodes(); ++N)
    if (G->node(N).Region == PSRegionKind::SingleRegion) {
      Found = true;
      EXPECT_TRUE(G->node(N).hasTrait(TraitKind::Singular));
    }
  EXPECT_TRUE(Found);
}

TEST(PSPDGBuilderTest, CriticalConflictsBecomeUndirectedEdges) {
  Compiled C = analyze(R"(
int hist[16];
int idx[64];
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 64; i++) {
    #pragma psc critical
    { hist[idx[i]] += 1; }
  }
  return 0;
}
)");
  auto G = build(C);
  EXPECT_FALSE(G->undirectedEdges().empty());
  // And the directed carried conflicts on hist at that loop are gone.
  const Loop *L = loopAt(*C.FA, 0);
  for (const PSDirectedEdge &E : G->directedEdges())
    if (E.MemObject && E.MemObject->getName() == "hist") {
      EXPECT_FALSE(E.CarriedAtHeaders.count(L->getHeader()));
    }
}

TEST(PSPDGBuilderTest, OrderedRegionKeepsDirectedEdges) {
  Compiled C = analyze(R"(
int hist[16];
int idx[64];
int main() {
  int i;
  #pragma psc parallel for ordered
  for (i = 0; i < 64; i++) {
    #pragma psc ordered
    { hist[idx[i]] += 1; }
  }
  return 0;
}
)");
  auto G = build(C);
  EXPECT_TRUE(G->undirectedEdges().empty());
  const Loop *L = loopAt(*C.FA, 0);
  bool CarriedKept = false;
  for (const PSDirectedEdge &E : G->directedEdges())
    if (E.MemObject && E.MemObject->getName() == "hist" &&
        E.CarriedAtHeaders.count(L->getHeader()))
      CarriedKept = true;
  EXPECT_TRUE(CarriedKept);
}

TEST(PSPDGBuilderTest, DeclaredIndependenceDropsCarriedDeps) {
  // Indirect subscript: analysis keeps the dep; the annotation removes it.
  Compiled C = analyze(R"(
int a[64];
int idx[64];
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 64; i++) { a[idx[i]] = i; }
  return 0;
}
)");
  auto G = build(C);
  const Loop *L = loopAt(*C.FA, 0);
  for (const PSDirectedEdge &E : G->directedEdges())
    if (E.MemObject && E.MemObject->getName() == "a") {
      EXPECT_FALSE(E.CarriedAtHeaders.count(L->getHeader()));
    }

  // Without contexts the declaration cannot be scoped: deps stay.
  auto G2 = build(C, FeatureSet::withoutContexts());
  bool Kept = false;
  for (const PSDirectedEdge &E : G2->directedEdges())
    if (E.MemObject && E.MemObject->getName() == "a" &&
        E.CarriedAtHeaders.count(L->getHeader()))
      Kept = true;
  EXPECT_TRUE(Kept);
}

TEST(PSPDGBuilderTest, ReductionVariableRecorded) {
  Compiled C = analyze(R"(
int main() {
  int i;
  int s;
  s = 0;
  #pragma psc parallel for reduction(+: s)
  for (i = 0; i < 8; i++) { s += i; }
  return s;
}
)");
  auto G = build(C);
  ASSERT_EQ(G->variables().size(), 1u);
  const PSVariable &V = G->variables()[0];
  EXPECT_EQ(V.Kind, PSVariable::VarKind::Reducible);
  EXPECT_EQ(V.Op, ReduceOp::Add);
  EXPECT_EQ(V.Name, "s");
  EXPECT_FALSE(V.UseNodes.empty());
  EXPECT_FALSE(V.DefNodes.empty());
  // Carried deps on s at the annotated loop are gone.
  const Loop *L = loopAt(*C.FA, 0);
  for (const PSDirectedEdge &E : G->directedEdges())
    if (E.MemObject && E.MemObject->getName() == "s") {
      EXPECT_FALSE(E.CarriedAtHeaders.count(L->getHeader()));
    }
}

TEST(PSPDGBuilderTest, WithoutPSVReductionDepsStay) {
  Compiled C = analyze(R"(
int main() {
  int i;
  int s;
  s = 0;
  #pragma psc parallel for reduction(+: s)
  for (i = 0; i < 8; i++) { s += i; }
  return s;
}
)");
  auto G = build(C, FeatureSet::withoutParallelVariables());
  EXPECT_TRUE(G->variables().empty());
  const Loop *L = loopAt(*C.FA, 0);
  bool Kept = false;
  for (const PSDirectedEdge &E : G->directedEdges())
    if (E.MemObject && E.MemObject->getName() == "s" &&
        E.CarriedAtHeaders.count(L->getHeader()))
      Kept = true;
  EXPECT_TRUE(Kept);
}

TEST(PSPDGBuilderTest, LastPrivateGetsLastProducerSelector) {
  Compiled C = analyze(R"(
int v;
int data[32];
int main() {
  int i;
  #pragma psc parallel for lastprivate(v)
  for (i = 0; i < 32; i++) { v = data[i]; }
  return v;
}
)");
  auto G = build(C);
  bool Found = false;
  for (const PSDirectedEdge &E : G->directedEdges())
    if (E.Selector && E.Selector->Kind == SelectorKind::LastProducer)
      Found = true;
  EXPECT_TRUE(Found);

  auto G2 = build(C, FeatureSet::withoutDataSelectors());
  for (const PSDirectedEdge &E : G2->directedEdges())
    EXPECT_FALSE(E.Selector.has_value());
}

TEST(PSPDGBuilderTest, RelaxedGetsAnyProducerSelector) {
  Compiled C = analyze(R"(
int v;
int data[32];
int main() {
  int i;
  #pragma psc parallel for relaxed(v)
  for (i = 0; i < 32; i++) { v = data[i]; }
  return v;
}
)");
  auto G = build(C);
  bool Found = false;
  for (const PSDirectedEdge &E : G->directedEdges())
    if (E.Selector && E.Selector->Kind == SelectorKind::AnyProducer)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(PSPDGBuilderTest, WithoutHierarchicalNodesOnlyRootAndLeaves) {
  Compiled C = analyze(R"(
int x;
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 8; i++) {
    #pragma psc critical
    { x += 1; }
  }
  return x;
}
)");
  auto G = build(C, FeatureSet::withoutHierarchicalNodes());
  unsigned Hier = 0;
  for (PSNodeId N = 0; N < G->numNodes(); ++N)
    if (G->node(N).IsHierarchical)
      ++Hier;
  EXPECT_EQ(Hier, 1u); // just the function root
  EXPECT_TRUE(G->undirectedEdges().empty());
}

TEST(PSPDGBuilderTest, SummaryAndDotRender) {
  Compiled C = analyze(R"(
int x;
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 8; i++) {
    #pragma psc critical
    { x += 1; }
  }
  return x;
}
)");
  auto G = build(C);
  std::string S = G->summary();
  EXPECT_NE(S.find("hierarchical"), std::string::npos);
  std::string Dot = G->toDot();
  EXPECT_NE(Dot.find("digraph PSPDG"), std::string::npos);
  EXPECT_NE(Dot.find("cluster"), std::string::npos);
}

} // namespace
