//===- CilkTest.cpp - Appendix A: the Cilk model in the PS-PDG ----*- C++ -*-===//
///
/// The paper's Appendix A maps Cilk onto the PS-PDG: cilk_spawn becomes a
/// SESE hierarchical node whose strand runs concurrently with the
/// continuation until the next cilk_sync; hyperobjects become reducible
/// parallel-semantic variables. PSC spells these `spawn f(...);`, `sync;`,
/// and `#pragma psc reducible`.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Interpreter.h"
#include "parallel/AbstractionView.h"
#include "pspdg/PSPDGBuilder.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

TEST(CilkTest, SpawnParsesAndRuns) {
  auto M = compile(R"(
int acc;
void work(int v) { acc += v; }
int main() {
  spawn work(3);
  spawn work(4);
  sync;
  return acc;
}
)");
  ASSERT_NE(M, nullptr);
  Interpreter I(*M);
  EXPECT_EQ(I.run().ExitValue, 7); // sequential semantics preserved
}

TEST(CilkTest, SpawnRequiresDefinedFunctionCall) {
  auto D = compileExpectError("int main() { spawn 3; return 0; }");
  EXPECT_FALSE(D.empty());
  auto D2 = compileExpectError("int main() { spawn sqrt(2.0); return 0; }");
  EXPECT_FALSE(D2.empty()); // builtins are not spawnable strands
}

TEST(CilkTest, SpawnBecomesTaskRegionNode) {
  Compiled C = analyze(R"(
int acc;
void work(int v) { acc += v; }
int main() {
  spawn work(1);
  sync;
  return acc;
}
)");
  auto G = buildPSPDG(*C.FA, *C.DI);
  bool Found = false;
  for (PSNodeId N = 0; N < G->numNodes(); ++N)
    if (G->node(N).Region == PSRegionKind::TaskRegion) {
      Found = true;
      EXPECT_TRUE(G->node(N).IsHierarchical);
    }
  EXPECT_TRUE(Found);
}

TEST(CilkTest, TaskAndContinuationAreConcurrent) {
  // The spawned strand's write and the continuation's write conflict, but
  // spawn declares them concurrent until the sync.
  Compiled C = analyze(R"(
int shared_buf[8];
void work(int v) { shared_buf[v % 8] = v; }
int main() {
  int t;
  spawn work(5);
  t = shared_buf[3];
  sync;
  return t;
}
)");
  auto G = buildPSPDG(*C.FA, *C.DI);

  // Find the spawned call's leaf and the continuation load's leaf; no
  // directed edge may order them.
  PSNodeId CallLeaf = NoContext, LoadLeaf = NoContext;
  for (Instruction *I : C.FA->instructions()) {
    if (auto *CI = dyn_cast<CallInst>(I))
      if (CI->getCallee()->getName() == "work")
        CallLeaf = G->leafOf(I);
    if (auto *LI = dyn_cast<LoadInst>(I))
      if (auto *GEP = dyn_cast<GEPInst>(LI->getPointer()))
        if (findUnderlyingObject(GEP->getBase())->getName() == "shared_buf")
          LoadLeaf = G->leafOf(I);
  }
  ASSERT_NE(CallLeaf, NoContext);
  ASSERT_NE(LoadLeaf, NoContext);
  for (const PSDirectedEdge &E : G->directedEdges()) {
    bool Orders = (E.Src == CallLeaf && E.Dst == LoadLeaf) ||
                  (E.Src == LoadLeaf && E.Dst == CallLeaf);
    EXPECT_FALSE(Orders && E.Kind != DepKind::Control)
        << "spawned strand must be concurrent with its continuation";
  }
}

TEST(CilkTest, SyncRestoresOrdering) {
  // Same conflict, but a sync intervenes: the ordering must survive.
  Compiled C = analyze(R"(
int shared_buf[8];
void work(int v) { shared_buf[v % 8] = v; }
int main() {
  int t;
  spawn work(5);
  sync;
  t = shared_buf[3];
  return t;
}
)");
  auto G = buildPSPDG(*C.FA, *C.DI);
  bool Ordered = false;
  for (const PSDirectedEdge &E : G->directedEdges()) {
    const PSNode &Src = G->node(E.Src);
    const PSNode &Dst = G->node(E.Dst);
    bool IsMem = E.Kind == DepKind::MemoryRAW ||
                 E.Kind == DepKind::MemoryWAR || E.Kind == DepKind::MemoryWAW;
    if (IsMem && Src.I && Dst.I && isa<CallInst>(Src.I) &&
        isa<LoadInst>(Dst.I))
      Ordered = true;
  }
  EXPECT_TRUE(Ordered);
}

TEST(CilkTest, SpawnLoopIsDOALLUnderPSPDGOnly) {
  // cilk_for idiom: spawn per iteration, sync after the loop.
  Compiled C = analyze(R"(
int results[64];
void work(int i) { results[i % 64] = i * 3; }
int main() {
  int i;
  for (i = 0; i < 64; i++) {
    spawn work(i);
  }
  sync;
  return results[0];
}
)");
  auto G = buildPSPDG(*C.FA, *C.DI);
  AbstractionView PDGView(AbstractionKind::PDG, *C.FA, *C.DI);
  AbstractionView PSView(AbstractionKind::PSPDG, *C.FA, *C.DI, G.get());
  const Loop *L = loopAt(*C.FA, 0);

  LoopPlanView PDGPlan = PDGView.viewFor(*L);
  LoopSCCDAG PDGDag(PDGPlan);
  EXPECT_FALSE(PDGDag.allParallel()); // opaque call: conservative

  LoopPlanView PSPlan = PSView.viewFor(*L);
  LoopSCCDAG PSDag(PSPlan);
  EXPECT_TRUE(PSDag.allParallel() && PSPlan.TripCountable);
}

TEST(CilkTest, SyncInsideLoopKeepsCarriedDeps) {
  // spawn+sync per iteration: strands never overlap across iterations.
  Compiled C = analyze(R"(
int acc;
void work(int i) { acc += i; }
int main() {
  int i;
  for (i = 0; i < 64; i++) {
    spawn work(i);
    sync;
  }
  return acc;
}
)");
  auto G = buildPSPDG(*C.FA, *C.DI);
  const Loop *L = loopAt(*C.FA, 0);
  bool CarriedKept = false;
  for (const PSDirectedEdge &E : G->directedEdges())
    if (E.Kind != DepKind::Register && E.Kind != DepKind::Control &&
        E.CarriedAtHeaders.count(L->getHeader()))
      CarriedKept = true;
  EXPECT_TRUE(CarriedKept);
}

TEST(CilkTest, HyperobjectMakesSpawnedReductionSafe) {
  // A Cilk hyperobject: the reducible variable justifies reordering the
  // strands' updates (Appendix A + Fig. 10).
  Compiled C = analyze(R"(
double views[4];
#pragma psc reducible(views : merge_views)
void merge_views(double a[], double b[]) {
  int k;
  for (k = 0; k < 4; k++) { a[k] = a[k] + b[k]; }
}
void work(int i) { views[i % 4] = views[i % 4] + 1.0; }
int main() {
  int i;
  for (i = 0; i < 64; i++) {
    spawn work(i);
  }
  sync;
  return views[0];
}
)");
  auto G = buildPSPDG(*C.FA, *C.DI);
  const PSVariable *V = G->variableFor(C.M->getGlobal("views"));
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->Kind, PSVariable::VarKind::Reducible);
  ASSERT_NE(V->CustomReducer, nullptr);
}

TEST(CilkTest, WithoutHierarchicalNodesSpawnIsLost) {
  // Fig. 11-style ablation for the Cilk model: without SESE hierarchical
  // nodes the spawned concurrency is not representable.
  Compiled C = analyze(R"(
int results[64];
void work(int i) { results[i % 64] = i * 3; }
int main() {
  int i;
  for (i = 0; i < 64; i++) {
    spawn work(i);
  }
  sync;
  return results[0];
}
)");
  auto G =
      buildPSPDG(*C.FA, *C.DI, FeatureSet::withoutHierarchicalNodes());
  AbstractionView PSView(AbstractionKind::PSPDG, *C.FA, *C.DI, G.get());
  const Loop *L = loopAt(*C.FA, 0);
  LoopSCCDAG DAG(PSView.viewFor(*L));
  EXPECT_FALSE(DAG.allParallel());
}

} // namespace
