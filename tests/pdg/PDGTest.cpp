//===- PDGTest.cpp - Classic PDG construction --------------------*- C++ -*-===//

#include "../TestUtil.h"
#include "pdg/PDG.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

TEST(PDGTest, NodesMatchInstructions) {
  Compiled C = analyze("int main() { int x; x = 1; return x; }");
  PDG G(*C.FA, *C.Stack);
  EXPECT_EQ(G.numNodes(), C.FA->instructions().size());
  for (unsigned N = 0; N < G.numNodes(); ++N)
    EXPECT_EQ(G.node(N), C.FA->instructions()[N]);
}

TEST(PDGTest, EdgesMatchDependenceInfo) {
  Compiled C = analyze(R"(
int a[8];
int main() {
  int i;
  for (i = 0; i < 8; i++) { a[i] = i; }
  return a[3];
}
)");
  PDG G(*C.FA, *C.Stack);
  EXPECT_EQ(G.edges().size(), C.DI->edges().size());
}

TEST(PDGTest, OutEdgeAdjacencyConsistent) {
  Compiled C = analyze("int main() { int x; x = 1 + 2; return x; }");
  PDG G(*C.FA, *C.Stack);
  unsigned Counted = 0;
  for (unsigned N = 0; N < G.numNodes(); ++N)
    for (unsigned E : G.outEdges(N)) {
      EXPECT_EQ(C.FA->indexOf(G.edges()[E].Src), N);
      ++Counted;
    }
  EXPECT_EQ(Counted, G.edges().size());
}

TEST(PDGTest, LoopSubgraphRestriction) {
  Compiled C = analyze(R"(
int a[8];
int main() {
  int i;
  a[0] = 9;
  for (i = 1; i < 8; i++) { a[i] = a[i - 1]; }
  return 0;
}
)");
  PDG G(*C.FA, *C.Stack);
  const Loop *L = loopAt(*C.FA, 0);
  for (const DepEdge *E : G.edgesWithin(*L)) {
    EXPECT_TRUE(L->contains(E->Src->getParent()->getIndex()));
    EXPECT_TRUE(L->contains(E->Dst->getParent()->getIndex()));
  }
}

TEST(PDGTest, DotOutputWellFormed) {
  Compiled C = analyze("int main() { int x; x = 2; print(x); return x; }");
  PDG G(*C.FA, *C.Stack);
  std::string Dot = G.toDot();
  EXPECT_NE(Dot.find("digraph PDG"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
  EXPECT_EQ(Dot.find("null"), std::string::npos);
}

TEST(PDGTest, PDGSeesNoParallelSemantics) {
  // The PDG of an annotated program equals the PDG of the plain program —
  // the motivating limitation (paper §2.2).
  Compiled C1 = analyze(R"(
int a[32];
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 32; i++) { a[i] = i; }
  return 0;
}
)");
  Compiled C2 = analyze(R"(
int a[32];
int main() {
  int i;
  for (i = 0; i < 32; i++) { a[i] = i; }
  return 0;
}
)");
  PDG G1(*C1.FA, *C1.Stack);
  PDG G2(*C2.FA, *C2.Stack);
  EXPECT_EQ(G1.numNodes(), G2.numNodes());
  EXPECT_EQ(G1.edges().size(), G2.edges().size());
}

} // namespace
