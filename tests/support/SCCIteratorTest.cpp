//===- SCCIteratorTest.cpp - Tarjan SCC over small graphs --------*- C++ -*-===//

#include "support/SCCIterator.h"

#include <gtest/gtest.h>

using namespace psc;

namespace {

SCCResult runSCC(unsigned N, std::vector<std::vector<unsigned>> Adj) {
  return computeSCCs(N, [Adj](unsigned Node) -> const std::vector<unsigned> & {
    static thread_local std::vector<unsigned> Empty;
    (void)Empty;
    return Adj[Node];
  });
}

TEST(SCCIteratorTest, EmptyGraph) {
  SCCResult R = runSCC(0, {});
  EXPECT_EQ(R.numComponents(), 0u);
}

TEST(SCCIteratorTest, SingleNodeNoEdge) {
  SCCResult R = runSCC(1, {{}});
  ASSERT_EQ(R.numComponents(), 1u);
  EXPECT_EQ(R.Components[0].size(), 1u);
}

TEST(SCCIteratorTest, TwoNodeCycle) {
  SCCResult R = runSCC(2, {{1}, {0}});
  ASSERT_EQ(R.numComponents(), 1u);
  EXPECT_EQ(R.Components[0].size(), 2u);
}

TEST(SCCIteratorTest, ChainHasSingletonComponents) {
  SCCResult R = runSCC(4, {{1}, {2}, {3}, {}});
  EXPECT_EQ(R.numComponents(), 4u);
  for (auto &C : R.Components)
    EXPECT_EQ(C.size(), 1u);
}

TEST(SCCIteratorTest, ReverseTopologicalEmission) {
  // 0 -> 1 -> 2: component of 2 must be emitted before that of 0.
  SCCResult R = runSCC(3, {{1}, {2}, {}});
  EXPECT_LT(R.ComponentOf[2], R.ComponentOf[0]);
}

TEST(SCCIteratorTest, MixedCycleAndTail) {
  // {0,1,2} cycle feeding 3 -> 4.
  SCCResult R = runSCC(5, {{1}, {2}, {0, 3}, {4}, {}});
  EXPECT_EQ(R.numComponents(), 3u);
  EXPECT_EQ(R.ComponentOf[0], R.ComponentOf[1]);
  EXPECT_EQ(R.ComponentOf[1], R.ComponentOf[2]);
  EXPECT_NE(R.ComponentOf[2], R.ComponentOf[3]);
}

TEST(SCCIteratorTest, SelfEdgeStillSingleton) {
  SCCResult R = runSCC(2, {{0, 1}, {}});
  EXPECT_EQ(R.numComponents(), 2u);
  EXPECT_TRUE(R.isNonTrivial(R.ComponentOf[0], /*HasSelfEdge=*/true));
  EXPECT_FALSE(R.isNonTrivial(R.ComponentOf[1], /*HasSelfEdge=*/false));
}

TEST(SCCIteratorTest, DisconnectedComponents) {
  SCCResult R = runSCC(4, {{1}, {0}, {3}, {2}});
  EXPECT_EQ(R.numComponents(), 2u);
}

TEST(SCCIteratorTest, LargeCycleStress) {
  // One big ring of 500 nodes: a single component.
  unsigned N = 500;
  std::vector<std::vector<unsigned>> Adj(N);
  for (unsigned I = 0; I < N; ++I)
    Adj[I].push_back((I + 1) % N);
  SCCResult R = runSCC(N, Adj);
  EXPECT_EQ(R.numComponents(), 1u);
  EXPECT_EQ(R.Components[0].size(), N);
}

TEST(SCCIteratorTest, DeepChainNoStackOverflow) {
  // Iterative implementation must handle deep chains.
  unsigned N = 200000;
  std::vector<std::vector<unsigned>> Adj(N);
  for (unsigned I = 0; I + 1 < N; ++I)
    Adj[I].push_back(I + 1);
  SCCResult R = computeSCCs(
      N, [&Adj](unsigned Node) -> const std::vector<unsigned> & {
        return Adj[Node];
      });
  EXPECT_EQ(R.numComponents(), N);
}

} // namespace
