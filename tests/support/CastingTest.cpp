//===- CastingTest.cpp - isa/cast/dyn_cast behaviour ------------*- C++ -*-===//

#include "support/Casting.h"

#include <gtest/gtest.h>

namespace {

struct Base {
  enum class Kind { A, B, C };
  explicit Base(Kind K) : K(K) {}
  Kind getKind() const { return K; }
  Kind K;
};

struct A : Base {
  A() : Base(Kind::A) {}
  static bool classof(const Base *B) { return B->getKind() == Kind::A; }
};

struct B : Base {
  B() : Base(Kind::B) {}
  int Payload = 7;
  static bool classof(const Base *Bs) { return Bs->getKind() == Kind::B; }
};

using namespace psc;

TEST(CastingTest, IsaPositive) {
  A X;
  Base *P = &X;
  EXPECT_TRUE(isa<A>(P));
}

TEST(CastingTest, IsaNegative) {
  A X;
  Base *P = &X;
  EXPECT_FALSE(isa<B>(P));
}

TEST(CastingTest, CastRoundTrip) {
  B X;
  Base *P = &X;
  EXPECT_EQ(cast<B>(P)->Payload, 7);
}

TEST(CastingTest, DynCastReturnsNullOnMismatch) {
  A X;
  Base *P = &X;
  EXPECT_EQ(dyn_cast<B>(P), nullptr);
  EXPECT_NE(dyn_cast<A>(P), nullptr);
}

TEST(CastingTest, DynCastOrNullHandlesNull) {
  Base *P = nullptr;
  EXPECT_EQ(dyn_cast_or_null<A>(P), nullptr);
}

TEST(CastingTest, IsaAndNonnull) {
  Base *P = nullptr;
  EXPECT_FALSE(isa_and_nonnull<A>(P));
  A X;
  P = &X;
  EXPECT_TRUE(isa_and_nonnull<A>(P));
}

TEST(CastingTest, ConstCast) {
  B X;
  const Base *P = &X;
  EXPECT_TRUE(isa<B>(P));
  EXPECT_EQ(cast<B>(P)->Payload, 7);
  EXPECT_EQ(dyn_cast<A>(P), nullptr);
}

} // namespace
