//===- HealthTest.cpp - pscd health layer and forensics op ----------------===//
///
/// The always-on health layer (DESIGN.md §14) through handle()
/// in-process:
///
///   * the `health` op's SLO rollups — session/error accounting, p99
///     grading against the target, cache hit-rate floors, per-stage
///     cpu-time accounting — and the evidence rule: an idle server is
///     healthy, floors grade only once a surface has traffic;
///   * failed sessions count against the error rate and flip the overall
///     verdict once the rate exceeds the configured maximum;
///   * the slow-session log's counter;
///   * the `forensics` op returns the resident flight-recorder ring
///     byte-identical to the pscc --misspec-out artifact's record lines
///     (the shared-renderer acceptance criterion).
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "emulator/Interpreter.h"
#include "frontend/Frontend.h"
#include "obs/Forensics.h"
#include "profiling/DepProfiler.h"
#include "runtime/ParallelRuntime.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::service;

namespace {

const char *SimpleSrc = R"PSC(
int a[64];
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 64; i++) {
    a[i] = i * i;
  }
  for (i = 0; i < 64; i++) {
    s = s + a[i];
  }
  print(s);
  return 0;
}
)PSC";

Message sessionReq(const std::string &Source, const std::string &Mode) {
  return Message{{"op", "session"},
                 {"source", Source},
                 {"name", "session"},
                 {"mode", Mode}};
}

long healthLong(const std::string &J, const std::string &Key) {
  std::string K = "\"" + Key + "\":";
  size_t P = J.find(K);
  return P == std::string::npos ? -1 : std::atol(J.c_str() + P + K.size());
}

double healthDouble(const std::string &J, const std::string &Key) {
  std::string K = "\"" + Key + "\":";
  size_t P = J.find(K);
  return P == std::string::npos ? -1.0
                                : std::atof(J.c_str() + P + K.size());
}

/// The "Key":true|false grade; -1 when absent.
int healthBool(const std::string &J, const std::string &Key) {
  std::string K = "\"" + Key + "\":";
  size_t P = J.find(K);
  if (P == std::string::npos)
    return -1;
  return J.compare(P + K.size(), 4, "true") == 0 ? 1 : 0;
}

std::string health(Server &S) {
  Message R = S.handle({{"op", "health"}});
  EXPECT_EQ(field(R, "ok"), "1");
  return field(R, "json");
}

} // namespace

TEST(HealthTest, IdleServerIsHealthy) {
  Server S({});
  std::string J = health(S);
  // No sessions, no latency evidence, no cache traffic: every SLO
  // passes vacuously.
  EXPECT_EQ(healthLong(J, "sessions"), 0);
  EXPECT_EQ(healthLong(J, "failed_sessions"), 0);
  EXPECT_EQ(healthBool(J, "ok"), 1);
  EXPECT_EQ(healthBool(J, "error_rate_ok"), 1);
  EXPECT_EQ(healthBool(J, "p99_ok"), 1);
  EXPECT_EQ(healthBool(J, "caches_ok"), 1);
  EXPECT_EQ(healthLong(J, "slow_sessions"), 0);
}

TEST(HealthTest, SessionsAccrueLatencyAndCpuAccounting) {
  Server S({});
  ASSERT_EQ(field(S.handle(sessionReq(SimpleSrc, "full")), "ok"), "1");
  ASSERT_EQ(field(S.handle(sessionReq(SimpleSrc, "full")), "ok"), "1");
  std::string J = health(S);
  EXPECT_EQ(healthLong(J, "sessions"), 2);
  EXPECT_EQ(healthLong(J, "failed_sessions"), 0);
  EXPECT_GT(healthDouble(J, "p99_ms"), 0.0);
  // Per-stage resource accounting: a full session ran all three stages,
  // and each stage's wall and cpu totals are recorded.
  EXPECT_GT(healthDouble(J, "stage_compile_ms"), 0.0);
  EXPECT_GT(healthDouble(J, "stage_plan_ms"), 0.0);
  EXPECT_GT(healthDouble(J, "stage_run_ms"), 0.0);
  EXPECT_GE(healthDouble(J, "stage_compile_cpu_ms"), 0.0);
  EXPECT_GE(healthDouble(J, "stage_run_cpu_ms"), 0.0);
  // The warm second session gave the module cache traffic; the floor is
  // 0 by default, so caches still grade healthy.
  EXPECT_GE(healthDouble(J, "module_cache_hit_rate"), 0.0);
  EXPECT_EQ(healthBool(J, "caches_ok"), 1);
  EXPECT_EQ(healthBool(J, "ok"), 1);
}

TEST(HealthTest, FailedSessionsFlipTheErrorRateGrade) {
  Server S({});
  Message Bad = S.handle(sessionReq("int main() { return undeclared; }",
                                    "run"));
  EXPECT_EQ(field(Bad, "ok"), "0");
  std::string J = health(S);
  EXPECT_EQ(healthLong(J, "failed_sessions"), 1);
  // 1 failure / 1 session = 100% error rate, far over the 5% default.
  EXPECT_NEAR(healthDouble(J, "error_rate"), 1.0, 1e-9);
  EXPECT_EQ(healthBool(J, "error_rate_ok"), 0);
  EXPECT_EQ(healthBool(J, "ok"), 0);

  // A permissive ceiling accepts the same history.
  ServerConfig C;
  C.MaxErrorRate = 1.0;
  Server S2(C);
  S2.handle(sessionReq("int main() { return undeclared; }", "run"));
  std::string J2 = health(S2);
  EXPECT_EQ(healthBool(J2, "error_rate_ok"), 1);
}

TEST(HealthTest, TightP99TargetFlipsTheLatencyGrade) {
  ServerConfig C;
  C.TargetP99Ms = 1e-6; // nothing real finishes this fast
  Server S(C);
  ASSERT_EQ(field(S.handle(sessionReq(SimpleSrc, "run")), "ok"), "1");
  std::string J = health(S);
  EXPECT_EQ(healthBool(J, "p99_ok"), 0);
  EXPECT_EQ(healthBool(J, "ok"), 0);
  EXPECT_GT(healthDouble(J, "p99_ms"), healthDouble(J, "target_p99_ms"));
}

TEST(HealthTest, SlowSessionThresholdCountsSessions) {
  ServerConfig C;
  C.SlowSessionMs = 1e-6; // every real session is "slow"
  Server S(C);
  ASSERT_EQ(field(S.handle(sessionReq(SimpleSrc, "run")), "ok"), "1");
  std::string J = health(S);
  EXPECT_GE(healthLong(J, "slow_sessions"), 1);
  EXPECT_NEAR(healthDouble(J, "slow_threshold_ms"), 0.0, 1e-3);
  // Slowness is logged and counted, never graded: the verdict only
  // tracks the SLOs.
  EXPECT_EQ(healthBool(J, "ok"), 1);
}

TEST(HealthTest, ForensicsOpMatchesArtifactRecordsByteForByte) {
  // Fill the process-wide ring through the real parallel engine: train
  // on clean UA, run the adversarial variant against that profile.
  obs::misspecClear();
  std::string Adv = findWorkload("UA")->Source;
  size_t Pos = Adv.find("i * 167 + 3");
  ASSERT_NE(Pos, std::string::npos);
  Adv.replace(Pos, 11, "i * 166 + 3");

  CompileResult Clean = compileSource(findWorkload("UA")->Source, "ua");
  CompileResult AdvR = compileSource(Adv, "ua_adv");
  ASSERT_TRUE(Clean.ok());
  ASSERT_TRUE(AdvR.ok());
  ModuleAnalyses MA(*Clean.M);
  DepProfiler Prof(MA);
  Interpreter I(*Clean.M);
  I.addObserver(&Prof);
  ASSERT_TRUE(I.run().Completed);
  DepProfile P = Prof.takeProfile();
  RuntimePlan Plan =
      buildRuntimePlan(*AdvR.M, AbstractionKind::PSPDG, 8, FeatureSet(),
                       DepOracleConfig({}, &P));
  ParallelRuntime RT(*AdvR.M, Plan, ExecEngineKind::Bytecode);
  ASSERT_TRUE(RT.run().Error.empty());
  std::vector<obs::MisspecRecord> Records = obs::misspecRecords();
  ASSERT_GE(Records.size(), 1u);

  Server S({});
  Message R = S.handle({{"op", "forensics"}});
  ASSERT_EQ(field(R, "ok"), "1");
  EXPECT_EQ(field(R, "count"), std::to_string(Records.size()));
  EXPECT_EQ(field(R, "total"), std::to_string(obs::misspecTotal()));

  // Byte-identity: the op's record lines are exactly the canonical
  // renderings pscc's --misspec-out artifact embeds.
  std::string Expected;
  for (const obs::MisspecRecord &Rec : Records)
    Expected += obs::renderMisspecRecord(Rec) + "\n";
  EXPECT_EQ(field(R, "records"), Expected);
  std::string Artifact = obs::renderMisspecArtifact("pscc");
  for (const obs::MisspecRecord &Rec : Records)
    EXPECT_NE(Artifact.find(obs::renderMisspecRecord(Rec)),
              std::string::npos)
        << "artifact and op must share the canonical renderer";
  obs::misspecClear();
}

TEST(HealthTest, HealthSurfacesForensicAndTraceCounters) {
  obs::misspecClear();
  obs::MisspecRecord Rec;
  Rec.Fn = "main";
  Rec.ViolationKind = "conflict";
  obs::misspecPush(std::move(Rec));
  Server S({});
  std::string J = health(S);
  EXPECT_EQ(healthLong(J, "misspec_records"), 1);
  EXPECT_GE(healthLong(J, "trace_dropped_events"), 0);
  // The same counters ride the Prometheus surface.
  std::string Metrics = S.metricsText();
  EXPECT_NE(Metrics.find("pscd_misspec_records_total"), std::string::npos);
  EXPECT_NE(Metrics.find("trace_dropped_events_total"), std::string::npos);
  EXPECT_NE(Metrics.find("pscd_sessions_failed_total"), std::string::npos);
  EXPECT_NE(Metrics.find("pscd_slow_sessions_total"), std::string::npos);
  obs::misspecClear();
}
