//===- ProfileStoreTest.cpp - sharded profile store contracts -------------===//
///
/// The service's sharded training-evidence store: function→shard
/// assignment is stable and drives the split, concurrent merges from many
/// threads lose no evidence (the merge counters and per-function
/// iteration totals add up exactly), and snapshot() unions the shards.
///
//===----------------------------------------------------------------------===//

#include "service/ProfileStore.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace psc;
using namespace psc::service;

namespace {

/// One-function profile with \p Iters iterations on loop header 0.
DepProfile oneFn(const std::string &Name, uint64_t Iters) {
  DepProfile P;
  DepProfile::FunctionProfile FP;
  FP.NumInstructions = 10;
  FP.BodyHash = 0x1234;
  DepProfile::LoopProfile LP;
  LP.Invocations = 1;
  LP.Iterations = Iters;
  FP.Loops[0] = LP;
  P.Functions[Name] = FP;
  return P;
}

} // namespace

TEST(ProfileStoreTest, ShardAssignmentIsStable) {
  ProfileStore S(16);
  EXPECT_EQ(S.shardOf("main"), S.shardOf("main"));
  EXPECT_LT(S.shardOf("main"), S.numShards());
}

TEST(ProfileStoreTest, MergeSplitsByFunction) {
  ProfileStore S(8);
  DepProfile P;
  for (int I = 0; I < 20; ++I)
    P.Functions["fn" + std::to_string(I)] =
        oneFn("x", 1).Functions.begin()->second;
  S.merge(P);

  std::vector<ProfileStore::ShardStat> Stats = S.shardStats();
  size_t Total = 0;
  for (size_t I = 0; I < Stats.size(); ++I) {
    Total += Stats[I].Functions;
    // Occupancy must match the hash assignment exactly.
    size_t Expected = 0;
    for (int F = 0; F < 20; ++F)
      if (S.shardOf("fn" + std::to_string(F)) == I)
        ++Expected;
    EXPECT_EQ(Stats[I].Functions, Expected) << "shard " << I;
  }
  EXPECT_EQ(Total, 20u);
  EXPECT_EQ(S.snapshot().Functions.size(), 20u);
}

TEST(ProfileStoreTest, RepeatedMergesAccumulate) {
  ProfileStore S(4);
  S.merge(oneFn("f", 100));
  S.merge(oneFn("f", 50));
  DepProfile Snap = S.snapshot();
  ASSERT_EQ(Snap.Functions.count("f"), 1u);
  EXPECT_EQ(Snap.Functions["f"].Loops[0].Iterations, 150u);
  EXPECT_EQ(Snap.Functions["f"].Loops[0].Invocations, 2u);
}

TEST(ProfileStoreTest, ConcurrentMergesLoseNothing) {
  // 8 threads × 32 merges each, every thread streaming evidence for its
  // own function plus a shared one. Per-function iteration totals and
  // per-shard merge counters must add up exactly — shard locks make the
  // merges atomic per function.
  constexpr unsigned Threads = 8, MergesPer = 32;
  ProfileStore S(4);
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&S, T] {
      for (unsigned I = 0; I < MergesPer; ++I) {
        DepProfile P = oneFn("own" + std::to_string(T), 10);
        P.Functions["shared"] = oneFn("x", 1).Functions.begin()->second;
        S.merge(P);
      }
    });
  for (std::thread &T : Ts)
    T.join();

  DepProfile Snap = S.snapshot();
  EXPECT_EQ(Snap.Functions.size(), Threads + 1);
  EXPECT_EQ(Snap.Functions["shared"].Loops[0].Iterations,
            uint64_t(Threads) * MergesPer);
  for (unsigned T = 0; T < Threads; ++T)
    EXPECT_EQ(
        Snap.Functions["own" + std::to_string(T)].Loops[0].Iterations,
        uint64_t(MergesPer) * 10);
}

TEST(ProfileStoreTest, SnapshotIsPointInTime) {
  ProfileStore S(4);
  S.merge(oneFn("f", 1));
  DepProfile Before = S.snapshot();
  S.merge(oneFn("g", 1));
  // The earlier snapshot is a value copy, untouched by later merges.
  EXPECT_EQ(Before.Functions.size(), 1u);
  EXPECT_EQ(S.snapshot().Functions.size(), 2u);
}

TEST(ProfileStoreTest, ZeroShardConfigClampsToOne) {
  ProfileStore S(0);
  EXPECT_EQ(S.numShards(), 1u);
  S.merge(oneFn("f", 1));
  EXPECT_EQ(S.snapshot().Functions.size(), 1u);
}
