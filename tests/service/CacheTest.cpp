//===- CacheTest.cpp - cross-request cache contracts ----------------------===//
///
/// The pscd caches in isolation:
///
///   * ModuleCache — LRU order under pressure (least-recently-USED is
///     evicted, not least-recently-inserted), racing-insert no-op,
///     hit/miss/eviction counters.
///   * MemoCache — the edited-body invalidation contract: a function name
///     re-arriving with a different body hash evicts the predecessor's
///     memo table (counted in Invalidations) so a stale analysis can
///     never be served; plus LRU eviction under pressure.
///   * PlanCache — the same contract at the plan-line level, keyed by
///     (body hash, abstraction): one edit evicts every abstraction's
///     lines; empty lines are a valid (cache-worthy) value.
///   * sourceKey — distinct for distinct (source, name) splits.
///
//===----------------------------------------------------------------------===//

#include "service/Caches.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::service;

namespace {

std::shared_ptr<const CachedModule> dummyModule() {
  return std::make_shared<CachedModule>();
}

MemoCache::MemoTable dummyTable() {
  MemoCache::MemoTable T;
  T.emplace(1, DepResult{});
  return T;
}

} // namespace

TEST(SourceKeyTest, DistinguishesSourceNameSplit) {
  // The separator must keep ("ab","c") and ("a","bc") apart.
  EXPECT_NE(sourceKey("ab", "c"), sourceKey("a", "bc"));
  EXPECT_NE(sourceKey("x", "m"), sourceKey("y", "m"));
  EXPECT_NE(sourceKey("x", "m"), sourceKey("x", "n"));
  EXPECT_EQ(sourceKey("x", "m"), sourceKey("x", "m"));
}

TEST(ModuleCacheTest, HitMissCounters) {
  ModuleCache C(4);
  EXPECT_EQ(C.lookup(1), nullptr);
  C.insert(1, dummyModule());
  EXPECT_NE(C.lookup(1), nullptr);
  CacheStats S = C.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_DOUBLE_EQ(S.hitRate(), 0.5);
}

TEST(ModuleCacheTest, LruEvictionUnderPressure) {
  ModuleCache C(2);
  C.insert(1, dummyModule());
  C.insert(2, dummyModule());
  // Touch 1 so 2 becomes the least recently used.
  ASSERT_NE(C.lookup(1), nullptr);
  C.insert(3, dummyModule());
  EXPECT_EQ(C.size(), 2u);
  EXPECT_EQ(C.stats().Evictions, 1u);
  EXPECT_NE(C.lookup(1), nullptr) << "recently used entry was evicted";
  EXPECT_EQ(C.lookup(2), nullptr) << "LRU entry survived past capacity";
  EXPECT_NE(C.lookup(3), nullptr);
}

TEST(ModuleCacheTest, RacingInsertKeepsFirst) {
  ModuleCache C(4);
  auto First = dummyModule();
  C.insert(7, First);
  C.insert(7, dummyModule()); // a concurrent session lost the race
  EXPECT_EQ(C.lookup(7), First);
  EXPECT_EQ(C.size(), 1u);
}

TEST(MemoCacheTest, EditedBodyInvalidatesLoudly) {
  MemoCache C(8);
  C.insert("f", 0x1111, dummyTable());
  ASSERT_NE(C.lookup(0x1111), nullptr);
  EXPECT_EQ(C.stats().Invalidations, 0u);

  // Same function name, different body hash: the edit must evict the old
  // entry and count an invalidation.
  C.noteBody("f", 0x2222);
  EXPECT_EQ(C.stats().Invalidations, 1u);
  EXPECT_EQ(C.lookup(0x1111), nullptr)
      << "stale memo table served after the function was edited";

  // The new body caches independently; re-noting the same hash is quiet.
  C.insert("f", 0x2222, dummyTable());
  C.noteBody("f", 0x2222);
  EXPECT_EQ(C.stats().Invalidations, 1u);
  EXPECT_NE(C.lookup(0x2222), nullptr);
}

TEST(MemoCacheTest, DistinctFunctionsDoNotCrossInvalidate) {
  MemoCache C(8);
  C.insert("f", 0xaaaa, dummyTable());
  C.insert("g", 0xbbbb, dummyTable());
  C.noteBody("f", 0xcccc); // editing f must not touch g
  EXPECT_EQ(C.lookup(0xaaaa), nullptr);
  EXPECT_NE(C.lookup(0xbbbb), nullptr);
  EXPECT_EQ(C.stats().Invalidations, 1u);
}

TEST(MemoCacheTest, LruEvictionUnderPressure) {
  MemoCache C(2);
  C.insert("a", 1, dummyTable());
  C.insert("b", 2, dummyTable());
  ASSERT_NE(C.lookup(1), nullptr); // bump a; b is now LRU
  C.insert("c", 3, dummyTable());
  EXPECT_EQ(C.size(), 2u);
  EXPECT_EQ(C.stats().Evictions, 1u);
  EXPECT_NE(C.lookup(1), nullptr);
  EXPECT_EQ(C.lookup(2), nullptr);
  EXPECT_NE(C.lookup(3), nullptr);
}

TEST(MemoCacheTest, StructurallyIdenticalBodiesShareEntries) {
  // The L2 key is the body hash, not the name: two names carrying the
  // same hash share one entry (the semantic-key property).
  MemoCache C(8);
  C.insert("f", 0x5555, dummyTable());
  C.noteBody("g", 0x5555);
  EXPECT_NE(C.lookup(0x5555), nullptr);
  EXPECT_EQ(C.stats().Invalidations, 0u);
}

TEST(PlanCacheTest, EditedBodyInvalidatesLoudly) {
  PlanCache C(8);
  C.insert("f", 0x1111, AbstractionKind::PSPDG, "@f loop0 ...\n");
  ASSERT_NE(C.lookup(0x1111, AbstractionKind::PSPDG), nullptr);
  EXPECT_EQ(C.stats().Invalidations, 0u);

  // Same function name, different body hash: the edit must evict the old
  // lines and count an invalidation — a stale plan is the one failure
  // mode this cache must never have.
  C.noteBody("f", 0x2222);
  EXPECT_EQ(C.stats().Invalidations, 1u);
  EXPECT_EQ(C.lookup(0x1111, AbstractionKind::PSPDG), nullptr)
      << "stale plan lines served after the function was edited";

  // The new body caches independently; re-noting the same hash is quiet.
  C.insert("f", 0x2222, AbstractionKind::PSPDG, "@f loop0 ...\n");
  C.noteBody("f", 0x2222);
  EXPECT_EQ(C.stats().Invalidations, 1u);
  EXPECT_NE(C.lookup(0x2222, AbstractionKind::PSPDG), nullptr);
}

TEST(PlanCacheTest, PerAbstractionEntriesCoexistAndEvictTogether) {
  PlanCache C(8);
  C.insert("f", 0x1111, AbstractionKind::PSPDG, "pspdg\n");
  C.insert("f", 0x1111, AbstractionKind::PDG, "pdg\n");
  C.insert("f", 0x1111, AbstractionKind::JK, "jk\n");
  EXPECT_EQ(C.size(), 3u);
  EXPECT_EQ(*C.lookup(0x1111, AbstractionKind::PDG), "pdg\n");
  EXPECT_EQ(*C.lookup(0x1111, AbstractionKind::JK), "jk\n");
  EXPECT_EQ(*C.lookup(0x1111, AbstractionKind::PSPDG), "pspdg\n");

  // One edit evicts ALL the function's abstraction variants (counted as
  // one invalidation event, matching the L2's per-edit accounting).
  C.noteBody("f", 0x2222);
  EXPECT_EQ(C.stats().Invalidations, 1u);
  EXPECT_EQ(C.size(), 0u);
  EXPECT_EQ(C.lookup(0x1111, AbstractionKind::PDG), nullptr);
  EXPECT_EQ(C.lookup(0x1111, AbstractionKind::JK), nullptr);
  EXPECT_EQ(C.lookup(0x1111, AbstractionKind::PSPDG), nullptr);
}

TEST(PlanCacheTest, EmptyLinesAreAValidHit) {
  // A loop-free function plans to nothing; caching the nothing is what
  // lets warm sessions skip its analysis entirely.
  PlanCache C(8);
  C.insert("f", 0x1111, AbstractionKind::PSPDG, "");
  auto Hit = C.lookup(0x1111, AbstractionKind::PSPDG);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(*Hit, "");
  EXPECT_EQ(C.stats().Hits, 1u);
}

TEST(PlanCacheTest, LruEvictionUnderPressure) {
  PlanCache C(2);
  C.insert("a", 1, AbstractionKind::PSPDG, "a\n");
  C.insert("b", 2, AbstractionKind::PSPDG, "b\n");
  ASSERT_NE(C.lookup(1, AbstractionKind::PSPDG), nullptr); // b is now LRU
  C.insert("c", 3, AbstractionKind::PSPDG, "c\n");
  EXPECT_EQ(C.size(), 2u);
  EXPECT_EQ(C.stats().Evictions, 1u);
  EXPECT_NE(C.lookup(1, AbstractionKind::PSPDG), nullptr);
  EXPECT_EQ(C.lookup(2, AbstractionKind::PSPDG), nullptr);
  EXPECT_NE(C.lookup(3, AbstractionKind::PSPDG), nullptr);
}

TEST(PlanCacheTest, DistinctFunctionsDoNotCrossInvalidate) {
  PlanCache C(8);
  C.insert("f", 0xaaaa, AbstractionKind::PSPDG, "f\n");
  C.insert("g", 0xbbbb, AbstractionKind::PSPDG, "g\n");
  C.noteBody("f", 0xcccc); // editing f must not touch g
  EXPECT_EQ(C.lookup(0xaaaa, AbstractionKind::PSPDG), nullptr);
  EXPECT_NE(C.lookup(0xbbbb, AbstractionKind::PSPDG), nullptr);
  EXPECT_EQ(C.stats().Invalidations, 1u);
}
