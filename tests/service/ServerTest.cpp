//===- ServerTest.cpp - resident service end-to-end contracts -------------===//
///
/// The pscd server through its two surfaces:
///
///   * handle() in-process — session correctness (run output identical to
///     a standalone Interpreter, analyze plans identical across repeats),
///     L1/L2/L3 cache behavior (cold/warm, edited-body invalidation
///     through the full compile→plan path at every level, warm analyze
///     serving from the plan cache with zero analysis builds, speculative
///     bypass, LRU eviction under pressure), graceful error reporting,
///     budget leases.
///   * the real unix-domain socket — 8 concurrent client sessions
///     bit-identical to the standalone run (the paper-repo acceptance
///     criterion), shutdown semantics, and the ServiceStress pair sized
///     for the TSan lane: a mixed-load soak and the single-flight
///     first-analyze race.
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Server.h"

#include "emulator/Interpreter.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace psc;
using namespace psc::service;

namespace {

/// Carried dependence: a[j] reads a[j-1], so the loop must not be DOALL.
const char *CarriedSrc = R"PSC(
int a[64];
int r[64];
int main() {
  int j;
  for (j = 1; j < 64; j++) {
    a[j] = r[j] + a[j - 1];
  }
  print(a[63]);
  return 0;
}
)PSC";

/// Independent iterations: a textbook DOALL.
const char *DoallSrc = R"PSC(
int a[64];
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 64; i++) {
    a[i] = i * i;
  }
  for (i = 0; i < 64; i++) {
    s = s + a[i];
  }
  print(s);
  return s % 127;
}
)PSC";

/// What a session's "output" field should hold for \p Source.
std::string referenceOutput(const std::string &Source, int64_t *Exit) {
  CompileResult R = compileSource(Source, "ref");
  EXPECT_TRUE(R.ok());
  Interpreter I(*R.M);
  RunResult Run = I.run();
  EXPECT_TRUE(Run.Completed);
  if (Exit)
    *Exit = Run.ExitValue;
  std::string Out;
  for (const std::string &Line : Run.Output)
    Out += Line + "\n";
  return Out;
}

std::string testSocketPath(const char *Tag) {
  return "/tmp/psc-service-" + std::to_string(::getpid()) + "-" + Tag +
         ".sock";
}

Message sessionReq(const std::string &Source, const std::string &Mode,
                   const std::string &Name = "session") {
  return Message{{"op", "session"},
                 {"source", Source},
                 {"name", Name},
                 {"mode", Mode}};
}

/// The integer after "Key": in the stats JSON (first occurrence); -1 when
/// absent.
long statLong(const std::string &J, const std::string &Key) {
  std::string K = "\"" + Key + "\":";
  size_t P = J.find(K);
  return P == std::string::npos ? -1 : std::atol(J.c_str() + P + K.size());
}

/// The "Section":{...} object substring of the stats JSON (flat objects
/// only), for before/after comparisons of a whole cache's counters.
std::string statSection(const std::string &J, const std::string &Section) {
  size_t P = J.find("\"" + Section + "\"");
  if (P == std::string::npos)
    return "";
  size_t End = J.find('}', P);
  return J.substr(P, End == std::string::npos ? End : End - P + 1);
}

} // namespace

TEST(ServerTest, PingPong) {
  Server S({});
  Message R = S.handle({{"op", "ping"}});
  EXPECT_EQ(field(R, "ok"), "1");
  EXPECT_EQ(field(R, "op"), "pong");
}

TEST(ServerTest, UnknownOpIsGracefullyRejected) {
  Server S({});
  Message R = S.handle({{"op", "transmogrify"}});
  EXPECT_EQ(field(R, "ok"), "0");
  EXPECT_NE(field(R, "error"), "");
}

TEST(ServerTest, CompileErrorIsReportedNotFatal) {
  Server S({});
  Message R = S.handle(sessionReq("int main() { return undeclared; }",
                                  "run"));
  EXPECT_EQ(field(R, "ok"), "0");
  EXPECT_NE(field(R, "error"), "") << "diagnostics must reach the client";
  // The server survives and keeps serving.
  EXPECT_EQ(field(S.handle({{"op", "ping"}}), "ok"), "1");
}

TEST(ServerTest, SessionRunMatchesStandalone) {
  Server S({});
  int64_t RefExit = 0;
  std::string Ref = referenceOutput(DoallSrc, &RefExit);
  for (const char *Engine : {"bytecode", "walker"}) {
    Message Req = sessionReq(DoallSrc, "run");
    Req["engine"] = Engine;
    Message R = S.handle(Req);
    ASSERT_EQ(field(R, "ok"), "1") << field(R, "error");
    EXPECT_EQ(field(R, "output"), Ref) << "engine " << Engine;
    EXPECT_EQ(field(R, "exit"), std::to_string(RefExit));
    EXPECT_EQ(field(R, "completed"), "1");
  }
}

TEST(ServerTest, WarmSessionHitsModuleCache) {
  Server S({});
  Message Cold = S.handle(sessionReq(DoallSrc, "full"));
  ASSERT_EQ(field(Cold, "ok"), "1") << field(Cold, "error");
  EXPECT_EQ(field(Cold, "cached"), "0");
  Message Warm = S.handle(sessionReq(DoallSrc, "full"));
  ASSERT_EQ(field(Warm, "ok"), "1");
  EXPECT_EQ(field(Warm, "cached"), "1");
  // Identical source ⇒ identical plans and output, cold or warm.
  EXPECT_EQ(field(Warm, "plans"), field(Cold, "plans"));
  EXPECT_EQ(field(Warm, "output"), field(Cold, "output"));
  EXPECT_NE(field(Warm, "plans"), "");
}

TEST(ServerTest, PlansRespectCarriedDependence) {
  // The ROADMAP item-6 soundness family, through the service: the carried
  // loop must never come back DOALL, warm or cold, while the independent
  // loop must.
  Server S({});
  Message Carried = S.handle(sessionReq(CarriedSrc, "analyze"));
  ASSERT_EQ(field(Carried, "ok"), "1") << field(Carried, "error");
  EXPECT_EQ(field(Carried, "plans").find("DOALL"), std::string::npos)
      << field(Carried, "plans");
  Message Doall = S.handle(sessionReq(DoallSrc, "analyze"));
  ASSERT_EQ(field(Doall, "ok"), "1");
  EXPECT_NE(field(Doall, "plans").find("DOALL"), std::string::npos)
      << field(Doall, "plans");
  // Warm repeats serve the same answers from the caches.
  EXPECT_EQ(field(S.handle(sessionReq(CarriedSrc, "analyze")), "plans"),
            field(Carried, "plans"));
}

TEST(ServerTest, EditedBodyNeverServesStalePlan) {
  // Two sources defining the same function name with different bodies:
  // the DOALL version arriving after the carried version must trigger the
  // L2's loud invalidation, and each source must always get its own plans
  // no matter the request order — a stale memo would leak the other
  // body's dependence answers.
  Server S({});
  Message First = S.handle(sessionReq(CarriedSrc, "analyze"));
  ASSERT_EQ(field(First, "ok"), "1") << field(First, "error");

  Message Edited = S.handle(sessionReq(DoallSrc, "analyze"));
  ASSERT_EQ(field(Edited, "ok"), "1");
  EXPECT_NE(field(Edited, "plans"), field(First, "plans"));
  EXPECT_NE(field(Edited, "plans").find("DOALL"), std::string::npos);

  // The stats snapshot must have counted the invalidation (both sources
  // define @main with different body hashes) — in the memo cache AND the
  // plan cache: the edit evicts the stale plan lines too.
  std::string Stats = S.statsJson();
  EXPECT_GT(statLong(statSection(Stats, "memo_cache"), "invalidations"), 0)
      << "edited @main did not count an L2 invalidation: " << Stats;
  EXPECT_GT(statLong(statSection(Stats, "plan_cache"), "invalidations"), 0)
      << "edited @main did not count an L3 invalidation: " << Stats;

  // Direct check: going back to the first source reproduces its original
  // plans exactly (recomputed, not stale).
  Message Back = S.handle(sessionReq(CarriedSrc, "analyze"));
  ASSERT_EQ(field(Back, "ok"), "1");
  EXPECT_EQ(field(Back, "plans"), field(First, "plans"));
  EXPECT_EQ(field(Back, "plans").find("DOALL"), std::string::npos);
}

TEST(ServerTest, WarmAnalyzeServesFromPlanCache) {
  // The PR-8 contract: a warm non-speculative analyze session does zero
  // analysis work — finished lines from L3, no new analysis builds.
  Server S({});
  Message Cold = S.handle(sessionReq(DoallSrc, "analyze"));
  ASSERT_EQ(field(Cold, "ok"), "1") << field(Cold, "error");
  std::string StatsCold = S.statsJson();
  long BuildsCold = statLong(StatsCold, "analysis_builds");
  EXPECT_GT(BuildsCold, 0) << StatsCold;

  for (int I = 0; I < 3; ++I) {
    Message Warm = S.handle(sessionReq(DoallSrc, "analyze"));
    ASSERT_EQ(field(Warm, "ok"), "1");
    EXPECT_EQ(field(Warm, "plans"), field(Cold, "plans"));
  }
  std::string StatsWarm = S.statsJson();
  EXPECT_EQ(statLong(StatsWarm, "analysis_builds"), BuildsCold)
      << "warm analyze sessions rebuilt analysis: " << StatsWarm;
  EXPECT_GT(statLong(statSection(StatsWarm, "plan_cache"), "hits"), 0)
      << "warm analyze sessions did not hit the plan cache: " << StatsWarm;
}

TEST(ServerTest, SpeculativeSessionsBypassPlanCache) {
  // Speculative plans depend on the profile snapshot, so they must
  // neither read nor write L3 — and must not touch its counters.
  Server S({});
  Message Sound = S.handle(sessionReq(CarriedSrc, "analyze"));
  ASSERT_EQ(field(Sound, "ok"), "1") << field(Sound, "error");
  std::string Before = statSection(S.statsJson(), "plan_cache");
  ASSERT_NE(Before, "");

  Message Req = sessionReq(CarriedSrc, "analyze");
  Req["spec"] = "1";
  Message Spec = S.handle(Req);
  ASSERT_EQ(field(Spec, "ok"), "1") << field(Spec, "error");
  // With an empty profile store no downgrade fires, so the plans agree —
  // but they were recomputed, not served from L3.
  EXPECT_EQ(field(Spec, "plans"), field(Sound, "plans"));
  EXPECT_EQ(statSection(S.statsJson(), "plan_cache"), Before)
      << "a speculative session touched the plan cache";
}

TEST(ServerTest, ModuleCacheEvictionUnderPressure) {
  ServerConfig C;
  C.ModuleCacheCap = 2;
  C.MemoCacheCap = 2;
  Server S(C);
  // Three structurally distinct sources blow a 2-entry cache.
  std::vector<std::string> Sources;
  for (int N = 1; N <= 3; ++N) {
    std::string Body;
    for (int I = 0; I < N; ++I)
      Body += "    s = s + i;\n";
    Sources.push_back("int main() {\n  int i;\n  int s = 0;\n"
                      "  for (i = 0; i < 8; i++) {\n" +
                      Body + "  }\n  print(s);\n  return 0;\n}\n");
  }
  std::vector<std::string> FirstPlans;
  for (const std::string &Src : Sources) {
    Message R = S.handle(sessionReq(Src, "analyze"));
    ASSERT_EQ(field(R, "ok"), "1") << field(R, "error");
    EXPECT_EQ(field(R, "cached"), "0");
    FirstPlans.push_back(field(R, "plans"));
  }
  // Source 0 was evicted; the re-request recompiles and reproduces the
  // same plans.
  Message Again = S.handle(sessionReq(Sources[0], "analyze"));
  ASSERT_EQ(field(Again, "ok"), "1");
  EXPECT_EQ(field(Again, "cached"), "0") << "expected LRU eviction";
  EXPECT_EQ(field(Again, "plans"), FirstPlans[0]);
  // The module cache (not the memo cache — there the three @main bodies
  // replace each other via invalidation) must have counted LRU evictions.
  std::string Stats = S.statsJson();
  size_t L1Pos = Stats.find("\"module_cache\"");
  size_t L2Pos = Stats.find("\"memo_cache\"");
  ASSERT_NE(L1Pos, std::string::npos);
  size_t Zero = Stats.find("\"evictions\":0", L1Pos);
  EXPECT_TRUE(Zero == std::string::npos || Zero > L2Pos)
      << "no module-cache evictions counted under pressure: " << Stats;
}

TEST(ServerTest, BudgetLeaseStopsRunawaySession) {
  Server S({});
  Message Req = sessionReq(DoallSrc, "run");
  Req["budget"] = "50"; // far below the program's instruction count
  Message R = S.handle(Req);
  ASSERT_EQ(field(R, "ok"), "1") << field(R, "error");
  EXPECT_EQ(field(R, "completed"), "0");
  // The lease was returned: a full-budget session still completes.
  Message R2 = S.handle(sessionReq(DoallSrc, "run"));
  EXPECT_EQ(field(R2, "completed"), "1");
}

TEST(ServerTest, ProfileMergeFeedsSpeculativeSessions) {
  Server S({});
  Message Bad = S.handle({{"op", "profile-merge"}, {"profile", "not json"}});
  EXPECT_EQ(field(Bad, "ok"), "0");

  DepProfile P;
  DepProfile::FunctionProfile FP;
  FP.NumInstructions = 3;
  FP.BodyHash = 0x99;
  FP.Loops[0].Invocations = 1;
  FP.Loops[0].Iterations = 64;
  P.Functions["main"] = FP;
  Message Good = S.handle({{"op", "profile-merge"}, {"profile", P.toJson()}});
  ASSERT_EQ(field(Good, "ok"), "1") << field(Good, "error");
  EXPECT_EQ(field(Good, "functions"), "1");

  // A speculative session against the (stale-guarded) store still answers
  // soundly: the profile's body hash matches nothing, so no downgrade
  // fires and the carried loop stays sequential.
  Message Req = sessionReq(CarriedSrc, "analyze");
  Req["spec"] = "1";
  Message R = S.handle(Req);
  ASSERT_EQ(field(R, "ok"), "1") << field(R, "error");
  EXPECT_EQ(field(R, "plans").find("DOALL"), std::string::npos);
}

TEST(ServerTest, StatsJsonShape) {
  Server S({});
  (void)S.handle(sessionReq(DoallSrc, "full"));
  std::string J = field(S.handle({{"op", "stats"}}), "json");
  for (const char *Key :
       {"\"uptime_s\"", "\"sessions\"", "\"sessions_per_s\"",
        "\"latency_ms\"", "\"p50\"", "\"p99\"", "\"module_cache\"",
        "\"memo_cache\"", "\"plan_cache\"", "\"analysis_builds\"",
        "\"stage_compile\"", "\"stage_plan\"", "\"stage_run\"",
        "\"mean_ms\"", "\"hit_rate\"", "\"invalidations\"",
        "\"profile_store\"", "\"shards\"", "\"pool_workers\""})
    EXPECT_NE(J.find(Key), std::string::npos) << Key << " missing: " << J;
  EXPECT_NE(J.find("\"sessions\":1"), std::string::npos) << J;
}

// --- Over the real socket ----------------------------------------------------

TEST(ServerSocketTest, EightConcurrentSessionsBitIdentical) {
  // The acceptance criterion: 8 concurrent client sessions produce output
  // bit-identical to the standalone run — shared caches and interleaved
  // pool stages must never bleed state across sessions.
  ServerConfig C;
  C.SocketPath = testSocketPath("concurrent");
  C.PoolThreads = 4;
  Server S(C);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  int64_t RefExit = 0;
  std::string Ref = referenceOutput(DoallSrc, &RefExit);
  std::string CarriedRef = referenceOutput(CarriedSrc, nullptr);

  constexpr unsigned N = 8;
  std::vector<Message> Resps(N);
  std::vector<std::string> Errs(N);
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I < N; ++I)
    Ts.emplace_back([&, I] {
      Client Cl;
      std::string E;
      if (!Cl.connect(C.SocketPath, E)) {
        Errs[I] = E;
        return;
      }
      // Alternate sources so both cache-hit and cache-miss paths run
      // concurrently.
      const char *Src = (I % 2) ? CarriedSrc : DoallSrc;
      if (!Cl.request(sessionReq(Src, "full"), Resps[I], E))
        Errs[I] = E;
    });
  for (std::thread &T : Ts)
    T.join();

  for (unsigned I = 0; I < N; ++I) {
    ASSERT_EQ(Errs[I], "") << "client " << I;
    ASSERT_EQ(field(Resps[I], "ok"), "1")
        << "client " << I << ": " << field(Resps[I], "error");
    EXPECT_EQ(field(Resps[I], "output"), (I % 2) ? CarriedRef : Ref)
        << "client " << I;
    if (!(I % 2))
      EXPECT_EQ(field(Resps[I], "exit"), std::to_string(RefExit));
  }
  S.stop();
}

TEST(ServerSocketTest, ShutdownRequestStopsTheServer) {
  ServerConfig C;
  C.SocketPath = testSocketPath("shutdown");
  Server S(C);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  std::thread Waiter([&] { S.waitForShutdown(); });
  Client Cl;
  ASSERT_TRUE(Cl.connect(C.SocketPath, Err)) << Err;
  Message R;
  ASSERT_TRUE(Cl.request({{"op", "shutdown"}}, R, Err)) << Err;
  EXPECT_EQ(field(R, "ok"), "1");
  Waiter.join(); // returns only because the request landed
  S.stop();
  // The socket is gone: a fresh connect must fail fast.
  Client C2;
  EXPECT_FALSE(C2.connect(C.SocketPath, Err, /*RetryMs=*/50));
}

TEST(ServiceStressTest, SingleFlightFirstAnalyze) {
  // N clients race to first-analyze the same analysis-cold module: the
  // per-module bundle must build exactly once (single-flight), every
  // racer must get bit-identical plans, and (in the TSan lane) the
  // call_once/map machinery must be clean. A run-mode session seats the
  // module in L1 first so all racers share one CachedModule — the
  // single-flight scope is the module object, not the source text.
  ServerConfig C;
  C.SocketPath = testSocketPath("singleflight");
  C.PoolThreads = 4;
  Server S(C);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  Message Seat = S.handle(sessionReq(DoallSrc, "run"));
  ASSERT_EQ(field(Seat, "ok"), "1") << field(Seat, "error");
  ASSERT_EQ(statLong(S.statsJson(), "analysis_builds"), 0)
      << "a run-mode session built analysis";

  constexpr unsigned N = 8;
  std::vector<Message> Resps(N);
  std::vector<std::string> Errs(N);
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I < N; ++I)
    Ts.emplace_back([&, I] {
      Client Cl;
      std::string E;
      if (!Cl.connect(C.SocketPath, E)) {
        Errs[I] = E;
        return;
      }
      if (!Cl.request(sessionReq(DoallSrc, "analyze"), Resps[I], E))
        Errs[I] = E;
    });
  for (std::thread &T : Ts)
    T.join();

  for (unsigned I = 0; I < N; ++I) {
    ASSERT_EQ(Errs[I], "") << "client " << I;
    ASSERT_EQ(field(Resps[I], "ok"), "1")
        << "client " << I << ": " << field(Resps[I], "error");
    EXPECT_EQ(field(Resps[I], "plans"), field(Resps[0], "plans"))
        << "client " << I;
  }
  EXPECT_NE(field(Resps[0], "plans"), "");
  // DoallSrc defines one loop-bearing function (@main): exactly one
  // analysis build no matter how many racers.
  EXPECT_EQ(statLong(S.statsJson(), "analysis_builds"), 1)
      << S.statsJson();
  S.stop();
}

TEST(ServiceStressTest, ConcurrentMixedLoad) {
  // The TSan lane's main course: sessions over both sources (hitting and
  // missing both caches, including cross-source @main invalidations),
  // profile merges, and stats snapshots, all interleaved from 8 client
  // threads over the real socket.
  ServerConfig C;
  C.SocketPath = testSocketPath("stress");
  C.PoolThreads = 4;
  C.ModuleCacheCap = 1; // force L1 churn under contention
  Server S(C);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  DepProfile P;
  P.Functions["main"].NumInstructions = 3;
  std::string ProfileJson = P.toJson();

  constexpr unsigned Threads = 8, Iters = 6;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      Client Cl;
      std::string E;
      if (!Cl.connect(C.SocketPath, E)) {
        ++Failures;
        return;
      }
      for (unsigned I = 0; I < Iters; ++I) {
        Message R;
        bool Ok = true;
        switch ((T + I) % 4) {
        case 0:
          Ok = Cl.request(sessionReq(DoallSrc, "full"), R, E) &&
               field(R, "ok") == "1";
          break;
        case 1:
          Ok = Cl.request(sessionReq(CarriedSrc, "analyze"), R, E) &&
               field(R, "ok") == "1";
          break;
        case 2:
          Ok = Cl.request({{"op", "profile-merge"},
                           {"profile", ProfileJson}},
                          R, E) &&
               field(R, "ok") == "1";
          break;
        case 3:
          Ok = Cl.request({{"op", "stats"}}, R, E) &&
               field(R, "json").find("\"sessions\"") != std::string::npos;
          break;
        }
        if (!Ok)
          ++Failures;
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
  S.stop();
}
