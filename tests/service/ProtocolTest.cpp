//===- ProtocolTest.cpp - pscd wire protocol contract ---------------------===//
///
/// The length-prefixed frame protocol from both ends: encode/decode are
/// inverse for arbitrary (binary-safe) field maps, decode rejects every
/// malformed payload shape loudly, and writeFrame/readFrame round-trip
/// over a real socketpair — including the clean-EOF-vs-truncation
/// distinction readFrame's contract promises.
///
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace psc::service;

TEST(ProtocolTest, EncodeDecodeRoundTrip) {
  Message M{{"op", "session"},
            {"source", "int main() { return 0; }"},
            {"empty", ""},
            {"binary", std::string("\x00\n\xff\x01", 4)}};
  std::string Payload = encodeMessage(M);
  Message Out;
  std::string Err;
  ASSERT_TRUE(decodeMessage(Payload, Out, Err)) << Err;
  EXPECT_EQ(Out, M);
}

TEST(ProtocolTest, EmptyMessageRoundTrips) {
  Message Out;
  std::string Err;
  ASSERT_TRUE(decodeMessage(encodeMessage(Message{}), Out, Err)) << Err;
  EXPECT_TRUE(Out.empty());
}

TEST(ProtocolTest, DecodeRejectsTruncatedPayload) {
  std::string Payload = encodeMessage(Message{{"key", "value"}});
  Message Out;
  std::string Err;
  // Every proper prefix is a truncation.
  for (size_t Len = 1; Len < Payload.size(); ++Len) {
    EXPECT_FALSE(decodeMessage(Payload.substr(0, Len), Out, Err))
        << "prefix of length " << Len << " decoded";
  }
}

TEST(ProtocolTest, DecodeRejectsTrailingBytes) {
  std::string Payload = encodeMessage(Message{{"key", "value"}}) + "x";
  Message Out;
  std::string Err;
  EXPECT_FALSE(decodeMessage(Payload, Out, Err));
}

TEST(ProtocolTest, DecodeRejectsImplausibleFieldCount) {
  // A 4-byte payload claiming 2^31 fields must be rejected up front, not
  // iterated.
  std::string Payload("\xff\xff\xff\x7f", 4);
  Message Out;
  std::string Err;
  EXPECT_FALSE(decodeMessage(Payload, Out, Err));
}

TEST(ProtocolTest, FramesRoundTripOverSocketpair) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  Message Sent{{"op", "ping"}, {"n", "1"}};
  std::string Err;
  ASSERT_TRUE(writeFrame(Fds[0], Sent, Err)) << Err;
  Message Got;
  ASSERT_TRUE(readFrame(Fds[1], Got, Err)) << Err;
  EXPECT_EQ(Got, Sent);

  // Clean EOF: peer closes between frames → false with empty Err.
  ::close(Fds[0]);
  EXPECT_FALSE(readFrame(Fds[1], Got, Err));
  EXPECT_TRUE(Err.empty()) << Err;
  ::close(Fds[1]);
}

TEST(ProtocolTest, MidFrameCloseIsTruncationNotEOF) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  // A length prefix promising 100 bytes, then close: the reader must
  // report a truncated frame, not a clean end of stream.
  uint32_t Len = 100;
  char Prefix[4];
  std::memcpy(Prefix, &Len, 4);
  ASSERT_EQ(::write(Fds[0], Prefix, 4), 4);
  ::close(Fds[0]);
  Message Got;
  std::string Err;
  EXPECT_FALSE(readFrame(Fds[1], Got, Err));
  EXPECT_FALSE(Err.empty());
  ::close(Fds[1]);
}

TEST(ProtocolTest, OversizeFrameLengthIsCorruption) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  uint32_t Len = MaxFrameBytes + 1;
  char Prefix[4];
  std::memcpy(Prefix, &Len, 4);
  ASSERT_EQ(::write(Fds[0], Prefix, 4), 4);
  Message Got;
  std::string Err;
  EXPECT_FALSE(readFrame(Fds[1], Got, Err));
  EXPECT_FALSE(Err.empty());
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(ProtocolTest, LargeValueSurvives) {
  // Program sources and profile JSON ride as single fields; make sure a
  // multi-megabyte value frames correctly through a real socket (which
  // forces partial reads/writes past the pipe buffer).
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  std::string Big(4u << 20, 'x');
  Big[12345] = '\0';
  Message Sent{{"blob", Big}};
  std::thread Writer([&] {
    std::string Err;
    ASSERT_TRUE(writeFrame(Fds[0], Sent, Err)) << Err;
  });
  Message Got;
  std::string Err;
  ASSERT_TRUE(readFrame(Fds[1], Got, Err)) << Err;
  Writer.join();
  EXPECT_EQ(Got, Sent);
  ::close(Fds[0]);
  ::close(Fds[1]);
}
