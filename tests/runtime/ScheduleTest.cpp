//===- ScheduleTest.cpp - Runtime plan compiler validations -------*- C++ -*-=//
///
/// Tests for buildRuntimePlan: which loops become DOALL/HELIX/DSWP, and —
/// critically — which must NOT. The headline regression: a loop with a
/// loop-carried dependence is never scheduled as DOALL under any
/// abstraction.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "runtime/Schedule.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

/// Schedule of the loop whose header block name starts with \p Prefix.
const LoopSchedule *scheduleByHeader(const RuntimePlan &Plan,
                                     const std::string &Prefix) {
  for (const auto &[Key, LS] : Plan.Loops) {
    const std::string &Name = Key.first->getBlock(Key.second)->getName();
    if (Name.rfind(Prefix, 0) == 0)
      return &LS;
  }
  return nullptr;
}

TEST(ScheduleTest, IndependentLoopIsDOALL) {
  auto M = compile(R"PSC(
int a[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) {
    a[i] = i * 3;
  }
  return a[7];
}
)PSC");
  ASSERT_NE(M, nullptr);
  for (AbstractionKind K :
       {AbstractionKind::PDG, AbstractionKind::JK, AbstractionKind::PSPDG}) {
    RuntimePlan Plan = buildRuntimePlan(*M, K, 4);
    const LoopSchedule *LS = scheduleByHeader(Plan, "for.header");
    ASSERT_NE(LS, nullptr);
    EXPECT_EQ(LS->Kind, ScheduleKind::DOALL) << abstractionName(K);
    EXPECT_EQ(LS->Trip, 64);
    EXPECT_EQ(LS->Init, 0);
    EXPECT_EQ(LS->Step, 1);
  }
}

TEST(ScheduleTest, CarriedDependenceIsNeverDOALL) {
  // Regression: the recurrence a[i] = a[i-1] + 1 must never be DOALL.
  auto M = compile(R"PSC(
int a[64];
int main() {
  int i;
  for (i = 1; i < 64; i++) {
    a[i] = a[i - 1] + 1;
  }
  return a[63];
}
)PSC");
  ASSERT_NE(M, nullptr);
  for (AbstractionKind K :
       {AbstractionKind::PDG, AbstractionKind::JK, AbstractionKind::PSPDG}) {
    RuntimePlan Plan = buildRuntimePlan(*M, K, 8);
    const LoopSchedule *LS = scheduleByHeader(Plan, "for.header");
    ASSERT_NE(LS, nullptr);
    EXPECT_NE(LS->Kind, ScheduleKind::DOALL) << abstractionName(K);
  }
}

TEST(ScheduleTest, ReductionClauseRecordedForDOALL) {
  auto M = compile(R"PSC(
int s = 0;
int main() {
  int i;
  #pragma psc parallel for reduction(+: s)
  for (i = 0; i < 128; i++) {
    s = s + i;
  }
  return s;
}
)PSC");
  ASSERT_NE(M, nullptr);
  RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 4);
  const LoopSchedule *LS = scheduleByHeader(Plan, "for.header");
  ASSERT_NE(LS, nullptr);
  EXPECT_EQ(LS->Kind, ScheduleKind::DOALL);
  ASSERT_EQ(LS->Reductions.size(), 1u);
  EXPECT_EQ(LS->Reductions[0].Op, ReduceOp::Add);
  EXPECT_FALSE(LS->Reductions[0].IsFloat);
}

TEST(ScheduleTest, UnprivatizableSharedScalarStaysSequential) {
  // s carries a dependence and has no reduction clause: not parallel.
  auto M = compile(R"PSC(
int s = 0;
int main() {
  int i;
  for (i = 0; i < 128; i++) {
    s = s + i;
  }
  return s;
}
)PSC");
  ASSERT_NE(M, nullptr);
  for (AbstractionKind K :
       {AbstractionKind::PDG, AbstractionKind::PSPDG}) {
    RuntimePlan Plan = buildRuntimePlan(*M, K, 4);
    const LoopSchedule *LS = scheduleByHeader(Plan, "for.header");
    ASSERT_NE(LS, nullptr);
    EXPECT_EQ(LS->Kind, ScheduleKind::Sequential) << abstractionName(K);
    EXPECT_FALSE(LS->Reason.empty());
  }
}

TEST(ScheduleTest, ThreadPrivateWritingLoopIsNeverParallel) {
  // Writes to threadprivate storage encode per-thread semantics the
  // sequential-equivalence engine cannot honor (the IS histogram shape).
  auto M = compile(R"PSC(
int key[64];
int buf[16];
#pragma psc threadprivate(buf)
int main() {
  int i;
  #pragma psc parallel
  {
    #pragma psc for
    for (i = 0; i < 64; i++) {
      buf[key[i]] += 1;
    }
  }
  return buf[0];
}
)PSC");
  ASSERT_NE(M, nullptr);
  for (AbstractionKind K :
       {AbstractionKind::JK, AbstractionKind::PSPDG}) {
    RuntimePlan Plan = buildRuntimePlan(*M, K, 4);
    const LoopSchedule *LS = scheduleByHeader(Plan, "for.header");
    ASSERT_NE(LS, nullptr);
    EXPECT_EQ(LS->Kind, ScheduleKind::Sequential) << abstractionName(K);
  }
}

TEST(ScheduleTest, NonConstantTripCountStaysSequential) {
  auto M = compile(R"PSC(
int a[64];
int main(){
  int i;
  int n;
  n = a[0] + 10;
  for (i = 0; i < n; i++) {
    a[i] = i;
  }
  return a[5];
}
)PSC");
  ASSERT_NE(M, nullptr);
  RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 4);
  const LoopSchedule *LS = scheduleByHeader(Plan, "for.header");
  ASSERT_NE(LS, nullptr);
  EXPECT_EQ(LS->Kind, ScheduleKind::Sequential);
}

TEST(ScheduleTest, NegativeStepLoopIsSchedulable) {
  auto M = compile(R"PSC(
int a[64];
int main() {
  int i;
  for (i = 63; i >= 0; i--) {
    a[i] = i * 2;
  }
  return a[10];
}
)PSC");
  ASSERT_NE(M, nullptr);
  RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 4);
  const LoopSchedule *LS = scheduleByHeader(Plan, "for.header");
  ASSERT_NE(LS, nullptr);
  EXPECT_EQ(LS->Kind, ScheduleKind::DOALL);
  EXPECT_EQ(LS->Init, 63);
  EXPECT_EQ(LS->Step, -1);
  EXPECT_EQ(LS->Trip, 64);
}

TEST(ScheduleTest, WavefrontRecurrencePipelines) {
  // The LU reverse-wavefront shape: recurrence SCC + independent loads →
  // DSWP (HELIX is blocked by the enclosing ordered region's content).
  auto M = compile(R"PSC(
double v[256];
int main() {
  int i;
  int j;
  #pragma psc parallel for ordered private(j)
  for (i = 1; i < 15; i++) {
    #pragma psc ordered
    {
      for (j = 1; j < 15; j++) {
        v[i * 16 + j] = v[i * 16 + j] + 0.2 * v[i * 16 + (j - 1)];
      }
    }
  }
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 4);
  const LoopSchedule *Inner = nullptr;
  for (const auto &[Key, LS] : Plan.Loops)
    if (LS.Depth == 2)
      Inner = &LS;
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->Kind, ScheduleKind::DSWP);
  EXPECT_GE(Inner->NumStages, 2u);
}

TEST(ScheduleTest, RecurrenceWithParallelWorkPrefersHELIX) {
  auto M = compile(R"PSC(
double a[128];
double r[128];
int main() {
  int j;
  for (j = 1; j < 128; j++) {
    a[j] = r[j] + 0.5 * a[j - 1];
  }
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 4);
  const LoopSchedule *LS = scheduleByHeader(Plan, "for.header");
  ASSERT_NE(LS, nullptr);
  EXPECT_EQ(LS->Kind, ScheduleKind::HELIX);
  EXPECT_GT(LS->SCCOf.size(), 0u);
}

TEST(ScheduleTest, WorkloadPlansContainParallelLoops) {
  // Every NAS-like workload must yield at least one parallel loop under
  // the PS-PDG plan, and EP's outer sampling loop must be DOALL.
  for (const Workload &W : nasWorkloads()) {
    auto M = compile(W.Source);
    ASSERT_NE(M, nullptr) << W.Name;
    RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8);
    unsigned Parallel = 0;
    for (const auto &[Key, LS] : Plan.Loops)
      if (LS.Kind != ScheduleKind::Sequential)
        ++Parallel;
    EXPECT_GT(Parallel, 0u) << W.Name;
  }
  auto EP = compile(findWorkload("EP")->Source);
  ASSERT_NE(EP, nullptr);
  RuntimePlan Plan = buildRuntimePlan(*EP, AbstractionKind::PSPDG, 8);
  const LoopSchedule *Outer = scheduleByHeader(Plan, "for.header.0");
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->Kind, ScheduleKind::DOALL);
  EXPECT_EQ(Outer->Reductions.size(), 2u); // sx, sy
}

} // namespace
