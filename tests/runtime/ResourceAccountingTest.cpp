//===- ResourceAccountingTest.cpp - per-loop speculation footprints -------===//
///
/// The health layer's per-loop resource accounting (DESIGN.md §14):
/// speculative schedules report how many watched access records the
/// validator consumed (SpecLogEntries) and the largest invocation's
/// overlay footprint in bytes (PeakOverlayBytes); sound schedules carry
/// no speculation machinery and report zero for both.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Interpreter.h"
#include "profiling/DepProfiler.h"
#include "runtime/ParallelRuntime.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

DepProfile train(const Module &M) {
  ModuleAnalyses MA(M);
  DepProfiler P(MA);
  Interpreter I(M);
  I.addObserver(&P);
  EXPECT_TRUE(I.run().Completed);
  return P.takeProfile();
}

} // namespace

TEST(ResourceAccountingTest, SpeculativeLoopsReportLogAndOverlayFootprint) {
  auto M = compile(findWorkload("UA")->Source);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  RuntimePlan Plan =
      buildRuntimePlan(*M, AbstractionKind::PSPDG, 4, FeatureSet(),
                       DepOracleConfig({}, &P));
  ParallelRuntime RT(*M, Plan, ExecEngineKind::Bytecode);
  ParallelRunResult R = RT.run();
  ASSERT_TRUE(R.Error.empty()) << R.Error;

  bool SawSpec = false;
  for (const LoopExecStat &L : R.Loops) {
    if (!L.Speculative || !L.Invocations)
      continue;
    SawSpec = true;
    // Every speculative invocation watches at least its assumed
    // endpoints, so the validator consumed a non-empty log...
    EXPECT_GT(L.SpecLogEntries, 0u) << "header " << L.Header;
    // ...and the workers buffered their writes in a non-empty overlay.
    EXPECT_GT(L.PeakOverlayBytes, 0u) << "header " << L.Header;
  }
  EXPECT_TRUE(SawSpec) << "UA under a trained profile must speculate";
}

TEST(ResourceAccountingTest, SoundSchedulesReportZeroFootprint) {
  auto M = compile(findWorkload("EP")->Source);
  ASSERT_NE(M, nullptr);
  RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 4);
  ParallelRuntime RT(*M, Plan, ExecEngineKind::Bytecode);
  ParallelRunResult R = RT.run();
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  for (const LoopExecStat &L : R.Loops) {
    if (L.Speculative)
      continue;
    EXPECT_EQ(L.SpecLogEntries, 0u) << "header " << L.Header;
    EXPECT_EQ(L.PeakOverlayBytes, 0u) << "header " << L.Header;
  }
}

TEST(ResourceAccountingTest, MisspeculatedInvocationsStillAccount) {
  // The adversarial UA from the spec suite: the clean profile applies
  // structurally and is violated at run time. The discarded speculative
  // invocation's footprint must still be accounted — forensics cares
  // most about exactly these invocations.
  auto Clean = compile(findWorkload("UA")->Source);
  ASSERT_NE(Clean, nullptr);
  std::string Adv = findWorkload("UA")->Source;
  size_t Pos = Adv.find("i * 167 + 3");
  ASSERT_NE(Pos, std::string::npos);
  Adv.replace(Pos, 11, "i * 166 + 3");
  auto AdvM = compile(Adv);
  ASSERT_NE(AdvM, nullptr);
  DepProfile P = train(*Clean);
  RuntimePlan Plan =
      buildRuntimePlan(*AdvM, AbstractionKind::PSPDG, 8, FeatureSet(),
                       DepOracleConfig({}, &P));
  ParallelRuntime RT(*AdvM, Plan, ExecEngineKind::Bytecode);
  ParallelRunResult R = RT.run();
  ASSERT_TRUE(R.Error.empty()) << R.Error;

  bool SawMisspec = false;
  for (const LoopExecStat &L : R.Loops) {
    if (!L.Misspeculations)
      continue;
    SawMisspec = true;
    EXPECT_GT(L.SpecLogEntries, 0u) << "header " << L.Header;
  }
  EXPECT_TRUE(SawMisspec);
}
