//===- ParallelRuntimeTest.cpp - Parallel vs sequential equivalence -------===//
///
/// The engine's contract: executing any compiled plan produces exactly the
/// sequential Interpreter's output and exit value — per workload, per
/// thread count, deterministically. Plus targeted correctness tests for
/// privatized and reduction variables under 1/2/8 threads.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Interpreter.h"
#include "runtime/ParallelRuntime.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

ParallelRunResult runParallel(const Module &M, AbstractionKind Abs,
                              unsigned Threads) {
  RuntimePlan Plan = buildRuntimePlan(M, Abs, Threads);
  ParallelRuntime RT(M, Plan);
  return RT.run();
}

void expectEquivalent(const Module &M, AbstractionKind Abs, unsigned Threads,
                      const std::string &What) {
  Interpreter Seq(M);
  RunResult SeqR = Seq.run();
  ParallelRunResult Par = runParallel(M, Abs, Threads);
  EXPECT_TRUE(Par.Error.empty())
      << What << ": " << Par.Error << " (threads=" << Threads << ")";
  EXPECT_EQ(Par.R.ExitValue, SeqR.ExitValue)
      << What << " threads=" << Threads;
  EXPECT_EQ(Par.R.Output, SeqR.Output) << What << " threads=" << Threads;
}

// --- Workload equivalence ----------------------------------------------------

class WorkloadEquivalence
    : public ::testing::TestWithParam<std::tuple<Workload, unsigned>> {};

TEST_P(WorkloadEquivalence, ParallelMatchesSequential) {
  const Workload &W = std::get<0>(GetParam());
  unsigned Threads = std::get<1>(GetParam());
  auto M = compile(W.Source);
  ASSERT_NE(M, nullptr);
  expectEquivalent(*M, AbstractionKind::PSPDG, Threads, W.Name);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadEquivalence,
    ::testing::Combine(::testing::ValuesIn(nasWorkloads()),
                       ::testing::Values(1u, 2u, 8u)),
    [](const ::testing::TestParamInfo<std::tuple<Workload, unsigned>> &I) {
      return std::get<0>(I.param).Name + "_t" +
             std::to_string(std::get<1>(I.param));
    });

TEST(ParallelRuntimeTest, WorkloadsMatchUnderPDGAndJKPlans) {
  // Spot-check the weaker abstractions' plans on two workloads each.
  for (const char *Name : {"EP", "LU"}) {
    auto M = compile(findWorkload(Name)->Source);
    ASSERT_NE(M, nullptr);
    expectEquivalent(*M, AbstractionKind::PDG, 4, std::string(Name) + "/pdg");
    expectEquivalent(*M, AbstractionKind::JK, 4, std::string(Name) + "/jk");
  }
}

TEST(ParallelRuntimeTest, ParallelRunsAreDeterministic) {
  auto M = compile(findWorkload("CG")->Source);
  ASSERT_NE(M, nullptr);
  ParallelRunResult A = runParallel(*M, AbstractionKind::PSPDG, 8);
  ParallelRunResult B = runParallel(*M, AbstractionKind::PSPDG, 8);
  ASSERT_TRUE(A.Error.empty());
  EXPECT_EQ(A.R.Output, B.R.Output);
  EXPECT_EQ(A.R.ExitValue, B.R.ExitValue);
  EXPECT_EQ(A.R.InstructionsExecuted, B.R.InstructionsExecuted);
}

TEST(ParallelRuntimeTest, SequentialFallbackIsDeterministic) {
  // A plan with no parallelizable loops degenerates to the interpreter;
  // two runs and the sequential run agree exactly.
  auto M = compile(R"PSC(
int s = 0;
int main() {
  int i;
  for (i = 0; i < 100; i++) {
    s = s + i * i;
  }
  print(s);
  return s % 127;
}
)PSC");
  ASSERT_NE(M, nullptr);
  Interpreter Seq(*M);
  RunResult SeqR = Seq.run();
  ParallelRunResult A = runParallel(*M, AbstractionKind::PSPDG, 8);
  ParallelRunResult B = runParallel(*M, AbstractionKind::PSPDG, 8);
  EXPECT_EQ(A.R.Output, SeqR.Output);
  EXPECT_EQ(A.R.ExitValue, SeqR.ExitValue);
  EXPECT_EQ(B.R.Output, A.R.Output);
  EXPECT_EQ(B.R.InstructionsExecuted, A.R.InstructionsExecuted);
}

// --- Privatization and reductions -------------------------------------------

class ThreadCountTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadCountTest, IntAddReduction) {
  auto M = compile(R"PSC(
int s = 0;
int main() {
  int i;
  #pragma psc parallel for reduction(+: s)
  for (i = 0; i < 1000; i++) {
    s = s + i;
  }
  print(s);
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  ParallelRunResult R = runParallel(*M, AbstractionKind::PSPDG, GetParam());
  ASSERT_TRUE(R.Error.empty());
  ASSERT_EQ(R.R.Output.size(), 1u);
  EXPECT_EQ(R.R.Output[0], "499500");
}

TEST_P(ThreadCountTest, MinMaxMulReductions) {
  auto M = compile(R"PSC(
int mn = 1000000;
int mx = -1000000;
int pr = 1;
int main() {
  int i;
  int v;
  #pragma psc parallel for reduction(min: mn) reduction(max: mx) private(v)
  for (i = 0; i < 64; i++) {
    v = (i * 37) % 101 - 50;
    mn = imin(mn, v);
    mx = imax(mx, v);
  }
  #pragma psc parallel for reduction(*: pr)
  for (i = 1; i < 11; i++) {
    pr = pr * i;
  }
  print(mn);
  print(mx);
  print(pr);
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  Interpreter Seq(*M);
  RunResult SeqR = Seq.run();
  ParallelRunResult R = runParallel(*M, AbstractionKind::PSPDG, GetParam());
  ASSERT_TRUE(R.Error.empty());
  EXPECT_EQ(R.R.Output, SeqR.Output);
  ASSERT_EQ(R.R.Output.size(), 3u);
  EXPECT_EQ(R.R.Output[2], "3628800"); // 10!
}

TEST_P(ThreadCountTest, FloatAddReductionExactDyadicSums) {
  // Summands are multiples of 2^-10, so chunked partial sums are exact and
  // must match the sequential fold bit-for-bit.
  auto M = compile(R"PSC(
double s = 0.0;
int main() {
  int i;
  double x;
  int c;
  #pragma psc parallel for reduction(+: s) private(x)
  for (i = 0; i < 512; i++) {
    x = (i % 64) / 64.0;
    s = s + x;
  }
  c = s * 64.0;
  print(c);
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  Interpreter Seq(*M);
  RunResult SeqR = Seq.run();
  ParallelRunResult R = runParallel(*M, AbstractionKind::PSPDG, GetParam());
  ASSERT_TRUE(R.Error.empty());
  EXPECT_EQ(R.R.Output, SeqR.Output);
}

TEST_P(ThreadCountTest, PrivateScalarsDoNotInterfere) {
  auto M = compile(R"PSC(
int out[256];
int main() {
  int i;
  int t;
  int u;
  #pragma psc parallel for private(t, u)
  for (i = 0; i < 256; i++) {
    t = i * 3;
    u = t + 7;
    out[i] = u * u;
  }
  print(out[0]);
  print(out[100]);
  print(out[255]);
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  Interpreter Seq(*M);
  RunResult SeqR = Seq.run();
  ParallelRunResult R = runParallel(*M, AbstractionKind::PSPDG, GetParam());
  ASSERT_TRUE(R.Error.empty());
  EXPECT_EQ(R.R.Output, SeqR.Output);
}

TEST_P(ThreadCountTest, HELIXRecurrenceMatchesSequential) {
  auto M = compile(R"PSC(
double a[512];
double r[512];
int main() {
  int j;
  int c;
  double s;
  for (j = 0; j < 512; j++) {
    a[j] = (j % 7) / 8.0;
    r[j] = (j % 5) / 8.0;
  }
  for (j = 1; j < 512; j++) {
    a[j] = r[j] + 0.5 * a[j - 1];
  }
  s = 0.0;
  for (j = 0; j < 512; j++) {
    s = s + a[j];
  }
  c = s * 16.0;
  print(c);
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  expectEquivalent(*M, AbstractionKind::PSPDG, GetParam(), "helix");
}

TEST_P(ThreadCountTest, DSWPWavefrontMatchesSequential) {
  auto M = compile(R"PSC(
double v[1024];
int main() {
  int i;
  int j;
  double s;
  int c;
  for (i = 0; i < 1024; i++) {
    v[i] = ((i * 13) % 50) / 64.0;
  }
  #pragma psc parallel for ordered private(j)
  for (i = 30; i >= 1; i--) {
    #pragma psc ordered
    {
      for (j = 30; j >= 1; j--) {
        v[i * 32 + j] = v[i * 32 + j]
                      + 0.25 * v[(i + 1) * 32 + j]
                      + 0.25 * v[i * 32 + (j + 1)];
      }
    }
  }
  s = 0.0;
  for (i = 0; i < 1024; i++) {
    s = s + v[i];
  }
  c = s * 64.0;
  print(c);
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  expectEquivalent(*M, AbstractionKind::PSPDG, GetParam(), "dswp");
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountTest,
                         ::testing::Values(1u, 2u, 8u),
                         [](const ::testing::TestParamInfo<unsigned> &I) {
                           return "t" + std::to_string(I.param);
                         });

// --- Output ordering ---------------------------------------------------------

TEST(ParallelRuntimeTest, PrintsInsideDOALLKeepSequentialOrder) {
  auto M = compile(R"PSC(
int main() {
  int i;
  for (i = 0; i < 50; i++) {
    print(i * i);
  }
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  Interpreter Seq(*M);
  RunResult SeqR = Seq.run();
  ASSERT_EQ(SeqR.Output.size(), 50u);
  for (unsigned T : {2u, 8u}) {
    ParallelRunResult R = runParallel(*M, AbstractionKind::PSPDG, T);
    ASSERT_TRUE(R.Error.empty());
    EXPECT_EQ(R.R.Output, SeqR.Output) << "threads=" << T;
  }
}

TEST(ParallelRuntimeTest, BudgetAbortInsideCriticalRegionReleasesLock) {
  // Regression: a worker aborting between region_begin and region_end must
  // not leak the shared region lock (other workers would block forever and
  // ExecState would be destroyed with the mutex held).
  auto M = compile(R"PSC(
int q[8];
int main() {
  int i;
  int v;
  #pragma psc parallel for private(v)
  for (i = 0; i < 256; i++) {
    v = i % 8;
    #pragma psc atomic
    q[v] += 1;
  }
  return q[0];
}
)PSC");
  ASSERT_NE(M, nullptr);
  RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 4);
  ParallelRuntime RT(*M, Plan);
  RT.setInstructionBudget(400); // aborts with workers mid-loop
  ParallelRunResult R = RT.run(); // must terminate, not hang
  EXPECT_FALSE(R.R.Completed);
}

TEST(ParallelRuntimeTest, CustomReducibleLoopsStaySequential) {
  // Regression: a loop accumulating into `reducible(var : fn)` storage must
  // not be parallelized — the abstraction views drop its carried
  // dependences (that is the point of the trait), but the runtime has no
  // combiner for application-specific reductions, so a parallel schedule
  // would race concurrent read-modify-writes on the shared object
  // (nondeterministic float accumulation order under load).
  auto M = compile(R"PSC(
double acc[4];
#pragma psc reducible(acc : merge_acc)

void merge_acc(double dst[], double src[]) {
  int t;
  for (t = 0; t < 4; t++) {
    dst[t] = dst[t] + src[t];
  }
}

int main() {
  int i;
  int c;
  double s;
  #pragma psc parallel for
  for (i = 0; i < 64; i++) {
    acc[i % 4] = acc[i % 4] + (i % 7) / 8.0;
  }
  s = 0.0;
  for (i = 0; i < 4; i++) {
    s = s + acc[i];
  }
  c = s * 8.0;
  print(c);
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8);
  for (const auto &[Key, LS] : Plan.Loops) {
    (void)Key;
    if (LS.Reason.find("custom-reducible") != std::string::npos) {
      EXPECT_EQ(LS.Kind, ScheduleKind::Sequential);
    }
  }
  bool SawRejection = false;
  for (const auto &[Key, LS] : Plan.Loops) {
    (void)Key;
    if (LS.Kind == ScheduleKind::Sequential &&
        LS.Reason.find("custom-reducible") != std::string::npos)
      SawRejection = true;
  }
  EXPECT_TRUE(SawRejection)
      << "the reducible-array loop was not rejected by the plan compiler";
  expectEquivalent(*M, AbstractionKind::PSPDG, 8, "reducible");
}

TEST(ParallelRuntimeTest, BudgetExhaustionAbortsCleanly) {
  auto M = compile(R"PSC(
int a[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) {
    a[i] = i;
  }
  return a[63];
}
)PSC");
  ASSERT_NE(M, nullptr);
  RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 4);
  ParallelRuntime RT(*M, Plan);
  RT.setInstructionBudget(50); // far below the loop's dynamic count
  ParallelRunResult R = RT.run();
  EXPECT_FALSE(R.R.Completed);
}

} // namespace
