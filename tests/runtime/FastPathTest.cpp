//===- FastPathTest.cpp - Zero-obligation fast-path contract --------------===//
///
/// The fast-path contract of DESIGN.md §11, from both ends:
///
///   * Engine side — BCContext::canFastPath() is true exactly when no
///     observer, gate, shadow memory, speculation log, or commit table is
///     installed; installing any obligation carrier disables it.
///   * Plan side — LoopSchedule::zeroObligation() is true exactly when the
///     schedule carries no watch sets, value predictions, guards, or
///     promoted reductions; plain validity-driven plans are
///     zero-obligation throughout.
///   * Differential — zero-obligation parallel execution is bit-identical
///     to the sequential run (output + exit value), and the fast dispatch
///     loop preserves the exact budget-abort instruction across engines.
///
/// Plus the grain pass: a cost model sized for one worker demotes every
/// schedule ("below parallel grain"), ample workers keep coarse DOALLs
/// parallel with auto-sized chunks, and a forced chunk pins LS.Chunk.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Interpreter.h"
#include "runtime/ParallelRuntime.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

// A coarse-grained DOALL: big trip, array writes, a scalar reduction.
const char *CoarseDoall = R"PSC(
int a[2048];
int sum = 0;
int main() {
  int i;
  #pragma psc parallel for reduction(+: sum)
  for (i = 0; i < 2048; i++) {
    a[i] = i * 3 + (i % 7);
    sum = sum + a[i];
  }
  print(sum);
  return 0;
}
)PSC";

// A tiny loop: the spawn/join overhead dwarfs eight iterations of work.
const char *TinyDoall = R"PSC(
int a[8];
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 8; i++) {
    a[i] = i + 1;
  }
  print(a[7]);
  return 0;
}
)PSC";

// --- Engine side: canFastPath ------------------------------------------------

TEST(CanFastPath, FreshContextQualifies) {
  auto M = compile(CoarseDoall);
  ASSERT_NE(M, nullptr);
  ExecState S(*M);
  BytecodeModule BM(*M);
  BCContext C(S, BM);
  EXPECT_TRUE(C.canFastPath());
}

TEST(CanFastPath, ObserverDisables) {
  auto M = compile(CoarseDoall);
  ASSERT_NE(M, nullptr);
  ExecState S(*M);
  BytecodeModule BM(*M);
  BCContext C(S, BM);
  ExecutionObserver Obs;
  C.addObserver(&Obs);
  EXPECT_FALSE(C.canFastPath());
}

TEST(CanFastPath, GateDisables) {
  auto M = compile(CoarseDoall);
  ASSERT_NE(M, nullptr);
  ExecState S(*M);
  BytecodeModule BM(*M);
  BCContext C(S, BM);
  BCContext::IterationGate Gate;
  C.setGate(&Gate);
  EXPECT_FALSE(C.canFastPath());
}

TEST(CanFastPath, ShadowMemoryDisables) {
  auto M = compile(CoarseDoall);
  ASSERT_NE(M, nullptr);
  ExecState S(*M);
  BytecodeModule BM(*M);
  BCContext C(S, BM);
  ShadowMemory SM;
  C.setShadowMemory(&SM);
  EXPECT_FALSE(C.canFastPath());
}

TEST(CanFastPath, SpecWatchDisables) {
  auto M = compile(CoarseDoall);
  ASSERT_NE(M, nullptr);
  ExecState S(*M);
  BytecodeModule BM(*M);
  BCContext C(S, BM);
  const BCFunction *BF = BM.forFunction(M->getFunction("main"));
  ASSERT_NE(BF, nullptr);
  std::vector<uint32_t> Watch(1, 0);
  SpecAccessLog Log;
  C.setSpecWatch(BF, &Watch, &Log);
  EXPECT_FALSE(C.canFastPath());
}

TEST(CanFastPath, CommitTableDisables) {
  auto M = compile(CoarseDoall);
  ASSERT_NE(M, nullptr);
  ExecState S(*M);
  BytecodeModule BM(*M);
  BCContext C(S, BM);
  const BCFunction *BF = BM.forFunction(M->getFunction("main"));
  ASSERT_NE(BF, nullptr);
  std::vector<uint8_t> Owned(1, 1);
  C.setCommitTable(BF, &Owned);
  EXPECT_FALSE(C.canFastPath());
}

// --- Plan side: zeroObligation ----------------------------------------------

TEST(ZeroObligation, PlainPlansCarryNoObligations) {
  for (const Workload &W : nasWorkloads()) {
    auto M = compile(W.Source);
    ASSERT_NE(M, nullptr) << W.Name;
    RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8);
    for (const auto &[Key, LS] : Plan.Loops)
      EXPECT_TRUE(LS.zeroObligation())
          << W.Name << " header " << LS.Header
          << ": sound plans must not carry speculation obligations";
  }
}

TEST(ZeroObligation, AnyObligationDisqualifies) {
  LoopSchedule LS;
  EXPECT_TRUE(LS.zeroObligation());

  LoopSchedule Spec = LS;
  Spec.Speculative = true;
  EXPECT_FALSE(Spec.zeroObligation());

  LoopSchedule Assumed = LS;
  Assumed.Assumptions.emplace_back();
  EXPECT_FALSE(Assumed.zeroObligation());

  LoopSchedule Valued = LS;
  Valued.ValuePreds.emplace_back();
  EXPECT_FALSE(Valued.zeroObligation());

  LoopSchedule Promoted = LS;
  Promoted.SpecReductions.emplace_back();
  EXPECT_FALSE(Promoted.zeroObligation());

  LoopSchedule Guarded = LS;
  Guarded.GuardWatchOf.emplace(nullptr, 0u);
  EXPECT_FALSE(Guarded.zeroObligation());
}

// --- Differential: zero-obligation execution is bit-identical ---------------

TEST(FastPathDifferential, ZeroObligationParallelMatchesSequential) {
  for (const char *Src : {CoarseDoall, TinyDoall}) {
    auto M = compile(Src);
    ASSERT_NE(M, nullptr);
    Interpreter Seq(*M);
    RunResult SeqR = Seq.run();
    ASSERT_TRUE(SeqR.Completed);
    for (unsigned Threads : {1u, 2u, 8u}) {
      RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, Threads);
      for (const auto &[Key, LS] : Plan.Loops)
        ASSERT_TRUE(LS.zeroObligation());
      ParallelRuntime RT(*M, Plan);
      ParallelRunResult Par = RT.run();
      EXPECT_TRUE(Par.Error.empty()) << Par.Error;
      EXPECT_EQ(Par.R.Output, SeqR.Output) << "threads=" << Threads;
      EXPECT_EQ(Par.R.ExitValue, SeqR.ExitValue) << "threads=" << Threads;
    }
  }
}

TEST(FastPathDifferential, BudgetAbortInstructionExactAcrossEngines) {
  auto M = compile(CoarseDoall);
  ASSERT_NE(M, nullptr);
  // The fast dispatch loop batches its budget charging; the abort must
  // still fire on exactly the same instruction as the walker's
  // per-instruction cadence.
  for (uint64_t Budget : {100ULL, 1537ULL, 20000ULL}) {
    Interpreter Walk(*M);
    Walk.setEngine(ExecEngineKind::Walker);
    Walk.setInstructionBudget(Budget);
    RunResult WR = Walk.run();

    Interpreter Byte(*M);
    Byte.setEngine(ExecEngineKind::Bytecode);
    Byte.setInstructionBudget(Budget);
    RunResult BR = Byte.run();

    EXPECT_EQ(WR.Completed, BR.Completed) << "budget=" << Budget;
    EXPECT_EQ(WR.InstructionsExecuted, BR.InstructionsExecuted)
        << "budget=" << Budget;
    EXPECT_EQ(WR.Output, BR.Output) << "budget=" << Budget;
  }
}

// --- Grain pass --------------------------------------------------------------

TEST(GrainPass, OneWorkerDemotesEverything) {
  GrainConfig G;
  G.Enabled = true;
  G.Workers = 1; // modeled capacity: parallel work cannot divide
  for (const char *Src : {CoarseDoall, TinyDoall}) {
    auto M = compile(Src);
    ASSERT_NE(M, nullptr);
    RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8,
                                        FeatureSet(), {}, G);
    for (const auto &[Key, LS] : Plan.Loops) {
      EXPECT_EQ(LS.Kind, ScheduleKind::Sequential);
      EXPECT_NE(LS.Reason.find("below parallel grain"), std::string::npos)
          << LS.Reason;
    }
  }
}

TEST(GrainPass, AmpleWorkersKeepCoarseDoallWithSizedChunks) {
  GrainConfig G;
  G.Enabled = true;
  G.Workers = 8;
  auto M = compile(CoarseDoall);
  ASSERT_NE(M, nullptr);
  RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8,
                                      FeatureSet(), {}, G);
  bool SawDoall = false;
  for (const auto &[Key, LS] : Plan.Loops)
    if (LS.Kind == ScheduleKind::DOALL) {
      SawDoall = true;
      // Auto-chunking: each chunk carries at least MinChunkWork modeled
      // instructions, so the chunk is larger than the trip/(threads*4)
      // default of 64.
      EXPECT_GE(LS.Chunk, 64) << "chunk not sized by the grain model";
    }
  EXPECT_TRUE(SawDoall) << "coarse DOALL demoted despite ample workers";
}

TEST(GrainPass, TinyTripDemotesEvenWithAmpleWorkers) {
  GrainConfig G;
  G.Enabled = true;
  G.Workers = 8;
  auto M = compile(TinyDoall);
  ASSERT_NE(M, nullptr);
  RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8,
                                      FeatureSet(), {}, G);
  for (const auto &[Key, LS] : Plan.Loops)
    EXPECT_EQ(LS.Kind, ScheduleKind::Sequential)
        << "8-iteration loop must stay below parallel grain";
}

TEST(GrainPass, ForcedChunkPinsScheduleChunk) {
  GrainConfig G;
  G.Enabled = true;
  G.ForcedChunk = 128;
  auto M = compile(TinyDoall); // would demote under the model
  ASSERT_NE(M, nullptr);
  RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8,
                                      FeatureSet(), {}, G);
  bool SawDoall = false;
  for (const auto &[Key, LS] : Plan.Loops)
    if (LS.Kind == ScheduleKind::DOALL) {
      SawDoall = true;
      EXPECT_EQ(LS.Chunk, 128);
    }
  EXPECT_TRUE(SawDoall) << "forced grain must skip demotion";
}

TEST(GrainPass, DisabledByDefaultKeepsSchedules) {
  auto M = compile(TinyDoall);
  ASSERT_NE(M, nullptr);
  RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8);
  bool SawDoall = false;
  for (const auto &[Key, LS] : Plan.Loops)
    SawDoall |= LS.Kind == ScheduleKind::DOALL;
  EXPECT_TRUE(SawDoall)
      << "grain off: schedules stay purely validity-driven";
}

} // namespace
