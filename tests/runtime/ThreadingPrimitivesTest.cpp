//===- ThreadingPrimitivesTest.cpp - SPSC queue + thread pool -----*- C++ -*-=//
///
/// Unit tests for the runtime's concurrency primitives: the bounded SPSC
/// ring buffer connecting DSWP stages and the work-stealing thread pool
/// behind every parallel schedule.
///
//===----------------------------------------------------------------------===//

#include "runtime/SPSCQueue.h"
#include "runtime/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

using namespace psc;

namespace {

TEST(SPSCQueueTest, SingleThreadWrapAround) {
  SPSCQueue<int> Q(4); // rounded to 4 slots
  EXPECT_EQ(Q.capacity(), 4u);
  for (int Round = 0; Round < 10; ++Round) {
    for (int I = 0; I < 4; ++I)
      EXPECT_TRUE(Q.tryPush(Round * 4 + I));
    int Overflow = -1;
    EXPECT_FALSE(Q.tryPush(std::move(Overflow))); // full
    for (int I = 0; I < 4; ++I) {
      int V = -1;
      EXPECT_TRUE(Q.tryPop(V));
      EXPECT_EQ(V, Round * 4 + I);
    }
    int Empty = -1;
    EXPECT_FALSE(Q.tryPop(Empty));
  }
}

TEST(SPSCQueueTest, TwoThreadsInOrderTransfer) {
  SPSCQueue<int> Q(8);
  constexpr int N = 100000;
  std::thread Producer([&] {
    for (int I = 0; I < N; ++I)
      ASSERT_TRUE(Q.push(int(I)));
  });
  std::vector<int> Got;
  Got.reserve(N);
  for (int I = 0; I < N; ++I) {
    int V = -1;
    ASSERT_TRUE(Q.pop(V));
    Got.push_back(V);
  }
  Producer.join();
  for (int I = 0; I < N; ++I)
    ASSERT_EQ(Got[I], I);
}

TEST(SPSCQueueTest, CloseUnblocksConsumer) {
  SPSCQueue<int> Q(8);
  ASSERT_TRUE(Q.push(7));
  Q.close();
  int V = -1;
  EXPECT_TRUE(Q.pop(V)); // drains remaining item
  EXPECT_EQ(V, 7);
  EXPECT_FALSE(Q.pop(V)); // closed and empty
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numWorkers(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int Round = 0; Round < 5; ++Round) {
    for (int I = 0; I < 10; ++I)
      Pool.submit([&Count] { Count.fetch_add(1); });
    Pool.wait();
    EXPECT_EQ(Count.load(), (Round + 1) * 10);
  }
}

TEST(ThreadPoolTest, InterlockedTasksAllGetThreads) {
  // N tasks that can only finish together: every one must be running
  // concurrently (the guarantee HELIX/DSWP schedules rely on). wait()
  // lends the main thread, so numWorkers() tasks always fit.
  ThreadPool Pool(3);
  unsigned N = Pool.numWorkers();
  std::atomic<unsigned> Arrived{0};
  for (unsigned I = 0; I < N; ++I)
    Pool.submit([&Arrived, N] {
      Arrived.fetch_add(1);
      while (Arrived.load() < N)
        std::this_thread::yield();
    });
  Pool.wait();
  EXPECT_EQ(Arrived.load(), N);
}

TEST(ThreadPoolTest, SingleWorkerStillCompletes) {
  ThreadPool Pool(1);
  std::atomic<int> Count{0};
  for (int I = 0; I < 25; ++I)
    Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 25);
}

} // namespace
