//===- AbstractionViewTest.cpp - PDG vs J&K vs PS-PDG views -------*- C++ -*-===//

#include "../TestUtil.h"
#include "parallel/AbstractionView.h"
#include "pspdg/PSPDGBuilder.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

struct Views {
  Compiled C;
  std::unique_ptr<PSPDG> G;
  std::unique_ptr<AbstractionView> PDGView, JKView, PSView;

  explicit Views(const std::string &Source) : C(analyze(Source)) {
    G = buildPSPDG(*C.FA, *C.DI, FeatureSet::full());
    PDGView = std::make_unique<AbstractionView>(AbstractionKind::PDG, *C.FA,
                                                *C.DI);
    JKView =
        std::make_unique<AbstractionView>(AbstractionKind::JK, *C.FA, *C.DI);
    PSView = std::make_unique<AbstractionView>(AbstractionKind::PSPDG, *C.FA,
                                               *C.DI, G.get());
  }

  bool doall(const AbstractionView &V, const Loop *L) {
    LoopPlanView PV = V.viewFor(*L);
    LoopSCCDAG DAG(PV);
    return DAG.allParallel() && PV.TripCountable;
  }
};

TEST(AbstractionViewTest, AffineLoopIsDOALLForAll) {
  Views V(R"(
int a[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) { a[i] = i; }
  return 0;
}
)");
  const Loop *L = loopAt(*V.C.FA, 0);
  EXPECT_TRUE(V.doall(*V.PDGView, L));
  EXPECT_TRUE(V.doall(*V.JKView, L));
  EXPECT_TRUE(V.doall(*V.PSView, L));
}

TEST(AbstractionViewTest, RecurrenceBlocksAll) {
  Views V(R"(
int a[64];
int main() {
  int i;
  for (i = 1; i < 64; i++) { a[i] = a[i - 1]; }
  return 0;
}
)");
  const Loop *L = loopAt(*V.C.FA, 0);
  EXPECT_FALSE(V.doall(*V.PDGView, L));
  EXPECT_FALSE(V.doall(*V.JKView, L));
  EXPECT_FALSE(V.doall(*V.PSView, L));
}

TEST(AbstractionViewTest, IndirectAnnotatedLoop) {
  // PDG: blocked by the indirect write. J&K and PS-PDG: unlocked by the
  // worksharing declaration.
  Views V(R"(
int a[64];
int idx[64];
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 64; i++) { a[idx[i]] = i; }
  return 0;
}
)");
  const Loop *L = loopAt(*V.C.FA, 0);
  EXPECT_FALSE(V.doall(*V.PDGView, L));
  EXPECT_TRUE(V.doall(*V.JKView, L));
  EXPECT_TRUE(V.doall(*V.PSView, L));
}

TEST(AbstractionViewTest, ThreadPrivateOnlyPSPDG) {
  // The worksharing declaration alone does not justify the threadprivate
  // buffer's cross-iteration conflicts; the PS-PDG's privatizable
  // variable does.
  Views V(R"(
int buf[64];
int keys[256];
#pragma psc threadprivate(buf)
int main() {
  int i;
  #pragma psc for
  for (i = 0; i < 256; i++) { buf[keys[i]] += 1; }
  return 0;
}
)");
  const Loop *L = loopAt(*V.C.FA, 0);
  EXPECT_FALSE(V.doall(*V.PDGView, L));
  EXPECT_FALSE(V.doall(*V.JKView, L));
  EXPECT_TRUE(V.doall(*V.PSView, L));
}

TEST(AbstractionViewTest, NonAnnotatedCriticalLoopOnlyPSPDG) {
  // Orderless critical merge (IS loop 4 shape with indirection): only the
  // PS-PDG's undirected edges make the loop's SCCs parallel.
  Views V(R"(
int dst[64];
int perm[64];
int src[64];
int main() {
  int i;
  #pragma psc critical
  {
    for (i = 0; i < 64; i++) { dst[perm[i]] += src[i]; }
  }
  return 0;
}
)");
  const Loop *L = loopAt(*V.C.FA, 0);
  EXPECT_FALSE(V.doall(*V.PDGView, L));
  EXPECT_FALSE(V.doall(*V.JKView, L));
  EXPECT_TRUE(V.doall(*V.PSView, L));
  // ...and the PS-PDG view reports the lock requirement.
  LoopPlanView PV = V.PSView->viewFor(*L);
  EXPECT_GT(PV.NumOrderlessConflicts, 0u);
}

TEST(AbstractionViewTest, ReductionUnlockedByJKAndPSPDG) {
  Views V(R"(
int main() {
  int i;
  int s;
  s = 0;
  #pragma psc parallel for reduction(+: s)
  for (i = 0; i < 64; i++) { s += i; }
  return s;
}
)");
  const Loop *L = loopAt(*V.C.FA, 0);
  EXPECT_FALSE(V.doall(*V.PDGView, L));
  EXPECT_TRUE(V.doall(*V.JKView, L));
  EXPECT_TRUE(V.doall(*V.PSView, L));
}

TEST(AbstractionViewTest, CustomReductionOnlyPSPDG) {
  Views V(R"(
double pt[4];
#pragma psc reducible(pt : merge)
void merge(double a[], double b[]) {
  int k;
  for (k = 0; k < 4; k++) { a[k] = a[k] + b[k]; }
}
int main() {
  int i;
  #pragma psc parallel for reduction(merge: pt)
  for (i = 0; i < 64; i++) { pt[i % 4] += 1.0; }
  return 0;
}
)");
  const Loop *L = loopAt(*V.C.FA, 0);
  EXPECT_FALSE(V.doall(*V.PDGView, L));
  EXPECT_FALSE(V.doall(*V.JKView, L));
  EXPECT_TRUE(V.doall(*V.PSView, L));
}

TEST(AbstractionViewTest, PrivatizedTemporaryUnlocksPDGToo) {
  // Iteration-private scalar: standard compiler analysis, every
  // abstraction benefits.
  Views V(R"(
int a[64];
int b[64];
int main() {
  int i;
  int t;
  for (i = 0; i < 64; i++) {
    t = a[i] * 3;
    b[i] = t;
  }
  return 0;
}
)");
  const Loop *L = loopAt(*V.C.FA, 0);
  EXPECT_TRUE(V.doall(*V.PDGView, L));
  EXPECT_TRUE(V.doall(*V.PSView, L));
}

TEST(AbstractionViewTest, WhileLoopNotTripCountable) {
  Views V(R"(
int main() {
  int n;
  n = 1000;
  while (n > 1) { n = n / 2; }
  return n;
}
)");
  const Loop *L = loopAt(*V.C.FA, 0);
  LoopPlanView PV = V.PDGView->viewFor(*L);
  EXPECT_FALSE(PV.TripCountable);
  EXPECT_FALSE(V.doall(*V.PDGView, L));
}

TEST(AbstractionViewTest, MarkersExcludedFromViews) {
  Views V(R"(
int x;
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 8; i++) {
    #pragma psc critical
    { x += 1; }
  }
  return x;
}
)");
  const Loop *L = loopAt(*V.C.FA, 0);
  LoopPlanView PV = V.PSView->viewFor(*L);
  for (Instruction *I : PV.Insts)
    if (auto *CI = dyn_cast<CallInst>(I)) {
      EXPECT_FALSE(
          Module::isMarkerIntrinsicName(CI->getCallee()->getName()));
    }
}

} // namespace
