//===- RegionMapTest.cpp - Directive-region membership ------------*- C++ -*-===//

#include "../TestUtil.h"
#include "parallel/RegionMap.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

const Instruction *firstStoreTo(const Compiled &C, const std::string &Name) {
  for (Instruction *I : C.FA->instructions())
    if (auto *SI = dyn_cast<StoreInst>(I)) {
      const Value *Obj = SI->getPointer();
      if (auto *GEP = dyn_cast<GEPInst>(SI->getPointer()))
        Obj = GEP->getBase();
      if (Obj && Obj->getName() == Name)
        return I;
    }
  return nullptr;
}

TEST(RegionMapTest, InstructionInsideCritical) {
  Compiled C = analyze(R"(
int x;
int y;
int main() {
  y = 1;
  #pragma psc critical
  { x = 2; }
  return x;
}
)");
  RegionMap RM(*C.FA);
  const Instruction *InCrit = firstStoreTo(C, "x");
  const Instruction *Outside = firstStoreTo(C, "y");
  ASSERT_TRUE(InCrit && Outside);
  ASSERT_NE(RM.regionOf(InCrit), nullptr);
  EXPECT_EQ(RM.regionOf(InCrit)->Kind, DirectiveKind::Critical);
  EXPECT_EQ(RM.regionOf(Outside), nullptr);
  EXPECT_TRUE(RM.inMutualExclusionRegion(InCrit));
  EXPECT_FALSE(RM.inMutualExclusionRegion(Outside));
}

TEST(RegionMapTest, NestedRegionsResolveInnermost) {
  Compiled C = analyze(R"(
int x;
int main() {
  #pragma psc parallel
  {
    #pragma psc critical
    { x = 1; }
  }
  return x;
}
)");
  RegionMap RM(*C.FA);
  const Instruction *I = firstStoreTo(C, "x");
  ASSERT_NE(RM.regionOf(I), nullptr);
  EXPECT_EQ(RM.regionOf(I)->Kind, DirectiveKind::Critical);
  // The nesting chain still reaches the parallel region.
  EXPECT_NE(RM.enclosing(I, DirectiveKind::Parallel), nullptr);
}

TEST(RegionMapTest, OrderedDetected) {
  Compiled C = analyze(R"(
int x;
int main() {
  int i;
  #pragma psc parallel for ordered
  for (i = 0; i < 4; i++) {
    #pragma psc ordered
    { x += i; }
  }
  return x;
}
)");
  RegionMap RM(*C.FA);
  const Instruction *I = firstStoreTo(C, "x");
  EXPECT_TRUE(RM.inOrderedRegion(I));
  EXPECT_FALSE(RM.inMutualExclusionRegion(I));
}

TEST(RegionMapTest, TaskRegionsTracked) {
  Compiled C = analyze(R"(
int g;
void work() { g += 1; }
int main() {
  spawn work();
  sync;
  return g;
}
)");
  RegionMap RM(*C.FA);
  bool FoundTask = false;
  for (Instruction *I : C.FA->instructions())
    if (const Directive *D = RM.regionOf(I))
      if (D->Kind == DirectiveKind::Task)
        FoundTask = true;
  EXPECT_TRUE(FoundTask);
}

} // namespace
