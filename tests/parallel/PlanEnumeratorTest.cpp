//===- PlanEnumeratorTest.cpp - Fig. 13 option counting -----------*- C++ -*-===//

#include "../TestUtil.h"
#include "parallel/PlanEnumerator.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

TEST(PlanEnumeratorTest, DOALLLoopCounts448Options) {
  auto M = compile(R"(
int a[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) { a[i] = i; }
  return 0;
}
)");
  OptionCount R = enumerateOptions(*M, AbstractionKind::PDG);
  EXPECT_EQ(R.LoopsConsidered, 1u);
  EXPECT_EQ(R.DOALLLoops, 1u);
  EXPECT_EQ(R.Total, 56u * 8u);
}

TEST(PlanEnumeratorTest, SequentialLoopGetsHelixAndDSWPOptions) {
  auto M = compile(R"(
int a[64];
int main() {
  int i;
  for (i = 1; i < 64; i++) { a[i] = a[i - 1] + i; }
  return 0;
}
)");
  OptionCount R = enumerateOptions(*M, AbstractionKind::PDG);
  ASSERT_EQ(R.PerLoop.size(), 1u);
  const LoopOptions &L = R.PerLoop[0];
  EXPECT_FALSE(L.DOALL);
  EXPECT_GE(L.NumSeqSCCs, 1u);
  // HELIX: seqSCCs * 56; DSWP: min(#SCCs,56) - 1.
  uint64_t Expected =
      static_cast<uint64_t>(L.NumSeqSCCs) * 56 +
      (std::min(L.NumSCCs, 56u) >= 2 ? std::min(L.NumSCCs, 56u) - 1 : 0);
  EXPECT_EQ(L.Options, Expected);
}

TEST(PlanEnumeratorTest, OpenMPCountsOnlyAnnotatedLoops) {
  auto M = compile(R"(
int a[64];
int b[64];
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 64; i++) { a[i] = i; }
  for (i = 0; i < 64; i++) { b[i] = i; }
  return 0;
}
)");
  OptionCount R = enumerateOptions(*M, AbstractionKind::OpenMP);
  EXPECT_EQ(R.LoopsConsidered, 1u);
  EXPECT_EQ(R.Total, 56u * 8u);
}

TEST(PlanEnumeratorTest, CoverageFilterExcludesColdLoops) {
  auto M = compile(R"(
int a[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) { a[i] = i; }
  return 0;
}
)");
  CoverageMap Cold;
  // The loop exists but has below-threshold coverage.
  OptionCount R =
      enumerateOptions(*M, AbstractionKind::PDG, {}, &Cold);
  EXPECT_EQ(R.LoopsConsidered, 0u);
  EXPECT_EQ(R.Total, 0u);
}

TEST(PlanEnumeratorTest, ConfigurableMachineSize) {
  auto M = compile(R"(
int a[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) { a[i] = i; }
  return 0;
}
)");
  EnumeratorConfig Cfg;
  Cfg.Cores = 4;
  Cfg.ChunkSizes = 2;
  OptionCount R = enumerateOptions(*M, AbstractionKind::PDG, Cfg);
  EXPECT_EQ(R.Total, 8u);
}

TEST(PlanEnumeratorTest, PSPDGNeverBelowPDGOnDOALLKernels) {
  // On an all-affine annotated kernel both find the same DOALL loops.
  auto M = compile(R"(
int a[64];
int b[64];
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 64; i++) { a[i] = i; }
  #pragma psc parallel for
  for (i = 0; i < 64; i++) { b[i] = a[i]; }
  return 0;
}
)");
  OptionCount P = enumerateOptions(*M, AbstractionKind::PDG);
  OptionCount S = enumerateOptions(*M, AbstractionKind::PSPDG);
  EXPECT_EQ(P.Total, S.Total);
  EXPECT_EQ(S.DOALLLoops, 2u);
}

TEST(PlanEnumeratorTest, AblatedPSPDGLosesOptions) {
  auto M = compile(R"(
int buf[64];
int keys[256];
#pragma psc threadprivate(buf)
int main() {
  int i;
  #pragma psc for
  for (i = 0; i < 256; i++) { buf[keys[i]] += 1; }
  return 0;
}
)");
  OptionCount Full =
      enumerateOptions(*M, AbstractionKind::PSPDG, {}, nullptr,
                       FeatureSet::full());
  OptionCount NoPSV =
      enumerateOptions(*M, AbstractionKind::PSPDG, {}, nullptr,
                       FeatureSet::withoutParallelVariables());
  // With PSV the loop is DOALL; without it the threadprivate conflicts
  // survive and it is not.
  EXPECT_EQ(Full.DOALLLoops, 1u);
  EXPECT_EQ(NoPSV.DOALLLoops, 0u);
}

} // namespace
