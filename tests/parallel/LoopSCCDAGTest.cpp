//===- LoopSCCDAGTest.cpp - SCC decomposition for planning --------*- C++ -*-===//

#include "parallel/LoopSCCDAG.h"

#include <gtest/gtest.h>

using namespace psc;

namespace {

LoopPlanView makeView(unsigned NumInsts, std::vector<LoopDepEdge> Edges) {
  LoopPlanView V;
  V.Insts.assign(NumInsts, nullptr);
  V.Edges = std::move(Edges);
  V.TripCountable = true;
  return V;
}

TEST(LoopSCCDAGTest, NoEdgesAllParallelSingletons) {
  LoopSCCDAG DAG(makeView(4, {}));
  EXPECT_EQ(DAG.numSCCs(), 4u);
  EXPECT_EQ(DAG.numSequentialSCCs(), 0u);
  EXPECT_TRUE(DAG.allParallel());
}

TEST(LoopSCCDAGTest, IntraEdgesDoNotSequentialize) {
  LoopSCCDAG DAG(makeView(3, {{0, 1, false}, {1, 2, false}}));
  EXPECT_EQ(DAG.numSCCs(), 3u);
  EXPECT_TRUE(DAG.allParallel());
}

TEST(LoopSCCDAGTest, CarriedSelfEdgeIsSequential) {
  LoopSCCDAG DAG(makeView(2, {{0, 0, true}}));
  EXPECT_EQ(DAG.numSCCs(), 2u);
  EXPECT_EQ(DAG.numSequentialSCCs(), 1u);
  EXPECT_TRUE(DAG.isSequential(DAG.sccOf(0)));
  EXPECT_FALSE(DAG.isSequential(DAG.sccOf(1)));
}

TEST(LoopSCCDAGTest, CarriedCycleIsSequential) {
  // 0 -> 1 (intra), 1 -> 0 (carried): one sequential SCC of both.
  LoopSCCDAG DAG(makeView(2, {{0, 1, false}, {1, 0, true}}));
  EXPECT_EQ(DAG.numSCCs(), 1u);
  EXPECT_EQ(DAG.numSequentialSCCs(), 1u);
}

TEST(LoopSCCDAGTest, CarriedEdgeBetweenDifferentSCCsIsParallel) {
  // A carried edge that does not close a cycle does not serialize: the
  // dependence is satisfied by the pipeline order.
  LoopSCCDAG DAG(makeView(2, {{0, 1, true}}));
  EXPECT_EQ(DAG.numSCCs(), 2u);
  EXPECT_EQ(DAG.numSequentialSCCs(), 0u);
}

TEST(LoopSCCDAGTest, MixedSequentialAndParallel) {
  // {0,1} carried cycle; 2,3 independent.
  LoopSCCDAG DAG(
      makeView(4, {{0, 1, true}, {1, 0, false}, {2, 3, false}}));
  EXPECT_EQ(DAG.numSCCs(), 3u);
  EXPECT_EQ(DAG.numSequentialSCCs(), 1u);
  EXPECT_EQ(DAG.sccOf(0), DAG.sccOf(1));
  EXPECT_NE(DAG.sccOf(2), DAG.sccOf(3));
}

} // namespace
