//===- AffineExprTest.cpp - Affine subscript recovery ------------*- C++ -*-===//

#include "../TestUtil.h"
#include "analysis/AffineExpr.h"
#include "analysis/MemoryModel.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

/// Returns the affine subscript of the first store into \p ArrayName.
AffineExpr subscriptOfFirstStore(const Compiled &C,
                                 const std::string &ArrayName) {
  for (Instruction *I : C.FA->instructions()) {
    auto *SI = dyn_cast<StoreInst>(I);
    if (!SI)
      continue;
    auto *GEP = dyn_cast<GEPInst>(SI->getPointer());
    if (!GEP)
      continue;
    Value *Base = findUnderlyingObject(GEP->getBase());
    if (Base && Base->getName() == ArrayName)
      return buildAffineExpr(GEP->getIndex());
  }
  ADD_FAILURE() << "no store into " << ArrayName;
  return AffineExpr::invalid();
}

TEST(AffineExprTest, ConstantSubscript) {
  Compiled C = analyze("int a[8]; int main() { a[3] = 1; return 0; }");
  AffineExpr E = subscriptOfFirstStore(C, "a");
  EXPECT_TRUE(E.isConstant());
  EXPECT_EQ(E.Constant, 3);
}

TEST(AffineExprTest, LinearInIV) {
  Compiled C = analyze(R"(
int a[64];
int main() {
  int i;
  for (i = 0; i < 8; i++) { a[2 * i + 5] = 1; }
  return 0;
}
)");
  AffineExpr E = subscriptOfFirstStore(C, "a");
  ASSERT_TRUE(E.Valid);
  EXPECT_EQ(E.Constant, 5);
  ASSERT_EQ(E.Coeffs.size(), 1u);
  EXPECT_EQ(E.Coeffs.begin()->second, 2);
  EXPECT_EQ(E.Coeffs.begin()->first->getName(), "i");
}

TEST(AffineExprTest, TwoDimensionalFlattened) {
  Compiled C = analyze(R"(
int a[64];
int main() {
  int i;
  int j;
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) { a[i * 8 + j] = 1; }
  }
  return 0;
}
)");
  AffineExpr E = subscriptOfFirstStore(C, "a");
  ASSERT_TRUE(E.Valid);
  ASSERT_EQ(E.Coeffs.size(), 2u);
  long CI = 0, CJ = 0;
  for (auto &[Sym, Coeff] : E.Coeffs) {
    if (Sym->getName() == "i")
      CI = Coeff;
    if (Sym->getName() == "j")
      CJ = Coeff;
  }
  EXPECT_EQ(CI, 8);
  EXPECT_EQ(CJ, 1);
}

TEST(AffineExprTest, SubtractionAndNegation) {
  Compiled C = analyze(R"(
int a[64];
int main() {
  int i;
  for (i = 0; i < 8; i++) { a[32 - i] = 1; }
  return 0;
}
)");
  AffineExpr E = subscriptOfFirstStore(C, "a");
  ASSERT_TRUE(E.Valid);
  EXPECT_EQ(E.Constant, 32);
  EXPECT_EQ(E.Coeffs.begin()->second, -1);
}

TEST(AffineExprTest, ShiftAsMultiply) {
  Compiled C = analyze(R"(
int a[64];
int main() {
  int i;
  for (i = 0; i < 8; i++) { a[i << 2] = 1; }
  return 0;
}
)");
  AffineExpr E = subscriptOfFirstStore(C, "a");
  ASSERT_TRUE(E.Valid);
  EXPECT_EQ(E.Coeffs.begin()->second, 4);
}

TEST(AffineExprTest, IndirectSubscriptIsInvalid) {
  Compiled C = analyze(R"(
int a[64];
int idx[8];
int main() {
  int i;
  for (i = 0; i < 8; i++) { a[idx[i]] = 1; }
  return 0;
}
)");
  AffineExpr E = subscriptOfFirstStore(C, "a");
  EXPECT_FALSE(E.Valid);
}

TEST(AffineExprTest, NonLinearIsInvalid) {
  Compiled C = analyze(R"(
int a[64];
int main() {
  int i;
  for (i = 0; i < 8; i++) { a[i * i] = 1; }
  return 0;
}
)");
  AffineExpr E = subscriptOfFirstStore(C, "a");
  EXPECT_FALSE(E.Valid);
}

TEST(AffineExprTest, SymbolCancellationInDifference) {
  AffineExpr A = AffineExpr::constant(4);
  Module M("t");
  GlobalVariable *G = M.createGlobal("s", M.getTypes().getIntTy());
  AffineExpr S = AffineExpr::symbol(G);
  AffineExpr Sum = A + S;
  AffineExpr Diff = Sum - S;
  EXPECT_TRUE(Diff.isConstant());
  EXPECT_EQ(Diff.Constant, 4);
}

TEST(AffineExprTest, MultiplyRequiresConstantSide) {
  Module M("t");
  GlobalVariable *G = M.createGlobal("s", M.getTypes().getIntTy());
  AffineExpr S = AffineExpr::symbol(G);
  EXPECT_FALSE((S * S).Valid);
  AffineExpr R = S * AffineExpr::constant(3);
  EXPECT_TRUE(R.Valid);
  EXPECT_EQ(R.Coeffs.begin()->second, 3);
}

TEST(AffineExprTest, Rendering) {
  Module M("t");
  GlobalVariable *G = M.createGlobal("n", M.getTypes().getIntTy());
  AffineExpr E = AffineExpr::symbol(G) * AffineExpr::constant(2) +
                 AffineExpr::constant(7);
  EXPECT_EQ(E.str(), "2*n + 7");
  EXPECT_EQ(AffineExpr::invalid().str(), "<non-affine>");
}

} // namespace
