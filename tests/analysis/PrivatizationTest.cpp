//===- PrivatizationTest.cpp - Iteration-private scalar detection -*- C++ -*-===//

#include "../TestUtil.h"
#include "analysis/Privatization.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

bool isPrivate(const Compiled &C, const Loop *L, const std::string &Name) {
  std::set<const Value *> P = computeIterationPrivateScalars(*C.FA, *L);
  for (const Value *V : P)
    if (V->getName() == Name)
      return true;
  return false;
}

TEST(PrivatizationTest, WriteFirstTemporaryIsPrivate) {
  Compiled C = analyze(R"(
int a[8];
int b[8];
int main() {
  int i;
  int t;
  for (i = 0; i < 8; i++) {
    t = a[i] * 2;
    b[i] = t + 1;
  }
  return 0;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  EXPECT_TRUE(isPrivate(C, L, "t"));
}

TEST(PrivatizationTest, AccumulatorIsNotPrivate) {
  // s is read before written each iteration: the carried RAW is real.
  Compiled C = analyze(R"(
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 8; i++) { s = s + i; }
  return s;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  EXPECT_FALSE(isPrivate(C, L, "s"));
}

TEST(PrivatizationTest, LiveOutScalarIsNotPrivate) {
  Compiled C = analyze(R"(
int a[8];
int main() {
  int i;
  int t;
  t = 0;
  for (i = 0; i < 8; i++) { t = a[i]; }
  return t;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  EXPECT_FALSE(isPrivate(C, L, "t"));
}

TEST(PrivatizationTest, LoopCounterExcluded) {
  Compiled C = analyze(R"(
int a[8];
int main() {
  int i;
  for (i = 0; i < 8; i++) { a[i] = i; }
  return 0;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  EXPECT_FALSE(isPrivate(C, L, "i"));
}

TEST(PrivatizationTest, ConditionallyWrittenNotPrivate) {
  // t only written under a condition: a read may see the previous
  // iteration's value.
  Compiled C = analyze(R"(
int a[8];
int b[8];
int main() {
  int i;
  int t;
  t = 0;
  for (i = 0; i < 8; i++) {
    if (a[i] > 0) { t = a[i]; }
    b[i] = t;
  }
  return 0;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  EXPECT_FALSE(isPrivate(C, L, "t"));
}

TEST(PrivatizationTest, GlobalsAreNotAutoPrivatized) {
  Compiled C = analyze(R"(
int g;
int a[8];
int b[8];
int main() {
  int i;
  for (i = 0; i < 8; i++) {
    g = a[i];
    b[i] = g;
  }
  return 0;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  EXPECT_FALSE(isPrivate(C, L, "g"));
}

TEST(PrivatizationTest, WriteFirstInDominatingBlockWithBranches) {
  Compiled C = analyze(R"(
int a[8];
int b[8];
int main() {
  int i;
  int t;
  for (i = 0; i < 8; i++) {
    t = a[i];
    if (t > 3) { b[i] = t * 2; } else { b[i] = t; }
  }
  return 0;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  EXPECT_TRUE(isPrivate(C, L, "t"));
}

} // namespace
