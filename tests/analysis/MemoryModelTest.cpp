//===- MemoryModelTest.cpp - Access collection and aliasing ------*- C++ -*-===//

#include "../TestUtil.h"
#include "analysis/MemoryModel.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

TEST(MemoryModelTest, CollectsLoadsAndStores) {
  Compiled C = analyze(R"(
int a[8];
int main() {
  int x;
  x = a[1];
  a[2] = x;
  return x;
}
)");
  auto Accesses = collectMemAccesses(*C.F);
  unsigned Reads = 0, Writes = 0;
  for (const MemAccess &A : Accesses) {
    if (A.Kind == MemAccess::AccessKind::Read)
      ++Reads;
    if (A.Kind == MemAccess::AccessKind::Write)
      ++Writes;
  }
  EXPECT_GE(Reads, 2u);  // a[1], x
  EXPECT_GE(Writes, 2u); // x, a[2]
}

TEST(MemoryModelTest, MarkersAreSkipped) {
  Compiled C = analyze(R"(
int x;
int main() {
  #pragma psc critical
  { x = 1; }
  return x;
}
)");
  for (const MemAccess &A : collectMemAccesses(*C.F)) {
    if (auto *CI = dyn_cast<CallInst>(A.I)) {
      EXPECT_FALSE(
          Module::isMarkerIntrinsicName(CI->getCallee()->getName()));
    }
  }
}

TEST(MemoryModelTest, MathIntrinsicsPure) {
  Compiled C = analyze(R"(
int main() {
  double x;
  x = sqrt(2.0) + sin(1.0);
  return x;
}
)");
  for (const MemAccess &A : collectMemAccesses(*C.F))
    EXPECT_FALSE(isa<CallInst>(A.I)); // only the x store/loads
}

TEST(MemoryModelTest, PrintIsIO) {
  Compiled C = analyze("int main() { print(3); return 0; }");
  bool FoundIO = false;
  for (const MemAccess &A : collectMemAccesses(*C.F))
    if (A.IsIO)
      FoundIO = true;
  EXPECT_TRUE(FoundIO);
}

TEST(MemoryModelTest, UnderlyingObjectThroughGEP) {
  Compiled C = analyze(R"(
int a[8];
int main() {
  a[3] = 1;
  return 0;
}
)");
  for (const MemAccess &A : collectMemAccesses(*C.F))
    if (A.isWrite() && !A.IsScalar) {
      ASSERT_NE(A.Base, nullptr);
      EXPECT_EQ(A.Base->getName(), "a");
      EXPECT_TRUE(A.Subscript.isConstant());
    }
}

TEST(MemoryModelTest, AliasRules) {
  Module M("t");
  GlobalVariable *G1 =
      M.createGlobal("g1", M.getTypes().getArrayTy(M.getTypes().getIntTy(), 4));
  GlobalVariable *G2 =
      M.createGlobal("g2", M.getTypes().getArrayTy(M.getTypes().getIntTy(), 4));
  Function *F = M.createFunction(
      "f", M.getTypes().getVoidTy(),
      {M.getTypes().getPointerTy(M.getTypes().getIntTy()),
       M.getTypes().getPointerTy(M.getTypes().getIntTy())},
      {"p", "q"});
  Argument *P = F->getArg(0), *Q = F->getArg(1);

  EXPECT_EQ(aliasBases(G1, G2), AliasResult::NoAlias);
  EXPECT_EQ(aliasBases(G1, G1), AliasResult::MayAlias);
  EXPECT_EQ(aliasBases(P, Q), AliasResult::NoAlias); // restrict arrays
  EXPECT_EQ(aliasBases(P, G1), AliasResult::MayAlias); // caller may pass g1
  EXPECT_EQ(aliasBases(nullptr, G1), AliasResult::MayAlias); // opaque
}

TEST(MemoryModelTest, ArrayParamAccesses) {
  Compiled C = analyze(R"(
int f(int a[]) { return a[2]; }
int g[8];
int main() { return f(g); }
)", "f");
  bool Found = false;
  for (const MemAccess &A : collectMemAccesses(*C.F))
    if (A.Base && isa<Argument>(A.Base))
      Found = true;
  EXPECT_TRUE(Found);
}

} // namespace
