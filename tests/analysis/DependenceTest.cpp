//===- DependenceTest.cpp - Memory/control dependence analysis ----*- C++ -*-===//

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

/// Counts memory edges on a given object carried at \p L.
unsigned carriedMemDeps(const Compiled &C, const Loop *L,
                        const std::string &ObjName) {
  unsigned N = 0;
  for (const DepEdge &E : C.DI->edges()) {
    if (!E.isMemory() || !E.isCarriedAt(L->getHeader()))
      continue;
    if (ObjName.empty() ||
        (E.MemObject && E.MemObject->getName() == ObjName))
      ++N;
  }
  return N;
}

TEST(DependenceTest, IndependentIterationsHaveNoCarriedArrayDeps) {
  Compiled C = analyze(R"(
int a[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) { a[i] = i; }
  return 0;
}
)");
  ASSERT_TRUE(C.DI);
  const Loop *L = loopAt(*C.FA, 0);
  EXPECT_EQ(carriedMemDeps(C, L, "a"), 0u);
}

TEST(DependenceTest, Distance1RecurrenceIsCarried) {
  Compiled C = analyze(R"(
int a[64];
int main() {
  int i;
  for (i = 1; i < 64; i++) { a[i] = a[i - 1] + 1; }
  return 0;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  EXPECT_GT(carriedMemDeps(C, L, "a"), 0u);
}

TEST(DependenceTest, StrideTwoDisjointAccesses) {
  // Writes to even elements, reads odd: no dependence.
  Compiled C = analyze(R"(
int a[64];
int main() {
  int i;
  for (i = 0; i < 30; i++) { a[2 * i] = a[2 * i + 1]; }
  return 0;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  EXPECT_EQ(carriedMemDeps(C, L, "a"), 0u);
}

TEST(DependenceTest, OffsetBeyondRangeNotCarried) {
  // a[i] vs a[i+100] with only 50 iterations: distance exceeds trip count.
  Compiled C = analyze(R"(
int a[256];
int main() {
  int i;
  for (i = 0; i < 50; i++) { a[i] = a[i + 100]; }
  return 0;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  EXPECT_EQ(carriedMemDeps(C, L, "a"), 0u);
}

TEST(DependenceTest, OffsetWithinRangeCarried) {
  Compiled C = analyze(R"(
int a[256];
int main() {
  int i;
  for (i = 0; i < 50; i++) { a[i] = a[i + 30]; }
  return 0;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  EXPECT_GT(carriedMemDeps(C, L, "a"), 0u);
}

TEST(DependenceTest, ScalarAccumulatorCarried) {
  Compiled C = analyze(R"(
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 8; i++) { s += i; }
  return s;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  EXPECT_GT(carriedMemDeps(C, L, "s"), 0u);
}

TEST(DependenceTest, DistinctArraysNeverConflict) {
  Compiled C = analyze(R"(
int a[64];
int b[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) { a[i] = b[i]; }
  return 0;
}
)");
  for (const DepEdge &E : C.DI->edges())
    if (E.isMemory() && E.MemObject) {
      EXPECT_NE(E.MemObject->getName(), "b"); // reads of b conflict with nothing
    }
}

TEST(DependenceTest, OuterCarriedInnerIndependent) {
  // buf[i*8+j] = buf[(i-1)*8+j]: carried at i, not at j.
  Compiled C = analyze(R"(
int buf[64];
int main() {
  int i;
  int j;
  for (i = 1; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      buf[i * 8 + j] = buf[(i - 1) * 8 + j] + 1;
    }
  }
  return 0;
}
)");
  const Loop *Outer = loopAt(*C.FA, 0);
  const Loop *Inner = loopAt(*C.FA, 1);
  ASSERT_EQ(Inner->getDepth(), 2u);
  EXPECT_GT(carriedMemDeps(C, Outer, "buf"), 0u);
  EXPECT_EQ(carriedMemDeps(C, Inner, "buf"), 0u);
}

TEST(DependenceTest, InnerCarriedOuterIndependent) {
  // Row-local recurrence: carried at j, not at i.
  Compiled C = analyze(R"(
int buf[64];
int main() {
  int i;
  int j;
  for (i = 0; i < 8; i++) {
    for (j = 1; j < 8; j++) {
      buf[i * 8 + j] = buf[i * 8 + j - 1] + 1;
    }
  }
  return 0;
}
)");
  const Loop *Outer = loopAt(*C.FA, 0);
  const Loop *Inner = loopAt(*C.FA, 1);
  EXPECT_EQ(carriedMemDeps(C, Outer, "buf"), 0u);
  EXPECT_GT(carriedMemDeps(C, Inner, "buf"), 0u);
}

TEST(DependenceTest, IndirectSubscriptConservative) {
  Compiled C = analyze(R"(
int a[64];
int idx[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) { a[idx[i]] += 1; }
  return 0;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  EXPECT_GT(carriedMemDeps(C, L, "a"), 0u);
}

TEST(DependenceTest, IVDepsAreFlagged) {
  Compiled C = analyze(R"(
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 8; i++) { s += 1; }
  return s;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  bool SawIVDep = false;
  for (const DepEdge &E : C.DI->edges())
    if (E.isMemory() && E.isCarriedAt(L->getHeader()) && E.IsIVDep)
      SawIVDep = true;
  EXPECT_TRUE(SawIVDep);
}

TEST(DependenceTest, RegisterDepsLinkDefToUse) {
  Compiled C = analyze("int main() { int x; x = 1 + 2; return x; }");
  bool Found = false;
  for (const DepEdge &E : C.DI->edges())
    if (E.Kind == DepKind::Register && isa<BinaryInst>(E.Src) &&
        isa<StoreInst>(E.Dst))
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(DependenceTest, ControlDepsFromBranches) {
  Compiled C = analyze(R"(
int main() {
  int x;
  x = 1;
  if (x > 0) { x = 2; }
  return x;
}
)");
  bool Found = false;
  for (const DepEdge &E : C.DI->edges())
    if (E.Kind == DepKind::Control && isa<CondBranchInst>(E.Src))
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(DependenceTest, PrintsAreOrdered) {
  Compiled C = analyze(R"(
int main() {
  print(1);
  print(2);
  return 0;
}
)");
  bool Found = false;
  for (const DepEdge &E : C.DI->edges())
    if (E.IsIO)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(DependenceTest, CallsToDefinedFunctionsAreOpaque) {
  Compiled C = analyze(R"(
int g;
void bump() { g += 1; }
int main() {
  int i;
  for (i = 0; i < 4; i++) { bump(); }
  return g;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  bool CarriedOpaque = false;
  for (const DepEdge &E : C.DI->edges())
    if (E.isMemory() && !E.MemObject && E.isCarriedAt(L->getHeader()))
      CarriedOpaque = true;
  EXPECT_TRUE(CarriedOpaque);
}

TEST(DependenceTest, WAWBetweenWritesSameCell) {
  Compiled C = analyze(R"(
int a[8];
int main() {
  int i;
  for (i = 0; i < 8; i++) { a[0] = i; }
  return a[0];
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  bool FoundWAW = false;
  for (const DepEdge &E : C.DI->edges())
    if (E.Kind == DepKind::MemoryWAW && E.isCarriedAt(L->getHeader()))
      FoundWAW = true;
  EXPECT_TRUE(FoundWAW);
}

// Parameterized sweep: the classic strong-SIV distance test. Writing
// a[i] and reading a[i+D] over N iterations is carried iff 0 < |D| < N.
struct SIVCase {
  int Distance;
  int Trip;
  bool Carried;
};

class StrongSIVTest : public ::testing::TestWithParam<SIVCase> {};

TEST_P(StrongSIVTest, DistanceWithinTripCount) {
  SIVCase P = GetParam();
  std::string Src = "int a[4096];\nint main() {\n  int i;\n  for (i = 0; i < " +
                    std::to_string(P.Trip) + "; i++) { a[i] = a[i + " +
                    std::to_string(P.Distance) + "]; }\n  return 0;\n}\n";
  Compiled C = analyze(Src);
  const Loop *L = loopAt(*C.FA, 0);
  EXPECT_EQ(carriedMemDeps(C, L, "a") > 0, P.Carried)
      << "distance " << P.Distance << " trip " << P.Trip;
}

INSTANTIATE_TEST_SUITE_P(
    Distances, StrongSIVTest,
    ::testing::Values(SIVCase{0, 64, false},   // same cell each iter: no RAW
                      SIVCase{1, 64, true},    // classic recurrence
                      SIVCase{63, 64, true},   // just inside range
                      SIVCase{64, 64, false},  // exactly trip: out of range
                      SIVCase{100, 64, false}, // far out of range
                      SIVCase{5, 6, true},     // small loop, in range
                      SIVCase{5, 5, false}));  // small loop, out of range

} // namespace
