//===- DominatorsTest.cpp - Dominator/post-dominator analyses ----*- C++ -*-===//

#include "ir/Dominators.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace psc;

namespace {

/// Diamond CFG: entry -> {a, b} -> merge -> ret.
struct Diamond {
  Module M{"t"};
  Function *F;
  BasicBlock *Entry, *A, *B, *Merge;

  Diamond() {
    F = M.createFunction("f", M.getTypes().getVoidTy(), {}, {});
    Entry = F->createBlock("entry");
    A = F->createBlock("a");
    B = F->createBlock("b");
    Merge = F->createBlock("merge");
    IRBuilder Bld(M);
    Bld.setInsertPoint(Entry);
    Bld.createCondBr(M.getConstantInt(1), A, B);
    Bld.setInsertPoint(A);
    Bld.createBr(Merge);
    Bld.setInsertPoint(B);
    Bld.createBr(Merge);
    Bld.setInsertPoint(Merge);
    Bld.createRetVoid();
  }
};

TEST(DominatorsTest, DiamondDominance) {
  Diamond D;
  CFG G(*D.F);
  DominatorTree DT(G, /*Post=*/false);

  unsigned E = D.Entry->getIndex(), A = D.A->getIndex(),
           M = D.Merge->getIndex();
  EXPECT_TRUE(DT.dominates(E, A));
  EXPECT_TRUE(DT.dominates(E, M));
  EXPECT_FALSE(DT.dominates(A, M)); // merge reachable through b too
  EXPECT_TRUE(DT.dominates(M, M));  // reflexive
  EXPECT_EQ(DT.getIDom(A), E);
  EXPECT_EQ(DT.getIDom(M), E);
  EXPECT_EQ(DT.getIDom(E), DominatorTree::None);
}

TEST(DominatorsTest, DiamondPostDominance) {
  Diamond D;
  CFG G(*D.F);
  DominatorTree PDT(G, /*Post=*/true);

  unsigned E = D.Entry->getIndex(), A = D.A->getIndex(),
           M = D.Merge->getIndex();
  EXPECT_TRUE(PDT.dominates(M, E)); // merge post-dominates entry
  EXPECT_TRUE(PDT.dominates(M, A));
  EXPECT_FALSE(PDT.dominates(A, E));
  EXPECT_EQ(PDT.getVirtualExit(), G.size());
}

TEST(DominatorsTest, PostDominanceFrontierGivesControlDeps) {
  Diamond D;
  CFG G(*D.F);
  DominatorTree PDT(G, /*Post=*/true);
  // a and b are control-dependent on entry (the branch).
  const auto &Frontiers = PDT.frontiers();
  unsigned E = D.Entry->getIndex();
  EXPECT_EQ(Frontiers[D.A->getIndex()], std::vector<unsigned>{E});
  EXPECT_EQ(Frontiers[D.B->getIndex()], std::vector<unsigned>{E});
  // merge executes unconditionally: no control dependence.
  EXPECT_TRUE(Frontiers[D.Merge->getIndex()].empty());
}

TEST(DominatorsTest, LoopHeaderControlDependsOnItself) {
  // entry -> header; header -> {body, exit}; body -> header.
  Module M("t");
  Function *F = M.createFunction("f", M.getTypes().getVoidTy(), {}, {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.createBr(Header);
  B.setInsertPoint(Header);
  B.createCondBr(M.getConstantInt(1), Body, Exit);
  B.setInsertPoint(Body);
  B.createBr(Header);
  B.setInsertPoint(Exit);
  B.createRetVoid();

  CFG G(*F);
  DominatorTree PDT(G, /*Post=*/true);
  const auto &Fr = PDT.frontiers();
  unsigned H = Header->getIndex();
  // The classic result: loop body (and header) are control-dependent on
  // the header's branch.
  EXPECT_NE(std::find(Fr[Body->getIndex()].begin(), Fr[Body->getIndex()].end(),
                      H),
            Fr[Body->getIndex()].end());
  EXPECT_NE(std::find(Fr[H].begin(), Fr[H].end(), H), Fr[H].end());
}

TEST(DominatorsTest, MultipleExitsHandled) {
  // entry -> {r1, r2}: two returns; post-dominance via virtual exit.
  Module M("t");
  Function *F = M.createFunction("f", M.getTypes().getVoidTy(), {}, {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *R1 = F->createBlock("r1");
  BasicBlock *R2 = F->createBlock("r2");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.createCondBr(M.getConstantInt(0), R1, R2);
  B.setInsertPoint(R1);
  B.createRetVoid();
  B.setInsertPoint(R2);
  B.createRetVoid();

  CFG G(*F);
  DominatorTree PDT(G, /*Post=*/true);
  // Neither return post-dominates entry; the virtual exit does.
  EXPECT_FALSE(PDT.dominates(R1->getIndex(), Entry->getIndex()));
  EXPECT_FALSE(PDT.dominates(R2->getIndex(), Entry->getIndex()));
  EXPECT_TRUE(PDT.dominates(PDT.getVirtualExit(), Entry->getIndex()));
}

TEST(DominatorsTest, CFGReversePostOrderStartsAtEntry) {
  Diamond D;
  CFG G(*D.F);
  ASSERT_FALSE(G.reversePostOrder().empty());
  EXPECT_EQ(G.reversePostOrder().front(), D.Entry->getIndex());
  EXPECT_EQ(G.reversePostOrder().back(), D.Merge->getIndex());
}

TEST(DominatorsTest, UnreachableBlockExcluded) {
  Module M("t");
  Function *F = M.createFunction("f", M.getTypes().getVoidTy(), {}, {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Dead = F->createBlock("dead");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.createRetVoid();
  B.setInsertPoint(Dead);
  B.createRetVoid();
  CFG G(*F);
  EXPECT_TRUE(G.isReachable(Entry->getIndex()));
  EXPECT_FALSE(G.isReachable(Dead->getIndex()));
  EXPECT_EQ(G.reversePostOrder().size(), 1u);
}

} // namespace
