//===- IRBuilderTest.cpp - IR construction and verification ------*- C++ -*-===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace psc;

namespace {

/// Builds: define i64 @f() { entry: %x = alloca i64; store 1, %x;
///                          %v = load %x; ret %v }
TEST(IRBuilderTest, BuildSimpleFunction) {
  Module M("t");
  Function *F = M.createFunction("f", M.getTypes().getIntTy(), {}, {});
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(Entry);

  AllocaInst *X = B.createAlloca(M.getTypes().getIntTy(), "x");
  B.createStore(M.getConstantInt(1), X);
  LoadInst *V = B.createLoad(X);
  B.createRet(V);

  EXPECT_TRUE(isModuleValid(M));
  EXPECT_EQ(F->getInstructionCount(), 4u);
  EXPECT_EQ(Entry->getTerminator()->getKind(), Value::ValueKind::Ret);
}

TEST(IRBuilderTest, ValueIdsAreUniqueAndIncreasing) {
  Module M("t");
  Function *F = M.createFunction("f", M.getTypes().getVoidTy(), {}, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  Instruction *A = B.createAlloca(M.getTypes().getIntTy(), "a");
  Instruction *C = B.createAlloca(M.getTypes().getIntTy(), "b");
  B.createRetVoid();
  EXPECT_LT(A->getId(), C->getId());
}

TEST(IRBuilderTest, ConstantsAreUniqued) {
  Module M("t");
  EXPECT_EQ(M.getConstantInt(42), M.getConstantInt(42));
  EXPECT_NE(M.getConstantInt(42), M.getConstantInt(43));
  EXPECT_EQ(M.getConstantFloat(1.5), M.getConstantFloat(1.5));
}

TEST(IRBuilderTest, GlobalPointerType) {
  Module M("t");
  GlobalVariable *G =
      M.createGlobal("g", M.getTypes().getArrayTy(M.getTypes().getFloatTy(), 8));
  ASSERT_TRUE(G->getType()->isPointer());
  EXPECT_EQ(cast<PointerType>(G->getType())->getPointee(),
            M.getTypes().getFloatTy());
}

TEST(IRBuilderTest, GEPProducesElementPointer) {
  Module M("t");
  Function *F = M.createFunction("f", M.getTypes().getVoidTy(), {}, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  GlobalVariable *G =
      M.createGlobal("g", M.getTypes().getArrayTy(M.getTypes().getIntTy(), 8));
  GEPInst *GEP = B.createGEP(G, M.getConstantInt(3));
  B.createRetVoid();
  EXPECT_TRUE(GEP->getType()->isPointer());
  EXPECT_EQ(GEP->getBase(), G);
}

TEST(IRBuilderTest, VerifierCatchesMissingTerminator) {
  Module M("t");
  Function *F = M.createFunction("f", M.getTypes().getVoidTy(), {}, {});
  F->createBlock("entry"); // left unterminated
  std::vector<std::string> Errors = verifyModule(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("no terminator"), std::string::npos);
}

TEST(IRBuilderTest, VerifierCatchesStoreTypeMismatch) {
  Module M("t");
  Function *F = M.createFunction("f", M.getTypes().getVoidTy(), {}, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *X = B.createAlloca(M.getTypes().getIntTy(), "x");
  B.createStore(M.getConstantFloat(1.0), X); // f64 into i64 slot
  B.createRetVoid();
  std::vector<std::string> Errors = verifyModule(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("mismatch"), std::string::npos);
}

TEST(IRBuilderTest, VerifierCatchesCallArityMismatch) {
  Module M("t");
  Function *Callee =
      M.createFunction("callee", M.getTypes().getVoidTy(),
                       {M.getTypes().getIntTy()}, {"a"});
  Function *F = M.createFunction("f", M.getTypes().getVoidTy(), {}, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createCall(Callee, {});
  B.createRetVoid();
  std::vector<std::string> Errors = verifyModule(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("arity"), std::string::npos);
}

TEST(IRBuilderTest, IntrinsicDeclarations) {
  Module M("t");
  Function *Sqrt = M.getOrCreateIntrinsic(intrinsics::Sqrt);
  EXPECT_TRUE(Sqrt->isDeclaration());
  EXPECT_EQ(Sqrt->getReturnType(), M.getTypes().getFloatTy());
  EXPECT_EQ(Sqrt, M.getOrCreateIntrinsic(intrinsics::Sqrt)); // cached
  EXPECT_TRUE(Module::isIntrinsicName(intrinsics::Lcg));
  EXPECT_FALSE(Module::isIntrinsicName("nonsense"));
  EXPECT_TRUE(Module::isMarkerIntrinsicName(intrinsics::RegionBegin));
  EXPECT_FALSE(Module::isMarkerIntrinsicName(intrinsics::Print));
}

TEST(IRBuilderTest, SuccessorsOfTerminators) {
  Module M("t");
  Function *F = M.createFunction("f", M.getTypes().getVoidTy(), {}, {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *Bb = F->createBlock("b");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.createCondBr(M.getConstantInt(1), A, Bb);
  B.setInsertPoint(A);
  B.createBr(Bb);
  B.setInsertPoint(Bb);
  B.createRetVoid();

  auto EntrySuccs = Entry->successors();
  ASSERT_EQ(EntrySuccs.size(), 2u);
  EXPECT_EQ(EntrySuccs[0], A);
  EXPECT_EQ(EntrySuccs[1], Bb);
  EXPECT_EQ(A->successors().size(), 1u);
  EXPECT_TRUE(Bb->successors().empty());
}

TEST(IRBuilderTest, ModulePrinting) {
  Module M("demo");
  Function *F = M.createFunction("f", M.getTypes().getIntTy(), {}, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet(M.getConstantInt(5));
  std::string S = M.str();
  EXPECT_NE(S.find("define i64 @f()"), std::string::npos);
  EXPECT_NE(S.find("ret 5"), std::string::npos);
}

} // namespace
