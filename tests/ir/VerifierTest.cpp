//===- VerifierTest.cpp - IR well-formedness violations -----------*- C++ -*-===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace psc;

namespace {

bool anyErrorContains(const std::vector<std::string> &Errors,
                      const std::string &Needle) {
  for (const std::string &E : Errors)
    if (E.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(VerifierTest, EmptyModuleIsValid) {
  Module M("t");
  EXPECT_TRUE(isModuleValid(M));
}

TEST(VerifierTest, DeclarationsNeedNoBody) {
  Module M("t");
  M.getOrCreateIntrinsic(intrinsics::Sqrt);
  EXPECT_TRUE(isModuleValid(M));
}

TEST(VerifierTest, LoadFromNonPointer) {
  Module M("t");
  Function *F = M.createFunction("f", M.getTypes().getVoidTy(), {}, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  // Hand-construct an invalid load whose pointer is an i64 constant.
  auto Bad = std::make_unique<LoadInst>(M.getTypes().getIntTy(),
                                        M.getConstantInt(3));
  Bad->setId(M.takeNextValueId());
  F->getEntryBlock()->append(std::move(Bad));
  B.createRetVoid();
  EXPECT_TRUE(anyErrorContains(verifyModule(M), "non-pointer"));
}

TEST(VerifierTest, GEPIndexMustBeInt) {
  Module M("t");
  Function *F = M.createFunction("f", M.getTypes().getVoidTy(), {}, {});
  GlobalVariable *G =
      M.createGlobal("g", M.getTypes().getArrayTy(M.getTypes().getIntTy(), 4));
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  auto Bad = std::make_unique<GEPInst>(
      cast<PointerType>(G->getType()), G, M.getConstantFloat(1.5));
  Bad->setId(M.takeNextValueId());
  F->getEntryBlock()->append(std::move(Bad));
  B.createRetVoid();
  EXPECT_TRUE(anyErrorContains(verifyModule(M), "index"));
}

TEST(VerifierTest, BinaryOperandTypeMismatch) {
  Module M("t");
  Function *F = M.createFunction("f", M.getTypes().getVoidTy(), {}, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  auto Bad = std::make_unique<BinaryInst>(M.getTypes().getIntTy(),
                                          BinaryInst::BinOp::Add,
                                          M.getConstantInt(1),
                                          M.getConstantFloat(2.0));
  Bad->setId(M.takeNextValueId());
  F->getEntryBlock()->append(std::move(Bad));
  B.createRetVoid();
  EXPECT_TRUE(anyErrorContains(verifyModule(M), "type mismatch"));
}

TEST(VerifierTest, ReturnTypeMismatch) {
  Module M("t");
  Function *F = M.createFunction("f", M.getTypes().getIntTy(), {}, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet(M.getConstantFloat(1.0));
  EXPECT_TRUE(anyErrorContains(verifyModule(M), "return type mismatch"));
}

TEST(VerifierTest, MissingReturnValue) {
  Module M("t");
  Function *F = M.createFunction("f", M.getTypes().getIntTy(), {}, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRetVoid();
  EXPECT_TRUE(anyErrorContains(verifyModule(M), "missing return value"));
}

TEST(VerifierTest, CrossFunctionOperandRejected) {
  Module M("t");
  Function *F1 = M.createFunction("f1", M.getTypes().getIntTy(), {}, {});
  Function *F2 = M.createFunction("f2", M.getTypes().getIntTy(), {}, {});
  IRBuilder B(M);
  B.setInsertPoint(F1->createBlock("entry"));
  AllocaInst *ForeignSlot = B.createAlloca(M.getTypes().getIntTy(), "x");
  B.createStore(M.getConstantInt(1), ForeignSlot);
  LoadInst *Foreign = B.createLoad(ForeignSlot);
  B.createRet(Foreign);

  B.setInsertPoint(F2->createBlock("entry"));
  B.createRet(Foreign); // instruction from f1 used in f2
  EXPECT_TRUE(
      anyErrorContains(verifyModule(M), "does not belong to the function"));
}

TEST(VerifierTest, TerminatorInMiddleRejected) {
  Module M("t");
  Function *F = M.createFunction("f", M.getTypes().getVoidTy(), {}, {});
  BasicBlock *Entry = F->createBlock("entry");
  // Bypass IRBuilder/append guards by hand-constructing the sequence.
  auto Ret = std::make_unique<ReturnInst>(M.getTypes().getVoidTy());
  Ret->setId(M.takeNextValueId());
  Entry->append(std::move(Ret));
  // append() refuses instructions after a terminator, which is itself the
  // invariant; verify the checked variant reports unterminated blocks too.
  Function *G = M.createFunction("g", M.getTypes().getVoidTy(), {}, {});
  G->createBlock("entry");
  EXPECT_TRUE(anyErrorContains(verifyModule(M), "no terminator"));
}

TEST(VerifierTest, DirectiveWithUnresolvedClause) {
  Module M("t");
  Function *F = M.createFunction("f", M.getTypes().getVoidTy(), {}, {});
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRetVoid();

  Directive D;
  D.Kind = DirectiveKind::ParallelFor;
  D.LoopHeader = F->getEntryBlock();
  D.Privates.push_back({"ghost", nullptr}); // unresolved storage
  M.getParallelInfo().addDirective(std::move(D));
  EXPECT_TRUE(anyErrorContains(verifyModule(M), "unresolved private"));
}

TEST(VerifierTest, LoopDirectiveWithoutHeader) {
  Module M("t");
  Directive D;
  D.Kind = DirectiveKind::For;
  M.getParallelInfo().addDirective(std::move(D));
  EXPECT_TRUE(anyErrorContains(verifyModule(M), "without a loop header"));
}

TEST(VerifierTest, CustomReductionNeedsReducer) {
  Module M("t");
  GlobalVariable *G = M.createGlobal("x", M.getTypes().getFloatTy());
  Directive D;
  D.Kind = DirectiveKind::Parallel;
  ReductionClause R;
  R.Var = {"x", G};
  R.Op = ReduceOp::Custom;
  R.CustomReducer = nullptr;
  D.Reductions.push_back(R);
  M.getParallelInfo().addDirective(std::move(D));
  EXPECT_TRUE(anyErrorContains(verifyModule(M), "without reducer"));
}

} // namespace
