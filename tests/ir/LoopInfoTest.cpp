//===- LoopInfoTest.cpp - Natural-loop detection via the frontend -*- C++ -*-===//

#include "../TestUtil.h"
#include "ir/LoopInfo.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

TEST(LoopInfoTest, SingleLoopDetected) {
  Compiled C = analyze(R"(
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 10; i++) { s += i; }
  return s;
}
)");
  ASSERT_TRUE(C.FA);
  ASSERT_EQ(C.FA->loopInfo().loops().size(), 1u);
  const Loop *L = C.FA->loopInfo().loops()[0];
  EXPECT_EQ(L->getDepth(), 1u);
  EXPECT_EQ(L->getParent(), nullptr);
  EXPECT_EQ(L->latches().size(), 1u);
}

TEST(LoopInfoTest, NestedLoopsHaveCorrectDepths) {
  Compiled C = analyze(R"(
int g[64];
int main() {
  int i;
  int j;
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      g[i * 8 + j] = i + j;
    }
  }
  return 0;
}
)");
  ASSERT_TRUE(C.FA);
  const auto &Loops = C.FA->loopInfo().loops();
  ASSERT_EQ(Loops.size(), 2u);
  EXPECT_EQ(Loops[0]->getDepth(), 1u);
  EXPECT_EQ(Loops[1]->getDepth(), 2u);
  EXPECT_EQ(Loops[1]->getParent(), Loops[0]);
  EXPECT_TRUE(Loops[0]->encloses(Loops[1]));
  EXPECT_FALSE(Loops[1]->encloses(Loops[0]));
  ASSERT_EQ(C.FA->loopInfo().topLevelLoops().size(), 1u);
}

TEST(LoopInfoTest, SiblingLoops) {
  Compiled C = analyze(R"(
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 4; i++) { s += 1; }
  for (i = 0; i < 4; i++) { s += 2; }
  return s;
}
)");
  ASSERT_TRUE(C.FA);
  const auto &Loops = C.FA->loopInfo().loops();
  ASSERT_EQ(Loops.size(), 2u);
  EXPECT_EQ(Loops[0]->getDepth(), 1u);
  EXPECT_EQ(Loops[1]->getDepth(), 1u);
  EXPECT_EQ(C.FA->loopInfo().topLevelLoops().size(), 2u);
}

TEST(LoopInfoTest, WhileLoopDetected) {
  Compiled C = analyze(R"(
int main() {
  int n;
  n = 100;
  while (n > 1) {
    n = n / 2;
  }
  return n;
}
)");
  ASSERT_TRUE(C.FA);
  ASSERT_EQ(C.FA->loopInfo().loops().size(), 1u);
}

TEST(LoopInfoTest, LoopForBlockLookup) {
  Compiled C = analyze(R"(
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 4; i++) { s += 1; }
  return s;
}
)");
  ASSERT_TRUE(C.FA);
  const Loop *L = C.FA->loopInfo().loops()[0];
  for (unsigned B : L->blocks())
    EXPECT_EQ(C.FA->loopInfo().getLoopFor(B), L);
  EXPECT_EQ(C.FA->loopInfo().getLoopFor(0), nullptr); // entry block
  EXPECT_EQ(C.FA->loopInfo().getLoopByHeader(L->getHeader()), L);
}

TEST(LoopInfoTest, ForLoopMetaRecorded) {
  Compiled C = analyze(R"(
int main() {
  int i;
  int s;
  s = 0;
  for (i = 2; i < 20; i += 3) { s += i; }
  return s;
}
)");
  ASSERT_TRUE(C.FA);
  const Loop *L = C.FA->loopInfo().loops()[0];
  const ForLoopMeta *Meta = C.FA->forMeta(L);
  ASSERT_NE(Meta, nullptr);
  EXPECT_TRUE(Meta->Canonical);
  EXPECT_EQ(Meta->Step, 3);
  EXPECT_EQ(Meta->tripCount(), 6); // 2,5,8,11,14,17
  long Min = 0, Max = 0;
  ASSERT_TRUE(Meta->ivRange(Min, Max));
  EXPECT_EQ(Min, 2);
  EXPECT_EQ(Max, 17);
}

TEST(LoopInfoTest, DownwardCountingTripCount) {
  Compiled C = analyze(R"(
int main() {
  int i;
  int s;
  s = 0;
  for (i = 10; i >= 1; i--) { s += i; }
  return s;
}
)");
  ASSERT_TRUE(C.FA);
  const ForLoopMeta *Meta = C.FA->forMeta(C.FA->loopInfo().loops()[0]);
  ASSERT_NE(Meta, nullptr);
  EXPECT_EQ(Meta->Step, -1);
  EXPECT_EQ(Meta->tripCount(), 10);
}

TEST(LoopInfoTest, NonConstantBoundHasUnknownTrip) {
  Compiled C = analyze(R"(
int main(int n) { return 0; }
int helper(int n) {
  int i;
  int s;
  s = 0;
  for (i = 0; i < n; i++) { s += i; }
  return s;
}
)", "helper");
  ASSERT_TRUE(C.FA);
  const ForLoopMeta *Meta = C.FA->forMeta(C.FA->loopInfo().loops()[0]);
  ASSERT_NE(Meta, nullptr);
  EXPECT_TRUE(Meta->Canonical); // constant step
  EXPECT_EQ(Meta->tripCount(), -1);
}

} // namespace
