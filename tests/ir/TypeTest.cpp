//===- TypeTest.cpp - Type uniquing and rendering ----------------*- C++ -*-===//

#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace psc;

namespace {

TEST(TypeTest, ScalarSingletons) {
  TypeContext TC;
  EXPECT_EQ(TC.getIntTy(), TC.getIntTy());
  EXPECT_EQ(TC.getFloatTy(), TC.getFloatTy());
  EXPECT_NE(TC.getIntTy(), TC.getFloatTy());
}

TEST(TypeTest, PointerUniquing) {
  TypeContext TC;
  PointerType *A = TC.getPointerTy(TC.getIntTy());
  PointerType *B = TC.getPointerTy(TC.getIntTy());
  PointerType *C = TC.getPointerTy(TC.getFloatTy());
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(A->getPointee(), TC.getIntTy());
}

TEST(TypeTest, ArrayUniquing) {
  TypeContext TC;
  ArrayType *A = TC.getArrayTy(TC.getFloatTy(), 16);
  ArrayType *B = TC.getArrayTy(TC.getFloatTy(), 16);
  ArrayType *C = TC.getArrayTy(TC.getFloatTy(), 32);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(A->getNumElements(), 16u);
}

TEST(TypeTest, FunctionUniquing) {
  TypeContext TC;
  FunctionType *A = TC.getFunctionTy(TC.getVoidTy(), {TC.getIntTy()});
  FunctionType *B = TC.getFunctionTy(TC.getVoidTy(), {TC.getIntTy()});
  FunctionType *C = TC.getFunctionTy(TC.getIntTy(), {TC.getIntTy()});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
}

TEST(TypeTest, Predicates) {
  TypeContext TC;
  EXPECT_TRUE(TC.getIntTy()->isScalar());
  EXPECT_TRUE(TC.getFloatTy()->isScalar());
  EXPECT_FALSE(TC.getVoidTy()->isScalar());
  EXPECT_TRUE(TC.getPointerTy(TC.getIntTy())->isPointer());
  EXPECT_TRUE(TC.getArrayTy(TC.getIntTy(), 4)->isArray());
}

TEST(TypeTest, Rendering) {
  TypeContext TC;
  EXPECT_EQ(TC.getIntTy()->str(), "i64");
  EXPECT_EQ(TC.getFloatTy()->str(), "f64");
  EXPECT_EQ(TC.getVoidTy()->str(), "void");
  EXPECT_EQ(TC.getPointerTy(TC.getFloatTy())->str(), "ptr<f64>");
  EXPECT_EQ(TC.getArrayTy(TC.getIntTy(), 8)->str(), "[8 x i64]");
  EXPECT_EQ(TC.getFunctionTy(TC.getIntTy(), {TC.getFloatTy()})->str(),
            "i64 (f64)");
}

TEST(TypeTest, TypeCasting) {
  TypeContext TC;
  Type *T = TC.getArrayTy(TC.getIntTy(), 4);
  EXPECT_TRUE(isa<ArrayType>(T));
  EXPECT_FALSE(isa<PointerType>(T));
  EXPECT_EQ(cast<ArrayType>(T)->getElement(), TC.getIntTy());
}

} // namespace
