//===- SemaTest.cpp - PSC semantic analysis ----------------------*- C++ -*-===//

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

bool diagsContain(const std::vector<std::string> &Diags,
                  const std::string &Needle) {
  for (const std::string &D : Diags)
    if (D.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(SemaTest, UndeclaredVariable) {
  auto D = compileExpectError("int main() { x = 1; return 0; }");
  EXPECT_TRUE(diagsContain(D, "undeclared"));
}

TEST(SemaTest, RedeclarationForbidden) {
  auto D = compileExpectError("int main() { int x; int x; return 0; }");
  EXPECT_TRUE(diagsContain(D, "redeclaration"));
}

TEST(SemaTest, ShadowingGlobalsForbidden) {
  auto D = compileExpectError("int g; int main() { int g; return 0; }");
  EXPECT_TRUE(diagsContain(D, "shadows"));
}

TEST(SemaTest, ArrayUsedAsScalar) {
  auto D = compileExpectError("int a[4]; int main() { return a + 1; }");
  EXPECT_TRUE(diagsContain(D, "used as a scalar"));
}

TEST(SemaTest, IndexingNonArray) {
  auto D = compileExpectError("int x; int main() { return x[0]; }");
  EXPECT_TRUE(diagsContain(D, "not an array"));
}

TEST(SemaTest, AssignToArrayForbidden) {
  auto D = compileExpectError("int a[4]; int main() { a = 3; return 0; }");
  EXPECT_TRUE(diagsContain(D, "array"));
}

TEST(SemaTest, LoopCounterMustBeInt) {
  auto D = compileExpectError(
      "int main() { double i; for (i = 0; i < 3; i++) { } return 0; }");
  EXPECT_TRUE(diagsContain(D, "scalar int"));
}

TEST(SemaTest, VoidFunctionCannotReturnValue) {
  auto D = compileExpectError("void f() { return 3; } int main() { return 0; }");
  EXPECT_TRUE(diagsContain(D, "void function"));
}

TEST(SemaTest, NonVoidMustReturnValue) {
  auto D = compileExpectError("int f() { return; } int main() { return 0; }");
  EXPECT_TRUE(diagsContain(D, "must return a value"));
}

TEST(SemaTest, CallUndefinedFunction) {
  auto D = compileExpectError("int main() { return mystery(1); }");
  EXPECT_TRUE(diagsContain(D, "undefined function"));
}

TEST(SemaTest, CallArityChecked) {
  auto D = compileExpectError(
      "int f(int a) { return a; } int main() { return f(1, 2); }");
  EXPECT_TRUE(diagsContain(D, "wrong number of arguments"));
}

TEST(SemaTest, ArrayParamNeedsArrayArgument) {
  auto D = compileExpectError(
      "int f(int a[]) { return a[0]; } int main() { int x; return f(x); }");
  EXPECT_TRUE(diagsContain(D, "must be an array"));
}

TEST(SemaTest, ArrayElementTypeChecked) {
  auto D = compileExpectError("double b[4];\n"
                              "int f(int a[]) { return a[0]; }\n"
                              "int main() { return f(b); }");
  EXPECT_TRUE(diagsContain(D, "element type mismatch"));
}

TEST(SemaTest, PragmaClauseVariableMustExist) {
  auto D = compileExpectError(R"(
int main() {
  int i;
  #pragma psc parallel for private(nothere)
  for (i = 0; i < 4; i++) { }
  return 0;
}
)");
  EXPECT_TRUE(diagsContain(D, "private"));
}

TEST(SemaTest, ReductionOperatorValidated) {
  auto D = compileExpectError(R"(
int main() {
  int i;
  int s;
  #pragma psc parallel for reduction(bogusfn: s)
  for (i = 0; i < 4; i++) { s += i; }
  return 0;
}
)");
  EXPECT_TRUE(diagsContain(D, "unknown reduction"));
}

TEST(SemaTest, ThreadprivateMustBeGlobal) {
  auto D = compileExpectError(
      "#pragma psc threadprivate(nope)\nint main() { return 0; }");
  EXPECT_TRUE(diagsContain(D, "not a global"));
}

TEST(SemaTest, ReducibleNeedsDefinedReducer) {
  auto D = compileExpectError(
      "double pt[4];\n#pragma psc reducible(pt : ghost)\n"
      "int main() { return 0; }");
  EXPECT_TRUE(diagsContain(D, "not defined"));
}

TEST(SemaTest, IntOnlyOperatorsRejectFloats) {
  auto D = compileExpectError("int main() { double x; x = 1.5; "
                              "return x % 2; }");
  EXPECT_TRUE(diagsContain(D, "integer operands"));
}

TEST(SemaTest, MixedArithmeticAllowed) {
  auto M = compile("int main() { double x; int y; y = 3; x = y * 1.5; "
                   "return x; }");
  EXPECT_NE(M, nullptr);
}

TEST(SemaTest, BuiltinsTypeCheck) {
  auto M = compile("int main() { double x; x = sqrt(2.0); "
                   "return imax(1, 2) + lcg(5) % 3; }");
  EXPECT_NE(M, nullptr);
}

TEST(SemaTest, LogicalOperatorsRequireInts) {
  auto D = compileExpectError("int main() { double x; x = 1.0; "
                              "if (x && 1) { } return 0; }");
  EXPECT_TRUE(diagsContain(D, "integer operands"));
}

} // namespace
