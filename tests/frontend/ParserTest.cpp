//===- ParserTest.cpp - PSC parser -------------------------------*- C++ -*-===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace psc;

namespace {

TranslationUnit parse(const std::string &S, bool ExpectOk = true) {
  Parser P(Lexer(S).lexAll());
  TranslationUnit TU = P.parseTranslationUnit();
  if (ExpectOk && P.hasErrors()) {
    std::string Msg;
    for (auto &E : P.errors())
      Msg += E + "\n";
    ADD_FAILURE() << "unexpected parse errors:\n" << Msg;
  }
  if (!ExpectOk) {
    EXPECT_TRUE(P.hasErrors());
  }
  return TU;
}

TEST(ParserTest, GlobalDeclarations) {
  TranslationUnit TU = parse("int a; double b[16]; int c = 5; double d = 1.5;");
  ASSERT_EQ(TU.Globals.size(), 4u);
  EXPECT_EQ(TU.Globals[0].Name, "a");
  EXPECT_TRUE(TU.Globals[1].IsArray);
  EXPECT_EQ(TU.Globals[1].ArraySize, 16);
  EXPECT_TRUE(TU.Globals[2].HasInit);
  EXPECT_DOUBLE_EQ(TU.Globals[2].Init, 5.0);
  EXPECT_DOUBLE_EQ(TU.Globals[3].Init, 1.5);
}

TEST(ParserTest, NegativeGlobalInit) {
  TranslationUnit TU = parse("double x = -2.5;");
  ASSERT_EQ(TU.Globals.size(), 1u);
  EXPECT_DOUBLE_EQ(TU.Globals[0].Init, -2.5);
}

TEST(ParserTest, FunctionWithParams) {
  TranslationUnit TU = parse("int f(int a, double b, int c[]) { return a; }");
  ASSERT_EQ(TU.Functions.size(), 1u);
  const FunctionDecl &F = TU.Functions[0];
  ASSERT_EQ(F.Params.size(), 3u);
  EXPECT_FALSE(F.Params[0].IsArray);
  EXPECT_EQ(F.Params[1].Ty, ASTType::Double);
  EXPECT_TRUE(F.Params[2].IsArray);
}

TEST(ParserTest, ForLoopCanonicalForms) {
  TranslationUnit TU = parse(R"(
void f() {
  int i;
  for (i = 0; i < 10; i++) { }
  for (i = 10; i >= 0; i--) { }
  for (i = 0; i < 10; i += 2) { }
  for (i = 0; i != 10; i = i + 1) { }
}
)");
  const auto *Body = TU.Functions[0].Body.get();
  ASSERT_EQ(Body->Stmts.size(), 5u); // decl + 4 loops
  const auto *F1 = cast<ForStmt>(Body->Stmts[1].get());
  EXPECT_EQ(F1->Counter, "i");
  EXPECT_TRUE(F1->StepIsAdd);
  const auto *F2 = cast<ForStmt>(Body->Stmts[2].get());
  EXPECT_FALSE(F2->StepIsAdd);
  EXPECT_EQ(F2->Rel, BinaryExpr::Op::GE);
  const auto *F4 = cast<ForStmt>(Body->Stmts[4].get());
  EXPECT_EQ(F4->Rel, BinaryExpr::Op::NE);
}

TEST(ParserTest, ForRejectsMismatchedCounter) {
  parse("void f() { int i; int j; for (i = 0; j < 10; i++) { } }",
        /*ExpectOk=*/false);
}

TEST(ParserTest, OperatorPrecedence) {
  TranslationUnit TU = parse("void f() { int x; x = 1 + 2 * 3; }");
  const auto *Body = TU.Functions[0].Body.get();
  const auto *Asg = cast<AssignStmt>(Body->Stmts[1].get());
  const auto *Add = cast<BinaryExpr>(Asg->Value.get());
  EXPECT_EQ(Add->Operator, BinaryExpr::Op::Add);
  EXPECT_TRUE(isa<IntLitExpr>(Add->LHS.get()));
  const auto *Mul = cast<BinaryExpr>(Add->RHS.get());
  EXPECT_EQ(Mul->Operator, BinaryExpr::Op::Mul);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  TranslationUnit TU = parse("void f() { int x; x = (1 + 2) * 3; }");
  const auto *Body = TU.Functions[0].Body.get();
  const auto *Asg = cast<AssignStmt>(Body->Stmts[1].get());
  const auto *Mul = cast<BinaryExpr>(Asg->Value.get());
  EXPECT_EQ(Mul->Operator, BinaryExpr::Op::Mul);
}

TEST(ParserTest, CompoundAssignAndIncrement) {
  TranslationUnit TU = parse(R"(
void f() {
  int x;
  x += 3;
  x *= 2;
  x++;
  x--;
}
)");
  const auto *Body = TU.Functions[0].Body.get();
  EXPECT_EQ(cast<AssignStmt>(Body->Stmts[1].get())->Operator,
            AssignStmt::Op::Add);
  EXPECT_EQ(cast<AssignStmt>(Body->Stmts[2].get())->Operator,
            AssignStmt::Op::Mul);
  EXPECT_EQ(cast<AssignStmt>(Body->Stmts[3].get())->Operator,
            AssignStmt::Op::Add);
  EXPECT_EQ(cast<AssignStmt>(Body->Stmts[4].get())->Operator,
            AssignStmt::Op::Sub);
}

TEST(ParserTest, PragmaParallelForWithClauses) {
  TranslationUnit TU = parse(R"(
void f() {
  int i;
  int s;
  #pragma psc parallel for reduction(+: s) private(i) nowait schedule(static, 8)
  for (i = 0; i < 10; i++) { s += i; }
}
)");
  const auto *Body = TU.Functions[0].Body.get();
  const auto *P = cast<PragmaStmt>(Body->Stmts[2].get());
  EXPECT_EQ(P->Directive.Kind, DirectiveKind::ParallelFor);
  ASSERT_EQ(P->Directive.Reductions.size(), 1u);
  EXPECT_EQ(P->Directive.Reductions[0].OpName, "+");
  EXPECT_EQ(P->Directive.Reductions[0].Var, "s");
  ASSERT_EQ(P->Directive.Privates.size(), 1u);
  EXPECT_TRUE(P->Directive.NoWait);
  EXPECT_EQ(P->Directive.ChunkSize, 8);
  EXPECT_TRUE(isa<ForStmt>(P->Sub.get()));
}

TEST(ParserTest, PragmaCriticalNamed) {
  TranslationUnit TU = parse(R"(
void f() {
  int x;
  #pragma psc critical(lock1)
  { x = 1; }
}
)");
  const auto *Body = TU.Functions[0].Body.get();
  const auto *P = cast<PragmaStmt>(Body->Stmts[1].get());
  EXPECT_EQ(P->Directive.Kind, DirectiveKind::Critical);
  EXPECT_EQ(P->Directive.CriticalName, "lock1");
}

TEST(ParserTest, PragmaReductionVariants) {
  TranslationUnit TU = parse(R"(
void f() {
  int i;
  int a;
  int b;
  #pragma psc parallel for reduction(min: a) reduction(myfn: b)
  for (i = 0; i < 4; i++) { }
}
)");
  const auto *Body = TU.Functions[0].Body.get();
  const auto *P = cast<PragmaStmt>(Body->Stmts[3].get());
  ASSERT_EQ(P->Directive.Reductions.size(), 2u);
  EXPECT_EQ(P->Directive.Reductions[0].OpName, "min");
  EXPECT_EQ(P->Directive.Reductions[1].OpName, "myfn");
}

TEST(ParserTest, TopLevelThreadprivateAndReducible) {
  TranslationUnit TU = parse(R"(
int a[8];
double pt[4];
#pragma psc threadprivate(a)
#pragma psc reducible(pt : merge)
void merge(double x[], double y[]) { }
)");
  ASSERT_EQ(TU.ThreadPrivates.size(), 1u);
  EXPECT_EQ(TU.ThreadPrivates[0], "a");
  ASSERT_EQ(TU.Reducibles.size(), 1u);
  EXPECT_EQ(TU.Reducibles[0].first, "pt");
  EXPECT_EQ(TU.Reducibles[0].second, "merge");
}

TEST(ParserTest, LoopDirectiveRequiresFor) {
  parse("void f() { int x; #pragma psc parallel for\n x = 1; }",
        /*ExpectOk=*/false);
}

TEST(ParserTest, BarrierIsStandalone) {
  TranslationUnit TU = parse(R"(
void f() {
  int x;
  #pragma psc barrier
  x = 1;
}
)");
  const auto *Body = TU.Functions[0].Body.get();
  EXPECT_TRUE(isa<BarrierStmt>(Body->Stmts[1].get()));
  EXPECT_TRUE(isa<AssignStmt>(Body->Stmts[2].get()));
}

TEST(ParserTest, UnknownClauseRejected) {
  parse("void f() { int i; #pragma psc parallel for frobnicate(i)\n"
        "for (i = 0; i < 4; i++) { } }",
        /*ExpectOk=*/false);
}

TEST(ParserTest, AssignToLiteralRejected) {
  parse("void f() { int x; x = 0; 1 = x; }", /*ExpectOk=*/false);
}

TEST(ParserTest, RelaxedClause) {
  TranslationUnit TU = parse(R"(
void f() {
  int i;
  int v;
  #pragma psc parallel for relaxed(v) lastprivate(i) firstprivate(v)
  for (i = 0; i < 4; i++) { v = i; }
}
)");
  const auto *Body = TU.Functions[0].Body.get();
  const auto *P = cast<PragmaStmt>(Body->Stmts[2].get());
  EXPECT_EQ(P->Directive.Relaxed.size(), 1u);
  EXPECT_EQ(P->Directive.LastPrivates.size(), 1u);
  EXPECT_EQ(P->Directive.FirstPrivates.size(), 1u);
}

} // namespace
