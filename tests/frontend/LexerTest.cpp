//===- LexerTest.cpp - PSC lexer ---------------------------------*- C++ -*-===//

#include "frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace psc;

namespace {

std::vector<Token> lex(const std::string &S) { return Lexer(S).lexAll(); }

TEST(LexerTest, EmptyInput) {
  auto T = lex("");
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T[0].is(TokenKind::Eof));
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto T = lex("int x double while whilex");
  EXPECT_TRUE(T[0].is(TokenKind::KwInt));
  EXPECT_TRUE(T[1].is(TokenKind::Identifier));
  EXPECT_EQ(T[1].Text, "x");
  EXPECT_TRUE(T[2].is(TokenKind::KwDouble));
  EXPECT_TRUE(T[3].is(TokenKind::KwWhile));
  EXPECT_TRUE(T[4].is(TokenKind::Identifier)); // not a keyword prefix match
}

TEST(LexerTest, IntegerLiterals) {
  auto T = lex("0 42 1000000");
  EXPECT_EQ(T[0].IntValue, 0);
  EXPECT_EQ(T[1].IntValue, 42);
  EXPECT_EQ(T[2].IntValue, 1000000);
  EXPECT_TRUE(T[0].is(TokenKind::IntLiteral));
}

TEST(LexerTest, FloatLiterals) {
  auto T = lex("1.5 0.25 2e3 1.5e-2");
  EXPECT_TRUE(T[0].is(TokenKind::FloatLiteral));
  EXPECT_DOUBLE_EQ(T[0].FloatValue, 1.5);
  EXPECT_DOUBLE_EQ(T[1].FloatValue, 0.25);
  EXPECT_DOUBLE_EQ(T[2].FloatValue, 2000.0);
  EXPECT_DOUBLE_EQ(T[3].FloatValue, 0.015);
}

TEST(LexerTest, MultiCharOperators) {
  auto T = lex("== != <= >= << >> && || += -= ++ --");
  TokenKind Expected[] = {
      TokenKind::EqEq,   TokenKind::NotEq,      TokenKind::LessEq,
      TokenKind::GreaterEq, TokenKind::Shl,     TokenKind::Shr,
      TokenKind::AmpAmp, TokenKind::PipePipe,   TokenKind::PlusAssign,
      TokenKind::MinusAssign, TokenKind::PlusPlus, TokenKind::MinusMinus};
  for (size_t I = 0; I < std::size(Expected); ++I)
    EXPECT_TRUE(T[I].is(Expected[I])) << "token " << I;
}

TEST(LexerTest, CommentsSkipped) {
  auto T = lex("a // comment\nb /* multi\nline */ c");
  ASSERT_GE(T.size(), 4u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
  EXPECT_EQ(T[2].Text, "c");
}

TEST(LexerTest, PragmaTokenization) {
  auto T = lex("#pragma psc parallel for private(x)\nint y;");
  EXPECT_TRUE(T[0].is(TokenKind::PragmaStart));
  EXPECT_EQ(T[1].Text, "parallel");
  EXPECT_TRUE(T[2].is(TokenKind::KwFor));
  EXPECT_EQ(T[3].Text, "private");
  EXPECT_TRUE(T[4].is(TokenKind::LParen));
  EXPECT_EQ(T[5].Text, "x");
  EXPECT_TRUE(T[6].is(TokenKind::RParen));
  EXPECT_TRUE(T[7].is(TokenKind::PragmaEnd));
  EXPECT_TRUE(T[8].is(TokenKind::KwInt));
}

TEST(LexerTest, PragmaAtEndOfFile) {
  auto T = lex("#pragma psc barrier");
  EXPECT_TRUE(T[0].is(TokenKind::PragmaStart));
  EXPECT_EQ(T[1].Text, "barrier");
  EXPECT_TRUE(T[2].is(TokenKind::PragmaEnd));
  EXPECT_TRUE(T[3].is(TokenKind::Eof));
}

TEST(LexerTest, LineNumbersTracked) {
  auto T = lex("a\nb\n\nc");
  EXPECT_EQ(T[0].Line, 1u);
  EXPECT_EQ(T[1].Line, 2u);
  EXPECT_EQ(T[2].Line, 4u);
}

TEST(LexerTest, ErrorOnBadCharacter) {
  auto T = lex("a $ b");
  bool SawError = false;
  for (const Token &Tok : T)
    if (Tok.is(TokenKind::Error))
      SawError = true;
  EXPECT_TRUE(SawError);
}

TEST(LexerTest, ErrorOnBadPragma) {
  auto T = lex("#pragma omp parallel");
  bool SawError = false;
  for (const Token &Tok : T)
    if (Tok.is(TokenKind::Error))
      SawError = true;
  EXPECT_TRUE(SawError);
}

} // namespace
