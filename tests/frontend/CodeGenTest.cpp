//===- CodeGenTest.cpp - AST → IR lowering -----------------------*- C++ -*-===//

#include "../TestUtil.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

unsigned countOpcode(const Function &F, Value::ValueKind K) {
  unsigned N = 0;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      if (I->getKind() == K)
        ++N;
  return N;
}

TEST(CodeGenTest, ModulesAlwaysVerify) {
  auto M = compile(R"(
int g[16];
double h = 2.5;
int helper(int a, int b[]) { return a + b[0]; }
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 16; i++) { g[i] = i; }
  s = helper(3, g);
  if (s > 0) { s = s * 2; } else { s = -s; }
  while (s > 100) { s = s / 2; }
  print(s);
  return s;
}
)");
  ASSERT_NE(M, nullptr);
  EXPECT_TRUE(isModuleValid(*M));
}

TEST(CodeGenTest, AllocasHoistedToEntry) {
  Compiled C = analyze(R"(
int main() {
  int i;
  for (i = 0; i < 4; i++) {
    int t;
    t = i * 2;
    print(t);
  }
  return 0;
}
)");
  ASSERT_TRUE(C.FA);
  // Every alloca sits in the entry block so loops never re-allocate.
  for (BasicBlock *BB : *C.F) {
    for (Instruction *I : *BB)
      if (isa<AllocaInst>(I)) {
        EXPECT_EQ(BB, C.F->getEntryBlock());
      }
  }
  EXPECT_EQ(countOpcode(*C.F, Value::ValueKind::Alloca), 2u);
}

TEST(CodeGenTest, ScalarParamsGetStackHomes) {
  Compiled C = analyze("int f(int a, double b) { return a; } "
                       "int main() { return f(1, 2.0); }",
                       "f");
  ASSERT_TRUE(C.FA);
  EXPECT_EQ(countOpcode(*C.F, Value::ValueKind::Alloca), 2u);
}

TEST(CodeGenTest, ArrayParamsUsedDirectly) {
  Compiled C = analyze("int f(int a[]) { return a[2]; } "
                       "int g[4]; int main() { return f(g); }",
                       "f");
  ASSERT_TRUE(C.FA);
  EXPECT_EQ(countOpcode(*C.F, Value::ValueKind::Alloca), 0u);
  EXPECT_EQ(countOpcode(*C.F, Value::ValueKind::GEP), 1u);
}

TEST(CodeGenTest, ForLoopShape) {
  Compiled C = analyze(R"(
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 10; i++) { s += i; }
  return s;
}
)");
  ASSERT_TRUE(C.FA);
  // preheader(entry) -> header -> body -> latch -> header; header -> exit.
  ASSERT_EQ(C.FA->loopInfo().loops().size(), 1u);
  const Loop *L = C.FA->loopInfo().loops()[0];
  EXPECT_EQ(L->blocks().size(), 3u); // header, body, latch
}

TEST(CodeGenTest, RegionMarkersEmitted) {
  Compiled C = analyze(R"(
int x;
int main() {
  #pragma psc critical
  { x += 1; }
  return x;
}
)");
  ASSERT_TRUE(C.FA);
  unsigned Begins = 0, Ends = 0;
  for (Instruction *I : C.FA->instructions())
    if (auto *CI = dyn_cast<CallInst>(I)) {
      if (CI->getCallee()->getName() == intrinsics::RegionBegin)
        ++Begins;
      if (CI->getCallee()->getName() == intrinsics::RegionEnd)
        ++Ends;
    }
  EXPECT_EQ(Begins, 1u);
  EXPECT_EQ(Ends, 1u);
}

TEST(CodeGenTest, LoopDirectiveBindsToHeader) {
  Compiled C = analyze(R"(
int main() {
  int i;
  int s;
  s = 0;
  #pragma psc parallel for reduction(+: s)
  for (i = 0; i < 8; i++) { s += i; }
  return s;
}
)");
  ASSERT_TRUE(C.FA);
  const ParallelInfo &PI = C.M->getParallelInfo();
  ASSERT_EQ(PI.directives().size(), 1u);
  const Directive &D = PI.directives()[0];
  EXPECT_EQ(D.Kind, DirectiveKind::ParallelFor);
  ASSERT_NE(D.LoopHeader, nullptr);
  const Loop *L = C.FA->loopInfo().loops()[0];
  EXPECT_EQ(D.LoopHeader->getIndex(), L->getHeader());
  ASSERT_EQ(D.Reductions.size(), 1u);
  EXPECT_EQ(D.Reductions[0].Op, ReduceOp::Add);
  ASSERT_NE(D.Reductions[0].Var.Storage, nullptr);
}

TEST(CodeGenTest, ClausesResolvedToStorage) {
  Compiled C = analyze(R"(
int shared_buf[32];
int main() {
  int i;
  int t;
  #pragma psc parallel for private(t) lastprivate(t)
  for (i = 0; i < 8; i++) { t = shared_buf[i]; }
  return 0;
}
)");
  ASSERT_TRUE(C.FA);
  const Directive &D = C.M->getParallelInfo().directives()[0];
  ASSERT_EQ(D.Privates.size(), 1u);
  EXPECT_TRUE(isa<AllocaInst>(D.Privates[0].Storage));
  ASSERT_EQ(D.LiveOuts.size(), 1u);
  EXPECT_EQ(D.LiveOuts[0].Policy, LiveOutPolicy::Last);
}

TEST(CodeGenTest, ImplicitConversionsLowered) {
  Compiled C = analyze(R"(
int main() {
  double x;
  int y;
  y = 3;
  x = y;
  y = x * 2.0;
  return y;
}
)");
  ASSERT_TRUE(C.FA);
  EXPECT_GE(countOpcode(*C.F, Value::ValueKind::Cast), 2u);
}

TEST(CodeGenTest, ReturnInBothBranches) {
  auto M = compile(R"(
int f(int a) {
  if (a > 0) { return 1; } else { return -1; }
}
int main() { return f(3); }
)");
  ASSERT_NE(M, nullptr); // unreachable tail block must still verify
}

TEST(CodeGenTest, BarrierEmitsMarker) {
  Compiled C = analyze(R"(
int main() {
  #pragma psc barrier
  return 0;
}
)");
  ASSERT_TRUE(C.FA);
  bool Found = false;
  for (Instruction *I : C.FA->instructions())
    if (auto *CI = dyn_cast<CallInst>(I))
      if (CI->getCallee()->getName() == intrinsics::BarrierMarker)
        Found = true;
  EXPECT_TRUE(Found);
}

TEST(CodeGenTest, ThreadPrivateRegistered) {
  auto M = compile(R"(
int buf[8];
#pragma psc threadprivate(buf)
int main() { return buf[0]; }
)");
  ASSERT_NE(M, nullptr);
  EXPECT_TRUE(M->getParallelInfo().isThreadPrivate(M->getGlobal("buf")));
}

TEST(CodeGenTest, ReducibleRegisteredWithCustomReducer) {
  auto M = compile(R"(
double pt[4];
#pragma psc reducible(pt : merge)
void merge(double a[], double b[]) {
  int k;
  for (k = 0; k < 4; k++) { a[k] = a[k] + b[k]; }
}
int main() { return 0; }
)");
  ASSERT_NE(M, nullptr);
  bool Found = false;
  for (const Directive &D : M->getParallelInfo().directives())
    for (const ReductionClause &R : D.Reductions)
      if (R.Op == ReduceOp::Custom && R.CustomReducer &&
          R.CustomReducer->getName() == "merge")
        Found = true;
  EXPECT_TRUE(Found);
}

} // namespace
