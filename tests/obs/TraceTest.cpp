//===- TraceTest.cpp - Trace recorder units -------------------------------===//
///
/// The recorder's core contracts (DESIGN.md §13):
///
///   * off mode records nothing — probes are a single cold-flag branch;
///   * spans and instants carry name/detail/tid/timestamps;
///   * ring overflow wraps, keeping the NEWEST events;
///   * traceWrite emits valid JSON (checked by a real parser here, and by
///     Python's json module in the CI trace-smoke job), with details
///     containing quotes/backslashes/control bytes escaped;
///   * traceWriteWindow restricts to the [lo, hi] time window.
///
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

using namespace psc;

namespace {

/// Minimal recursive-descent JSON validator — enough to reject every
/// malformed escape, bad number, or unbalanced bracket the writer could
/// produce.
class JsonChecker {
public:
  explicit JsonChecker(const std::string &S) : S(S) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  bool value() {
    if (Pos >= S.size())
      return false;
    char C = S[Pos];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"')
      return string();
    if (C == 't')
      return literal("true");
    if (C == 'f')
      return literal("false");
    if (C == 'n')
      return literal("null");
    return number();
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < S.size()) {
      char C = S[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return false; // raw control byte — must have been escaped
      if (C == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
        char E = S[Pos];
        if (E == 'u') {
          for (int I = 0; I < 4; ++I) {
            ++Pos;
            if (Pos >= S.size() || !std::isxdigit((unsigned char)S[Pos]))
              return false;
          }
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return false;
        }
      }
      ++Pos;
    }
    return false;
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < S.size() && std::isdigit((unsigned char)S[Pos]))
      ++Pos;
    if (peek() == '.') {
      ++Pos;
      while (Pos < S.size() && std::isdigit((unsigned char)S[Pos]))
        ++Pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      while (Pos < S.size() && std::isdigit((unsigned char)S[Pos]))
        ++Pos;
    }
    return Pos > Start;
  }

  bool literal(const char *L) {
    size_t N = std::strlen(L);
    if (S.compare(Pos, N, L) != 0)
      return false;
    Pos += N;
    return true;
  }

  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }
  void skipWs() {
    while (Pos < S.size() && std::isspace((unsigned char)S[Pos]))
      ++Pos;
  }

  const std::string &S;
  size_t Pos = 0;
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::string tmpPath(const char *Stem) {
  return ::testing::TempDir() + Stem;
}

} // namespace

TEST(TraceTest, OffModeEmitsNothing) {
  obs::traceEnable(); // clear any previous rings
  obs::traceDisable();
  {
    obs::TraceSpan Span("should-not-appear", "x=%d", 1);
    obs::traceInstant("nor-this");
    obs::traceInstantf("nor-that", "y=%d", 2);
  }
  EXPECT_FALSE(obs::traceEnabled());
  EXPECT_TRUE(obs::traceCollect().empty());
  EXPECT_EQ(obs::traceNowNs(), 0u);
}

TEST(TraceTest, SpansAndInstantsRecorded) {
  obs::traceEnable();
  {
    obs::TraceSpan Outer("outer", "fn=%s", "main");
    {
      obs::TraceSpan Inner("inner");
      obs::traceInstantf("marker", "it=%d", 7);
    }
  }
  obs::traceDisable();
  std::vector<obs::TraceEventData> Evs = obs::traceCollect();
  ASSERT_EQ(Evs.size(), 3u);
  // All on this thread; collect sorts by (tid, start): marker starts
  // after both spans open.
  for (const obs::TraceEventData &E : Evs)
    EXPECT_EQ(E.Tid, Evs[0].Tid);

  auto Find = [&](const std::string &Name) -> const obs::TraceEventData * {
    for (const obs::TraceEventData &E : Evs)
      if (E.Name == Name)
        return &E;
    return nullptr;
  };
  const obs::TraceEventData *Outer = Find("outer");
  const obs::TraceEventData *Inner = Find("inner");
  const obs::TraceEventData *Marker = Find("marker");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  ASSERT_NE(Marker, nullptr);
  EXPECT_FALSE(Outer->Instant);
  EXPECT_TRUE(Marker->Instant);
  EXPECT_EQ(Outer->Detail, "fn=main");
  EXPECT_EQ(Marker->Detail, "it=7");
  // Inner nests inside outer.
  EXPECT_GE(Inner->StartNs, Outer->StartNs);
  EXPECT_LE(Inner->StartNs + Inner->DurNs, Outer->StartNs + Outer->DurNs);
}

TEST(TraceTest, RingOverflowKeepsNewest) {
  constexpr int N = 20000; // > the per-thread ring capacity
  obs::traceEnable();
  for (int I = 0; I < N; ++I)
    obs::traceInstantf("overflow", "i=%d", I);
  obs::traceDisable();
  std::vector<obs::TraceEventData> Evs = obs::traceCollect();
  ASSERT_FALSE(Evs.empty());
  ASSERT_LT(Evs.size(), static_cast<size_t>(N)) << "ring did not wrap";
  // Overflow keeps the newest: exactly the last `Evs.size()` emissions
  // survive, in order.
  int First = N - static_cast<int>(Evs.size());
  for (size_t I = 0; I < Evs.size(); ++I) {
    EXPECT_EQ(Evs[I].Name, "overflow");
    EXPECT_EQ(Evs[I].Detail, "i=" + std::to_string(First + (int)I));
  }
}

TEST(TraceTest, EventsSurviveThreadExit) {
  obs::traceEnable();
  std::thread T([] {
    obs::TraceSpan Span("worker-span");
    obs::traceInstant("worker-instant");
  });
  T.join();
  obs::traceDisable();
  std::vector<obs::TraceEventData> Evs = obs::traceCollect();
  ASSERT_EQ(Evs.size(), 2u) << "events must outlive their thread";
  EXPECT_EQ(Evs[0].Tid, Evs[1].Tid);
}

TEST(TraceTest, WriteEmitsValidJsonWithEscapedDetails) {
  obs::traceEnable();
  {
    obs::TraceSpan Span("span \"quoted\"", "path=a\\b\tc");
    obs::traceInstantf("instant", "msg=%s", "line1\nline2");
  }
  obs::traceDisable();
  std::string Path = tmpPath("trace_valid.json");
  std::string Err;
  ASSERT_TRUE(obs::traceWrite(Path, {{"tool", "test \"x\""}}, Err)) << Err;
  std::string Text = slurp(Path);
  EXPECT_TRUE(JsonChecker(Text).valid()) << Text;
  EXPECT_NE(Text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Text.find("\"ph\":\"i\""), std::string::npos);
  std::remove(Path.c_str());
}

TEST(TraceTest, OffModeWriteProducesEmptyEventList) {
  obs::traceEnable();
  obs::traceDisable();
  std::string Path = tmpPath("trace_empty.json");
  std::string Err;
  ASSERT_TRUE(obs::traceWrite(Path, {}, Err)) << Err;
  std::string Text = slurp(Path);
  EXPECT_TRUE(JsonChecker(Text).valid()) << Text;
  EXPECT_NE(Text.find("\"traceEvents\""), std::string::npos) << Text;
  EXPECT_EQ(Text.find("\"ph\":"), std::string::npos)
      << "no events may be emitted when nothing was recorded: " << Text;
  std::remove(Path.c_str());
}

TEST(TraceTest, WindowRestrictsToTimeRange) {
  obs::traceEnable();
  obs::traceInstant("before");
  uint64_t Lo = obs::traceNowNs();
  obs::traceInstant("inside");
  uint64_t Hi = obs::traceNowNs();
  // The window boundary needs the next event strictly after Hi.
  while (obs::traceNowNs() == Hi) {
  }
  obs::traceInstant("after");
  obs::traceDisable();

  std::string Path = tmpPath("trace_window.json");
  std::string Err;
  ASSERT_TRUE(obs::traceWriteWindow(Path, Lo, Hi, {}, Err)) << Err;
  std::string Text = slurp(Path);
  EXPECT_TRUE(JsonChecker(Text).valid()) << Text;
  EXPECT_NE(Text.find("\"inside\""), std::string::npos);
  EXPECT_EQ(Text.find("\"before\""), std::string::npos);
  EXPECT_EQ(Text.find("\"after\""), std::string::npos);
  std::remove(Path.c_str());
}

TEST(TraceTest, ReenableClearsPreviousEvents) {
  obs::traceEnable();
  obs::traceInstant("old");
  obs::traceEnable(); // re-arm: previous rings cleared
  obs::traceInstant("new");
  obs::traceDisable();
  std::vector<obs::TraceEventData> Evs = obs::traceCollect();
  ASSERT_EQ(Evs.size(), 1u);
  EXPECT_EQ(Evs[0].Name, "new");
}
