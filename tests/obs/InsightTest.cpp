//===- InsightTest.cpp - psc-insight trace analytics ----------------------===//
///
/// The offline trace analyzer (obs/Insight.h, the library behind
/// `psc-insight`):
///
///   * the critical-path / utilization / attribution math on a hand-built
///     synthetic trace with known answers;
///   * malformed and truncated trace JSON is rejected with a diagnostic,
///     never a partial result;
///   * end to end on a real forced-misspeculation run: the recorder's
///     artifact round-trips through the parser, and the report puts the
///     misspeculating loop on the critical path with its rollback cost —
///     the acceptance criterion of DESIGN.md §14.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Interpreter.h"
#include "obs/Insight.h"
#include "obs/Trace.h"
#include "profiling/DepProfiler.h"
#include "runtime/ParallelRuntime.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

using namespace psc;
using namespace psc::test;
using namespace psc::obs;

namespace {

constexpr uint64_t Ms = 1'000'000; // ns per millisecond

InsightEvent span(const char *Name, unsigned Tid, uint64_t StartNs,
                  uint64_t DurNs, const char *Detail = "") {
  InsightEvent E;
  E.Name = Name;
  E.Detail = Detail;
  E.Tid = Tid;
  E.StartNs = StartNs;
  E.DurNs = DurNs;
  return E;
}

InsightEvent instant(const char *Name, unsigned Tid, uint64_t StartNs,
                     const char *Detail = "") {
  InsightEvent E = span(Name, Tid, StartNs, 0, Detail);
  E.Instant = true;
  return E;
}

DepProfile train(const Module &M) {
  ModuleAnalyses MA(M);
  DepProfiler P(MA);
  Interpreter I(M);
  I.addObserver(&P);
  EXPECT_TRUE(I.run().Completed);
  return P.takeProfile();
}

/// UA with a non-coprime map multiplier: structurally identical to clean
/// UA, so the clean profile applies — and is violated at run time.
std::string adversarialUA() {
  std::string S = findWorkload("UA")->Source;
  size_t Pos = S.find("i * 167 + 3");
  EXPECT_NE(Pos, std::string::npos);
  S.replace(Pos, 11, "i * 166 + 3");
  return S;
}

} // namespace

TEST(InsightTest, SyntheticCriticalPathUtilizationAndAttribution) {
  // A 100ms run: an 80ms speculative DOALL invocation fanning out two
  // chunks (40ms and 20ms) to workers, misspeculating at t=50ms.
  InsightTrace T;
  T.Meta.push_back({"mode", "synthetic"});
  T.Meta.push_back({"dropped_events", "7"});
  T.Events.push_back(span("run", 0, 0, 100 * Ms));
  T.Events.push_back(span("loop.invoke", 0, 10 * Ms, 80 * Ms,
                          "fn=main header=5 kind=DOALL spec"));
  T.Events.push_back(span("specdoall.chunk", 1, 10 * Ms, 40 * Ms));
  T.Events.push_back(span("specdoall.chunk", 2, 10 * Ms, 20 * Ms));
  T.Events.push_back(instant("spec.misspec", 0, 50 * Ms, "header=5"));
  T.Events.push_back(
      instant("spec.rollback", 0, 55 * Ms, "fn=main header=5 lost=1234"));
  T.Events.push_back(instant("plan.burned", 0, 56 * Ms, "fn=main header=5"));

  InsightReport R = analyzeTrace(T, "synthetic");
  EXPECT_EQ(R.NumEvents, 7u);
  EXPECT_EQ(R.DroppedEvents, 7u);
  EXPECT_DOUBLE_EQ(R.WindowMs, 100.0);

  // Stage breakdown: one run span with the invocation as its child.
  ASSERT_EQ(R.Stages.size(), 1u);
  EXPECT_EQ(R.Stages[0].Name, "run");
  EXPECT_DOUBLE_EQ(R.Stages[0].Ms, 100.0);
  ASSERT_EQ(R.Stages[0].Children.size(), 1u);
  EXPECT_EQ(R.Stages[0].Children[0].Name, "loop.invoke");
  EXPECT_DOUBLE_EQ(R.Stages[0].Children[0].Ms, 80.0);

  // Utilization: only the worker threads count; tid1 runs chunks for
  // 40/100ms, tid2 for 20/100ms, overall (40+20)/(2*100).
  ASSERT_EQ(R.Utilization.size(), 2u);
  EXPECT_EQ(R.Utilization[0].Tid, 1u);
  EXPECT_DOUBLE_EQ(R.Utilization[0].BusyMs, 40.0);
  EXPECT_DOUBLE_EQ(R.Utilization[0].Pct, 40.0);
  EXPECT_EQ(R.Utilization[1].Tid, 2u);
  EXPECT_DOUBLE_EQ(R.Utilization[1].BusyMs, 20.0);
  EXPECT_DOUBLE_EQ(R.OverallUtilPct, 30.0);

  // Critical path: run -> loop.invoke -> the 40ms chunk (cross-thread
  // attached), each with self time = duration minus attached children.
  ASSERT_EQ(R.CriticalPath.size(), 3u);
  EXPECT_EQ(R.CriticalPath[0].Name, "run");
  EXPECT_DOUBLE_EQ(R.CriticalPath[0].SelfMs, 20.0); // 100 - 80
  EXPECT_EQ(R.CriticalPath[1].Name, "loop.invoke");
  EXPECT_EQ(R.CriticalPath[1].Depth, 1u);
  EXPECT_DOUBLE_EQ(R.CriticalPath[1].Ms, 80.0);
  EXPECT_DOUBLE_EQ(R.CriticalPath[1].SelfMs, 20.0); // 80 - (40 + 20)
  EXPECT_TRUE(R.CriticalPath[1].Misspec)
      << "the misspec instant falls inside the invocation";
  EXPECT_EQ(R.CriticalPath[2].Name, "specdoall.chunk");
  EXPECT_EQ(R.CriticalPath[2].Tid, 1u);
  EXPECT_DOUBLE_EQ(R.CriticalPath[2].Ms, 40.0);

  // Per-loop attribution with the chunk-imbalance figure:
  // 100 * (40 - 30) / 40 for the (40, 20) chunk pair.
  ASSERT_EQ(R.Loops.size(), 1u);
  const LoopInsight &L = R.Loops[0];
  EXPECT_EQ(L.Fn, "main");
  EXPECT_EQ(L.Header, 5u);
  EXPECT_EQ(L.Kind, "DOALL");
  EXPECT_TRUE(L.Spec);
  EXPECT_EQ(L.Invocations, 1u);
  EXPECT_DOUBLE_EQ(L.TotalMs, 80.0);
  EXPECT_EQ(L.Chunks, 2u);
  EXPECT_DOUBLE_EQ(L.ChunkImbalancePct, 25.0);
  EXPECT_EQ(L.Misspecs, 1u);
  EXPECT_EQ(L.Rollbacks, 1u);
  EXPECT_EQ(L.LostInstructions, 1234u);
  EXPECT_TRUE(L.Burned);

  // Speculation efficiency rollup.
  EXPECT_EQ(R.Spec.SpecInvocations, 1u);
  EXPECT_EQ(R.Spec.Misspecs, 1u);
  EXPECT_EQ(R.Spec.Rollbacks, 1u);
  EXPECT_EQ(R.Spec.LostInstructions, 1234u);
  EXPECT_EQ(R.Spec.BurnedPlans, 1u);
  EXPECT_DOUBLE_EQ(R.Spec.misspecRate(), 1.0);
}

TEST(InsightTest, GateWaitsSubtractFromUtilizationAndAttributeToLoop) {
  InsightTrace T;
  T.Events.push_back(
      span("loop.invoke", 0, 0, 100 * Ms, "fn=main header=7 kind=HELIX"));
  T.Events.push_back(span("helix.worker", 1, 0, 100 * Ms));
  T.Events.push_back(span("helix.gate_wait", 1, 10 * Ms, 30 * Ms));

  InsightReport R = analyzeTrace(T, "waits");
  ASSERT_EQ(R.Utilization.size(), 1u);
  EXPECT_DOUBLE_EQ(R.Utilization[0].BusyMs, 70.0);
  EXPECT_DOUBLE_EQ(R.Utilization[0].WaitMs, 30.0);
  EXPECT_DOUBLE_EQ(R.Utilization[0].Pct, 70.0);
  ASSERT_EQ(R.Loops.size(), 1u);
  EXPECT_DOUBLE_EQ(R.Loops[0].GateWaitMs, 30.0);
  EXPECT_DOUBLE_EQ(R.Loops[0].TokenWaitMs, 0.0);
  // The timeline integrates to the overall busy fraction.
  ASSERT_FALSE(R.Timeline.empty());
  double Sum = 0;
  for (double B : R.Timeline)
    Sum += B;
  EXPECT_NEAR(Sum / R.Timeline.size(), 0.70, 1e-9);
}

TEST(InsightTest, CacheInstantsAggregatePerLevel) {
  InsightTrace T;
  T.Events.push_back(instant("cache.hit", 0, 1 * Ms, "cache=module"));
  T.Events.push_back(instant("cache.hit", 0, 2 * Ms, "cache=module"));
  T.Events.push_back(instant("cache.miss", 0, 3 * Ms, "cache=module"));
  T.Events.push_back(instant("cache.miss", 0, 4 * Ms, "cache=plan"));
  T.Events.push_back(instant("cache.evict", 0, 5 * Ms, "cache=plan"));

  InsightReport R = analyzeTrace(T, "caches");
  ASSERT_EQ(R.Caches.size(), 2u);
  const CacheInsight *Module = nullptr, *Plan = nullptr;
  for (const CacheInsight &C : R.Caches)
    (C.Name == "module" ? Module : Plan) = &C;
  ASSERT_NE(Module, nullptr);
  ASSERT_NE(Plan, nullptr);
  EXPECT_EQ(Module->Hits, 2u);
  EXPECT_EQ(Module->Misses, 1u);
  EXPECT_NEAR(Module->hitRate(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(Plan->Misses, 1u);
  EXPECT_EQ(Plan->Evictions, 1u);
}

TEST(InsightTest, MalformedTracesAreRejectedWithDiagnostics) {
  const char *Valid =
      "{\"traceEvents\":[{\"name\":\"run\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":0,\"ts\":0,\"dur\":5}],\"displayTimeUnit\":\"ms\"}";
  InsightTrace T;
  std::string Err;
  ASSERT_TRUE(parseTraceJson(Valid, T, Err)) << Err;
  ASSERT_EQ(T.Events.size(), 1u);
  EXPECT_EQ(T.Events[0].Name, "run");
  EXPECT_EQ(T.Events[0].DurNs, 5000u); // µs on the wire, ns parsed

  const char *Bad[] = {
      "",                                   // empty
      "not json",                           // not JSON at all
      "{\"traceEvents\":",                  // truncated mid-document
      "{}",                                 // missing traceEvents
      "{\"traceEvents\":[{\"ph\":\"X\"}]}", // event missing name/tid/ts
      "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"tid\":0,"
      "\"ts\":0}]}",                        // "X" span without dur
      "{\"traceEvents\":[]} trailing",      // trailing garbage
  };
  for (const char *Text : Bad) {
    InsightTrace Out;
    Err.clear();
    EXPECT_FALSE(parseTraceJson(Text, Out, Err)) << Text;
    EXPECT_FALSE(Err.empty()) << Text;
  }

  // Truncating the valid document anywhere must fail, not half-parse.
  std::string V(Valid);
  for (size_t Cut : {V.size() - 1, V.size() / 2, size_t(10)}) {
    InsightTrace Out;
    Err.clear();
    EXPECT_FALSE(parseTraceJson(V.substr(0, Cut), Out, Err)) << Cut;
    EXPECT_FALSE(Err.empty()) << Cut;
  }
}

TEST(InsightTest, ForcedMisspecTraceRoundTripsWithRollbackCostOnPath) {
  auto Clean = compile(findWorkload("UA")->Source);
  auto Adv = compile(adversarialUA());
  ASSERT_NE(Clean, nullptr);
  ASSERT_NE(Adv, nullptr);
  DepProfile P = train(*Clean);
  RuntimePlan Plan =
      buildRuntimePlan(*Adv, AbstractionKind::PSPDG, 8, FeatureSet(),
                       DepOracleConfig({}, &P));

  obs::traceEnable();
  ParallelRuntime RT(*Adv, Plan, ExecEngineKind::Bytecode);
  ParallelRunResult Run = RT.run();
  obs::traceDisable();
  ASSERT_TRUE(Run.Error.empty()) << Run.Error;

  std::string Path =
      "/tmp/psc-insight-test-" + std::to_string(::getpid()) + ".json";
  std::string Err;
  ASSERT_TRUE(obs::traceWrite(Path, {{"mode", "test"}}, Err)) << Err;

  InsightTrace T;
  ASSERT_TRUE(parseTraceFile(Path, T, Err)) << Err;
  std::remove(Path.c_str());
  ASSERT_FALSE(T.Events.empty());

  InsightReport R = analyzeTrace(T, Path);
  // The writer's metadata round-trips (including the overflow counter).
  bool SawMode = false, SawDropped = false;
  for (const auto &[K, V] : R.Meta) {
    SawMode |= K == "mode" && V == "test";
    SawDropped |= K == "dropped_events";
  }
  EXPECT_TRUE(SawMode);
  EXPECT_TRUE(SawDropped);

  // The misspeculating loop: recorded, attributed, costed.
  EXPECT_GE(R.Spec.Misspecs, 1u);
  EXPECT_GE(R.Spec.Rollbacks, 1u);
  EXPECT_GT(R.Spec.LostInstructions, 0u);
  const LoopInsight *Bad = nullptr;
  for (const LoopInsight &L : R.Loops)
    if (L.Misspecs)
      Bad = &L;
  ASSERT_NE(Bad, nullptr);
  EXPECT_GT(Bad->LostInstructions, 0u);
  EXPECT_GE(Bad->Invocations, 1u);

  // Acceptance criterion: the misspeculating invocation sits on the
  // critical path, flagged.
  bool OnPath = false;
  for (const CriticalPathEntry &E : R.CriticalPath)
    OnPath |= E.Name == "loop.invoke" && E.Misspec;
  EXPECT_TRUE(OnPath)
      << "the misspeculating loop.invoke must appear on the critical path";

  // Both renderers carry the story.
  std::string Human = renderInsightReport(R);
  EXPECT_NE(Human.find("MISSPECULATED"), std::string::npos);
  EXPECT_NE(Human.find("critical path"), std::string::npos);
  std::string Json = renderInsightJson({R});
  EXPECT_NE(Json.find("\"tool\":\"psc-insight\""), std::string::npos);
  EXPECT_NE(Json.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(Json.find("\"rollback_lost_instructions\""), std::string::npos);
}
