//===- MetricsTest.cpp - MetricsRegistry units ----------------------------===//
///
/// Counters, fixed-bucket histograms, and the Prometheus text exposition
/// (obs/Metrics.h): registration is stable, updates are lock-free, and
/// the rendered text carries HELP/TYPE lines, labels, cumulative
/// histogram buckets with the implicit +Inf, and sum/count.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace psc;

TEST(MetricsTest, CounterIncAndSet) {
  obs::MetricsRegistry R;
  obs::Counter &C = R.counter("test_total");
  C.inc();
  C.inc(41);
  EXPECT_EQ(C.value(), 42u);
  C.set(7); // gauge-style overwrite: export paths re-set every scrape
  EXPECT_EQ(C.value(), 7u);
}

TEST(MetricsTest, RegistrationIsStableAndKeyedByLabels) {
  obs::MetricsRegistry R;
  obs::Counter &A = R.counter("hits_total", "cache=\"module\"");
  obs::Counter &B = R.counter("hits_total", "cache=\"memo\"");
  obs::Counter &A2 = R.counter("hits_total", "cache=\"module\"");
  EXPECT_NE(&A, &B);
  EXPECT_EQ(&A, &A2) << "same (name, labels) must return the same cell";
  A.inc(3);
  B.inc(5);
  std::string Text = R.render();
  EXPECT_NE(Text.find("hits_total{cache=\"module\"} 3"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("hits_total{cache=\"memo\"} 5"), std::string::npos)
      << Text;
}

TEST(MetricsTest, HistogramBucketsAndQuantiles) {
  obs::MetricsRegistry R;
  obs::Histogram &H = R.histogram("lat_ms", {1.0, 10.0, 100.0});
  for (double V : {0.5, 0.7, 5.0, 50.0, 500.0})
    H.observe(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_NEAR(H.sum(), 556.2, 1e-9);
  // Per-bucket (non-cumulative) counts: ≤1: 2, ≤10: 1, ≤100: 1, +Inf: 1.
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(2), 1u);
  EXPECT_EQ(H.bucketCount(3), 1u);
  // The median lands in the (1, 10] bucket.
  double P50 = H.quantile(0.5);
  EXPECT_GT(P50, 1.0);
  EXPECT_LE(P50, 10.0);
}

TEST(MetricsTest, RenderEmitsPrometheusShape) {
  obs::MetricsRegistry R;
  R.counter("sessions_total", "", "Sessions served").inc(2);
  R.counter("entries", "", "Resident entries", "gauge").set(9);
  R.histogram("lat_ms", {1.0, 10.0}, "", "Latency").observe(3.0);
  std::string Text = R.render();
  EXPECT_NE(Text.find("# HELP sessions_total Sessions served"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("# TYPE sessions_total counter"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE entries gauge"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE lat_ms histogram"), std::string::npos);
  // Cumulative buckets: le="1" 0, le="10" 1, le="+Inf" 1.
  EXPECT_NE(Text.find("lat_ms_bucket{le=\"1\"} 0"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("lat_ms_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(Text.find("lat_ms_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(Text.find("lat_ms_count 1"), std::string::npos);
  EXPECT_NE(Text.find("lat_ms_sum"), std::string::npos);
}

TEST(MetricsTest, ConcurrentUpdatesDontLoseCounts) {
  obs::MetricsRegistry R;
  obs::Counter &C = R.counter("contended_total");
  obs::Histogram &H = R.histogram("contended_ms", {0.5});
  constexpr int kThreads = 8, kPer = 10000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < kThreads; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < kPer; ++I) {
        C.inc();
        H.observe(1.0);
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(C.value(), static_cast<uint64_t>(kThreads) * kPer);
  EXPECT_EQ(H.count(), static_cast<uint64_t>(kThreads) * kPer);
  EXPECT_DOUBLE_EQ(H.sum(), kThreads * kPer * 1.0);
}
