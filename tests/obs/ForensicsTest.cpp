//===- ForensicsTest.cpp - misspeculation flight recorder -----------------===//
///
/// The flight recorder (obs/Forensics.h): a real forced-misspeculation
/// run captures a fully attributed record — plan identity, the violated
/// assumption with oracle provenance, the conflicting access pair, the
/// watch-set snapshot, the rollback cost — with no raw pointers, so the
/// canonical renderer is deterministic; the ring keeps the newest
/// kMisspecRingCap records while the total stays honest; and the
/// --misspec-out artifact envelope embeds exactly the canonical record
/// lines the pscd forensics op serves.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Interpreter.h"
#include "obs/Forensics.h"
#include "profiling/DepProfiler.h"
#include "runtime/ParallelRuntime.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;
using namespace psc::obs;

namespace {

DepProfile train(const Module &M) {
  ModuleAnalyses MA(M);
  DepProfiler P(MA);
  Interpreter I(M);
  I.addObserver(&P);
  EXPECT_TRUE(I.run().Completed);
  return P.takeProfile();
}

std::string adversarialUA() {
  std::string S = findWorkload("UA")->Source;
  size_t Pos = S.find("i * 167 + 3");
  EXPECT_NE(Pos, std::string::npos);
  S.replace(Pos, 11, "i * 166 + 3");
  return S;
}

/// Forces at least one misspeculation and returns the resident records.
std::vector<MisspecRecord> forceMisspec() {
  misspecClear();
  auto Clean = compile(findWorkload("UA")->Source);
  auto Adv = compile(adversarialUA());
  EXPECT_NE(Clean, nullptr);
  EXPECT_NE(Adv, nullptr);
  if (!Clean || !Adv)
    return {};
  DepProfile P = train(*Clean);
  RuntimePlan Plan =
      buildRuntimePlan(*Adv, AbstractionKind::PSPDG, 8, FeatureSet(),
                       DepOracleConfig({}, &P));
  ParallelRuntime RT(*Adv, Plan, ExecEngineKind::Bytecode);
  ParallelRunResult R = RT.run();
  EXPECT_TRUE(R.Error.empty()) << R.Error;
  return misspecRecords();
}

} // namespace

TEST(ForensicsTest, ForcedMisspecCapturesAttributedRecord) {
  std::vector<MisspecRecord> Records = forceMisspec();
  ASSERT_GE(Records.size(), 1u);
  EXPECT_EQ(misspecTotal(), Records.size());

  const MisspecRecord &R = Records.front();
  // Plan identity.
  EXPECT_EQ(R.Fn, "main");
  EXPECT_FALSE(R.Kind.empty());
  EXPECT_EQ(R.Abstraction, "PS-PDG");
  EXPECT_EQ(R.Threads, 8u);
  EXPECT_GT(R.Header, 0u);
  // The violation: an assumed-absent dependence that manifested, with
  // the conflicting pair resolved to a named object (never a pointer).
  EXPECT_EQ(R.ViolationKind, "conflict");
  EXPECT_EQ(R.Description.rfind("assumed-absent dependence manifested", 0),
            0u)
      << R.Description;
  EXPECT_FALSE(R.Object.empty());
  EXPECT_NE(R.Object, "<unnamed>");
  EXPECT_NE(R.Description.find("'" + R.Object + "'"), std::string::npos);
  EXPECT_EQ(R.Description.find("0x"), std::string::npos)
      << "records must not leak raw pointers: " << R.Description;
  // Oracle provenance: the violated assumption names both endpoints in
  // the profile's key space.
  EXPECT_GE(R.AssumptionId, 0);
  EXPECT_FALSE(R.AssumedSrc.empty());
  EXPECT_FALSE(R.AssumedDst.empty());
  // Watch-set snapshot and rollback cost.
  EXPECT_FALSE(R.WatchSet.empty());
  EXPECT_LT(R.SrcWatch, R.WatchSet.size());
  EXPECT_LT(R.DstWatch, R.WatchSet.size());
  for (const std::string &W : R.WatchSet)
    EXPECT_FALSE(W.empty());
  EXPECT_GT(R.LostInstructions, 0u);

  // The canonical renderer is a pure function of the record.
  std::string Line = renderMisspecRecord(R);
  EXPECT_EQ(Line, renderMisspecRecord(R));
  EXPECT_EQ(Line.rfind("{\"fn\":", 0), 0u) << Line;
  EXPECT_NE(Line.find("\"violation\":{\"kind\":\"conflict\""),
            std::string::npos)
      << Line;
  EXPECT_NE(Line.find("\"oracle\":\"profile\""), std::string::npos)
      << "conflict records carry the assumption's oracle provenance";
  EXPECT_NE(Line.find("\"lost_instructions\":"), std::string::npos);
  EXPECT_EQ(Line.find('\n'), std::string::npos) << "one line per record";

  misspecClear();
  EXPECT_TRUE(misspecRecords().empty());
  EXPECT_EQ(misspecTotal(), 0u);
}

TEST(ForensicsTest, RingKeepsNewestRecordsAndHonestTotal) {
  misspecClear();
  for (unsigned I = 0; I < kMisspecRingCap + 4; ++I) {
    MisspecRecord R;
    R.Fn = "f";
    R.Header = I;
    R.ViolationKind = "conflict";
    misspecPush(std::move(R));
  }
  std::vector<MisspecRecord> Records = misspecRecords();
  ASSERT_EQ(Records.size(), kMisspecRingCap);
  EXPECT_EQ(misspecTotal(), kMisspecRingCap + 4);
  // Oldest first, newest win: headers 4 .. cap+3.
  EXPECT_EQ(Records.front().Header, 4u);
  EXPECT_EQ(Records.back().Header,
            static_cast<unsigned>(kMisspecRingCap + 3));
  misspecClear();
}

TEST(ForensicsTest, ArtifactEnvelopeEmbedsCanonicalRecordLines) {
  misspecClear();
  for (unsigned I = 0; I < 2; ++I) {
    MisspecRecord R;
    R.Fn = "main";
    R.Header = 10 + I;
    R.Kind = "DOALL";
    R.Abstraction = "pspdg";
    R.ViolationKind = "conflict";
    R.Object = "a";
    R.LostInstructions = 100 + I;
    misspecPush(std::move(R));
  }
  std::string Artifact = renderMisspecArtifact("pscc");
  EXPECT_EQ(Artifact.rfind("{\"tool\":\"pscc\",\"version\":1,\"total\":2",
                           0),
            0u)
      << Artifact;
  // Each resident record appears byte-identically — the property that
  // keeps the pscc artifact and the pscd forensics op comparable.
  for (const MisspecRecord &R : misspecRecords())
    EXPECT_NE(Artifact.find(renderMisspecRecord(R)), std::string::npos);
  EXPECT_EQ(Artifact.back(), '\n');
  misspecClear();
}
