//===- PlanDecisionTest.cpp - Plan-decision log units ---------------------===//
///
/// The `--explain` evidence chain (obs/PlanDecision.h): the renderer's
/// exact shape, the loop filter, and — end to end through
/// buildRuntimePlan — that every planned loop carries candidate verdicts
/// and that kept carried dependences name the owning oracle.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Interpreter.h"
#include "obs/PlanDecision.h"
#include "profiling/DepProfiler.h"
#include "runtime/Schedule.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

obs::PlanDecisionLog planWithLog(const Module &M, unsigned Threads,
                                 const DepOracleConfig &Cfg = {},
                                 const GrainConfig &Grain = {}) {
  obs::PlanDecisionLog Log;
  (void)buildRuntimePlan(M, AbstractionKind::PSPDG, Threads, FeatureSet(),
                         Cfg, Grain, &Log);
  return Log;
}

} // namespace

TEST(PlanDecisionTest, RendererShape) {
  obs::LoopDecision D;
  D.Fn = "main";
  D.Header = "for.header.4";
  D.HeaderIdx = 4;
  D.Depth = 1;
  D.Abstraction = "PS-PDG";
  D.Candidates.push_back({"DOALL", false, "sequential SCCs remain"});
  D.Candidates.push_back({"HELIX", true, "selected"});
  D.Blockers.push_back({"store 'a'", "load 'a'", "affine", true});
  D.Assumptions.push_back("store 'p' -> load 'p'");
  D.Final = "HELIX";
  D.Reason = "2 of 3 SCCs parallel";

  std::string Text = obs::renderLoopDecision(D);
  EXPECT_NE(Text.find("loop @main for.header.4 depth=1 [PS-PDG]"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("plan: HELIX — 2 of 3 SCCs parallel"),
            std::string::npos);
  EXPECT_NE(Text.find("DOALL -: sequential SCCs remain"), std::string::npos);
  EXPECT_NE(Text.find("HELIX +: selected"), std::string::npos);
  EXPECT_NE(Text.find("store 'a' -> load 'a'  [oracle: affine, must]"),
            std::string::npos);
  EXPECT_NE(Text.find("store 'p' -> load 'p'"), std::string::npos);
}

TEST(PlanDecisionTest, RenderLogFiltersAndHandlesEmpty) {
  obs::PlanDecisionLog Log;
  EXPECT_EQ(obs::renderDecisionLog(Log), "no loops planned\n");

  obs::LoopDecision A;
  A.Fn = "main";
  A.Header = "for.header.0";
  A.Final = "DOALL";
  A.Reason = "r";
  obs::LoopDecision B = A;
  B.Header = "for.header.4";
  Log.Loops.push_back(A);
  Log.Loops.push_back(B);

  std::string All = obs::renderDecisionLog(Log);
  EXPECT_NE(All.find("for.header.0"), std::string::npos);
  EXPECT_NE(All.find("for.header.4"), std::string::npos);

  std::string One = obs::renderDecisionLog(Log, "for.header.4");
  EXPECT_EQ(One.find("for.header.0 "), std::string::npos);
  EXPECT_NE(One.find("for.header.4"), std::string::npos);

  EXPECT_EQ(obs::renderDecisionLog(Log, "nope"),
            "no loop matches 'nope'\n");
}

TEST(PlanDecisionTest, EveryPlannedLoopCarriesCandidatesAndFinal) {
  auto M = compile(findWorkload("UA")->Source);
  ASSERT_NE(M, nullptr);
  obs::PlanDecisionLog Log = planWithLog(*M, 8);
  ASSERT_FALSE(Log.Loops.empty());
  for (const obs::LoopDecision &D : Log.Loops) {
    EXPECT_FALSE(D.Fn.empty());
    EXPECT_FALSE(D.Header.empty());
    EXPECT_FALSE(D.Candidates.empty()) << "@" << D.Fn << " " << D.Header;
    EXPECT_FALSE(D.Final.empty());
    EXPECT_FALSE(D.Reason.empty());
  }
}

TEST(PlanDecisionTest, RejectedLoopNamesTheOwningOracle) {
  // UA's sound plan must keep at least one loop sequential because of
  // carried dependences the view kept — and each kept edge names the
  // oracle that answered it.
  auto M = compile(findWorkload("UA")->Source);
  ASSERT_NE(M, nullptr);
  obs::PlanDecisionLog Log = planWithLog(*M, 8);
  bool SawBlockedLoop = false;
  for (const obs::LoopDecision &D : Log.Loops) {
    if (D.Final != "sequential" || D.Blockers.empty())
      continue;
    SawBlockedLoop = true;
    for (const obs::PlanBlocker &B : D.Blockers) {
      EXPECT_FALSE(B.Oracle.empty())
          << "@" << D.Fn << " " << D.Header << ": " << B.Src << " -> "
          << B.Dst;
      EXPECT_FALSE(B.Src.empty());
      EXPECT_FALSE(B.Dst.empty());
    }
    // The rendered record carries the oracle attribution the user sees.
    std::string Text = obs::renderLoopDecision(D);
    EXPECT_NE(Text.find("[oracle: "), std::string::npos) << Text;
  }
  EXPECT_TRUE(SawBlockedLoop)
      << "UA's sound plan should keep a loop sequential with kept edges";
}

TEST(PlanDecisionTest, SpeculativePlanRecordsAssumptionsAndCost) {
  auto M = compile(findWorkload("UA")->Source);
  ASSERT_NE(M, nullptr);
  ModuleAnalyses MA(*M);
  DepProfiler P(MA);
  Interpreter I(*M);
  I.addObserver(&P);
  ASSERT_TRUE(I.run().Completed);
  DepProfile Profile = P.takeProfile();

  obs::PlanDecisionLog Log =
      planWithLog(*M, 8, DepOracleConfig({}, &Profile));
  bool SawSpec = false;
  for (const obs::LoopDecision &D : Log.Loops) {
    if (!D.SpecConsidered)
      continue;
    SawSpec = true;
    EXPECT_FALSE(D.SpecRejected) << "clean profile: cost model accepts";
    EXPECT_GT(D.SpecThreshold, 0.0);
    EXPECT_FALSE(D.Assumptions.empty() && D.ValueAssumptions.empty())
        << "a speculative plan without assumptions explains nothing";
    std::string Text = obs::renderLoopDecision(D);
    EXPECT_NE(Text.find("cost model:"), std::string::npos) << Text;
    EXPECT_NE(Text.find("accepted"), std::string::npos) << Text;
  }
  EXPECT_TRUE(SawSpec) << "UA must speculate under its own clean profile";
}

TEST(PlanDecisionTest, GrainDemotionIsRecorded) {
  auto M = compile(findWorkload("EP")->Source);
  ASSERT_NE(M, nullptr);
  // Force demotion: one worker makes every parallel plan lose to the
  // modeled overhead, so the grain pass rewrites it to sequential and
  // the decision log must say so.
  GrainConfig Grain;
  Grain.Enabled = true;
  Grain.Workers = 1;
  obs::PlanDecisionLog Log = planWithLog(*M, 8, {}, Grain);
  bool SawDemotion = false;
  for (const obs::LoopDecision &D : Log.Loops)
    if (!D.GrainNote.empty()) {
      SawDemotion = true;
      EXPECT_EQ(D.Final, "sequential");
      EXPECT_NE(obs::renderLoopDecision(D).find("grain: "),
                std::string::npos);
    }
  EXPECT_TRUE(SawDemotion) << "1-worker grain must demote EP's DOALL";
}
