//===- TraceRuntimeTest.cpp - Runtime tracing end to end ------------------===//
///
/// The runtime's trace emission under real parallel execution:
///
///   * an 8-thread forced-misspeculation run (the spec suite's
///     adversarial UA) records per-worker events in per-thread order,
///     plus the misspec instants naming the violated assumption, the
///     rollback, and the burned-plan demotion — this is the TSan stress
///     for the recorder's concurrent hot path;
///   * the walker and bytecode engines emit the same spans for the same
///     plan (the decode pass being the bytecode engine's one extra
///     span).
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Interpreter.h"
#include "obs/Trace.h"
#include "profiling/DepProfiler.h"
#include "runtime/ParallelRuntime.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

using namespace psc;
using namespace psc::test;

namespace {

DepProfile train(const Module &M) {
  ModuleAnalyses MA(M);
  DepProfiler P(MA);
  Interpreter I(M);
  I.addObserver(&P);
  EXPECT_TRUE(I.run().Completed);
  return P.takeProfile();
}

/// UA with a non-coprime map multiplier (the spec suite's adversarial
/// input): structurally identical to clean UA, so the clean profile
/// applies — and is violated at run time.
std::string adversarialUA() {
  std::string S = findWorkload("UA")->Source;
  size_t Pos = S.find("i * 167 + 3");
  EXPECT_NE(Pos, std::string::npos);
  S.replace(Pos, 11, "i * 166 + 3");
  return S;
}

std::vector<obs::TraceEventData> traceRun(const Module &M,
                                          const RuntimePlan &Plan,
                                          ExecEngineKind Engine) {
  obs::traceEnable();
  ParallelRuntime RT(M, Plan, Engine);
  ParallelRunResult R = RT.run();
  obs::traceDisable();
  EXPECT_TRUE(R.Error.empty()) << R.Error;
  return obs::traceCollect();
}

uint64_t countNamed(const std::vector<obs::TraceEventData> &Evs,
                    const std::string &Name) {
  uint64_t N = 0;
  for (const obs::TraceEventData &E : Evs)
    N += E.Name == Name;
  return N;
}

} // namespace

TEST(TraceRuntimeTest, ForcedMisspecRunEmitsDetectionRollbackDemotion) {
  auto Clean = compile(findWorkload("UA")->Source);
  auto Adv = compile(adversarialUA());
  ASSERT_NE(Clean, nullptr);
  ASSERT_NE(Adv, nullptr);
  DepProfile P = train(*Clean);

  RuntimePlan Plan =
      buildRuntimePlan(*Adv, AbstractionKind::PSPDG, 8, FeatureSet(),
                       DepOracleConfig({}, &P));
  std::vector<obs::TraceEventData> Evs =
      traceRun(*Adv, Plan, ExecEngineKind::Bytecode);

  // Detection, rollback, and demotion instants all present.
  EXPECT_GE(countNamed(Evs, "spec.misspec"), 1u);
  EXPECT_GE(countNamed(Evs, "spec.rollback"), 1u);
  EXPECT_GE(countNamed(Evs, "plan.burned"), 1u);
  // The misspec instant names the violated assumption.
  bool SawViolation = false;
  for (const obs::TraceEventData &E : Evs)
    if (E.Name == "spec.misspec" && E.Detail.find("header=") == 0 &&
        E.Detail.size() > std::string("header=N ").size())
      SawViolation = true;
  EXPECT_TRUE(SawViolation)
      << "spec.misspec must carry the violated assumption's description";

  // Speculative workers traced their chunks/iterations, and a rollback
  // implies the loop re-ran under its sound schedule afterwards.
  EXPECT_GE(countNamed(Evs, "loop.invoke"), 1u);
  EXPECT_GE(countNamed(Evs, "spec.validate"), 1u);

  // Per-thread event ordering: traceCollect sorts by (tid, start); the
  // starts within each tid must be non-decreasing and events from
  // multiple worker threads must be present at 8 threads.
  std::map<unsigned, uint64_t> LastStart;
  std::map<unsigned, uint64_t> PerTid;
  for (const obs::TraceEventData &E : Evs) {
    auto It = LastStart.find(E.Tid);
    if (It != LastStart.end())
      EXPECT_GE(E.StartNs, It->second) << "tid " << E.Tid;
    LastStart[E.Tid] = E.StartNs;
    ++PerTid[E.Tid];
  }
  EXPECT_GT(PerTid.size(), 1u) << "worker threads must record events";
}

TEST(TraceRuntimeTest, WalkerAndBytecodeEmitTheSameSpanSequence) {
  // The spans live in the scheduler layer, so both engines must emit
  // the same *multiset* of spans for the same plan (chunk stealing
  // between master and worker makes the flat interleaving — and the
  // first-record tid order — scheduling-dependent, so the sequence
  // comparison is per structure, not per flat event order).
  auto M = compile(findWorkload("EP")->Source);
  ASSERT_NE(M, nullptr);
  RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 1);

  struct EngineTrace {
    std::vector<std::string> SortedNames;
    const obs::TraceEventData *Run = nullptr;
    const obs::TraceEventData *Invoke = nullptr;
    std::vector<obs::TraceEventData> Evs;
  };
  auto Capture = [&](ExecEngineKind Engine) {
    EngineTrace T;
    T.Evs = traceRun(*M, Plan, Engine);
    for (const obs::TraceEventData &E : T.Evs) {
      if (E.Instant)
        continue;
      if (E.Name == "run.decode")
        continue; // the bytecode engine's one extra span
      T.SortedNames.push_back(E.Name);
      if (E.Name == "run")
        T.Run = &E;
      if (E.Name == "loop.invoke")
        T.Invoke = &E;
    }
    std::sort(T.SortedNames.begin(), T.SortedNames.end());
    return T;
  };

  EngineTrace Walker = Capture(ExecEngineKind::Walker);
  EngineTrace Bytecode = Capture(ExecEngineKind::Bytecode);
  ASSERT_FALSE(Walker.SortedNames.empty());
  EXPECT_EQ(Walker.SortedNames, Bytecode.SortedNames);
  for (const EngineTrace *T : {&Walker, &Bytecode}) {
    // Exactly one run span, fired identically from both engines, on the
    // same (master) thread as the loop invocation it encloses.
    EXPECT_EQ(std::count(T->SortedNames.begin(), T->SortedNames.end(),
                         "run"),
              1);
    ASSERT_NE(T->Run, nullptr);
    ASSERT_NE(T->Invoke, nullptr);
    EXPECT_EQ(T->Run->Tid, T->Invoke->Tid);
    EXPECT_GE(T->Invoke->StartNs, T->Run->StartNs);
    EXPECT_LE(T->Invoke->StartNs + T->Invoke->DurNs,
              T->Run->StartNs + T->Run->DurNs);
  }
}

TEST(TraceRuntimeTest, CleanSpeculativeRunEmitsNoMisspecEvents) {
  auto M = compile(findWorkload("UA")->Source);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  RuntimePlan Plan =
      buildRuntimePlan(*M, AbstractionKind::PSPDG, 4, FeatureSet(),
                       DepOracleConfig({}, &P));
  std::vector<obs::TraceEventData> Evs =
      traceRun(*M, Plan, ExecEngineKind::Bytecode);
  EXPECT_EQ(countNamed(Evs, "spec.misspec"), 0u);
  EXPECT_EQ(countNamed(Evs, "spec.rollback"), 0u);
  EXPECT_GE(countNamed(Evs, "spec.validate"), 1u)
      << "speculative loops must still validate";
  EXPECT_GE(countNamed(Evs, "overlay.commit"), 1u);
}
