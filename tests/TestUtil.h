//===- TestUtil.h - Shared helpers for the test suite ------------*- C++ -*-===//
///
/// \file
/// Small helpers shared by the gtest suites: compile PSC snippets, build
/// the analysis stack for a function, fetch loops by header name.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_TESTS_TESTUTIL_H
#define PSPDG_TESTS_TESTUTIL_H

#include "analysis/DependenceAnalysis.h"
#include "frontend/Frontend.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace psc::test {

/// Compiles \p Source, failing the test on diagnostics.
inline std::unique_ptr<Module> compile(const std::string &Source) {
  CompileResult R = compileSource(Source, "test");
  if (!R.ok()) {
    std::string Msg;
    for (const std::string &D : R.Diagnostics)
      Msg += D + "\n";
    ADD_FAILURE() << "compilation failed:\n" << Msg;
    return nullptr;
  }
  return std::move(R.M);
}

/// Compiles expecting failure; returns the diagnostics.
inline std::vector<std::string> compileExpectError(const std::string &Source) {
  CompileResult R = compileSource(Source, "test");
  EXPECT_FALSE(R.ok()) << "expected compilation to fail";
  return R.Diagnostics;
}

/// Analysis bundle over one function of a compiled module. DI materializes
/// its edge set through Stack, so tests can combine edge-level assertions
/// (DI->edges()) with direct oracle queries and cache/stat checks (Stack).
struct Compiled {
  std::unique_ptr<Module> M;
  const Function *F = nullptr;
  std::unique_ptr<FunctionAnalysis> FA;
  std::unique_ptr<DepOracleStack> Stack;
  std::unique_ptr<DependenceInfo> DI;
};

/// Compiles and analyzes \p FuncName (default "main").
inline Compiled analyze(const std::string &Source,
                        const std::string &FuncName = "main") {
  Compiled C;
  C.M = compile(Source);
  if (!C.M)
    return C;
  C.F = C.M->getFunction(FuncName);
  EXPECT_NE(C.F, nullptr) << "no function " << FuncName;
  if (!C.F)
    return C;
  C.FA = std::make_unique<FunctionAnalysis>(*C.F);
  C.Stack = std::make_unique<DepOracleStack>(*C.FA);
  C.DI = std::make_unique<DependenceInfo>(*C.FA, *C.Stack);
  return C;
}

/// First loop whose header block name starts with \p Prefix, or null.
inline const Loop *loopByHeaderPrefix(const FunctionAnalysis &FA,
                                      const std::string &Prefix) {
  for (const Loop *L : FA.loopInfo().loops()) {
    const std::string &Name =
        FA.function().getBlock(L->getHeader())->getName();
    if (Name.rfind(Prefix, 0) == 0)
      return L;
  }
  return nullptr;
}

/// N-th loop in outer-to-inner, header order.
inline const Loop *loopAt(const FunctionAnalysis &FA, unsigned Index) {
  const auto &Loops = FA.loopInfo().loops();
  return Index < Loops.size() ? Loops[Index] : nullptr;
}

} // namespace psc::test

#endif // PSPDG_TESTS_TESTUTIL_H
