//===- PropertyTest.cpp - Cross-workload invariants ---------------*- C++ -*-===//
///
/// Property-style sweeps over the whole benchmark suite: invariants that
/// must hold for every kernel and every PS-PDG feature configuration.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/CriticalPath.h"
#include "pspdg/Fingerprint.h"
#include "pspdg/PSPDGBuilder.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

class WorkloadPropertyTest : public ::testing::TestWithParam<Workload> {};

TEST_P(WorkloadPropertyTest, FingerprintIsDeterministic) {
  const Workload &W = GetParam();
  auto M1 = compile(W.Source);
  auto M2 = compile(W.Source);
  ASSERT_TRUE(M1 && M2);
  FunctionAnalysis FA1(*M1->getFunction("main"));
  FunctionAnalysis FA2(*M2->getFunction("main"));
  DepOracleStack S1(FA1), S2(FA2);
  auto G1 = buildPSPDG(FA1, S1);
  auto G2 = buildPSPDG(FA2, S2);
  EXPECT_EQ(fingerprint(*G1), fingerprint(*G2)) << W.Name;
}

TEST_P(WorkloadPropertyTest, AblationNeverAddsInformation) {
  // Removing a feature may only shrink the edge-removal power: the full
  // PS-PDG's directed carried-edge count is a lower bound for every
  // ablation.
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_TRUE(M);
  FunctionAnalysis FA(*M->getFunction("main"));
  DepOracleStack Stack(FA);

  auto CountCarried = [](const PSPDG &G) {
    size_t N = 0;
    for (const PSDirectedEdge &E : G.directedEdges())
      N += E.CarriedAtHeaders.size();
    return N;
  };

  auto Full = buildPSPDG(FA, Stack, FeatureSet::full());
  size_t FullCarried = CountCarried(*Full);
  for (const FeatureSet &F :
       {FeatureSet::withoutHierarchicalNodes(),
        FeatureSet::withoutNodeTraits(), FeatureSet::withoutContexts(),
        FeatureSet::withoutDataSelectors(),
        FeatureSet::withoutParallelVariables()}) {
    auto Ablated = buildPSPDG(FA, Stack, F);
    EXPECT_GE(CountCarried(*Ablated), FullCarried)
        << W.Name << " " << F.str();
  }
}

TEST_P(WorkloadPropertyTest, AblatedCriticalPathNeverFaster) {
  // Soundness: removing expressiveness can only lengthen (or keep) the
  // best plan's critical path.
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_TRUE(M);

  auto CP = [&](const FeatureSet &F) {
    CriticalPathModel Model(*M, AbstractionKind::PSPDG, F);
    CriticalPathEvaluator Eval(Model);
    Interpreter I(*M);
    I.addObserver(&Eval);
    I.run();
    return Eval.criticalPath();
  };

  double Full = CP(FeatureSet::full());
  for (const FeatureSet &F :
       {FeatureSet::withoutHierarchicalNodes(),
        FeatureSet::withoutNodeTraits(), FeatureSet::withoutContexts(),
        FeatureSet::withoutDataSelectors(),
        FeatureSet::withoutParallelVariables()})
    EXPECT_GE(CP(F), Full * 0.999) << W.Name << " " << F.str();
}

TEST_P(WorkloadPropertyTest, PSPDGEdgesAreSubsetOfDependences) {
  // The builder only removes/annotates; it never invents dependences.
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_TRUE(M);
  FunctionAnalysis FA(*M->getFunction("main"));
  DepOracleStack Stack(FA);
  DependenceInfo DI(FA, Stack);
  auto G = buildPSPDG(FA, Stack);
  EXPECT_LE(G->directedEdges().size(), DI.edges().size()) << W.Name;
  // The PS-PDG build re-issued the shim's queries: all served by the cache.
  EXPECT_GT(Stack.cacheStats().Hits, 0u) << W.Name;
}

TEST_P(WorkloadPropertyTest, GraphStructureIsWellFormed) {
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_TRUE(M);
  FunctionAnalysis FA(*M->getFunction("main"));
  DepOracleStack Stack(FA);
  auto G = buildPSPDG(FA, Stack);

  // Every node except the root has a parent, and parent/child lists agree.
  for (PSNodeId N = 0; N < G->numNodes(); ++N) {
    const PSNode &Node = G->node(N);
    if (N == G->root()) {
      EXPECT_EQ(Node.Parent, NoContext);
      continue;
    }
    ASSERT_NE(Node.Parent, NoContext) << W.Name << " node " << N;
    const PSNode &Parent = G->node(Node.Parent);
    bool Listed = false;
    for (PSNodeId C : Parent.Children)
      if (C == N)
        Listed = true;
    EXPECT_TRUE(Listed) << W.Name << " node " << N;
  }
  // Edge endpoints are valid nodes.
  for (const PSDirectedEdge &E : G->directedEdges()) {
    EXPECT_LT(E.Src, G->numNodes());
    EXPECT_LT(E.Dst, G->numNodes());
  }
  for (const PSUndirectedEdge &E : G->undirectedEdges()) {
    EXPECT_LT(E.A, G->numNodes());
    EXPECT_LT(E.B, G->numNodes());
  }
}

INSTANTIATE_TEST_SUITE_P(
    NAS, WorkloadPropertyTest, ::testing::ValuesIn(nasWorkloads()),
    [](const ::testing::TestParamInfo<Workload> &Info) {
      return Info.param.Name;
    });

} // namespace
