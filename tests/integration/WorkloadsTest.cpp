//===- WorkloadsTest.cpp - NAS-like kernels end-to-end ------------*- C++ -*-===//
///
/// Integration tests over the eight benchmark kernels: they compile,
/// verify, run deterministically to their golden checksums, and the
/// experiment pipeline reproduces the paper's qualitative results on them
/// (PS-PDG ≥ J&K ≥ PDG in expressive power; PS-PDG's plans never slower
/// than the programmer's).
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Coverage.h"
#include "emulator/CriticalPath.h"
#include "parallel/PlanEnumerator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

class WorkloadTest : public ::testing::TestWithParam<Workload> {};

TEST_P(WorkloadTest, CompilesAndVerifies) {
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_NE(M, nullptr);
}

TEST_P(WorkloadTest, RunsToGoldenChecksum) {
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_NE(M, nullptr);
  Interpreter I(*M);
  RunResult R = I.run();
  ASSERT_TRUE(R.Completed);
  ASSERT_FALSE(R.Output.empty());
  EXPECT_EQ(R.Output.back(), std::to_string(W.ExpectedChecksum))
      << W.Name << " checksum drifted";
}

TEST_P(WorkloadTest, DeterministicAcrossRuns) {
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_NE(M, nullptr);
  Interpreter I1(*M), I2(*M);
  RunResult R1 = I1.run(), R2 = I2.run();
  EXPECT_EQ(R1.Output, R2.Output);
  EXPECT_EQ(R1.InstructionsExecuted, R2.InstructionsExecuted);
}

TEST_P(WorkloadTest, PSPDGOptionsDominateOpenMP) {
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_NE(M, nullptr);
  OptionCount OpenMP = enumerateOptions(*M, AbstractionKind::OpenMP);
  OptionCount PSPDG = enumerateOptions(*M, AbstractionKind::PSPDG);
  EXPECT_GT(PSPDG.Total, OpenMP.Total)
      << W.Name << ": the PS-PDG must expand the programmer's options";
}

TEST_P(WorkloadTest, PSPDGOptionsAtLeastJK) {
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_NE(M, nullptr);
  OptionCount JK = enumerateOptions(*M, AbstractionKind::JK);
  OptionCount PSPDG = enumerateOptions(*M, AbstractionKind::PSPDG);
  // The DOALL-only-counts-as-DOALL rule can cost a few HELIX options, so
  // allow a small tolerance (see EXPERIMENTS.md).
  EXPECT_GE(PSPDG.Total * 100, JK.Total * 95) << W.Name;
}

TEST_P(WorkloadTest, CriticalPathOrdering) {
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_NE(M, nullptr);
  CriticalPathReport R = evaluateCriticalPaths(*M);
  // The PS-PDG plan is never worse than the programmer's (paper §6.3:
  // "the PS-PDG ensures no loss of parallelism").
  EXPECT_LE(R.PSPDG, R.OpenMP * 1.001) << W.Name;
  // And never worse than what the weaker abstractions justify.
  EXPECT_LE(R.PSPDG, R.JK * 1.001) << W.Name;
  EXPECT_LE(R.PSPDG, R.PDG * 1.001) << W.Name;
  // All critical paths are bounded by the sequential execution.
  EXPECT_LE(R.OpenMP,
            static_cast<double>(R.TotalDynamicInstructions) + 1)
      << W.Name;
}

TEST_P(WorkloadTest, HotLoopsExist) {
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_NE(M, nullptr);
  ModuleAnalyses MA(*M);
  CoverageProfiler Cov(MA);
  Interpreter I(*M);
  I.addObserver(&Cov);
  I.run();
  unsigned Hot = 0;
  for (auto &[Key, Frac] : Cov.coverage())
    if (Frac >= 0.01)
      ++Hot;
  EXPECT_GE(Hot, 2u) << W.Name << " should have multiple hot loops";
}

INSTANTIATE_TEST_SUITE_P(
    NAS, WorkloadTest, ::testing::ValuesIn(nasWorkloads()),
    [](const ::testing::TestParamInfo<Workload> &Info) {
      return Info.param.Name;
    });

TEST(WorkloadRegistryTest, AllEightPresent) {
  EXPECT_EQ(nasWorkloads().size(), 8u);
  for (const char *Name : {"BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP"})
    EXPECT_NE(findWorkload(Name), nullptr) << Name;
  EXPECT_EQ(findWorkload("XX"), nullptr);
}

TEST(WorkloadAggregateTest, PDGLosesToOpenMPOnCriticalPath) {
  // The paper's motivating result: across the suite, the sequential-IR PDG
  // cannot recover the programmer's parallel plan (Fig. 14, PDG < 1x).
  unsigned PDGWorse = 0;
  for (const Workload &W : nasWorkloads()) {
    auto M = compile(W.Source);
    ASSERT_NE(M, nullptr);
    CriticalPathReport R = evaluateCriticalPaths(*M);
    if (R.PDG > R.OpenMP)
      ++PDGWorse;
  }
  EXPECT_GE(PDGWorse, 6u); // nearly all benchmarks
}

TEST(WorkloadAggregateTest, PSPDGUnlocksBeyondJKSomewhere) {
  // J&K is insufficient on benchmarks that rely on data properties and
  // orderless sections (paper: "e.g., IS"/"e.g., MG").
  bool Somewhere = false;
  for (const char *Name : {"IS", "MG", "FT", "LU"}) {
    auto M = compile(findWorkload(Name)->Source);
    ASSERT_NE(M, nullptr);
    CriticalPathReport R = evaluateCriticalPaths(*M);
    if (R.PSPDG < R.JK / 2.0)
      Somewhere = true;
  }
  EXPECT_TRUE(Somewhere);
}

} // namespace
