//===- SpecSelectionTest.cpp - Speculation-aware plan selection -----------===//
///
/// ROADMAP "speculation-aware plan *selection*": speculative plans are
/// costed by assumption count and historical misspeculation rate instead
/// of structure alone. Covers the cost model itself, the plan compiler's
/// sound fallback (UA's scatter demotes from speculative DOALL back to the
/// gate-serialized HELIX the sound stack justifies), feedback accounting,
/// and the enumerator's cost-aware option counting.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Interpreter.h"
#include "parallel/PlanEnumerator.h"
#include "profiling/DepProfiler.h"
#include "runtime/ParallelRuntime.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

DepProfile train(const Module &M) {
  ModuleAnalyses MA(M);
  DepProfiler P(MA);
  Interpreter I(M);
  I.addObserver(&P);
  EXPECT_TRUE(I.run().Completed);
  return P.takeProfile();
}

TEST(SpecCostModelTest, CostGrowsWithObligationsAndHistory) {
  // No history: obligations alone decide. The calibrated weight (8
  // instr-equivalents per obligation per iteration, see SpecCostModel's
  // derivation comment) puts the cold-profile boundary at 32 obligations
  // against the 256-instr-equivalent validation budget.
  EXPECT_TRUE(acceptSpeculativePlan(3, 0, 0));
  EXPECT_TRUE(acceptSpeculativePlan(32, 0, 0));
  EXPECT_FALSE(acceptSpeculativePlan(33, 0, 0));

  // One misspeculation in one attempt: rejected outright.
  EXPECT_FALSE(acceptSpeculativePlan(1, 1, 1));
  // The same misspeculation diluted by clean attempts: accepted again —
  // the rate, not the count, is the signal.
  EXPECT_TRUE(acceptSpeculativePlan(1, 100, 1));

  EXPECT_GT(speculativePlanCost(3, 2, 1), speculativePlanCost(3, 2, 0));
  EXPECT_GT(speculativePlanCost(9, 0, 0), speculativePlanCost(3, 0, 0));
  EXPECT_EQ(speculativePlanCost(0, 0, 0), 0.0);
}

TEST(SpecSelectionTest, MisspecHistoryDemotesUAScatterToSoundHELIX) {
  auto M = compile(findWorkload("UA")->Source);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);

  RuntimePlan Fresh = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8,
                                       FeatureSet(), DepOracleConfig({}, &P));
  RuntimePlan Sound = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8);

  // Record a 100% misspeculation history on every speculative loop.
  unsigned Speculative = 0;
  for (const auto &[Key, LS] : Fresh.Loops)
    if (LS.Speculative) {
      ++Speculative;
      P.recordSpecOutcome(Key.first->getName(), Key.second, /*Attempts=*/2,
                          /*Misspecs=*/2);
    }
  ASSERT_GE(Speculative, 2u);

  RuntimePlan Burned = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8,
                                        FeatureSet(), DepOracleConfig({}, &P));
  for (const auto &[Key, LS] : Burned.Loops) {
    EXPECT_FALSE(LS.Speculative)
        << "a fully-misspeculating history must reject speculation";
    const LoopSchedule *SoundLS = Sound.scheduleFor(Key.first, Key.second);
    ASSERT_NE(SoundLS, nullptr);
    EXPECT_EQ(LS.Kind, SoundLS->Kind)
        << "the fallback must be the sound alternative, not bare "
           "sequential";
    if (Fresh.scheduleFor(Key.first, Key.second)->Speculative)
      EXPECT_NE(LS.Reason.find("rejected by cost model"), std::string::npos)
          << LS.Reason;
  }

  // And the demoted plan still runs bit-identically.
  Interpreter Seq(*M);
  RunResult SeqR = Seq.run();
  ParallelRuntime RT(*M, Burned);
  ParallelRunResult Par = RT.run();
  ASSERT_TRUE(Par.Error.empty());
  EXPECT_EQ(Par.R.Output, SeqR.Output);
  EXPECT_EQ(Par.R.ExitValue, SeqR.ExitValue);
}

TEST(SpecSelectionTest, CleanHistoryKeepsSpeculation) {
  auto M = compile(findWorkload("UA")->Source);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  RuntimePlan Fresh = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8,
                                       FeatureSet(), DepOracleConfig({}, &P));
  for (const auto &[Key, LS] : Fresh.Loops)
    if (LS.Speculative)
      P.recordSpecOutcome(Key.first->getName(), Key.second, /*Attempts=*/50,
                          /*Misspecs=*/0);
  RuntimePlan Again = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8,
                                       FeatureSet(), DepOracleConfig({}, &P));
  unsigned FreshSpec = 0, AgainSpec = 0;
  for (const auto &[Key, LS] : Fresh.Loops)
    FreshSpec += LS.Speculative;
  for (const auto &[Key, LS] : Again.Loops)
    AgainSpec += LS.Speculative;
  EXPECT_EQ(FreshSpec, AgainSpec) << "clean history must not demote";
}

TEST(SpecSelectionTest, EnumeratorCountsRejectedLoopsFromSoundView) {
  auto M = compile(findWorkload("UA")->Source);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);

  OptionCount Fresh = enumerateOptions(*M, AbstractionKind::PSPDG, {},
                                       nullptr, FeatureSet(),
                                       DepOracleConfig({}, &P));
  // Burn every loop with history.
  for (auto &[Name, F] : P.Functions)
    for (auto &[Header, L] : F.Loops) {
      L.SpecAttempts = 2;
      L.SpecMisspecs = 2;
    }
  OptionCount Burned = enumerateOptions(*M, AbstractionKind::PSPDG, {},
                                        nullptr, FeatureSet(),
                                        DepOracleConfig({}, &P));
  OptionCount Sound = enumerateOptions(*M, AbstractionKind::PSPDG);

  bool SawRejected = false;
  for (const LoopOptions &LO : Burned.PerLoop)
    if (LO.SpecRejected) {
      SawRejected = true;
      EXPECT_GT(LO.SpecCost, 64.0);
    }
  EXPECT_TRUE(SawRejected);
  EXPECT_EQ(Burned.DOALLLoops, Sound.DOALLLoops)
      << "cost-rejected speculation must count sound structure";
  EXPECT_GT(Fresh.DOALLLoops, Burned.DOALLLoops);
}

} // namespace
