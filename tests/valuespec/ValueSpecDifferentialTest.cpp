//===- ValueSpecDifferentialTest.cpp - Value speculation end to end -------===//
///
/// The value & reduction speculation acceptance contract (ISSUE 5):
///
///   * RX's bins loop — rejected by the sound compiler with "writes
///     custom-reducible storage (no runtime combiner)" — executes as a
///     speculative DOALL with the registered combiner, bit-identical to
///     the sequential run on both engines at 1/2/8 threads;
///   * RX's cursor loop — blocked by an unprovable carried scalar —
///     executes as a speculative DOALL under a strided value prediction;
///   * forced value misspeculations (adversarial inputs breaking the
///     trained reduction shape or the trained stride) detect, roll back,
///     and re-execute sequentially bit-identically;
///   * value-speculative runs are deterministic.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Interpreter.h"
#include "profiling/DepProfiler.h"
#include "runtime/ParallelRuntime.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

DepProfile train(const Module &M) {
  ModuleAnalyses MA(M);
  DepProfiler P(MA);
  Interpreter I(M);
  I.addObserver(&P);
  EXPECT_TRUE(I.run().Completed);
  return P.takeProfile();
}

struct SpecRun {
  ParallelRunResult Par;
  RunResult Seq;
  uint64_t totalMisspeculations() const {
    uint64_t N = 0;
    for (const LoopExecStat &L : Par.Loops)
      N += L.Misspeculations;
    return N;
  }
};

SpecRun runSpec(const Module &M, const DepProfile &Profile, unsigned Threads,
                ExecEngineKind Engine, const std::string &What) {
  SpecRun R;
  Interpreter Seq(M);
  Seq.setEngine(Engine);
  R.Seq = Seq.run();

  RuntimePlan Plan = buildRuntimePlan(M, AbstractionKind::PSPDG, Threads,
                                      FeatureSet(),
                                      DepOracleConfig({}, &Profile));
  ParallelRuntime RT(M, Plan, Engine);
  R.Par = RT.run();
  EXPECT_TRUE(R.Par.Error.empty()) << What << ": " << R.Par.Error;
  EXPECT_EQ(R.Par.R.ExitValue, R.Seq.ExitValue) << What;
  EXPECT_EQ(R.Par.R.Output, R.Seq.Output) << What;
  return R;
}

// --- The acceptance criterion: rejected loop → speculative DOALL ------------

TEST(ValueSpecPlanGainTest, RejectedReducibleLoopBecomesSpeculativeDOALL) {
  auto M = compile(findWorkload("RX")->Source);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);

  RuntimePlan Sound = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8);
  RuntimePlan Spec = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8,
                                      FeatureSet(), DepOracleConfig({}, &P));

  bool SawPromotedReduction = false, SawValuePrediction = false;
  bool SawStrided = false;
  for (const auto &[Key, LS] : Spec.Loops) {
    const LoopSchedule *SoundLS = Sound.scheduleFor(Key.first, Key.second);
    ASSERT_NE(SoundLS, nullptr);
    if (!LS.SpecReductions.empty()) {
      SawPromotedReduction = true;
      // The sound compiler rejects THIS loop with the historical guard.
      EXPECT_EQ(SoundLS->Kind, ScheduleKind::Sequential);
      EXPECT_NE(SoundLS->Reason.find(
                    "writes custom-reducible storage (no runtime combiner)"),
                std::string::npos)
          << SoundLS->Reason;
      // Promoted: speculative DOALL with a runnable combiner and at least
      // one guarded cold access.
      EXPECT_EQ(LS.Kind, ScheduleKind::DOALL);
      EXPECT_TRUE(LS.Speculative);
      EXPECT_NE(LS.SpecReductions[0].Combiner, nullptr);
      EXPECT_FALSE(LS.GuardWatchOf.empty());
    }
    if (!LS.ValuePreds.empty()) {
      SawValuePrediction = true;
      EXPECT_EQ(LS.Kind, ScheduleKind::DOALL);
      EXPECT_TRUE(LS.Speculative);
      EXPECT_EQ(SoundLS->Kind, ScheduleKind::Sequential)
          << "the carried scalar blocks every sound plan";
      for (const ValuePrediction &VP : LS.ValuePreds)
        SawStrided |= VP.Kind == ValueClassKind::Strided;
    }
  }
  EXPECT_TRUE(SawPromotedReduction);
  EXPECT_TRUE(SawValuePrediction);
  EXPECT_TRUE(SawStrided) << "the cursor loop must carry a strided pred";
}

TEST(ValueSpecPlanGainTest, CGMatrixBuildGainsDOALLFromComposedStages) {
  // The organic cross-workload win: CG's matrix-build loop composes value
  // speculation (strided nnz, write-first inner IV) with memory
  // speculation (indirect colidx/a stores) into one speculative DOALL.
  auto M = compile(findWorkload("CG")->Source);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  RuntimePlan Sound = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8);
  RuntimePlan Spec = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8,
                                      FeatureSet(), DepOracleConfig({}, &P));
  bool SawComposed = false;
  for (const auto &[Key, LS] : Spec.Loops) {
    if (LS.Kind == ScheduleKind::DOALL && !LS.ValuePreds.empty() &&
        !LS.Assumptions.empty()) {
      SawComposed = true;
      const LoopSchedule *SoundLS = Sound.scheduleFor(Key.first, Key.second);
      ASSERT_NE(SoundLS, nullptr);
      EXPECT_EQ(SoundLS->Kind, ScheduleKind::Sequential);
    }
  }
  EXPECT_TRUE(SawComposed);
}

// --- Differential ------------------------------------------------------------

class ValueSpecEquivalence
    : public ::testing::TestWithParam<std::tuple<unsigned, ExecEngineKind>> {
};

TEST_P(ValueSpecEquivalence, RXMatchesSequentialWithoutMisspeculation) {
  unsigned Threads = std::get<0>(GetParam());
  ExecEngineKind Engine = std::get<1>(GetParam());
  auto M = compile(findWorkload("RX")->Source);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  SpecRun R = runSpec(*M, P, Threads, Engine, "RX");
  EXPECT_EQ(R.totalMisspeculations(), 0u)
      << "training input == running input: nothing may misspeculate";
  unsigned Promoted = 0, Predicted = 0;
  for (const LoopExecStat &L : R.Par.Loops) {
    Promoted += L.SpecReductions;
    Predicted += L.ValuePreds;
  }
  EXPECT_GE(Promoted, 1u);
  EXPECT_GE(Predicted, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndEngines, ValueSpecEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 8u),
                       ::testing::Values(ExecEngineKind::Bytecode,
                                         ExecEngineKind::Walker)),
    [](const ::testing::TestParamInfo<std::tuple<unsigned, ExecEngineKind>>
           &I) {
      return std::string(execEngineName(std::get<1>(I.param))) + "_t" +
             std::to_string(std::get<0>(I.param));
    });

// --- Forced misspeculation ---------------------------------------------------

/// RX with the rebinning reset enabled: the guarded cold store executes,
/// violating the promoted reduction's shape assumption. Structure is
/// identical to the trained RX (a global-initializer swap), so the clean
/// profile applies — and must be caught.
std::string adversarialReduction() {
  std::string S = findWorkload("RX")->Source;
  size_t Pos = S.find("int reset_len = 0;");
  EXPECT_NE(Pos, std::string::npos);
  S.replace(Pos, 18, "int reset_len = 4;");
  return S;
}

/// RX with a perturbed stride table: iterations past 200 advance the
/// cursor by 3 instead of the trained 2 — the write lands off the
/// predicted stride.
std::string adversarialStride() {
  std::string S = findWorkload("RX")->Source;
  size_t Pos = S.find("2 + (i / 300)");
  EXPECT_NE(Pos, std::string::npos);
  S.replace(Pos, 13, "2 + (i / 200)");
  return S;
}

class ValueMisspeculationRollback
    : public ::testing::TestWithParam<std::tuple<unsigned, ExecEngineKind>> {
};

TEST_P(ValueMisspeculationRollback, GuardViolationDetectsAndRollsBack) {
  unsigned Threads = std::get<0>(GetParam());
  ExecEngineKind Engine = std::get<1>(GetParam());
  auto Clean = compile(findWorkload("RX")->Source);
  auto Adv = compile(adversarialReduction());
  ASSERT_NE(Clean, nullptr);
  ASSERT_NE(Adv, nullptr);
  DepProfile P = train(*Clean);

  SpecRun R = runSpec(*Adv, P, Threads, Engine, "RX-adversarial-reduction");
  uint64_t ReductionMisspecs = 0;
  for (const LoopExecStat &L : R.Par.Loops) {
    if (L.SpecReductions)
      ReductionMisspecs += L.Misspeculations;
    EXPECT_LE(L.Misspeculations, 1u)
        << "a blown schedule must not retry within the run";
  }
  EXPECT_GE(ReductionMisspecs, 1u)
      << "the guarded cold store must trip the promoted reduction";
}

TEST_P(ValueMisspeculationRollback, StrideViolationDetectsAndRollsBack) {
  unsigned Threads = std::get<0>(GetParam());
  ExecEngineKind Engine = std::get<1>(GetParam());
  auto Clean = compile(findWorkload("RX")->Source);
  auto Adv = compile(adversarialStride());
  ASSERT_NE(Clean, nullptr);
  ASSERT_NE(Adv, nullptr);
  DepProfile P = train(*Clean);

  SpecRun R = runSpec(*Adv, P, Threads, Engine, "RX-adversarial-stride");
  uint64_t ValueMisspecs = 0;
  for (const LoopExecStat &L : R.Par.Loops) {
    if (L.ValuePreds)
      ValueMisspecs += L.Misspeculations;
    EXPECT_LE(L.Misspeculations, 1u);
  }
  EXPECT_GE(ValueMisspecs, 1u)
      << "the off-stride write must trip the value prediction";
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndEngines, ValueMisspeculationRollback,
    ::testing::Combine(::testing::Values(1u, 2u, 8u),
                       ::testing::Values(ExecEngineKind::Bytecode,
                                         ExecEngineKind::Walker)),
    [](const ::testing::TestParamInfo<std::tuple<unsigned, ExecEngineKind>>
           &I) {
      return std::string(execEngineName(std::get<1>(I.param))) + "_t" +
             std::to_string(std::get<0>(I.param));
    });

// --- Determinism -------------------------------------------------------------

TEST(ValueSpecDeterminismTest, ValueSpeculativeRunsAreDeterministic) {
  auto M = compile(findWorkload("RX")->Source);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8,
                                      FeatureSet(), DepOracleConfig({}, &P));
  ParallelRuntime RT(*M, Plan);
  ParallelRunResult A = RT.run();
  ParallelRunResult B = RT.run();
  ASSERT_TRUE(A.Error.empty());
  EXPECT_EQ(A.R.Output, B.R.Output);
  EXPECT_EQ(A.R.ExitValue, B.R.ExitValue);
}

} // namespace
