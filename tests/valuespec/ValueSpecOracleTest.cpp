//===- ValueSpecOracleTest.cpp - Value-spec downgrades + reduction shape --===//
///
/// The middle layer of the value-speculation pillar: the ValueSpecOracle's
/// downgrade conditions (profile-classified scalars, shape-confirmed
/// reductions, staleness/ablation gating) and the reduction-shape analysis
/// (conforming additive RMW, cold non-conforming accesses, combiner
/// purity), plus the view-level ValueAssumption recording.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "analysis/ValueSpec.h"
#include "emulator/Interpreter.h"
#include "parallel/AbstractionView.h"
#include "parallel/LoopSCCDAG.h"
#include "profiling/DepProfiler.h"
#include "pspdg/Fingerprint.h"
#include "pspdg/PSPDGBuilder.h"
#include "runtime/Schedule.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

DepProfile train(const Module &M) {
  ModuleAnalyses MA(M);
  DepProfiler P(MA);
  Interpreter I(M);
  I.addObserver(&P);
  EXPECT_TRUE(I.run().Completed);
  return P.takeProfile();
}

/// Strided-cursor program: `pos` is loop-carried, unprovable, strided 2.
const char *CursorSource = R"PSC(
int out[128];
int pos = 0;
int main() {
  int i;
  for (i = 0; i < 32; i++) {
    pos = pos + 2;
    out[pos] = out[pos] + i;
  }
  print(pos);
  return 0;
}
)PSC";

TEST(ValueSpecOracleTest, DowngradesCarriedScalarPairsAsValueSpec) {
  auto M = compile(CursorSource);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  const Function *F = M->getFunction("main");
  FunctionAnalysis FA(*F);
  DepOracleStack Stack(FA, DepOracleConfig({}, &P));
  std::vector<DepEdge> Edges = buildDepEdges(Stack);

  const Loop *L = loopAt(FA, 0);
  ASSERT_NE(L, nullptr);
  unsigned H = L->getHeader();

  // Every carried dependence on `pos` must be value-downgraded; none may
  // remain carried, and none may land in the memory-spec set (the chain
  // manifests every iteration — only value prediction can remove it).
  const Value *Pos = nullptr;
  for (const auto &G : M->globals())
    if (G->getName() == "pos")
      Pos = G.get();
  ASSERT_NE(Pos, nullptr);
  bool SawValueSpec = false;
  for (const DepEdge &E : Edges) {
    if (E.MemObject != Pos)
      continue;
    EXPECT_FALSE(E.isCarriedAt(H)) << "pos chain must be value-downgraded";
    EXPECT_FALSE(E.isSpecCarriedAt(H))
        << "a manifested chain is not memory-speculable";
    SawValueSpec |= E.isValueSpecCarriedAt(H);
  }
  EXPECT_TRUE(SawValueSpec);
}

TEST(ValueSpecOracleTest, ViewRecordsOneValueAssumptionPerStorage) {
  auto M = compile(CursorSource);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  const Function *F = M->getFunction("main");
  FunctionAnalysis FA(*F);
  DepOracleStack Stack(FA, DepOracleConfig({}, &P));
  auto G = buildPSPDG(FA, Stack);
  AbstractionView View(AbstractionKind::PSPDG, FA, Stack, G.get());
  const Loop *L = loopAt(FA, 0);
  LoopPlanView PV = View.viewFor(*L);

  ASSERT_EQ(PV.ValueAssumptions.size(), 1u)
      << "several downgraded edges, one per-storage obligation";
  EXPECT_EQ(PV.ValueAssumptions[0].Storage->getName(), "pos");
  EXPECT_TRUE(PV.ValueAssumptions[0].IsScalar);

  // soundAlternative() must restore the carried chain: the sound view's
  // SCC structure cannot be all-parallel.
  LoopPlanView Sound = soundAlternative(PV);
  EXPECT_TRUE(Sound.ValueAssumptions.empty());
  LoopSCCDAG SpecDAG(PV), SoundDAG(Sound);
  EXPECT_TRUE(SpecDAG.allParallel());
  EXPECT_FALSE(SoundDAG.allParallel());
}

TEST(ValueSpecOracleTest, VaryingScalarsAndStaleProfilesDecline) {
  auto M = compile(CursorSource);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);

  // Stale: a structurally different function under the same name.
  auto M2 = compile(R"PSC(
int out[128];
int pos = 0;
int main() {
  int i;
  for (i = 0; i < 32; i++) {
    pos = pos + 2;
    out[pos] = out[pos] * i;
  }
  print(pos);
  return 0;
}
)PSC");
  ASSERT_NE(M2, nullptr);
  const Function *F2 = M2->getFunction("main");
  FunctionAnalysis FA2(*F2);
  DepOracleStack Stack(FA2, DepOracleConfig({}, &P));
  std::vector<DepEdge> Edges = buildDepEdges(Stack);
  const Loop *L = loopAt(FA2, 0);
  for (const DepEdge &E : Edges)
    EXPECT_TRUE(E.ValueSpecCarriedAtHeaders.empty())
        << "a stale profile must never license value speculation";
  (void)L;
}

TEST(ValueSpecOracleTest, AblationSurfaceSelectsStages) {
  auto M = compile(CursorSource);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  const Function *F = M->getFunction("main");
  FunctionAnalysis FA(*F);

  DepOracleConfig Both({}, &P);
  EXPECT_TRUE(Both.wantsSpec());
  EXPECT_TRUE(Both.wantsValueSpec());

  DepOracleConfig MemOnly({"ssa", "control", "io", "opaque", "alias",
                           "affine", "spec"},
                          &P);
  EXPECT_TRUE(MemOnly.wantsSpec());
  EXPECT_FALSE(MemOnly.wantsValueSpec());

  DepOracleConfig ValueOnly({"ssa", "control", "io", "opaque", "alias",
                             "affine", "valuespec"},
                            &P);
  EXPECT_FALSE(ValueOnly.wantsSpec());
  EXPECT_TRUE(ValueOnly.wantsValueSpec());

  // With the value stage ablated, the pos chain stays carried.
  DepOracleStack Stack(FA, MemOnly);
  std::vector<DepEdge> Edges = buildDepEdges(Stack);
  const Loop *L = loopAt(FA, 0);
  bool PosCarried = false;
  for (const DepEdge &E : Edges) {
    EXPECT_TRUE(E.ValueSpecCarriedAtHeaders.empty());
    if (E.MemObject && E.MemObject->getName() == "pos" &&
        E.isCarriedAt(L->getHeader()))
      PosCarried = true;
  }
  EXPECT_TRUE(PosCarried);
}

// --- Reduction shape ---------------------------------------------------------

/// Shape-analysis fixture: a reducible accumulation with a cold escape.
const char *ReducibleSource = R"PSC(
double acc[8];
#pragma psc reducible(acc : merge_acc)
double vals[64];
int cold_len = 0;
void merge_acc(double dst[], double src[]) {
  int t;
  for (t = 0; t < 8; t++) {
    dst[t] = dst[t] + src[t];
  }
}
int main() {
  int i;
  int k;
  for (i = 0; i < 64; i++) {
    vals[i] = (i % 8) / 8.0;
  }
  for (i = 0; i < 64; i++) {
    acc[i % 8] += vals[i];
    for (k = 0; k < cold_len; k++) {
      acc[k] = 0.0;
    }
  }
  print(acc[0] * 1000.0);
  return 0;
}
)PSC";

TEST(ReductionShapeTest, ConfirmsConformingShapeWithColdGuards) {
  auto M = compile(ReducibleSource);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  const Function *F = M->getFunction("main");
  FunctionAnalysis FA(*F);
  uint64_t Hash = functionBodyHash(*F);

  const Value *Acc = nullptr;
  for (const auto &G : M->globals())
    if (G->getName() == "acc")
      Acc = G.get();
  ASSERT_NE(Acc, nullptr);

  const Loop *L = nullptr;
  for (const Loop *C : FA.loopInfo().loops())
    if (C->getDepth() == 1 && loopAt(FA, 0) != C)
      L = C; // the accumulation loop (second top-level)
  ASSERT_NE(L, nullptr);

  ReductionShape Shape = analyzeReductionShape(FA, *L, Acc, &P, Hash);
  EXPECT_TRUE(Shape.Viable) << Shape.Reason;
  EXPECT_NE(Shape.Combiner, nullptr);
  EXPECT_EQ(Shape.Combiner->getName(), "merge_acc");
  EXPECT_EQ(Shape.ConformingStores.size(), 1u);
  EXPECT_EQ(Shape.ColdAccesses.size(), 1u) << "the acc[k] = 0.0 reset";

  // Without a profile there is no cold/warm evidence: never viable.
  ReductionShape NoEvidence = analyzeReductionShape(FA, *L, Acc, nullptr, 0);
  EXPECT_FALSE(NoEvidence.Viable);
}

TEST(ReductionShapeTest, HotNonConformingAccessRejects) {
  // The reset sweep runs every iteration (cold_len = 1): the non-RMW
  // store is warm, so promotion must refuse.
  std::string Hot = ReducibleSource;
  size_t P0 = Hot.find("int cold_len = 0;");
  ASSERT_NE(P0, std::string::npos);
  Hot.replace(P0, 17, "int cold_len = 1;");
  auto M = compile(Hot);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  const Function *F = M->getFunction("main");
  FunctionAnalysis FA(*F);

  const Value *Acc = nullptr;
  for (const auto &G : M->globals())
    if (G->getName() == "acc")
      Acc = G.get();
  const Loop *L = nullptr;
  for (const Loop *C : FA.loopInfo().loops())
    if (C->getDepth() == 1 && loopAt(FA, 0) != C)
      L = C;
  ASSERT_NE(L, nullptr);
  ReductionShape Shape =
      analyzeReductionShape(FA, *L, Acc, &P, functionBodyHash(*F));
  EXPECT_FALSE(Shape.Viable);
  EXPECT_NE(Shape.Reason.find("not profile-cold"), std::string::npos);
}

TEST(ReductionShapeTest, ImpureCombinerIsNotRegistered) {
  // A combiner that prints cannot run at merge time: the registry must
  // refuse it, keeping the loop sequential.
  std::string Impure = ReducibleSource;
  size_t P0 = Impure.find("dst[t] = dst[t] + src[t];");
  ASSERT_NE(P0, std::string::npos);
  Impure.insert(P0, "print(t); ");
  auto M = compile(Impure);
  ASSERT_NE(M, nullptr);
  const Value *Acc = nullptr;
  for (const auto &G : M->globals())
    if (G->getName() == "acc")
      Acc = G.get();
  ASSERT_NE(Acc, nullptr);
  EXPECT_EQ(registeredCombiner(*M, Acc), nullptr);
}

TEST(ReductionShapeTest, GlobalTouchingCombinerIsNotRegistered) {
  // The sequential run never executes the combiner, so a combiner that
  // reads or writes a module global would silently diverge the parallel
  // run with no misspeculation to catch it. The registry must refuse it —
  // a combiner may only touch its arguments and locals.
  std::string Counting = ReducibleSource;
  size_t P0 = Counting.find("dst[t] = dst[t] + src[t];");
  ASSERT_NE(P0, std::string::npos);
  Counting.insert(P0, "cold_len = cold_len + 0; ");
  auto M = compile(Counting);
  ASSERT_NE(M, nullptr);
  const Value *Acc = nullptr;
  for (const auto &G : M->globals())
    if (G->getName() == "acc")
      Acc = G.get();
  ASSERT_NE(Acc, nullptr);
  EXPECT_EQ(registeredCombiner(*M, Acc), nullptr);
}

TEST(ReductionShapeTest, SpelledOutTwoAddressFormIsNotProvable) {
  // BT's `acc[i % 8] = acc[i % 8] + s` computes the address twice; the
  // single-pointer RMW proof does not apply, so the loop must stay
  // sequential (documented limitation — ROADMAP follow-up).
  auto M = compile(findWorkload("BT")->Source);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  RuntimePlan Spec = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8,
                                      FeatureSet(), DepOracleConfig({}, &P));
  bool SawAccLoop = false;
  for (const auto &[Key, LS] : Spec.Loops) {
    (void)Key;
    if (LS.Reason.find("custom-reducible") != std::string::npos) {
      SawAccLoop = true;
      EXPECT_EQ(LS.Kind, ScheduleKind::Sequential);
    }
    EXPECT_TRUE(LS.SpecReductions.empty());
  }
  EXPECT_TRUE(SawAccLoop);
}

} // namespace
