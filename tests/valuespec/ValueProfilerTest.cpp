//===- ValueProfilerTest.cpp - Value classification + profile v2 ----------===//
///
/// The value-speculation training side (DESIGN.md §10): scalar value
/// classification (invariant / strided / write-first / varying, anchored
/// at the invocation entry value and meet-joined across invocations and
/// merges), accessed-instruction sets (the cold/warm evidence), the v2
/// serialization, and the body-hash staleness guard.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Interpreter.h"
#include "profiling/DepProfiler.h"
#include "pspdg/Fingerprint.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

DepProfile train(const Module &M,
                 ExecEngineKind E = ExecEngineKind::Bytecode) {
  ModuleAnalyses MA(M);
  DepProfiler P(MA);
  Interpreter I(M);
  I.setEngine(E);
  I.addObserver(&P);
  RunResult R = I.run();
  EXPECT_TRUE(R.Completed);
  return P.takeProfile();
}

/// Value class of \p Var at loop \p Index of main.
const DepProfile::ValueObs *obsAt(const DepProfile &P, const Module &M,
                                  unsigned Index, const std::string &Var) {
  const Function *F = M.getFunction("main");
  FunctionAnalysis FA(*F);
  const Loop *L = loopAt(FA, Index);
  if (!L)
    return nullptr;
  return P.valueObs("main", L->getHeader(), Var);
}

/// Value class of \p Var at the first loop of main with depth \p Depth.
const DepProfile::ValueObs *obsAtDepth(const DepProfile &P, const Module &M,
                                       unsigned Depth,
                                       const std::string &Var) {
  const Function *F = M.getFunction("main");
  FunctionAnalysis FA(*F);
  for (const Loop *L : FA.loopInfo().loops())
    if (L->getDepth() == Depth)
      return P.valueObs("main", L->getHeader(), Var);
  return nullptr;
}

// --- Scalar classification ---------------------------------------------------

TEST(ValueProfilerTest, ClassifiesTheFourScalarShapes) {
  auto M = compile(R"PSC(
int tab[32];
int out[64];
int main() {
  int i;
  int base;      // invariant: rewritten with its entry value
  int cursor;    // strided: advances by tab[i] == 3 every iteration
  int tmp;       // write-first: assigned before any use, every iteration
  int chaos;     // varying: accumulates data-dependent amounts
  int k;
  for (i = 0; i < 32; i++) {
    tab[i] = 3;
  }
  base = 7;
  cursor = 5;
  chaos = 1;
  for (i = 0; i < 32; i++) {
    k = base;              // read first: entry observable
    out[i] = k;
    base = 7;              // stores the entry value every iteration
    cursor = cursor + tab[i];
    tmp = i * 2;           // written before any read
    out[32 + i] = tmp + cursor;
    chaos = chaos + out[i] * i;
  }
  print(chaos + cursor + base);
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);

  const DepProfile::ValueObs *Base = obsAt(P, *M, 1, "%base");
  ASSERT_NE(Base, nullptr);
  EXPECT_EQ(Base->Kind, ValueClassKind::Invariant);

  const DepProfile::ValueObs *Cursor = obsAt(P, *M, 1, "%cursor");
  ASSERT_NE(Cursor, nullptr);
  EXPECT_EQ(Cursor->Kind, ValueClassKind::Strided);
  EXPECT_EQ(Cursor->StrideI, 3);
  EXPECT_FALSE(Cursor->IsFloat);

  const DepProfile::ValueObs *Tmp = obsAt(P, *M, 1, "%tmp");
  ASSERT_NE(Tmp, nullptr);
  EXPECT_EQ(Tmp->Kind, ValueClassKind::WriteFirst);

  const DepProfile::ValueObs *Chaos = obsAt(P, *M, 1, "%chaos");
  ASSERT_NE(Chaos, nullptr);
  EXPECT_EQ(Chaos->Kind, ValueClassKind::Varying);

  // The canonical IV itself classifies strided(+step) — harmless, the
  // views remove its dependences soundly.
  const DepProfile::ValueObs *IV = obsAt(P, *M, 1, "%i");
  ASSERT_NE(IV, nullptr);
  EXPECT_EQ(IV->Kind, ValueClassKind::Strided);
  EXPECT_EQ(IV->StrideI, 1);
}

TEST(ValueProfilerTest, EntryMustBeObservedForAnchoredClasses) {
  // The scalar is overwritten before its first read, so the entry value
  // is never observable: invariant/strided are off the table even though
  // every write stores the same value; WriteFirst holds instead.
  auto M = compile(R"PSC(
int sink[16];
int main() {
  int i;
  int x;
  for (i = 0; i < 16; i++) {
    x = 42;
    sink[i] = x;
  }
  print(x);
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  const DepProfile::ValueObs *X = obsAt(P, *M, 0, "%x");
  ASSERT_NE(X, nullptr);
  EXPECT_EQ(X->Kind, ValueClassKind::WriteFirst);
}

TEST(ValueProfilerTest, IterationWithoutAWriteBreaksStrided) {
  // cursor strides by 2 but skips the write whenever i % 8 == 7 (the
  // inner loop trips zero times): a runtime prediction would diverge, so
  // the class must degrade.
  auto M = compile(R"PSC(
int out[64];
int main() {
  int i;
  int k;
  int cursor;
  cursor = 0;
  for (i = 0; i < 32; i++) {
    out[i] = cursor;
    for (k = 0; k < 1 - (i % 8) / 7; k++) {
      cursor = cursor + 2;
    }
  }
  print(cursor);
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  const DepProfile::ValueObs *Cursor = obsAtDepth(P, *M, 1, "%cursor");
  ASSERT_NE(Cursor, nullptr);
  EXPECT_NE(Cursor->Kind, ValueClassKind::Strided);
  EXPECT_NE(Cursor->Kind, ValueClassKind::Invariant);
}

TEST(ValueProfilerTest, MultiInvocationMeetDegradesDisagreeingClasses) {
  // The inner loop strides by 1 on even outer iterations and by 2 on odd
  // ones: each invocation alone is strided, the meet is Varying.
  auto M = compile(R"PSC(
int out[8];
int main() {
  int it;
  int i;
  int step;
  int cur;
  for (it = 0; it < 4; it++) {
    step = 1 + it % 2;
    cur = 0;
    for (i = 0; i < 8; i++) {
      cur = cur + step;
      out[i] = cur;
    }
  }
  print(cur);
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  const DepProfile::ValueObs *Cur = obsAtDepth(P, *M, 2, "%cur");
  ASSERT_NE(Cur, nullptr);
  EXPECT_EQ(Cur->Kind, ValueClassKind::Varying);
}

TEST(ValueProfilerTest, AccessedSetsSeparateWarmFromCold) {
  auto M = compile(R"PSC(
int cold_len = 0;
int warm[32];
int main() {
  int i;
  int k;
  for (i = 0; i < 32; i++) {
    warm[i] = i;
    for (k = 0; k < cold_len; k++) {
      warm[0] = 0;          // never executes: cold
    }
  }
  print(warm[31]);
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  const Function *F = M->getFunction("main");
  FunctionAnalysis FA(*F);
  const Loop *L = loopAt(FA, 0);
  ASSERT_NE(L, nullptr);

  const Instruction *WarmStore = nullptr, *ColdStore = nullptr;
  for (const Instruction *I : FA.instructions()) {
    const auto *SI = dyn_cast<StoreInst>(I);
    if (!SI || !isa<GEPInst>(SI->getPointer()))
      continue;
    if (isa<ConstantInt>(SI->getStoredValue()))
      ColdStore = I; // warm[0] = 0
    else
      WarmStore = I; // warm[i] = i
  }
  ASSERT_NE(WarmStore, nullptr);
  ASSERT_NE(ColdStore, nullptr);
  EXPECT_TRUE(P.accessed("main", L->getHeader(), FA.indexOf(WarmStore)));
  EXPECT_FALSE(P.accessed("main", L->getHeader(), FA.indexOf(ColdStore)));
}

// --- Engine equivalence ------------------------------------------------------

TEST(ValueProfilerTest, ValueObservationsAreEngineIdentical) {
  for (const char *Name : {"RX", "CG", "UA"}) {
    auto M = compile(findWorkload(Name)->Source);
    ASSERT_NE(M, nullptr);
    DepProfile Walker = train(*M, ExecEngineKind::Walker);
    DepProfile Bytecode = train(*M, ExecEngineKind::Bytecode);
    EXPECT_EQ(Walker.toJson(), Bytecode.toJson()) << Name;
  }
}

// --- Serialization (v2) ------------------------------------------------------

TEST(ValueProfileFormatTest, V2RoundTripPreservesEverything) {
  auto M = compile(findWorkload("RX")->Source);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  // Synthesize a spec history so the round trip covers it too.
  P.recordSpecOutcome("main", 1, 5, 2);
  std::string Json = P.toJson();

  DepProfile Back;
  std::string Err;
  ASSERT_TRUE(DepProfile::parseJson(Json, Back, Err)) << Err;
  EXPECT_EQ(Back.toJson(), Json);
  uint64_t A = 0, Mi = 0;
  Back.specHistory("main", 1, A, Mi);
  EXPECT_EQ(A, 5u);
  EXPECT_EQ(Mi, 2u);
}

TEST(ValueProfileFormatTest, FloatStridesRoundTripBitExactly) {
  DepProfile P;
  DepProfile::ValueObs Obs;
  Obs.Kind = ValueClassKind::Strided;
  Obs.IsFloat = true;
  Obs.StrideF = 0.1; // not representable: the bit pattern must survive
  Obs.Writes = 3;
  P.recordLoop("f", 10, 11, 2, 1, 3);
  P.recordValueObs("f", 2, "x", Obs);

  DepProfile Back;
  std::string Err;
  ASSERT_TRUE(DepProfile::parseJson(P.toJson(), Back, Err)) << Err;
  const DepProfile::ValueObs *B = Back.valueObs("f", 2, "x");
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->StrideF, 0.1);
  EXPECT_EQ(B->Kind, ValueClassKind::Strided);
}

TEST(ValueProfileFormatTest, RejectsV1Documents) {
  DepProfile P;
  std::string Err;
  EXPECT_FALSE(DepProfile::parseJson(
      "{\"format\": \"psc-dep-profile\", \"version\": 1, \"functions\": []}",
      P, Err));
  EXPECT_NE(Err.find("version"), std::string::npos);
}

TEST(ValueProfileFormatTest, MergeMeetsValueClasses) {
  DepProfile A, B;
  A.recordLoop("f", 10, 11, 2, 1, 4);
  B.recordLoop("f", 10, 11, 2, 1, 4);
  DepProfile::ValueObs S;
  S.Kind = ValueClassKind::Strided;
  S.StrideI = 2;
  S.Writes = 4;
  A.recordValueObs("f", 2, "x", S);
  A.recordValueObs("f", 2, "y", S);
  DepProfile::ValueObs T = S;
  T.StrideI = 3; // disagreeing stride: meet must degrade
  B.recordValueObs("f", 2, "x", T);
  B.recordValueObs("f", 2, "y", S);

  A.merge(B);
  EXPECT_EQ(A.valueObs("f", 2, "x")->Kind, ValueClassKind::Varying);
  EXPECT_EQ(A.valueObs("f", 2, "y")->Kind, ValueClassKind::Strided);
  EXPECT_EQ(A.valueObs("f", 2, "y")->Writes, 8u);
}

// --- Body-hash staleness -----------------------------------------------------

TEST(BodyHashTest, ConstantsAreInputsStructureIsIdentity) {
  // Literal swaps (training vs adversarial inputs) keep the hash; a
  // structural edit of the same instruction count changes it.
  const char *Base = R"PSC(
int a[8];
int main() {
  int i;
  for (i = 0; i < 8; i++) { a[i] = i * 3; }
  return a[7];
}
)PSC";
  auto M1 = compile(Base);
  std::string ConstSwap = Base;
  ConstSwap.replace(ConstSwap.find("i * 3"), 5, "i * 5");
  auto M2 = compile(ConstSwap);
  std::string OpSwap = Base;
  OpSwap.replace(OpSwap.find("i * 3"), 5, "i + 3");
  auto M3 = compile(OpSwap);
  ASSERT_NE(M1, nullptr);
  ASSERT_NE(M2, nullptr);
  ASSERT_NE(M3, nullptr);

  uint64_t H1 = functionBodyHash(*M1->getFunction("main"));
  uint64_t H2 = functionBodyHash(*M2->getFunction("main"));
  uint64_t H3 = functionBodyHash(*M3->getFunction("main"));
  EXPECT_EQ(H1, H2) << "a literal swap is an input change, not staleness";
  EXPECT_NE(H1, H3) << "an opcode swap must invalidate the profile";
}

TEST(BodyHashTest, SameSizeEditRejectsProfile) {
  // The motivating gap: two bodies with identical instruction COUNTS but
  // different structure. v1 (count-only) would silently retarget indices;
  // v2's hash rejects.
  const char *A = R"PSC(
int x[8];
int y[8];
int main() {
  int i;
  for (i = 0; i < 8; i++) { x[i] = y[i]; }
  return x[0];
}
)PSC";
  const char *B = R"PSC(
int x[8];
int y[8];
int main() {
  int i;
  for (i = 0; i < 8; i++) { y[i] = x[i]; }
  return x[0];
}
)PSC";
  auto MA_ = compile(A);
  auto MB = compile(B);
  ASSERT_NE(MA_, nullptr);
  ASSERT_NE(MB, nullptr);
  const Function *FA_ = MA_->getFunction("main");
  const Function *FB = MB->getFunction("main");
  FunctionAnalysis AnA(*FA_), AnB(*FB);
  ASSERT_EQ(AnA.instructions().size(), AnB.instructions().size())
      << "the test premise: equal instruction counts";

  DepProfile P = train(*MA_);
  unsigned N = static_cast<unsigned>(AnB.instructions().size());
  const Loop *L = loopAt(AnB, 0);
  ASSERT_NE(L, nullptr);
  EXPECT_FALSE(
      P.observed("main", N, functionBodyHash(*FB), L->getHeader()))
      << "a same-size structural edit must reject the profile";
  EXPECT_TRUE(P.observed("main", N, functionBodyHash(*FA_), L->getHeader()));
}

} // namespace
