//===- AffineAuditTest.cpp - Fuzzed affine disproof-form audit ------------===//
///
/// ROADMAP "decreasing-IV affine forms": PR 4 fixed the affine oracle's
/// step-sign bug for decreasing loops; this audit sweeps the remaining
/// disproof forms — triangular (IV-dependent) inner bounds, coupled
/// subscripts mixing two IVs, negative coefficients and constant offsets,
/// increasing and decreasing IVs — over a deterministic fuzz of loop
/// shapes, differentially checking the oracle stack's edge set against the
/// frozen seed reference (ReferenceDependence) on every shape.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "analysis/DepOracle.h"
#include "analysis/ReferenceDependence.h"
#include "parallel/PlanEnumerator.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace psc;
using namespace psc::test;

namespace {

std::string describeEdge(const FunctionAnalysis &FA, const DepEdge &E) {
  std::ostringstream OS;
  OS << "edge " << FA.indexOf(E.Src) << " -> " << FA.indexOf(E.Dst)
     << " kind=" << static_cast<int>(E.Kind) << " intra=" << E.Intra
     << " carried={";
  for (unsigned H : E.CarriedAtHeaders)
    OS << H << ",";
  OS << "} must={";
  for (unsigned H : E.MustCarriedAtHeaders)
    OS << H << ",";
  OS << "}";
  return OS.str();
}

::testing::AssertionResult edgesBitIdentical(const FunctionAnalysis &FA,
                                             const std::vector<DepEdge> &A,
                                             const std::vector<DepEdge> &B) {
  if (A.size() != B.size())
    return ::testing::AssertionFailure()
           << "edge counts differ: " << A.size() << " vs " << B.size();
  for (size_t I = 0; I < A.size(); ++I) {
    const DepEdge &X = A[I], &Y = B[I];
    if (X.Src != Y.Src || X.Dst != Y.Dst || X.Kind != Y.Kind ||
        X.Intra != Y.Intra || X.CarriedAtHeaders != Y.CarriedAtHeaders ||
        X.MustCarriedAtHeaders != Y.MustCarriedAtHeaders ||
        X.MemObject != Y.MemObject || X.IsIVDep != Y.IsIVDep ||
        X.IsIO != Y.IsIO)
      return ::testing::AssertionFailure()
             << "edge " << I << " differs:\n  stack:     "
             << describeEdge(FA, X)
             << "\n  reference: " << describeEdge(FA, Y);
  }
  return ::testing::AssertionSuccess();
}

/// Deterministic 48-bit LCG (the PSC `lcg` intrinsic's constants).
struct Rng {
  uint64_t X;
  explicit Rng(uint64_t Seed) : X(Seed) {}
  uint64_t next() {
    X = (X * 25214903917ULL + 11ULL) & ((1ULL << 48) - 1);
    return X >> 16;
  }
  long range(long Lo, long Hi) { // inclusive
    return Lo + static_cast<long>(next() % static_cast<uint64_t>(Hi - Lo + 1));
  }
  bool flip() { return next() & 1; }
};

/// One fuzzed doubly-nested loop shape writing/reading A with affine
/// subscripts over both IVs. The generator keeps subscripts inside
/// A[0, 4096) by construction for every (i, j) the bounds admit.
std::string fuzzedShape(Rng &R, std::string &Desc) {
  // Outer loop: increasing or decreasing, small constant bounds.
  bool Dec = R.flip();
  long OLo = R.range(0, 3), OHi = OLo + R.range(3, 9);
  long OStep = R.range(1, 2);
  // Inner loop: constant, triangular (bounded by i), or decreasing.
  int InnerForm = static_cast<int>(R.range(0, 2));
  long ILo = R.range(0, 2), IHi = ILo + R.range(3, 8);
  // Subscripts: a*i + b*j + c on the write, d*i + e*j + f on the read.
  long A = R.range(-2, 3), B = R.range(-2, 3), C = R.range(0, 40);
  long D = R.range(-2, 3), E = R.range(-2, 3), Fc = R.range(0, 40);
  // Keep offsets non-negative: shift by the worst negative excursion.
  long MaxIV = std::max(OHi, IHi) * 2 + 4;
  long Shift = 3 * MaxIV + 2;
  C += Shift;
  Fc += Shift;

  std::ostringstream OS, DS;
  OS << "int A[4096];\nint s;\nint main() {\n  int i;\n  int j;\n";
  if (Dec)
    OS << "  for (i = " << OHi << "; i >= " << OLo << "; i -= " << OStep
       << ") {\n";
  else
    OS << "  for (i = " << OLo << "; i < " << OHi << "; i += " << OStep
       << ") {\n";
  switch (InnerForm) {
  case 0: // constant bounds
    OS << "    for (j = " << ILo << "; j < " << IHi << "; j++) {\n";
    break;
  case 1: // triangular: bounded by the outer IV
    OS << "    for (j = 0; j <= i; j++) {\n";
    break;
  default: // decreasing inner
    OS << "    for (j = " << IHi << "; j >= " << ILo << "; j--) {\n";
    break;
  }
  auto Sub = [&](long CI, long CJ, long CC) {
    std::ostringstream T;
    T << "i * (" << CI << ") + j * (" << CJ << ") + " << CC;
    return T.str();
  };
  OS << "      A[" << Sub(A, B, C) << "] = A[" << Sub(D, E, Fc)
     << "] + 1;\n";
  OS << "    }\n  }\n  s = A[" << Shift << "];\n  print(s);\n  return 0;\n}\n";

  DS << (Dec ? "dec" : "inc") << " outer [" << OLo << "," << OHi << "] step "
     << OStep << ", inner form " << InnerForm << ", write " << Sub(A, B, C)
     << ", read " << Sub(D, E, Fc);
  Desc = DS.str();
  return OS.str();
}

TEST(AffineAuditTest, FuzzedLoopShapesMatchTheFrozenReference) {
  Rng R(0x5EEDF00DULL);
  for (int Case = 0; Case < 160; ++Case) {
    std::string Desc;
    std::string Source = fuzzedShape(R, Desc);
    auto M = compile(Source);
    ASSERT_NE(M, nullptr) << Desc << "\n" << Source;
    const Function *F = M->getFunction("main");
    FunctionAnalysis FA(*F);
    DepOracleStack Stack(FA);
    EXPECT_TRUE(
        edgesBitIdentical(FA, buildDepEdges(Stack), referenceDepEdges(FA)))
        << "case " << Case << ": " << Desc << "\n" << Source;
  }
}

/// Directed forms the fuzz space covers only thinly, pinned explicitly.
TEST(AffineAuditTest, DirectedDisproofForms) {
  const char *Cases[] = {
      // Decreasing IV, unit negative coefficient: distinct elements.
      R"PSC(
int A[128];
int main() {
  int i;
  for (i = 40; i >= 1; i--) { A[40 - i] = A[40 - i] + 1; }
  print(A[0]);
  return 0;
}
)PSC",
      // Triangular bound with coupled subscript i - j (the wavefront
      // diagonal): conflicts across iterations of the outer loop.
      R"PSC(
int A[128];
int main() {
  int i;
  int j;
  for (i = 0; i < 10; i++) {
    for (j = 0; j <= i; j++) { A[i - j] = A[i - j] + 1; }
  }
  print(A[0]);
  return 0;
}
)PSC",
      // Coupled subscripts with opposite signs on the two sides.
      R"PSC(
int A[256];
int main() {
  int i;
  int j;
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) { A[i * 8 + j + 64] = A[64 + j * 8 + i] + 1; }
  }
  print(A[64]);
  return 0;
}
)PSC",
      // Decreasing outer + increasing inner, strided write vs offset read.
      R"PSC(
int A[256];
int main() {
  int i;
  int j;
  for (i = 12; i >= 2; i -= 2) {
    for (j = 0; j < 6; j++) { A[i * 6 + j + 20] = A[i * 6 + j + 19] + 1; }
  }
  print(A[32]);
  return 0;
}
)PSC",
  };
  int N = 0;
  for (const char *Source : Cases) {
    auto M = compile(Source);
    ASSERT_NE(M, nullptr) << "case " << N;
    const Function *F = M->getFunction("main");
    FunctionAnalysis FA(*F);
    DepOracleStack Stack(FA);
    EXPECT_TRUE(
        edgesBitIdentical(FA, buildDepEdges(Stack), referenceDepEdges(FA)))
        << "case " << N << "\n" << Source;
    ++N;
  }
}

/// Constant-offset directed cases (ROADMAP soundness audit): a constant
/// subscript offset along the loop IV either solves to a definite
/// iteration distance (must-carried — the conflict provably manifests, no
/// annotation may drop it) or is disproven outright; only an unknown trip
/// count leaves the conservative carried-but-not-proven middle ground.
TEST(AffineAuditTest, ConstantOffsetDirectedCases) {
  struct Case {
    const char *Source;
    bool ExpectCarried; ///< Any memory edge on A carried at some loop.
    bool ExpectMust;    ///< ... of which at least one provably manifests.
  };
  const Case Cases[] = {
      // Distance-1 flow recurrence: delta = 1, proven.
      {R"PSC(
int A[64];
int main() {
  int j;
  for (j = 1; j < 64; j++) { A[j] = A[j - 1] + 1; }
  print(A[63]);
  return 0;
}
)PSC",
       true, true},
      // Distance-1 anti direction (read ahead of the write): proven.
      {R"PSC(
int A[65];
int main() {
  int j;
  for (j = 0; j < 64; j++) { A[j] = A[j + 1] + 1; }
  print(A[0]);
  return 0;
}
)PSC",
       true, true},
      // Strided with matching parity: 2j+8 vs 2j+6 solves delta = 1.
      {R"PSC(
int A[256];
int main() {
  int j;
  for (j = 0; j < 64; j++) { A[2 * j + 8] = A[2 * j + 6] + 1; }
  print(A[8]);
  return 0;
}
)PSC",
       true, true},
      // Distance-3: delta = 3 within trip 64, proven.
      {R"PSC(
int A[128];
int main() {
  int j;
  for (j = 3; j < 64; j++) { A[j] = A[j - 3] + 1; }
  print(A[63]);
  return 0;
}
)PSC",
       true, true},
      // Mismatched parity: 2j vs 2j+1 never meet — disproven.
      {R"PSC(
int A[256];
int main() {
  int j;
  for (j = 0; j < 64; j++) { A[2 * j] = A[2 * j + 1] + 1; }
  print(A[0]);
  return 0;
}
)PSC",
       false, false},
      // Offset beyond the trip count: delta = 5 > 3 — disproven.
      {R"PSC(
int A[64];
int main() {
  int j;
  for (j = 0; j < 4; j++) { A[j] = A[j + 5] + 1; }
  print(A[0]);
  return 0;
}
)PSC",
       false, false},
      // Unknown trip count: the distance solves to 1 but the loop may run
      // a single iteration — carried conservatively, NOT proven.
      {R"PSC(
int A[64];
int n;
int main() {
  int j;
  n = 64;
  for (j = 1; j < n; j++) { A[j] = A[j - 1] + 1; }
  print(A[1]);
  return 0;
}
)PSC",
       true, false},
  };
  int N = 0;
  for (const Case &TC : Cases) {
    auto M = compile(TC.Source);
    ASSERT_NE(M, nullptr) << "case " << N;
    const Function *F = M->getFunction("main");
    FunctionAnalysis FA(*F);
    DepOracleStack Stack(FA);
    std::vector<DepEdge> Edges = buildDepEdges(Stack);
    EXPECT_TRUE(edgesBitIdentical(FA, Edges, referenceDepEdges(FA)))
        << "case " << N << "\n" << TC.Source;
    bool Carried = false, Must = false;
    for (const DepEdge &E : Edges) {
      if (!E.isMemory() || !E.MemObject ||
          E.MemObject->getName() != "A")
        continue;
      Carried |= !E.CarriedAtHeaders.empty();
      Must |= !E.MustCarriedAtHeaders.empty();
    }
    EXPECT_EQ(Carried, TC.ExpectCarried) << "case " << N << "\n" << TC.Source;
    EXPECT_EQ(Must, TC.ExpectMust) << "case " << N << "\n" << TC.Source;
    ++N;
  }
}

/// The ROADMAP item 6 repro, pinned at the plan level: an annotated
/// constant-offset recurrence must never enumerate a DOALL option under
/// any abstraction — the proof outweighs the annotation.
TEST(AffineAuditTest, AnnotatedRecurrenceNeverPlansDOALL) {
  auto M = compile(R"PSC(
double a[64];
double r[64];
int main() {
  int j;
  int checksum;
  #pragma psc parallel for
  for (j = 1; j < 64; j++) { a[j] = r[j] + 0.5 * a[j - 1]; }
  checksum = a[63] * 100.0;
  print(checksum);
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  for (AbstractionKind K :
       {AbstractionKind::PSPDG, AbstractionKind::JK, AbstractionKind::OpenMP,
        AbstractionKind::PDG}) {
    OptionCount R = enumerateOptions(*M, K);
    for (const LoopOptions &L : R.PerLoop)
      EXPECT_FALSE(L.DOALL)
          << "abstraction " << static_cast<int>(K)
          << " planned the recurrence DOALL (header " << L.HeaderBlock
          << ")";
  }
}

} // namespace
