//===- DepOracleCompositionTest.cpp - Order invariance -----------*- C++ -*-===//
///
/// The chaining contract: oracle answer domains are disjoint, so the
/// *verdicts* of a stack — and therefore the produced edge sets — are
/// independent of oracle order. Only attribution changes. These tests
/// permute the chain and assert edge-set identity on targeted programs and
/// on every NAS workload.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "analysis/DepOracle.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace psc;
using namespace psc::test;

namespace {

bool sameEdge(const DepEdge &A, const DepEdge &B) {
  return A.Src == B.Src && A.Dst == B.Dst && A.Kind == B.Kind &&
         A.Intra == B.Intra && A.CarriedAtHeaders == B.CarriedAtHeaders &&
         A.MemObject == B.MemObject && A.IsIVDep == B.IsIVDep &&
         A.IsIO == B.IsIO;
}

::testing::AssertionResult edgeSetsIdentical(const std::vector<DepEdge> &A,
                                             const std::vector<DepEdge> &B) {
  if (A.size() != B.size())
    return ::testing::AssertionFailure()
           << "edge counts differ: " << A.size() << " vs " << B.size();
  for (size_t I = 0; I < A.size(); ++I)
    if (!sameEdge(A[I], B[I]))
      return ::testing::AssertionFailure() << "edge " << I << " differs";
  return ::testing::AssertionSuccess();
}

const std::vector<std::vector<std::string>> &chainPermutations() {
  static const std::vector<std::vector<std::string>> Perms = {
      {"ssa", "control", "io", "opaque", "alias", "affine"}, // default
      {"affine", "alias", "opaque", "io", "control", "ssa"}, // reversed
      {"alias", "affine", "ssa", "io", "control", "opaque"},
      {"io", "affine", "opaque", "ssa", "alias", "control"},
  };
  return Perms;
}

TEST(DepOracleCompositionTest, OrderDoesNotChangeVerdicts) {
  const char *Source = R"(
int a[64];
int b[64];
int g;
void bump() { g += 1; }
int main() {
  int i;
  int s;
  s = 0;
  for (i = 1; i < 64; i++) {
    a[i] = a[i - 1] + b[2 * i];
    s += a[i];
    if (s > 100) { bump(); }
    print(s);
  }
  return s;
}
)";
  Compiled C = analyze(Source);
  ASSERT_TRUE(C.FA);
  std::vector<DepEdge> Baseline = C.DI->edges();
  for (const auto &Perm : chainPermutations()) {
    DepOracleStack Stack(*C.FA, Perm);
    EXPECT_TRUE(edgeSetsIdentical(Baseline, buildDepEdges(Stack)))
        << "permutation starting with " << Perm.front();
  }
}

TEST(DepOracleCompositionTest, OrderChangesOnlyAttribution) {
  // A same-base scalar conflict is answerable by 'alias' alone; putting it
  // first or last must not change the verdict, only the responder when
  // another oracle could never claim it anyway. Here we check the stats:
  // under the reversed chain the same queries are answered, with identical
  // per-verdict totals summed across oracles.
  Compiled C = analyze(R"(
int a[32];
int main() {
  int i;
  for (i = 0; i < 32; i++) { a[i] = a[i] + 1; print(i); }
  return 0;
}
)");
  auto Totals = [](DepOracleStack &S) {
    uint64_t NoDep = 0, MayDep = 0, MustDep = 0;
    for (const auto &St : S.oracleStats()) {
      NoDep += St.NoDep;
      MayDep += St.MayDep;
      MustDep += St.MustDep;
    }
    return std::make_tuple(NoDep, MayDep, MustDep);
  };
  DepOracleStack Fwd(*C.FA, chainPermutations()[0]);
  DepOracleStack Rev(*C.FA, chainPermutations()[1]);
  (void)buildDepEdges(Fwd);
  (void)buildDepEdges(Rev);
  EXPECT_EQ(Totals(Fwd), Totals(Rev));
  EXPECT_EQ(Fwd.cacheStats().Queries, Rev.cacheStats().Queries);
  EXPECT_EQ(Fwd.cacheStats().Fallback, 0u);
  EXPECT_EQ(Rev.cacheStats().Fallback, 0u);
}

class WorkloadCompositionTest : public ::testing::TestWithParam<Workload> {};

TEST_P(WorkloadCompositionTest, PermutedChainsAgreeOnWorkloads) {
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_TRUE(M);
  for (const auto &F : M->functions()) {
    if (F->isDeclaration())
      continue;
    FunctionAnalysis FA(*F);
    DepOracleStack Default(FA);
    std::vector<DepEdge> Baseline = buildDepEdges(Default);
    for (const auto &Perm : chainPermutations()) {
      DepOracleStack Stack(FA, Perm);
      EXPECT_TRUE(edgeSetsIdentical(Baseline, buildDepEdges(Stack)))
          << W.Name << " @" << F->getName() << " permutation starting with "
          << Perm.front();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    NAS, WorkloadCompositionTest, ::testing::ValuesIn(nasWorkloads()),
    [](const ::testing::TestParamInfo<Workload> &Info) {
      return Info.param.Name;
    });

} // namespace
