//===- DepOracleUnitTest.cpp - Per-oracle behavior ---------------*- C++ -*-===//
///
/// Unit tests for each oracle in the dependence stack: alias rules,
/// Banerjee disproofs, IO ordering, opaque fallback, SSA def→use, control,
/// plus the stack's cache/stat bookkeeping and ablation soundness.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "analysis/DepOracle.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

/// First access of \p C's function matching base-object name and
/// direction; null base name matches opaque/IO accesses.
const MemAccess *accessOf(const Compiled &C, const std::string &BaseName,
                          bool Write, unsigned Skip = 0) {
  for (const MemAccess &A : C.Stack->accesses()) {
    if (Write != A.isWrite() && !(A.Kind == MemAccess::AccessKind::ReadWrite))
      continue;
    bool NameMatch = BaseName.empty() ? A.Base == nullptr
                                      : A.Base && A.Base->getName() == BaseName;
    if (!NameMatch)
      continue;
    if (Skip == 0)
      return &A;
    --Skip;
  }
  return nullptr;
}

DepResult carriedQuery(Compiled &C, const MemAccess *Src, const MemAccess *Dst,
                       const Loop *L) {
  DepQuery Q;
  Q.Kind = DepQueryKind::MemCarried;
  Q.Src = Src->I;
  Q.Dst = Dst->I;
  Q.SrcAcc = Src;
  Q.DstAcc = Dst;
  Q.L = L;
  return C.Stack->query(Q);
}

// --- affine ------------------------------------------------------------------

TEST(AffineOracleTest, DisprovesStrideDisjointAccesses) {
  Compiled C = analyze(R"(
int a[64];
int main() {
  int i;
  for (i = 0; i < 30; i++) { a[2 * i] = a[2 * i + 1]; }
  return 0;
}
)");
  ASSERT_TRUE(C.Stack);
  const Loop *L = loopAt(*C.FA, 0);
  const MemAccess *W = accessOf(C, "a", true);
  const MemAccess *R = accessOf(C, "a", false);
  ASSERT_TRUE(W && R);
  DepResult Res = carriedQuery(C, W, R, L);
  EXPECT_EQ(Res.Verdict, DepVerdict::NoDep);
  EXPECT_STREQ(Res.Oracle, "affine");
}

TEST(AffineOracleTest, RecurrenceIsProvenNotJustAssumed) {
  // a[i] vs a[i-1]: every non-delta term cancels and the offset solves to
  // delta = 1 within the trip count — the distance-1 conflict provably
  // manifests, so the verdict is MustDep (not the conservative MayDep),
  // which in turn bars speculative downgrade and annotation-based removal.
  Compiled C = analyze(R"(
int a[64];
int main() {
  int i;
  for (i = 1; i < 64; i++) { a[i] = a[i - 1] + 1; }
  return 0;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  const MemAccess *W = accessOf(C, "a", true);
  const MemAccess *R = accessOf(C, "a", false);
  ASSERT_TRUE(W && R);
  DepResult Res = carriedQuery(C, W, R, L);
  EXPECT_EQ(Res.Verdict, DepVerdict::MustDep);
  EXPECT_STREQ(Res.Oracle, "affine");
}

TEST(AffineOracleTest, DistanceBeyondTripCountDisproven) {
  Compiled C = analyze(R"(
int a[256];
int main() {
  int i;
  for (i = 0; i < 50; i++) { a[i] = a[i + 100]; }
  return 0;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  const MemAccess *W = accessOf(C, "a", true);
  const MemAccess *R = accessOf(C, "a", false);
  ASSERT_TRUE(W && R);
  EXPECT_EQ(carriedQuery(C, W, R, L).Verdict, DepVerdict::NoDep);
  EXPECT_EQ(carriedQuery(C, R, W, L).Verdict, DepVerdict::NoDep);
}

// --- alias -------------------------------------------------------------------

TEST(AliasOracleTest, DistinctGlobalsDisproven) {
  Compiled C = analyze(R"(
int a[64];
int b[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) { a[i] = b[i]; }
  return 0;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  const MemAccess *W = accessOf(C, "a", true);
  const MemAccess *R = accessOf(C, "b", false);
  ASSERT_TRUE(W && R);
  DepResult Res = carriedQuery(C, W, R, L);
  EXPECT_EQ(Res.Verdict, DepVerdict::NoDep);
  EXPECT_STREQ(Res.Oracle, "alias");
}

TEST(AliasOracleTest, SameScalarObjectAssumed) {
  Compiled C = analyze(R"(
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 8; i++) { s += i; }
  return s;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  const MemAccess *W = accessOf(C, "s", true, /*Skip=*/1); // store inside loop
  ASSERT_TRUE(W);
  DepResult Res = carriedQuery(C, W, W, L);
  EXPECT_EQ(Res.Verdict, DepVerdict::MayDep);
  EXPECT_STREQ(Res.Oracle, "alias");
}

TEST(AliasOracleTest, ArgumentMayAliasGlobal) {
  Compiled C = analyze(R"(
int g[16];
void kernel(int p[]) {
  int i;
  for (i = 0; i < 16; i++) { p[i] = g[i]; }
}
int main() {
  kernel(g);
  return 0;
}
)",
                       "kernel");
  const Loop *L = loopAt(*C.FA, 0);
  const MemAccess *W = accessOf(C, "p", true);
  const MemAccess *R = accessOf(C, "g", false);
  ASSERT_TRUE(W && R);
  DepResult Res = carriedQuery(C, W, R, L);
  EXPECT_EQ(Res.Verdict, DepVerdict::MayDep);
  EXPECT_STREQ(Res.Oracle, "alias");
}

// --- io ----------------------------------------------------------------------

TEST(IOOracleTest, PrintOrdersOnlyAgainstPrint) {
  Compiled C = analyze(R"(
int a[8];
int main() {
  int i;
  for (i = 0; i < 8; i++) { a[i] = i; print(i); }
  return 0;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  const MemAccess *Store = accessOf(C, "a", true);
  const MemAccess *Print = accessOf(C, "", true); // IO: null base, writeish
  ASSERT_TRUE(Store && Print);
  ASSERT_TRUE(Print->IsIO);
  // Cross I/O-vs-data: disproven by the io oracle.
  DepResult Cross = carriedQuery(C, Store, Print, L);
  EXPECT_EQ(Cross.Verdict, DepVerdict::NoDep);
  EXPECT_STREQ(Cross.Oracle, "io");
  // I/O against itself: ordered conservatively.
  DepResult SelfIO = carriedQuery(C, Print, Print, L);
  EXPECT_EQ(SelfIO.Verdict, DepVerdict::MayDep);
  EXPECT_STREQ(SelfIO.Oracle, "io");
}

// --- opaque ------------------------------------------------------------------

TEST(OpaqueOracleTest, DefinedCallAssumedAgainstEverything) {
  Compiled C = analyze(R"(
int g;
void bump() { g += 1; }
int a[8];
int main() {
  int i;
  for (i = 0; i < 8; i++) { a[i] = i; bump(); }
  return g;
}
)");
  const Loop *L = loopAt(*C.FA, 0);
  const MemAccess *Store = accessOf(C, "a", true);
  const MemAccess *Call = accessOf(C, "", true);
  ASSERT_TRUE(Store && Call);
  ASSERT_TRUE(Call->isOpaque());
  DepResult Res = carriedQuery(C, Store, Call, L);
  EXPECT_EQ(Res.Verdict, DepVerdict::MayDep);
  EXPECT_STREQ(Res.Oracle, "opaque");
}

// --- ssa / control -----------------------------------------------------------

TEST(SSAOracleTest, DefUseIsMustDep) {
  Compiled C = analyze("int main() { int x; x = 1 + 2; return x; }");
  const Instruction *Def = nullptr, *Use = nullptr;
  for (Instruction *I : C.FA->instructions())
    for (Value *Op : I->operands())
      if (auto *D = dyn_cast<Instruction>(Op)) {
        Def = D;
        Use = I;
      }
  ASSERT_TRUE(Def && Use);
  DepQuery Q;
  Q.Kind = DepQueryKind::Register;
  Q.Src = Def;
  Q.Dst = Use;
  DepResult R = C.Stack->query(Q);
  EXPECT_EQ(R.Verdict, DepVerdict::MustDep);
  EXPECT_EQ(R.Kind, DepKind::Register);
  EXPECT_STREQ(R.Oracle, "ssa");

  // An unrelated pair is disproven.
  DepQuery Q2;
  Q2.Kind = DepQueryKind::Register;
  Q2.Src = Use;
  Q2.Dst = Def;
  EXPECT_EQ(C.Stack->query(Q2).Verdict, DepVerdict::NoDep);
}

TEST(ControlOracleTest, BranchControlsMustDep) {
  Compiled C = analyze(R"(
int main() {
  int x;
  x = 1;
  if (x > 0) { x = 2; }
  return x;
}
)");
  bool Found = false;
  for (const DepEdge &E : C.DI->edges())
    if (E.Kind == DepKind::Control && isa<CondBranchInst>(E.Src)) {
      DepQuery Q;
      Q.Kind = DepQueryKind::Control;
      Q.Src = E.Src;
      Q.Dst = E.Dst;
      DepResult R = C.Stack->query(Q);
      EXPECT_EQ(R.Verdict, DepVerdict::MustDep);
      EXPECT_STREQ(R.Oracle, "control");
      Found = true;
    }
  EXPECT_TRUE(Found);
}

// --- stack bookkeeping -------------------------------------------------------

TEST(DepOracleStackTest, RepeatedQueriesHitTheCache) {
  Compiled C = analyze(R"(
int a[64];
int main() {
  int i;
  for (i = 1; i < 64; i++) { a[i] = a[i - 1]; }
  return 0;
}
)");
  uint64_t Q0 = C.Stack->cacheStats().Queries;
  uint64_t H0 = C.Stack->cacheStats().Hits;
  // Rebuild the edge set: every query repeats, so every one is a hit.
  (void)buildDepEdges(*C.Stack);
  uint64_t NewQueries = C.Stack->cacheStats().Queries - Q0;
  uint64_t NewHits = C.Stack->cacheStats().Hits - H0;
  EXPECT_GT(NewQueries, 0u);
  EXPECT_EQ(NewQueries, NewHits);
}

TEST(DepOracleStackTest, StatsCountAnswersAndDisproofs) {
  Compiled C = analyze(R"(
int a[64];
int b[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) { a[i] = b[i]; }
  return 0;
}
)");
  bool SawAliasDisproof = false, SawSSA = false;
  for (const auto &S : C.Stack->oracleStats()) {
    if (std::string(S.Name) == "alias" && S.NoDep > 0)
      SawAliasDisproof = true;
    if (std::string(S.Name) == "ssa" && S.MustDep > 0)
      SawSSA = true;
    EXPECT_EQ(S.Answered, S.NoDep + S.MayDep + S.MustDep) << S.Name;
  }
  EXPECT_TRUE(SawAliasDisproof);
  EXPECT_TRUE(SawSSA);
  EXPECT_EQ(C.Stack->cacheStats().Fallback, 0u)
      << "full stack must claim every query";
}

TEST(DepOracleStackTest, KnownOracleNames) {
  EXPECT_TRUE(isKnownDepOracleName("affine"));
  EXPECT_TRUE(isKnownDepOracleName("ssa"));
  EXPECT_FALSE(isKnownDepOracleName("banerjee"));
  EXPECT_EQ(knownDepOracleNames().size(), 6u);
  for (const std::string &N : knownDepOracleNames()) {
    Compiled C = analyze("int main() { return 0; }");
    EXPECT_NE(createDepOracle(N, *C.FA), nullptr) << N;
  }
}

TEST(DepOracleStackTest, AblationOnlyAddsEdges) {
  // Removing disproof oracles can only lose NoDep answers: the ablated
  // edge set is a superset (soundness of ablation).
  Compiled C = analyze(R"(
int a[64];
int b[64];
int main() {
  int i;
  for (i = 0; i < 30; i++) { a[2 * i] = b[2 * i + 1]; }
  return 0;
}
)");
  std::vector<DepEdge> Full = C.DI->edges();
  DepOracleStack NoDisproofs(*C.FA, {"ssa", "control", "io", "opaque"});
  std::vector<DepEdge> Ablated = buildDepEdges(NoDisproofs);
  EXPECT_GE(Ablated.size(), Full.size());

  DepOracleStack NoAffine(*C.FA, {"ssa", "control", "io", "opaque", "alias"});
  std::vector<DepEdge> NoAffineEdges = buildDepEdges(NoAffine);
  EXPECT_GE(NoAffineEdges.size(), Full.size());
  EXPECT_LE(NoAffineEdges.size(), Ablated.size());
}

} // namespace
