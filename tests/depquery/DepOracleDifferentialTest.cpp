//===- DepOracleDifferentialTest.cpp - Stack vs seed monolith ----*- C++ -*-===//
///
/// The refactor's acceptance gate: for every workload (and every defined
/// function), the dependence edge set produced through the DepOracleStack
/// is bit-identical to the seed monolithic implementation's
/// (referenceDepEdges), and the downstream artifacts — the per-loop
/// planner views under PDG / J&K / PS-PDG and the PS-PDG edge sets — are
/// identical when built from either edge source.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "analysis/DepOracle.h"
#include "analysis/ReferenceDependence.h"
#include "parallel/AbstractionView.h"
#include "parallel/LoopSCCDAG.h"
#include "pspdg/Fingerprint.h"
#include "pspdg/PSPDGBuilder.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

std::string describeEdge(const FunctionAnalysis &FA, const DepEdge &E) {
  std::string S = "edge " + std::to_string(FA.indexOf(E.Src)) + " -> " +
                  std::to_string(FA.indexOf(E.Dst)) +
                  " kind=" + std::to_string(static_cast<int>(E.Kind)) +
                  " intra=" + std::to_string(E.Intra) + " carried={";
  for (unsigned H : E.CarriedAtHeaders)
    S += std::to_string(H) + ",";
  S += "} must={";
  for (unsigned H : E.MustCarriedAtHeaders)
    S += std::to_string(H) + ",";
  S += "} iv=" + std::to_string(E.IsIVDep) + " io=" + std::to_string(E.IsIO);
  return S;
}

::testing::AssertionResult edgesBitIdentical(const FunctionAnalysis &FA,
                                             const std::vector<DepEdge> &A,
                                             const std::vector<DepEdge> &B) {
  if (A.size() != B.size())
    return ::testing::AssertionFailure()
           << "edge counts differ: " << A.size() << " vs " << B.size();
  for (size_t I = 0; I < A.size(); ++I) {
    const DepEdge &X = A[I], &Y = B[I];
    if (X.Src != Y.Src || X.Dst != Y.Dst || X.Kind != Y.Kind ||
        X.Intra != Y.Intra || X.CarriedAtHeaders != Y.CarriedAtHeaders ||
        X.MustCarriedAtHeaders != Y.MustCarriedAtHeaders ||
        X.MemObject != Y.MemObject || X.IsIVDep != Y.IsIVDep ||
        X.IsIO != Y.IsIO)
      return ::testing::AssertionFailure()
             << "edge " << I << " differs:\n  stack:     "
             << describeEdge(FA, X) << "\n  reference: "
             << describeEdge(FA, Y);
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult viewsIdentical(const LoopPlanView &A,
                                          const LoopPlanView &B) {
  if (A.Insts != B.Insts)
    return ::testing::AssertionFailure() << "instruction lists differ";
  if (A.Edges.size() != B.Edges.size())
    return ::testing::AssertionFailure()
           << "view edge counts differ: " << A.Edges.size() << " vs "
           << B.Edges.size();
  for (size_t I = 0; I < A.Edges.size(); ++I)
    if (A.Edges[I].Src != B.Edges[I].Src ||
        A.Edges[I].Dst != B.Edges[I].Dst ||
        A.Edges[I].CarriedAtLoop != B.Edges[I].CarriedAtLoop)
      return ::testing::AssertionFailure() << "view edge " << I << " differs";
  if (A.TripCount != B.TripCount || A.TripCountable != B.TripCountable ||
      A.HasWorksharingDirective != B.HasWorksharingDirective ||
      A.NumOrderlessConflicts != B.NumOrderlessConflicts)
    return ::testing::AssertionFailure() << "view metadata differs";
  return ::testing::AssertionSuccess();
}

class WorkloadDifferentialTest : public ::testing::TestWithParam<Workload> {};

TEST_P(WorkloadDifferentialTest, RawEdgeSetsBitIdentical) {
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_TRUE(M);
  for (const auto &F : M->functions()) {
    if (F->isDeclaration())
      continue;
    FunctionAnalysis FA(*F);
    DepOracleStack Stack(FA);
    EXPECT_TRUE(
        edgesBitIdentical(FA, buildDepEdges(Stack), referenceDepEdges(FA)))
        << W.Name << " @" << F->getName();
  }
}

TEST_P(WorkloadDifferentialTest, AbstractionViewsIdenticalPerLoop) {
  // For every workload × {pdg, jk, pspdg}: the planner's per-loop views
  // built through the oracle stack equal those built from the reference
  // (seed) edge set.
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_TRUE(M);
  for (const auto &F : M->functions()) {
    if (F->isDeclaration())
      continue;
    FunctionAnalysis FA(*F);
    DepOracleStack Stack(FA);
    std::vector<DepEdge> RefEdges = referenceDepEdges(FA);

    auto StackPSPDG = buildPSPDG(FA, Stack);
    auto RefPSPDG = buildPSPDGFromEdges(FA, RefEdges);

    for (AbstractionKind Kind :
         {AbstractionKind::PDG, AbstractionKind::JK, AbstractionKind::PSPDG}) {
      const PSPDG *GS = Kind == AbstractionKind::PSPDG ? StackPSPDG.get()
                                                       : nullptr;
      const PSPDG *GR = Kind == AbstractionKind::PSPDG ? RefPSPDG.get()
                                                       : nullptr;
      AbstractionView ViaStack(Kind, FA, Stack, GS);
      AbstractionView ViaReference(Kind, FA, RefEdges, GR);
      for (const Loop *L : FA.loopInfo().loops())
        EXPECT_TRUE(
            viewsIdentical(ViaStack.viewFor(*L), ViaReference.viewFor(*L)))
            << W.Name << " @" << F->getName() << " "
            << abstractionName(Kind) << " loop header " << L->getHeader();
    }
  }
}

TEST_P(WorkloadDifferentialTest, PSPDGIdenticalFromEitherEdgeSource) {
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_TRUE(M);
  FunctionAnalysis FA(*M->getFunction("main"));
  DepOracleStack Stack(FA);
  auto ViaStack = buildPSPDG(FA, Stack);
  auto ViaReference = buildPSPDGFromEdges(FA, referenceDepEdges(FA));
  EXPECT_EQ(fingerprint(*ViaStack), fingerprint(*ViaReference)) << W.Name;
  EXPECT_EQ(ViaStack->directedEdges().size(),
            ViaReference->directedEdges().size())
      << W.Name;
  EXPECT_EQ(ViaStack->undirectedEdges().size(),
            ViaReference->undirectedEdges().size())
      << W.Name;
}

TEST_P(WorkloadDifferentialTest, CacheCollaboratesAcrossConsumers) {
  // Acceptance: the memoizing cache achieves a >0% hit rate on every
  // workload when the standard consumers share one stack.
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_TRUE(M);
  FunctionAnalysis FA(*M->getFunction("main"));
  DepOracleStack Stack(FA);
  (void)buildDepEdges(Stack);           // PDG baseline
  auto G = buildPSPDG(FA, Stack);       // PS-PDG: same queries again
  AbstractionView V(AbstractionKind::JK, FA, Stack); // J&K view: again
  (void)G;
  (void)V;
  EXPECT_GT(Stack.cacheStats().hitRate(), 0.0) << W.Name;
  EXPECT_GT(Stack.cacheStats().Hits, Stack.cacheStats().Queries / 2)
      << W.Name;
}

INSTANTIATE_TEST_SUITE_P(
    NAS, WorkloadDifferentialTest, ::testing::ValuesIn(nasWorkloads()),
    [](const ::testing::TestParamInfo<Workload> &Info) {
      return Info.param.Name;
    });

// Targeted programs beyond the NAS set: calls, IO mixes, nests, guards.
TEST(DifferentialTest, TargetedPrograms) {
  const char *Programs[] = {
      "int main() { return 0; }",
      R"(
int g;
void bump() { g += 1; }
int main() {
  int i;
  for (i = 0; i < 4; i++) { bump(); print(i); }
  return g;
}
)",
      R"(
int buf[64];
int main() {
  int i;
  int j;
  for (i = 1; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      buf[i * 8 + j] = buf[(i - 1) * 8 + j] + 1;
    }
  }
  return 0;
}
)",
      R"(
int a[64];
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 64; i++) {
    if (a[i] > 0) { s += a[i]; }
  }
  return s;
}
)",
  };
  for (const char *Source : Programs) {
    Compiled C = analyze(Source);
    ASSERT_TRUE(C.FA);
    EXPECT_TRUE(
        edgesBitIdentical(*C.FA, C.DI->edges(), referenceDepEdges(*C.FA)))
        << Source;
  }
}

} // namespace
