//===- CoverageTest.cpp - Loop coverage profiling -----------------*- C++ -*-===//

#include "../TestUtil.h"
#include "emulator/Coverage.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

TEST(CoverageTest, HotLoopDominatesCoverage) {
  auto M = compile(R"(
int a[1000];
int main() {
  int i;
  int x;
  x = 1;
  for (i = 0; i < 1000; i++) { a[i] = i * 2 + 1; }
  return x;
}
)");
  ModuleAnalyses MA(*M);
  CoverageProfiler Cov(MA);
  Interpreter I(*M);
  I.addObserver(&Cov);
  I.run();
  CoverageMap CM = Cov.coverage();
  ASSERT_EQ(CM.size(), 1u);
  EXPECT_GT(CM.begin()->second, 0.9);
}

TEST(CoverageTest, NestedLoopCountsTowardAllEnclosing) {
  auto M = compile(R"(
int main() {
  int i;
  int j;
  int s;
  s = 0;
  for (i = 0; i < 10; i++) {
    for (j = 0; j < 50; j++) { s += 1; }
  }
  return s;
}
)");
  ModuleAnalyses MA(*M);
  CoverageProfiler Cov(MA);
  Interpreter I(*M);
  I.addObserver(&Cov);
  I.run();
  CoverageMap CM = Cov.coverage();
  ASSERT_EQ(CM.size(), 2u);
  double Outer = 0, Inner = 0;
  for (auto &[Key, Frac] : CM) {
    Outer = std::max(Outer, Frac);
    Inner = Inner == 0 ? Frac : std::min(Inner, Frac);
  }
  EXPECT_GE(Outer, Inner);
  EXPECT_GT(Inner, 0.5); // inner loop is the hot part
}

TEST(CoverageTest, ColdLoopBelowOnePercent) {
  auto M = compile(R"(
int a[2000];
int b[4];
int main() {
  int i;
  int j;
  for (i = 0; i < 2000; i++) { a[i] = i * 3 + (i % 7); }
  for (j = 0; j < 2; j++) { b[j] = j; }
  return 0;
}
)");
  ModuleAnalyses MA(*M);
  CoverageProfiler Cov(MA);
  Interpreter I(*M);
  I.addObserver(&Cov);
  I.run();
  CoverageMap CM = Cov.coverage();
  ASSERT_EQ(CM.size(), 2u);
  unsigned Hot = 0, Cold = 0;
  for (auto &[Key, Frac] : CM) {
    if (Frac >= 0.01)
      ++Hot;
    else
      ++Cold;
  }
  EXPECT_EQ(Hot, 1u);
  EXPECT_EQ(Cold, 1u);
}

TEST(CoverageTest, LoopsInCalleesAttributed) {
  auto M = compile(R"(
int work() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 500; i++) { s += i; }
  return s;
}
int main() { return work(); }
)");
  ModuleAnalyses MA(*M);
  CoverageProfiler Cov(MA);
  Interpreter I(*M);
  I.addObserver(&Cov);
  I.run();
  CoverageMap CM = Cov.coverage();
  ASSERT_EQ(CM.size(), 1u);
  EXPECT_EQ(CM.begin()->first.first, "work");
  EXPECT_GT(CM.begin()->second, 0.9);
}

} // namespace
