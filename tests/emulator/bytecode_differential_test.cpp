//===- bytecode_differential_test.cpp - Bytecode vs walker equivalence ----===//
///
/// The bytecode engine's contract: observably bit-identical runs to the
/// tree-walking golden reference. Differentially tested three ways:
///
///   1. Sequential — both engines over every workload: same output lines,
///      exit value, and dynamic instruction count.
///   2. Parallel — ParallelRuntime under both engines across all 8
///      workloads × {pdg, jk, pspdg} plan views × {1, 2, 8} threads: the
///      bytecode-parallel run must match the walker-sequential reference
///      (and the walker-parallel run, which is itself checked against it).
///   3. Observer stream — both engines drive the coverage profiler to the
///      same result (same instruction/block event sequence).
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Coverage.h"
#include "emulator/Interpreter.h"
#include "runtime/ParallelRuntime.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

RunResult runSeq(const Module &M, ExecEngineKind E) {
  Interpreter I(M);
  I.setEngine(E);
  return I.run();
}

class WorkloadDifferential : public ::testing::TestWithParam<Workload> {};

TEST_P(WorkloadDifferential, SequentialRunsBitIdentical) {
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_NE(M, nullptr);
  RunResult Walk = runSeq(*M, ExecEngineKind::Walker);
  RunResult Byte = runSeq(*M, ExecEngineKind::Bytecode);
  EXPECT_TRUE(Walk.Completed);
  EXPECT_TRUE(Byte.Completed);
  EXPECT_EQ(Byte.Output, Walk.Output) << W.Name;
  EXPECT_EQ(Byte.ExitValue, Walk.ExitValue) << W.Name;
  EXPECT_EQ(Byte.InstructionsExecuted, Walk.InstructionsExecuted) << W.Name;
}

TEST_P(WorkloadDifferential, ParallelRunsBitIdenticalAcrossPlansAndThreads) {
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_NE(M, nullptr);
  RunResult Ref = runSeq(*M, ExecEngineKind::Walker);

  for (AbstractionKind Abs :
       {AbstractionKind::PDG, AbstractionKind::JK, AbstractionKind::PSPDG}) {
    for (unsigned Threads : {1u, 2u, 8u}) {
      RuntimePlan Plan = buildRuntimePlan(*M, Abs, Threads);
      std::string What = W.Name + "/" + abstractionName(Abs) + "/t" +
                         std::to_string(Threads);

      ParallelRuntime WalkRT(*M, Plan, ExecEngineKind::Walker);
      ParallelRunResult WalkPar = WalkRT.run();
      ASSERT_TRUE(WalkPar.Error.empty()) << What << ": " << WalkPar.Error;
      EXPECT_EQ(WalkPar.R.Output, Ref.Output) << What << " (walker)";
      EXPECT_EQ(WalkPar.R.ExitValue, Ref.ExitValue) << What << " (walker)";

      ParallelRuntime ByteRT(*M, Plan, ExecEngineKind::Bytecode);
      ParallelRunResult BytePar = ByteRT.run();
      ASSERT_TRUE(BytePar.Error.empty()) << What << ": " << BytePar.Error;
      EXPECT_EQ(BytePar.R.Output, Ref.Output) << What << " (bytecode)";
      EXPECT_EQ(BytePar.R.ExitValue, Ref.ExitValue) << What << " (bytecode)";

      // Same schedules executed on both engines.
      ASSERT_EQ(BytePar.Loops.size(), WalkPar.Loops.size()) << What;
      for (size_t L = 0; L < BytePar.Loops.size(); ++L) {
        EXPECT_EQ(BytePar.Loops[L].Kind, WalkPar.Loops[L].Kind) << What;
        EXPECT_EQ(BytePar.Loops[L].Invocations, WalkPar.Loops[L].Invocations)
            << What;
        EXPECT_EQ(BytePar.Loops[L].Iterations, WalkPar.Loops[L].Iterations)
            << What;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadDifferential,
                         ::testing::ValuesIn(nasWorkloads()),
                         [](const ::testing::TestParamInfo<Workload> &I) {
                           return I.param.Name;
                         });

TEST(BytecodeDifferentialTest, ObserverStreamMatchesWalker) {
  // The coverage profiler consumes the full observer stream (instruction +
  // block-transfer events); identical coverage maps mean identical streams
  // for this workload.
  auto M = compile(findWorkload("IS")->Source);
  ASSERT_NE(M, nullptr);
  ModuleAnalyses MA(*M);

  CoverageProfiler WalkCov(MA);
  Interpreter Walk(*M);
  Walk.setEngine(ExecEngineKind::Walker);
  Walk.addObserver(&WalkCov);
  RunResult WalkR = Walk.run();

  CoverageProfiler ByteCov(MA);
  Interpreter Byte(*M);
  Byte.setEngine(ExecEngineKind::Bytecode);
  Byte.addObserver(&ByteCov);
  RunResult ByteR = Byte.run();

  EXPECT_EQ(ByteR.Output, WalkR.Output);
  EXPECT_EQ(ByteR.InstructionsExecuted, WalkR.InstructionsExecuted);
  EXPECT_EQ(ByteCov.totalInstructions(), WalkCov.totalInstructions());
  // Identical event streams produce identical coverage fractions, exactly.
  EXPECT_EQ(ByteCov.coverage(), WalkCov.coverage());
}

TEST(BytecodeDifferentialTest, BudgetAbortsOnTheSameInstruction) {
  // The local-budget lease must trip on exactly the same instruction as
  // the walker's per-instruction charging.
  auto M = compile(R"PSC(
int a[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) {
    a[i] = i * 3;
  }
  return a[63];
}
)PSC");
  ASSERT_NE(M, nullptr);
  for (uint64_t Budget : {1ull, 7ull, 50ull, 123ull}) {
    Interpreter Walk(*M);
    Walk.setEngine(ExecEngineKind::Walker);
    Walk.setInstructionBudget(Budget);
    RunResult WalkR = Walk.run();

    Interpreter Byte(*M);
    Byte.setEngine(ExecEngineKind::Bytecode);
    Byte.setInstructionBudget(Budget);
    RunResult ByteR = Byte.run();

    EXPECT_EQ(ByteR.Completed, WalkR.Completed) << "budget=" << Budget;
    EXPECT_EQ(ByteR.InstructionsExecuted, WalkR.InstructionsExecuted)
        << "budget=" << Budget;
    EXPECT_EQ(ByteR.Output, WalkR.Output) << "budget=" << Budget;
  }
}

TEST(BytecodeDifferentialTest, IntrinsicsAndRegionsMatchWalker) {
  auto M = compile(R"PSC(
double acc = 0.0;
int hits[4];
int main() {
  int i;
  int b;
  double x;
  #pragma psc parallel for private(x, b) reduction(+: acc)
  for (i = 0; i < 200; i++) {
    x = sqrt(i * 1.0) + sin(i * 0.25) + cos(i * 0.5);
    x = fmax(x, fabs(x) - 1.0) + fmin(exp(x * 0.01), log(i + 2.0));
    x = x + pow(1.01, i % 7);
    acc = acc + x;
    b = (i * 29) % 4;
    #pragma psc critical
    {
      hits[b] = hits[b] + imax(1, imin(2, i % 3));
    }
  }
  printf64(acc);
  print(hits[0] + hits[1] + hits[2] + hits[3]);
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  RunResult Walk = runSeq(*M, ExecEngineKind::Walker);
  RunResult Byte = runSeq(*M, ExecEngineKind::Bytecode);
  EXPECT_EQ(Byte.Output, Walk.Output);
  EXPECT_EQ(Byte.InstructionsExecuted, Walk.InstructionsExecuted);

  for (ExecEngineKind E :
       {ExecEngineKind::Walker, ExecEngineKind::Bytecode}) {
    RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 4);
    ParallelRuntime RT(*M, Plan, E);
    ParallelRunResult Par = RT.run();
    ASSERT_TRUE(Par.Error.empty()) << execEngineName(E);
    EXPECT_EQ(Par.R.Output, Walk.Output) << execEngineName(E);
  }
}

TEST(BytecodeDifferentialTest, FunctionCallsMatchWalker) {
  auto M = compile(R"PSC(
int fib(int n) {
  if (n < 2) {
    return n;
  }
  return fib(n - 1) + fib(n - 2);
}
double scale(double x, int k) {
  return x * k + 0.5;
}
int main() {
  int i;
  double s;
  s = 0.0;
  for (i = 0; i < 12; i++) {
    s = s + scale(fib(i) * 1.0, i);
  }
  print(fib(15));
  printf64(s);
  return fib(10) % 100;
}
)PSC");
  ASSERT_NE(M, nullptr);
  RunResult Walk = runSeq(*M, ExecEngineKind::Walker);
  RunResult Byte = runSeq(*M, ExecEngineKind::Bytecode);
  EXPECT_EQ(Byte.Output, Walk.Output);
  EXPECT_EQ(Byte.ExitValue, Walk.ExitValue);
  EXPECT_EQ(Byte.InstructionsExecuted, Walk.InstructionsExecuted);
}

} // namespace
