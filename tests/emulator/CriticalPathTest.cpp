//===- CriticalPathTest.cpp - Plan-constrained CP evaluation ------*- C++ -*-===//

#include "../TestUtil.h"
#include "emulator/CriticalPath.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

double cp(const Module &M, AbstractionKind K) {
  CriticalPathModel Model(M, K);
  CriticalPathEvaluator Eval(Model);
  Interpreter I(M);
  I.addObserver(&Eval);
  I.run();
  return Eval.criticalPath();
}

TEST(CriticalPathTest, StraightLineCPEqualsInstructionCount) {
  auto M = compile("int main() { int x; x = 1; x = x + 2; return x; }");
  Interpreter I(*M);
  RunResult R = I.run();
  // Every abstraction serializes straight-line code fully.
  EXPECT_DOUBLE_EQ(cp(*M, AbstractionKind::OpenMP),
                   static_cast<double>(R.InstructionsExecuted));
  EXPECT_DOUBLE_EQ(cp(*M, AbstractionKind::PDG),
                   static_cast<double>(R.InstructionsExecuted));
}

TEST(CriticalPathTest, DOALLLoopCollapsesToMaxIteration) {
  auto M = compile(R"(
int a[100];
int main() {
  int i;
  for (i = 0; i < 100; i++) { a[i] = i * 3; }
  return 0;
}
)");
  double Seq = cp(*M, AbstractionKind::OpenMP); // no annotation: sequential
  double Pdg = cp(*M, AbstractionKind::PDG);    // provably DOALL
  EXPECT_GT(Seq, 500.0);
  EXPECT_LT(Pdg, Seq / 10.0); // 100 iterations overlap
}

TEST(CriticalPathTest, SequentialRecurrenceDoesNotCollapse) {
  auto M = compile(R"(
int a[100];
int main() {
  int i;
  for (i = 1; i < 100; i++) { a[i] = a[i - 1] + 1; }
  return 0;
}
)");
  double Omp = cp(*M, AbstractionKind::OpenMP);
  double Pdg = cp(*M, AbstractionKind::PDG);
  // HELIX overlaps the IV bookkeeping, but the 3-instruction recurrence
  // chain (load, add, store × 99 iterations) must stay serialized.
  EXPECT_GE(Pdg, 99.0 * 3);
  EXPECT_LT(Pdg, Omp); // some overlap did happen
}

TEST(CriticalPathTest, OpenMPHonorsProgrammerPlan) {
  auto M = compile(R"(
int a[256];
int idx[256];
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 256; i++) { a[idx[i]] += i; }
  return 0;
}
)");
  double Omp = cp(*M, AbstractionKind::OpenMP);
  double Pdg = cp(*M, AbstractionKind::PDG);
  // The programmer's plan wins where the PDG is conservative (the paper's
  // motivating observation: PDG < 1x of OpenMP).
  EXPECT_LT(Omp, Pdg);
}

TEST(CriticalPathTest, CriticalSerializesUnderOpenMP) {
  auto M = compile(R"(
int hist[16];
int idx[512];
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 512; i++) {
    #pragma psc critical
    { hist[idx[i]] += 1; }
  }
  return 0;
}
)");
  double Omp = cp(*M, AbstractionKind::OpenMP);
  double Ps = cp(*M, AbstractionKind::PSPDG);
  // The whole body is the critical section: OpenMP's plan serializes it.
  // The PS-PDG's plan must also keep the lock (conflicts exist), so both
  // are serialization-bound and close to each other.
  EXPECT_GT(Omp, 512.0 * 3);
  EXPECT_LE(Ps, Omp);
}

TEST(CriticalPathTest, PSPDGRemovesVacuousLock) {
  // Affine critical content: no conflicts, so the PS-PDG plan drops the
  // lock while OpenMP must serialize it.
  auto M = compile(R"(
int dst[512];
int src[512];
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 512; i++) {
    #pragma psc critical
    { dst[i] += src[i]; }
  }
  return 0;
}
)");
  double Omp = cp(*M, AbstractionKind::OpenMP);
  double Ps = cp(*M, AbstractionKind::PSPDG);
  EXPECT_LT(Ps, Omp / 20.0);
}

TEST(CriticalPathTest, HierarchicalParallelismOnlyPSPDG) {
  // Outer loop carried, inner loop parallel: PDG (outermost only) cannot
  // exploit the inner loop; the PS-PDG can.
  auto M = compile(R"(
double buf[4096];
int main() {
  int i;
  int j;
  for (i = 1; i < 64; i++) {
    for (j = 0; j < 64; j++) {
      buf[i * 64 + j] = buf[(i - 1) * 64 + j] + 1.0;
    }
  }
  return 0;
}
)");
  double Pdg = cp(*M, AbstractionKind::PDG);
  double Ps = cp(*M, AbstractionKind::PSPDG);
  EXPECT_LT(Ps, Pdg / 5.0);
}

TEST(CriticalPathTest, ReductionCollapsesUnderPSPDG) {
  auto M = compile(R"(
double s;
double a[1024];
int main() {
  int i;
  #pragma psc parallel for reduction(+: s)
  for (i = 0; i < 1024; i++) { s = s + a[i] * a[i]; }
  return s;
}
)");
  double Pdg = cp(*M, AbstractionKind::PDG);
  double Jk = cp(*M, AbstractionKind::JK);
  double Ps = cp(*M, AbstractionKind::PSPDG);
  EXPECT_LT(Jk, Pdg / 10.0);
  EXPECT_LE(Ps, Jk * 1.01);
}

TEST(CriticalPathTest, CalleeCostPropagates) {
  auto M = compile(R"(
int work(int n) {
  int i;
  int s;
  s = 0;
  for (i = 0; i < n; i++) { s += i; }
  return s;
}
int main() { return work(50); }
)");
  double Omp = cp(*M, AbstractionKind::OpenMP);
  EXPECT_GT(Omp, 250.0); // the callee's loop cost is not lost
}

TEST(CriticalPathTest, CPNeverExceedsSequential) {
  auto M = compile(R"(
int a[128];
int main() {
  int i;
  int s;
  s = 0;
  #pragma psc parallel for reduction(+: s)
  for (i = 0; i < 128; i++) { s += a[i]; }
  print(s);
  return s;
}
)");
  Interpreter I(*M);
  double Total = static_cast<double>(I.run().InstructionsExecuted);
  for (AbstractionKind K :
       {AbstractionKind::OpenMP, AbstractionKind::PDG, AbstractionKind::JK,
        AbstractionKind::PSPDG})
    EXPECT_LE(cp(*M, K), Total + 1) << abstractionName(K);
}

TEST(CriticalPathTest, ReportRunsAllFourAbstractions) {
  auto M = compile(R"(
int a[64];
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 64; i++) { a[i] = i; }
  return 0;
}
)");
  CriticalPathReport R = evaluateCriticalPaths(*M);
  EXPECT_GT(R.OpenMP, 0.0);
  EXPECT_GT(R.PDG, 0.0);
  EXPECT_GT(R.JK, 0.0);
  EXPECT_GT(R.PSPDG, 0.0);
  EXPECT_GT(R.TotalDynamicInstructions, 0u);
  EXPECT_LE(R.PSPDG, R.OpenMP * 1.01);
}

} // namespace
