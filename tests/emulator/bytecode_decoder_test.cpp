//===- bytecode_decoder_test.cpp - Decode/lowering pass unit tests --------===//
///
/// Unit tests of the decode pass itself: dense slot assignment, alloca and
/// global numbering, operand pre-resolution, branch pre-linking, and
/// decode-time constant folding. (Dynamic equivalence is covered by
/// bytecode_differential_test.cpp.)
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Bytecode.h"
#include "emulator/Interpreter.h"

#include <gtest/gtest.h>

#include <set>

using namespace psc;
using namespace psc::test;

namespace {

struct DecodedMain {
  std::unique_ptr<Module> M;
  std::unique_ptr<BytecodeModule> BM;
  const Function *F = nullptr;
  const BCFunction *BF = nullptr;
};

DecodedMain decodeMain(const std::string &Source) {
  DecodedMain D;
  D.M = compile(Source);
  if (!D.M)
    return D;
  D.BM = std::make_unique<BytecodeModule>(*D.M);
  D.F = D.M->getFunction("main");
  D.BF = D.BM->forFunction(D.F);
  return D;
}

// --- Slot and index assignment ----------------------------------------------

TEST(BytecodeDecoderTest, SlotAssignmentIsDenseAndComplete) {
  DecodedMain D = decodeMain(R"PSC(
int g;
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 10; i++) {
    s = s + i * 2;
  }
  g = s;
  return s;
}
)PSC");
  ASSERT_NE(D.BF, nullptr);

  // Every value-producing instruction has a slot; slots are dense and
  // unique; void instructions and allocas have none.
  std::set<uint32_t> Seen;
  uint32_t MaxSlot = 0;
  unsigned Producing = 0;
  for (const BasicBlock *BB : *D.F) {
    for (const Instruction *I : *BB) {
      uint32_t Slot = D.BF->slotOf(I);
      if (isa<AllocaInst>(I)) {
        EXPECT_EQ(Slot, BCInst::NoSlot);
        EXPECT_NE(D.BF->allocaIndexOf(I), BCInst::NoSlot);
        continue;
      }
      if (I->getType()->isVoid()) {
        EXPECT_EQ(Slot, BCInst::NoSlot);
        continue;
      }
      ++Producing;
      ASSERT_NE(Slot, BCInst::NoSlot);
      EXPECT_TRUE(Seen.insert(Slot).second) << "duplicate slot " << Slot;
      MaxSlot = std::max(MaxSlot, Slot);
    }
  }
  EXPECT_EQ(Seen.size(), Producing);
  // Dense: numSlots covers args + producing instructions exactly.
  EXPECT_EQ(D.BF->numSlots(), D.F->getNumArgs() + Producing);
  EXPECT_LT(MaxSlot, D.BF->numSlots());
}

TEST(BytecodeDecoderTest, AllocaIndicesAreDense) {
  DecodedMain D = decodeMain(R"PSC(
int main() {
  int a;
  int b;
  double c;
  a = 1;
  b = 2;
  c = 3.0;
  return a + b + c;
}
)PSC");
  ASSERT_NE(D.BF, nullptr);
  std::set<uint32_t> Idx;
  unsigned NumAllocas = 0;
  for (const BasicBlock *BB : *D.F)
    for (const Instruction *I : *BB)
      if (isa<AllocaInst>(I)) {
        ++NumAllocas;
        uint32_t A = D.BF->allocaIndexOf(I);
        ASSERT_NE(A, BCInst::NoSlot);
        EXPECT_TRUE(Idx.insert(A).second);
        EXPECT_LT(A, D.BF->numAllocas());
      }
  EXPECT_EQ(D.BF->numAllocas(), NumAllocas);
  EXPECT_EQ(Idx.size(), NumAllocas);
}

TEST(BytecodeDecoderTest, GlobalsAreNumberedDenselyInDeclarationOrder) {
  DecodedMain D = decodeMain(R"PSC(
int x;
double y[8];
int z = 7;
int main() {
  return x + z;
}
)PSC");
  ASSERT_NE(D.BF, nullptr);
  const auto &Globals = D.M->globals();
  ASSERT_EQ(Globals.size(), 3u);
  EXPECT_EQ(D.BM->numGlobals(), 3u);
  for (unsigned I = 0; I < Globals.size(); ++I)
    EXPECT_EQ(Globals[I]->getGlobalIndex(), I) << Globals[I]->getName();
}

// --- Operand pre-resolution --------------------------------------------------

TEST(BytecodeDecoderTest, OperandsResolveToSlotsImmediatesGlobalsAllocas) {
  DecodedMain D = decodeMain(R"PSC(
int g[16];
int main() {
  int i;
  i = 3;
  g[i] = i + 40;
  return g[3];
}
)PSC");
  ASSERT_NE(D.BF, nullptr);
  // Find the GEP feeding the store: its base must be a pre-resolved Global
  // operand and no operand anywhere may require IR lookups (all operands
  // are Slot/Imm/Global/Alloca by construction of the enum).
  bool SawGlobalBase = false, SawAllocaPtr = false, SawImm = false;
  for (const BCInst &I : D.BF->code()) {
    if (I.Op == BCOp::GEP && I.A.Kind == BCOperand::K::Global)
      SawGlobalBase = true;
    if ((I.Op == BCOp::LoadI || I.Op == BCOp::Store) &&
        (I.Op == BCOp::LoadI ? I.A : I.B).Kind == BCOperand::K::Alloca)
      SawAllocaPtr = true;
    if (I.Op == BCOp::Store && I.A.Kind == BCOperand::K::ImmI)
      SawImm = true;
  }
  EXPECT_TRUE(SawGlobalBase);
  EXPECT_TRUE(SawAllocaPtr);
  EXPECT_TRUE(SawImm); // i = 3 stores an immediate
}

// --- Branch pre-linking ------------------------------------------------------

TEST(BytecodeDecoderTest, BranchTargetsAreLinkedToBlockPCs) {
  DecodedMain D = decodeMain(R"PSC(
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 5; i++) {
    if (i % 2 == 0) {
      s = s + i;
    } else {
      s = s - 1;
    }
  }
  return s;
}
)PSC");
  ASSERT_NE(D.BF, nullptr);
  unsigned Branches = 0;
  for (const BasicBlock *BB : *D.F) {
    for (const Instruction *I : *BB) {
      uint32_t PC = D.BF->pcOf(I);
      ASSERT_NE(PC, BCInst::NoSlot);
      const BCInst &BI = D.BF->code()[PC];
      EXPECT_EQ(BI.Src, I);
      if (const auto *Br = dyn_cast<BranchInst>(I)) {
        ++Branches;
        EXPECT_EQ(BI.TBlock0, Br->getTarget()->getIndex());
        EXPECT_EQ(BI.Target0, D.BF->blockPC(Br->getTarget()->getIndex()));
      } else if (const auto *CB = dyn_cast<CondBranchInst>(I)) {
        ++Branches;
        EXPECT_EQ(BI.TBlock0, CB->getTrueTarget()->getIndex());
        EXPECT_EQ(BI.TBlock1, CB->getFalseTarget()->getIndex());
        EXPECT_EQ(BI.Target0, D.BF->blockPC(CB->getTrueTarget()->getIndex()));
        EXPECT_EQ(BI.Target1,
                  D.BF->blockPC(CB->getFalseTarget()->getIndex()));
      }
    }
  }
  EXPECT_GE(Branches, 4u); // loop latch + condition + if/else joins
  // Block PCs point at the first instruction of each block.
  for (const BasicBlock *BB : *D.F) {
    if (!BB->empty()) {
      EXPECT_EQ(D.BF->blockPC(BB->getIndex()), D.BF->pcOf(BB->front()));
    }
  }
}

// --- Decode-time constant folding -------------------------------------------

TEST(BytecodeDecoderTest, ConstantOperandsFoldToImmediateWrites) {
  DecodedMain D = decodeMain(R"PSC(
int main() {
  int x;
  x = (3 + 4) * 5 - 100 / 7;
  return x;
}
)PSC");
  ASSERT_NE(D.BF, nullptr);
  // Every pure instruction over constants lowers to ConstI; the decoded
  // stream of main must contain no live int arithmetic for this program.
  unsigned NumConst = 0;
  for (const BCInst &I : D.BF->code()) {
    switch (I.Op) {
    case BCOp::AddI:
    case BCOp::SubI:
    case BCOp::MulI:
    case BCOp::DivI:
      ADD_FAILURE() << "unfolded constant arithmetic at PC "
                    << (&I - D.BF->code().data());
      break;
    case BCOp::ConstI:
      ++NumConst;
      break;
    default:
      break;
    }
  }
  ASSERT_GE(NumConst, 1u);
  // The folded chain's final value is (3+4)*5 - 100/7 = 35 - 14 = 21 and
  // the fold must propagate through the chain to the last ConstI.
  bool Saw21 = false;
  for (const BCInst &I : D.BF->code())
    if (I.Op == BCOp::ConstI && I.A.I == 21)
      Saw21 = true;
  EXPECT_TRUE(Saw21);
  // Instruction count parity: folding never drops instructions.
  EXPECT_EQ(D.BF->code().size(), D.F->getInstructionCount());

  Interpreter I(*D.M);
  I.setBytecode(D.BM.get());
  RunResult R = I.run();
  EXPECT_EQ(R.ExitValue, 21);
}

TEST(BytecodeDecoderTest, FoldingMatchesWalkerDivRemByZeroSemantics) {
  DecodedMain D = decodeMain(R"PSC(
int main() {
  int a;
  int b;
  a = 7 / 0;
  b = 7 % 0;
  print(a);
  print(b);
  return 0;
}
)PSC");
  ASSERT_NE(D.BF, nullptr);
  Interpreter Byte(*D.M);
  Byte.setBytecode(D.BM.get());
  RunResult ByteR = Byte.run();
  Interpreter Walk(*D.M);
  Walk.setEngine(ExecEngineKind::Walker);
  RunResult WalkR = Walk.run();
  EXPECT_EQ(ByteR.Output, WalkR.Output); // both "0"
  ASSERT_EQ(ByteR.Output.size(), 2u);
  EXPECT_EQ(ByteR.Output[0], "0");
  EXPECT_EQ(ByteR.Output[1], "0");
}

TEST(BytecodeDecoderTest, FloatConstantsFoldToConstF) {
  DecodedMain D = decodeMain(R"PSC(
double main_helper(double x) {
  return x * 2.0;
}
int main() {
  double y;
  y = 1.5 + 2.25;
  printf64(main_helper(y));
  return 0;
}
)PSC");
  ASSERT_NE(D.BF, nullptr);
  bool SawConstF = false;
  for (const BCInst &I : D.BF->code())
    if (I.Op == BCOp::ConstF && I.A.F == 3.75)
      SawConstF = true;
  EXPECT_TRUE(SawConstF);
  Interpreter I(*D.M);
  I.setBytecode(D.BM.get());
  RunResult R = I.run();
  ASSERT_EQ(R.Output.size(), 1u);
  EXPECT_EQ(R.Output[0], "7.5");
}

// --- Intrinsic lowering ------------------------------------------------------

TEST(BytecodeDecoderTest, IntrinsicsLowerToIdsAndRegionsPrecomputeLocking) {
  DecodedMain D = decodeMain(R"PSC(
int q;
int main() {
  int i;
  #pragma psc parallel for
  for (i = 0; i < 8; i++) {
    #pragma psc critical
    {
      q = q + 1;
    }
  }
  return q;
}
)PSC");
  ASSERT_NE(D.BF, nullptr);
  bool SawLockingRegion = false, SawRegionEnd = false;
  for (const BCInst &I : D.BF->code()) {
    if (I.Op != BCOp::Intr)
      continue;
    switch (static_cast<BCIntr>(I.Sub)) {
    case BCIntr::RegionBeginLock:
      SawLockingRegion = true;
      break;
    case BCIntr::RegionEnd:
      SawRegionEnd = true;
      break;
    case BCIntr::RegionBeginDyn:
      ADD_FAILURE() << "constant region id not precomputed";
      break;
    default:
      break;
    }
  }
  EXPECT_TRUE(SawLockingRegion);
  EXPECT_TRUE(SawRegionEnd);
}

} // namespace
