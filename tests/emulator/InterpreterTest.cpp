//===- InterpreterTest.cpp - IR interpreter semantics -------------*- C++ -*-===//

#include "../TestUtil.h"
#include "emulator/Interpreter.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

RunResult run(const std::string &Source) {
  auto M = compile(Source);
  if (!M)
    return {};
  Interpreter I(*M);
  return I.run();
}

TEST(InterpreterTest, ReturnValue) {
  EXPECT_EQ(run("int main() { return 41 + 1; }").ExitValue, 42);
}

TEST(InterpreterTest, IntegerArithmetic) {
  EXPECT_EQ(run("int main() { return (7 * 3 - 1) / 4 + 10 % 3; }").ExitValue,
            6);
}

TEST(InterpreterTest, BitwiseOps) {
  EXPECT_EQ(run("int main() { return (12 & 10) | (1 << 4) ^ 3; }").ExitValue,
            (12 & 10) | ((1 << 4) ^ 3));
}

TEST(InterpreterTest, FloatArithmeticAndConversion) {
  EXPECT_EQ(run("int main() { double x; x = 2.5 * 4.0; return x; }").ExitValue,
            10);
  EXPECT_EQ(run("int main() { double x; int y; y = 7; x = y / 2.0; "
                "return x * 10.0; }").ExitValue,
            35);
}

TEST(InterpreterTest, DivisionByZeroYieldsZero) {
  EXPECT_EQ(run("int main() { int z; z = 0; return 5 / z; }").ExitValue, 0);
  EXPECT_EQ(run("int main() { int z; z = 0; return 5 % z; }").ExitValue, 0);
}

TEST(InterpreterTest, ControlFlow) {
  EXPECT_EQ(run(R"(
int main() {
  int x;
  x = 10;
  if (x > 5) { x = 1; } else { x = 2; }
  return x;
}
)").ExitValue,
            1);
}

TEST(InterpreterTest, LoopsAndArrays) {
  EXPECT_EQ(run(R"(
int a[10];
int main() {
  int i;
  int s;
  for (i = 0; i < 10; i++) { a[i] = i * i; }
  s = 0;
  for (i = 0; i < 10; i++) { s += a[i]; }
  return s;
}
)").ExitValue,
            285);
}

TEST(InterpreterTest, WhileLoop) {
  EXPECT_EQ(run(R"(
int main() {
  int n;
  int steps;
  n = 1024;
  steps = 0;
  while (n > 1) { n = n / 2; steps++; }
  return steps;
}
)").ExitValue,
            10);
}

TEST(InterpreterTest, FunctionCallsAndRecursion) {
  EXPECT_EQ(run(R"(
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
)").ExitValue,
            144);
}

TEST(InterpreterTest, ArrayParamsShareStorage) {
  EXPECT_EQ(run(R"(
int buf[4];
void fill(int a[], int v) {
  int i;
  for (i = 0; i < 4; i++) { a[i] = v; }
}
int main() {
  fill(buf, 9);
  return buf[0] + buf[3];
}
)").ExitValue,
            18);
}

TEST(InterpreterTest, GlobalScalarInit) {
  EXPECT_EQ(run("int g = 17; int main() { return g; }").ExitValue, 17);
  EXPECT_EQ(run("double d = 2.5; int main() { return d * 4.0; }").ExitValue,
            10);
}

TEST(InterpreterTest, LocalArraysZeroedPerExecution) {
  EXPECT_EQ(run(R"(
int f() {
  int a[4];
  a[1] += 1;
  return a[1];
}
int main() {
  f();
  return f();
}
)").ExitValue,
            1); // fresh alloca each call: not 2
}

TEST(InterpreterTest, PrintOutputCollected) {
  RunResult R = run(R"(
int main() {
  print(3);
  printf64(1.5);
  print(4);
  return 0;
}
)");
  ASSERT_EQ(R.Output.size(), 3u);
  EXPECT_EQ(R.Output[0], "3");
  EXPECT_EQ(R.Output[1], "1.5");
  EXPECT_EQ(R.Output[2], "4");
}

TEST(InterpreterTest, MathIntrinsics) {
  EXPECT_EQ(run("int main() { return sqrt(81.0); }").ExitValue, 9);
  EXPECT_EQ(run("int main() { return fabs(0.0 - 3.0); }").ExitValue, 3);
  EXPECT_EQ(run("int main() { return pow(2.0, 10.0); }").ExitValue, 1024);
  EXPECT_EQ(run("int main() { return imin(3, 8) + imax(3, 8); }").ExitValue,
            11);
  EXPECT_EQ(run("int main() { return fmin(1.5, 2.5) + fmax(1.5, 2.5); }")
                .ExitValue,
            4);
}

TEST(InterpreterTest, LcgDeterministic) {
  RunResult A = run("int main() { return lcg(42) % 1000; }");
  RunResult B = run("int main() { return lcg(42) % 1000; }");
  EXPECT_EQ(A.ExitValue, B.ExitValue);
  EXPECT_NE(run("int main() { return lcg(43) % 1000; }").ExitValue,
            A.ExitValue);
}

TEST(InterpreterTest, LogicalOpsNormalize) {
  EXPECT_EQ(run("int main() { return (5 && 3) + (0 || 7) + !9; }").ExitValue,
            2);
}

TEST(InterpreterTest, MarkersAreNoOps) {
  RunResult R = run(R"(
int x;
int main() {
  #pragma psc critical
  { x = 5; }
  #pragma psc barrier
  return x;
}
)");
  EXPECT_EQ(R.ExitValue, 5);
}

TEST(InterpreterTest, InstructionBudgetAborts) {
  auto M = compile(R"(
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 1000000; i++) { s += i; }
  return s;
}
)");
  Interpreter I(*M);
  I.setInstructionBudget(1000);
  RunResult R = I.run();
  EXPECT_FALSE(R.Completed);
  EXPECT_LE(R.InstructionsExecuted, 1002u);
}

TEST(InterpreterTest, DeterministicAcrossRuns) {
  auto M = compile(R"(
int a[32];
int main() {
  int i;
  int s;
  s = 12345;
  for (i = 0; i < 32; i++) {
    s = lcg(s);
    a[i] = s % 100;
  }
  s = 0;
  for (i = 0; i < 32; i++) { s += a[i]; }
  return s;
}
)");
  Interpreter I1(*M), I2(*M);
  EXPECT_EQ(I1.run().ExitValue, I2.run().ExitValue);
}

TEST(InterpreterTest, NestedLoopCounts) {
  RunResult R = run(R"(
int main() {
  int i;
  int j;
  int n;
  n = 0;
  for (i = 0; i < 5; i++) {
    for (j = 0; j < 7; j++) { n += 1; }
  }
  return n;
}
)");
  EXPECT_EQ(R.ExitValue, 35);
}

} // namespace
