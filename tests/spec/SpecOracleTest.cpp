//===- SpecOracleTest.cpp - Speculative oracle + stack integration --------===//
///
/// The spec oracle's contract: it is a downgrade stage outside the sound
/// chain. It turns MayDep into a Speculative NoDep only for MemCarried
/// queries between watchable accesses, only for loops its profile
/// observed, and only for pairs that never manifested in training. Sound
/// verdicts, sound-chain order independence, and untrained programs are
/// untouched.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Interpreter.h"
#include "profiling/DepProfiler.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace psc;
using namespace psc::test;

namespace {

const char *ScatterSource = R"PSC(
double acc[64];
double nodes[64];
int perm[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) {
    perm[i] = (i * 5 + 1) % 64;
    acc[i] = i;
    nodes[i] = i;
  }
  for (i = 1; i < 64; i++) {
    acc[i] = acc[i - 1] + 1.0;
  }
  for (i = 0; i < 64; i++) {
    nodes[perm[i]] = nodes[perm[i]] * 2.0;
  }
  return 0;
}
)PSC";

DepProfile train(const Module &M) {
  ModuleAnalyses MA(M);
  DepProfiler P(MA);
  Interpreter I(M);
  I.addObserver(&P);
  EXPECT_TRUE(I.run().Completed);
  return P.takeProfile();
}

/// Counts carried edges at \p L's header and speculative markers, over a
/// freshly-built edge set.
struct EdgeCounts {
  unsigned Carried = 0;
  unsigned Spec = 0;
};
EdgeCounts countAt(const std::vector<DepEdge> &Edges, unsigned Header) {
  EdgeCounts C;
  for (const DepEdge &E : Edges) {
    if (E.isCarriedAt(Header))
      ++C.Carried;
    if (E.isSpecCarriedAt(Header))
      ++C.Spec;
  }
  return C;
}

TEST(SpecOracleTest, DowngradesOnlyUnmanifestedPairsInObservedLoops) {
  auto M = compile(ScatterSource);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);

  const Function *F = M->getFunction("main");
  FunctionAnalysis FA(*F);
  const Loop *Rec = loopAt(FA, 1);
  const Loop *Scat = loopAt(FA, 2);
  ASSERT_NE(Rec, nullptr);
  ASSERT_NE(Scat, nullptr);

  // Sound stack: the scatter loop has carried may-dependences (the
  // indirect subscript defeats the affine oracle).
  DepOracleStack Sound(FA);
  std::vector<DepEdge> SoundEdges = buildDepEdges(Sound);
  EdgeCounts SoundScat = countAt(SoundEdges, Scat->getHeader());
  EXPECT_GT(SoundScat.Carried, 0u);
  EXPECT_EQ(SoundScat.Spec, 0u) << "no spec oracle, no spec markers";

  // Spec stack: the scatter's unmanifested carried deps become spec
  // markers; the recurrence's manifested dep stays carried.
  DepOracleStack Spec(FA, DepOracleConfig({}, &P));
  ASSERT_TRUE(Spec.speculative());
  std::vector<DepEdge> SpecEdges = buildDepEdges(Spec);
  EdgeCounts SpecScat = countAt(SpecEdges, Scat->getHeader());
  EXPECT_LT(SpecScat.Carried, SoundScat.Carried);
  EXPECT_GT(SpecScat.Spec, 0u);

  EdgeCounts SpecRec = countAt(SpecEdges, Rec->getHeader());
  EdgeCounts SoundRec = countAt(SoundEdges, Rec->getHeader());
  // The real recurrence RAW manifested in training: it must stay carried.
  EXPECT_GT(SpecRec.Carried, 0u);
  // The recurrence loop's WAR/WAW companions of an affine subscript are
  // never even queried speculatively (the sound chain disproves them), so
  // the only possible downgrades are pairs the profile cleared.
  EXPECT_LE(SpecRec.Carried, SoundRec.Carried);
}

TEST(SpecOracleTest, UntrainedOrStaleProfileNeverSpeculates) {
  auto M = compile(ScatterSource);
  ASSERT_NE(M, nullptr);
  const Function *F = M->getFunction("main");
  FunctionAnalysis FA(*F);

  // Empty profile: identical to the sound stack.
  DepProfile Empty;
  DepOracleStack SpecEmpty(FA, DepOracleConfig({}, &Empty));
  DepOracleStack Sound(FA);
  EXPECT_EQ(buildDepEdges(SpecEmpty).size(), buildDepEdges(Sound).size());
  for (const DepEdge &E : buildDepEdges(SpecEmpty))
    EXPECT_TRUE(E.SpecCarriedAtHeaders.empty());

  // Stale profile (instruction count mismatch): same.
  DepProfile Stale = train(*M);
  for (auto &[Name, FP] : Stale.Functions)
    FP.NumInstructions += 1;
  DepOracleStack SpecStale(FA, DepOracleConfig({}, &Stale));
  for (const DepEdge &E : buildDepEdges(SpecStale))
    EXPECT_TRUE(E.SpecCarriedAtHeaders.empty())
        << "a stale profile is never a license to speculate";
}

TEST(SpecOracleTest, SoundChainOrderDoesNotChangeSpeculativeVerdicts) {
  auto M = compile(ScatterSource);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  const Function *F = M->getFunction("main");
  FunctionAnalysis FA(*F);

  auto Fingerprint = [&](const DepOracleConfig &Cfg) {
    DepOracleStack S(FA, Cfg);
    std::vector<std::string> Out;
    for (const DepEdge &E : buildDepEdges(S)) {
      std::string Desc = std::to_string(FA.indexOf(E.Src)) + ">" +
                         std::to_string(FA.indexOf(E.Dst)) + ":";
      for (unsigned H : E.CarriedAtHeaders)
        Desc += "c" + std::to_string(H);
      for (unsigned H : E.SpecCarriedAtHeaders)
        Desc += "s" + std::to_string(H);
      Out.push_back(std::move(Desc));
    }
    std::sort(Out.begin(), Out.end());
    std::string All;
    for (const std::string &D : Out)
      All += D + ";";
    return All;
  };

  std::string A = Fingerprint(DepOracleConfig(
      {"ssa", "control", "io", "opaque", "alias", "affine", "spec"}, &P));
  std::string B = Fingerprint(DepOracleConfig(
      {"spec", "affine", "alias", "opaque", "io", "control", "ssa"}, &P));
  EXPECT_EQ(A, B) << "the spec downgrade stage runs after the sound chain "
                     "regardless of its position in the name list";
}

TEST(SpecOracleTest, SpecStatsRowAppears) {
  auto M = compile(ScatterSource);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  const Function *F = M->getFunction("main");
  FunctionAnalysis FA(*F);
  DepOracleStack S(FA, DepOracleConfig({}, &P));
  (void)buildDepEdges(S);
  auto Stats = S.oracleStats();
  ASSERT_GE(Stats.size(), 2u);
  // A profile-backed config appends both downgrade stages: the memory
  // stage first, then the value stage.
  const auto &SpecRow = Stats[Stats.size() - 2];
  const auto &VSpecRow = Stats.back();
  EXPECT_STREQ(SpecRow.Name, "spec");
  EXPECT_STREQ(VSpecRow.Name, "valuespec");
  EXPECT_GT(SpecRow.Answered, 0u);
  EXPECT_EQ(SpecRow.Answered, SpecRow.NoDep)
      << "the spec oracle only produces (speculative) disproofs";
  EXPECT_EQ(VSpecRow.Answered, VSpecRow.NoDep)
      << "the valuespec oracle only produces (speculative) disproofs";
}

TEST(SpecOracleTest, MissingProfileIsFatalViaConfig) {
  auto M = compile(ScatterSource);
  ASSERT_NE(M, nullptr);
  const Function *F = M->getFunction("main");
  FunctionAnalysis FA(*F);
  DepOracleConfig Cfg;
  Cfg.Names = {"spec"};
  EXPECT_TRUE(Cfg.wantsSpec());
  EXPECT_DEATH({ DepOracleStack S(FA, Cfg); }, "training profile");
}

} // namespace
