//===- SpecDifferentialTest.cpp - Speculation end-to-end equivalence ------===//
///
/// The speculation subsystem's acceptance contract:
///
///   * with a profile trained on the same input, speculative plans produce
///     bit-identical output and exit value to the sequential run, on both
///     engines, across thread counts, for every workload;
///   * UA (permutation gather/scatter) gains parallel plans the sound
///     oracle stack alone must reject;
///   * adversarial inputs that violate the trained profile are detected,
///     rolled back, and still produce bit-identical output — for
///     speculative DOALL, HELIX, and DSWP.
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Interpreter.h"
#include "profiling/DepProfiler.h"
#include "runtime/ParallelRuntime.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

DepProfile train(const Module &M) {
  ModuleAnalyses MA(M);
  DepProfiler P(MA);
  Interpreter I(M);
  I.addObserver(&P);
  EXPECT_TRUE(I.run().Completed);
  return P.takeProfile();
}

DepOracleConfig specConfig(const DepProfile &P) {
  return DepOracleConfig({}, &P);
}

struct SpecRun {
  ParallelRunResult Par;
  RunResult Seq;
  const LoopExecStat *loop(unsigned Header) const {
    for (const LoopExecStat &L : Par.Loops)
      if (L.Header == Header)
        return &L;
    return nullptr;
  }
  uint64_t totalMisspeculations() const {
    uint64_t N = 0;
    for (const LoopExecStat &L : Par.Loops)
      N += L.Misspeculations;
    return N;
  }
  unsigned speculativeLoops() const {
    unsigned N = 0;
    for (const LoopExecStat &L : Par.Loops)
      N += L.Speculative ? 1 : 0;
    return N;
  }
};

/// Runs \p M speculatively under \p Profile and checks output/exit
/// equivalence against the sequential run.
SpecRun runSpec(const Module &M, const DepProfile &Profile, unsigned Threads,
                ExecEngineKind Engine, const std::string &What) {
  SpecRun R;
  Interpreter Seq(M);
  Seq.setEngine(Engine);
  R.Seq = Seq.run();

  RuntimePlan Plan = buildRuntimePlan(M, AbstractionKind::PSPDG, Threads,
                                      FeatureSet(), specConfig(Profile));
  ParallelRuntime RT(M, Plan, Engine);
  R.Par = RT.run();
  EXPECT_TRUE(R.Par.Error.empty()) << What << ": " << R.Par.Error;
  EXPECT_EQ(R.Par.R.ExitValue, R.Seq.ExitValue) << What;
  EXPECT_EQ(R.Par.R.Output, R.Seq.Output) << What;
  return R;
}

// --- Differential over all workloads ----------------------------------------

class SpecWorkloadEquivalence
    : public ::testing::TestWithParam<std::tuple<Workload, unsigned>> {};

TEST_P(SpecWorkloadEquivalence, SpeculativePlanMatchesSequential) {
  const Workload &W = std::get<0>(GetParam());
  unsigned Threads = std::get<1>(GetParam());
  auto M = compile(W.Source);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  for (ExecEngineKind E : {ExecEngineKind::Bytecode, ExecEngineKind::Walker}) {
    SpecRun R = runSpec(*M, P, Threads,

                        E, W.Name + std::string("/") + execEngineName(E));
    // Training input == running input: nothing may misspeculate.
    EXPECT_EQ(R.totalMisspeculations(), 0u) << W.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SpecWorkloadEquivalence,
    ::testing::Combine(::testing::ValuesIn(extendedWorkloads()),
                       ::testing::Values(1u, 2u, 8u)),
    [](const ::testing::TestParamInfo<std::tuple<Workload, unsigned>> &I) {
      return std::get<0>(I.param).Name + "_t" +
             std::to_string(std::get<1>(I.param));
    });

// --- The speculation win: UA gains plans the sound stack rejects ------------

TEST(SpecPlanGainTest, UAGainsDOALLPlansTheSoundStackRejects) {
  auto M = compile(findWorkload("UA")->Source);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);

  RuntimePlan Sound = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8);
  RuntimePlan Spec = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8,
                                      FeatureSet(), specConfig(P));

  // The sound stack must reject DOALL for the permutation scatter (its
  // carried may-dependences remain); at best it can gate-serialize the
  // whole scatter SCC behind a HELIX gate. Speculation removes the
  // assumed-absent dependences outright, unlocking DOALL — a plan the
  // sound stack alone rejects.
  unsigned SoundDOALL = 0, SpecDOALL = 0, SpecSpeculative = 0;
  bool SawSpecDOALLWhereSoundRejectedIt = false;
  for (const auto &[Key, LS] : Spec.Loops) {
    SpecDOALL += LS.Kind == ScheduleKind::DOALL;
    if (LS.Speculative) {
      ++SpecSpeculative;
      EXPECT_FALSE(LS.Assumptions.empty());
      EXPECT_EQ(LS.AssumedPairs.size(), LS.Assumptions.size());
      EXPECT_GT(LS.NumWatched, 0u);
      const LoopSchedule *SoundLS = Sound.scheduleFor(Key.first, Key.second);
      ASSERT_NE(SoundLS, nullptr);
      if (SoundLS->Kind == LS.Kind) {
        // Same kind (HELIX): speculation must at least shrink the gated
        // portion — fewer sequential SCCs than the sound schedule.
        ASSERT_EQ(LS.Kind, ScheduleKind::HELIX);
        auto NumSeq = [](const LoopSchedule &S) {
          unsigned N = 0;
          for (bool Seq : S.SCCIsSeq)
            N += Seq;
          return N;
        };
        EXPECT_LT(NumSeq(LS), NumSeq(*SoundLS));
      }
      if (LS.Kind == ScheduleKind::DOALL &&
          SoundLS->Kind != ScheduleKind::DOALL)
        SawSpecDOALLWhereSoundRejectedIt = true;
    }
  }
  for (const auto &[Key, LS] : Sound.Loops)
    SoundDOALL += LS.Kind == ScheduleKind::DOALL;

  EXPECT_GE(SpecSpeculative, 2u)
      << "UA's scatter (DOALL) and wavefront (HELIX) loops";
  EXPECT_GT(SpecDOALL, SoundDOALL);
  EXPECT_TRUE(SawSpecDOALLWhereSoundRejectedIt);
}

// --- Forced misspeculation ---------------------------------------------------

/// UA with a non-coprime map multiplier: the "permutation" collides, the
/// trained assumptions are violated at run time. Structure (and therefore
/// instruction indices) is identical to the clean UA, so the clean profile
/// applies — and must be caught.
std::string adversarialUA() {
  std::string S = findWorkload("UA")->Source;
  size_t Pos = S.find("i * 167 + 3");
  EXPECT_NE(Pos, std::string::npos);
  S.replace(Pos, 11, "i * 166 + 3");
  return S;
}

class MisspeculationRollback
    : public ::testing::TestWithParam<std::tuple<unsigned, ExecEngineKind>> {
};

TEST_P(MisspeculationRollback, DetectsViolationAndMatchesSequential) {
  unsigned Threads = std::get<0>(GetParam());
  ExecEngineKind Engine = std::get<1>(GetParam());

  auto Clean = compile(findWorkload("UA")->Source);
  auto Adv = compile(adversarialUA());
  ASSERT_NE(Clean, nullptr);
  ASSERT_NE(Adv, nullptr);
  DepProfile P = train(*Clean);

  SpecRun R = runSpec(*Adv, P, Threads, Engine, "UA-adversarial");
  // Both speculative loops must detect the violated assumptions, roll
  // back, and stay sequential for the rest of the run — while the final
  // output stays bit-identical.
  EXPECT_GE(R.totalMisspeculations(), 2u)
      << "speculative DOALL and HELIX must both detect the collision";
  for (const LoopExecStat &L : R.Par.Loops) {
    if (L.Speculative) {
      EXPECT_LE(L.Misspeculations, 1u)
          << "a blown schedule must not retry within the run";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndEngines, MisspeculationRollback,
    ::testing::Combine(::testing::Values(1u, 2u, 8u),
                       ::testing::Values(ExecEngineKind::Bytecode,
                                         ExecEngineKind::Walker)),
    [](const ::testing::TestParamInfo<std::tuple<unsigned, ExecEngineKind>>
           &I) {
      return std::string(execEngineName(std::get<1>(I.param))) + "_t" +
             std::to_string(std::get<0>(I.param));
    });

// --- Speculative DSWP --------------------------------------------------------

/// Two recurrences coupled through an indirect read that in fact never
/// aliases the in-loop writes: soundly one giant sequential SCC (no plan);
/// speculatively a pipeline whose only cross-stage carried edge runs in
/// token order — DSWP.
const char *DSWPSpecSource = R"PSC(
double a_arr[512];
double c_arr[512];
double d_arr[512];
int m[512];
int main() {
  int i;
  double s;
  int checksum;
  for (i = 0; i < 512; i++) {
    m[i] = (i * 3) % 256;
    a_arr[i] = i % 7;
    c_arr[i] = 0.0;
    d_arr[i] = i % 5;
  }
  for (i = 1; i < 256; i++) {
    a_arr[i] = a_arr[i - 1] * 0.5 + d_arr[m[i]] * 0.25;
    c_arr[i] = a_arr[i - 1] * 2.0;
    d_arr[i + 256] = c_arr[i] * 0.125;
  }
  s = 0.0;
  for (i = 0; i < 512; i++) {
    s = s + a_arr[i] + c_arr[i] + d_arr[i];
  }
  checksum = s * 100.0;
  i = checksum;
  print(i);
  return 0;
}
)PSC";

TEST(SpecDSWPTest, PipelineUnlockedAndEquivalent) {
  auto M = compile(DSWPSpecSource);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);

  RuntimePlan Sound = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8);
  RuntimePlan Spec = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8,
                                      FeatureSet(), specConfig(P));
  bool SpecDSWP = false;
  for (const auto &[Key, LS] : Spec.Loops) {
    if (LS.Kind == ScheduleKind::DSWP && LS.Speculative) {
      SpecDSWP = true;
      // The sound stack cannot build this pipeline: the assumed-absent
      // backward dependence merges the recurrences into one serial SCC
      // (at best a fully-gated HELIX).
      const LoopSchedule *SoundLS = Sound.scheduleFor(Key.first, Key.second);
      ASSERT_NE(SoundLS, nullptr);
      EXPECT_NE(SoundLS->Kind, ScheduleKind::DSWP);
    }
  }
  ASSERT_TRUE(SpecDSWP) << "the coupled-recurrence loop must become a "
                           "speculative pipeline";

  for (unsigned Threads : {2u, 8u})
    for (ExecEngineKind E :
         {ExecEngineKind::Bytecode, ExecEngineKind::Walker}) {
      SpecRun R = runSpec(*M, P, Threads, E, "dswp-spec");
      EXPECT_EQ(R.totalMisspeculations(), 0u);
    }
}

TEST(SpecDSWPTest, MisspeculationDetectedAtOverlayMerge) {
  // The adversarial variant's indirect reads reach into the region the
  // loop writes: the assumed-absent backward dependence manifests.
  std::string Adv = DSWPSpecSource;
  size_t Pos = Adv.find("(i * 3) % 256");
  ASSERT_NE(Pos, std::string::npos);
  Adv.replace(Pos, 13, "(i * 3) % 512");

  auto Clean = compile(DSWPSpecSource);
  auto M = compile(Adv);
  ASSERT_NE(Clean, nullptr);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*Clean);

  for (ExecEngineKind E : {ExecEngineKind::Bytecode, ExecEngineKind::Walker}) {
    SpecRun R = runSpec(*M, P, 4, E, "dswp-adversarial");
    EXPECT_GE(R.totalMisspeculations(), 1u) << execEngineName(E);
  }
}

// --- Determinism -------------------------------------------------------------

TEST(SpecDeterminismTest, SpeculativeRunsAreDeterministic) {
  auto M = compile(findWorkload("UA")->Source);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  RuntimePlan Plan = buildRuntimePlan(*M, AbstractionKind::PSPDG, 8,
                                      FeatureSet(), specConfig(P));
  ParallelRuntime RT(*M, Plan);
  ParallelRunResult A = RT.run();
  ParallelRunResult B = RT.run();
  ASSERT_TRUE(A.Error.empty());
  EXPECT_EQ(A.R.Output, B.R.Output);
  EXPECT_EQ(A.R.ExitValue, B.R.ExitValue);
}

} // namespace
