//===- ShadowMemoryTest.cpp - Overlay semantics in isolation --------------===//
///
/// \file
/// Direct coverage for the ShadowMemory checkpoint overlay that backs the
/// speculative schedulers (DESIGN.md §9): lookup layering, per-mode store
/// routing, the begin/merge/discard ordering of iteration tokens, and the
/// rvalue-reference move contract of beginIteration. Everything else in
/// tests/spec exercises these paths only indirectly, through full
/// differential runs.
///
//===----------------------------------------------------------------------===//

#include "emulator/ExecCore.h"

#include <gtest/gtest.h>

using namespace psc;

namespace {

MemObject intObject(size_t N) {
  MemObject O;
  O.I.assign(N, 0);
  return O;
}

int64_t loadInt(const ShadowMemory &SM, MemObject &O, uint64_t Off,
                int64_t Fallthrough) {
  bool IsFloat = false;
  int64_t I = 0;
  double F = 0.0;
  if (!SM.load(&O, Off, IsFloat, I, F))
    return Fallthrough; // the engine would read the MemObject itself
  EXPECT_FALSE(IsFloat);
  return I;
}

TEST(ShadowMemoryTest, StoresNeverTouchTheUnderlyingObject) {
  // The whole point of the checkpoint: until a validated commit, shared
  // memory is unmodified, so discarding on misspeculation is free.
  MemObject O = intObject(4);
  O.I[2] = 99;
  ShadowMemory SM;
  SM.store(&O, 2, 7, 0.0, /*Owned=*/true, /*Iter=*/0, /*Inst=*/5);
  SM.store(&O, 3, 8, 0.0, /*Owned=*/false, /*Iter=*/0, /*Inst=*/6);
  EXPECT_EQ(O.I[2], 99);
  EXPECT_EQ(O.I[3], 0);
  EXPECT_EQ(loadInt(SM, O, 2, -1), 7);
  EXPECT_EQ(loadInt(SM, O, 3, -1), 8);
}

TEST(ShadowMemoryTest, MissFallsThroughToCallerMemory) {
  MemObject O = intObject(2);
  ShadowMemory SM;
  EXPECT_EQ(loadInt(SM, O, 0, -1), -1);
}

TEST(ShadowMemoryTest, OwnedStoresPersistAcrossIterations) {
  // Owned (DSWP: this stage owns the object) stores land in both the
  // outgoing token and the worker-lifetime Persist layer, so they stay
  // visible after the next beginIteration replaces the token.
  MemObject O = intObject(2);
  ShadowMemory SM;
  SM.store(&O, 0, 11, 0.0, /*Owned=*/true, 0, 1);
  SM.beginIteration({});
  EXPECT_EQ(loadInt(SM, O, 0, -1), 11);
  // And they are in the committable snapshot with their (iter, inst) tag.
  auto It = SM.persist().find({&O, 0});
  ASSERT_NE(It, SM.persist().end());
  EXPECT_EQ(It->second.I, 11);
  EXPECT_EQ(It->second.Iter, 0);
  EXPECT_EQ(It->second.Inst, 1u);
}

TEST(ShadowMemoryTest, UnownedStoresAreDiscardedAtIterationBoundary) {
  // Unowned stores are iteration-local scratch: visible inside the
  // iteration, dropped (not merged, not committed) by beginIteration.
  MemObject O = intObject(2);
  ShadowMemory SM;
  SM.store(&O, 0, 21, 0.0, /*Owned=*/false, 0, 1);
  EXPECT_EQ(loadInt(SM, O, 0, -1), 21);
  EXPECT_TRUE(SM.persist().empty());
  SM.beginIteration({});
  EXPECT_EQ(loadInt(SM, O, 0, -1), -1);
}

TEST(ShadowMemoryTest, LookupPrefersIterationTokenOverPersist) {
  // Begin > merge > discard ordering within one lookup: the incoming
  // token (this iteration's upstream values) must shadow the stage's own
  // older Persist entry for the same location.
  MemObject O = intObject(2);
  ShadowMemory SM;
  SM.store(&O, 0, 1, 0.0, /*Owned=*/true, /*Iter=*/0, 1); // old iteration
  std::map<ShadowMemory::Key, ShadowMemory::Cell> Token;
  Token[{&O, 0}] = {2, 0.0, /*Iter=*/1, /*Inst=*/0};
  SM.beginIteration(std::move(Token));
  EXPECT_EQ(loadInt(SM, O, 0, -1), 2);
}

TEST(ShadowMemoryTest, BeginIterationMovesTheTokenInPlace) {
  // The DSWP handoff passes each token down the pipeline by value exactly
  // once; beginIteration takes it by rvalue reference and must adopt the
  // map rather than copying it.
  MemObject O = intObject(8);
  std::map<ShadowMemory::Key, ShadowMemory::Cell> Token;
  for (uint64_t Off = 0; Off < 8; ++Off)
    Token[{&O, Off}] = {int64_t(100 + Off), 0.0, 0, unsigned(Off)};
  ShadowMemory SM;
  SM.beginIteration(std::move(Token));
  EXPECT_TRUE(Token.empty()); // NOLINT(bugprone-use-after-move): the move
                              // contract under test
  for (uint64_t Off = 0; Off < 8; ++Off)
    EXPECT_EQ(loadInt(SM, O, Off, -1), int64_t(100 + Off));
  // The adopted values flow into the outgoing token for the next stage.
  EXPECT_EQ(SM.sharedOverlay().size(), 8u);
}

TEST(ShadowMemoryTest, TokenMergeIsStoreOverInheritOrdered) {
  // A stage's own owned store must override the inherited token value in
  // the outgoing token (downstream sees the latest write), while both
  // remain distinguishable for the final commit by (iter, inst) tag.
  MemObject O = intObject(2);
  ShadowMemory SM;
  std::map<ShadowMemory::Key, ShadowMemory::Cell> Token;
  Token[{&O, 0}] = {5, 0.0, /*Iter=*/3, /*Inst=*/2};
  SM.beginIteration(std::move(Token));
  SM.store(&O, 0, 6, 0.0, /*Owned=*/true, /*Iter=*/3, /*Inst=*/4);
  EXPECT_EQ(loadInt(SM, O, 0, -1), 6);
  auto It = SM.sharedOverlay().find({&O, 0});
  ASSERT_NE(It, SM.sharedOverlay().end());
  EXPECT_EQ(It->second.I, 6);
  EXPECT_EQ(It->second.Inst, 4u);
}

TEST(ShadowMemoryTest, ChunkModeCheckpointsTheWholeHistory) {
  // Speculative DOALL: every store (owned or not) goes to the worker's
  // Persist overlay so the commit step sees the chunk's full history, and
  // later stores to the same location replace earlier ones.
  MemObject O = intObject(2);
  ShadowMemory SM;
  SM.setSpecMode(ShadowMemory::SpecMode::Chunk);
  SM.store(&O, 0, 1, 0.0, /*Owned=*/false, /*Iter=*/0, 1);
  SM.store(&O, 0, 2, 0.0, /*Owned=*/false, /*Iter=*/4, 9);
  EXPECT_EQ(loadInt(SM, O, 0, -1), 2);
  ASSERT_EQ(SM.persist().size(), 1u);
  const ShadowMemory::Cell &C = SM.persist().begin()->second;
  EXPECT_EQ(C.I, 2);
  EXPECT_EQ(C.Iter, 4);
  EXPECT_EQ(C.Inst, 9u);
  EXPECT_EQ(O.I[0], 0); // still nothing committed
}

TEST(ShadowMemoryTest, RingModeKeepsStoresIterationLocal) {
  // Speculative HELIX: stores buffer in the iteration overlay; the
  // scheduler publishes them at the gate handoff. A new iteration starts
  // from an empty overlay — nothing leaks across the boundary.
  MemObject O = intObject(2);
  ShadowMemory SM;
  SM.setSpecMode(ShadowMemory::SpecMode::Ring);
  SM.store(&O, 0, 42, 0.0, /*Owned=*/true, /*Iter=*/0, 1);
  EXPECT_EQ(loadInt(SM, O, 0, -1), 42);
  EXPECT_TRUE(SM.persist().empty());
  ASSERT_EQ(SM.sharedOverlay().size(), 1u);
  SM.beginIteration({}); // discard: the scheduler did not publish
  EXPECT_EQ(loadInt(SM, O, 0, -1), -1);
}

TEST(ShadowMemoryTest, RingModeFallsBackToCommittedOverlay) {
  // Loads that miss every local layer consult the shared
  // iteration-ordered committed overlay (earlier iterations' published
  // stores); local layers still win when present.
  MemObject O = intObject(2);
  ShadowMemory::CommittedOverlay Committed;
  Committed.Map[{&O, 0}] = {7, 0.0, /*Iter=*/0, /*Inst=*/1};
  ShadowMemory SM;
  SM.setSpecMode(ShadowMemory::SpecMode::Ring);
  SM.setCommitted(&Committed);
  EXPECT_EQ(loadInt(SM, O, 0, -1), 7);
  SM.store(&O, 0, 8, 0.0, /*Owned=*/true, /*Iter=*/1, 2);
  EXPECT_EQ(loadInt(SM, O, 0, -1), 8);
  // The committed overlay is only a read fallback; publication is the
  // scheduler's job at the gate handoff.
  EXPECT_EQ((Committed.Map[{&O, 0}].I), 7);
}

TEST(ShadowMemoryTest, CommittedOverlayIgnoredOutsideRingMode) {
  // Chunk workers each own a private checkpoint; a stray committed
  // overlay pointer must not bleed into their reads.
  MemObject O = intObject(2);
  ShadowMemory::CommittedOverlay Committed;
  Committed.Map[{&O, 0}] = {7, 0.0, 0, 1};
  ShadowMemory SM;
  SM.setSpecMode(ShadowMemory::SpecMode::Chunk);
  SM.setCommitted(&Committed);
  EXPECT_EQ(loadInt(SM, O, 0, -1), -1);
}

TEST(ShadowMemoryTest, BypassBookkeeping) {
  // Privatized objects run their own copy-in/copy-out protocol; the
  // engines consult isBypassed before routing an access to the shadow.
  MemObject A = intObject(1), B = intObject(1);
  ShadowMemory SM;
  SM.addBypass(&A);
  EXPECT_TRUE(SM.isBypassed(&A));
  EXPECT_FALSE(SM.isBypassed(&B));
}

TEST(ShadowMemoryTest, FloatObjectsRoundTrip) {
  MemObject O;
  O.IsFloat = true;
  O.F.assign(2, 0.0);
  ShadowMemory SM;
  SM.store(&O, 1, 0, 2.5, /*Owned=*/true, 0, 1);
  bool IsFloat = false;
  int64_t I = 0;
  double F = 0.0;
  ASSERT_TRUE(SM.load(&O, 1, IsFloat, I, F));
  EXPECT_TRUE(IsFloat);
  EXPECT_DOUBLE_EQ(F, 2.5);
}

} // namespace
