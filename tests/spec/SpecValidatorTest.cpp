//===- SpecValidatorTest.cpp - Runtime assumption validation units --------===//

#include "runtime/SpecValidation.h"

#include <gtest/gtest.h>

using namespace psc;

namespace {

MemObject Obj;

SpecAccessRec rec(uint64_t Off, long Iter, uint32_t Watch, bool IsWrite) {
  return {&Obj, Off, Iter, Watch, IsWrite};
}

using Pairs = std::vector<std::pair<unsigned, unsigned>>;

TEST(SpecValidatorTest, CleanLogsValidate) {
  SpecValidator V(Pairs{{0, 1}});
  // Watched accesses to disjoint locations never conflict.
  V.add({rec(0, 0, 0, true), rec(1, 1, 1, false), rec(2, 2, 0, true)});
  EXPECT_TRUE(V.validate());
}

TEST(SpecValidatorTest, RAWViolationDetected) {
  SpecValidator V(Pairs{{0, 1}});
  V.add({rec(7, 0, 0, true), rec(7, 3, 1, false)});
  std::string Msg;
  EXPECT_FALSE(V.validate(&Msg));
  EXPECT_NE(Msg.find("manifested"), std::string::npos);
}

TEST(SpecValidatorTest, WARViolationDetected) {
  // src read at iter 1, dst write at iter 2.
  SpecValidator V(Pairs{{2, 3}});
  V.add({rec(4, 1, 2, false), rec(4, 2, 3, true)});
  EXPECT_FALSE(V.validate());
}

TEST(SpecValidatorTest, ReadsAloneNeverViolate) {
  SpecValidator V(Pairs{{0, 1}});
  V.add({rec(9, 0, 0, false), rec(9, 5, 1, false)});
  EXPECT_TRUE(V.validate()) << "two reads are not a dependence";
}

TEST(SpecValidatorTest, SameIterationNeverViolates) {
  // Assumptions are strictly cross-iteration (delta >= 1).
  SpecValidator V(Pairs{{0, 1}});
  V.add({rec(3, 4, 0, true), rec(3, 4, 1, false)});
  EXPECT_TRUE(V.validate());
}

TEST(SpecValidatorTest, DirectionMatters) {
  // Pair (0 -> 1): src must be the EARLIER iteration. Here watch 1 writes
  // first and watch 0 reads later — that is the (1 -> 0) dependence, which
  // is not assumed.
  SpecValidator V(Pairs{{0, 1}});
  V.add({rec(5, 0, 1, true), rec(5, 3, 0, false)});
  EXPECT_TRUE(V.validate());

  SpecValidator V2(Pairs{{1, 0}});
  V2.add({rec(5, 0, 1, true), rec(5, 3, 0, false)});
  EXPECT_FALSE(V2.validate());
}

TEST(SpecValidatorTest, UnwatchedPairsIgnored) {
  SpecValidator V(Pairs{{0, 1}});
  // Watches 2 and 3 conflict, but no assumption covers them.
  V.add({rec(1, 0, 2, true), rec(1, 4, 3, true)});
  EXPECT_TRUE(V.validate());
}

TEST(SpecValidatorTest, IncrementalDetectsAtTheBoundary) {
  SpecValidator V(Pairs{{0, 1}});
  EXPECT_TRUE(V.checkAndAdd({rec(2, 0, 0, true)}));
  EXPECT_TRUE(V.checkAndAdd({rec(3, 1, 1, false)})); // different location
  std::string Msg;
  EXPECT_FALSE(V.checkAndAdd({rec(2, 2, 1, false)}, &Msg))
      << "iteration 2 reads what iteration 0 wrote";
  EXPECT_NE(Msg.find("manifested"), std::string::npos);
}

TEST(SpecValidatorTest, IncrementalSameIterationIsClean) {
  SpecValidator V(Pairs{{0, 1}});
  // One iteration's log contains both endpoints at one location: no
  // violation (delta = 0), and later iterations at other locations stay
  // clean.
  EXPECT_TRUE(V.checkAndAdd({rec(6, 0, 0, true), rec(6, 0, 1, false)}));
  EXPECT_TRUE(V.checkAndAdd({rec(7, 1, 0, true), rec(7, 1, 1, false)}));
  // But iteration 1 touching iteration 0's location violates.
  SpecValidator V2(Pairs{{0, 1}});
  EXPECT_TRUE(V2.checkAndAdd({rec(6, 0, 0, true)}));
  EXPECT_FALSE(V2.checkAndAdd({rec(6, 1, 1, false)}));
}

TEST(SpecValidatorTest, BatchMatchesIncrementalVerdicts) {
  auto Logs = std::vector<SpecAccessLog>{
      {rec(0, 0, 0, true), rec(1, 0, 1, false)},
      {rec(2, 1, 0, true), rec(0, 1, 1, false)}, // reads iter-0's write
      {rec(3, 2, 0, true)},
  };
  SpecValidator Batch(Pairs{{0, 1}});
  for (const auto &L : Logs)
    Batch.add(L);
  EXPECT_FALSE(Batch.validate());

  SpecValidator Inc(Pairs{{0, 1}});
  bool OK = true;
  for (const auto &L : Logs)
    OK = Inc.checkAndAdd(L) && OK;
  EXPECT_FALSE(OK);
}

} // namespace
