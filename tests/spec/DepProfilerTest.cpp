//===- DepProfilerTest.cpp - Dependence profiler + profile format ---------===//
///
/// The training side of the speculation subsystem: manifest detection
/// semantics, engine equivalence (walker and bytecode must train
/// bit-identical profiles), and the serialized profile format (round-trip,
/// merging, staleness guard).
///
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"
#include "emulator/Interpreter.h"
#include "profiling/DepProfiler.h"
#include "pspdg/Fingerprint.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace psc;
using namespace psc::test;

namespace {

DepProfile train(const Module &M,
                 ExecEngineKind E = ExecEngineKind::Bytecode) {
  ModuleAnalyses MA(M);
  DepProfiler P(MA);
  Interpreter I(M);
  I.setEngine(E);
  I.addObserver(&P);
  RunResult R = I.run();
  EXPECT_TRUE(R.Completed);
  return P.takeProfile();
}

// --- Manifest-detection semantics -------------------------------------------

TEST(DepProfilerTest, RecurrenceManifestsPermutationDoesNot) {
  auto M = compile(R"PSC(
double acc[64];
double nodes[64];
int perm[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) {
    perm[i] = (i * 5 + 1) % 64;
    acc[i] = i;
    nodes[i] = i;
  }
  // Real recurrence: acc[i] reads acc[i-1] (manifests every iteration).
  for (i = 1; i < 64; i++) {
    acc[i] = acc[i - 1] + 1.0;
  }
  // Permutation scatter: never touches the same node twice (no manifest).
  for (i = 0; i < 64; i++) {
    nodes[perm[i]] = nodes[perm[i]] * 2.0;
  }
  return 0;
}
)PSC");
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);

  const Function *F = M->getFunction("main");
  FunctionAnalysis FA(*F);
  unsigned NumInsts = static_cast<unsigned>(FA.instructions().size());

  const Loop *Rec = loopAt(FA, 1);
  const Loop *Scat = loopAt(FA, 2);
  ASSERT_NE(Rec, nullptr);
  ASSERT_NE(Scat, nullptr);
  uint64_t Hash = functionBodyHash(*F);
  EXPECT_TRUE(P.observed("main", NumInsts, Hash, Rec->getHeader()));
  EXPECT_TRUE(P.observed("main", NumInsts, Hash, Scat->getHeader()));

  // The recurrence's store -> load RAW manifests; count the pairs per loop.
  auto PairsAt = [&](unsigned Header) {
    return P.Functions.at("main").Loops.at(Header).Manifested.size();
  };
  EXPECT_GT(PairsAt(Rec->getHeader()), 0u);

  // The acc store (2nd store of main counting the init stores... identify
  // directly): store acc[i] is the only store in the recurrence loop.
  unsigned StoreIdx = 0, LoadIdx = 0;
  for (const Instruction *I : FA.instructions()) {
    if (!Rec->contains(I->getParent()->getIndex()))
      continue;
    if (isa<StoreInst>(I) && I->getParent()->getName().rfind("for.body", 0) ==
                                 0) {
      const auto *SI = cast<StoreInst>(I);
      if (isa<GEPInst>(SI->getPointer()))
        StoreIdx = FA.indexOf(I);
    }
    if (isa<LoadInst>(I)) {
      const auto *LI = cast<LoadInst>(I);
      if (isa<GEPInst>(LI->getPointer()))
        LoadIdx = FA.indexOf(I); // acc[i-1] element load
    }
  }
  EXPECT_TRUE(P.manifested("main", Rec->getHeader(), StoreIdx, LoadIdx))
      << "the recurrence RAW must be recorded";

  // The permutation scatter records no array-element pair (the IV scalar
  // bookkeeping still manifests, but only on the counter storage's
  // accesses, which are scalar loads/stores of i).
  const auto &ScatPairs =
      P.Functions.at("main").Loops.at(Scat->getHeader()).Manifested;
  for (const auto &[Src, Dst] : ScatPairs) {
    const Instruction *SrcI = FA.instructions()[Src];
    const Instruction *DstI = FA.instructions()[Dst];
    auto TouchesArray = [](const Instruction *I) {
      if (const auto *SI = dyn_cast<StoreInst>(I))
        return isa<GEPInst>(SI->getPointer());
      if (const auto *LI = dyn_cast<LoadInst>(I))
        return isa<GEPInst>(LI->getPointer());
      return false;
    };
    EXPECT_FALSE(TouchesArray(SrcI) && TouchesArray(DstI))
        << "permutation scatter must not manifest an element conflict ("
        << Src << " -> " << Dst << ")";
  }
}

TEST(DepProfilerTest, WARAndWAWAreRecorded) {
  auto M2 = compile(R"PSC(
double cell[4];
int main() {
  int i;
  double t;
  for (i = 0; i < 16; i++) {
    t = cell[0];
    cell[0] = t + 1.0;
  }
  return 0;
}
)PSC");
  ASSERT_NE(M2, nullptr);
  DepProfile P2 = train(*M2);
  const Function *F2 = M2->getFunction("main");
  FunctionAnalysis FA2(*F2);
  const Loop *L2 = loopAt(FA2, 0);
  // The element access pair: the cell[0] store and the cell[0] load (the
  // only GEP-addressed accesses of the program).
  unsigned Store = 0, Load = 0;
  for (const Instruction *I : FA2.instructions()) {
    if (const auto *SI = dyn_cast<StoreInst>(I)) {
      if (isa<GEPInst>(SI->getPointer()))
        Store = FA2.indexOf(I);
    } else if (const auto *LI = dyn_cast<LoadInst>(I)) {
      if (isa<GEPInst>(LI->getPointer()))
        Load = FA2.indexOf(I);
    }
  }
  // RAW (store -> load), WAR (load -> store), WAW (store -> store) all
  // manifest on cell[0].
  EXPECT_TRUE(P2.manifested("main", L2->getHeader(), Store, Load));
  EXPECT_TRUE(P2.manifested("main", L2->getHeader(), Load, Store));
  EXPECT_TRUE(P2.manifested("main", L2->getHeader(), Store, Store));
}

// --- Engine equivalence ------------------------------------------------------

class ProfilerEngineEquivalence : public ::testing::TestWithParam<Workload> {};

TEST_P(ProfilerEngineEquivalence, WalkerAndBytecodeTrainIdenticalProfiles) {
  const Workload &W = GetParam();
  auto M = compile(W.Source);
  ASSERT_NE(M, nullptr);
  DepProfile Walker = train(*M, ExecEngineKind::Walker);
  DepProfile Bytecode = train(*M, ExecEngineKind::Bytecode);
  EXPECT_EQ(Walker.toJson(), Bytecode.toJson()) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ProfilerEngineEquivalence,
                         ::testing::ValuesIn(extendedWorkloads()),
                         [](const ::testing::TestParamInfo<Workload> &I) {
                           return I.param.Name;
                         });

// --- Serialization -----------------------------------------------------------

TEST(DepProfileTest, JsonRoundTrip) {
  auto M = compile(findWorkload("UA")->Source);
  ASSERT_NE(M, nullptr);
  DepProfile P = train(*M);
  std::string Json = P.toJson();

  DepProfile Back;
  std::string Err;
  ASSERT_TRUE(DepProfile::parseJson(Json, Back, Err)) << Err;
  EXPECT_EQ(Back.toJson(), Json);
}

TEST(DepProfileTest, RejectsForeignAndFutureDocuments) {
  DepProfile P;
  std::string Err;
  EXPECT_FALSE(DepProfile::parseJson("{\"bench\": \"x\"}", P, Err));
  EXPECT_FALSE(DepProfile::parseJson(
      "{\"format\": \"psc-dep-profile\", \"version\": 999, "
      "\"functions\": []}",
      P, Err));
  EXPECT_NE(Err.find("version"), std::string::npos);
  EXPECT_FALSE(DepProfile::parseJson("not json at all", P, Err));
}

TEST(DepProfileTest, RejectsDuplicateFunctionEntries) {
  // Two entries for one function could carry different instruction
  // counts, so one side's loop data would pass the other side's
  // staleness guard; a document like this is malformed, not mergeable.
  DepProfile P;
  std::string Err;
  EXPECT_FALSE(DepProfile::parseJson(
      "{\"format\": \"psc-dep-profile\", \"version\": 2, \"functions\": ["
      "{\"name\": \"main\", \"instructions\": 50, \"bodyhash\": 1, "
      "\"loops\": []},"
      "{\"name\": \"main\", \"instructions\": 60, \"bodyhash\": 1, "
      "\"loops\": []}]}",
      P, Err));
  EXPECT_NE(Err.find("duplicate function"), std::string::npos);
}

TEST(DepProfileTest, MergeDropIsSticky) {
  // A: f@100 with pair (1,2); B: f@120 (conflict — drop); C: f@100 with
  // pair (3,4). A later same-version input must not resurrect f with
  // only its own partial data: [A,B,C] and [A,C,B] must agree that f is
  // unusable once any version conflict appeared.
  DepProfile A, B, C;
  A.recordLoop("f", 100, 77, 4, 1, 10);
  A.recordManifest("f", 4, 1, 2);
  B.recordLoop("f", 120, 77, 4, 1, 10);
  C.recordLoop("f", 100, 77, 4, 1, 10);
  C.recordManifest("f", 4, 3, 4);

  A.merge(B);
  EXPECT_TRUE(A.Functions.empty());
  A.merge(C);
  EXPECT_TRUE(A.Functions.empty()) << "conflict-dropped function revived";
  EXPECT_FALSE(A.observed("f", 100, 77, 4));
}

TEST(DepProfileTest, RejectsOverflowingIntegers) {
  DepProfile P;
  std::string Err;
  // 2^64 + 1 must be a loud parse error, not a silent wrap to 1.
  EXPECT_FALSE(DepProfile::parseJson(
      "{\"format\": \"psc-dep-profile\", \"version\": 2, \"functions\": ["
      "{\"name\": \"main\", \"instructions\": 18446744073709551617, "
      "\"bodyhash\": 1, \"loops\": []}]}",
      P, Err));
  EXPECT_NE(Err.find("overflow"), std::string::npos);
}

TEST(DepProfileTest, MergeUnionsPairsAndDropsStaleFunctions) {
  DepProfile A, B;
  A.recordLoop("f", 100, 77, 4, 1, 10);
  A.recordManifest("f", 4, 1, 2);
  B.recordLoop("f", 100, 77, 4, 2, 20);
  B.recordManifest("f", 4, 3, 4);
  B.recordLoop("g", 50, 88, 0, 1, 5);

  DepProfile M = A;
  M.merge(B);
  EXPECT_TRUE(M.manifested("f", 4, 1, 2));
  EXPECT_TRUE(M.manifested("f", 4, 3, 4));
  EXPECT_EQ(M.Functions.at("f").Loops.at(4).Invocations, 3u);
  EXPECT_EQ(M.Functions.at("f").Loops.at(4).Iterations, 30u);
  EXPECT_TRUE(M.observed("g", 50, 88, 0));

  // Disagreeing instruction counts mean one side is stale: the function's
  // data is unusable and must drop (no data, no speculation).
  DepProfile Stale;
  Stale.recordLoop("f", 101, 77, 4, 1, 1);
  DepProfile M2 = A;
  M2.merge(Stale);
  EXPECT_FALSE(M2.observed("f", 100, 77, 4));
  EXPECT_FALSE(M2.observed("f", 101, 77, 4));
}

TEST(DepProfileTest, StalenessGuardsObserved) {
  DepProfile P;
  P.recordLoop("main", 42, 99, 7, 1, 8);
  EXPECT_TRUE(P.observed("main", 42, 99, 7));
  EXPECT_FALSE(P.observed("main", 43, 99, 7))
      << "stale profile must not speculate";
  EXPECT_FALSE(P.observed("main", 42, 98, 7))
      << "a same-size body edit (hash mismatch) must not speculate";
  EXPECT_FALSE(P.observed("main", 42, 99, 8)) << "untrained loop";
  EXPECT_FALSE(P.observed("other", 42, 99, 7)) << "untrained function";
}

} // namespace
