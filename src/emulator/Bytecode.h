//===- Bytecode.h - Pre-decoded bytecode execution engine --------*- C++ -*-===//
///
/// \file
/// The fast execution engine: a per-function decode/lowering pass compiles
/// each Function once into a flat, cache-friendly instruction array, and a
/// tight switch-dispatch engine (BCContext) executes the decoded stream.
/// The decode pass removes every per-instruction cost the tree-walking
/// ExecContext pays at run time:
///
///   * dense register slots — SSA temporaries and arguments live in a flat
///     std::vector<RTValue> indexed by decode-assigned slot numbers, not in
///     a std::map<const Value*, RTValue> (no red-black-tree walks);
///   * pre-resolved operands — each operand is lowered to a slot index, an
///     immediate constant, a global number, or an alloca index at decode
///     time (no dyn_cast chains in the dispatch loop);
///   * flat global table — globals are numbered densely at IR creation
///     (GlobalVariable::getGlobalIndex) and resolved by array index, the
///     same numbering ExecState uses for its memory image;
///   * pre-linked branches — branch targets are instruction-array offsets
///     plus block indices, computed once;
///   * typed opcodes — the result/operand types select int/float opcode
///     variants at decode time (no runtime kind checks);
///   * decode-time constant folding — pure instructions whose operands are
///     all constants are lowered to immediate slot writes (the instruction
///     still executes and charges one instruction, so dynamic instruction
///     counts match the walker exactly);
///   * intrinsics by id — callee names are resolved to an enum at decode
///     time (no string comparisons per call).
///
/// The engine mirrors ExecContext's scheduler extension points so the
/// parallel runtime can drive it: storage overrides (flat, per-global),
/// a loop hook, commit/gate/numbering tables (flat, per-PC), shadow
/// memory, local output buffering, and batched budget charging.
///
/// Contract: a BCContext run is observably bit-identical to an ExecContext
/// run — same output lines, exit value, dynamic instruction count, and
/// observer stream. The tree-walker stays as the golden reference; the
/// differential suite (tests/emulator/bytecode_differential_test.cpp)
/// enforces the equivalence on every workload, plan view, and thread
/// count. See DESIGN.md §8.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_EMULATOR_BYTECODE_H
#define PSPDG_EMULATOR_BYTECODE_H

#include "emulator/ExecCore.h"
#include "ir/Module.h"

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace psc {

/// Which execution engine runs a program. Walker is the original
/// tree-walking ExecContext (golden reference); Bytecode is the pre-decoded
/// engine (default).
enum class ExecEngineKind { Walker, Bytecode };

const char *execEngineName(ExecEngineKind K);

/// A pre-resolved operand of a decoded instruction.
struct BCOperand {
  enum class K : uint8_t {
    Slot,   ///< Register slot index (argument or instruction result).
    ImmI,   ///< Immediate integer constant.
    ImmF,   ///< Immediate float constant.
    Global, ///< Global number (flat table in ExecState).
    Alloca, ///< Alloca index (flat table in the frame).
  };
  K Kind = K::ImmI;
  bool IsFloat = false; ///< Static scalar type (float promotion in compares).
  uint32_t Index = 0;   ///< Slot / global / alloca index.
  int64_t I = 0;        ///< ImmI payload.
  double F = 0.0;       ///< ImmF payload.

  static BCOperand slot(uint32_t Index, bool IsFloat) {
    BCOperand O;
    O.Kind = K::Slot;
    O.Index = Index;
    O.IsFloat = IsFloat;
    return O;
  }
  static BCOperand immI(int64_t V) {
    BCOperand O;
    O.Kind = K::ImmI;
    O.I = V;
    return O;
  }
  static BCOperand immF(double V) {
    BCOperand O;
    O.Kind = K::ImmF;
    O.IsFloat = true;
    O.F = V;
    return O;
  }
  static BCOperand global(uint32_t Index) {
    BCOperand O;
    O.Kind = K::Global;
    O.Index = Index;
    return O;
  }
  static BCOperand allocaOp(uint32_t Index) {
    BCOperand O;
    O.Kind = K::Alloca;
    O.Index = Index;
    return O;
  }
};

/// Opcodes of the decoded stream. Typed variants are selected at decode
/// time from the static IR types, exactly reproducing the walker's runtime
/// type dispatch.
enum class BCOp : uint8_t {
  ConstI, ///< Dest <- immediate int (folded constant expression).
  ConstF, ///< Dest <- immediate float (folded constant expression).
  Alloca, ///< Allocas[Dest] <- fresh object of AllocTy.
  LoadI,  ///< Dest <- int load through pointer operand A.
  LoadF,  ///< Dest <- float load through pointer operand A.
  Store,  ///< *(ptr B) <- value A.
  GEP,    ///< Dest <- ptr A advanced by int B.
  // Integer binary ops (operands A, B; Dest).
  AddI, SubI, MulI, DivI, RemI, AndI, OrI, XorI, ShlI, ShrI,
  // Float binary ops.
  AddF, SubF, MulF, DivF,
  NegI, NegF, NotI,
  CmpI, ///< Int compare; Sub = predicate.
  CmpF, ///< Float compare (either side float); Sub = predicate.
  CastIF, CastFI,
  Br,     ///< Jump to Target0.
  CondBr, ///< A != 0 ? Target0 : Target1.
  Ret,    ///< Sub != 0: return value is operand A.
  Call,   ///< Call decoded function Callee with ExtraOps args.
  Intr,   ///< Intrinsic call; Sub = BCIntr id.
};

/// Dispatch codes consulted by the fast dispatch loop: the base opcodes
/// keep their BCOp values; the decoder's fusion post-pass assigns one of
/// the fused codes below to the *first* instruction of a recognized
/// adjacent pair (second instruction reached only by fall-through). The
/// stepped path (observers / generic hooks / scheduler tables installed)
/// ignores Disp entirely and executes per-BCOp, so fusion can never change
/// observable behavior there. A fused pair still charges its two
/// sub-instructions separately, in order, so dynamic instruction counts —
/// including the exact budget-abort instruction — match unfused execution.
/// See DESIGN.md §11.
namespace bcdisp {
enum : uint8_t {
  NumBase = static_cast<uint8_t>(BCOp::Intr) + 1,
  CmpIBr = NumBase, ///< CmpI + CondBr on its result.
  CmpFBr,           ///< CmpF + CondBr on its result.
  GepLoadI,         ///< GEP + LoadI through it (array read).
  GepLoadF,         ///< GEP + LoadF through it.
  GepStore,         ///< GEP + Store through it (array write).
  AddIStore,        ///< AddI + Store of the sum (IV increments).
  AddFStore,        ///< AddF + Store of the sum (accumulations).
  SubFStore,        ///< SubF + Store of the difference.
  MulFStore,        ///< MulF + Store of the product.
  NumDisp,
};
}

/// Runtime built-ins by id (resolved from callee names at decode time).
enum class BCIntr : uint8_t {
  RegionBeginLock,   ///< critical/atomic region entry (takes the lock).
  RegionBeginNoLock, ///< ordered/other region entry (no lock).
  RegionBeginDyn,    ///< region id not a constant: resolve at run time.
  RegionEnd,
  Marker, ///< barrier / taskwait markers (no dynamic semantics).
  Print, PrintF,
  Sqrt, Fabs, Sin, Cos, Exp, Log, Pow,
  IMin, IMax, FMin, FMax,
  Lcg,
};

class BCFunction;

/// One decoded instruction. Fixed-size so the stream is a flat array.
struct BCInst {
  static constexpr uint32_t NoSlot = 0xFFFFFFFFu;

  BCOp Op = BCOp::ConstI;
  uint8_t Sub = 0;  ///< Cmp predicate / BCIntr id / Ret-has-value flag.
  uint8_t Disp = 0; ///< Fast-loop dispatch code (bcdisp; = Op unless fused).
  uint32_t Dest = NoSlot; ///< Result slot (alloca index for Alloca).
  BCOperand A, B;
  uint32_t Target0 = 0, Target1 = 0; ///< Pre-linked branch target PCs.
  uint32_t TBlock0 = 0, TBlock1 = 0; ///< Corresponding block indices.
  uint32_t ArgsBegin = 0;            ///< Call args: range in ExtraOps.
  uint32_t ArgsCount = 0;
  const BCFunction *Callee = nullptr; ///< Call target (defined functions).
  const Type *AllocTy = nullptr;      ///< Alloca object type.
  const Instruction *Src = nullptr;   ///< Originating IR instruction.
};

/// The decoded form of one defined Function.
class BCFunction {
public:
  const Function *function() const { return F; }

  const std::vector<BCInst> &code() const { return Code; }
  const std::vector<BCOperand> &extraOps() const { return ExtraOps; }

  /// First PC of each block, indexed by block index.
  uint32_t blockPC(unsigned BlockIdx) const { return BlockPC[BlockIdx]; }
  unsigned numBlocks() const { return static_cast<unsigned>(BlockPC.size()); }
  unsigned entryBlock() const { return EntryBlock; }

  uint32_t numSlots() const { return NumSlots; }
  uint32_t numAllocas() const { return NumAllocas; }

  /// Slot of an argument or value-producing instruction; NoSlot if none.
  uint32_t slotOf(const Value *V) const {
    auto It = SlotIdx.find(V);
    return It == SlotIdx.end() ? BCInst::NoSlot : It->second;
  }
  /// Alloca index of an AllocaInst; NoSlot if \p V is not an alloca here.
  uint32_t allocaIndexOf(const Value *V) const {
    auto It = AllocaIdx.find(V);
    return It == AllocaIdx.end() ? BCInst::NoSlot : It->second;
  }
  /// PC of an instruction (for building per-PC scheduler tables).
  uint32_t pcOf(const Instruction *I) const {
    auto It = InstPC.find(I);
    return It == InstPC.end() ? BCInst::NoSlot : It->second;
  }
  uint32_t argSlot(unsigned ArgIdx) const { return ArgSlots[ArgIdx]; }

private:
  friend class BytecodeModule;

  const Function *F = nullptr;
  std::vector<BCInst> Code;
  std::vector<BCOperand> ExtraOps;
  std::vector<uint32_t> BlockPC;
  std::vector<uint32_t> ArgSlots;
  unsigned EntryBlock = 0;
  uint32_t NumSlots = 0;
  uint32_t NumAllocas = 0;
  std::unordered_map<const Value *, uint32_t> SlotIdx;
  std::unordered_map<const Value *, uint32_t> AllocaIdx;
  std::unordered_map<const Instruction *, uint32_t> InstPC;
};

/// The whole-module decode: every defined function lowered once. Reusable
/// across runs and threads (immutable after construction).
class BytecodeModule {
public:
  explicit BytecodeModule(const Module &M);

  const Module &module() const { return M; }

  /// Decoded form of a defined function; null for declarations.
  const BCFunction *forFunction(const Function *F) const {
    auto It = Decoded.find(F);
    return It == Decoded.end() ? nullptr : It->second.get();
  }

  unsigned numGlobals() const { return NumGlobals; }

private:
  void decodeFunction(const Function &F, BCFunction &BF) const;

  const Module &M;
  unsigned NumGlobals = 0;
  std::unordered_map<const Function *, std::unique_ptr<BCFunction>> Decoded;
};

/// One activation record of the bytecode engine: flat register and alloca
/// tables. Allocas are pointers so a parallel worker can alias its parent
/// frame's objects while redirecting privatized ones.
struct BCFrame {
  const BCFunction *F = nullptr;
  std::vector<RTValue> Regs;
  std::vector<MemObject *> Allocas;
  std::vector<std::unique_ptr<MemObject>> Owned;

  BCFrame() = default;
  explicit BCFrame(const BCFunction &BF)
      : F(&BF), Regs(BF.numSlots()), Allocas(BF.numAllocas(), nullptr) {}

  /// Worker clone: aliases the parent's objects (Owned stays behind).
  BCFrame cloneShallow() const {
    BCFrame C;
    C.F = F;
    C.Regs = Regs;
    C.Allocas = Allocas;
    return C;
  }

  MemObject *createObject(const Type *ObjectTy) {
    Owned.push_back(std::make_unique<MemObject>(makeMemObject(ObjectTy)));
    return Owned.back().get();
  }
};

/// One re-entrant bytecode execution engine over a shared ExecState. The
/// extension points mirror ExecContext's, with the per-instruction maps
/// replaced by flat per-PC tables (built by the scheduler from the decoded
/// function via BCFunction::pcOf).
class BCContext {
public:
  static constexpr unsigned kNone = 0xFFFFFFFFu;

  BCContext(ExecState &S, const BytecodeModule &BM)
      : S(S), BM(BM), GlobalOverrides(BM.numGlobals(), nullptr) {}

  /// Unwinds any regions still open so the shared region lock is never
  /// leaked to other contexts (abort mid critical/atomic region).
  ~BCContext() {
    while (!RegionStack.empty()) {
      if (RegionStack.back().second)
        S.regionLock().unlock();
      RegionStack.pop_back();
    }
  }

  ExecState &state() { return S; }
  const BytecodeModule &bytecode() const { return BM; }

  // --- Scheduler extension points ---------------------------------------

  /// Observers fire on this context only (the sequential interpreter's).
  void addObserver(ExecutionObserver *O) { Observers.push_back(O); }

  /// Called before a block executes; returning a block index (!= kNone)
  /// means the hook ran the construct (a whole loop invocation) and control
  /// continues there. \p PrevBlock is kNone on function entry.
  using LoopHook = std::function<unsigned(BCContext &, BCFrame &,
                                          unsigned PrevBlock, unsigned Block)>;
  void setLoopHook(LoopHook H) { Hook = std::move(H); }

  /// Narrows the loop hook to specific blocks so the master context can use
  /// the fast dispatch loop between them: when set, the hook is consulted
  /// only when control enters a block whose per-function bitmap entry is
  /// non-zero (functions absent from the map are never interrupted). The
  /// caller guarantees the hook returns kNone for every unflagged block —
  /// the parallel runtime flags exactly the headers of non-sequential
  /// schedules, the only blocks its hook acts on. Without this, a hooked
  /// context falls back to consulting the hook at every block transition.
  void setHookHeaders(
      const std::unordered_map<const BCFunction *, std::vector<uint8_t>>
          *HeadersByFn) {
    HookHeaders = HeadersByFn;
  }

  /// Storage override for a global number — privatization of globals.
  void setGlobalOverride(uint32_t GlobalIdx, MemObject *Obj) {
    GlobalOverrides[GlobalIdx] = Obj;
  }

  /// DSWP stage ownership: per-PC flags of \p TablesFor ("does this context
  /// own the side effects of the instruction at PC"). Instructions executed
  /// in other functions are not owned, matching the walker's map semantics.
  void setCommitTable(const BCFunction *TablesFor,
                      const std::vector<uint8_t> *OwnedAtPC) {
    CommitFn = TablesFor;
    Owned = OwnedAtPC;
  }
  void setShadowMemory(ShadowMemory *SM) { Shadow = SM; }
  /// Per-PC program-order numbering of \p TablesFor for shadow-store
  /// tie-breaking (DSWP and speculative overlay merges).
  void setNumberingTable(const BCFunction *TablesFor,
                         const std::vector<unsigned> *NumAtPC) {
    NumberingFn = TablesFor;
    Numbering = NumAtPC;
  }
  void setCurrentIteration(long It) { CurIteration = It; }

  /// Speculation: loads/stores at PCs with a non-zero entry in \p WatchAtPC
  /// (watch index + 1) append an access record to \p Log. Stage contexts
  /// record only PCs they own (commit table), mirroring the walker.
  void setSpecWatch(const BCFunction *TablesFor,
                    const std::vector<uint32_t> *WatchAtPC,
                    SpecAccessLog *Log) {
    SpecFn = TablesFor;
    SpecWatch = WatchAtPC;
    SpecLog = Log;
  }

  /// Value speculation: per-PC tables of \p TablesFor — value-watch index
  /// + 1 (stores log the stored value) and guard ordinal + 1 (any logged
  /// access is a misspeculation). Records go to the setSpecWatch log.
  void setValueWatch(const BCFunction *TablesFor,
                     const std::vector<uint32_t> *VWatchAtPC,
                     const std::vector<uint32_t> *GuardAtPC) {
    ValueFn = TablesFor;
    ValueWatch = VWatchAtPC;
    GuardWatch = GuardAtPC;
  }

  /// HELIX: instructions of sequential SCCs execute in iteration order.
  struct IterationGate {
    const BCFunction *TablesFor = nullptr;
    const std::vector<uint8_t> *SeqAtPC = nullptr;
    std::atomic<long> *Turn = nullptr;
    long MyIter = 0;
    bool Held = false;
  };
  void setGate(IterationGate *G) { Gate = G; }

  /// Redirects print output into \p Buf (workers buffer so the scheduler
  /// can splice output back in sequential order).
  void setLocalOutput(std::vector<std::string> *Buf) { LocalOutput = Buf; }

  /// Batched instruction-budget charging (see ExecContext::setChargeBatch).
  void setChargeBatch(unsigned N) { ChargeBatch = N == 0 ? 1 : N; }

  /// Exact local budgeting for single-context runs: the context leases the
  /// state's whole remaining budget and checks a plain counter instead of
  /// the shared atomic per instruction. The abort fires on exactly the same
  /// instruction as per-instruction charging, and flushCharges() settles
  /// the exact executed count — so sequential runs stay bit-identical to
  /// the walker while touching the shared cacheline once.
  void enableLocalBudget() {
    uint64_t Used = S.instructionsExecuted();
    LocalLimit = Used >= S.budget() ? 0 : S.budget() - Used;
    LocalMode = true;
  }

  void flushCharges() {
    if (PendingCharges) {
      S.charge(PendingCharges);
      PendingCharges = 0;
      if (LocalMode) {
        uint64_t Used = S.instructionsExecuted();
        LocalLimit = Used >= S.budget() ? 0 : S.budget() - Used;
      }
    }
  }

  /// True when this context carries no execution-observation obligations:
  /// no observers, iteration gate, shadow overlay, speculation access log,
  /// or stage-commit table. Exactly these contexts run the fast dispatch
  /// loop (direct-threaded, fused superinstructions, no per-access
  /// watch/overlay checks) — the zero-obligation fast path of DESIGN.md
  /// §11. Any obligation forces the stepped per-instruction path.
  bool canFastPath() const {
    return Observers.empty() && !Gate && !Shadow && !SpecLog && !Owned;
  }

  // --- Execution ---------------------------------------------------------

  /// Runs \p F to completion (the sequential entry point).
  RTValue callFunction(const BCFunction &F, std::vector<RTValue> Args);

  /// Executes blocks of \p Fr's function starting at \p StartBlock,
  /// constrained to the loop whose membership bitmap is \p InLoop with
  /// header \p HeaderIdx: returns the first reached block index that is the
  /// header or outside the loop (without executing it), or kNone on
  /// abort/unexpected return.
  unsigned execWithin(BCFrame &Fr, const std::vector<uint8_t> &InLoop,
                      unsigned HeaderIdx, unsigned StartBlock);

  /// Resolves a global number honoring this context's overrides.
  MemObject *globalObject(uint32_t GlobalIdx) {
    MemObject *O = GlobalOverrides[GlobalIdx];
    return O ? O : S.globalByIndex(GlobalIdx);
  }

private:
  enum class ExecRes : uint8_t { Fall, Jump, Returned, Abort };

  /// Fast dispatch loop stop conditions. Pure runs to return/abort;
  /// HookStops exits (without executing or charging the target) when a jump
  /// reaches a hook-flagged block; LoopBounded exits when a jump leaves the
  /// execWithin iteration space.
  enum class FastMode : uint8_t { Pure, HookStops, LoopBounded };
  enum class FastRes : uint8_t { Returned, Stopped, Abort };

  /// The fast dispatch loop (direct-threaded where the compiler supports
  /// labels-as-values, a switch loop otherwise). Executes from the start of
  /// \p Block; on Stopped, \p Block holds the unexecuted boundary block and
  /// \p Prev the block that jumped to it. Bit-identical to chained execOne
  /// for zero-obligation contexts (canFastPath); abort detection for
  /// cross-context aborts is deferred to charge-flush boundaries, which
  /// only batched-charging parallel workers can observe.
  template <FastMode Mode>
  FastRes fastDispatch(const BCFunction &F, BCFrame &Fr, unsigned &Block,
                       unsigned &Prev, RTValue &Ret, const uint8_t *StopFlag,
                       const std::vector<uint8_t> *InLoop, unsigned HeaderIdx);

  /// Executes the instruction at \p PC. On Jump, NextBlock/NextPC carry the
  /// target; on Returned, Ret carries the value. Mirrors
  /// ExecContext::execInst including charge batching and gate waits.
  ExecRes execOne(const BCFunction &F, BCFrame &Fr, uint32_t PC,
                  unsigned &NextBlock, uint32_t &NextPC, RTValue &Ret);

  RTValue fetch(const BCOperand &O, BCFrame &Fr);
  RTValue doLoad(const RTValue &P, bool WantFloat);
  void doStore(const RTValue &V, const RTValue &P, bool OwnedStore,
               unsigned Num);
  /// Fires onMemAccess observers and the speculation watches for the
  /// load/store at \p PC of \p F (mirrors ExecContext::noteMemAccess).
  /// \p Stored is the just-stored value (null for loads).
  void noteMemAccess(const BCFunction &F, uint32_t PC, const RTValue &P,
                     bool IsWrite, const RTValue *Stored = nullptr);
  RTValue callIntrinsic(const BCFunction &F, const BCInst &I, BCFrame &Fr,
                        uint32_t PC);
  void emitOutput(std::string Line);
  void gateWait(uint32_t PC);

  ExecState &S;
  const BytecodeModule &BM;
  std::vector<ExecutionObserver *> Observers;
  unsigned ChargeBatch = 1;
  bool LocalMode = false;
  uint64_t LocalLimit = 0;
  uint64_t PendingCharges = 0;
  LoopHook Hook;
  const std::unordered_map<const BCFunction *, std::vector<uint8_t>>
      *HookHeaders = nullptr;
  std::vector<MemObject *> GlobalOverrides;
  const BCFunction *CommitFn = nullptr;
  const std::vector<uint8_t> *Owned = nullptr;
  ShadowMemory *Shadow = nullptr;
  const BCFunction *NumberingFn = nullptr;
  const std::vector<unsigned> *Numbering = nullptr;
  const BCFunction *SpecFn = nullptr;
  const std::vector<uint32_t> *SpecWatch = nullptr;
  const BCFunction *ValueFn = nullptr;
  const std::vector<uint32_t> *ValueWatch = nullptr;
  const std::vector<uint32_t> *GuardWatch = nullptr;
  SpecAccessLog *SpecLog = nullptr;
  long CurIteration = 0;
  IterationGate *Gate = nullptr;
  std::vector<std::string> *LocalOutput = nullptr;
  /// Dynamic directive-region stack: ids of open regions + lock held.
  std::vector<std::pair<unsigned, bool>> RegionStack;
};

} // namespace psc

#endif // PSPDG_EMULATOR_BYTECODE_H
