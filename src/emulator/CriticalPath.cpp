//===- CriticalPath.cpp ---------------------------------------*- C++ -*-===//

#include "emulator/CriticalPath.h"

#include "pspdg/PSPDGBuilder.h"

#include <algorithm>
#include <limits>

using namespace psc;

// --- CriticalPathModel -------------------------------------------------------

CriticalPathModel::CriticalPathModel(const Module &M, AbstractionKind Kind,
                                     const FeatureSet &Features,
                                     const DepOracleConfig &DepOracles)
    : Kind(Kind), Features(Features), DepOracles(DepOracles), MA(M) {
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      planFunction(*F);
}

void CriticalPathModel::planFunction(const Function &F) {
  const FunctionAnalysis &FA = MA.of(F);
  if (FA.loopInfo().loops().empty())
    return;

  const Module &M = *F.getParent();

  auto Worksharing = [&](const Loop *L) -> bool {
    BasicBlock *Header = F.getBlock(L->getHeader());
    for (const Directive *D : M.getParallelInfo().directivesForLoop(Header))
      if (D->Kind == DirectiveKind::ParallelFor ||
          D->Kind == DirectiveKind::For)
        return true;
    return false;
  };

  if (Kind == AbstractionKind::OpenMP) {
    for (const Loop *L : FA.loopInfo().loops())
      if (Worksharing(L)) {
        LoopCPConfig Cfg;
        Cfg.AllowDOALL = true; // by programmer declaration
        Cfg.CountSerialRegions = true;
        Configs[{&F, L->getHeader()}] = std::move(Cfg);
      }
    return;
  }

  // One oracle stack per function; materialize the edge set once and feed
  // it to both consumers (the PS-PDG build and the view).
  DepOracleStack Stack(FA, DepOracles);
  std::vector<DepEdge> DepEdges = buildDepEdges(Stack);
  std::unique_ptr<PSPDG> G;
  if (Kind == AbstractionKind::PSPDG)
    G = buildPSPDGFromEdges(FA, DepEdges, Features);
  AbstractionView View(Kind, FA, std::move(DepEdges), G.get());

  // Which loops each abstraction may re-plan (paper §6.3 methodology):
  //   PDG    — outermost loops only;
  //   J&K    — outermost loops + developer-expressed inner loops;
  //   PS-PDG — every loop (contexts scope the declared semantics to each
  //            nesting level, enabling hierarchical parallelism).
  bool InnerWorksharing = Kind == AbstractionKind::JK;
  bool AllLoops = Kind == AbstractionKind::PSPDG;

  for (const Loop *L : FA.loopInfo().loops()) {
    bool Planned = L->getDepth() == 1 || AllLoops;
    if (!Planned && !(InnerWorksharing && Worksharing(L)))
      continue;

    LoopPlanView PV = View.viewFor(*L);
    LoopSCCDAG DAG(PV);

    LoopCPConfig Cfg;
    Cfg.NumSCCs = DAG.numSCCs();
    Cfg.AllowDOALL = DAG.allParallel() && PV.TripCountable;
    switch (Kind) {
    case AbstractionKind::JK:
      Cfg.CountSerialRegions = true;
      break;
    case AbstractionKind::PSPDG:
      // Conflicts present -> the lock is real. Without hierarchical nodes
      // or traits the PS-PDG cannot reason about regions at all, so the
      // program's serialization is preserved conservatively.
      Cfg.CountSerialRegions =
          PV.NumOrderlessConflicts > 0 ||
          !(Features.HierarchicalNodesAndUndirectedEdges &&
            Features.NodeTraits);
      break;
    default: // PDG: sequential version of the program, no locks.
      Cfg.CountSerialRegions = false;
      break;
    }
    if (Planned) {
      Cfg.AllowHELIX = true;
      Cfg.AllowDSWP = DAG.numSCCs() >= 2;
    } else if (!Cfg.AllowDOALL) {
      continue; // inner worksharing loop the view cannot prove: sequential
    }
    Cfg.SCCIsSeq.resize(DAG.numSCCs());
    for (unsigned S = 0; S < DAG.numSCCs(); ++S)
      Cfg.SCCIsSeq[S] = DAG.isSequential(S);
    for (unsigned I = 0; I < PV.Insts.size(); ++I)
      Cfg.SCCOf[PV.Insts[I]] = DAG.sccOf(I);

    Configs[{&F, L->getHeader()}] = std::move(Cfg);
  }
}

// --- CriticalPathEvaluator -----------------------------------------------------

bool CriticalPathEvaluator::inSerializedRegion(const Activation &A) const {
  for (DirectiveKind K : A.RegionStack)
    if (K == DirectiveKind::Critical || K == DirectiveKind::Atomic ||
        K == DirectiveKind::Ordered)
      return true;
  return false;
}

void CriticalPathEvaluator::onEnterFunction(const Function &F) {
  Activation A;
  A.F = &F;
  A.LI = &Model.analyses().of(F).loopInfo();
  Activations.push_back(std::move(A));
}

void CriticalPathEvaluator::onExitFunction(const Function &) {
  if (Activations.empty())
    return;
  Activation &A = Activations.back();
  while (!A.LoopStack.empty())
    popLoopFrame();
  double CP = A.BaseCP;
  Activations.pop_back();
  if (Activations.empty()) {
    FinalCP = CP;
    return;
  }
  // Propagated to the caller when its Call instruction is observed.
  PendingCallCP += CP;
}

void CriticalPathEvaluator::foldIteration(LoopFrame &Fr) {
  Fr.SumIterCP += Fr.IterCP;
  Fr.MaxIterCP = std::max(Fr.MaxIterCP, Fr.IterCP);
  ++Fr.Iterations;
  Fr.IterCP = 0;
}

void CriticalPathEvaluator::popLoopFrame() {
  Activation &A = Activations.back();
  LoopFrame Fr = std::move(A.LoopStack.back());
  A.LoopStack.pop_back();
  foldIteration(Fr);

  double CP = Fr.SumIterCP; // sequential execution

  if (Fr.Cfg) {
    double SerialFloor = Fr.Cfg->CountSerialRegions ? Fr.RawSerial : 0.0;
    double Best = CP;
    if (Fr.Cfg->AllowDOALL)
      Best = std::min(Best, std::max(Fr.MaxIterCP, SerialFloor));
    if (Fr.Cfg->AllowHELIX) {
      // Sequential segments execute in iteration order across the whole
      // invocation (RawSeq); the parallel remainder pipelines, bounded by
      // one (reduced) iteration.
      double Helix = Fr.RawSeq + Fr.MaxIterCP;
      Best = std::min(Best, std::max(Helix, SerialFloor));
    }
    if (Fr.Cfg->AllowDSWP && Fr.Cfg->NumSCCs >= 2) {
      double Longest = 0;
      for (double T : Fr.RawSCCTotals)
        Longest = std::max(Longest, T);
      Best = std::min(Best, std::max(Longest, SerialFloor));
    }
    CP = Best;
  }

  // Propagate the reduced invocation cost into the parent scope. The
  // enclosing frames already saw every instruction on their raw tracks, so
  // the lump goes to the reduced track only.
  const Function &F = *A.F;
  const Instruction *Attr =
      F.getBlock(Fr.L->getHeader())->getTerminator();
  addCost(CP, /*Serialized=*/false, Attr, /*Raw=*/false);
}

void CriticalPathEvaluator::addCost(double W, bool Serialized,
                                    const Instruction *I, bool Raw) {
  if (Activations.empty())
    return;
  Activation &A = Activations.back();
  if (A.LoopStack.empty()) {
    A.BaseCP += W;
    return;
  }

  // Raw track: every planned enclosing frame classifies the instruction
  // with its own SCC map.
  if (Raw) {
    for (LoopFrame &Fr : A.LoopStack) {
      if (Serialized)
        Fr.RawSerial += W;
      if (!Fr.Cfg || Fr.Cfg->SCCOf.empty())
        continue;
      auto It = Fr.Cfg->SCCOf.find(I);
      if (It == Fr.Cfg->SCCOf.end())
        continue;
      unsigned S = It->second;
      if (Fr.RawSCCTotals.size() < Fr.Cfg->NumSCCs)
        Fr.RawSCCTotals.resize(Fr.Cfg->NumSCCs, 0.0);
      Fr.RawSCCTotals[S] += W;
      if (Fr.Cfg->SCCIsSeq[S])
        Fr.RawSeq += W;
    }
  }

  // Reduced track: innermost frame only.
  A.LoopStack.back().IterCP += W;
}

void CriticalPathEvaluator::onBlockTransfer(const Function &F,
                                            const BasicBlock *From,
                                            const BasicBlock *To) {
  if (Activations.empty())
    return;
  Activation &A = Activations.back();
  const Loop *ToLoop = A.LI->getLoopFor(To->getIndex());

  // Leave loops that do not contain the destination block.
  while (!A.LoopStack.empty() &&
         (!ToLoop || !A.LoopStack.back().L->contains(To->getIndex())))
    popLoopFrame();

  // Iteration boundary: branching back to the innermost header.
  if (!A.LoopStack.empty() && ToLoop &&
      A.LoopStack.back().L->getHeader() == To->getIndex() && From)
    foldIteration(A.LoopStack.back());

  // Enter newly-reached loops, outermost first.
  std::vector<const Loop *> Chain;
  for (const Loop *L = ToLoop; L; L = L->getParent()) {
    bool OnStack = false;
    for (const LoopFrame &S : A.LoopStack)
      if (S.L == L)
        OnStack = true;
    if (!OnStack)
      Chain.push_back(L);
  }
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
    LoopFrame Fr;
    Fr.L = *It;
    Fr.Cfg = Model.configFor(&F, (*It)->getHeader());
    if (Fr.Cfg)
      Fr.RawSCCTotals.assign(Fr.Cfg->NumSCCs, 0.0);
    A.LoopStack.push_back(std::move(Fr));
  }
}

void CriticalPathEvaluator::onInstruction(const Instruction &I) {
  if (Activations.empty())
    return;
  Activation &A = Activations.back();

  // Region markers: maintain the dynamic region stack; zero cost.
  if (const auto *CI = dyn_cast<CallInst>(&I)) {
    const std::string &Name = CI->getCallee()->getName();
    if (Name == intrinsics::RegionBegin) {
      auto *IdC = cast<ConstantInt>(CI->getArg(0));
      const Directive *D =
          A.F->getParent()->getParallelInfo().getDirective(
              static_cast<unsigned>(IdC->getValue()));
      A.RegionStack.push_back(D ? D->Kind : DirectiveKind::Parallel);
      return;
    }
    if (Name == intrinsics::RegionEnd) {
      if (!A.RegionStack.empty())
        A.RegionStack.pop_back();
      return;
    }
    if (Name == intrinsics::BarrierMarker)
      return;
  }

  double W = 1.0 + PendingCallCP;
  PendingCallCP = 0;
  addCost(W, inSerializedRegion(A), &I, /*Raw=*/true);
}

// --- Whole-program convenience ------------------------------------------------

CriticalPathReport
psc::evaluateCriticalPaths(const Module &M, uint64_t InstructionBudget,
                           const DepOracleConfig &DepOracles) {
  CriticalPathReport Report;
  const AbstractionKind Kinds[] = {AbstractionKind::OpenMP,
                                   AbstractionKind::PDG, AbstractionKind::JK,
                                   AbstractionKind::PSPDG};
  for (AbstractionKind K : Kinds) {
    CriticalPathModel Model(M, K, FeatureSet(), DepOracles);
    CriticalPathEvaluator Eval(Model);
    Interpreter Interp(M);
    Interp.setInstructionBudget(InstructionBudget);
    Interp.addObserver(&Eval);
    RunResult R = Interp.run();
    Report.TotalDynamicInstructions = R.InstructionsExecuted;
    double CP = Eval.criticalPath();
    switch (K) {
    case AbstractionKind::OpenMP:
      Report.OpenMP = CP;
      break;
    case AbstractionKind::PDG:
      Report.PDG = CP;
      break;
    case AbstractionKind::JK:
      Report.JK = CP;
      break;
    case AbstractionKind::PSPDG:
      Report.PSPDG = CP;
      break;
    }
  }
  return Report;
}
