//===- Interpreter.h - PSC IR interpreter ------------------------*- C++ -*-===//
///
/// \file
/// Direct interpreter for the PSC IR, used as the paper's "emulator" (§6.3):
/// it executes a program's sequential semantics while observers measure
/// dynamic properties (loop coverage, plan-constrained critical path).
/// Deterministic: same module → same execution, same observer stream.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_EMULATOR_INTERPRETER_H
#define PSPDG_EMULATOR_INTERPRETER_H

#include "ir/Module.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace psc {

/// Callbacks fired during interpretation. All hooks are optional.
class ExecutionObserver {
public:
  virtual ~ExecutionObserver() = default;
  /// Fired after \p I executes (including marker intrinsics).
  virtual void onInstruction(const Instruction &I) {}
  /// Fired when control moves between blocks of \p F (From null on entry).
  virtual void onBlockTransfer(const Function &F, const BasicBlock *From,
                               const BasicBlock *To) {}
  virtual void onEnterFunction(const Function &F) {}
  virtual void onExitFunction(const Function &F) {}
};

/// Result of a program run.
struct RunResult {
  bool Completed = false;       ///< false = instruction budget exhausted.
  int64_t ExitValue = 0;        ///< main's return value.
  uint64_t InstructionsExecuted = 0;
  std::vector<std::string> Output; ///< print/printf64 lines, in order.
};

/// One runtime memory object (a global or an alloca instance).
struct MemObject {
  bool IsFloat = false;
  std::vector<int64_t> I;
  std::vector<double> F;

  uint64_t size() const { return IsFloat ? F.size() : I.size(); }
};

/// Interprets one module.
class Interpreter {
public:
  explicit Interpreter(const Module &M);
  ~Interpreter();

  /// Registers an observer (not owned). Call before run().
  void addObserver(ExecutionObserver *O) { Observers.push_back(O); }

  /// Hard cap on executed instructions (runaway protection).
  void setInstructionBudget(uint64_t Budget) { MaxInstructions = Budget; }

  /// Executes \p EntryName (default "main"; must take no parameters).
  RunResult run(const std::string &EntryName = "main");

private:
  struct Impl;
  std::unique_ptr<Impl> P;
  const Module &M;
  std::vector<ExecutionObserver *> Observers;
  uint64_t MaxInstructions = 2'000'000'000ULL;
};

} // namespace psc

#endif // PSPDG_EMULATOR_INTERPRETER_H
