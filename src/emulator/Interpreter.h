//===- Interpreter.h - PSC IR interpreter ------------------------*- C++ -*-===//
///
/// \file
/// Direct interpreter for the PSC IR, used as the paper's "emulator" (§6.3):
/// it executes a program's sequential semantics while observers measure
/// dynamic properties (loop coverage, plan-constrained critical path).
/// Deterministic: same module → same execution, same observer stream.
///
/// The actual execution engine lives in ExecCore.h (ExecState/ExecContext);
/// this class is the sequential, single-context driver over it. The
/// parallel plan-execution runtime (src/runtime/) drives multiple
/// ExecContexts over one shared ExecState instead.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_EMULATOR_INTERPRETER_H
#define PSPDG_EMULATOR_INTERPRETER_H

#include "emulator/ExecCore.h"
#include "ir/Module.h"

#include <cstdint>
#include <string>
#include <vector>

namespace psc {

/// Interprets one module sequentially.
class Interpreter {
public:
  explicit Interpreter(const Module &M) : M(M) {}

  /// Registers an observer (not owned). Call before run().
  void addObserver(ExecutionObserver *O) { Observers.push_back(O); }

  /// Hard cap on executed instructions (runaway protection).
  void setInstructionBudget(uint64_t Budget) { MaxInstructions = Budget; }

  /// Executes \p EntryName (default "main"; must take no parameters).
  RunResult run(const std::string &EntryName = "main");

private:
  const Module &M;
  std::vector<ExecutionObserver *> Observers;
  uint64_t MaxInstructions = 2'000'000'000ULL;
};

} // namespace psc

#endif // PSPDG_EMULATOR_INTERPRETER_H
