//===- Interpreter.h - PSC IR interpreter ------------------------*- C++ -*-===//
///
/// \file
/// Direct interpreter for the PSC IR, used as the paper's "emulator" (§6.3):
/// it executes a program's sequential semantics while observers measure
/// dynamic properties (loop coverage, plan-constrained critical path).
/// Deterministic: same module → same execution, same observer stream.
///
/// Two engines implement the semantics (selectable via setEngine):
///
///   * Bytecode (default) — each Function is decoded once into a flat
///     instruction stream with dense register slots and pre-resolved
///     operands (emulator/Bytecode.h), then executed by tight switch
///     dispatch.
///   * Walker — the original tree-walking ExecContext over the IR
///     (emulator/ExecCore.h); kept as the golden reference the bytecode
///     engine is differentially tested against.
///
/// Both engines produce bit-identical runs: same output, exit value,
/// instruction count, and observer stream. The parallel plan-execution
/// runtime (src/runtime/) drives multiple contexts of either engine over
/// one shared ExecState instead.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_EMULATOR_INTERPRETER_H
#define PSPDG_EMULATOR_INTERPRETER_H

#include "emulator/Bytecode.h"
#include "emulator/ExecCore.h"
#include "ir/Module.h"

#include <cstdint>
#include <string>
#include <vector>

namespace psc {

/// Interprets one module sequentially.
class Interpreter {
public:
  explicit Interpreter(const Module &M) : M(M) {}

  /// Registers an observer (not owned). Call before run().
  void addObserver(ExecutionObserver *O) { Observers.push_back(O); }

  /// Hard cap on executed instructions (runaway protection).
  void setInstructionBudget(uint64_t Budget) { MaxInstructions = Budget; }

  /// Selects the execution engine (default: bytecode).
  void setEngine(ExecEngineKind K) { Engine = K; }
  ExecEngineKind engine() const { return Engine; }

  /// Reuses an existing decode of this module (benchmark loops; must match
  /// the constructor module). Without this, run() decodes on first use and
  /// caches the result for subsequent runs.
  void setBytecode(const BytecodeModule *BM) { SharedBM = BM; }

  /// Executes \p EntryName (default "main"; must take no parameters).
  RunResult run(const std::string &EntryName = "main");

private:
  const Module &M;
  std::vector<ExecutionObserver *> Observers;
  uint64_t MaxInstructions = 2'000'000'000ULL;
  ExecEngineKind Engine = ExecEngineKind::Bytecode;
  const BytecodeModule *SharedBM = nullptr;
  std::unique_ptr<BytecodeModule> OwnedBM;
};

} // namespace psc

#endif // PSPDG_EMULATOR_INTERPRETER_H
