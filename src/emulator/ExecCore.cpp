//===- ExecCore.cpp -------------------------------------------*- C++ -*-===//

#include "emulator/ExecCore.h"

#include "support/ErrorHandling.h"

#include <cmath>
#include <sstream>
#include <thread>

using namespace psc;

// --- ExecState ---------------------------------------------------------------

MemObject psc::makeMemObject(const Type *ObjectTy) {
  MemObject O;
  const Type *Elem = ObjectTy;
  uint64_t N = 1;
  if (const auto *AT = dyn_cast<ArrayType>(ObjectTy)) {
    Elem = AT->getElement();
    N = AT->getNumElements();
  }
  O.IsFloat = Elem->isFloat();
  if (O.IsFloat)
    O.F.assign(N, 0.0);
  else
    O.I.assign(N, 0);
  return O;
}

ExecState::ExecState(const Module &M) : M(M) {
  Globals.resize(M.globals().size());
  for (const auto &G : M.globals()) {
    MemObject O = makeMemObject(G->getObjectType());
    if (G->hasScalarInit()) {
      if (O.IsFloat)
        O.F[0] = G->getScalarInit();
      else
        O.I[0] = static_cast<int64_t>(G->getScalarInit());
    }
    Globals[G->getGlobalIndex()] = std::move(O);
  }
}

void ExecState::appendOutput(std::string Line) {
  std::lock_guard<std::mutex> Lock(OutputMu);
  Output.push_back(std::move(Line));
}

void ExecState::appendOutput(std::vector<std::string> Lines) {
  std::lock_guard<std::mutex> Lock(OutputMu);
  for (std::string &L : Lines)
    Output.push_back(std::move(L));
}

// --- Frame -------------------------------------------------------------------

MemObject *Frame::createObject(const Type *ObjectTy) {
  Owned.push_back(std::make_unique<MemObject>(makeMemObject(ObjectTy)));
  return Owned.back().get();
}

// --- ShadowMemory ------------------------------------------------------------

bool ShadowMemory::load(MemObject *O, uint64_t Off, bool &IsFloat, int64_t &I,
                        double &F) const {
  Key K{O, Off};
  auto It = IterShared.find(K);
  if (It == IterShared.end()) {
    It = IterLocal.find(K);
    if (It == IterLocal.end()) {
      It = Persist.find(K);
      if (It == Persist.end()) {
        // Ring mode: fall back to the iteration-ordered committed overlay
        // (guarded: parallel-SCC readers race with gate-held publishers).
        if (Mode == SpecMode::Ring && Committed) {
          std::lock_guard<std::mutex> Lock(Committed->Mu);
          auto CIt = Committed->Map.find(K);
          if (CIt == Committed->Map.end())
            return false;
          IsFloat = O->IsFloat;
          I = CIt->second.I;
          F = CIt->second.F;
          return true;
        }
        return false;
      }
    }
  }
  IsFloat = O->IsFloat;
  I = It->second.I;
  F = It->second.F;
  return true;
}

void ShadowMemory::store(MemObject *O, uint64_t Off, int64_t I, double F,
                         bool Owned, long Iter, unsigned Inst) {
  Key K{O, Off};
  Cell C;
  C.I = I;
  C.F = F;
  C.Iter = Iter;
  C.Inst = Inst;
  switch (Mode) {
  case SpecMode::Chunk:
    // Speculative DOALL: the worker's whole history in one overlay.
    Persist[K] = C;
    return;
  case SpecMode::Ring:
    // Speculative HELIX: current-iteration stores only; published into the
    // committed overlay at the gate handoff.
    IterShared[K] = C;
    return;
  case SpecMode::None:
    break;
  }
  if (Owned) {
    IterShared[K] = C;
    Persist[K] = C;
  } else {
    IterLocal[K] = C;
  }
}

// --- ExecContext -------------------------------------------------------------

RTValue ExecContext::evalOperand(const Value *V, Frame &Fr) {
  if (const auto *CI = dyn_cast<ConstantInt>(V))
    return RTValue::ofInt(CI->getValue());
  if (const auto *CF = dyn_cast<ConstantFloat>(V))
    return RTValue::ofFloat(CF->getValue());
  if (const auto *GV = dyn_cast<GlobalVariable>(V)) {
    auto It = Overrides.find(GV);
    return RTValue::ofPtr(It != Overrides.end() ? It->second
                                                : S.globalObject(GV),
                          0);
  }
  if (isa<AllocaInst>(V))
    return RTValue::ofPtr(Fr.Allocas.at(V), 0);
  if (isa<Argument>(V) || isa<Instruction>(V))
    return Fr.Regs.at(V);
  psc_unreachable("unhandled operand kind");
}

MemObject *ExecContext::resolveStorage(const Value *Storage, Frame &Fr) {
  if (const auto *GV = dyn_cast<GlobalVariable>(Storage)) {
    auto It = Overrides.find(GV);
    return It != Overrides.end() ? It->second : S.globalObject(GV);
  }
  if (isa<AllocaInst>(Storage)) {
    auto It = Fr.Allocas.find(Storage);
    return It != Fr.Allocas.end() ? It->second : nullptr;
  }
  return nullptr;
}

RTValue ExecContext::doLoad(const RTValue &P, const Type *Ty) {
  if (P.Offset >= P.Obj->size())
    reportFatalError("out-of-bounds load at offset " +
                     std::to_string(P.Offset));
  bool ObjFloat = P.Obj->IsFloat;
  int64_t RawI = 0;
  double RawF = 0.0;
  bool FromShadow = Shadow && !Shadow->isBypassed(P.Obj) &&
                    Shadow->load(P.Obj, P.Offset, ObjFloat, RawI, RawF);
  if (!FromShadow) {
    if (ObjFloat)
      RawF = P.Obj->F[P.Offset];
    else
      RawI = P.Obj->I[P.Offset];
  }
  if (Ty->isFloat())
    return RTValue::ofFloat(ObjFloat ? RawF : static_cast<double>(RawI));
  if (Ty->isPointer()) {
    // Pointer-typed slots are not supported in MemObjects; PSC never
    // stores pointers to memory (array params are SSA arguments).
    psc_unreachable("pointer load from memory");
  }
  return RTValue::ofInt(ObjFloat ? static_cast<int64_t>(RawF) : RawI);
}

void ExecContext::doStore(const RTValue &V, const RTValue &P,
                          const Instruction *I) {
  if (P.Offset >= P.Obj->size())
    reportFatalError("out-of-bounds store at offset " +
                     std::to_string(P.Offset));
  bool Owned = !CommitFilter || CommitFilter(*I);
  int64_t RawI =
      V.Kind == RTValue::RTKind::Float ? static_cast<int64_t>(V.F) : V.I;
  double RawF =
      V.Kind == RTValue::RTKind::Float ? V.F : static_cast<double>(V.I);
  if (Shadow && !Shadow->isBypassed(P.Obj)) {
    unsigned Num = 0;
    if (InstNumbering) {
      auto It = InstNumbering->find(I);
      if (It != InstNumbering->end())
        Num = It->second;
    }
    Shadow->store(P.Obj, P.Offset, RawI, RawF, Owned, CurIteration, Num);
    return;
  }
  if (!Owned)
    return;
  if (P.Obj->IsFloat)
    P.Obj->F[P.Offset] = RawF;
  else
    P.Obj->I[P.Offset] = RawI;
}

void ExecContext::noteMemAccess(const Instruction *I, const RTValue &P,
                                bool IsWrite, const RTValue *Stored) {
  for (ExecutionObserver *O : Observers)
    O->onMemAccess(*I, *P.Obj, P.Offset, IsWrite);
  if (!SpecLog || (CommitFilter && !CommitFilter(*I)))
    return;
  uint32_t Watch = 0, VWatch = 0, GWatch = 0;
  bool HasWatch = false;
  if (SpecWatchOf) {
    auto It = SpecWatchOf->find(I);
    if (It != SpecWatchOf->end()) {
      Watch = It->second;
      HasWatch = true;
    }
  }
  if (ValueWatchOf) {
    auto It = ValueWatchOf->find(I);
    if (It != ValueWatchOf->end())
      VWatch = It->second + 1;
  }
  if (GuardWatchOf) {
    auto It = GuardWatchOf->find(I);
    if (It != GuardWatchOf->end())
      GWatch = It->second + 1;
  }
  if (!HasWatch && !VWatch && !GWatch)
    return;
  SpecAccessRec R;
  R.Obj = P.Obj;
  R.Off = P.Offset;
  R.Iter = CurIteration;
  R.Watch = Watch;
  R.IsWrite = IsWrite;
  R.HasWatch = HasWatch;
  R.VWatch = VWatch;
  R.GWatch = GWatch;
  if (Stored) {
    // Fill only the matching lane: the value checks compare by the
    // storage's element type, and casting an out-of-range double to
    // int64 would be UB for nothing.
    if (Stored->Kind == RTValue::RTKind::Float)
      R.ValF = Stored->F;
    else {
      R.ValI = Stored->I;
      R.ValF = static_cast<double>(Stored->I);
    }
  }
  SpecLog->push_back(R);
}

void ExecContext::emitOutput(std::string Line) {
  if (LocalOutput)
    LocalOutput->push_back(std::move(Line));
  else
    S.appendOutput(std::move(Line));
}

RTValue ExecContext::callIntrinsic(const CallInst &CI,
                                   std::vector<RTValue> &Args) {
  const std::string &Name = CI.getCallee()->getName();
  auto F1 = [&](double (*Fn)(double)) {
    return RTValue::ofFloat(Fn(Args[0].F));
  };
  if (Name == intrinsics::RegionBegin) {
    unsigned Id = static_cast<unsigned>(Args[0].I);
    const Directive *D = S.module().getParallelInfo().getDirective(Id);
    bool Lock = D && (D->Kind == DirectiveKind::Critical ||
                      D->Kind == DirectiveKind::Atomic);
    if (Lock)
      S.regionLock().lock();
    RegionStack.push_back({Id, Lock});
    return RTValue();
  }
  if (Name == intrinsics::RegionEnd) {
    if (!RegionStack.empty()) {
      if (RegionStack.back().second)
        S.regionLock().unlock();
      RegionStack.pop_back();
    }
    return RTValue();
  }
  if (Name == intrinsics::BarrierMarker || Name == intrinsics::TaskWaitMarker)
    return RTValue();
  if (Name == intrinsics::Print) {
    if (!CommitFilter || CommitFilter(CI))
      emitOutput(std::to_string(Args[0].I));
    return RTValue();
  }
  if (Name == intrinsics::PrintF) {
    if (!CommitFilter || CommitFilter(CI)) {
      std::ostringstream OS;
      OS << Args[0].F;
      emitOutput(OS.str());
    }
    return RTValue();
  }
  if (Name == intrinsics::Sqrt)
    return F1(std::sqrt);
  if (Name == intrinsics::Fabs)
    return F1(std::fabs);
  if (Name == intrinsics::Sin)
    return F1(std::sin);
  if (Name == intrinsics::Cos)
    return F1(std::cos);
  if (Name == intrinsics::Exp)
    return F1(std::exp);
  if (Name == intrinsics::Log)
    return F1(std::log);
  if (Name == intrinsics::Pow)
    return RTValue::ofFloat(std::pow(Args[0].F, Args[1].F));
  if (Name == intrinsics::IMin)
    return RTValue::ofInt(std::min(Args[0].I, Args[1].I));
  if (Name == intrinsics::IMax)
    return RTValue::ofInt(std::max(Args[0].I, Args[1].I));
  if (Name == intrinsics::FMin)
    return RTValue::ofFloat(std::min(Args[0].F, Args[1].F));
  if (Name == intrinsics::FMax)
    return RTValue::ofFloat(std::max(Args[0].F, Args[1].F));
  if (Name == intrinsics::Lcg) {
    // 48-bit linear congruential step (deterministic pseudo-random).
    uint64_t X = static_cast<uint64_t>(Args[0].I);
    X = (X * 25214903917ULL + 11ULL) & ((1ULL << 48) - 1);
    return RTValue::ofInt(static_cast<int64_t>(X));
  }
  reportFatalError("unknown intrinsic '" + Name + "' at runtime");
}

void ExecContext::gateWait(const Instruction *I) {
  if (!Gate || Gate->Held || !Gate->SCCOf)
    return;
  auto It = Gate->SCCOf->find(I);
  if (It == Gate->SCCOf->end() || !(*Gate->SCCIsSeq)[It->second])
    return;
  while (Gate->Turn->load(std::memory_order_acquire) != Gate->MyIter) {
    if (S.aborted())
      return;
    std::this_thread::yield();
  }
  Gate->Held = true;
}

bool ExecContext::execInst(Frame &Fr, const Instruction *I,
                           const BasicBlock *&Next, RTValue &Ret,
                           bool &Returned) {
  if (++PendingCharges >= ChargeBatch) {
    uint64_t N = PendingCharges;
    PendingCharges = 0;
    if (!S.charge(N))
      return false;
  }
  if (Gate) {
    gateWait(I);
    if (S.aborted())
      return false;
  }
  switch (I->getKind()) {
  case Value::ValueKind::Alloca: {
    const auto *AI = cast<AllocaInst>(I);
    Fr.Allocas[AI] = Fr.createObject(AI->getAllocatedType());
    break;
  }
  case Value::ValueKind::Load: {
    const auto *LI = cast<LoadInst>(I);
    RTValue P = evalOperand(LI->getPointer(), Fr);
    Fr.Regs[I] = doLoad(P, LI->getType());
    if (!Observers.empty() || SpecLog)
      noteMemAccess(I, P, /*IsWrite=*/false);
    break;
  }
  case Value::ValueKind::Store: {
    const auto *SI = cast<StoreInst>(I);
    RTValue P = evalOperand(SI->getPointer(), Fr);
    RTValue V = evalOperand(SI->getStoredValue(), Fr);
    doStore(V, P, I);
    if (!Observers.empty() || SpecLog)
      noteMemAccess(I, P, /*IsWrite=*/true, &V);
    break;
  }
  case Value::ValueKind::GEP: {
    const auto *GI = cast<GEPInst>(I);
    RTValue Base = evalOperand(GI->getBase(), Fr);
    RTValue Idx = evalOperand(GI->getIndex(), Fr);
    Fr.Regs[I] =
        RTValue::ofPtr(Base.Obj, Base.Offset + static_cast<uint64_t>(Idx.I));
    break;
  }
  case Value::ValueKind::Binary: {
    const auto *BI = cast<BinaryInst>(I);
    RTValue L = evalOperand(BI->getLHS(), Fr);
    RTValue R = evalOperand(BI->getRHS(), Fr);
    Fr.Regs[I] = evalBinary(BI, L, R);
    break;
  }
  case Value::ValueKind::Unary: {
    const auto *UI = cast<UnaryInst>(I);
    RTValue V = evalOperand(UI->getOperand(0), Fr);
    if (UI->getUnOp() == UnaryInst::UnOp::Neg)
      Fr.Regs[I] = V.Kind == RTValue::RTKind::Float ? RTValue::ofFloat(-V.F)
                                                    : RTValue::ofInt(-V.I);
    else
      Fr.Regs[I] = RTValue::ofInt(V.I == 0 ? 1 : 0);
    break;
  }
  case Value::ValueKind::Cmp: {
    const auto *CI = cast<CmpInst>(I);
    RTValue L = evalOperand(CI->getLHS(), Fr);
    RTValue R = evalOperand(CI->getRHS(), Fr);
    Fr.Regs[I] = RTValue::ofInt(evalCmp(CI, L, R) ? 1 : 0);
    break;
  }
  case Value::ValueKind::Cast: {
    const auto *CI = cast<CastInst>(I);
    RTValue V = evalOperand(CI->getOperand(0), Fr);
    Fr.Regs[I] = CI->getCastOp() == CastInst::CastOp::IntToFloat
                     ? RTValue::ofFloat(static_cast<double>(V.I))
                     : RTValue::ofInt(static_cast<int64_t>(V.F));
    break;
  }
  case Value::ValueKind::Br:
    Next = cast<BranchInst>(I)->getTarget();
    break;
  case Value::ValueKind::CondBr: {
    const auto *CB = cast<CondBranchInst>(I);
    RTValue C = evalOperand(CB->getCondition(), Fr);
    Next = C.I != 0 ? CB->getTrueTarget() : CB->getFalseTarget();
    break;
  }
  case Value::ValueKind::Ret: {
    const auto *RI = cast<ReturnInst>(I);
    if (RI->hasReturnValue())
      Ret = evalOperand(RI->getReturnValue(), Fr);
    Returned = true;
    break;
  }
  case Value::ValueKind::Call: {
    const auto *CI = cast<CallInst>(I);
    std::vector<RTValue> CallArgs;
    for (unsigned A = 0; A < CI->getNumArgs(); ++A)
      CallArgs.push_back(evalOperand(CI->getArg(A), Fr));
    const Function *Callee = CI->getCallee();
    RTValue R = Callee->isDeclaration()
                    ? callIntrinsic(*CI, CallArgs)
                    : callFunction(*Callee, std::move(CallArgs));
    if (!CI->getType()->isVoid())
      Fr.Regs[I] = R;
    break;
  }
  default:
    psc_unreachable("unhandled instruction in interpreter");
  }
  return !S.aborted();
}

RTValue ExecContext::callFunction(const Function &F,
                                  std::vector<RTValue> Args) {
  for (ExecutionObserver *O : Observers)
    O->onEnterFunction(F);

  Frame Fr;
  Fr.F = &F;
  for (unsigned A = 0; A < F.getNumArgs(); ++A)
    Fr.Regs[F.getArg(A)] = Args[A];

  RTValue Ret;
  bool Returned = false;
  const BasicBlock *Block = F.getEntryBlock();
  const BasicBlock *Prev = nullptr;

  while (Block && !S.aborted()) {
    if (Hook) {
      const BasicBlock *Cont = Hook(*this, Fr, Prev, Block);
      if (S.aborted())
        break;
      if (Cont) {
        Prev = Block;
        Block = Cont;
        continue;
      }
    }
    for (ExecutionObserver *O : Observers)
      O->onBlockTransfer(F, Prev, Block);
    Prev = Block;
    const BasicBlock *Next = nullptr;

    for (const Instruction *I : *Block) {
      if (!execInst(Fr, I, Next, Ret, Returned))
        return Ret;
      for (ExecutionObserver *O : Observers)
        O->onInstruction(*I);
      if (Returned) {
        for (ExecutionObserver *O : Observers)
          O->onExitFunction(F);
        return Ret;
      }
    }
    Block = Next;
  }
  for (ExecutionObserver *O : Observers)
    O->onExitFunction(F);
  return Ret;
}

const BasicBlock *ExecContext::execWithin(Frame &Fr,
                                          const std::set<unsigned> &LoopBlocks,
                                          unsigned HeaderIdx,
                                          const BasicBlock *Start) {
  const BasicBlock *Block = Start;
  RTValue Ret;
  bool Returned = false;
  while (Block && !S.aborted()) {
    if (Block->getIndex() == HeaderIdx ||
        LoopBlocks.count(Block->getIndex()) == 0)
      return Block;
    const BasicBlock *Next = nullptr;
    for (const Instruction *I : *Block) {
      if (!execInst(Fr, I, Next, Ret, Returned))
        return nullptr;
      if (Returned)
        return nullptr; // validated parallel loops contain no return
    }
    Block = Next;
  }
  return nullptr;
}

RTValue psc::evalBinaryOp(bool IsFloat, BinaryInst::BinOp Op, const RTValue &L,
                          const RTValue &R) {
  using O = BinaryInst::BinOp;
  if (IsFloat) {
    double A = L.F, B = R.F;
    switch (Op) {
    case O::Add:
      return RTValue::ofFloat(A + B);
    case O::Sub:
      return RTValue::ofFloat(A - B);
    case O::Mul:
      return RTValue::ofFloat(A * B);
    case O::Div:
      return RTValue::ofFloat(fltDiv(A, B));
    default:
      psc_unreachable("invalid float binop");
    }
  }
  int64_t A = L.I, B = R.I;
  switch (Op) {
  case O::Add:
    return RTValue::ofInt(A + B);
  case O::Sub:
    return RTValue::ofInt(A - B);
  case O::Mul:
    return RTValue::ofInt(A * B);
  case O::Div:
    return RTValue::ofInt(intDiv(A, B));
  case O::Rem:
    return RTValue::ofInt(intRem(A, B));
  case O::And:
    return RTValue::ofInt(A & B);
  case O::Or:
    return RTValue::ofInt(A | B);
  case O::Xor:
    return RTValue::ofInt(A ^ B);
  case O::Shl:
    return RTValue::ofInt(intShl(A, B));
  case O::Shr:
    return RTValue::ofInt(intShr(A, B));
  }
  psc_unreachable("invalid int binop");
}

bool psc::evalCmpInt(CmpInst::Predicate P, int64_t A, int64_t B) {
  using Pr = CmpInst::Predicate;
  switch (P) {
  case Pr::EQ:
    return A == B;
  case Pr::NE:
    return A != B;
  case Pr::LT:
    return A < B;
  case Pr::LE:
    return A <= B;
  case Pr::GT:
    return A > B;
  case Pr::GE:
    return A >= B;
  }
  psc_unreachable("invalid predicate");
}

bool psc::evalCmpFloat(CmpInst::Predicate P, double A, double B) {
  using Pr = CmpInst::Predicate;
  switch (P) {
  case Pr::EQ:
    return A == B;
  case Pr::NE:
    return A != B;
  case Pr::LT:
    return A < B;
  case Pr::LE:
    return A <= B;
  case Pr::GT:
    return A > B;
  case Pr::GE:
    return A >= B;
  }
  psc_unreachable("invalid predicate");
}

bool psc::evalCmpOp(CmpInst::Predicate P, const RTValue &L, const RTValue &R) {
  if (L.Kind == RTValue::RTKind::Float || R.Kind == RTValue::RTKind::Float)
    return evalCmpFloat(
        P, L.Kind == RTValue::RTKind::Float ? L.F : static_cast<double>(L.I),
        R.Kind == RTValue::RTKind::Float ? R.F : static_cast<double>(R.I));
  return evalCmpInt(P, L.I, R.I);
}

RTValue ExecContext::evalBinary(const BinaryInst *BI, const RTValue &L,
                                const RTValue &R) {
  return evalBinaryOp(BI->getType()->isFloat(), BI->getBinOp(), L, R);
}

bool ExecContext::evalCmp(const CmpInst *CI, const RTValue &L,
                          const RTValue &R) {
  return evalCmpOp(CI->getPredicate(), L, R);
}
