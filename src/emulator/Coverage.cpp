//===- Coverage.cpp -------------------------------------------*- C++ -*-===//

#include "emulator/Coverage.h"

using namespace psc;

void CoverageProfiler::onEnterFunction(const Function &F) {
  Activation A;
  A.F = &F;
  A.LI = &MA.of(F).loopInfo();
  Activations.push_back(std::move(A));
}

void CoverageProfiler::onExitFunction(const Function &) {
  if (!Activations.empty())
    Activations.pop_back();
}

void CoverageProfiler::onBlockTransfer(const Function &,
                                       const BasicBlock *,
                                       const BasicBlock *To) {
  if (Activations.empty())
    return;
  Activation &A = Activations.back();
  const Loop *ToLoop = A.LI->getLoopFor(To->getIndex());

  // Pop loops that do not contain the destination.
  while (!A.Stack.empty() &&
         (!ToLoop || !A.Stack.back()->contains(To->getIndex())))
    A.Stack.pop_back();

  // Push newly-entered loops (outermost first).
  std::vector<const Loop *> Chain;
  for (const Loop *L = ToLoop; L; L = L->getParent()) {
    bool OnStack = false;
    for (const Loop *S : A.Stack)
      if (S == L)
        OnStack = true;
    if (!OnStack)
      Chain.push_back(L);
  }
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It)
    A.Stack.push_back(*It);
}

void CoverageProfiler::onInstruction(const Instruction &) {
  ++Total;
  if (Activations.empty())
    return;
  Activation &A = Activations.back();
  for (const Loop *L : A.Stack)
    ++Counts[{A.F->getName(), L->getHeader()}];
}

CoverageMap CoverageProfiler::coverage() const {
  CoverageMap Out;
  if (Total == 0)
    return Out;
  for (auto &[Key, N] : Counts)
    Out[Key] = static_cast<double>(N) / static_cast<double>(Total);
  return Out;
}
