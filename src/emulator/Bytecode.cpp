//===- Bytecode.cpp - Decode pass + bytecode execution engine ---*- C++ -*-===//
///
/// The decoder lowers each Function once; the engine is a tight switch
/// dispatch over the decoded stream. Every dynamic semantic here must match
/// ExecContext (the tree-walking golden reference) bit for bit — including
/// the div/rem-by-zero results, shift masking, float promotion rules, LCG
/// constants, and print formatting. The differential suite enforces this.
///
//===----------------------------------------------------------------------===//

#include "emulator/Bytecode.h"

#include "support/ErrorHandling.h"

#include <cmath>
#include <sstream>
#include <thread>

using namespace psc;

const char *psc::execEngineName(ExecEngineKind K) {
  return K == ExecEngineKind::Walker ? "walker" : "bytecode";
}

// --- Decode-time constant evaluation ----------------------------------------
//
// Constant folding uses the shared scalar semantics of ExecCore.h
// (evalBinaryOp/evalCmpOp — the same functions the walker dispatches
// through), applied at decode time to instructions whose operands are all
// constants. The folded instruction still occupies one PC (a ConstI/ConstF
// slot write), so the dynamic instruction count is unchanged.

namespace {

RTValue rtOf(const BCOperand &O) {
  return O.Kind == BCOperand::K::ImmF ? RTValue::ofFloat(O.F)
                                      : RTValue::ofInt(O.I);
}

bool isImm(const BCOperand &O) {
  return O.Kind == BCOperand::K::ImmI || O.Kind == BCOperand::K::ImmF;
}

BCOperand immOf(const RTValue &V) {
  return V.Kind == RTValue::RTKind::Float ? BCOperand::immF(V.F)
                                          : BCOperand::immI(V.I);
}

BCIntr intrinsicId(const std::string &Name) {
  if (Name == intrinsics::RegionEnd)
    return BCIntr::RegionEnd;
  if (Name == intrinsics::BarrierMarker || Name == intrinsics::TaskWaitMarker)
    return BCIntr::Marker;
  if (Name == intrinsics::Print)
    return BCIntr::Print;
  if (Name == intrinsics::PrintF)
    return BCIntr::PrintF;
  if (Name == intrinsics::Sqrt)
    return BCIntr::Sqrt;
  if (Name == intrinsics::Fabs)
    return BCIntr::Fabs;
  if (Name == intrinsics::Sin)
    return BCIntr::Sin;
  if (Name == intrinsics::Cos)
    return BCIntr::Cos;
  if (Name == intrinsics::Exp)
    return BCIntr::Exp;
  if (Name == intrinsics::Log)
    return BCIntr::Log;
  if (Name == intrinsics::Pow)
    return BCIntr::Pow;
  if (Name == intrinsics::IMin)
    return BCIntr::IMin;
  if (Name == intrinsics::IMax)
    return BCIntr::IMax;
  if (Name == intrinsics::FMin)
    return BCIntr::FMin;
  if (Name == intrinsics::FMax)
    return BCIntr::FMax;
  if (Name == intrinsics::Lcg)
    return BCIntr::Lcg;
  reportFatalError("unknown intrinsic '" + Name + "' at decode time");
}

} // namespace

// --- BytecodeModule ----------------------------------------------------------

BytecodeModule::BytecodeModule(const Module &M) : M(M) {
  NumGlobals = static_cast<unsigned>(M.globals().size());
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      Decoded[F.get()] = std::make_unique<BCFunction>();
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      decodeFunction(*F, *Decoded[F.get()]);
}

void BytecodeModule::decodeFunction(const Function &F, BCFunction &BF) const {
  BF.F = &F;
  BF.EntryBlock = F.getEntryBlock()->getIndex();

  // Slot assignment: arguments first, then value-producing instructions in
  // program order. Allocas get indices in the flat per-frame alloca table.
  for (unsigned A = 0; A < F.getNumArgs(); ++A) {
    BF.SlotIdx[F.getArg(A)] = BF.NumSlots;
    BF.ArgSlots.push_back(BF.NumSlots++);
  }
  BF.BlockPC.assign(F.getNumBlocks(), 0);
  std::vector<uint32_t> BlockEnd(F.getNumBlocks(), 0);
  uint32_t PC = 0;
  for (const BasicBlock *BB : F) {
    BF.BlockPC[BB->getIndex()] = PC;
    for (const Instruction *I : *BB) {
      BF.InstPC[I] = PC++;
      if (isa<AllocaInst>(I))
        BF.AllocaIdx[I] = BF.NumAllocas++;
      else if (!I->getType()->isVoid())
        BF.SlotIdx[I] = BF.NumSlots++;
    }
    BlockEnd[BB->getIndex()] = PC;
  }
  BF.Code.reserve(PC);

  // Operand resolution. Results of decode-time-folded instructions become
  // immediates at their uses (the fold propagates through chains).
  std::unordered_map<const Value *, BCOperand> Folded;
  auto Resolve = [&](const Value *V) -> BCOperand {
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return BCOperand::immI(CI->getValue());
    if (const auto *CF = dyn_cast<ConstantFloat>(V))
      return BCOperand::immF(CF->getValue());
    if (const auto *GV = dyn_cast<GlobalVariable>(V))
      return BCOperand::global(GV->getGlobalIndex());
    if (isa<AllocaInst>(V))
      return BCOperand::allocaOp(BF.AllocaIdx.at(V));
    auto Fo = Folded.find(V);
    if (Fo != Folded.end())
      return Fo->second;
    return BCOperand::slot(BF.SlotIdx.at(V), V->getType()->isFloat());
  };
  auto EmitConst = [&](const Instruction *I, const RTValue &V) {
    BCInst D;
    D.Op = V.Kind == RTValue::RTKind::Float ? BCOp::ConstF : BCOp::ConstI;
    D.Dest = BF.SlotIdx.at(I);
    D.A = immOf(V);
    D.Src = I;
    Folded[I] = D.A;
    BF.Code.push_back(D);
  };

  for (const BasicBlock *BB : F) {
    for (const Instruction *I : *BB) {
      BCInst D;
      D.Src = I;
      switch (I->getKind()) {
      case Value::ValueKind::Alloca: {
        const auto *AI = cast<AllocaInst>(I);
        D.Op = BCOp::Alloca;
        D.Dest = BF.AllocaIdx.at(AI);
        D.AllocTy = AI->getAllocatedType();
        break;
      }
      case Value::ValueKind::Load: {
        const auto *LI = cast<LoadInst>(I);
        D.Op = LI->getType()->isFloat() ? BCOp::LoadF : BCOp::LoadI;
        D.Dest = BF.SlotIdx.at(I);
        D.A = Resolve(LI->getPointer());
        break;
      }
      case Value::ValueKind::Store: {
        const auto *SI = cast<StoreInst>(I);
        D.Op = BCOp::Store;
        D.A = Resolve(SI->getStoredValue());
        D.B = Resolve(SI->getPointer());
        break;
      }
      case Value::ValueKind::GEP: {
        const auto *GI = cast<GEPInst>(I);
        D.Op = BCOp::GEP;
        D.Dest = BF.SlotIdx.at(I);
        D.A = Resolve(GI->getBase());
        D.B = Resolve(GI->getIndex());
        break;
      }
      case Value::ValueKind::Binary: {
        const auto *BI = cast<BinaryInst>(I);
        D.A = Resolve(BI->getLHS());
        D.B = Resolve(BI->getRHS());
        if (isImm(D.A) && isImm(D.B)) {
          EmitConst(I, evalBinaryOp(BI->getType()->isFloat(), BI->getBinOp(),
                                    rtOf(D.A), rtOf(D.B)));
          continue;
        }
        using Op = BinaryInst::BinOp;
        if (BI->getType()->isFloat()) {
          switch (BI->getBinOp()) {
          case Op::Add:
            D.Op = BCOp::AddF;
            break;
          case Op::Sub:
            D.Op = BCOp::SubF;
            break;
          case Op::Mul:
            D.Op = BCOp::MulF;
            break;
          case Op::Div:
            D.Op = BCOp::DivF;
            break;
          default:
            psc_unreachable("invalid float binop");
          }
        } else {
          switch (BI->getBinOp()) {
          case Op::Add:
            D.Op = BCOp::AddI;
            break;
          case Op::Sub:
            D.Op = BCOp::SubI;
            break;
          case Op::Mul:
            D.Op = BCOp::MulI;
            break;
          case Op::Div:
            D.Op = BCOp::DivI;
            break;
          case Op::Rem:
            D.Op = BCOp::RemI;
            break;
          case Op::And:
            D.Op = BCOp::AndI;
            break;
          case Op::Or:
            D.Op = BCOp::OrI;
            break;
          case Op::Xor:
            D.Op = BCOp::XorI;
            break;
          case Op::Shl:
            D.Op = BCOp::ShlI;
            break;
          case Op::Shr:
            D.Op = BCOp::ShrI;
            break;
          }
        }
        D.Dest = BF.SlotIdx.at(I);
        break;
      }
      case Value::ValueKind::Unary: {
        const auto *UI = cast<UnaryInst>(I);
        D.A = Resolve(UI->getOperand(0));
        if (isImm(D.A)) {
          RTValue V = rtOf(D.A);
          RTValue R;
          if (UI->getUnOp() == UnaryInst::UnOp::Neg)
            R = V.Kind == RTValue::RTKind::Float ? RTValue::ofFloat(-V.F)
                                                 : RTValue::ofInt(-V.I);
          else
            R = RTValue::ofInt(V.I == 0 ? 1 : 0);
          EmitConst(I, R);
          continue;
        }
        if (UI->getUnOp() == UnaryInst::UnOp::Neg)
          D.Op = D.A.IsFloat ? BCOp::NegF : BCOp::NegI;
        else
          D.Op = BCOp::NotI;
        D.Dest = BF.SlotIdx.at(I);
        break;
      }
      case Value::ValueKind::Cmp: {
        const auto *CI = cast<CmpInst>(I);
        D.A = Resolve(CI->getLHS());
        D.B = Resolve(CI->getRHS());
        if (isImm(D.A) && isImm(D.B)) {
          EmitConst(I, RTValue::ofInt(
                           evalCmpOp(CI->getPredicate(), rtOf(D.A),
                                     rtOf(D.B))
                               ? 1
                               : 0));
          continue;
        }
        bool AnyFloat = D.A.IsFloat || D.B.IsFloat;
        D.Op = AnyFloat ? BCOp::CmpF : BCOp::CmpI;
        D.Sub = static_cast<uint8_t>(CI->getPredicate());
        D.Dest = BF.SlotIdx.at(I);
        break;
      }
      case Value::ValueKind::Cast: {
        const auto *CI = cast<CastInst>(I);
        D.A = Resolve(CI->getOperand(0));
        bool ToFloat = CI->getCastOp() == CastInst::CastOp::IntToFloat;
        if (isImm(D.A)) {
          RTValue V = rtOf(D.A);
          EmitConst(I, ToFloat
                           ? RTValue::ofFloat(static_cast<double>(V.I))
                           : RTValue::ofInt(static_cast<int64_t>(V.F)));
          continue;
        }
        D.Op = ToFloat ? BCOp::CastIF : BCOp::CastFI;
        D.Dest = BF.SlotIdx.at(I);
        break;
      }
      case Value::ValueKind::Br: {
        const auto *BI = cast<BranchInst>(I);
        D.Op = BCOp::Br;
        D.TBlock0 = BI->getTarget()->getIndex();
        D.Target0 = BF.BlockPC[D.TBlock0];
        break;
      }
      case Value::ValueKind::CondBr: {
        const auto *CB = cast<CondBranchInst>(I);
        D.Op = BCOp::CondBr;
        D.A = Resolve(CB->getCondition());
        D.TBlock0 = CB->getTrueTarget()->getIndex();
        D.TBlock1 = CB->getFalseTarget()->getIndex();
        D.Target0 = BF.BlockPC[D.TBlock0];
        D.Target1 = BF.BlockPC[D.TBlock1];
        break;
      }
      case Value::ValueKind::Ret: {
        const auto *RI = cast<ReturnInst>(I);
        D.Op = BCOp::Ret;
        if (RI->hasReturnValue()) {
          D.Sub = 1;
          D.A = Resolve(RI->getReturnValue());
        }
        break;
      }
      case Value::ValueKind::Call: {
        const auto *CI = cast<CallInst>(I);
        D.ArgsBegin = static_cast<uint32_t>(BF.ExtraOps.size());
        D.ArgsCount = CI->getNumArgs();
        for (unsigned A = 0; A < CI->getNumArgs(); ++A)
          BF.ExtraOps.push_back(Resolve(CI->getArg(A)));
        const Function *Callee = CI->getCallee();
        if (Callee->isDeclaration()) {
          D.Op = BCOp::Intr;
          const std::string &Name = Callee->getName();
          if (Name == intrinsics::RegionBegin) {
            const BCOperand &Id = BF.ExtraOps[D.ArgsBegin];
            if (Id.Kind == BCOperand::K::ImmI) {
              const Directive *Dir = M.getParallelInfo().getDirective(
                  static_cast<unsigned>(Id.I));
              bool Lock = Dir && (Dir->Kind == DirectiveKind::Critical ||
                                  Dir->Kind == DirectiveKind::Atomic);
              D.Sub = static_cast<uint8_t>(Lock ? BCIntr::RegionBeginLock
                                                : BCIntr::RegionBeginNoLock);
            } else {
              D.Sub = static_cast<uint8_t>(BCIntr::RegionBeginDyn);
            }
          } else {
            D.Sub = static_cast<uint8_t>(intrinsicId(Name));
          }
        } else {
          D.Op = BCOp::Call;
          D.Callee = forFunction(Callee);
        }
        if (!CI->getType()->isVoid())
          D.Dest = BF.SlotIdx.at(I);
        break;
      }
      default:
        psc_unreachable("unhandled instruction in bytecode decoder");
      }
      BF.Code.push_back(D);
    }
  }

  // Superinstruction fusion post-pass (DESIGN.md §11): flag the first
  // instruction of a hot producer/consumer pair with a fused dispatch code.
  // Legality: the pair is adjacent within one block (branch targets are
  // always block starts, so the second instruction is reached only by
  // fall-through from the first) and the consumer reads the producer's
  // result slot. The fused handler still writes the producer's slot and
  // charges both sub-instructions separately, so execution is bit-identical
  // to the unfused pair.
  for (BCInst &D : BF.Code)
    D.Disp = static_cast<uint8_t>(D.Op);
  auto UsesSlot = [](const BCOperand &O, uint32_t Slot) {
    return O.Kind == BCOperand::K::Slot && O.Index == Slot;
  };
  for (const BasicBlock *BB : F) {
    uint32_t Begin = BF.BlockPC[BB->getIndex()];
    uint32_t End = BlockEnd[BB->getIndex()];
    for (uint32_t P = Begin; P + 1 < End; ++P) {
      BCInst &I = BF.Code[P];
      const BCInst &J = BF.Code[P + 1];
      if (I.Dest == BCInst::NoSlot)
        continue;
      if (J.Op == BCOp::CondBr && UsesSlot(J.A, I.Dest)) {
        if (I.Op == BCOp::CmpI)
          I.Disp = bcdisp::CmpIBr;
        else if (I.Op == BCOp::CmpF)
          I.Disp = bcdisp::CmpFBr;
      } else if (I.Op == BCOp::GEP) {
        if (J.Op == BCOp::LoadI && UsesSlot(J.A, I.Dest))
          I.Disp = bcdisp::GepLoadI;
        else if (J.Op == BCOp::LoadF && UsesSlot(J.A, I.Dest))
          I.Disp = bcdisp::GepLoadF;
        else if (J.Op == BCOp::Store && UsesSlot(J.B, I.Dest) &&
                 !UsesSlot(J.A, I.Dest))
          I.Disp = bcdisp::GepStore;
      } else if (J.Op == BCOp::Store && UsesSlot(J.A, I.Dest)) {
        if (I.Op == BCOp::AddI)
          I.Disp = bcdisp::AddIStore;
        else if (I.Op == BCOp::AddF)
          I.Disp = bcdisp::AddFStore;
        else if (I.Op == BCOp::SubF)
          I.Disp = bcdisp::SubFStore;
        else if (I.Op == BCOp::MulF)
          I.Disp = bcdisp::MulFStore;
      }
    }
  }
}

// --- BCContext: operand access ----------------------------------------------

namespace {

/// Integer read of an operand: slot or immediate. Mirrors the walker's
/// blind .I member read (a float value reads as its zero-initialized I).
inline int64_t getI(const BCOperand &O, const BCFrame &Fr) {
  return O.Kind == BCOperand::K::Slot ? Fr.Regs[O.Index].I : O.I;
}

/// Float read of an operand (blind .F member read, as the walker does).
inline double getF(const BCOperand &O, const BCFrame &Fr) {
  return O.Kind == BCOperand::K::Slot ? Fr.Regs[O.Index].F : O.F;
}

/// Promoting read for float compares: ints widen to double exactly like
/// the walker's runtime-kind promotion (static types equal runtime kinds).
inline double getFProm(const BCOperand &O, const BCFrame &Fr) {
  if (O.Kind == BCOperand::K::Slot) {
    const RTValue &V = Fr.Regs[O.Index];
    return O.IsFloat ? V.F : static_cast<double>(V.I);
  }
  return O.Kind == BCOperand::K::ImmF ? O.F : static_cast<double>(O.I);
}

} // namespace

RTValue BCContext::fetch(const BCOperand &O, BCFrame &Fr) {
  switch (O.Kind) {
  case BCOperand::K::Slot:
    return Fr.Regs[O.Index];
  case BCOperand::K::ImmI:
    return RTValue::ofInt(O.I);
  case BCOperand::K::ImmF:
    return RTValue::ofFloat(O.F);
  case BCOperand::K::Global:
    return RTValue::ofPtr(globalObject(O.Index), 0);
  case BCOperand::K::Alloca:
    return RTValue::ofPtr(Fr.Allocas[O.Index], 0);
  }
  psc_unreachable("unhandled operand kind");
}

// --- BCContext: memory ------------------------------------------------------

RTValue BCContext::doLoad(const RTValue &P, bool WantFloat) {
  if (P.Offset >= P.Obj->size())
    reportFatalError("out-of-bounds load at offset " +
                     std::to_string(P.Offset));
  bool ObjFloat = P.Obj->IsFloat;
  int64_t RawI = 0;
  double RawF = 0.0;
  bool FromShadow = Shadow && !Shadow->isBypassed(P.Obj) &&
                    Shadow->load(P.Obj, P.Offset, ObjFloat, RawI, RawF);
  if (!FromShadow) {
    if (ObjFloat)
      RawF = P.Obj->F[P.Offset];
    else
      RawI = P.Obj->I[P.Offset];
  }
  if (WantFloat)
    return RTValue::ofFloat(ObjFloat ? RawF : static_cast<double>(RawI));
  return RTValue::ofInt(ObjFloat ? static_cast<int64_t>(RawF) : RawI);
}

void BCContext::doStore(const RTValue &V, const RTValue &P, bool OwnedStore,
                        unsigned Num) {
  if (P.Offset >= P.Obj->size())
    reportFatalError("out-of-bounds store at offset " +
                     std::to_string(P.Offset));
  int64_t RawI =
      V.Kind == RTValue::RTKind::Float ? static_cast<int64_t>(V.F) : V.I;
  double RawF =
      V.Kind == RTValue::RTKind::Float ? V.F : static_cast<double>(V.I);
  if (Shadow && !Shadow->isBypassed(P.Obj)) {
    Shadow->store(P.Obj, P.Offset, RawI, RawF, OwnedStore, CurIteration, Num);
    return;
  }
  if (!OwnedStore)
    return;
  if (P.Obj->IsFloat)
    P.Obj->F[P.Offset] = RawF;
  else
    P.Obj->I[P.Offset] = RawI;
}

void BCContext::noteMemAccess(const BCFunction &F, uint32_t PC,
                              const RTValue &P, bool IsWrite,
                              const RTValue *Stored) {
  if (!Observers.empty()) {
    const Instruction *I = F.code()[PC].Src;
    for (ExecutionObserver *O : Observers)
      O->onMemAccess(*I, *P.Obj, P.Offset, IsWrite);
  }
  if (!SpecLog || (Owned && !(CommitFn == &F && (*Owned)[PC] != 0)))
    return;
  uint32_t Watch = 0, VWatch = 0, GWatch = 0;
  bool HasWatch = false;
  if (SpecWatch && SpecFn == &F) {
    uint32_t W = (*SpecWatch)[PC];
    if (W != 0) {
      Watch = W - 1;
      HasWatch = true;
    }
  }
  if (ValueWatch && ValueFn == &F)
    VWatch = (*ValueWatch)[PC];
  if (GuardWatch && ValueFn == &F)
    GWatch = (*GuardWatch)[PC];
  if (!HasWatch && !VWatch && !GWatch)
    return;
  SpecAccessRec R;
  R.Obj = P.Obj;
  R.Off = P.Offset;
  R.Iter = CurIteration;
  R.Watch = Watch;
  R.IsWrite = IsWrite;
  R.HasWatch = HasWatch;
  R.VWatch = VWatch;
  R.GWatch = GWatch;
  if (Stored) {
    // Fill only the matching lane: the value checks compare by the
    // storage's element type, and casting an out-of-range double to
    // int64 would be UB for nothing.
    if (Stored->Kind == RTValue::RTKind::Float)
      R.ValF = Stored->F;
    else {
      R.ValI = Stored->I;
      R.ValF = static_cast<double>(Stored->I);
    }
  }
  SpecLog->push_back(R);
}

void BCContext::emitOutput(std::string Line) {
  if (LocalOutput)
    LocalOutput->push_back(std::move(Line));
  else
    S.appendOutput(std::move(Line));
}

// --- BCContext: intrinsics --------------------------------------------------

RTValue BCContext::callIntrinsic(const BCFunction &F, const BCInst &I,
                                 BCFrame &Fr, uint32_t PC) {
  const BCOperand *Args = F.extraOps().data() + I.ArgsBegin;
  auto Owns = [&]() {
    return !Owned || (CommitFn == &F && (*Owned)[PC] != 0);
  };
  switch (static_cast<BCIntr>(I.Sub)) {
  case BCIntr::RegionBeginLock:
    S.regionLock().lock();
    RegionStack.push_back({static_cast<unsigned>(Args[0].I), true});
    return RTValue();
  case BCIntr::RegionBeginNoLock:
    RegionStack.push_back({static_cast<unsigned>(Args[0].I), false});
    return RTValue();
  case BCIntr::RegionBeginDyn: {
    unsigned Id = static_cast<unsigned>(getI(Args[0], Fr));
    const Directive *D = S.module().getParallelInfo().getDirective(Id);
    bool Lock = D && (D->Kind == DirectiveKind::Critical ||
                      D->Kind == DirectiveKind::Atomic);
    if (Lock)
      S.regionLock().lock();
    RegionStack.push_back({Id, Lock});
    return RTValue();
  }
  case BCIntr::RegionEnd:
    if (!RegionStack.empty()) {
      if (RegionStack.back().second)
        S.regionLock().unlock();
      RegionStack.pop_back();
    }
    return RTValue();
  case BCIntr::Marker:
    return RTValue();
  case BCIntr::Print:
    if (Owns())
      emitOutput(std::to_string(getI(Args[0], Fr)));
    return RTValue();
  case BCIntr::PrintF:
    if (Owns()) {
      std::ostringstream OS;
      OS << getF(Args[0], Fr);
      emitOutput(OS.str());
    }
    return RTValue();
  case BCIntr::Sqrt:
    return RTValue::ofFloat(std::sqrt(getF(Args[0], Fr)));
  case BCIntr::Fabs:
    return RTValue::ofFloat(std::fabs(getF(Args[0], Fr)));
  case BCIntr::Sin:
    return RTValue::ofFloat(std::sin(getF(Args[0], Fr)));
  case BCIntr::Cos:
    return RTValue::ofFloat(std::cos(getF(Args[0], Fr)));
  case BCIntr::Exp:
    return RTValue::ofFloat(std::exp(getF(Args[0], Fr)));
  case BCIntr::Log:
    return RTValue::ofFloat(std::log(getF(Args[0], Fr)));
  case BCIntr::Pow:
    return RTValue::ofFloat(std::pow(getF(Args[0], Fr), getF(Args[1], Fr)));
  case BCIntr::IMin:
    return RTValue::ofInt(std::min(getI(Args[0], Fr), getI(Args[1], Fr)));
  case BCIntr::IMax:
    return RTValue::ofInt(std::max(getI(Args[0], Fr), getI(Args[1], Fr)));
  case BCIntr::FMin:
    return RTValue::ofFloat(std::min(getF(Args[0], Fr), getF(Args[1], Fr)));
  case BCIntr::FMax:
    return RTValue::ofFloat(std::max(getF(Args[0], Fr), getF(Args[1], Fr)));
  case BCIntr::Lcg: {
    // 48-bit linear congruential step (deterministic pseudo-random).
    uint64_t X = static_cast<uint64_t>(getI(Args[0], Fr));
    X = (X * 25214903917ULL + 11ULL) & ((1ULL << 48) - 1);
    return RTValue::ofInt(static_cast<int64_t>(X));
  }
  }
  psc_unreachable("unhandled intrinsic id");
}

// --- BCContext: dispatch -----------------------------------------------------

void BCContext::gateWait(uint32_t PC) {
  (void)PC;
  while (Gate->Turn->load(std::memory_order_acquire) != Gate->MyIter) {
    if (S.aborted())
      return;
    std::this_thread::yield();
  }
  Gate->Held = true;
}

BCContext::ExecRes BCContext::execOne(const BCFunction &F, BCFrame &Fr,
                                      uint32_t PC, unsigned &NextBlock,
                                      uint32_t &NextPC, RTValue &Ret) {
  ++PendingCharges;
  if (LocalMode ? PendingCharges > LocalLimit : PendingCharges >= ChargeBatch) {
    uint64_t N = PendingCharges;
    PendingCharges = 0;
    if (!S.charge(N))
      return ExecRes::Abort;
  }
  if (Gate) {
    if (!Gate->Held && Gate->TablesFor == &F && (*Gate->SeqAtPC)[PC] != 0)
      gateWait(PC);
    if (S.aborted())
      return ExecRes::Abort;
  }
  const BCInst &I = F.code()[PC];
  ExecRes Res = ExecRes::Fall;
  switch (I.Op) {
  case BCOp::ConstI:
    Fr.Regs[I.Dest] = RTValue::ofInt(I.A.I);
    break;
  case BCOp::ConstF:
    Fr.Regs[I.Dest] = RTValue::ofFloat(I.A.F);
    break;
  case BCOp::Alloca:
    Fr.Allocas[I.Dest] = Fr.createObject(I.AllocTy);
    break;
  case BCOp::LoadI: {
    RTValue P = fetch(I.A, Fr);
    Fr.Regs[I.Dest] = doLoad(P, false);
    if (!Observers.empty() || SpecLog)
      noteMemAccess(F, PC, P, /*IsWrite=*/false);
    break;
  }
  case BCOp::LoadF: {
    RTValue P = fetch(I.A, Fr);
    Fr.Regs[I.Dest] = doLoad(P, true);
    if (!Observers.empty() || SpecLog)
      noteMemAccess(F, PC, P, /*IsWrite=*/false);
    break;
  }
  case BCOp::Store: {
    bool OwnedStore = !Owned || (CommitFn == &F && (*Owned)[PC] != 0);
    unsigned Num =
        Numbering && NumberingFn == &F ? (*Numbering)[PC] : 0;
    RTValue P = fetch(I.B, Fr);
    RTValue V = fetch(I.A, Fr);
    doStore(V, P, OwnedStore, Num);
    if (!Observers.empty() || SpecLog)
      noteMemAccess(F, PC, P, /*IsWrite=*/true, &V);
    break;
  }
  case BCOp::GEP: {
    RTValue Base = fetch(I.A, Fr);
    Fr.Regs[I.Dest] = RTValue::ofPtr(
        Base.Obj, Base.Offset + static_cast<uint64_t>(getI(I.B, Fr)));
    break;
  }
  case BCOp::AddI:
    Fr.Regs[I.Dest] = RTValue::ofInt(getI(I.A, Fr) + getI(I.B, Fr));
    break;
  case BCOp::SubI:
    Fr.Regs[I.Dest] = RTValue::ofInt(getI(I.A, Fr) - getI(I.B, Fr));
    break;
  case BCOp::MulI:
    Fr.Regs[I.Dest] = RTValue::ofInt(getI(I.A, Fr) * getI(I.B, Fr));
    break;
  case BCOp::DivI:
    Fr.Regs[I.Dest] = RTValue::ofInt(intDiv(getI(I.A, Fr), getI(I.B, Fr)));
    break;
  case BCOp::RemI:
    Fr.Regs[I.Dest] = RTValue::ofInt(intRem(getI(I.A, Fr), getI(I.B, Fr)));
    break;
  case BCOp::AndI:
    Fr.Regs[I.Dest] = RTValue::ofInt(getI(I.A, Fr) & getI(I.B, Fr));
    break;
  case BCOp::OrI:
    Fr.Regs[I.Dest] = RTValue::ofInt(getI(I.A, Fr) | getI(I.B, Fr));
    break;
  case BCOp::XorI:
    Fr.Regs[I.Dest] = RTValue::ofInt(getI(I.A, Fr) ^ getI(I.B, Fr));
    break;
  case BCOp::ShlI:
    Fr.Regs[I.Dest] = RTValue::ofInt(intShl(getI(I.A, Fr), getI(I.B, Fr)));
    break;
  case BCOp::ShrI:
    Fr.Regs[I.Dest] = RTValue::ofInt(intShr(getI(I.A, Fr), getI(I.B, Fr)));
    break;
  case BCOp::AddF:
    Fr.Regs[I.Dest] = RTValue::ofFloat(getF(I.A, Fr) + getF(I.B, Fr));
    break;
  case BCOp::SubF:
    Fr.Regs[I.Dest] = RTValue::ofFloat(getF(I.A, Fr) - getF(I.B, Fr));
    break;
  case BCOp::MulF:
    Fr.Regs[I.Dest] = RTValue::ofFloat(getF(I.A, Fr) * getF(I.B, Fr));
    break;
  case BCOp::DivF:
    Fr.Regs[I.Dest] = RTValue::ofFloat(fltDiv(getF(I.A, Fr), getF(I.B, Fr)));
    break;
  case BCOp::NegI:
    Fr.Regs[I.Dest] = RTValue::ofInt(-getI(I.A, Fr));
    break;
  case BCOp::NegF:
    Fr.Regs[I.Dest] = RTValue::ofFloat(-getF(I.A, Fr));
    break;
  case BCOp::NotI:
    Fr.Regs[I.Dest] = RTValue::ofInt(getI(I.A, Fr) == 0 ? 1 : 0);
    break;
  case BCOp::CmpI:
    Fr.Regs[I.Dest] =
        RTValue::ofInt(evalCmpInt(static_cast<CmpInst::Predicate>(I.Sub),
                                  getI(I.A, Fr), getI(I.B, Fr))
                           ? 1
                           : 0);
    break;
  case BCOp::CmpF:
    Fr.Regs[I.Dest] =
        RTValue::ofInt(evalCmpFloat(static_cast<CmpInst::Predicate>(I.Sub),
                                    getFProm(I.A, Fr), getFProm(I.B, Fr))
                           ? 1
                           : 0);
    break;
  case BCOp::CastIF:
    Fr.Regs[I.Dest] =
        RTValue::ofFloat(static_cast<double>(getI(I.A, Fr)));
    break;
  case BCOp::CastFI:
    Fr.Regs[I.Dest] =
        RTValue::ofInt(static_cast<int64_t>(getF(I.A, Fr)));
    break;
  case BCOp::Br:
    NextBlock = I.TBlock0;
    NextPC = I.Target0;
    Res = ExecRes::Jump;
    break;
  case BCOp::CondBr:
    if (getI(I.A, Fr) != 0) {
      NextBlock = I.TBlock0;
      NextPC = I.Target0;
    } else {
      NextBlock = I.TBlock1;
      NextPC = I.Target1;
    }
    Res = ExecRes::Jump;
    break;
  case BCOp::Ret:
    if (I.Sub)
      Ret = fetch(I.A, Fr);
    Res = ExecRes::Returned;
    break;
  case BCOp::Call: {
    std::vector<RTValue> CallArgs;
    CallArgs.reserve(I.ArgsCount);
    const BCOperand *Args = F.extraOps().data() + I.ArgsBegin;
    for (uint32_t A = 0; A < I.ArgsCount; ++A)
      CallArgs.push_back(fetch(Args[A], Fr));
    RTValue R = callFunction(*I.Callee, std::move(CallArgs));
    if (I.Dest != BCInst::NoSlot)
      Fr.Regs[I.Dest] = R;
    break;
  }
  case BCOp::Intr: {
    RTValue R = callIntrinsic(F, I, Fr, PC);
    if (I.Dest != BCInst::NoSlot)
      Fr.Regs[I.Dest] = R;
    break;
  }
  }
  return S.aborted() ? ExecRes::Abort : Res;
}

// --- BCContext: fast dispatch loop -------------------------------------------
//
// The zero-obligation execution path (DESIGN.md §11): when a context has no
// observers, gate, shadow overlay, speculation log, or commit table
// (canFastPath), instructions dispatch through a direct-threaded loop —
// GCC/Clang labels-as-values, with a switch fallback selected where the
// extension is unavailable (or when PSC_NO_COMPUTED_GOTO is defined, the
// build-time lane CI uses to check the two dispatchers stay equivalent).
// Loads and stores skip the per-access overlay/watch checks entirely; the
// decode-time fused pairs (BCInst::Disp) execute as superinstructions.
// Budget-charge cadence is identical to execOne: one charge per
// sub-instruction, checked before it executes, so sequential runs are
// bit-identical to the stepped path (and to the walker). Cross-context
// aborts are detected at charge-flush boundaries and at calls, which only
// batched-charging parallel workers can observe.

#if !defined(PSC_NO_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
#define PSC_DIRECT_THREADED 1
#else
#define PSC_DIRECT_THREADED 0
#endif

#if PSC_DIRECT_THREADED
#define PSC_CASE_B(name) Lbl_##name:
#define PSC_CASE_F(name) Lbl_##name:
#define PSC_DISPATCH()                                                         \
  do {                                                                         \
    if (!ChargeOne())                                                          \
      return FastRes::Abort;                                                   \
    goto *JT[Code[PC].Disp];                                                   \
  } while (0)
#else
#define PSC_CASE_B(name) case static_cast<uint8_t>(BCOp::name):
#define PSC_CASE_F(name) case bcdisp::name:
#define PSC_DISPATCH()                                                         \
  do {                                                                         \
    if (!ChargeOne())                                                          \
      return FastRes::Abort;                                                   \
    goto dispatch;                                                             \
  } while (0)
#endif

// Jump to block TBlk at PC TPc, honoring the mode's stop condition (the
// boundary block is neither executed nor charged, exactly as the stepped
// block loop leaves it to the caller).
#define PSC_JUMP(TBlk, TPc)                                                    \
  do {                                                                         \
    unsigned T_ = (TBlk);                                                      \
    if (Mode == FastMode::HookStops && StopFlag[T_]) {                         \
      Prev = Cur;                                                              \
      Block = T_;                                                              \
      return FastRes::Stopped;                                                 \
    }                                                                          \
    if (Mode == FastMode::LoopBounded &&                                       \
        (T_ == HeaderIdx || (*InLoop)[T_] == 0)) {                             \
      Block = T_;                                                              \
      return FastRes::Stopped;                                                 \
    }                                                                          \
    if (Mode == FastMode::HookStops) {                                         \
      Prev = Cur;                                                              \
      Cur = T_;                                                                \
    }                                                                          \
    PC = (TPc);                                                                \
    PSC_DISPATCH();                                                            \
  } while (0)

template <BCContext::FastMode Mode>
BCContext::FastRes BCContext::fastDispatch(const BCFunction &F, BCFrame &Fr,
                                           unsigned &Block, unsigned &Prev,
                                           RTValue &Ret,
                                           const uint8_t *StopFlag,
                                           const std::vector<uint8_t> *InLoop,
                                           unsigned HeaderIdx) {
  const BCInst *Code = F.code().data();
  uint32_t PC = F.blockPC(Block);
  unsigned Cur = Block;
  (void)Cur;
  (void)StopFlag;
  (void)InLoop;
  (void)HeaderIdx;

  // Identical cadence to execOne's charge preamble: every sub-instruction
  // charges before it executes; LocalMode aborts on exactly the first
  // over-budget instruction.
  auto ChargeOne = [&]() -> bool {
    ++PendingCharges;
    if (LocalMode ? PendingCharges > LocalLimit
                  : PendingCharges >= ChargeBatch) {
      uint64_t N = PendingCharges;
      PendingCharges = 0;
      if (!S.charge(N))
        return false;
      if (S.aborted())
        return false;
    }
    return true;
  };

#if PSC_DIRECT_THREADED
  // Table order must match BCOp, then the bcdisp fused codes.
  static const void *const JT[bcdisp::NumDisp] = {
      &&Lbl_ConstI, &&Lbl_ConstF, &&Lbl_Alloca, &&Lbl_LoadI,  &&Lbl_LoadF,
      &&Lbl_Store,  &&Lbl_GEP,    &&Lbl_AddI,   &&Lbl_SubI,   &&Lbl_MulI,
      &&Lbl_DivI,   &&Lbl_RemI,   &&Lbl_AndI,   &&Lbl_OrI,    &&Lbl_XorI,
      &&Lbl_ShlI,   &&Lbl_ShrI,   &&Lbl_AddF,   &&Lbl_SubF,   &&Lbl_MulF,
      &&Lbl_DivF,   &&Lbl_NegI,   &&Lbl_NegF,   &&Lbl_NotI,   &&Lbl_CmpI,
      &&Lbl_CmpF,   &&Lbl_CastIF, &&Lbl_CastFI, &&Lbl_Br,     &&Lbl_CondBr,
      &&Lbl_Ret,    &&Lbl_Call,   &&Lbl_Intr,   &&Lbl_CmpIBr, &&Lbl_CmpFBr,
      &&Lbl_GepLoadI, &&Lbl_GepLoadF, &&Lbl_GepStore, &&Lbl_AddIStore,
      &&Lbl_AddFStore, &&Lbl_SubFStore, &&Lbl_MulFStore,
  };
#endif

  PSC_DISPATCH();

#if !PSC_DIRECT_THREADED
dispatch:
  switch (Code[PC].Disp) {
#endif

  PSC_CASE_B(ConstI) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofInt(I.A.I);
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(ConstF) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofFloat(I.A.F);
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(Alloca) {
    const BCInst &I = Code[PC];
    Fr.Allocas[I.Dest] = Fr.createObject(I.AllocTy);
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(LoadI) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = doLoad(fetch(I.A, Fr), false);
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(LoadF) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = doLoad(fetch(I.A, Fr), true);
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(Store) {
    const BCInst &I = Code[PC];
    RTValue P = fetch(I.B, Fr);
    RTValue V = fetch(I.A, Fr);
    doStore(V, P, /*OwnedStore=*/true, 0);
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(GEP) {
    const BCInst &I = Code[PC];
    RTValue Base = fetch(I.A, Fr);
    Fr.Regs[I.Dest] = RTValue::ofPtr(
        Base.Obj, Base.Offset + static_cast<uint64_t>(getI(I.B, Fr)));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(AddI) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofInt(getI(I.A, Fr) + getI(I.B, Fr));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(SubI) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofInt(getI(I.A, Fr) - getI(I.B, Fr));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(MulI) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofInt(getI(I.A, Fr) * getI(I.B, Fr));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(DivI) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofInt(intDiv(getI(I.A, Fr), getI(I.B, Fr)));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(RemI) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofInt(intRem(getI(I.A, Fr), getI(I.B, Fr)));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(AndI) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofInt(getI(I.A, Fr) & getI(I.B, Fr));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(OrI) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofInt(getI(I.A, Fr) | getI(I.B, Fr));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(XorI) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofInt(getI(I.A, Fr) ^ getI(I.B, Fr));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(ShlI) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofInt(intShl(getI(I.A, Fr), getI(I.B, Fr)));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(ShrI) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofInt(intShr(getI(I.A, Fr), getI(I.B, Fr)));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(AddF) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofFloat(getF(I.A, Fr) + getF(I.B, Fr));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(SubF) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofFloat(getF(I.A, Fr) - getF(I.B, Fr));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(MulF) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofFloat(getF(I.A, Fr) * getF(I.B, Fr));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(DivF) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofFloat(fltDiv(getF(I.A, Fr), getF(I.B, Fr)));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(NegI) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofInt(-getI(I.A, Fr));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(NegF) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofFloat(-getF(I.A, Fr));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(NotI) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofInt(getI(I.A, Fr) == 0 ? 1 : 0);
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(CmpI) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] =
        RTValue::ofInt(evalCmpInt(static_cast<CmpInst::Predicate>(I.Sub),
                                  getI(I.A, Fr), getI(I.B, Fr))
                           ? 1
                           : 0);
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(CmpF) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] =
        RTValue::ofInt(evalCmpFloat(static_cast<CmpInst::Predicate>(I.Sub),
                                    getFProm(I.A, Fr), getFProm(I.B, Fr))
                           ? 1
                           : 0);
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(CastIF) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofFloat(static_cast<double>(getI(I.A, Fr)));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(CastFI) {
    const BCInst &I = Code[PC];
    Fr.Regs[I.Dest] = RTValue::ofInt(static_cast<int64_t>(getF(I.A, Fr)));
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(Br) {
    const BCInst &I = Code[PC];
    PSC_JUMP(I.TBlock0, I.Target0);
  }
  PSC_CASE_B(CondBr) {
    const BCInst &I = Code[PC];
    if (getI(I.A, Fr) != 0)
      PSC_JUMP(I.TBlock0, I.Target0);
    PSC_JUMP(I.TBlock1, I.Target1);
  }
  PSC_CASE_B(Ret) {
    const BCInst &I = Code[PC];
    if (I.Sub)
      Ret = fetch(I.A, Fr);
    return FastRes::Returned;
  }
  PSC_CASE_B(Call) {
    const BCInst &I = Code[PC];
    std::vector<RTValue> CallArgs;
    CallArgs.reserve(I.ArgsCount);
    const BCOperand *Args = F.extraOps().data() + I.ArgsBegin;
    for (uint32_t A = 0; A < I.ArgsCount; ++A)
      CallArgs.push_back(fetch(Args[A], Fr));
    RTValue R = callFunction(*I.Callee, std::move(CallArgs));
    if (S.aborted())
      return FastRes::Abort;
    if (I.Dest != BCInst::NoSlot)
      Fr.Regs[I.Dest] = R;
    ++PC;
    PSC_DISPATCH();
  }
  PSC_CASE_B(Intr) {
    const BCInst &I = Code[PC];
    RTValue R = callIntrinsic(F, I, Fr, PC);
    if (I.Dest != BCInst::NoSlot)
      Fr.Regs[I.Dest] = R;
    ++PC;
    PSC_DISPATCH();
  }

  // Fused pairs: the producer's result slot is written before the consumer
  // runs, and the consumer charges (and can budget-abort) separately, so
  // the pair is indistinguishable from its unfused execution.
  PSC_CASE_F(CmpIBr) {
    const BCInst &I = Code[PC];
    const BCInst &J = Code[PC + 1];
    bool C = evalCmpInt(static_cast<CmpInst::Predicate>(I.Sub), getI(I.A, Fr),
                        getI(I.B, Fr));
    Fr.Regs[I.Dest] = RTValue::ofInt(C ? 1 : 0);
    if (!ChargeOne())
      return FastRes::Abort;
    if (C)
      PSC_JUMP(J.TBlock0, J.Target0);
    PSC_JUMP(J.TBlock1, J.Target1);
  }
  PSC_CASE_F(CmpFBr) {
    const BCInst &I = Code[PC];
    const BCInst &J = Code[PC + 1];
    bool C = evalCmpFloat(static_cast<CmpInst::Predicate>(I.Sub),
                          getFProm(I.A, Fr), getFProm(I.B, Fr));
    Fr.Regs[I.Dest] = RTValue::ofInt(C ? 1 : 0);
    if (!ChargeOne())
      return FastRes::Abort;
    if (C)
      PSC_JUMP(J.TBlock0, J.Target0);
    PSC_JUMP(J.TBlock1, J.Target1);
  }
  PSC_CASE_F(GepLoadI) {
    const BCInst &I = Code[PC];
    const BCInst &J = Code[PC + 1];
    RTValue Base = fetch(I.A, Fr);
    RTValue P = RTValue::ofPtr(
        Base.Obj, Base.Offset + static_cast<uint64_t>(getI(I.B, Fr)));
    Fr.Regs[I.Dest] = P;
    if (!ChargeOne())
      return FastRes::Abort;
    Fr.Regs[J.Dest] = doLoad(P, false);
    PC += 2;
    PSC_DISPATCH();
  }
  PSC_CASE_F(GepLoadF) {
    const BCInst &I = Code[PC];
    const BCInst &J = Code[PC + 1];
    RTValue Base = fetch(I.A, Fr);
    RTValue P = RTValue::ofPtr(
        Base.Obj, Base.Offset + static_cast<uint64_t>(getI(I.B, Fr)));
    Fr.Regs[I.Dest] = P;
    if (!ChargeOne())
      return FastRes::Abort;
    Fr.Regs[J.Dest] = doLoad(P, true);
    PC += 2;
    PSC_DISPATCH();
  }
  PSC_CASE_F(GepStore) {
    const BCInst &I = Code[PC];
    const BCInst &J = Code[PC + 1];
    RTValue Base = fetch(I.A, Fr);
    RTValue P = RTValue::ofPtr(
        Base.Obj, Base.Offset + static_cast<uint64_t>(getI(I.B, Fr)));
    Fr.Regs[I.Dest] = P;
    if (!ChargeOne())
      return FastRes::Abort;
    RTValue V = fetch(J.A, Fr);
    doStore(V, P, /*OwnedStore=*/true, 0);
    PC += 2;
    PSC_DISPATCH();
  }
  PSC_CASE_F(AddIStore) {
    const BCInst &I = Code[PC];
    const BCInst &J = Code[PC + 1];
    RTValue V = RTValue::ofInt(getI(I.A, Fr) + getI(I.B, Fr));
    Fr.Regs[I.Dest] = V;
    if (!ChargeOne())
      return FastRes::Abort;
    doStore(V, fetch(J.B, Fr), /*OwnedStore=*/true, 0);
    PC += 2;
    PSC_DISPATCH();
  }
  PSC_CASE_F(AddFStore) {
    const BCInst &I = Code[PC];
    const BCInst &J = Code[PC + 1];
    RTValue V = RTValue::ofFloat(getF(I.A, Fr) + getF(I.B, Fr));
    Fr.Regs[I.Dest] = V;
    if (!ChargeOne())
      return FastRes::Abort;
    doStore(V, fetch(J.B, Fr), /*OwnedStore=*/true, 0);
    PC += 2;
    PSC_DISPATCH();
  }
  PSC_CASE_F(SubFStore) {
    const BCInst &I = Code[PC];
    const BCInst &J = Code[PC + 1];
    RTValue V = RTValue::ofFloat(getF(I.A, Fr) - getF(I.B, Fr));
    Fr.Regs[I.Dest] = V;
    if (!ChargeOne())
      return FastRes::Abort;
    doStore(V, fetch(J.B, Fr), /*OwnedStore=*/true, 0);
    PC += 2;
    PSC_DISPATCH();
  }
  PSC_CASE_F(MulFStore) {
    const BCInst &I = Code[PC];
    const BCInst &J = Code[PC + 1];
    RTValue V = RTValue::ofFloat(getF(I.A, Fr) * getF(I.B, Fr));
    Fr.Regs[I.Dest] = V;
    if (!ChargeOne())
      return FastRes::Abort;
    doStore(V, fetch(J.B, Fr), /*OwnedStore=*/true, 0);
    PC += 2;
    PSC_DISPATCH();
  }

#if !PSC_DIRECT_THREADED
  }
  psc_unreachable("unhandled dispatch code");
#endif
}

#undef PSC_JUMP
#undef PSC_DISPATCH
#undef PSC_CASE_B
#undef PSC_CASE_F

RTValue BCContext::callFunction(const BCFunction &F,
                                std::vector<RTValue> Args) {
  const Function &IRF = *F.function();
  for (ExecutionObserver *O : Observers)
    O->onEnterFunction(IRF);

  BCFrame Fr(F);
  for (size_t A = 0; A < Args.size(); ++A)
    Fr.Regs[F.argSlot(static_cast<unsigned>(A))] = Args[A];

  RTValue Ret;
  unsigned Block = F.entryBlock();
  unsigned Prev = kNone;

  if (canFastPath() && (!Hook || HookHeaders)) {
    if (!Hook) {
      if (!S.aborted())
        fastDispatch<FastMode::Pure>(F, Fr, Block, Prev, Ret, nullptr, nullptr,
                                     0);
      return Ret;
    }
    // Hooked master with narrowed headers: run the fast loop between
    // flagged blocks, consulting the hook exactly where the stepped path
    // would act on it.
    auto It = HookHeaders->find(&F);
    const std::vector<uint8_t> *HH =
        It == HookHeaders->end() ? nullptr : &It->second;
    while (Block != kNone && !S.aborted()) {
      if (HH && (*HH)[Block]) {
        unsigned Cont = Hook(*this, Fr, Prev, Block);
        if (S.aborted())
          break;
        if (Cont != kNone) {
          Prev = Block;
          Block = Cont;
          continue;
        }
      }
      FastRes R = HH ? fastDispatch<FastMode::HookStops>(
                           F, Fr, Block, Prev, Ret, HH->data(), nullptr, 0)
                     : fastDispatch<FastMode::Pure>(F, Fr, Block, Prev, Ret,
                                                    nullptr, nullptr, 0);
      if (R != FastRes::Stopped)
        return Ret;
    }
    return Ret;
  }

  const bool Stepped = static_cast<bool>(Hook) || !Observers.empty();

  while (Block != kNone && !S.aborted()) {
    if (Hook) {
      unsigned Cont = Hook(*this, Fr, Prev, Block);
      if (S.aborted())
        break;
      if (Cont != kNone) {
        Prev = Block;
        Block = Cont;
        continue;
      }
    }
    for (ExecutionObserver *O : Observers)
      O->onBlockTransfer(IRF, Prev == kNone ? nullptr : IRF.getBlock(Prev),
                         IRF.getBlock(Block));
    Prev = Block;
    uint32_t PC = F.blockPC(Block);
    unsigned Next = kNone;
    uint32_t NextPC = 0;
    for (;;) {
      ExecRes R = execOne(F, Fr, PC, Next, NextPC, Ret);
      if (R == ExecRes::Abort)
        return Ret;
      for (ExecutionObserver *O : Observers)
        O->onInstruction(*F.code()[PC].Src);
      if (R == ExecRes::Returned) {
        for (ExecutionObserver *O : Observers)
          O->onExitFunction(IRF);
        return Ret;
      }
      if (R == ExecRes::Jump) {
        if (!Stepped) {
          // Fast path: no hook/observers — thread the pre-linked PC
          // directly without block bookkeeping.
          PC = NextPC;
          continue;
        }
        break;
      }
      ++PC;
    }
    Block = Next;
  }
  for (ExecutionObserver *O : Observers)
    O->onExitFunction(IRF);
  return Ret;
}

unsigned BCContext::execWithin(BCFrame &Fr, const std::vector<uint8_t> &InLoop,
                               unsigned HeaderIdx, unsigned StartBlock) {
  const BCFunction &F = *Fr.F;
  unsigned Block = StartBlock;
  if (canFastPath()) {
    // Zero-obligation worker: the whole body runs in the fast loop,
    // stopping (without executing) at the header or the first block
    // outside the iteration space.
    if (Block == kNone || S.aborted())
      return kNone;
    if (Block == HeaderIdx || InLoop[Block] == 0)
      return Block;
    RTValue Ret;
    unsigned Prev = kNone;
    FastRes R = fastDispatch<FastMode::LoopBounded>(F, Fr, Block, Prev, Ret,
                                                    nullptr, &InLoop,
                                                    HeaderIdx);
    return R == FastRes::Stopped ? Block : kNone;
  }
  RTValue Ret;
  while (Block != kNone && !S.aborted()) {
    if (Block == HeaderIdx || InLoop[Block] == 0)
      return Block;
    uint32_t PC = F.blockPC(Block);
    unsigned Next = kNone;
    uint32_t NextPC = 0;
    for (;;) {
      ExecRes R = execOne(F, Fr, PC, Next, NextPC, Ret);
      if (R == ExecRes::Abort || R == ExecRes::Returned)
        return kNone; // validated parallel loops contain no return
      if (R == ExecRes::Jump)
        break;
      ++PC;
    }
    Block = Next;
  }
  return kNone;
}
