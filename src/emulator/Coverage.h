//===- Coverage.h - Loop runtime-coverage profiler ---------------*- C++ -*-===//
///
/// \file
/// Execution observer that measures the fraction of dynamic instructions
/// attributable to each loop (instructions in nested loops count toward all
/// enclosing loops). Feeds the ≥1% coverage filter of the option
/// enumeration (paper §6.1).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_EMULATOR_COVERAGE_H
#define PSPDG_EMULATOR_COVERAGE_H

#include "analysis/FunctionAnalysis.h"
#include "emulator/Interpreter.h"
#include "parallel/PlanEnumerator.h"

namespace psc {

/// Profiles loop coverage during one interpreter run.
class CoverageProfiler : public ExecutionObserver {
public:
  explicit CoverageProfiler(ModuleAnalyses &MA) : MA(MA) {}

  void onInstruction(const Instruction &I) override;
  void onBlockTransfer(const Function &F, const BasicBlock *From,
                       const BasicBlock *To) override;
  void onEnterFunction(const Function &F) override;
  void onExitFunction(const Function &F) override;

  /// Coverage fractions after the run.
  CoverageMap coverage() const;

  uint64_t totalInstructions() const { return Total; }

  /// Dynamic instructions attributed to a loop.
  uint64_t loopInstructions(const std::string &Fn, unsigned Header) const {
    auto It = Counts.find({Fn, Header});
    return It == Counts.end() ? 0 : It->second;
  }

private:
  struct Activation {
    const Function *F = nullptr;
    const LoopInfo *LI = nullptr;
    std::vector<const Loop *> Stack;
  };

  ModuleAnalyses &MA;
  std::vector<Activation> Activations;
  std::map<std::pair<std::string, unsigned>, uint64_t> Counts;
  uint64_t Total = 0;
};

} // namespace psc

#endif // PSPDG_EMULATOR_COVERAGE_H
