//===- ExecCore.h - Re-entrant, thread-safe execution core -------*- C++ -*-===//
///
/// \file
/// The execution core shared by the sequential Interpreter and the parallel
/// plan-execution runtime (src/runtime/). The design splits the old
/// monolithic interpreter into:
///
///   * ExecState   — the shared, thread-safe program state: global memory
///     objects, the output stream, the instruction budget, the abort flag,
///     and the mutual-exclusion lock realizing critical/atomic regions.
///   * ExecContext — one re-entrant execution engine. Each OS thread of a
///     parallel schedule drives its own ExecContext over the shared
///     ExecState. Contexts carry the scheduler extension points: storage
///     overrides (privatization), a loop hook (plan interception), a commit
///     filter plus shadow memory (DSWP stage execution), an iteration gate
///     (HELIX sequential segments), and a local output buffer (exact
///     sequential print order under parallel execution).
///
/// Thread-safety contract: distinct ExecContexts may run concurrently over
/// one ExecState as long as their concurrent memory accesses are
/// data-race-free at MemObject-element granularity — exactly what a valid
/// DOALL/HELIX/DSWP schedule guarantees. The instruction counter and abort
/// flag are atomics; output and regions are lock-protected.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_EMULATOR_EXECCORE_H
#define PSPDG_EMULATOR_EXECCORE_H

#include "ir/Module.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace psc {

struct MemObject;

/// Recursive spinlock realizing critical/atomic regions. The regions the
/// source language expresses are tiny (a handful of scalar updates), so a
/// userspace spin with exponential backoff beats a futex-based mutex by an
/// order of magnitude under contention — the lock hold time is far below
/// the cost of a single kernel handoff. Recursive so that nested regions
/// (critical inside critical) cannot self-deadlock.
class RegionLock {
public:
  void lock() {
    uint32_t Me = self();
    if (Owner.load(std::memory_order_relaxed) == Me) {
      ++Depth;
      return;
    }
    unsigned Spins = 0;
    for (;;) {
      uint32_t Free = 0;
      if (Owner.compare_exchange_weak(Free, Me, std::memory_order_acquire,
                                      std::memory_order_relaxed))
        break;
      // Back off on reads only; the CAS above runs once per observed
      // release so the line is not bounced while the lock is held.
      do {
        if (++Spins > 1024) {
          std::this_thread::yield();
          Spins = 0;
        }
      } while (Owner.load(std::memory_order_relaxed) != 0);
    }
    Depth = 1;
  }

  void unlock() {
    if (--Depth == 0)
      Owner.store(0, std::memory_order_release);
  }

private:
  /// Small dense thread id (0 is reserved for "unlocked").
  static uint32_t self() {
    static std::atomic<uint32_t> Next{1};
    thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
    return Id;
  }

  std::atomic<uint32_t> Owner{0};
  uint32_t Depth = 0; ///< Only touched by the owning thread.
};

/// Callbacks fired during interpretation. All hooks are optional.
class ExecutionObserver {
public:
  virtual ~ExecutionObserver() = default;
  /// Fired after \p I executes (including marker intrinsics).
  virtual void onInstruction(const Instruction & /*I*/) {}
  /// Fired when control moves between blocks of \p F (From null on entry).
  virtual void onBlockTransfer(const Function & /*F*/,
                               const BasicBlock * /*From*/,
                               const BasicBlock * /*To*/) {}
  virtual void onEnterFunction(const Function & /*F*/) {}
  virtual void onExitFunction(const Function & /*F*/) {}
  /// Fired when load/store \p I touches element \p Offset of \p O, before
  /// the instruction's onInstruction event. Both engines fire it at the
  /// same execution points, so observer streams stay engine-identical
  /// (the dependence profiler relies on this).
  virtual void onMemAccess(const Instruction & /*I*/, const MemObject & /*O*/,
                           uint64_t /*Offset*/, bool /*IsWrite*/) {}
};

/// Result of a program run.
struct RunResult {
  bool Completed = false;       ///< false = instruction budget exhausted.
  int64_t ExitValue = 0;        ///< main's return value.
  uint64_t InstructionsExecuted = 0;
  std::vector<std::string> Output; ///< print/printf64 lines, in order.
};

/// One runtime memory object (a global or an alloca instance).
struct MemObject {
  bool IsFloat = false;
  std::vector<int64_t> I;
  std::vector<double> F;

  uint64_t size() const { return IsFloat ? F.size() : I.size(); }
};

/// Builds the zero-initialized memory object of an alloca/global object
/// type (shared by both execution engines' frames).
MemObject makeMemObject(const Type *ObjectTy);

/// Runtime value: scalar (int/float) or pointer into a MemObject.
struct RTValue {
  enum class RTKind { Int, Float, Ptr } Kind = RTKind::Int;
  int64_t I = 0;
  double F = 0.0;
  MemObject *Obj = nullptr;
  uint64_t Offset = 0;

  static RTValue ofInt(int64_t V) {
    RTValue R;
    R.Kind = RTKind::Int;
    R.I = V;
    return R;
  }
  static RTValue ofFloat(double V) {
    RTValue R;
    R.Kind = RTKind::Float;
    R.F = V;
    return R;
  }
  static RTValue ofPtr(MemObject *O, uint64_t Off) {
    RTValue R;
    R.Kind = RTKind::Ptr;
    R.Obj = O;
    R.Offset = Off;
    return R;
  }
};

// --- Shared scalar semantics -------------------------------------------------
//
// Single source of truth for the arithmetic edge cases both execution
// engines — and the bytecode decoder's constant folder — must agree on
// bit-for-bit: division/remainder by zero yields zero, shift amounts mask
// to 63, and compares promote to float when either side is float.

inline int64_t intDiv(int64_t A, int64_t B) { return B == 0 ? 0 : A / B; }
inline int64_t intRem(int64_t A, int64_t B) { return B == 0 ? 0 : A % B; }
inline int64_t intShl(int64_t A, int64_t B) { return A << (B & 63); }
inline int64_t intShr(int64_t A, int64_t B) { return A >> (B & 63); }
inline double fltDiv(double A, double B) { return B == 0.0 ? 0.0 : A / B; }

bool evalCmpInt(CmpInst::Predicate P, int64_t A, int64_t B);
bool evalCmpFloat(CmpInst::Predicate P, double A, double B);

/// Binary-operation semantics over runtime values; \p IsFloat is the
/// result type's (the walker's dynamic dispatch equals the static type).
RTValue evalBinaryOp(bool IsFloat, BinaryInst::BinOp Op, const RTValue &L,
                     const RTValue &R);
/// Compare semantics with runtime-kind float promotion.
bool evalCmpOp(CmpInst::Predicate P, const RTValue &L, const RTValue &R);

/// Shared, thread-safe state of one program run.
class ExecState {
public:
  explicit ExecState(const Module &M);

  const Module &module() const { return M; }

  /// Global memory objects live in a flat table indexed by the dense global
  /// number assigned at IR creation (GlobalVariable::getGlobalIndex). The
  /// same numbering is used by the bytecode decoder, so both engines and
  /// the scheduler resolve globals with one array index instead of a map.
  MemObject *globalObject(const GlobalVariable *G) {
    return &Globals[G->getGlobalIndex()];
  }
  MemObject *globalByIndex(unsigned Index) { return &Globals[Index]; }
  unsigned numGlobals() const { return static_cast<unsigned>(Globals.size()); }

  /// Appends one print line (locked; parallel contexts usually buffer
  /// locally instead, to preserve sequential order).
  void appendOutput(std::string Line);
  void appendOutput(std::vector<std::string> Lines);
  std::vector<std::string> takeOutput() { return std::move(Output); }

  void setBudget(uint64_t B) { Budget = B; }
  uint64_t budget() const { return Budget; }

  /// Charges \p N instructions against the budget; trips the abort flag and
  /// returns false once the budget is exhausted.
  bool charge(uint64_t N) {
    if (Instructions.fetch_add(N, std::memory_order_relaxed) + N > Budget) {
      Aborted.store(true, std::memory_order_seq_cst);
      return false;
    }
    return !aborted();
  }

  uint64_t instructionsExecuted() const {
    return Instructions.load(std::memory_order_relaxed);
  }

  bool aborted() const { return Aborted.load(std::memory_order_relaxed); }
  void abort() { Aborted.store(true, std::memory_order_seq_cst); }

  /// Clears an abort raised to cancel a *speculative* loop invocation
  /// (misspeculation rollback). Only the parallel runtime calls this,
  /// after the pool has quiesced and only when the abort was not a budget
  /// exhaustion. Instructions spent on the discarded attempt stay charged.
  void clearAbort() { Aborted.store(false, std::memory_order_seq_cst); }

  /// True when the executed-instruction counter has crossed the budget
  /// (distinguishes a budget abort from a speculation-cancel abort).
  bool budgetExhausted() const { return instructionsExecuted() > Budget; }

  /// The lock realizing critical/atomic regions at runtime. Recursive so
  /// that nested regions (critical inside critical) cannot self-deadlock.
  RegionLock &regionLock() { return RegionMu; }

private:
  const Module &M;
  std::vector<MemObject> Globals; ///< Indexed by GlobalVariable global index.
  std::vector<std::string> Output;
  std::mutex OutputMu;
  RegionLock RegionMu;
  std::atomic<uint64_t> Instructions{0};
  uint64_t Budget = 2'000'000'000ULL;
  std::atomic<bool> Aborted{false};
};

/// One activation record. Allocas are pointers so that a parallel worker
/// can alias its parent frame's objects while redirecting privatized ones.
struct Frame {
  const Function *F = nullptr;
  std::map<const Value *, RTValue> Regs;
  std::map<const Value *, MemObject *> Allocas;
  std::vector<std::unique_ptr<MemObject>> Owned;

  MemObject *createObject(const Type *ObjectTy);
};

/// Per-stage shadow memory for DSWP pipeline execution. During a pipelined
/// loop the shared memory image is frozen; every store lands in an overlay:
///
///   * IterShared — authoritative values of the current iteration: the
///     incoming token (owned stores of upstream stages) plus this stage's
///     own owned stores. This map IS the outgoing token, so owned values
///     accumulate down the pipeline.
///   * IterLocal  — this stage's *recomputed* (non-owned) stores. They
///     support the stage's local control/data recomputation but must never
///     flow downstream: a stage recomputing a downstream-owned store works
///     from stale inputs, and leaking that value would shadow the frozen
///     base image (the reverse-wavefront self-update pattern).
///   * Persist    — owned stores kept across iterations: the loop-carried
///     state of the stage.
///
/// Loads read IterShared, IterLocal, Persist, then the frozen shared
/// image. At loop end every stage's Persist merges back into shared
/// memory, last dynamic write (iteration, instruction index) winning.
///
/// The speculation subsystem (DESIGN.md §9) reuses the overlay as its
/// checkpoint mechanism through two additional modes:
///
///   * SpecChunk (speculative DOALL) — every store is owned and lands in
///     Persist only; loads see the worker's own history over the frozen
///     base. Overlays merge into shared memory after validation, or are
///     discarded wholesale on misspeculation.
///   * SpecRing  (speculative HELIX) — per-iteration stores land in
///     IterShared; at each gate handoff (iteration order) the worker
///     publishes them into a CommittedOverlay shared by all workers.
///     Loads read own-iteration stores, then the committed overlay
///     (mutex-guarded: parallel-SCC code may read it concurrently with a
///     publisher), then the frozen base.
class ShadowMemory {
public:
  struct Cell {
    int64_t I = 0;
    double F = 0.0;
    long Iter = -1;     ///< Iteration of the winning store (Persist only).
    unsigned Inst = 0;  ///< FA instruction index of the store.
  };
  using Key = std::pair<MemObject *, uint64_t>;

  enum class SpecMode { None, Chunk, Ring };

  /// Iteration-ordered overlay shared by the workers of one speculative
  /// HELIX invocation. Publication happens at gate handoffs (iteration
  /// order), so Map is last-write-wins by construction.
  struct CommittedOverlay {
    std::mutex Mu;
    std::map<Key, Cell> Map;
  };

  /// Objects that bypass the shadow entirely (the stage-private IV copy).
  void addBypass(MemObject *O) { Bypass.insert(O); }
  bool isBypassed(MemObject *O) const { return Bypass.count(O) != 0; }

  void setSpecMode(SpecMode M) { Mode = M; }
  /// Ring mode: the shared committed overlay loads fall back to.
  void setCommitted(CommittedOverlay *C) { Committed = C; }

  /// Takes the incoming token by rvalue reference: tokens are handed down
  /// the pipeline, never duplicated, so the overlay map is moved in place.
  void beginIteration(std::map<Key, Cell> &&Incoming) {
    IterShared = std::move(Incoming);
    IterLocal.clear();
  }
  /// The outgoing token: incoming owned values + this stage's owned stores.
  std::map<Key, Cell> &sharedOverlay() { return IterShared; }

  bool load(MemObject *O, uint64_t Off, bool &IsFloat, int64_t &I,
            double &F) const;
  void store(MemObject *O, uint64_t Off, int64_t I, double F, bool Owned,
             long Iter, unsigned Inst);

  const std::map<Key, Cell> &persist() const { return Persist; }

private:
  std::map<Key, Cell> IterShared;
  std::map<Key, Cell> IterLocal;
  std::map<Key, Cell> Persist;
  std::set<MemObject *> Bypass;
  SpecMode Mode = SpecMode::None;
  CommittedOverlay *Committed = nullptr;
};

/// One watched memory access of a speculative loop iteration (the raw
/// material of runtime assumption validation; see runtime/SpecValidation.h).
/// A record can belong to up to three watch families at once: the memory
/// conflict-check table (Watch, valid when HasWatch), the value-prediction
/// table (VWatch, index + 1; stores carry the stored value in ValI/ValF),
/// and the guard table of promoted reductions (GWatch, index + 1; any
/// guarded record is a misspeculation).
struct SpecAccessRec {
  MemObject *Obj = nullptr;
  uint64_t Off = 0;
  long Iter = 0;
  uint32_t Watch = 0; ///< Watch index from the loop's conflict-check table.
  bool IsWrite = false;
  bool HasWatch = true; ///< Watch above is meaningful.
  uint32_t VWatch = 0;  ///< Value-prediction index + 1; 0 = none.
  uint32_t GWatch = 0;  ///< Guard ordinal + 1; 0 = none.
  int64_t ValI = 0;     ///< Stored value (value-watched writes only).
  double ValF = 0.0;
};
using SpecAccessLog = std::vector<SpecAccessRec>;

/// One re-entrant execution engine over a shared ExecState.
class ExecContext {
public:
  explicit ExecContext(ExecState &S) : S(S) {}

  /// Unwinds any regions still open (abort mid critical/atomic region) so
  /// the shared region lock is never leaked to other contexts.
  ~ExecContext() {
    while (!RegionStack.empty()) {
      if (RegionStack.back().second)
        S.regionLock().unlock();
      RegionStack.pop_back();
    }
  }

  ExecState &state() { return S; }

  // --- Scheduler extension points ---------------------------------------

  /// Observers fire on this context only (the sequential interpreter's).
  void addObserver(ExecutionObserver *O) { Observers.push_back(O); }

  /// Called before a block executes; returning non-null means the hook ran
  /// the construct (a whole loop invocation) and control continues at the
  /// returned block. \p Prev is the dynamically preceding block (null on
  /// function entry) so the hook can tell loop entry from a back edge.
  using LoopHook = std::function<const BasicBlock *(
      ExecContext &, Frame &, const BasicBlock *Prev, const BasicBlock *B)>;
  void setLoopHook(LoopHook H) { Hook = std::move(H); }

  /// Storage override: resolves a GlobalVariable (or outer alloca) to a
  /// private object — privatization of globals (threadprivate, reductions).
  void setStorageOverride(const Value *Storage, MemObject *Obj) {
    Overrides[Storage] = Obj;
  }
  void clearStorageOverrides() { Overrides.clear(); }

  /// DSWP: non-null filter makes this context a pipeline stage; the filter
  /// answers "does this context own instruction I's side effects".
  void setCommitFilter(std::function<bool(const Instruction &)> F) {
    CommitFilter = std::move(F);
  }
  void setShadowMemory(ShadowMemory *SM) { Shadow = SM; }
  /// FA instruction numbering for shadow-store tie-breaking (DSWP and
  /// speculative overlay merges).
  void setInstructionNumbering(
      const std::map<const Instruction *, unsigned> *N) {
    InstNumbering = N;
  }
  void setCurrentIteration(long It) { CurIteration = It; }

  /// Speculation: loads/stores of instructions in \p WatchOf append an
  /// access record to \p Log (the per-worker evidence the validator checks
  /// against the plan's assumption set). For pipeline stages the log only
  /// records instructions this context owns (commit filter).
  void setSpecWatch(const std::map<const Instruction *, unsigned> *WatchOf,
                    SpecAccessLog *Log) {
    SpecWatchOf = WatchOf;
    SpecLog = Log;
  }

  /// Value speculation: accesses in \p VWatchOf log with the stored value
  /// (prediction checks), accesses in \p GuardOf log as guard hits
  /// (misspeculation on execution). Records go to the setSpecWatch log.
  void setValueWatch(const std::map<const Instruction *, unsigned> *VWatchOf,
                     const std::map<const Instruction *, unsigned> *GuardOf) {
    ValueWatchOf = VWatchOf;
    GuardWatchOf = GuardOf;
  }

  /// HELIX: instructions of sequential SCCs execute in iteration order.
  struct IterationGate {
    const std::map<const Instruction *, unsigned> *SCCOf = nullptr;
    const std::vector<bool> *SCCIsSeq = nullptr;
    std::atomic<long> *Turn = nullptr;
    long MyIter = 0;
    bool Held = false;
  };
  void setGate(IterationGate *G) { Gate = G; }

  /// Redirects print output into \p Buf (worker contexts buffer so the
  /// scheduler can splice output back in sequential order).
  void setLocalOutput(std::vector<std::string> *Buf) { LocalOutput = Buf; }

  /// Batches instruction-budget charging: the shared atomic counter is
  /// touched once per \p N instructions instead of every instruction
  /// (worker contexts use this — the shared cacheline would otherwise
  /// serialize all cores). Totals stay exact once flushCharges() runs;
  /// budget aborts coarsen by at most one batch per context.
  void setChargeBatch(unsigned N) { ChargeBatch = N == 0 ? 1 : N; }
  void flushCharges() {
    if (PendingCharges) {
      S.charge(PendingCharges);
      PendingCharges = 0;
    }
  }

  // --- Execution ---------------------------------------------------------

  /// Runs \p F to completion (the sequential entry point).
  RTValue callFunction(const Function &F, std::vector<RTValue> Args);

  /// Executes blocks of \p Fr's function starting at \p Start, constrained
  /// to the loop whose blocks are \p LoopBlocks with header \p HeaderIdx:
  /// returns the first reached block that is the header or outside the loop
  /// (without executing it), or null on abort/unexpected return.
  const BasicBlock *execWithin(Frame &Fr, const std::set<unsigned> &LoopBlocks,
                               unsigned HeaderIdx, const BasicBlock *Start);

  /// Operand evaluation (public for the schedulers: IV setup, reductions).
  RTValue evalOperand(const Value *V, Frame &Fr);

  /// Resolves the memory object of a global/alloca storage value in \p Fr,
  /// honoring overrides. Null if \p Storage is not a storage value.
  MemObject *resolveStorage(const Value *Storage, Frame &Fr);

private:
  /// Executes one instruction. Sets \p Next on terminators, \p Returned on
  /// Ret. Returns false on abort.
  bool execInst(Frame &Fr, const Instruction *I, const BasicBlock *&Next,
                RTValue &Ret, bool &Returned);

  RTValue doLoad(const RTValue &P, const Type *Ty);
  void doStore(const RTValue &V, const RTValue &P, const Instruction *I);
  /// Fires onMemAccess observers and the speculation watches for one
  /// load/store of \p I at (\p P.Obj, \p P.Offset). \p Stored is the
  /// just-stored value (null for loads) — value watches log it.
  void noteMemAccess(const Instruction *I, const RTValue &P, bool IsWrite,
                     const RTValue *Stored = nullptr);
  RTValue callIntrinsic(const CallInst &CI, std::vector<RTValue> &Args);
  void emitOutput(std::string Line);
  void gateWait(const Instruction *I);

  static RTValue evalBinary(const BinaryInst *BI, const RTValue &L,
                            const RTValue &R);
  static bool evalCmp(const CmpInst *CI, const RTValue &L, const RTValue &R);

  ExecState &S;
  std::vector<ExecutionObserver *> Observers;
  unsigned ChargeBatch = 1;
  uint64_t PendingCharges = 0;
  LoopHook Hook;
  std::map<const Value *, MemObject *> Overrides;
  std::function<bool(const Instruction &)> CommitFilter;
  ShadowMemory *Shadow = nullptr;
  const std::map<const Instruction *, unsigned> *InstNumbering = nullptr;
  const std::map<const Instruction *, unsigned> *SpecWatchOf = nullptr;
  const std::map<const Instruction *, unsigned> *ValueWatchOf = nullptr;
  const std::map<const Instruction *, unsigned> *GuardWatchOf = nullptr;
  SpecAccessLog *SpecLog = nullptr;
  long CurIteration = 0;
  IterationGate *Gate = nullptr;
  std::vector<std::string> *LocalOutput = nullptr;
  /// Dynamic directive-region stack: ids of open regions + whether each
  /// holds the region lock.
  std::vector<std::pair<unsigned, bool>> RegionStack;
};

} // namespace psc

#endif // PSPDG_EMULATOR_EXECCORE_H
