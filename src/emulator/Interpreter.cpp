//===- Interpreter.cpp ----------------------------------------*- C++ -*-===//

#include "emulator/Interpreter.h"

#include "support/ErrorHandling.h"

using namespace psc;

RunResult Interpreter::run(const std::string &EntryName) {
  ExecState S(M);
  S.setBudget(MaxInstructions);

  const Function *Entry = M.getFunction(EntryName);
  if (!Entry || Entry->isDeclaration())
    reportFatalError("entry function '" + EntryName + "' not found");

  RTValue R;
  if (Engine == ExecEngineKind::Bytecode) {
    const BytecodeModule *BM = SharedBM;
    if (!BM) {
      if (!OwnedBM)
        OwnedBM = std::make_unique<BytecodeModule>(M);
      BM = OwnedBM.get();
    }
    BCContext C(S, *BM);
    C.enableLocalBudget();
    for (ExecutionObserver *O : Observers)
      C.addObserver(O);
    R = C.callFunction(*BM->forFunction(Entry), {});
    C.flushCharges();
  } else {
    ExecContext C(S);
    for (ExecutionObserver *O : Observers)
      C.addObserver(O);
    R = C.callFunction(*Entry, {});
  }

  RunResult Result;
  Result.Completed = !S.aborted();
  Result.InstructionsExecuted = S.instructionsExecuted();
  Result.Output = S.takeOutput();
  Result.ExitValue = R.Kind == RTValue::RTKind::Float
                         ? static_cast<int64_t>(R.F)
                         : R.I;
  return Result;
}
