//===- Interpreter.cpp ----------------------------------------*- C++ -*-===//

#include "emulator/Interpreter.h"

#include "support/ErrorHandling.h"

#include <cmath>
#include <sstream>

using namespace psc;

namespace {

/// Runtime value: scalar (int/float) or pointer into a MemObject.
struct RTValue {
  enum class RTKind { Int, Float, Ptr } Kind = RTKind::Int;
  int64_t I = 0;
  double F = 0.0;
  MemObject *Obj = nullptr;
  uint64_t Offset = 0;

  static RTValue ofInt(int64_t V) {
    RTValue R;
    R.Kind = RTKind::Int;
    R.I = V;
    return R;
  }
  static RTValue ofFloat(double V) {
    RTValue R;
    R.Kind = RTKind::Float;
    R.F = V;
    return R;
  }
  static RTValue ofPtr(MemObject *O, uint64_t Off) {
    RTValue R;
    R.Kind = RTKind::Ptr;
    R.Obj = O;
    R.Offset = Off;
    return R;
  }
};

} // namespace

struct Interpreter::Impl {
  Impl(const Module &M, Interpreter &Outer) : M(M), Outer(Outer) {}

  const Module &M;
  Interpreter &Outer;
  std::map<const GlobalVariable *, MemObject> Globals;
  RunResult Result;
  uint64_t Budget = 0;
  bool Aborted = false;

  struct Frame {
    const Function *F = nullptr;
    std::map<const Value *, MemObject> Allocas;
    std::map<const Value *, RTValue> Regs;
  };

  static MemObject makeObject(const Type *ObjectTy) {
    MemObject O;
    const Type *Elem = ObjectTy;
    uint64_t N = 1;
    if (const auto *AT = dyn_cast<ArrayType>(ObjectTy)) {
      Elem = AT->getElement();
      N = AT->getNumElements();
    }
    O.IsFloat = Elem->isFloat();
    if (O.IsFloat)
      O.F.assign(N, 0.0);
    else
      O.I.assign(N, 0);
    return O;
  }

  void initGlobals() {
    for (const auto &G : M.globals()) {
      MemObject O = makeObject(G->getObjectType());
      if (G->hasScalarInit()) {
        if (O.IsFloat)
          O.F[0] = G->getScalarInit();
        else
          O.I[0] = static_cast<int64_t>(G->getScalarInit());
      }
      Globals[G.get()] = std::move(O);
    }
  }

  RTValue evalOperand(const Value *V, Frame &Fr) {
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return RTValue::ofInt(CI->getValue());
    if (const auto *CF = dyn_cast<ConstantFloat>(V))
      return RTValue::ofFloat(CF->getValue());
    if (const auto *GV = dyn_cast<GlobalVariable>(V))
      return RTValue::ofPtr(&Globals.at(GV), 0);
    if (isa<AllocaInst>(V))
      return RTValue::ofPtr(&Fr.Allocas.at(V), 0);
    if (isa<Argument>(V) || isa<Instruction>(V))
      return Fr.Regs.at(V);
    psc_unreachable("unhandled operand kind");
  }

  static int64_t loadInt(const RTValue &P) {
    return P.Obj->IsFloat ? static_cast<int64_t>(P.Obj->F[P.Offset])
                          : P.Obj->I[P.Offset];
  }

  RTValue doLoad(const RTValue &P, const Type *Ty) {
    if (P.Offset >= P.Obj->size())
      reportFatalError("out-of-bounds load at offset " +
                       std::to_string(P.Offset));
    if (Ty->isFloat())
      return RTValue::ofFloat(P.Obj->IsFloat
                                  ? P.Obj->F[P.Offset]
                                  : static_cast<double>(P.Obj->I[P.Offset]));
    if (Ty->isPointer()) {
      // Pointer-typed slots are not supported in MemObjects; PSC never
      // stores pointers to memory (array params are SSA arguments).
      psc_unreachable("pointer load from memory");
    }
    return RTValue::ofInt(loadInt(P));
  }

  void doStore(const RTValue &V, const RTValue &P) {
    if (P.Offset >= P.Obj->size())
      reportFatalError("out-of-bounds store at offset " +
                       std::to_string(P.Offset));
    if (P.Obj->IsFloat)
      P.Obj->F[P.Offset] =
          V.Kind == RTValue::RTKind::Float ? V.F : static_cast<double>(V.I);
    else
      P.Obj->I[P.Offset] =
          V.Kind == RTValue::RTKind::Float ? static_cast<int64_t>(V.F) : V.I;
  }

  RTValue callIntrinsic(const CallInst &CI, std::vector<RTValue> &Args) {
    const std::string &Name = CI.getCallee()->getName();
    auto F1 = [&](double (*Fn)(double)) {
      return RTValue::ofFloat(Fn(Args[0].F));
    };
    if (Name == intrinsics::RegionBegin || Name == intrinsics::RegionEnd ||
        Name == intrinsics::BarrierMarker ||
        Name == intrinsics::TaskWaitMarker)
      return RTValue();
    if (Name == intrinsics::Print) {
      Result.Output.push_back(std::to_string(Args[0].I));
      return RTValue();
    }
    if (Name == intrinsics::PrintF) {
      std::ostringstream OS;
      OS << Args[0].F;
      Result.Output.push_back(OS.str());
      return RTValue();
    }
    if (Name == intrinsics::Sqrt)
      return F1(std::sqrt);
    if (Name == intrinsics::Fabs)
      return F1(std::fabs);
    if (Name == intrinsics::Sin)
      return F1(std::sin);
    if (Name == intrinsics::Cos)
      return F1(std::cos);
    if (Name == intrinsics::Exp)
      return F1(std::exp);
    if (Name == intrinsics::Log)
      return F1(std::log);
    if (Name == intrinsics::Pow)
      return RTValue::ofFloat(std::pow(Args[0].F, Args[1].F));
    if (Name == intrinsics::IMin)
      return RTValue::ofInt(std::min(Args[0].I, Args[1].I));
    if (Name == intrinsics::IMax)
      return RTValue::ofInt(std::max(Args[0].I, Args[1].I));
    if (Name == intrinsics::FMin)
      return RTValue::ofFloat(std::min(Args[0].F, Args[1].F));
    if (Name == intrinsics::FMax)
      return RTValue::ofFloat(std::max(Args[0].F, Args[1].F));
    if (Name == intrinsics::Lcg) {
      // 48-bit linear congruential step (deterministic pseudo-random).
      uint64_t X = static_cast<uint64_t>(Args[0].I);
      X = (X * 25214903917ULL + 11ULL) & ((1ULL << 48) - 1);
      return RTValue::ofInt(static_cast<int64_t>(X));
    }
    reportFatalError("unknown intrinsic '" + Name + "' at runtime");
  }

  RTValue callFunction(const Function &F, std::vector<RTValue> Args) {
    for (ExecutionObserver *O : Outer.Observers)
      O->onEnterFunction(F);

    Frame Fr;
    Fr.F = &F;
    for (unsigned A = 0; A < F.getNumArgs(); ++A)
      Fr.Regs[F.getArg(A)] = Args[A];

    RTValue Ret;
    const BasicBlock *Block = F.getEntryBlock();
    const BasicBlock *Prev = nullptr;

    while (Block && !Aborted) {
      for (ExecutionObserver *O : Outer.Observers)
        O->onBlockTransfer(F, Prev, Block);
      Prev = Block;
      const BasicBlock *Next = nullptr;

      for (const Instruction *I : *Block) {
        if (++Result.InstructionsExecuted > Budget) {
          Aborted = true;
          return Ret;
        }
        switch (I->getKind()) {
        case Value::ValueKind::Alloca: {
          const auto *AI = cast<AllocaInst>(I);
          Fr.Allocas[AI] = makeObject(AI->getAllocatedType());
          break;
        }
        case Value::ValueKind::Load: {
          const auto *LI = cast<LoadInst>(I);
          Fr.Regs[I] = doLoad(evalOperand(LI->getPointer(), Fr),
                              LI->getType());
          break;
        }
        case Value::ValueKind::Store: {
          const auto *SI = cast<StoreInst>(I);
          doStore(evalOperand(SI->getStoredValue(), Fr),
                  evalOperand(SI->getPointer(), Fr));
          break;
        }
        case Value::ValueKind::GEP: {
          const auto *GI = cast<GEPInst>(I);
          RTValue Base = evalOperand(GI->getBase(), Fr);
          RTValue Idx = evalOperand(GI->getIndex(), Fr);
          Fr.Regs[I] = RTValue::ofPtr(
              Base.Obj, Base.Offset + static_cast<uint64_t>(Idx.I));
          break;
        }
        case Value::ValueKind::Binary: {
          const auto *BI = cast<BinaryInst>(I);
          RTValue L = evalOperand(BI->getLHS(), Fr);
          RTValue R = evalOperand(BI->getRHS(), Fr);
          Fr.Regs[I] = evalBinary(BI, L, R);
          break;
        }
        case Value::ValueKind::Unary: {
          const auto *UI = cast<UnaryInst>(I);
          RTValue V = evalOperand(UI->getOperand(0), Fr);
          if (UI->getUnOp() == UnaryInst::UnOp::Neg)
            Fr.Regs[I] = V.Kind == RTValue::RTKind::Float
                             ? RTValue::ofFloat(-V.F)
                             : RTValue::ofInt(-V.I);
          else
            Fr.Regs[I] = RTValue::ofInt(V.I == 0 ? 1 : 0);
          break;
        }
        case Value::ValueKind::Cmp: {
          const auto *CI = cast<CmpInst>(I);
          RTValue L = evalOperand(CI->getLHS(), Fr);
          RTValue R = evalOperand(CI->getRHS(), Fr);
          Fr.Regs[I] = RTValue::ofInt(evalCmp(CI, L, R) ? 1 : 0);
          break;
        }
        case Value::ValueKind::Cast: {
          const auto *CI = cast<CastInst>(I);
          RTValue V = evalOperand(CI->getOperand(0), Fr);
          Fr.Regs[I] = CI->getCastOp() == CastInst::CastOp::IntToFloat
                           ? RTValue::ofFloat(static_cast<double>(V.I))
                           : RTValue::ofInt(static_cast<int64_t>(V.F));
          break;
        }
        case Value::ValueKind::Br:
          Next = cast<BranchInst>(I)->getTarget();
          break;
        case Value::ValueKind::CondBr: {
          const auto *CB = cast<CondBranchInst>(I);
          RTValue C = evalOperand(CB->getCondition(), Fr);
          Next = C.I != 0 ? CB->getTrueTarget() : CB->getFalseTarget();
          break;
        }
        case Value::ValueKind::Ret: {
          const auto *RI = cast<ReturnInst>(I);
          if (RI->hasReturnValue())
            Ret = evalOperand(RI->getReturnValue(), Fr);
          for (ExecutionObserver *O : Outer.Observers)
            O->onInstruction(*I);
          for (ExecutionObserver *O : Outer.Observers)
            O->onExitFunction(F);
          return Ret;
        }
        case Value::ValueKind::Call: {
          const auto *CI = cast<CallInst>(I);
          std::vector<RTValue> CallArgs;
          for (unsigned A = 0; A < CI->getNumArgs(); ++A)
            CallArgs.push_back(evalOperand(CI->getArg(A), Fr));
          const Function *Callee = CI->getCallee();
          RTValue R = Callee->isDeclaration()
                          ? callIntrinsic(*CI, CallArgs)
                          : callFunction(*Callee, std::move(CallArgs));
          if (!CI->getType()->isVoid())
            Fr.Regs[I] = R;
          break;
        }
        default:
          psc_unreachable("unhandled instruction in interpreter");
        }
        for (ExecutionObserver *O : Outer.Observers)
          O->onInstruction(*I);
        if (Aborted)
          return Ret;
      }
      Block = Next;
    }
    for (ExecutionObserver *O : Outer.Observers)
      O->onExitFunction(F);
    return Ret;
  }

  static RTValue evalBinary(const BinaryInst *BI, const RTValue &L,
                            const RTValue &R) {
    using Op = BinaryInst::BinOp;
    if (BI->getType()->isFloat()) {
      double A = L.F, B = R.F;
      switch (BI->getBinOp()) {
      case Op::Add:
        return RTValue::ofFloat(A + B);
      case Op::Sub:
        return RTValue::ofFloat(A - B);
      case Op::Mul:
        return RTValue::ofFloat(A * B);
      case Op::Div:
        return RTValue::ofFloat(B == 0.0 ? 0.0 : A / B);
      default:
        psc_unreachable("invalid float binop");
      }
    }
    int64_t A = L.I, B = R.I;
    switch (BI->getBinOp()) {
    case Op::Add:
      return RTValue::ofInt(A + B);
    case Op::Sub:
      return RTValue::ofInt(A - B);
    case Op::Mul:
      return RTValue::ofInt(A * B);
    case Op::Div:
      return RTValue::ofInt(B == 0 ? 0 : A / B);
    case Op::Rem:
      return RTValue::ofInt(B == 0 ? 0 : A % B);
    case Op::And:
      return RTValue::ofInt(A & B);
    case Op::Or:
      return RTValue::ofInt(A | B);
    case Op::Xor:
      return RTValue::ofInt(A ^ B);
    case Op::Shl:
      return RTValue::ofInt(A << (B & 63));
    case Op::Shr:
      return RTValue::ofInt(A >> (B & 63));
    }
    psc_unreachable("invalid int binop");
  }

  static bool evalCmp(const CmpInst *CI, const RTValue &L, const RTValue &R) {
    using P = CmpInst::Predicate;
    if (L.Kind == RTValue::RTKind::Float || R.Kind == RTValue::RTKind::Float) {
      double A = L.Kind == RTValue::RTKind::Float ? L.F
                                                  : static_cast<double>(L.I);
      double B = R.Kind == RTValue::RTKind::Float ? R.F
                                                  : static_cast<double>(R.I);
      switch (CI->getPredicate()) {
      case P::EQ:
        return A == B;
      case P::NE:
        return A != B;
      case P::LT:
        return A < B;
      case P::LE:
        return A <= B;
      case P::GT:
        return A > B;
      case P::GE:
        return A >= B;
      }
    }
    int64_t A = L.I, B = R.I;
    switch (CI->getPredicate()) {
    case P::EQ:
      return A == B;
    case P::NE:
      return A != B;
    case P::LT:
      return A < B;
    case P::LE:
      return A <= B;
    case P::GT:
      return A > B;
    case P::GE:
      return A >= B;
    }
    psc_unreachable("invalid predicate");
  }
};

Interpreter::Interpreter(const Module &M) : M(M) {
  P = std::make_unique<Impl>(M, *this);
}

Interpreter::~Interpreter() = default;

RunResult Interpreter::run(const std::string &EntryName) {
  P->Result = RunResult();
  P->Aborted = false;
  P->Budget = MaxInstructions;
  P->Globals.clear();
  P->initGlobals();

  const Function *Entry = M.getFunction(EntryName);
  if (!Entry || Entry->isDeclaration())
    reportFatalError("entry function '" + EntryName + "' not found");

  RTValue R = P->callFunction(*Entry, {});
  P->Result.Completed = !P->Aborted;
  P->Result.ExitValue = R.Kind == RTValue::RTKind::Float
                            ? static_cast<int64_t>(R.F)
                            : R.I;
  return std::move(P->Result);
}
