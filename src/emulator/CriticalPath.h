//===- CriticalPath.h - Plan-constrained ideal-machine critical path -------===//
///
/// \file
/// Reproduces the paper's §6.3 experiment (Fig. 14): the critical path of a
/// program on an ideal machine (unlimited cores, zero-cost communication,
/// perfect memory) under the parallelization each abstraction can justify,
/// measured in dynamic IR instructions that must serialize.
///
/// Methodology (following the paper and Zhang et al., IISWC'21):
///  * OpenMP  — the programmer's plan: worksharing loops run their
///    iterations concurrently (critical/atomic/ordered content serializes);
///    everything else is sequential.
///  * PDG     — every outermost loop is parallelized with the best of
///    DOALL/HELIX/DSWP over the PDG's SCCs; inner loops are sequential.
///  * J&K     — PDG SCCs for outermost loops + developer-expressed inner
///    worksharing loops (when the J&K view proves them DOALL).
///  * PS-PDG  — PS-PDG SCCs for outermost loops + developer-expressed
///    inner loops.
///
/// Per loop invocation the evaluator folds per-iteration costs and takes
/// the best legal technique:
///   CP_seq   = Σ_iter CP(iter)
///   CP_doall = max(max_iter CP(iter), Σ serialized-region cost)
///   CP_helix = Σ_iter seq-SCC cost + max_iter parallel-SCC cost
///   CP_dswp  = max over SCCs of that SCC's total cost
/// A nested invocation contributes its own (already reduced) CP as a single
/// cost attributed to the loop-header terminator of the inner loop.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_EMULATOR_CRITICALPATH_H
#define PSPDG_EMULATOR_CRITICALPATH_H

#include "analysis/FunctionAnalysis.h"
#include "emulator/Interpreter.h"
#include "parallel/AbstractionView.h"
#include "pspdg/Features.h"

#include <map>
#include <memory>

namespace psc {

/// Static per-loop plan for the critical-path evaluation.
struct LoopCPConfig {
  bool AllowDOALL = false;
  bool AllowHELIX = false;
  bool AllowDSWP = false;
  /// Whether critical/atomic/ordered content serializes when this loop runs
  /// in parallel. OpenMP and J&K preserve the program's locks; the PDG
  /// analyzes the sequential version (no locks); the PS-PDG keeps a lock
  /// only when orderless conflicts actually exist (undirected edges carried
  /// at this loop) — otherwise the mutual exclusion is provably vacuous.
  bool CountSerialRegions = false;
  unsigned NumSCCs = 0;
  /// Instruction → SCC class (only instructions of this loop).
  std::map<const Instruction *, unsigned> SCCOf;
  std::vector<bool> SCCIsSeq;
};

/// Precomputed plans for a whole module under one abstraction.
class CriticalPathModel {
public:
  /// \p DepOracles configures the dependence-oracle stack (empty = full
  /// default sound stack; see DepOracle.h) so oracle ablations — and
  /// profile-backed speculation — reach the model too.
  CriticalPathModel(const Module &M, AbstractionKind Kind,
                    const FeatureSet &Features = FeatureSet(),
                    const DepOracleConfig &DepOracles = {});

  AbstractionKind kind() const { return Kind; }
  ModuleAnalyses &analyses() { return MA; }

  /// Config for the loop with header \p Header in \p F; null = sequential.
  const LoopCPConfig *configFor(const Function *F, unsigned Header) const {
    auto It = Configs.find({F, Header});
    return It == Configs.end() ? nullptr : &It->second;
  }

private:
  void planFunction(const Function &F);

  AbstractionKind Kind;
  FeatureSet Features;
  DepOracleConfig DepOracles;
  ModuleAnalyses MA;
  std::map<std::pair<const Function *, unsigned>, LoopCPConfig> Configs;
};

/// Execution observer that accumulates the plan-constrained critical path.
class CriticalPathEvaluator : public ExecutionObserver {
public:
  explicit CriticalPathEvaluator(CriticalPathModel &Model) : Model(Model) {}

  void onInstruction(const Instruction &I) override;
  void onBlockTransfer(const Function &F, const BasicBlock *From,
                       const BasicBlock *To) override;
  void onEnterFunction(const Function &F) override;
  void onExitFunction(const Function &F) override;

  /// Critical path (in dynamic instructions) after the run.
  double criticalPath() const { return FinalCP; }

private:
  struct LoopFrame {
    const Loop *L = nullptr;
    const LoopCPConfig *Cfg = nullptr; ///< Null = forced sequential.
    // Reduced track: per-iteration critical path where nested invocations
    // contribute their already-reduced CP as a lump.
    double IterCP = 0;
    double SumIterCP = 0, MaxIterCP = 0;
    // Raw track: every dynamic instruction of the loop (including nested
    // loops' instructions) attributed by THIS loop's SCC classes — this is
    // what serializes under HELIX (sequential segments) and DSWP (stages).
    double RawSeq = 0, RawSerial = 0;
    std::vector<double> RawSCCTotals;
    uint64_t Iterations = 0;
  };

  struct Activation {
    const Function *F = nullptr;
    const LoopInfo *LI = nullptr;
    std::vector<LoopFrame> LoopStack;
    double BaseCP = 0;
    /// Dynamic directive-region nesting (serialized-region tracking).
    std::vector<DirectiveKind> RegionStack;
  };

  /// \p Raw: attribute to every frame's raw track (true for executed
  /// instructions and call lumps; false for nested-loop lumps, whose
  /// instructions the enclosing frames already saw individually).
  void addCost(double W, bool Serialized, const Instruction *I, bool Raw);
  void foldIteration(LoopFrame &Fr);
  /// Finalizes the top loop frame and propagates its CP to the parent.
  void popLoopFrame();

  bool inSerializedRegion(const Activation &A) const;

  CriticalPathModel &Model;
  std::vector<Activation> Activations;
  double FinalCP = 0;
  double PendingCallCP = 0; ///< Callee CP awaiting the call instruction.
};

/// Convenience: runs \p M under all four abstractions and returns their
/// critical paths, plus the total sequential instruction count.
struct CriticalPathReport {
  double OpenMP = 0, PDG = 0, JK = 0, PSPDG = 0;
  uint64_t TotalDynamicInstructions = 0;
};

CriticalPathReport
evaluateCriticalPaths(const Module &M,
                      uint64_t InstructionBudget = 2'000'000'000ULL,
                      const DepOracleConfig &DepOracles = {});

} // namespace psc

#endif // PSPDG_EMULATOR_CRITICALPATH_H
