//===- MemoryModel.h - Memory accesses and aliasing -------------*- C++ -*-===//
///
/// \file
/// Classifies every memory-touching instruction of a function into a
/// MemAccess (base object + affine subscript) and answers base-object alias
/// queries. Aliasing rules (documented in DESIGN.md):
///
///   * distinct allocas never alias;
///   * distinct globals never alias;
///   * allocas never alias globals or arguments;
///   * distinct array arguments never alias (PSC arrays are restrict, the
///     Fortran-flavoured assumption the NAS kernels satisfy);
///   * an array argument may alias any global (the caller may pass one);
///   * calls to defined functions and to 'print' are modeled as accessing
///     an unknown object (alias with everything / other prints).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_ANALYSIS_MEMORYMODEL_H
#define PSPDG_ANALYSIS_MEMORYMODEL_H

#include "analysis/AffineExpr.h"
#include "ir/Function.h"

#include <vector>

namespace psc {

/// One memory access performed by an instruction.
struct MemAccess {
  enum class AccessKind {
    Read,     ///< Load.
    Write,    ///< Store.
    ReadWrite ///< Opaque call / externally-visible output.
  };

  Instruction *I = nullptr;
  AccessKind Kind = AccessKind::Read;

  /// Base object (AllocaInst, GlobalVariable, or array Argument); null for
  /// opaque accesses (calls).
  Value *Base = nullptr;

  /// True for whole-scalar accesses (direct load/store of a variable, not
  /// through a GEP); Subscript is then meaningless.
  bool IsScalar = true;

  /// Affine form of the element subscript for array accesses.
  AffineExpr Subscript;

  /// True for 'print' calls: I/O order matters only against other I/O.
  bool IsIO = false;

  bool isWrite() const { return Kind != AccessKind::Read; }
  bool isRead() const { return Kind != AccessKind::Write; }
  bool isOpaque() const { return Base == nullptr && !IsIO; }
};

/// Walks GEP chains to the underlying object; returns null when the pointer
/// does not resolve to an alloca/global/argument.
Value *findUnderlyingObject(Value *Ptr);

/// Walks GEP chains to the base pointer value without classifying it (the
/// result may be an alloca, global, argument, or any other pointer
/// producer). The single shared spelling of the "strip GEPs" walk — the
/// plan compiler, value-speculation analysis, and sound-alternative view
/// must all agree on what "the storage" of an access is.
inline const Value *rootStorage(const Value *Ptr) {
  while (const auto *G = dyn_cast<GEPInst>(Ptr))
    Ptr = G->getBase();
  return Ptr;
}

/// Alias verdict for two base objects under the rules above. Null bases
/// (opaque) alias everything.
enum class AliasResult { NoAlias, MayAlias };
AliasResult aliasBases(const Value *A, const Value *B);

/// Collects the memory accesses of \p F in program order (block order, then
/// instruction order). Marker intrinsics are skipped; pure math intrinsics
/// contribute nothing.
std::vector<MemAccess> collectMemAccesses(const Function &F);

} // namespace psc

#endif // PSPDG_ANALYSIS_MEMORYMODEL_H
