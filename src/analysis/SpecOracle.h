//===- SpecOracle.h - Profile-backed speculative dependence oracle -*- C++ -*-===//
///
/// \file
/// The speculation-aware member of the dependence-oracle stack (the SCAF
/// shape: an oracle that answers under profile-backed assumptions rather
/// than proofs). Unlike the sound oracles it does NOT join the first-claim
/// chain walk: DepOracleStack consults it as a *downgrade stage*, only for
/// MemCarried queries the sound chain answered MayDep. It downgrades such
/// a query to NoDep — marked Speculative — exactly when
///
///   * both accesses have known base objects (no opaque calls, no I/O:
///     their effects cannot be watched by the runtime validator),
///   * the training profile observed the carrying loop (and is not stale
///     for the function), and
///   * the (src, dst) instruction pair never manifested in training.
///
/// Every speculative NoDep obligates the runtime: the plan that relies on
/// it carries the assumption, the engine watches both endpoints, and a
/// manifestation at run time triggers rollback (DESIGN.md §9).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_ANALYSIS_SPECORACLE_H
#define PSPDG_ANALYSIS_SPECORACLE_H

#include "analysis/DepOracle.h"

namespace psc {

class DepProfile;

class SpecOracle : public DepOracle {
public:
  /// \p Profile must outlive the oracle.
  SpecOracle(const FunctionAnalysis &FA, const DepProfile &Profile);

  const char *name() const override { return specOracleName(); }
  bool answer(const DepQuery &Q, DepResult &R) const override;

private:
  const FunctionAnalysis &FA;
  const DepProfile &Profile;
  /// Staleness guard inputs, computed once: profile indices only apply to
  /// the same function body (DepProfile::observed).
  uint64_t BodyHash = 0;
};

} // namespace psc

#endif // PSPDG_ANALYSIS_SPECORACLE_H
