//===- DepOracle.h - Collaborative dependence-oracle stack ------*- C++ -*-===//
///
/// \file
/// The dependence-analysis layer as a chain-of-responsibility stack of
/// independent *oracles* (the SCAF shape): each oracle answers the
/// dependence queries it is certain about with a lattice verdict and
/// forwards everything else down the chain. The stack front-end memoizes
/// results per (loop, instruction-pair) and keeps per-oracle statistics so
/// oracle ablations are a command-line experiment (`pscc --dep-oracles`)
/// instead of a code fork. See DESIGN.md §7 for the full contract.
///
/// The verdict lattice:
///
///   NoDep   — the oracle *disproves* the dependence;
///   MayDep  — the oracle cannot disprove it: the dependence is assumed
///             (the conservative default of the whole stack);
///   MustDep — the dependence provably exists (e.g. SSA def→use).
///
/// Chaining contract: an oracle may only claim a query it can decide
/// without help, and the answer domains of the registered oracles are
/// mutually disjoint. Consequently the *verdicts* of a stack are
/// independent of oracle order; only the attribution (which oracle
/// answered) and the statistics change. Removing a disproof oracle can
/// only lose NoDep answers — queries then fall through to the MayDep
/// default, i.e. ablation is always sound, never unsound.
///
/// The speculative oracles ("spec", SpecOracle.h; "valuespec",
/// ValueSpec.h) sit OUTSIDE the sound chain: they are downgrade stages the
/// stack consults only after the sound chain has answered MayDep on a
/// MemCarried query — the memory stage first, then the value stage for
/// what it declined — and their NoDep answers are marked speculative:
/// profile-backed assumptions the runtime must validate, not proofs. See
/// DESIGN.md §9–§10.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_ANALYSIS_DEPORACLE_H
#define PSPDG_ANALYSIS_DEPORACLE_H

#include "analysis/FunctionAnalysis.h"
#include "analysis/MemoryModel.h"

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace psc {

/// Dependence kinds. Register/Control are never removable by parallel
/// semantics; Memory* edges are the ones the PS-PDG features attack.
enum class DepKind { Register, MemoryRAW, MemoryWAR, MemoryWAW, Control };

/// One dependence edge Src → Dst.
struct DepEdge {
  Instruction *Src = nullptr;
  Instruction *Dst = nullptr;
  DepKind Kind = DepKind::Register;

  /// True if the dependence can occur within a single iteration of the
  /// innermost loop containing both ends (or outside any loop).
  bool Intra = true;

  /// Headers (block indices) of loops at which the dependence is carried.
  std::set<unsigned> CarriedAtHeaders;

  /// Subset of CarriedAtHeaders where the dependence *provably manifests*:
  /// the affine oracle found a definite constant-distance conflict (e.g.
  /// a[j] vs a[j-1] — every non-delta term cancels exactly and the offset
  /// solves to an integer iteration distance within the trip count). A
  /// `parallel for` annotation resolves *uncertainty*; it cannot erase a
  /// proof, so views must never drop these headers on the annotation's
  /// authority (PSPDGBuilder context rule, AbstractionView::jkRemovable).
  std::set<unsigned> MustCarriedAtHeaders;

  /// Base object for memory dependences; null for opaque/IO conflicts.
  const Value *MemObject = nullptr;

  /// True when the dependence is on the canonical induction variable of
  /// the carrying loop (the IV update chain): removable for any loop with
  /// a computable trip count.
  bool IsIVDep = false;

  /// True when both endpoints are I/O calls (print ordering).
  bool IsIO = false;

  /// Headers at which the dependence was *speculatively disproven*: the
  /// sound chain answered MayDep but the spec oracle's profile never saw
  /// the dependence manifest. Disjoint from CarriedAtHeaders. Consumers
  /// must either treat these headers as carried (ignore speculation) or
  /// convert them into runtime-validated assumptions (AbstractionView).
  std::set<unsigned> SpecCarriedAtHeaders;

  /// Headers at which the dependence was *value-speculatively* disproven
  /// (ValueSpec.h): the carried value is predictable (invariant / strided /
  /// write-first scalar) or reduction-combinable, so the runtime can break
  /// the chain by prediction + validation instead of conflict watching.
  /// Disjoint from both sets above; consumers convert these into per-value
  /// assumptions (AbstractionView::viewFor → LoopPlanView::ValueAssumptions).
  std::set<unsigned> ValueSpecCarriedAtHeaders;

  /// Attribution: for every header in CarriedAtHeaders, Spec- or
  /// ValueSpecCarriedAtHeaders, the name of the oracle whose verdict put
  /// it there (DepResult::Oracle — static strings). This is the evidence
  /// the plan-decision log surfaces via `pscc --explain`: which oracle
  /// kept (or speculatively removed) the dependence that killed a
  /// candidate schedule.
  std::map<unsigned, const char *> OracleAtHeaders;

  bool isMemory() const {
    return Kind == DepKind::MemoryRAW || Kind == DepKind::MemoryWAR ||
           Kind == DepKind::MemoryWAW;
  }
  bool isCarriedAt(unsigned Header) const {
    return CarriedAtHeaders.count(Header) != 0;
  }
  bool isMustCarriedAt(unsigned Header) const {
    return MustCarriedAtHeaders.count(Header) != 0;
  }
  bool isSpecCarriedAt(unsigned Header) const {
    return SpecCarriedAtHeaders.count(Header) != 0;
  }
  bool isValueSpecCarriedAt(unsigned Header) const {
    return ValueSpecCarriedAtHeaders.count(Header) != 0;
  }
  /// The owning oracle of this edge's verdict at \p Header (null when the
  /// edge has no carried/speculative entry for it).
  const char *oracleAt(unsigned Header) const {
    auto It = OracleAtHeaders.find(Header);
    return It == OracleAtHeaders.end() ? nullptr : It->second;
  }
};

/// Three-point verdict lattice (see file comment).
enum class DepVerdict { NoDep, MayDep, MustDep };

/// What a query asks.
enum class DepQueryKind {
  Register,   ///< Does Dst use Src's SSA result?
  Control,    ///< Does branch Src control Dst (candidate from the PDF)?
  MemIntra,   ///< Can the two accesses conflict within one iteration of
              ///< their innermost common loop (or anywhere, loop-free)?
  MemCarried, ///< Can SrcAcc (iteration i of L) conflict with DstAcc
              ///< (iteration i + delta, delta >= 1)?
};

/// One dependence question. Memory queries carry the classified accesses;
/// Control queries carry the candidate gating loop in L (the innermost
/// loop of the branch; null when the branch is not in a loop).
struct DepQuery {
  DepQueryKind Kind = DepQueryKind::MemIntra;
  const Instruction *Src = nullptr;
  const Instruction *Dst = nullptr;
  const MemAccess *SrcAcc = nullptr; ///< Memory queries only.
  const MemAccess *DstAcc = nullptr; ///< Memory queries only.
  const Loop *L = nullptr;           ///< MemCarried / Control candidate loop.
};

/// Answer: verdict plus attribution. Kind/Carried are meaningful only when
/// the verdict is not NoDep.
struct DepResult {
  DepVerdict Verdict = DepVerdict::MayDep;
  DepKind Kind = DepKind::Register; ///< Dependence kind when one exists.
  bool Carried = false;             ///< Carried by the query's loop.
  const char *Oracle = "default";   ///< Name of the responding oracle.

  /// True when the verdict is a *speculative* NoDep: the sound chain said
  /// MayDep and a downgrade stage removed it under a profile-backed
  /// assumption that the runtime must validate.
  bool Speculative = false;

  /// Refines Speculative: the downgrade came from the *value*-speculation
  /// stage (predictable value / combinable reduction, ValueSpec.h) rather
  /// than the memory stage (never-manifested conflict, SpecOracle.h).
  bool ValueSpec = false;

  bool disproven() const { return Verdict == DepVerdict::NoDep; }
};

/// One analysis module in the stack. Implementations must obey the
/// chaining contract from the file comment: claim a query (return true and
/// fill \p R) only when the answer is decidable locally, otherwise forward
/// (return false).
class DepOracle {
public:
  virtual ~DepOracle() = default;
  virtual const char *name() const = 0;
  virtual bool answer(const DepQuery &Q, DepResult &R) const = 0;
};

/// Names accepted by createDepOracles / `pscc --dep-oracles`, in default
/// chain order: ssa, control, io, opaque, alias, affine. The speculative
/// oracle's name ("spec") is NOT in this list: it is not part of the sound
/// chain and needs a dependence profile to construct (SpecOracle.h).
const std::vector<std::string> &knownDepOracleNames();
bool isKnownDepOracleName(const std::string &Name);

/// The speculative oracles' reserved names ("spec" = memory speculation,
/// "valuespec" = value/reduction speculation).
const char *specOracleName();
const char *valueSpecOracleName();

class DepProfile; // profiling/DepProfile.h

/// How to assemble a dependence-oracle stack. Implicitly convertible from
/// a plain name list so sound-only call sites keep their vector-of-names
/// spelling. Naming "spec" or "valuespec" requires a profile; the profile
/// must outlive every stack built from this config. Supplying a profile
/// without naming either enables BOTH downgrade stages (the default
/// speculation configuration); naming one of them enables exactly the
/// named subset (the ablation surface).
struct DepOracleConfig {
  std::vector<std::string> Names;          ///< Empty = default sound stack.
  const DepProfile *SpecProfile = nullptr; ///< Required for spec stages.

  DepOracleConfig() = default;
  DepOracleConfig(const std::vector<std::string> &N) : Names(N) {}
  DepOracleConfig(std::vector<std::string> &&N) : Names(std::move(N)) {}
  DepOracleConfig(std::initializer_list<std::string> N) : Names(N) {}
  DepOracleConfig(std::vector<std::string> N, const DepProfile *P)
      : Names(std::move(N)), SpecProfile(P) {}

  bool wantsSpec() const;
  bool wantsValueSpec() const;
};

/// One speculative assumption a plan depends on: the dependence Src → Dst,
/// carried at loop header Header, is assumed absent because the training
/// profile never saw it manifest. Ids are per-loop ordinals assigned by the
/// view; Src/DstIdx are FunctionAnalysis instruction indices (the profile
/// key space).
struct SpecAssumption {
  unsigned Id = 0;
  unsigned Header = 0;
  const Instruction *Src = nullptr;
  const Instruction *Dst = nullptr;
  unsigned SrcIdx = 0;
  unsigned DstIdx = 0;
};

/// One *value* assumption a plan depends on: the carried dependences on
/// \p Storage at loop \p Header were removed because the training profile
/// predicts the storage's value behavior (scalar classes) or licenses a
/// combiner-merged reduction (ValueSpec.h). The plan compiler resolves the
/// concrete obligation (prediction table entry or promoted reduction) from
/// the profile; ids are per-loop ordinals assigned by the view.
struct ValueAssumption {
  unsigned Id = 0;
  unsigned Header = 0;
  const Value *Storage = nullptr;
  bool IsScalar = true; ///< Scalar prediction vs. reduction promotion.
};

/// Creates one oracle by name ("ssa", "control", "io", "opaque", "alias",
/// "affine"); null for an unknown name.
std::unique_ptr<DepOracle> createDepOracle(const std::string &Name,
                                           const FunctionAnalysis &FA);

/// Creates the oracle chain for \p Names in the given order; an empty list
/// means the full default stack. An unknown or duplicate name is a fatal
/// error — validate user-supplied names with isKnownDepOracleName first.
std::vector<std::unique_ptr<DepOracle>>
createDepOracles(const FunctionAnalysis &FA,
                 const std::vector<std::string> &Names = {});

/// The collaborative front-end: owns the oracle chain, the classified
/// memory accesses of the function, the per-(loop, instruction-pair)
/// memoizing query cache, and per-oracle statistics. Consumers (PDG,
/// PS-PDG builder, abstraction views, plan compiler) share one stack per
/// function so repeated queries are served from the cache.
class DepOracleStack {
public:
  /// Default stack, a named subset/reordering (ablation), or a config
  /// naming "spec" with a training profile (speculation).
  explicit DepOracleStack(const FunctionAnalysis &FA,
                          const DepOracleConfig &Config = {});
  DepOracleStack(const FunctionAnalysis &FA,
                 std::vector<std::unique_ptr<DepOracle>> Chain);

  /// Answers \p Q through the chain, memoized. Unclaimed queries get the
  /// conservative MayDep default. When a spec oracle is configured, a
  /// MayDep answer to a MemCarried query is offered to it for a
  /// speculative downgrade (the result is then marked Speculative).
  DepResult query(const DepQuery &Q);

  /// True when a speculative downgrade stage is configured.
  bool speculative() const { return Spec != nullptr || VSpec != nullptr; }

  const FunctionAnalysis &functionAnalysis() const { return FA; }

  /// The function's memory accesses in program order (shared by every
  /// consumer so query keys stay stable).
  const std::vector<MemAccess> &accesses() const { return Accesses; }

  size_t numOracles() const { return Oracles.size(); }
  const DepOracle &oracle(size_t I) const { return *Oracles[I]; }

  struct OracleStats {
    const char *Name = "";
    uint64_t Answered = 0; ///< Queries this oracle claimed (cache misses).
    uint64_t NoDep = 0;    ///< ... of which disproofs.
    uint64_t MayDep = 0;
    uint64_t MustDep = 0;
  };
  struct CacheStats {
    uint64_t Queries = 0; ///< Total queries, including cache hits.
    uint64_t Hits = 0;
    uint64_t Fallback = 0; ///< Misses no oracle claimed (MayDep default).
    double hitRate() const {
      return Queries ? static_cast<double>(Hits) / Queries : 0.0;
    }
  };
  /// Per-oracle counters, in chain order; the spec and valuespec oracles
  /// (when configured) contribute trailing rows.
  std::vector<OracleStats> oracleStats() const;
  const CacheStats &cacheStats() const { return Cache; }
  void resetStats();

  /// Cross-session memoization (the resident analysis service): the memo
  /// table of a *non-speculative* default-chain stack is a pure function
  /// of the function body, so it can be exported after a session's
  /// queries and seeded into a fresh stack over a structurally identical
  /// body (keyed by functionBodyHash in the service's MemoCache).
  /// Speculative stacks also depend on the training profile; exporting
  /// them returns an empty table so stale assumptions never leak across
  /// requests.
  std::unordered_map<uint64_t, DepResult> exportMemo() const;
  /// Installs \p Seed as the starting memo table; seeded answers count as
  /// cache hits. Refused (returns false) on speculative stacks.
  bool seedMemo(const std::unordered_map<uint64_t, DepResult> &Seed);

private:
  const FunctionAnalysis &FA;
  std::vector<std::unique_ptr<DepOracle>> Oracles;
  /// The speculative downgrade stages; not part of the sound chain walk.
  /// The memory stage (Spec) is consulted first, the value stage (VSpec)
  /// only for queries the memory stage declines — a manifested scalar
  /// chain can only fall to value prediction, a never-manifested conflict
  /// is cheaper to watch than to predict.
  std::unique_ptr<DepOracle> Spec;
  std::unique_ptr<DepOracle> VSpec;
  size_t SpecStatsIdx = 0, VSpecStatsIdx = 0;
  std::vector<MemAccess> Accesses;
  std::vector<OracleStats> Stats; // parallel to Oracles (+ spec rows)
  CacheStats Cache;
  std::unordered_map<uint64_t, DepResult> Memo;
};

/// Builds the whole-function dependence edge set by issuing every query
/// through \p Stack. With the full default stack the result is
/// edge-for-edge identical to the seed monolithic analysis (differential
/// test: tests/depquery). Each call re-issues the queries — repeated
/// builds over one stack are served by its cache.
std::vector<DepEdge> buildDepEdges(DepOracleStack &Stack);

} // namespace psc

#endif // PSPDG_ANALYSIS_DEPORACLE_H
