//===- ReferenceDependence.cpp - Frozen seed dependence analysis -*- C++ -*-===//
///
/// The seed monolithic implementation, kept as the differential-testing
/// golden reference for the DepOracle stack. See ReferenceDependence.h.
///
//===----------------------------------------------------------------------===//

#include "analysis/ReferenceDependence.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace psc;

namespace {

/// Saturating interval arithmetic over "practically infinite" bounds.
/// Coefficients and IV ranges in PSC programs are small; Huge is far above
/// any product that can occur, so saturation only encodes "unbounded".
constexpr long Huge = 4'000'000'000'000'000L;

long clampMul(long A, long B) {
  __int128 P = static_cast<__int128>(A) * B;
  if (P > Huge)
    return Huge;
  if (P < -Huge)
    return -Huge;
  return static_cast<long>(P);
}

long clampAdd(long A, long B) {
  __int128 S = static_cast<__int128>(A) + B;
  if (S > Huge)
    return Huge;
  if (S < -Huge)
    return -Huge;
  return static_cast<long>(S);
}

struct Range {
  long Min = 0, Max = 0;

  static Range point(long V) { return {V, V}; }
  static Range unbounded() { return {-Huge, Huge}; }

  Range operator+(const Range &O) const {
    return {clampAdd(Min, O.Min), clampAdd(Max, O.Max)};
  }
  Range scaledBy(long K) const {
    long A = clampMul(Min, K), B = clampMul(Max, K);
    return {std::min(A, B), std::max(A, B)};
  }
  bool contains(long V) const { return Min <= V && V <= Max; }
};

/// Innermost loop containing \p I whose canonical counter is \p Sym.
const Loop *bindingLoop(const FunctionAnalysis &FA, const Instruction *I,
                        const Value *Sym) {
  for (Loop *L = FA.loopOf(I); L; L = L->getParent()) {
    const ForLoopMeta *Meta = FA.forMeta(L);
    if (Meta && Meta->CounterStorage == Sym)
      return L;
  }
  return nullptr;
}

Range loopRange(const FunctionAnalysis &FA, const Loop *L) {
  if (!L)
    return Range::unbounded();
  const ForLoopMeta *Meta = FA.forMeta(L);
  long Min, Max;
  if (Meta && Meta->ivRange(Min, Max))
    return {Min, Max};
  return Range::unbounded();
}

/// The seed DependenceInfo, repackaged without behavioral change.
class ReferenceImpl {
public:
  explicit ReferenceImpl(const FunctionAnalysis &FA) : FA(FA) {
    Accesses = collectMemAccesses(FA.function());
    computeRegisterDeps();
    computeControlDeps();
    computeMemoryDeps();
  }

  std::vector<DepEdge> take() { return std::move(Edges); }

private:
  void computeRegisterDeps();
  void computeControlDeps();
  void computeMemoryDeps();

  /// Can accesses \p P (in an earlier iteration of \p L) and \p Q (in a
  /// later one) touch the same location? 0 = no, 1 = maybe, 2 = provably
  /// (definite constant-distance conflict — must-carried).
  int carriedDepPossible(const MemAccess &P, const MemAccess &Q,
                         const Loop &L) const;
  /// True if \p P and \p Q can touch the same location within one iteration
  /// of their innermost common loop (or anywhere, when loop-free).
  bool intraDepPossible(const MemAccess &P, const MemAccess &Q) const;

  /// Classification of an affine symbol relative to a loop.
  enum class SymClass { IVOfLoop, IVOfInner, InvariantInLoop, Unknown };
  SymClass classifySymbol(const Value *Sym, const Loop &L) const;

  /// Inclusive interval with infinities; helper for the Banerjee test.
  struct Interval {
    bool Valid = true; ///< false = unbounded (contains everything).
    long Min = 0, Max = 0;
    bool contains(long V) const { return !Valid || (Min <= V && V <= Max); }
  };
  Interval ivRangeOf(const Loop &L) const;

  bool hasStoreTo(const Value *Storage, const Loop &L) const;

  const FunctionAnalysis &FA;
  std::vector<MemAccess> Accesses;
  std::vector<DepEdge> Edges;
};

void ReferenceImpl::computeRegisterDeps() {
  for (Instruction *I : FA.instructions()) {
    for (Value *Op : I->operands()) {
      auto *Def = dyn_cast<Instruction>(Op);
      if (!Def)
        continue;
      DepEdge E;
      E.Src = Def;
      E.Dst = I;
      E.Kind = DepKind::Register;
      E.Intra = true;
      Edges.push_back(std::move(E));
    }
  }
}

void ReferenceImpl::computeControlDeps() {
  const Function &F = FA.function();
  const auto &Frontiers = FA.postDomTree().frontiers();
  unsigned VirtualExit = FA.postDomTree().getVirtualExit();

  for (unsigned B = 0; B < F.getNumBlocks(); ++B) {
    if (!FA.cfg().isReachable(B))
      continue;
    for (unsigned Controlling : Frontiers[B]) {
      if (Controlling == VirtualExit || Controlling >= F.getNumBlocks())
        continue;
      Instruction *Branch = F.getBlock(Controlling)->getTerminator();
      if (!Branch || !isa<CondBranchInst>(Branch))
        continue;
      // Carried at the innermost loop containing both the branch and the
      // dependent block: the branch gates later iterations too.
      Loop *BranchLoop = FA.loopInfo().getLoopFor(Controlling);
      std::set<unsigned> Carried;
      if (BranchLoop && BranchLoop->contains(B))
        Carried.insert(BranchLoop->getHeader());

      for (Instruction *I : *F.getBlock(B)) {
        DepEdge E;
        E.Src = Branch;
        E.Dst = I;
        E.Kind = DepKind::Control;
        E.Intra = true;
        E.CarriedAtHeaders = Carried;
        Edges.push_back(std::move(E));
      }
    }
  }
}

ReferenceImpl::SymClass ReferenceImpl::classifySymbol(const Value *Sym,
                                                      const Loop &L) const {
  // Used only for symbols with no binding loop (see bindingLoop below):
  // invariant when nothing in L stores it.
  return hasStoreTo(Sym, L) ? SymClass::Unknown : SymClass::InvariantInLoop;
}

bool ReferenceImpl::hasStoreTo(const Value *Storage, const Loop &L) const {
  const Function &F = FA.function();
  for (unsigned B : L.blocks())
    for (Instruction *I : *F.getBlock(B))
      if (auto *SI = dyn_cast<StoreInst>(I))
        if (SI->getPointer() == Storage)
          return true;
  return false;
}

ReferenceImpl::Interval ReferenceImpl::ivRangeOf(const Loop &L) const {
  Interval R;
  const ForLoopMeta *Meta = FA.forMeta(&L);
  long Min, Max;
  if (Meta && Meta->ivRange(Min, Max)) {
    R.Min = Min;
    R.Max = Max;
    return R;
  }
  R.Valid = false;
  return R;
}

int ReferenceImpl::carriedDepPossible(const MemAccess &P, const MemAccess &Q,
                                      const Loop &L) const {
  // Non-affine / opaque / scalar cases are resolved by the caller; here both
  // are array accesses on the same (or may-aliasing) base.
  if (!P.Subscript.Valid || !Q.Subscript.Valid)
    return 1;

  const ForLoopMeta *LMeta = FA.forMeta(&L);
  const Value *LCounter =
      (LMeta && LMeta->Canonical) ? LMeta->CounterStorage : nullptr;
  long Trip = LMeta ? LMeta->tripCount() : -1;

  // Accumulate the interval of  Sub_P(iter i) - Sub_Q(iter i + delta)
  // minus its constant part, then ask whether the constant can be canceled.
  Range Sum = Range::point(0);
  long CoeffPi = 0, CoeffQi = 0; // coefficients of the IV of L on each side

  // Shared (invariant) symbols accumulate a combined coefficient.
  std::map<const Value *, std::pair<long, const Loop *>> Shared;

  auto AddSide = [&](const MemAccess &A, long Sign, long &IVCoeff) -> bool {
    for (auto &[Sym, C] : A.Subscript.Coeffs) {
      const Loop *B = bindingLoop(FA, A.I, Sym);
      if (B && FA.forMeta(B) == LMeta) {
        IVCoeff = C;
        continue;
      }
      if (B && L.encloses(B)) {
        // IV of a loop nested in L: independent between the two instances.
        Sum = Sum + loopRange(FA, B).scaledBy(Sign * C);
        continue;
      }
      if (B) {
        // IV of a loop enclosing L: same value for both instances.
        Shared[Sym].first += Sign * C;
        Shared[Sym].second = B;
        continue;
      }
      // Plain variable: invariant in L → shared; else unknown.
      if (classifySymbol(Sym, L) == SymClass::Unknown)
        return false;
      Shared[Sym].first += Sign * C;
      Shared[Sym].second = nullptr;
    }
    return true;
  };

  if (!AddSide(P, +1, CoeffPi) || !AddSide(Q, -1, CoeffQi))
    return 1; // unknown symbol → conservative

  // Shared symbols: coefficient difference times an (often unknown) value.
  for (auto &[Sym, Entry] : Shared) {
    auto &[Coeff, BindLoop] = Entry;
    if (Coeff == 0)
      continue;
    Sum = Sum + loopRange(FA, BindLoop).scaledBy(Coeff);
  }

  // IV of L: the later instance runs delta iterations further, so its IV
  // value is i + delta * Step (Step may be negative — a decreasing loop's
  // later iterations have SMALLER IV values):
  //   Sub_P(i) - Sub_Q(i + delta*Step)
  //     = (CoeffP - CoeffQ) * i  -  CoeffQ * Step * delta,   delta >= 1.
  // (Step-sign fix and the definite constant-distance detection applied in
  // lockstep with the oracle stack so the stack-vs-reference differential
  // stays edge-for-edge identical.)
  if (LCounter) {
    Range IV = Range::unbounded();
    Interval IVI = ivRangeOf(L);
    if (IVI.Valid)
      IV = {IVI.Min, IVI.Max};
    Sum = Sum + IV.scaledBy(CoeffPi - CoeffQi);
    long MaxDelta = Trip > 1 ? Trip - 1 : (Trip < 0 ? Huge : 0);
    if (MaxDelta == 0)
      return 0; // single-iteration loop: nothing is carried
    bool ExactZero = Sum.Min == 0 && Sum.Max == 0;
    long PerDelta = clampMul(-CoeffQi, LMeta->Step);
    Range Delta = {1, MaxDelta};
    Sum = Sum + Delta.scaledBy(PerDelta);
    long Target = Q.Subscript.Constant - P.Subscript.Constant;
    if (!Sum.contains(Target))
      return 0;
    // Definite distance: every non-delta term canceled exactly and the
    // constant offset solves to an integer delta within the trip count
    // (a[j] vs a[j-1] → delta = 1): the conflict provably manifests.
    if (ExactZero && PerDelta != 0 && MaxDelta != Huge &&
        Target % PerDelta == 0) {
      long DeltaVal = Target / PerDelta;
      if (DeltaVal >= 1 && DeltaVal <= MaxDelta)
        return 2;
    }
    return 1;
  }
  // Non-canonical loop: if either side references any symbol stored in L
  // we already bailed; subscripts are L-invariant, so the same element is
  // touched every iteration.
  if (CoeffPi != 0 || CoeffQi != 0)
    return 1;

  long Target = Q.Subscript.Constant - P.Subscript.Constant;
  return Sum.contains(Target) ? 1 : 0;
}

bool ReferenceImpl::intraDepPossible(const MemAccess &P,
                                     const MemAccess &Q) const {
  if (!P.Subscript.Valid || !Q.Subscript.Valid)
    return true;

  const Loop *C = FA.commonLoop(P.I, Q.I);

  Range Sum = Range::point(0);
  std::map<const Value *, std::pair<long, const Loop *>> Shared;

  auto AddSide = [&](const MemAccess &A, long Sign) -> bool {
    for (auto &[Sym, Coeff] : A.Subscript.Coeffs) {
      const Loop *B = bindingLoop(FA, A.I, Sym);
      if (B && C && C->encloses(B) && B != C) {
        // Loop nested inside the common loop: iterates within one common
        // iteration → independent values on each side.
        Sum = Sum + loopRange(FA, B).scaledBy(Sign * Coeff);
        continue;
      }
      if (B) {
        // Common loop itself or an enclosing loop: same value both sides.
        Shared[Sym].first += Sign * Coeff;
        Shared[Sym].second = B;
        continue;
      }
      // Plain variable: same value if not stored within the common scope.
      if (C && classifySymbol(Sym, *C) == SymClass::Unknown)
        return false;
      Shared[Sym].first += Sign * Coeff;
      Shared[Sym].second = nullptr;
    }
    return true;
  };

  if (!AddSide(P, +1) || !AddSide(Q, -1))
    return true;

  for (auto &[Sym, Entry] : Shared) {
    auto &[Coeff, BindLoop] = Entry;
    if (Coeff == 0)
      continue;
    Sum = Sum + loopRange(FA, BindLoop).scaledBy(Coeff);
  }

  long Target = Q.Subscript.Constant - P.Subscript.Constant;
  return Sum.contains(Target);
}

void ReferenceImpl::computeMemoryDeps() {
  // All loops containing both instructions, innermost to outermost.
  auto CommonLoops = [&](Instruction *A, Instruction *B) {
    std::vector<const Loop *> Out;
    for (Loop *L = FA.loopOf(A); L; L = L->getParent())
      if (L->contains(B->getParent()->getIndex()))
        Out.push_back(L);
    return Out;
  };

  auto KindOf = [](const MemAccess &Src, const MemAccess &Dst) {
    if (Src.isWrite() && Dst.isWrite())
      return DepKind::MemoryWAW;
    if (Src.isWrite())
      return DepKind::MemoryRAW;
    return DepKind::MemoryWAR;
  };

  // Self-dependences: one static write (or I/O / opaque call) conflicting
  // with its own instances in later iterations.
  for (const MemAccess &A : Accesses) {
    if (!A.isWrite())
      continue;
    std::set<unsigned> Carried, Must;
    for (const Loop *L : CommonLoops(A.I, A.I)) {
      int Dep;
      if (A.isOpaque() || A.IsIO || A.IsScalar)
        Dep = 1;
      else
        Dep = carriedDepPossible(A, A, *L);
      if (Dep) {
        Carried.insert(L->getHeader());
        if (Dep == 2)
          Must.insert(L->getHeader());
      }
    }
    if (Carried.empty())
      continue;
    DepEdge E;
    E.Src = A.I;
    E.Dst = A.I;
    E.Kind = A.isRead() ? DepKind::MemoryRAW : DepKind::MemoryWAW;
    E.Intra = false;
    E.CarriedAtHeaders = Carried;
    E.MustCarriedAtHeaders = Must;
    E.MemObject = A.Base;
    E.IsIO = A.IsIO;
    if (A.Base)
      for (unsigned H : Carried) {
        const ForLoopMeta *Meta =
            FA.function().getParent()->getParallelInfo().getForLoopMeta(
                FA.function().getBlock(H));
        if (Meta && Meta->Canonical && Meta->CounterStorage == A.Base)
          E.IsIVDep = true;
      }
    Edges.push_back(std::move(E));
  }

  for (size_t AI = 0; AI < Accesses.size(); ++AI) {
    for (size_t BI = AI + 1; BI < Accesses.size(); ++BI) {
      const MemAccess &A = Accesses[AI];
      const MemAccess &B = Accesses[BI];
      if (!A.isWrite() && !B.isWrite())
        continue;

      // I/O ordering: prints conflict only with other prints/opaque calls.
      if (A.IsIO != B.IsIO && !A.isOpaque() && !B.isOpaque())
        continue;

      bool SameScalarObject = false;
      bool Conservative = false;
      if (A.isOpaque() || B.isOpaque() || (A.IsIO && B.IsIO)) {
        Conservative = true;
      } else if (aliasBases(A.Base, B.Base) == AliasResult::NoAlias) {
        continue;
      } else if (A.Base != B.Base) {
        Conservative = true; // may-alias distinct bases (arg vs global)
      } else if (A.IsScalar || B.IsScalar) {
        SameScalarObject = true;
      }

      const Value *Obj = A.Base == B.Base ? A.Base : nullptr;
      std::vector<const Loop *> Loops = CommonLoops(A.I, B.I);

      // Intra-iteration dependence, directed by program order (A first).
      bool Intra = Conservative || SameScalarObject || intraDepPossible(A, B);

      // Carried dependences per loop, per direction.
      std::set<unsigned> CarriedAB, CarriedBA, MustAB, MustBA;
      for (const Loop *L : Loops) {
        int AB, BA;
        if (Conservative || SameScalarObject) {
          AB = BA = 1;
        } else {
          AB = carriedDepPossible(A, B, *L);
          BA = carriedDepPossible(B, A, *L);
        }
        if (AB) {
          CarriedAB.insert(L->getHeader());
          if (AB == 2)
            MustAB.insert(L->getHeader());
        }
        if (BA) {
          CarriedBA.insert(L->getHeader());
          if (BA == 2)
            MustBA.insert(L->getHeader());
        }
      }

      auto IsIVObject = [&](const std::set<unsigned> &Headers) {
        if (!Obj)
          return false;
        for (unsigned H : Headers) {
          const ForLoopMeta *Meta = FA.function().getParent()
                                        ->getParallelInfo()
                                        .getForLoopMeta(
                                            FA.function().getBlock(H));
          if (Meta && Meta->Canonical && Meta->CounterStorage == Obj)
            return true;
        }
        return false;
      };

      if (Intra || !CarriedAB.empty()) {
        DepEdge E;
        E.Src = A.I;
        E.Dst = B.I;
        E.Kind = KindOf(A, B);
        E.Intra = Intra;
        E.CarriedAtHeaders = CarriedAB;
        E.MustCarriedAtHeaders = MustAB;
        E.MemObject = Obj;
        E.IsIO = A.IsIO && B.IsIO;
        E.IsIVDep = IsIVObject(CarriedAB);
        Edges.push_back(std::move(E));
      }
      if (!CarriedBA.empty()) {
        DepEdge E;
        E.Src = B.I;
        E.Dst = A.I;
        E.Kind = KindOf(B, A);
        E.Intra = false;
        E.CarriedAtHeaders = CarriedBA;
        E.MustCarriedAtHeaders = MustBA;
        E.MemObject = Obj;
        E.IsIO = A.IsIO && B.IsIO;
        E.IsIVDep = IsIVObject(CarriedBA);
        Edges.push_back(std::move(E));
      }
    }
  }
}

} // namespace

std::vector<DepEdge> psc::referenceDepEdges(const FunctionAnalysis &FA) {
  return ReferenceImpl(FA).take();
}
