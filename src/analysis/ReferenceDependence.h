//===- ReferenceDependence.h - Frozen seed dependence analysis --*- C++ -*-===//
///
/// \file
/// The seed repository's monolithic dependence computation, preserved
/// verbatim (modulo packaging) as the golden reference for differential
/// testing and benchmarking of the DepOracle stack. Do NOT extend this
/// file with new analysis power: its whole value is staying bit-identical
/// to the pre-refactor edge sets. New disproof techniques belong in a
/// DepOracle (see DepOracle.h).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_ANALYSIS_REFERENCEDEPENDENCE_H
#define PSPDG_ANALYSIS_REFERENCEDEPENDENCE_H

#include "analysis/DepOracle.h"

#include <vector>

namespace psc {

/// Computes the whole-function dependence edge set with the seed
/// monolithic algorithm (register SSA def→use, post-dominance-frontier
/// control deps, Banerjee-tested memory deps).
std::vector<DepEdge> referenceDepEdges(const FunctionAnalysis &FA);

} // namespace psc

#endif // PSPDG_ANALYSIS_REFERENCEDEPENDENCE_H
