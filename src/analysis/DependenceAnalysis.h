//===- DependenceAnalysis.h - Compatibility shim over DepOracle -*- C++ -*-===//
///
/// \file
/// Thin compatibility façade over the collaborative dependence-oracle
/// stack (DepOracle.h). The monolithic analysis that used to live here was
/// split into independent oracles (ssa, control, io, opaque, alias,
/// affine); DependenceInfo now just binds a DepOracleStack to a function
/// and materializes the whole-function edge set through it. New code
/// should construct a DepOracleStack directly and share it between
/// consumers so the query cache collaborates across builds; this shim
/// remains for call sites that only need the edge vector.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_ANALYSIS_DEPENDENCEANALYSIS_H
#define PSPDG_ANALYSIS_DEPENDENCEANALYSIS_H

#include "analysis/DepOracle.h"

#include <cassert>
#include <memory>
#include <vector>

namespace psc {

/// Whole-function dependence set, materialized through a DepOracleStack.
class DependenceInfo {
public:
  /// Self-contained: owns a default oracle stack for \p FA.
  explicit DependenceInfo(const FunctionAnalysis &FA)
      : Owned(std::make_unique<DepOracleStack>(FA)), S(Owned.get()),
        Edges(buildDepEdges(*S)) {}

  /// Shares \p Stack (and its query cache) with other consumers.
  DependenceInfo(const FunctionAnalysis &FA, DepOracleStack &Stack)
      : S(&Stack), Edges(buildDepEdges(Stack)) {
    assert(&Stack.functionAnalysis() == &FA && "stack bound to another fn");
    (void)FA;
  }

  const std::vector<DepEdge> &edges() const { return Edges; }
  const FunctionAnalysis &functionAnalysis() const {
    return S->functionAnalysis();
  }
  DepOracleStack &stack() const { return *S; }

private:
  std::unique_ptr<DepOracleStack> Owned;
  DepOracleStack *S;
  std::vector<DepEdge> Edges;
};

} // namespace psc

#endif // PSPDG_ANALYSIS_DEPENDENCEANALYSIS_H
