//===- DependenceAnalysis.h - Data/memory/control dependences ---*- C++ -*-===//
///
/// \file
/// Computes the dependences of one function:
///
///   * register dependences (SSA-style def→use of instruction results);
///   * memory dependences (RAW/WAR/WAW) between may-aliasing accesses, with
///     per-loop carried classification via a Banerjee-style interval test
///     over affine subscripts (AffineExpr + ForLoopMeta ranges);
///   * control dependences from post-dominance frontiers.
///
/// Edges carry everything the PDG/PS-PDG builders and the planner need:
/// kind, carried levels, the base object (for privatization/reduction
/// reasoning), and whether the dependence is purely on a canonical
/// induction variable (removable for countable loops).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_ANALYSIS_DEPENDENCEANALYSIS_H
#define PSPDG_ANALYSIS_DEPENDENCEANALYSIS_H

#include "analysis/FunctionAnalysis.h"
#include "analysis/MemoryModel.h"

#include <set>
#include <vector>

namespace psc {

/// Dependence kinds. Register/Control are never removable by parallel
/// semantics; Memory* edges are the ones the PS-PDG features attack.
enum class DepKind { Register, MemoryRAW, MemoryWAR, MemoryWAW, Control };

/// One dependence edge Src → Dst.
struct DepEdge {
  Instruction *Src = nullptr;
  Instruction *Dst = nullptr;
  DepKind Kind = DepKind::Register;

  /// True if the dependence can occur within a single iteration of the
  /// innermost loop containing both ends (or outside any loop).
  bool Intra = true;

  /// Headers (block indices) of loops at which the dependence is carried.
  std::set<unsigned> CarriedAtHeaders;

  /// Base object for memory dependences; null for opaque/IO conflicts.
  const Value *MemObject = nullptr;

  /// True when the dependence is on the canonical induction variable of
  /// the carrying loop (the IV update chain): removable for any loop with
  /// a computable trip count.
  bool IsIVDep = false;

  /// True when both endpoints are I/O calls (print ordering).
  bool IsIO = false;

  bool isMemory() const {
    return Kind == DepKind::MemoryRAW || Kind == DepKind::MemoryWAR ||
           Kind == DepKind::MemoryWAW;
  }
  bool isCarriedAt(unsigned Header) const {
    return CarriedAtHeaders.count(Header) != 0;
  }
};

/// Whole-function dependence set.
class DependenceInfo {
public:
  DependenceInfo(const FunctionAnalysis &FA);

  const std::vector<DepEdge> &edges() const { return Edges; }
  const FunctionAnalysis &functionAnalysis() const { return FA; }

private:
  void computeRegisterDeps();
  void computeControlDeps();
  void computeMemoryDeps();

  /// True if accesses \p P (in an earlier iteration of \p L) and \p Q (in a
  /// later one) can touch the same location.
  bool carriedDepPossible(const MemAccess &P, const MemAccess &Q,
                          const Loop &L) const;
  /// True if \p P and \p Q can touch the same location within one iteration
  /// of their innermost common loop (or anywhere, when loop-free).
  bool intraDepPossible(const MemAccess &P, const MemAccess &Q) const;

  /// Classification of an affine symbol relative to a loop.
  enum class SymClass { IVOfLoop, IVOfInner, InvariantInLoop, Unknown };
  SymClass classifySymbol(const Value *Sym, const Loop &L) const;

  /// Inclusive interval with infinities; helper for the Banerjee test.
  struct Interval {
    bool Valid = true; ///< false = unbounded (contains everything).
    long Min = 0, Max = 0;
    bool contains(long V) const { return !Valid || (Min <= V && V <= Max); }
  };
  Interval ivRangeOf(const Loop &L) const;

  bool hasStoreTo(const Value *Storage, const Loop &L) const;

  const FunctionAnalysis &FA;
  std::vector<MemAccess> Accesses;
  std::vector<DepEdge> Edges;
};

} // namespace psc

#endif // PSPDG_ANALYSIS_DEPENDENCEANALYSIS_H
