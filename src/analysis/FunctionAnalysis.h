//===- FunctionAnalysis.h - Per-function analysis bundle --------*- C++ -*-===//
///
/// \file
/// Owns the CFG, dominator/post-dominator trees, and loop forest of one
/// function, plus instruction numbering shared by the dependence graph
/// builders.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_ANALYSIS_FUNCTIONANALYSIS_H
#define PSPDG_ANALYSIS_FUNCTIONANALYSIS_H

#include "ir/CFG.h"
#include "ir/Dominators.h"
#include "ir/Function.h"
#include "ir/LoopInfo.h"
#include "ir/Module.h"
#include "obs/Trace.h"

#include <map>
#include <memory>
#include <vector>

namespace psc {

/// Bundle of the standard per-function analyses.
class FunctionAnalysis {
public:
  explicit FunctionAnalysis(const Function &F)
      : F(F), G(F), DT(G, /*Post=*/false), PDT(G, /*Post=*/true),
        LI(F, G, DT) {
    for (BasicBlock *BB : F)
      for (Instruction *I : *BB) {
        IndexOf[I] = static_cast<unsigned>(Instructions.size());
        Instructions.push_back(I);
      }
  }

  const Function &function() const { return F; }
  const CFG &cfg() const { return G; }
  const DominatorTree &domTree() const { return DT; }
  const DominatorTree &postDomTree() const { return PDT; }
  const LoopInfo &loopInfo() const { return LI; }

  /// All instructions in program order (block order, then position).
  const std::vector<Instruction *> &instructions() const {
    return Instructions;
  }
  unsigned indexOf(const Instruction *I) const { return IndexOf.at(I); }

  /// Innermost loop containing \p I, or null.
  Loop *loopOf(const Instruction *I) const {
    return LI.getLoopFor(I->getParent()->getIndex());
  }

  /// Innermost loop containing both instructions, or null.
  Loop *commonLoop(const Instruction *A, const Instruction *B) const {
    for (Loop *L = loopOf(A); L; L = L->getParent())
      if (L->contains(B->getParent()->getIndex()))
        return L;
    return nullptr;
  }

  /// ForLoopMeta for \p L (keyed by header block), or null.
  const ForLoopMeta *forMeta(const Loop *L) const {
    const Module *M = F.getParent();
    return M->getParallelInfo().getForLoopMeta(
        F.getBlock(L->getHeader()));
  }

private:
  const Function &F;
  CFG G;
  DominatorTree DT;
  DominatorTree PDT;
  LoopInfo LI;
  std::vector<Instruction *> Instructions;
  std::map<const Instruction *, unsigned> IndexOf;
};

/// Lazily-built FunctionAnalysis cache for all definitions of a module.
class ModuleAnalyses {
public:
  explicit ModuleAnalyses(const Module &M) : M(M) {}

  const FunctionAnalysis &of(const Function &F) {
    auto It = Cache.find(&F);
    if (It != Cache.end())
      return *It->second;
    obs::TraceSpan Span("analysis.bundle", "fn=%s", F.getName().c_str());
    auto FA = std::make_unique<FunctionAnalysis>(F);
    const FunctionAnalysis &Ref = *FA;
    Cache[&F] = std::move(FA);
    return Ref;
  }

  const Module &module() const { return M; }

private:
  const Module &M;
  std::map<const Function *, std::unique_ptr<FunctionAnalysis>> Cache;
};

} // namespace psc

#endif // PSPDG_ANALYSIS_FUNCTIONANALYSIS_H
