//===- Privatization.h - Automatic scalar privatization ---------*- C++ -*-===//
///
/// \file
/// Identifies *iteration-private* scalars of a loop: stack variables that
/// are (re)written before any use in every iteration and are dead outside
/// the loop. Loop-carried WAR/WAW/RAW dependences on such scalars are
/// removable by giving each worker its own copy — the standard analysis a
/// PDG-based auto-parallelizer performs (and the compiler-derivable subset
/// of what the PS-PDG's privatizable variables declare).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_ANALYSIS_PRIVATIZATION_H
#define PSPDG_ANALYSIS_PRIVATIZATION_H

#include "analysis/FunctionAnalysis.h"

#include <set>

namespace psc {

/// Storage objects (allocas) of \p L's iteration-private scalars.
///
/// A scalar alloca S qualifies when:
///  * S is not the canonical counter of any loop (IVs are handled
///    separately);
///  * inside L, some store to S in block D dominates every block accessing
///    S in L, and within D the first access is a store;
///  * S is never loaded outside L in the function (dead after the loop).
std::set<const Value *> computeIterationPrivateScalars(
    const FunctionAnalysis &FA, const Loop &L);

} // namespace psc

#endif // PSPDG_ANALYSIS_PRIVATIZATION_H
