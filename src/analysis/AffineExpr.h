//===- AffineExpr.h - Linear index expressions ------------------*- C++ -*-===//
///
/// \file
/// A lightweight scalar-evolution substitute: array subscripts are
/// represented as affine combinations  sum(Coeff_s * s) + Constant  over
/// *symbols*, where a symbol is the storage object (alloca/global) of a
/// scalar variable whose value the subscript loads. At dependence-test time
/// symbols are classified per loop as induction variables (with known
/// ranges from ForLoopMeta), loop-invariant values (which cancel in
/// differences), or unknown (forcing a conservative answer).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_ANALYSIS_AFFINEEXPR_H
#define PSPDG_ANALYSIS_AFFINEEXPR_H

#include <cstdint>
#include <map>
#include <string>

namespace psc {

class Value;
class Instruction;

/// Affine form of an integer expression. Invalid when the expression is not
/// affine in scalar-variable loads.
struct AffineExpr {
  bool Valid = true;
  long Constant = 0;
  /// Symbol (scalar storage object) -> coefficient. Zero coefficients are
  /// never stored.
  std::map<const Value *, long> Coeffs;

  static AffineExpr invalid() {
    AffineExpr E;
    E.Valid = false;
    return E;
  }

  static AffineExpr constant(long C) {
    AffineExpr E;
    E.Constant = C;
    return E;
  }

  static AffineExpr symbol(const Value *Storage) {
    AffineExpr E;
    E.Coeffs[Storage] = 1;
    return E;
  }

  bool isConstant() const { return Valid && Coeffs.empty(); }

  AffineExpr operator+(const AffineExpr &O) const;
  AffineExpr operator-(const AffineExpr &O) const;
  /// Multiplication is affine only when one side is constant.
  AffineExpr operator*(const AffineExpr &O) const;

  /// Difference convenience used by the dependence tests.
  AffineExpr minus(const AffineExpr &O) const { return *this - O; }

  std::string str() const;
};

/// Derives the affine form of an integer-valued IR expression \p V by
/// walking its operand tree. Loads of scalar variables become symbols;
/// anything else (calls, memory loads through GEPs, float math) invalidates
/// the result.
AffineExpr buildAffineExpr(const Value *V);

} // namespace psc

#endif // PSPDG_ANALYSIS_AFFINEEXPR_H
