//===- DepOracle.cpp - Oracle implementations and the stack ----*- C++ -*-===//
///
/// The six default oracles and their disjoint answer domains:
///
///   ssa     — Register queries: MustDep when Dst consumes Src's result.
///   control — Control queries: MustDep; carried iff the candidate loop
///             contains the gated instruction (the branch gates later
///             iterations too).
///   io      — memory queries where either side is I/O and neither is
///             opaque: cross I/O-vs-data pairs are disproven (prints only
///             order against other prints), I/O-vs-I/O stays ordered.
///   opaque  — memory queries where either side is an opaque call:
///             conservatively assumed (unknown memory).
///   alias   — memory queries between two known base objects that are
///             distinct or scalar: NoAlias bases are disproven, may-alias
///             distinct bases and whole-scalar conflicts are assumed.
///   affine  — same-base array pairs: Banerjee-style interval disproof
///             over affine subscripts (AffineExpr + ForLoopMeta ranges).
///
//===----------------------------------------------------------------------===//

#include "analysis/DepOracle.h"

#include "analysis/SpecOracle.h"
#include "analysis/ValueSpec.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace psc;

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

namespace {

DepKind memKindOf(const MemAccess &Src, const MemAccess &Dst) {
  if (Src.isWrite() && Dst.isWrite())
    return DepKind::MemoryWAW;
  if (Src.isWrite())
    return DepKind::MemoryRAW;
  return DepKind::MemoryWAR;
}

bool isMemQuery(const DepQuery &Q) {
  return Q.Kind == DepQueryKind::MemIntra || Q.Kind == DepQueryKind::MemCarried;
}

//===----------------------------------------------------------------------===//
// ssa — scalar SSA def→use
//===----------------------------------------------------------------------===//

class ScalarSSAOracle : public DepOracle {
public:
  const char *name() const override { return "ssa"; }
  bool answer(const DepQuery &Q, DepResult &R) const override {
    if (Q.Kind != DepQueryKind::Register)
      return false;
    R.Kind = DepKind::Register;
    R.Carried = false;
    R.Verdict = DepVerdict::NoDep;
    for (const Value *Op : Q.Dst->operands())
      if (Op == Q.Src)
        R.Verdict = DepVerdict::MustDep;
    return true;
  }
};

//===----------------------------------------------------------------------===//
// control — post-dominance-frontier control dependences
//===----------------------------------------------------------------------===//

class ControlOracle : public DepOracle {
public:
  const char *name() const override { return "control"; }
  bool answer(const DepQuery &Q, DepResult &R) const override {
    if (Q.Kind != DepQueryKind::Control)
      return false;
    R.Kind = DepKind::Control;
    R.Verdict = DepVerdict::MustDep;
    // Carried at the innermost loop containing both the branch and the
    // dependent block: the branch gates later iterations too.
    R.Carried = Q.L && Q.L->contains(Q.Dst->getParent()->getIndex());
    return true;
  }
};

//===----------------------------------------------------------------------===//
// io — I/O ordering
//===----------------------------------------------------------------------===//

class IOOrderingOracle : public DepOracle {
public:
  const char *name() const override { return "io"; }
  bool answer(const DepQuery &Q, DepResult &R) const override {
    if (!isMemQuery(Q))
      return false;
    const MemAccess &A = *Q.SrcAcc, &B = *Q.DstAcc;
    if ((!A.IsIO && !B.IsIO) || A.isOpaque() || B.isOpaque())
      return false;
    R.Kind = memKindOf(A, B);
    if (A.IsIO != B.IsIO) {
      // Prints conflict only with other prints/opaque calls.
      R.Verdict = DepVerdict::NoDep;
      R.Carried = false;
    } else {
      R.Verdict = DepVerdict::MayDep;
      R.Carried = Q.Kind == DepQueryKind::MemCarried;
    }
    return true;
  }
};

//===----------------------------------------------------------------------===//
// opaque — opaque-call fallback
//===----------------------------------------------------------------------===//

class OpaqueCallOracle : public DepOracle {
public:
  const char *name() const override { return "opaque"; }
  bool answer(const DepQuery &Q, DepResult &R) const override {
    if (!isMemQuery(Q))
      return false;
    const MemAccess &A = *Q.SrcAcc, &B = *Q.DstAcc;
    if (!A.isOpaque() && !B.isOpaque())
      return false;
    R.Kind = memKindOf(A, B);
    R.Verdict = DepVerdict::MayDep;
    R.Carried = Q.Kind == DepQueryKind::MemCarried;
    return true;
  }
};

//===----------------------------------------------------------------------===//
// alias — base-object alias rules (MemoryModel)
//===----------------------------------------------------------------------===//

class AliasOracle : public DepOracle {
public:
  const char *name() const override { return "alias"; }
  bool answer(const DepQuery &Q, DepResult &R) const override {
    if (!isMemQuery(Q))
      return false;
    const MemAccess &A = *Q.SrcAcc, &B = *Q.DstAcc;
    if (!A.Base || !B.Base)
      return false; // opaque / I/O: not this oracle's domain
    R.Kind = memKindOf(A, B);
    if (aliasBases(A.Base, B.Base) == AliasResult::NoAlias) {
      R.Verdict = DepVerdict::NoDep;
      R.Carried = false;
      return true;
    }
    if (A.Base != B.Base) {
      // May-alias distinct bases (array argument vs global).
      R.Verdict = DepVerdict::MayDep;
      R.Carried = Q.Kind == DepQueryKind::MemCarried;
      return true;
    }
    if (A.IsScalar || B.IsScalar) {
      // Whole-scalar accesses of one object: every instance conflicts.
      R.Verdict = DepVerdict::MayDep;
      R.Carried = Q.Kind == DepQueryKind::MemCarried;
      return true;
    }
    return false; // same-base array pair: the affine oracle's domain
  }
};

//===----------------------------------------------------------------------===//
// affine — Banerjee-style interval disproof over affine subscripts
//===----------------------------------------------------------------------===//

/// Saturating interval arithmetic over "practically infinite" bounds.
/// Coefficients and IV ranges in PSC programs are small; Huge is far above
/// any product that can occur, so saturation only encodes "unbounded".
constexpr long Huge = 4'000'000'000'000'000L;

long clampMul(long A, long B) {
  __int128 P = static_cast<__int128>(A) * B;
  if (P > Huge)
    return Huge;
  if (P < -Huge)
    return -Huge;
  return static_cast<long>(P);
}

long clampAdd(long A, long B) {
  __int128 S = static_cast<__int128>(A) + B;
  if (S > Huge)
    return Huge;
  if (S < -Huge)
    return -Huge;
  return static_cast<long>(S);
}

struct Range {
  long Min = 0, Max = 0;

  static Range point(long V) { return {V, V}; }
  static Range unbounded() { return {-Huge, Huge}; }

  Range operator+(const Range &O) const {
    return {clampAdd(Min, O.Min), clampAdd(Max, O.Max)};
  }
  Range scaledBy(long K) const {
    long A = clampMul(Min, K), B = clampMul(Max, K);
    return {std::min(A, B), std::max(A, B)};
  }
  bool contains(long V) const { return Min <= V && V <= Max; }
};

/// Innermost loop containing \p I whose canonical counter is \p Sym.
const Loop *bindingLoop(const FunctionAnalysis &FA, const Instruction *I,
                        const Value *Sym) {
  for (Loop *L = FA.loopOf(I); L; L = L->getParent()) {
    const ForLoopMeta *Meta = FA.forMeta(L);
    if (Meta && Meta->CounterStorage == Sym)
      return L;
  }
  return nullptr;
}

Range loopRange(const FunctionAnalysis &FA, const Loop *L) {
  if (!L)
    return Range::unbounded();
  const ForLoopMeta *Meta = FA.forMeta(L);
  long Min, Max;
  if (Meta && Meta->ivRange(Min, Max))
    return {Min, Max};
  return Range::unbounded();
}

class AffineOracle : public DepOracle {
public:
  explicit AffineOracle(const FunctionAnalysis &FA) : FA(FA) {}

  const char *name() const override { return "affine"; }
  bool answer(const DepQuery &Q, DepResult &R) const override {
    if (!isMemQuery(Q))
      return false;
    const MemAccess &A = *Q.SrcAcc, &B = *Q.DstAcc;
    if (!A.Base || !B.Base || A.Base != B.Base || A.IsScalar || B.IsScalar)
      return false;
    R.Kind = memKindOf(A, B);
    if (Q.Kind == DepQueryKind::MemIntra) {
      R.Verdict =
          intraDepPossible(A, B) ? DepVerdict::MayDep : DepVerdict::NoDep;
      R.Carried = false;
    } else {
      R.Verdict = carriedDepVerdict(A, B, *Q.L);
      R.Carried = R.Verdict != DepVerdict::NoDep;
    }
    return true;
  }

private:
  /// Classification of an affine symbol relative to a loop. Used only for
  /// symbols with no binding loop: invariant when nothing in L stores it.
  bool symbolUnknownIn(const Value *Sym, const Loop &L) const {
    const Function &F = FA.function();
    for (unsigned B : L.blocks())
      for (Instruction *I : *F.getBlock(B))
        if (auto *SI = dyn_cast<StoreInst>(I))
          if (SI->getPointer() == Sym)
            return true;
    return false;
  }

  /// Can accesses \p P (in an earlier iteration of \p L) and \p Q (in a
  /// later one) touch the same location? NoDep disproves it; MustDep means
  /// the subscript pair *proves* a conflict at a definite iteration
  /// distance (whenever both instances execute) — a `parallel for`
  /// annotation must not be allowed to erase it.
  DepVerdict carriedDepVerdict(const MemAccess &P, const MemAccess &Q,
                               const Loop &L) const {
    if (!P.Subscript.Valid || !Q.Subscript.Valid)
      return DepVerdict::MayDep;

    const ForLoopMeta *LMeta = FA.forMeta(&L);
    const Value *LCounter =
        (LMeta && LMeta->Canonical) ? LMeta->CounterStorage : nullptr;
    long Trip = LMeta ? LMeta->tripCount() : -1;

    // Accumulate the interval of  Sub_P(iter i) - Sub_Q(iter i + delta)
    // minus its constant part, then ask whether the constant can be
    // canceled.
    Range Sum = Range::point(0);
    long CoeffPi = 0, CoeffQi = 0; // coefficients of the IV of L per side

    // Shared (invariant) symbols accumulate a combined coefficient.
    std::map<const Value *, std::pair<long, const Loop *>> Shared;

    auto AddSide = [&](const MemAccess &A, long Sign, long &IVCoeff) -> bool {
      for (auto &[Sym, C] : A.Subscript.Coeffs) {
        const Loop *B = bindingLoop(FA, A.I, Sym);
        if (B && FA.forMeta(B) == LMeta) {
          IVCoeff = C;
          continue;
        }
        if (B && L.encloses(B)) {
          // IV of a loop nested in L: independent between the instances.
          Sum = Sum + loopRange(FA, B).scaledBy(Sign * C);
          continue;
        }
        if (B) {
          // IV of a loop enclosing L: same value for both instances.
          Shared[Sym].first += Sign * C;
          Shared[Sym].second = B;
          continue;
        }
        // Plain variable: invariant in L → shared; else unknown.
        if (symbolUnknownIn(Sym, L))
          return false;
        Shared[Sym].first += Sign * C;
        Shared[Sym].second = nullptr;
      }
      return true;
    };

    if (!AddSide(P, +1, CoeffPi) || !AddSide(Q, -1, CoeffQi))
      return DepVerdict::MayDep; // unknown symbol → conservative

    // Shared symbols: coefficient difference times an (often unknown)
    // value.
    for (auto &[Sym, Entry] : Shared) {
      auto &[Coeff, BindLoop] = Entry;
      if (Coeff == 0)
        continue;
      Sum = Sum + loopRange(FA, BindLoop).scaledBy(Coeff);
    }

    // IV of L: the later instance runs delta iterations further, so its IV
    // value is i + delta * Step (Step may be negative — a decreasing
    // loop's later iterations have SMALLER IV values):
    //   Sub_P(i) - Sub_Q(i + delta*Step)
    //     = (CoeffP - CoeffQ) * i  -  CoeffQ * Step * delta,   delta >= 1.
    if (LCounter) {
      Range IV = Range::unbounded();
      long Min, Max;
      if (LMeta && LMeta->ivRange(Min, Max))
        IV = {Min, Max};
      Sum = Sum + IV.scaledBy(CoeffPi - CoeffQi);
      long MaxDelta = Trip > 1 ? Trip - 1 : (Trip < 0 ? Huge : 0);
      if (MaxDelta == 0)
        return DepVerdict::NoDep; // single-iteration loop: nothing carried
      // Definite-distance precondition: with every non-delta term exactly
      // canceled, the difference collapses to  -CoeffQ*Step*delta == Target
      // — a solvable equation, not an interval question.
      bool ExactZero = Sum.Min == 0 && Sum.Max == 0;
      long PerDelta = clampMul(-CoeffQi, LMeta->Step);
      Range Delta = {1, MaxDelta};
      Sum = Sum + Delta.scaledBy(PerDelta);
      long Target = Q.Subscript.Constant - P.Subscript.Constant;
      if (!Sum.contains(Target))
        return DepVerdict::NoDep;
      // The normalized subscript pair (a[c*j+k1] vs a[c*j+k2]) proves the
      // conflict when the constant offset divides into an integer iteration
      // distance inside the known trip count: e.g. a[j] = ... a[j-1] ...
      // solves delta = 1 — the distance-1 recurrence MUST manifest.
      if (ExactZero && PerDelta != 0 && MaxDelta != Huge &&
          Target % PerDelta == 0) {
        long DeltaVal = Target / PerDelta;
        if (DeltaVal >= 1 && DeltaVal <= MaxDelta)
          return DepVerdict::MustDep;
      }
      return DepVerdict::MayDep;
    }
    // Non-canonical loop: if either side references any symbol stored in
    // L we already bailed; subscripts are L-invariant, so the same
    // element is touched every iteration.
    if (CoeffPi != 0 || CoeffQi != 0)
      return DepVerdict::MayDep;

    long Target = Q.Subscript.Constant - P.Subscript.Constant;
    return Sum.contains(Target) ? DepVerdict::MayDep : DepVerdict::NoDep;
  }

  /// True if \p P and \p Q can touch the same location within one
  /// iteration of their innermost common loop (or anywhere, loop-free).
  bool intraDepPossible(const MemAccess &P, const MemAccess &Q) const {
    if (!P.Subscript.Valid || !Q.Subscript.Valid)
      return true;

    const Loop *C = FA.commonLoop(P.I, Q.I);

    Range Sum = Range::point(0);
    std::map<const Value *, std::pair<long, const Loop *>> Shared;

    auto AddSide = [&](const MemAccess &A, long Sign) -> bool {
      for (auto &[Sym, Coeff] : A.Subscript.Coeffs) {
        const Loop *B = bindingLoop(FA, A.I, Sym);
        if (B && C && C->encloses(B) && B != C) {
          // Loop nested inside the common loop: iterates within one common
          // iteration → independent values on each side.
          Sum = Sum + loopRange(FA, B).scaledBy(Sign * Coeff);
          continue;
        }
        if (B) {
          // Common loop itself or an enclosing loop: same value both
          // sides.
          Shared[Sym].first += Sign * Coeff;
          Shared[Sym].second = B;
          continue;
        }
        // Plain variable: same value if not stored within the common
        // scope.
        if (C && symbolUnknownIn(Sym, *C))
          return false;
        Shared[Sym].first += Sign * Coeff;
        Shared[Sym].second = nullptr;
      }
      return true;
    };

    if (!AddSide(P, +1) || !AddSide(Q, -1))
      return true;

    for (auto &[Sym, Entry] : Shared) {
      auto &[Coeff, BindLoop] = Entry;
      if (Coeff == 0)
        continue;
      Sum = Sum + loopRange(FA, BindLoop).scaledBy(Coeff);
    }

    long Target = Q.Subscript.Constant - P.Subscript.Constant;
    return Sum.contains(Target);
  }

  const FunctionAnalysis &FA;
};

} // namespace

//===----------------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------------===//

const std::vector<std::string> &psc::knownDepOracleNames() {
  static const std::vector<std::string> Names = {"ssa",    "control", "io",
                                                 "opaque", "alias",   "affine"};
  return Names;
}

bool psc::isKnownDepOracleName(const std::string &Name) {
  const auto &Known = knownDepOracleNames();
  return std::find(Known.begin(), Known.end(), Name) != Known.end();
}

const char *psc::specOracleName() { return "spec"; }
const char *psc::valueSpecOracleName() { return "valuespec"; }

namespace {

bool namesContain(const std::vector<std::string> &Names, const char *N) {
  return std::find(Names.begin(), Names.end(), N) != Names.end();
}

/// True when the name list mentions any speculative stage explicitly — the
/// opt-out of the "profile enables everything" default.
bool namesAnySpecStage(const std::vector<std::string> &Names) {
  return namesContain(Names, psc::specOracleName()) ||
         namesContain(Names, psc::valueSpecOracleName());
}

} // namespace

bool DepOracleConfig::wantsSpec() const {
  // Supplying a training profile is itself the opt-in for both downgrade
  // stages; naming a stage without a profile is a (loud) configuration
  // error, and naming a subset enables exactly that subset (ablation).
  if (namesAnySpecStage(Names))
    return namesContain(Names, specOracleName());
  return SpecProfile != nullptr;
}

bool DepOracleConfig::wantsValueSpec() const {
  if (namesAnySpecStage(Names))
    return namesContain(Names, valueSpecOracleName());
  return SpecProfile != nullptr;
}

std::unique_ptr<DepOracle> psc::createDepOracle(const std::string &Name,
                                                const FunctionAnalysis &FA) {
  if (Name == "ssa")
    return std::make_unique<ScalarSSAOracle>();
  if (Name == "control")
    return std::make_unique<ControlOracle>();
  if (Name == "io")
    return std::make_unique<IOOrderingOracle>();
  if (Name == "opaque")
    return std::make_unique<OpaqueCallOracle>();
  if (Name == "alias")
    return std::make_unique<AliasOracle>();
  if (Name == "affine")
    return std::make_unique<AffineOracle>(FA);
  return nullptr;
}

std::vector<std::unique_ptr<DepOracle>>
psc::createDepOracles(const FunctionAnalysis &FA,
                      const std::vector<std::string> &Names) {
  std::vector<std::unique_ptr<DepOracle>> Chain;
  for (const std::string &Name :
       Names.empty() ? knownDepOracleNames() : Names) {
    auto O = createDepOracle(Name, FA);
    if (!O)
      reportFatalError("unknown dependence oracle '" + Name + "'");
    for (const auto &Existing : Chain)
      if (Name == Existing->name())
        reportFatalError("duplicate dependence oracle '" + Name +
                         "' (a later instance could never answer)");
    Chain.push_back(std::move(O));
  }
  return Chain;
}

//===----------------------------------------------------------------------===//
// DepOracleStack
//===----------------------------------------------------------------------===//

namespace {

/// The sound-chain names of a config: every name except the spec stages.
std::vector<std::string> soundNames(const DepOracleConfig &Config) {
  std::vector<std::string> Out;
  for (const std::string &N : Config.Names)
    if (N != specOracleName() && N != valueSpecOracleName())
      Out.push_back(N);
  return Out;
}

} // namespace

DepOracleStack::DepOracleStack(const FunctionAnalysis &FA,
                               const DepOracleConfig &Config)
    : DepOracleStack(FA, createDepOracles(FA, soundNames(Config))) {
  if (!Config.wantsSpec() && !Config.wantsValueSpec())
    return;
  if (!Config.SpecProfile)
    reportFatalError("the speculative dependence oracles need a training "
                     "profile (--spec-profile)");
  if (Config.wantsSpec()) {
    Spec = std::make_unique<SpecOracle>(FA, *Config.SpecProfile);
    OracleStats S;
    S.Name = Spec->name();
    SpecStatsIdx = Stats.size();
    Stats.push_back(S);
  }
  if (Config.wantsValueSpec()) {
    VSpec = std::make_unique<ValueSpecOracle>(FA, *Config.SpecProfile);
    OracleStats S;
    S.Name = VSpec->name();
    VSpecStatsIdx = Stats.size();
    Stats.push_back(S);
  }
}

DepOracleStack::DepOracleStack(const FunctionAnalysis &FA,
                               std::vector<std::unique_ptr<DepOracle>> Chain)
    : FA(FA), Oracles(std::move(Chain)),
      Accesses(collectMemAccesses(FA.function())) {
  Stats.resize(Oracles.size());
  for (size_t I = 0; I < Oracles.size(); ++I)
    Stats[I].Name = Oracles[I]->name();
}

namespace {

/// Memo key: (kind, src index, dst index, loop header). Instruction and
/// block counts stay far below 2^20 in PSC programs; a violation fails
/// loudly (in every build type) instead of silently colliding cached
/// verdicts.
uint64_t memoKey(const FunctionAnalysis &FA, const DepQuery &Q) {
  uint64_t Kind = static_cast<uint64_t>(Q.Kind);
  uint64_t Src = FA.indexOf(Q.Src);
  uint64_t Dst = FA.indexOf(Q.Dst);
  uint64_t Header = Q.L ? Q.L->getHeader() + 1 : 0;
  if (Src >= (1u << 20) || Dst >= (1u << 20) || Header >= (1u << 20))
    reportFatalError("function too large for the dependence memo key");
  return (Kind << 60) | (Src << 40) | (Dst << 20) | Header;
}

} // namespace

DepResult DepOracleStack::query(const DepQuery &Q) {
  ++Cache.Queries;
  uint64_t Key = memoKey(FA, Q);
  auto It = Memo.find(Key);
  if (It != Memo.end()) {
    ++Cache.Hits;
    return It->second;
  }

  DepResult R;
  bool Claimed = false;
  for (size_t I = 0; I < Oracles.size() && !Claimed; ++I) {
    if (Oracles[I]->answer(Q, R)) {
      R.Oracle = Oracles[I]->name();
      OracleStats &S = Stats[I];
      ++S.Answered;
      switch (R.Verdict) {
      case DepVerdict::NoDep:
        ++S.NoDep;
        break;
      case DepVerdict::MayDep:
        ++S.MayDep;
        break;
      case DepVerdict::MustDep:
        ++S.MustDep;
        break;
      }
      Claimed = true;
    }
  }
  if (!Claimed) {
    // Conservative default: assume the dependence.
    R.Verdict = DepVerdict::MayDep;
    R.Carried = Q.Kind == DepQueryKind::MemCarried ||
                (Q.Kind == DepQueryKind::Control && Q.L &&
                 Q.L->contains(Q.Dst->getParent()->getIndex()));
    if (isMemQuery(Q))
      R.Kind = memKindOf(*Q.SrcAcc, *Q.DstAcc);
    else if (Q.Kind == DepQueryKind::Control)
      R.Kind = DepKind::Control;
    else
      R.Kind = DepKind::Register;
    R.Oracle = "default";
    ++Cache.Fallback;
  }

  // Speculative downgrade stages: only dependences the sound stack ASSUMED
  // (MayDep) on a carried query are offered to them, so sound verdicts —
  // and sound-chain order independence — are untouched. The memory stage
  // goes first; the value stage sees only what it declined (a manifested
  // scalar chain can only fall to value prediction).
  if (R.Verdict == DepVerdict::MayDep &&
      Q.Kind == DepQueryKind::MemCarried) {
    DepResult SR;
    if (Spec && Spec->answer(Q, SR) && SR.disproven()) {
      SR.Oracle = Spec->name();
      SR.Speculative = true;
      OracleStats &S = Stats[SpecStatsIdx];
      ++S.Answered;
      ++S.NoDep;
      R = SR;
    } else if (VSpec && VSpec->answer(Q, SR) && SR.disproven()) {
      SR.Oracle = VSpec->name();
      SR.Speculative = true;
      SR.ValueSpec = true;
      OracleStats &S = Stats[VSpecStatsIdx];
      ++S.Answered;
      ++S.NoDep;
      R = SR;
    }
  }
  Memo.emplace(Key, R);
  return R;
}

std::vector<DepOracleStack::OracleStats> DepOracleStack::oracleStats() const {
  return Stats;
}

void DepOracleStack::resetStats() {
  for (OracleStats &S : Stats)
    S = OracleStats{S.Name, 0, 0, 0, 0};
  Cache = CacheStats{};
  // Drop the memo too: with a warm memo every post-reset query would be a
  // cache hit and the per-oracle attribution would read all-zero.
  Memo.clear();
}

std::unordered_map<uint64_t, DepResult> DepOracleStack::exportMemo() const {
  if (speculative())
    return {};
  return Memo;
}

bool DepOracleStack::seedMemo(
    const std::unordered_map<uint64_t, DepResult> &Seed) {
  if (speculative())
    return false;
  Memo.insert(Seed.begin(), Seed.end());
  return true;
}

//===----------------------------------------------------------------------===//
// Edge-set builder over the query API
//===----------------------------------------------------------------------===//

namespace {

void buildRegisterEdges(DepOracleStack &Stack, std::vector<DepEdge> &Edges) {
  const FunctionAnalysis &FA = Stack.functionAnalysis();
  for (Instruction *I : FA.instructions()) {
    for (Value *Op : I->operands()) {
      auto *Def = dyn_cast<Instruction>(Op);
      if (!Def)
        continue;
      DepQuery Q;
      Q.Kind = DepQueryKind::Register;
      Q.Src = Def;
      Q.Dst = I;
      if (Stack.query(Q).disproven())
        continue;
      DepEdge E;
      E.Src = Def;
      E.Dst = I;
      E.Kind = DepKind::Register;
      E.Intra = true;
      Edges.push_back(std::move(E));
    }
  }
}

void buildControlEdges(DepOracleStack &Stack, std::vector<DepEdge> &Edges) {
  const FunctionAnalysis &FA = Stack.functionAnalysis();
  const Function &F = FA.function();
  const auto &Frontiers = FA.postDomTree().frontiers();
  unsigned VirtualExit = FA.postDomTree().getVirtualExit();

  for (unsigned B = 0; B < F.getNumBlocks(); ++B) {
    if (!FA.cfg().isReachable(B))
      continue;
    for (unsigned Controlling : Frontiers[B]) {
      if (Controlling == VirtualExit || Controlling >= F.getNumBlocks())
        continue;
      Instruction *Branch = F.getBlock(Controlling)->getTerminator();
      if (!Branch || !isa<CondBranchInst>(Branch))
        continue;
      const Loop *BranchLoop = FA.loopInfo().getLoopFor(Controlling);

      for (Instruction *I : *F.getBlock(B)) {
        DepQuery Q;
        Q.Kind = DepQueryKind::Control;
        Q.Src = Branch;
        Q.Dst = I;
        Q.L = BranchLoop;
        DepResult R = Stack.query(Q);
        if (R.disproven())
          continue;
        DepEdge E;
        E.Src = Branch;
        E.Dst = I;
        E.Kind = DepKind::Control;
        E.Intra = true;
        if (R.Carried && BranchLoop) {
          E.CarriedAtHeaders.insert(BranchLoop->getHeader());
          E.OracleAtHeaders[BranchLoop->getHeader()] = R.Oracle;
        }
        Edges.push_back(std::move(E));
      }
    }
  }
}

void buildMemoryEdges(DepOracleStack &Stack, std::vector<DepEdge> &Edges) {
  const FunctionAnalysis &FA = Stack.functionAnalysis();
  const std::vector<MemAccess> &Accesses = Stack.accesses();

  // All loops containing both instructions, innermost to outermost.
  auto CommonLoops = [&](Instruction *A, Instruction *B) {
    std::vector<const Loop *> Out;
    for (Loop *L = FA.loopOf(A); L; L = L->getParent())
      if (L->contains(B->getParent()->getIndex()))
        Out.push_back(L);
    return Out;
  };

  /// 0 = disproven, 1 = carried, 2 = memory-speculatively disproven,
  /// 3 = value-speculatively disproven (assumed absent; the edge records
  /// the header in the matching set so consumers can turn it into a
  /// runtime-validated assumption of the right family), 4 = carried AND
  /// proven to manifest (MustDep — a definite constant-distance conflict
  /// annotations must never be allowed to drop).
  /// \p Oracle receives the responding oracle's name (attribution for
  /// carried and speculatively-removed results; untouched on code 0).
  auto Carried = [&](const MemAccess &Src, const MemAccess &Dst,
                     const Loop *L, const char *&Oracle) -> int {
    DepQuery Q;
    Q.Kind = DepQueryKind::MemCarried;
    Q.Src = Src.I;
    Q.Dst = Dst.I;
    Q.SrcAcc = &Src;
    Q.DstAcc = &Dst;
    Q.L = L;
    DepResult R = Stack.query(Q);
    Oracle = R.Oracle;
    if (!R.disproven())
      return R.Verdict == DepVerdict::MustDep ? 4 : 1;
    return R.Speculative ? (R.ValueSpec ? 3 : 2) : 0;
  };

  auto Intra = [&](const MemAccess &Src, const MemAccess &Dst) {
    DepQuery Q;
    Q.Kind = DepQueryKind::MemIntra;
    Q.Src = Src.I;
    Q.Dst = Dst.I;
    Q.SrcAcc = &Src;
    Q.DstAcc = &Dst;
    return !Stack.query(Q).disproven();
  };

  auto CanonicalCounterAt = [&](const std::set<unsigned> &Headers,
                                const Value *Obj) {
    if (!Obj)
      return false;
    for (unsigned H : Headers) {
      const ForLoopMeta *Meta =
          FA.function().getParent()->getParallelInfo().getForLoopMeta(
              FA.function().getBlock(H));
      if (Meta && Meta->Canonical && Meta->CounterStorage == Obj)
        return true;
    }
    return false;
  };

  // Self-dependences: one static write (or I/O / opaque call) conflicting
  // with its own instances in later iterations.
  for (const MemAccess &A : Accesses) {
    if (!A.isWrite())
      continue;
    std::set<unsigned> CarriedAt, MustAt, SpecAt, VSpecAt;
    std::map<unsigned, const char *> OracleAt;
    for (const Loop *L : CommonLoops(A.I, A.I)) {
      const char *Oracle = nullptr;
      int C = Carried(A, A, L, Oracle);
      if (C == 1 || C == 4) {
        CarriedAt.insert(L->getHeader());
        if (C == 4)
          MustAt.insert(L->getHeader());
      } else if (C == 2)
        SpecAt.insert(L->getHeader());
      else if (C == 3)
        VSpecAt.insert(L->getHeader());
      if (C != 0)
        OracleAt[L->getHeader()] = Oracle;
    }
    if (CarriedAt.empty() && SpecAt.empty() && VSpecAt.empty())
      continue;
    DepEdge E;
    E.Src = A.I;
    E.Dst = A.I;
    E.Kind = A.isRead() ? DepKind::MemoryRAW : DepKind::MemoryWAW;
    E.Intra = false;
    E.CarriedAtHeaders = CarriedAt;
    E.MustCarriedAtHeaders = MustAt;
    E.SpecCarriedAtHeaders = SpecAt;
    E.ValueSpecCarriedAtHeaders = VSpecAt;
    E.OracleAtHeaders = OracleAt;
    E.MemObject = A.Base;
    E.IsIO = A.IsIO;
    E.IsIVDep = CanonicalCounterAt(CarriedAt, A.Base);
    Edges.push_back(std::move(E));
  }

  for (size_t AI = 0; AI < Accesses.size(); ++AI) {
    for (size_t BI = AI + 1; BI < Accesses.size(); ++BI) {
      const MemAccess &A = Accesses[AI];
      const MemAccess &B = Accesses[BI];
      if (!A.isWrite() && !B.isWrite())
        continue;

      const Value *Obj = A.Base == B.Base ? A.Base : nullptr;
      std::vector<const Loop *> Loops = CommonLoops(A.I, B.I);

      // Intra-iteration dependence, directed by program order (A first).
      bool IntraDep = Intra(A, B);

      // Carried dependences per loop, per direction.
      std::set<unsigned> CarriedAB, CarriedBA, MustAB, MustBA, SpecAB,
          SpecBA, VSpecAB, VSpecBA;
      std::map<unsigned, const char *> OracleAB, OracleBA;
      for (const Loop *L : Loops) {
        const char *Oracle = nullptr;
        int AB = Carried(A, B, L, Oracle);
        if (AB == 1 || AB == 4) {
          CarriedAB.insert(L->getHeader());
          if (AB == 4)
            MustAB.insert(L->getHeader());
        } else if (AB == 2)
          SpecAB.insert(L->getHeader());
        else if (AB == 3)
          VSpecAB.insert(L->getHeader());
        if (AB != 0)
          OracleAB[L->getHeader()] = Oracle;
        int BA = Carried(B, A, L, Oracle);
        if (BA == 1 || BA == 4) {
          CarriedBA.insert(L->getHeader());
          if (BA == 4)
            MustBA.insert(L->getHeader());
        } else if (BA == 2)
          SpecBA.insert(L->getHeader());
        else if (BA == 3)
          VSpecBA.insert(L->getHeader());
        if (BA != 0)
          OracleBA[L->getHeader()] = Oracle;
      }

      if (IntraDep || !CarriedAB.empty() || !SpecAB.empty() ||
          !VSpecAB.empty()) {
        DepEdge E;
        E.Src = A.I;
        E.Dst = B.I;
        E.Kind = memKindOf(A, B);
        E.Intra = IntraDep;
        E.CarriedAtHeaders = CarriedAB;
        E.MustCarriedAtHeaders = MustAB;
        E.SpecCarriedAtHeaders = SpecAB;
        E.ValueSpecCarriedAtHeaders = VSpecAB;
        E.OracleAtHeaders = OracleAB;
        E.MemObject = Obj;
        E.IsIO = A.IsIO && B.IsIO;
        E.IsIVDep = CanonicalCounterAt(CarriedAB, Obj);
        Edges.push_back(std::move(E));
      }
      if (!CarriedBA.empty() || !SpecBA.empty() || !VSpecBA.empty()) {
        DepEdge E;
        E.Src = B.I;
        E.Dst = A.I;
        E.Kind = memKindOf(B, A);
        E.Intra = false;
        E.CarriedAtHeaders = CarriedBA;
        E.MustCarriedAtHeaders = MustBA;
        E.SpecCarriedAtHeaders = SpecBA;
        E.ValueSpecCarriedAtHeaders = VSpecBA;
        E.OracleAtHeaders = OracleBA;
        E.MemObject = Obj;
        E.IsIO = A.IsIO && B.IsIO;
        E.IsIVDep = CanonicalCounterAt(CarriedBA, Obj);
        Edges.push_back(std::move(E));
      }
    }
  }
}

} // namespace

std::vector<DepEdge> psc::buildDepEdges(DepOracleStack &Stack) {
  std::vector<DepEdge> Edges;
  buildRegisterEdges(Stack, Edges);
  buildControlEdges(Stack, Edges);
  buildMemoryEdges(Stack, Edges);
  return Edges;
}
