//===- SpecOracle.cpp -----------------------------------------*- C++ -*-===//

#include "analysis/SpecOracle.h"

#include "profiling/DepProfile.h"
#include "pspdg/Fingerprint.h"

using namespace psc;

SpecOracle::SpecOracle(const FunctionAnalysis &FA, const DepProfile &Profile)
    : FA(FA), Profile(Profile), BodyHash(functionBodyHash(FA.function())) {}

bool SpecOracle::answer(const DepQuery &Q, DepResult &R) const {
  if (Q.Kind != DepQueryKind::MemCarried || !Q.L || !Q.SrcAcc || !Q.DstAcc)
    return false;
  const MemAccess &A = *Q.SrcAcc, &B = *Q.DstAcc;
  // Only dependences between known-base, non-I/O accesses are speculable:
  // the runtime validator watches load/store addresses, and an opaque
  // call's or print's effects have none to watch.
  if (!A.Base || !B.Base || A.IsIO || B.IsIO)
    return false;

  const std::string &Fn = FA.function().getName();
  unsigned NumInsts = static_cast<unsigned>(FA.instructions().size());
  unsigned Header = Q.L->getHeader();
  if (!Profile.observed(Fn, NumInsts, BodyHash, Header))
    return false; // untrained or stale: absence of data is not evidence
  if (Profile.manifested(Fn, Header, FA.indexOf(Q.Src), FA.indexOf(Q.Dst)))
    return false; // the dependence is real; leave the sound verdict alone

  R.Kind = Q.SrcAcc->isWrite()
               ? (Q.DstAcc->isWrite() ? DepKind::MemoryWAW : DepKind::MemoryRAW)
               : DepKind::MemoryWAR;
  R.Verdict = DepVerdict::NoDep;
  R.Carried = false;
  R.Speculative = true;
  return true;
}
