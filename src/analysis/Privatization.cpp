//===- Privatization.cpp --------------------------------------*- C++ -*-===//

#include "analysis/Privatization.h"

#include <map>
#include <vector>

using namespace psc;

std::set<const Value *>
psc::computeIterationPrivateScalars(const FunctionAnalysis &FA,
                                    const Loop &L) {
  const Function &F = FA.function();

  // Counters of canonical loops are never "private temporaries".
  std::set<const Value *> Counters;
  for (const Loop *Any : FA.loopInfo().loops())
    if (const ForLoopMeta *Meta = FA.forMeta(Any))
      Counters.insert(Meta->CounterStorage);

  // Gather per-scalar access info.
  struct Info {
    std::vector<unsigned> AccessBlocks;   // blocks inside L touching S
    std::vector<const Instruction *> FirstInBlock; // first access per block
    bool LoadedOutsideLoop = false;
    bool AddressEscapes = false; // used by a GEP (array) — not a scalar
  };
  std::map<const Value *, Info> Scalars;

  auto NoteAccess = [&](const Value *Ptr, Instruction *I, bool InLoop,
                        bool IsLoad) {
    auto *AI = dyn_cast<AllocaInst>(Ptr);
    if (!AI || AI->getAllocatedType()->isArray())
      return;
    Info &S = Scalars[AI];
    if (!InLoop) {
      if (IsLoad)
        S.LoadedOutsideLoop = true;
      return;
    }
    unsigned B = I->getParent()->getIndex();
    if (S.AccessBlocks.empty() || S.AccessBlocks.back() != B) {
      S.AccessBlocks.push_back(B);
      S.FirstInBlock.push_back(I);
    }
  };

  for (BasicBlock *BB : F) {
    bool InLoop = L.contains(BB->getIndex());
    for (Instruction *I : *BB) {
      if (auto *LI = dyn_cast<LoadInst>(I))
        NoteAccess(LI->getPointer(), I, InLoop, /*IsLoad=*/true);
      else if (auto *SI = dyn_cast<StoreInst>(I))
        NoteAccess(SI->getPointer(), I, InLoop, /*IsLoad=*/false);
      else if (auto *GI = dyn_cast<GEPInst>(I))
        if (auto *AI = dyn_cast<AllocaInst>(GI->getBase()))
          Scalars[AI].AddressEscapes = true;
    }
  }

  std::set<const Value *> Private;
  const DominatorTree &DT = FA.domTree();

  for (auto &[S, I] : Scalars) {
    if (Counters.count(S) || I.LoadedOutsideLoop || I.AddressEscapes ||
        I.AccessBlocks.empty())
      continue;

    // Find a store block dominating all access blocks whose first access
    // is a store.
    bool Qualifies = false;
    for (size_t K = 0; K < I.AccessBlocks.size() && !Qualifies; ++K) {
      const Instruction *First = I.FirstInBlock[K];
      if (!isa<StoreInst>(First))
        continue;
      unsigned D = I.AccessBlocks[K];
      bool DominatesAll = true;
      for (unsigned B : I.AccessBlocks)
        if (!DT.dominates(D, B)) {
          DominatesAll = false;
          break;
        }
      Qualifies = DominatesAll;
    }
    if (Qualifies)
      Private.insert(S);
  }
  return Private;
}
