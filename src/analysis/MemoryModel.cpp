//===- MemoryModel.cpp ----------------------------------------*- C++ -*-===//

#include "analysis/MemoryModel.h"

#include "ir/Module.h"

using namespace psc;

Value *psc::findUnderlyingObject(Value *Ptr) {
  while (true) {
    if (auto *GEP = dyn_cast<GEPInst>(Ptr)) {
      Ptr = GEP->getBase();
      continue;
    }
    if (isa<AllocaInst>(Ptr) || isa<GlobalVariable>(Ptr))
      return Ptr;
    if (auto *Arg = dyn_cast<Argument>(Ptr))
      return Arg->getType()->isPointer() ? Arg : nullptr;
    return nullptr;
  }
}

AliasResult psc::aliasBases(const Value *A, const Value *B) {
  if (!A || !B)
    return AliasResult::MayAlias; // opaque
  if (A == B)
    return AliasResult::MayAlias;

  bool AIsArg = isa<Argument>(A), BIsArg = isa<Argument>(B);
  bool AIsGlobal = isa<GlobalVariable>(A), BIsGlobal = isa<GlobalVariable>(B);

  // Distinct array arguments are restrict; an argument may alias a global.
  if (AIsArg && BIsArg)
    return AliasResult::NoAlias;
  if ((AIsArg && BIsGlobal) || (AIsGlobal && BIsArg))
    return AliasResult::MayAlias;

  // Distinct allocas/globals (and alloca vs anything else) never alias.
  return AliasResult::NoAlias;
}

std::vector<MemAccess> psc::collectMemAccesses(const Function &F) {
  std::vector<MemAccess> Accesses;
  for (BasicBlock *BB : F) {
    for (Instruction *I : *BB) {
      if (auto *LI = dyn_cast<LoadInst>(I)) {
        MemAccess A;
        A.I = I;
        A.Kind = MemAccess::AccessKind::Read;
        A.Base = findUnderlyingObject(LI->getPointer());
        if (auto *GEP = dyn_cast<GEPInst>(LI->getPointer())) {
          A.IsScalar = false;
          A.Subscript = buildAffineExpr(GEP->getIndex());
        }
        Accesses.push_back(std::move(A));
        continue;
      }
      if (auto *SI = dyn_cast<StoreInst>(I)) {
        MemAccess A;
        A.I = I;
        A.Kind = MemAccess::AccessKind::Write;
        A.Base = findUnderlyingObject(SI->getPointer());
        if (auto *GEP = dyn_cast<GEPInst>(SI->getPointer())) {
          A.IsScalar = false;
          A.Subscript = buildAffineExpr(GEP->getIndex());
        }
        Accesses.push_back(std::move(A));
        continue;
      }
      if (auto *CI = dyn_cast<CallInst>(I)) {
        const Function *Callee = CI->getCallee();
        const std::string &Name = Callee->getName();
        if (Module::isMarkerIntrinsicName(Name))
          continue;
        if (Callee->isDeclaration()) {
          if (Name == intrinsics::Print || Name == intrinsics::PrintF) {
            MemAccess A;
            A.I = I;
            A.Kind = MemAccess::AccessKind::ReadWrite;
            A.IsIO = true;
            Accesses.push_back(std::move(A));
          }
          // Pure math intrinsics: no memory effects.
          continue;
        }
        // Defined callee: opaque access touching unknown memory.
        MemAccess A;
        A.I = I;
        A.Kind = MemAccess::AccessKind::ReadWrite;
        A.IsScalar = false;
        Accesses.push_back(std::move(A));
        continue;
      }
    }
  }
  return Accesses;
}
