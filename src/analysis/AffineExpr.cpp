//===- AffineExpr.cpp -----------------------------------------*- C++ -*-===//

#include "analysis/AffineExpr.h"

#include "ir/Instructions.h"

#include <sstream>

using namespace psc;

AffineExpr AffineExpr::operator+(const AffineExpr &O) const {
  if (!Valid || !O.Valid)
    return invalid();
  AffineExpr R = *this;
  R.Constant += O.Constant;
  for (auto &[Sym, C] : O.Coeffs) {
    long &Slot = R.Coeffs[Sym];
    Slot += C;
    if (Slot == 0)
      R.Coeffs.erase(Sym);
  }
  return R;
}

AffineExpr AffineExpr::operator-(const AffineExpr &O) const {
  if (!Valid || !O.Valid)
    return invalid();
  AffineExpr Neg;
  Neg.Constant = -O.Constant;
  for (auto &[Sym, C] : O.Coeffs)
    Neg.Coeffs[Sym] = -C;
  return *this + Neg;
}

AffineExpr AffineExpr::operator*(const AffineExpr &O) const {
  if (!Valid || !O.Valid)
    return invalid();
  const AffineExpr *Const = nullptr, *Other = nullptr;
  if (isConstant()) {
    Const = this;
    Other = &O;
  } else if (O.isConstant()) {
    Const = &O;
    Other = this;
  } else {
    return invalid();
  }
  AffineExpr R;
  long K = Const->Constant;
  if (K == 0)
    return constant(0);
  R.Constant = Other->Constant * K;
  for (auto &[Sym, C] : Other->Coeffs)
    R.Coeffs[Sym] = C * K;
  return R;
}

std::string AffineExpr::str() const {
  if (!Valid)
    return "<non-affine>";
  std::ostringstream OS;
  bool First = true;
  for (auto &[Sym, C] : Coeffs) {
    if (!First)
      OS << " + ";
    First = false;
    OS << C << "*" << (Sym->getName().empty() ? "?" : Sym->getName());
  }
  if (Constant != 0 || First) {
    if (!First)
      OS << " + ";
    OS << Constant;
  }
  return OS.str();
}

AffineExpr psc::buildAffineExpr(const Value *V) {
  if (const auto *CI = dyn_cast<ConstantInt>(V))
    return AffineExpr::constant(CI->getValue());

  if (const auto *LI = dyn_cast<LoadInst>(V)) {
    // A direct scalar load (not through a GEP) becomes a symbol for the
    // loaded storage object.
    const Value *Ptr = LI->getPointer();
    if (isa<AllocaInst>(Ptr) || isa<GlobalVariable>(Ptr))
      return AffineExpr::symbol(Ptr);
    return AffineExpr::invalid();
  }

  if (const auto *BI = dyn_cast<BinaryInst>(V)) {
    if (!BI->getType()->isInt())
      return AffineExpr::invalid();
    AffineExpr L = buildAffineExpr(BI->getLHS());
    AffineExpr R = buildAffineExpr(BI->getRHS());
    switch (BI->getBinOp()) {
    case BinaryInst::BinOp::Add:
      return L + R;
    case BinaryInst::BinOp::Sub:
      return L - R;
    case BinaryInst::BinOp::Mul:
      return L * R;
    case BinaryInst::BinOp::Shl:
      if (R.isConstant() && R.Constant >= 0 && R.Constant < 62)
        return L * AffineExpr::constant(1L << R.Constant);
      return AffineExpr::invalid();
    default:
      return AffineExpr::invalid();
    }
  }

  if (const auto *UI = dyn_cast<UnaryInst>(V)) {
    if (UI->getUnOp() == UnaryInst::UnOp::Neg)
      return AffineExpr::constant(0) - buildAffineExpr(UI->getOperand(0));
    return AffineExpr::invalid();
  }

  return AffineExpr::invalid();
}
