//===- ValueSpec.h - Profile-backed value/reduction speculation --*- C++ -*-===//
///
/// \file
/// The second speculation pillar (DESIGN.md §10), parallel to the memory
/// pillar in SpecOracle.h: instead of assuming a dependence never
/// *manifests*, value speculation assumes the dependence's *value* is
/// predictable — so the runtime can break the carried chain by predicting
/// (and validating) the value instead of watching for conflicts.
///
/// Two speculation families:
///
///   * **Scalar value speculation.** A loop-carried scalar whose training
///     profile classifies it (profiling/DepProfile.h) as
///       - Invariant   — every write stored the loop-entry value,
///       - Strided     — every iteration's last write advanced by a fixed
///                       stride over the entry value, or
///       - WriteFirst  — no iteration reads the carried-in value
///     has its carried register/φ-equivalent dependences (in this IR,
///     whole-scalar memory dependences) downgraded to assumption-carrying
///     speculative NoDeps. The runtime privatizes the scalar, seeds each
///     iteration with the predicted value, logs every write, and the
///     validator checks observed == predicted (SpecValidation.h).
///
///   * **Reduction speculation.** A loop writing `reducible(var : fn)`
///     storage — rejected outright by the sound plan compiler ("writes
///     custom-reducible storage") — is promoted to a runnable reduction
///     when (a) a defined, side-effect-free combiner is registered,
///     (b) every *warm* access is an additive read-modify-write through
///     one address computation (load → add/sub → store through the same
///     pointer), and (c) every non-conforming access was cold in training
///     (never executed). The runtime privatizes the storage zero-filled,
///     merges partials by *executing* the user combiner in chunk order
///     (the combiner registry), and guard-watches the cold accesses: one
///     executing at run time is a misspeculation.
///
/// Like the memory oracle, the ValueSpecOracle sits OUTSIDE the sound
/// chain: DepOracleStack consults it as a second downgrade stage, only for
/// MemCarried queries neither the sound chain nor the memory-spec stage
/// resolved. Every downgrade obligates the runtime (DESIGN.md §10).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_ANALYSIS_VALUESPEC_H
#define PSPDG_ANALYSIS_VALUESPEC_H

#include "analysis/DepOracle.h"
#include "profiling/DepProfile.h"

#include <map>
#include <vector>

namespace psc {

class Loop;

/// Static + profile-backed viability of promoting one custom-reducible
/// storage inside one loop to a runtime-combined reduction.
struct ReductionShape {
  bool Viable = false;
  std::string Reason; ///< Why not viable (diagnostic), empty when viable.
  const Value *Storage = nullptr;
  Function *Combiner = nullptr;
  /// Conforming additive-RMW stores (their paired loads are implied).
  std::vector<const Instruction *> ConformingStores;
  /// Accesses that are not part of a conforming RMW and were cold in
  /// training: promoted plans guard-watch them (execution = rollback).
  std::vector<const Instruction *> ColdAccesses;
};

/// Analyzes the accesses of \p Storage inside \p L. \p Profile (with the
/// staleness inputs \p BodyHash) supplies the cold/warm evidence;
/// promotion always needs training evidence, so a null or unobserving
/// profile is never viable (the Reason string says why — diagnostics).
ReductionShape analyzeReductionShape(const FunctionAnalysis &FA,
                                     const Loop &L, const Value *Storage,
                                     const DepProfile *Profile,
                                     uint64_t BodyHash);

/// The module-scope `reducible(var : fn)` combiner registered for
/// \p Storage, or null. A combiner qualifies only when it is defined and
/// free of externally visible effects (no I/O, no region markers, no
/// calls to defined functions, no access to module globals — only its
/// arguments and locals) — the runtime executes it at merge time, which
/// the sequential run never does.
Function *registeredCombiner(const Module &M, const Value *Storage);

/// The profile key of a scalar storage's value observations: the bare name
/// for globals, "%name" for allocas — so a local shadowing a same-named
/// global cannot inherit (or pollute) the global's value class. Empty when
/// \p Storage is not nameable scalar storage.
std::string valueStorageKey(const Value *Storage);

/// The value-speculation downgrade stage (see file comment).
class ValueSpecOracle : public DepOracle {
public:
  /// \p Profile must outlive the oracle.
  ValueSpecOracle(const FunctionAnalysis &FA, const DepProfile &Profile);

  const char *name() const override { return valueSpecOracleName(); }
  bool answer(const DepQuery &Q, DepResult &R) const override;

private:
  bool scalarSpeculable(const Value *Storage, unsigned Header) const;
  bool reductionSpeculable(const Value *Storage, const Loop &L) const;

  const FunctionAnalysis &FA;
  const DepProfile &Profile;
  uint64_t BodyHash = 0;
  /// Reduction-shape verdicts, per (loop header, storage).
  mutable std::map<std::pair<unsigned, const Value *>, bool> ShapeMemo;
};

} // namespace psc

#endif // PSPDG_ANALYSIS_VALUESPEC_H
