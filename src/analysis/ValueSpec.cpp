//===- ValueSpec.cpp - Value/reduction speculation analysis ----*- C++ -*-===//

#include "analysis/ValueSpec.h"

#include "analysis/MemoryModel.h"
#include "ir/Module.h"
#include "pspdg/Fingerprint.h"

using namespace psc;

namespace {

/// True when \p F is safe for the runtime to execute at merge time: pure
/// compute over its arguments and its own locals — no I/O, no
/// parallel-region markers, no calls to defined functions (whose effects
/// the merge phase cannot account for), and no access to module globals.
/// The sequential run never executes the combiner, so ANY externally
/// visible effect — a print, or a load/store of a global — would diverge
/// the parallel run undetectably. Math intrinsics are fine.
bool combinerIsPure(const Function &F) {
  if (F.isDeclaration())
    return false;
  for (const BasicBlock *BB : F) {
    for (const Instruction *I : *BB) {
      if (const auto *LI = dyn_cast<LoadInst>(I)) {
        if (isa<GlobalVariable>(rootStorage(LI->getPointer())))
          return false; // reads shared state the merge phase may mutate
      } else if (const auto *SI = dyn_cast<StoreInst>(I)) {
        if (isa<GlobalVariable>(rootStorage(SI->getPointer())))
          return false; // mutates state the sequential run never touches
      }
      const auto *CI = dyn_cast<CallInst>(I);
      if (!CI)
        continue;
      const Function *Callee = CI->getCallee();
      if (!Callee->isDeclaration())
        return false; // defined call: unbounded effects
      const std::string &Name = Callee->getName();
      if (Name == intrinsics::Print || Name == intrinsics::PrintF ||
          Name == intrinsics::RegionBegin || Name == intrinsics::RegionEnd ||
          Name == intrinsics::BarrierMarker ||
          Name == intrinsics::TaskWaitMarker)
        return false;
    }
  }
  return true;
}

} // namespace

std::string psc::valueStorageKey(const Value *Storage) {
  if (const auto *GV = dyn_cast<GlobalVariable>(Storage))
    return GV->getName();
  if (const auto *AI = dyn_cast<AllocaInst>(Storage))
    return AI->getName().empty() ? std::string()
                                 : "%" + AI->getName();
  return std::string();
}

Function *psc::registeredCombiner(const Module &M, const Value *Storage) {
  for (const Directive &D : M.getParallelInfo().directives()) {
    if (D.isLoopDirective())
      continue;
    for (const ReductionClause &R : D.Reductions)
      if (R.Op == ReduceOp::Custom && R.Var.Storage == Storage &&
          R.CustomReducer && combinerIsPure(*R.CustomReducer))
        return R.CustomReducer;
  }
  return nullptr;
}

ReductionShape psc::analyzeReductionShape(const FunctionAnalysis &FA,
                                          const Loop &L, const Value *Storage,
                                          const DepProfile *Profile,
                                          uint64_t BodyHash) {
  ReductionShape Shape;
  Shape.Storage = Storage;
  const Function &F = FA.function();
  const Module &M = *F.getParent();

  Shape.Combiner = registeredCombiner(M, Storage);
  if (!Shape.Combiner) {
    Shape.Reason = "no runnable combiner registered";
    return Shape;
  }

  // Collect the loop's accesses of Storage and every SSA user of each
  // in-loop instruction (the IR keeps no use lists; one linear pass).
  std::vector<const Instruction *> Loads, Stores;
  std::map<const Value *, std::vector<const Instruction *>> Users;
  for (unsigned BI : L.blocks()) {
    for (const Instruction *I : *F.getBlock(BI)) {
      for (const Value *Op : I->operands())
        if (isa<Instruction>(Op))
          Users[Op].push_back(I);
      if (const auto *LI = dyn_cast<LoadInst>(I)) {
        if (rootStorage(LI->getPointer()) == Storage)
          Loads.push_back(I);
      } else if (const auto *SI = dyn_cast<StoreInst>(I)) {
        if (rootStorage(SI->getPointer()) == Storage)
          Stores.push_back(I);
      }
    }
  }

  // Conforming additive RMW: store(ptr, add/sub(load(ptr), x)) through the
  // SAME pointer SSA value (the front-end's compound-assignment shape), the
  // load feeding only the add, the add feeding only the store. Sub
  // qualifies on its left operand only (old - x accumulates -x; x - old
  // does not accumulate).
  std::set<const Instruction *> Conforming; // loads + stores of valid RMWs
  for (const Instruction *I : Stores) {
    const auto *SI = cast<StoreInst>(I);
    const auto *Bin = dyn_cast<BinaryInst>(SI->getStoredValue());
    if (!Bin || (Bin->getBinOp() != BinaryInst::BinOp::Add &&
                 Bin->getBinOp() != BinaryInst::BinOp::Sub))
      continue;
    const auto *Ld = dyn_cast<LoadInst>(Bin->getLHS());
    if (!Ld || Ld->getPointer() != SI->getPointer())
      continue;
    auto OnlyUser = [&](const Value *V, const Instruction *Expected) {
      auto It = Users.find(V);
      if (It == Users.end())
        return false;
      for (const Instruction *U : It->second)
        if (U != Expected)
          return false;
      return true;
    };
    if (!OnlyUser(Ld, Bin) || !OnlyUser(Bin, I))
      continue; // the partial's value leaks beyond the accumulation
    Conforming.insert(I);
    Conforming.insert(Ld);
    Shape.ConformingStores.push_back(I);
  }
  if (Shape.ConformingStores.empty()) {
    Shape.Reason = "no additive read-modify-write accumulation";
    return Shape;
  }

  // Promotion always needs training evidence: without an observation of
  // this loop there is no cold/warm distinction to license guards.
  const std::string &Fn = F.getName();
  unsigned NumInsts = static_cast<unsigned>(FA.instructions().size());
  unsigned Header = L.getHeader();
  if (!Profile || !Profile->observed(Fn, NumInsts, BodyHash, Header)) {
    Shape.Reason = "loop not observed by the training profile";
    return Shape;
  }

  // Every non-conforming access must be cold in training: a load would
  // observe the zero-seeded partial, a store would not accumulate. Cold
  // accesses become runtime guards (execution = misspeculation).
  for (const std::vector<const Instruction *> *Set : {&Loads, &Stores}) {
    for (const Instruction *I : *Set) {
      if (Conforming.count(I))
        continue;
      if (Profile->accessed(Fn, Header, FA.indexOf(I))) {
        Shape.Reason = "non-conforming access to reducible storage is not "
                       "profile-cold";
        return Shape;
      }
      Shape.ColdAccesses.push_back(I);
    }
  }

  Shape.Viable = true;
  return Shape;
}

//===----------------------------------------------------------------------===//
// ValueSpecOracle
//===----------------------------------------------------------------------===//

ValueSpecOracle::ValueSpecOracle(const FunctionAnalysis &FA,
                                 const DepProfile &Profile)
    : FA(FA), Profile(Profile), BodyHash(functionBodyHash(FA.function())) {}

bool ValueSpecOracle::scalarSpeculable(const Value *Storage,
                                       unsigned Header) const {
  std::string Key = valueStorageKey(Storage);
  if (Key.empty())
    return false;
  const DepProfile::ValueObs *Obs =
      Profile.valueObs(FA.function().getName(), Header, Key);
  return Obs && Obs->Kind != ValueClassKind::Varying;
}

bool ValueSpecOracle::reductionSpeculable(const Value *Storage,
                                          const Loop &L) const {
  auto Key = std::make_pair(L.getHeader(), Storage);
  auto It = ShapeMemo.find(Key);
  if (It != ShapeMemo.end())
    return It->second;
  bool Viable =
      analyzeReductionShape(FA, L, Storage, &Profile, BodyHash).Viable;
  ShapeMemo[Key] = Viable;
  return Viable;
}

bool ValueSpecOracle::answer(const DepQuery &Q, DepResult &R) const {
  if (Q.Kind != DepQueryKind::MemCarried || !Q.L || !Q.SrcAcc || !Q.DstAcc)
    return false;
  const MemAccess &A = *Q.SrcAcc, &B = *Q.DstAcc;
  // Only same-object dependences with known bases are value-speculable:
  // the prediction/combiner machinery attaches to one storage object.
  if (!A.Base || !B.Base || A.Base != B.Base || A.IsIO || B.IsIO)
    return false;

  const std::string &Fn = FA.function().getName();
  unsigned NumInsts = static_cast<unsigned>(FA.instructions().size());
  unsigned Header = Q.L->getHeader();
  if (!Profile.observed(Fn, NumInsts, BodyHash, Header))
    return false; // untrained or stale: absence of data is not evidence

  bool Speculable = false;
  if (A.IsScalar && B.IsScalar)
    Speculable = scalarSpeculable(A.Base, Header);
  else if (!A.IsScalar && !B.IsScalar)
    Speculable = reductionSpeculable(A.Base, *Q.L);
  if (!Speculable)
    return false;

  R.Kind = A.isWrite() ? (B.isWrite() ? DepKind::MemoryWAW : DepKind::MemoryRAW)
                       : DepKind::MemoryWAR;
  R.Verdict = DepVerdict::NoDep;
  R.Carried = false;
  R.Speculative = true;
  R.ValueSpec = true;
  return true;
}
