//===- Protocol.h - pscd wire protocol ----------------------------*- C++ -*-===//
///
/// \file
/// The resident analysis service's request protocol over a unix-domain
/// socket. A connection carries a sequence of independent request/response
/// frames:
///
///   frame   := u32le payload-length, payload
///   payload := u32le field-count, field*
///   field   := u32le key-length, key-bytes, u32le value-length, value-bytes
///
/// A message is a flat string→string field map. Values are binary-safe
/// (no escaping), so program sources and profile JSON ride verbatim.
/// Every request names its operation in the "op" field:
///
///   op=ping            liveness probe → {op:pong}
///   op=session         one compile→plan→run session; see Server.h for
///                      the field set (source, mode, engine, budget, ...)
///   op=stats           service observability snapshot → {json:...}
///   op=health          SLO-style health rollups (error rate, p99 vs.
///                      target, cache hit-rate floors) → {json:...}
///   op=forensics       the misspeculation flight recorder's resident
///                      ring → {total, count, records:<one JSON record
///                      per line, the pscc --misspec-out rendering>}
///   op=profile-merge   stream one training profile into the sharded
///                      store ({profile: <DepProfile JSON>})
///   op=shutdown        stop the server after responding
///
/// Responses carry ok=1 on success or ok=0 plus error=<message>; a
/// malformed frame closes the connection (there is no way to resynchronize
/// a corrupt length-prefixed stream).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_SERVICE_PROTOCOL_H
#define PSPDG_SERVICE_PROTOCOL_H

#include <cstdint>
#include <map>
#include <string>

namespace psc {
namespace service {

/// A protocol message: a flat field map (see file comment).
using Message = std::map<std::string, std::string>;

/// Upper bound on one frame's payload; a length prefix beyond it is
/// treated as stream corruption, not an allocation request.
constexpr uint32_t MaxFrameBytes = 64u << 20;

/// Serializes \p M to the payload wire form (without the frame length).
std::string encodeMessage(const Message &M);

/// Parses a payload back into a field map. Returns false (with \p Err)
/// on truncation, trailing bytes, or an oversize field count.
bool decodeMessage(const std::string &Payload, Message &Out,
                   std::string &Err);

/// Writes one length-prefixed frame to \p Fd (loops over partial writes).
bool writeFrame(int Fd, const Message &M, std::string &Err);

/// Reads one length-prefixed frame from \p Fd. Returns false on EOF or
/// error; a clean EOF before any byte leaves \p Err empty.
bool readFrame(int Fd, Message &Out, std::string &Err);

/// Convenience accessor: field value or \p Default when absent.
std::string field(const Message &M, const std::string &Key,
                  const std::string &Default = "");

} // namespace service
} // namespace psc

#endif // PSPDG_SERVICE_PROTOCOL_H
