//===- Caches.h - pscd cross-request caches -----------------------*- C++ -*-===//
///
/// \file
/// The resident service's cross-request cache hierarchy, every level LRU
/// with hit/miss/eviction counters:
///
///   * **ModuleCache (L1)** — compiled modules plus their pre-decoded
///     bytecode, keyed by a hash of the *source text*. A warm session
///     skips the frontend and the bytecode decoder entirely. Entries are
///     shared_ptr-held so an evicted module stays alive for sessions
///     still running on it.
///   * **MemoCache (L2)** — per-function dependence-oracle memo tables
///     (DepOracleStack::exportMemo), keyed by the *function body hash*
///     (pspdg/Fingerprint.h functionBodyHash). The key is semantic, not
///     textual: two sources whose function bodies are structurally
///     identical share analysis results, and an edited body misses
///     naturally. The cache additionally tracks the last body hash seen
///     per function *name* (callers scope the name — the server prefixes
///     the module name, so two modules' @main coexist): when a name
///     re-arrives with a different hash
///     (the function was edited), the stale entry is evicted LOUDLY —
///     counted in Stats::Invalidations and reported on stderr — so a
///     stale plan can never be served for an edited function. Only
///     non-speculative memo tables may be stored; speculative answers
///     depend on the training profile as well as the body (the stack
///     refuses to export them, Caches refuses to admit them).
///   * **PlanCache (L3)** — finished `--plans` lines, keyed by
///     (function body hash, abstraction kind). A warm non-speculative
///     analyze/full session does *zero* analysis work: the server serves
///     the rendered lines straight from here. Same loud edited-body
///     invalidation contract as L2 (one edit evicts every abstraction's
///     lines for that function). Speculative sessions bypass L3 entirely
///     — their plans depend on the profile snapshot, not just the body.
///
/// Between L1 and L3 sits the per-module **analysis bundle**: every
/// CachedModule lazily builds, once per (function, abstraction), the
/// FunctionAnalysis / PS-PDG / per-loop plan summaries — single-flight
/// (std::call_once), so concurrent first-analyze sessions block on one
/// builder instead of duplicating the work. The module is shared_ptr-held
/// and immutable, so references into a bundle stay valid for the entry's
/// lifetime; an edited source yields a new L1 key and therefore a fresh
/// module with fresh (empty) bundles — bundle invalidation is by
/// construction.
///
/// All caches are internally locked; all methods are thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_SERVICE_CACHES_H
#define PSPDG_SERVICE_CACHES_H

#include "analysis/DepOracle.h"
#include "emulator/Bytecode.h"
#include "ir/Module.h"
#include "obs/Trace.h"
#include "parallel/PlanLines.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace psc {
namespace service {

class MemoCache;

/// FNV-1a of the source text + module name — the L1 key.
uint64_t sourceKey(const std::string &Source, const std::string &Name);

/// One compiled program, shared read-only across sessions — plus its
/// lazily-built per-function analysis bundles (see file comment).
struct CachedModule {
  CachedModule();
  ~CachedModule();

  /// Module name — scopes the L2/L3 invalidation-tracking names the
  /// bundle builder writes back under (`<Name>:<fn>`).
  std::string Name;
  std::unique_ptr<Module> M;
  std::unique_ptr<BytecodeModule> BCM;
  /// functionBodyHash of every defined function — the L2/L3 key space,
  /// and the raw material of the edited-body invalidation check.
  std::map<std::string, uint64_t> BodyHashes;

  /// The per-function FunctionAnalysis (CFG, dom/post-dom, loop forest,
  /// instruction numbering), built once on first request (single-flight)
  /// and shared by every later session on this module. Safe for
  /// speculative sessions too: FunctionAnalysis is profile-independent
  /// and immutable after construction.
  const FunctionAnalysis &functionAnalysis(const Function &F) const;

  /// The per-loop plan summaries of \p F under \p Abs, built once per
  /// (function, abstraction) — single-flight; concurrent first-analyze
  /// sessions block on the one builder. The build runs a sound
  /// default-chain DepOracleStack (NEVER speculative — callers with a
  /// profile snapshot must plan on a fresh stack instead), seeding its
  /// memo from \p L2 and exporting it back after. \p Builds, when
  /// non-null, is incremented once per actual build — the stats
  /// counter the single-flight tests assert on.
  const std::vector<LoopPlanSummary> &
  planSummaries(const Function &F, AbstractionKind Abs, MemoCache *L2,
                std::atomic<uint64_t> *Builds,
                const std::function<void(const DepOracleStack &)> &OnStats =
                    {}) const;

private:
  struct FnBundle;
  FnBundle &bundleFor(const Function &F) const;

  mutable std::mutex BundleMu; ///< Guards the Bundles map shape only.
  mutable std::map<const Function *, std::unique_ptr<FnBundle>> Bundles;
};

struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;     ///< Capacity (LRU) evictions.
  uint64_t Invalidations = 0; ///< Edited-body (stale-hash) evictions.
  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / Total : 0.0;
  }
};

namespace cache_detail {

/// The LRU machinery shared by all three levels: one recency list + key
/// index + per-name last-body-hash map (the loud edited-body
/// invalidation trigger) + hit/miss/eviction counters behind one mutex.
/// Each level wraps a core with its own value type and key derivation;
/// a level whose entries fan out to multiple keys per body hash (L3:
/// one per abstraction) supplies a key expander so invalidation evicts
/// every derived key. Lookups and invalidations emit `cache.*` trace
/// instants tagged with the level's name.
template <typename V> class LruCore {
public:
  /// Maps an invalidated body hash to the derived keys to evict (at
  /// most 4); null means the hash itself is the key.
  using KeyExpander = unsigned (*)(uint64_t OldHash, uint64_t Keys[4]);

  LruCore(const char *Name, size_t Capacity, KeyExpander Expand = nullptr)
      : Name(Name), Capacity(Capacity), Expand(Expand) {}

  /// Returns the entry for \p Key, bumping its recency; null on miss.
  std::shared_ptr<const V> lookup(uint64_t Key) {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Index.find(Key);
    if (It == Index.end()) {
      ++Stats.Misses;
      obs::traceInstantf("cache.miss", "cache=%s", Name);
      return nullptr;
    }
    ++Stats.Hits;
    obs::traceInstantf("cache.hit", "cache=%s", Name);
    LRU.splice(LRU.begin(), LRU, It->second); // bump to most-recent
    return It->second->Val;
  }

  /// Admits \p Val under \p Key (no-op if the key raced in
  /// concurrently), evicting the least-recently-used entries beyond
  /// capacity.
  void insert(uint64_t Key, std::shared_ptr<const V> Val) {
    std::lock_guard<std::mutex> Lock(Mu);
    insertLocked(Key, std::move(Val));
  }

  /// insert() with the edited-body check on \p FnName first, under one
  /// lock acquisition.
  void insertNoted(const std::string &FnName, uint64_t BodyHash,
                   uint64_t Key, std::shared_ptr<const V> Val) {
    std::lock_guard<std::mutex> Lock(Mu);
    noteBodyLocked(FnName, BodyHash);
    insertLocked(Key, std::move(Val));
  }

  /// The edited-body check without an insert: notes that \p FnName now
  /// has \p BodyHash, evicting (loudly) any entry recorded under the
  /// name's previous hash.
  void noteBody(const std::string &FnName, uint64_t BodyHash) {
    std::lock_guard<std::mutex> Lock(Mu);
    noteBodyLocked(FnName, BodyHash);
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Stats;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return LRU.size();
  }

private:
  struct Entry {
    uint64_t Key;
    std::shared_ptr<const V> Val;
  };

  void insertLocked(uint64_t Key, std::shared_ptr<const V> Val) {
    if (Index.count(Key))
      return; // a concurrent session inserted the same entry first
    LRU.push_front(Entry{Key, std::move(Val)});
    Index[Key] = LRU.begin();
    while (LRU.size() > Capacity) {
      Index.erase(LRU.back().Key);
      LRU.pop_back();
      ++Stats.Evictions;
      obs::traceInstantf("cache.evict", "cache=%s", Name);
    }
  }

  void eraseKeyLocked(uint64_t Key) {
    auto It = Index.find(Key);
    if (It == Index.end())
      return;
    LRU.erase(It->second);
    Index.erase(It);
  }

  void noteBodyLocked(const std::string &FnName, uint64_t BodyHash) {
    auto [It, New] = LastHash.try_emplace(FnName, BodyHash);
    if (New || It->second == BodyHash)
      return;
    // The function was edited: its name re-arrived with a different body
    // hash. Evict the predecessor's entries loudly — a stale answer
    // served here would mean planning the *new* body with the *old*
    // body's results.
    std::fprintf(stderr,
                 "pscd: %s cache invalidating @%s (body hash %016llx -> "
                 "%016llx)\n",
                 Name, FnName.c_str(), (unsigned long long)It->second,
                 (unsigned long long)BodyHash);
    obs::traceInstantf("cache.invalidate", "cache=%s fn=%s", Name,
                       FnName.c_str());
    if (Expand) {
      uint64_t Keys[4];
      unsigned N = Expand(It->second, Keys);
      for (unsigned I = 0; I < N; ++I)
        eraseKeyLocked(Keys[I]);
    } else {
      eraseKeyLocked(It->second);
    }
    ++Stats.Invalidations;
    It->second = BodyHash;
  }

  const char *Name;
  mutable std::mutex Mu;
  size_t Capacity;
  KeyExpander Expand;
  std::list<Entry> LRU; ///< Front = most recent.
  std::unordered_map<uint64_t, typename std::list<Entry>::iterator> Index;
  /// Function name → last body hash seen (the invalidation trigger).
  std::unordered_map<std::string, uint64_t> LastHash;
  CacheStats Stats;
};

} // namespace cache_detail

/// L1: source-text hash → compiled module. LRU at \p Capacity entries.
class ModuleCache {
public:
  explicit ModuleCache(size_t Capacity = 64) : Core("module", Capacity) {}

  /// Returns the cached module for \p Key, bumping its recency; null on
  /// miss.
  std::shared_ptr<const CachedModule> lookup(uint64_t Key) {
    return Core.lookup(Key);
  }

  /// Admits \p V under \p Key (no-op if the key raced in concurrently),
  /// evicting the least-recently-used entry beyond capacity.
  void insert(uint64_t Key, std::shared_ptr<const CachedModule> V) {
    Core.insert(Key, std::move(V));
  }

  CacheStats stats() const { return Core.stats(); }
  size_t size() const { return Core.size(); }

private:
  cache_detail::LruCore<CachedModule> Core;
};

/// L2: function body hash → dependence memo table. LRU at \p Capacity
/// entries, with loud edited-body invalidation (see file comment).
class MemoCache {
public:
  using MemoTable = std::unordered_map<uint64_t, DepResult>;

  explicit MemoCache(size_t Capacity = 256) : Core("memo", Capacity) {}

  /// Returns the memo table for \p BodyHash, bumping recency; null on
  /// miss.
  std::shared_ptr<const MemoTable> lookup(uint64_t BodyHash) {
    return Core.lookup(BodyHash);
  }

  /// Admits \p T for function \p FnName at \p BodyHash. If \p FnName was
  /// last seen with a *different* body hash, the stale entry is evicted
  /// and the invalidation is counted and reported on stderr — an edited
  /// function must never be served its predecessor's analysis.
  void insert(const std::string &FnName, uint64_t BodyHash, MemoTable T) {
    Core.insertNoted(FnName, BodyHash, BodyHash,
                     std::make_shared<const MemoTable>(std::move(T)));
  }

  /// The edited-body check without an insert: notes that \p FnName now
  /// has \p BodyHash, evicting (loudly) any entry recorded under the
  /// name's previous hash. Used by the compile stage so invalidation
  /// happens as soon as the new body is seen, not only after its
  /// analysis completes.
  void noteBody(const std::string &FnName, uint64_t BodyHash) {
    Core.noteBody(FnName, BodyHash);
  }

  CacheStats stats() const { return Core.stats(); }
  size_t size() const { return Core.size(); }

private:
  cache_detail::LruCore<MemoTable> Core;
};

/// L3: (function body hash, abstraction kind) → finished plan lines.
/// LRU at \p Capacity entries, with the same loud edited-body
/// invalidation contract as L2 — one edit evicts the lines of *every*
/// abstraction cached under the function's previous hash (the key
/// expander handed to the core). Only non-speculative sessions read or
/// write this cache.
class PlanCache {
public:
  explicit PlanCache(size_t Capacity = 512)
      : Core("plan", Capacity, &PlanCache::expandKeys) {}

  /// Returns the rendered plan lines for (\p BodyHash, \p Abs), bumping
  /// recency; null on miss. An empty string is a valid hit (a loop-free
  /// function plans to nothing — caching that still skips the analysis).
  std::shared_ptr<const std::string> lookup(uint64_t BodyHash,
                                            AbstractionKind Abs) {
    return Core.lookup(keyFor(BodyHash, Abs));
  }

  /// Admits \p Lines for function \p FnName at (\p BodyHash, \p Abs),
  /// with the L2-style edited-body check on \p FnName first.
  void insert(const std::string &FnName, uint64_t BodyHash,
              AbstractionKind Abs, std::string Lines) {
    Core.insertNoted(
        FnName, BodyHash, keyFor(BodyHash, Abs),
        std::make_shared<const std::string>(std::move(Lines)));
  }

  /// The edited-body check without an insert (see MemoCache::noteBody).
  void noteBody(const std::string &FnName, uint64_t BodyHash) {
    Core.noteBody(FnName, BodyHash);
  }

  CacheStats stats() const { return Core.stats(); }
  size_t size() const { return Core.size(); }

private:
  /// The composite key: the body hash mixed with the abstraction index.
  static uint64_t keyFor(uint64_t BodyHash, AbstractionKind Abs);
  /// Invalidation fan-out: every abstraction's key for \p OldHash.
  static unsigned expandKeys(uint64_t OldHash, uint64_t Keys[4]);

  cache_detail::LruCore<std::string> Core;
};

} // namespace service
} // namespace psc

#endif // PSPDG_SERVICE_CACHES_H
