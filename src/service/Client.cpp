//===- Client.cpp ---------------------------------------------*- C++ -*-===//

#include "service/Client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace psc;
using namespace psc::service;

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::connect(const std::string &SocketPath, std::string &Err,
                     unsigned RetryMs) {
  close();
  if (SocketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
    Err = "socket path too long for AF_UNIX";
    return false;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);

  using Clock = std::chrono::steady_clock;
  Clock::time_point Deadline = Clock::now() + std::chrono::milliseconds(RetryMs);
  for (;;) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0)
      return true;
    int E = errno;
    ::close(Fd);
    Fd = -1;
    // ENOENT/ECONNREFUSED: the server hasn't bound (or hasn't listened)
    // yet — retry until the deadline. Anything else is terminal.
    if ((E != ENOENT && E != ECONNREFUSED) || Clock::now() >= Deadline) {
      Err = "cannot connect to " + SocketPath + ": " + std::strerror(E);
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

bool Client::request(const Message &Req, Message &Resp, std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  if (!writeFrame(Fd, Req, Err))
    return false;
  if (!readFrame(Fd, Resp, Err)) {
    if (Err.empty())
      Err = "server closed the connection";
    return false;
  }
  return true;
}
