//===- Server.h - pscd resident analysis service ------------------*- C++ -*-===//
///
/// \file
/// The resident analysis server behind `pscd` and `pscc --serve`: accepts
/// connections on a unix-domain socket and serves concurrent
/// compile→plan→run sessions (Protocol.h). Architecture:
///
///   * one accept thread; one handler thread per connection (connections
///     are long-lived client REPLs, not per-request sockets);
///   * session *stages* execute as tasks on the shared work-stealing
///     ThreadPool (runtime/ThreadPool.h) — the same scheduler the
///     parallel plan-execution engine uses — so N connections interleave
///     their compile/plan/run work across the pool's workers while each
///     handler thread merely coordinates;
///   * per-session isolation: every run stage executes on a fresh
///     ExecState (Interpreter::run constructs one per call) against the
///     shared read-only Module + BytecodeModule, under an *instruction
///     budget lease* drawn from a server-wide pool — a runaway session
///     exhausts its lease, not the server;
///   * cross-request caching: the source-keyed ModuleCache (L1), the
///     body-hash-keyed MemoCache (L2), and the plan-line PlanCache (L3)
///     from Caches.h — plus per-module single-flight analysis bundles —
///     so a warm non-speculative analyze session does zero analysis
///     work; plus the sharded ProfileStore for streamed training
///     evidence;
///   * observability: the `stats` request returns a JSON snapshot of
///     session latency percentiles, sessions/s, per-cache hit rates, a
///     per-stage (compile/plan/run) latency breakdown, the analysis
///     build counter, and profile-store shard occupancy.
///
/// Session request fields (op=session):
///   source   program text (required)
///   name     module name (default "session"; workload names are NOT
///            resolved server-side — the client ships the text)
///   mode     run | analyze | full (default full): which stages after
///            compile run — analyze = plan only, run = execute only
///   engine   bytecode (default) | walker
///   abs      pspdg (default) | pdg | jk — the plan stage's abstraction
///   budget   instruction-budget lease for the run stage (default 2e9)
///   spec     "1" = plan speculatively against a ProfileStore snapshot
///            (bypasses the memo and plan caches; speculative answers
///            are profile-dependent and are never cached across
///            requests)
///
/// Response fields: ok, error, cached ("1" = L1 hit), plans (per-loop
/// table, analyze/full), output + exit + completed (run/full).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_SERVICE_SERVER_H
#define PSPDG_SERVICE_SERVER_H

#include "analysis/DepOracle.h"
#include "obs/Metrics.h"
#include "runtime/ThreadPool.h"
#include "service/Caches.h"
#include "service/ProfileStore.h"
#include "service/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace psc {
namespace service {

struct ServerConfig {
  std::string SocketPath;
  unsigned PoolThreads = 4;      ///< Session-stage workers.
  size_t ModuleCacheCap = 64;    ///< L1 entries.
  size_t MemoCacheCap = 256;     ///< L2 entries.
  size_t PlanCacheCap = 512;     ///< L3 (plan-line) entries.
  unsigned ProfileShards = 16;
  /// Server-wide instruction-budget pool the run stages lease from.
  uint64_t BudgetPool = 16'000'000'000ULL;
  /// When non-empty, tracing is armed for the server's lifetime and each
  /// session's events are written to `<TraceDir>/session-<id>.json`
  /// (the session's time window; see DESIGN.md §13).
  std::string TraceDir;

  // --- Health layer (DESIGN.md §14) -------------------------------------
  /// >0: sessions slower than this are counted and logged to stderr (the
  /// slow-session log). 0 disables the log but never the counting SLOs.
  double SlowSessionMs = 0.0;
  /// SLO: the p99 session latency the `health` op grades against.
  double TargetP99Ms = 250.0;
  /// SLO: minimum acceptable hit rate for each warm cache level (graded
  /// only once a level has traffic; 0 accepts everything).
  double MinCacheHitRate = 0.0;
  /// SLO: maximum acceptable session error rate (errors / all sessions).
  double MaxErrorRate = 0.05;
};

class Server {
public:
  explicit Server(ServerConfig Config);
  ~Server();

  /// Binds the socket, starts the accept thread. False (with \p Err) when
  /// the path cannot be bound.
  bool start(std::string &Err);

  /// Blocks until a client's `shutdown` request arrives (or stop()).
  void waitForShutdown();

  /// Stops accepting, unblocks and joins every connection, removes the
  /// socket. Idempotent; the destructor calls it.
  void stop();

  const ServerConfig &config() const { return C; }

  /// Dispatches one request in-process — the session/stats/profile-merge
  /// machinery without a socket. The unit-test and benchmark surface; the
  /// socket handlers call exactly this.
  Message handle(const Message &Req);

  /// The observability snapshot (the `stats` request's json field).
  std::string statsJson() const;

  /// SLO-style health rollups (the `health` op's json field): session
  /// error rate, p99 latency vs. target, cache hit-rate floors, per-stage
  /// cpu time, slow-session and dropped-trace-event counts — each graded
  /// pass/fail plus an overall verdict.
  std::string healthJson() const;

  /// Prometheus text exposition (the `metrics` request's text field and
  /// `pscd --metrics-out`): the cache / stage / oracle / budget counters
  /// exported into the MetricsRegistry and rendered.
  std::string metricsText() const;

private:
  void acceptLoop();
  void connection(int Fd);

  Message handleSession(const Message &Req);
  Message handleExplain(const Message &Req);
  Message handleProfileMerge(const Message &Req);

  /// Stage-1 compile (or L1 hit) shared by session and explain requests:
  /// returns the cached/fresh module, null with \p Err on a compile
  /// failure. Runs the work on the pool; records the compile stage.
  std::shared_ptr<const CachedModule> getModule(const std::string &Source,
                                                const std::string &Name,
                                                bool &L1Hit,
                                                std::string &Err);

  /// Folds one oracle stack's per-oracle and query-cache counters into
  /// the server-wide totals metricsText() exports.
  void noteOracleStats(const DepOracleStack &Stack);

  /// Runs \p Stage as a ThreadPool task and blocks this (coordinator)
  /// thread until it finishes.
  void onPool(const std::function<void()> &Stage);

  uint64_t acquireBudget(uint64_t Want);
  void releaseBudget(uint64_t Lease);
  void recordSession(double Ms);

  /// Per-stage latency + cpu-time accounting (compile/plan/run), for the
  /// stats op's stage breakdown and the health op's cpu rollup. \p Stage
  /// indexes StageNames; \p CpuMs is the stage task's thread cpu time.
  void recordStage(unsigned Stage, double Ms, double CpuMs = 0.0);

  ServerConfig C;
  int ListenFd = -1;
  std::thread Accepter;
  std::atomic<bool> Stopping{false};
  std::atomic<bool> ShutdownRequested{false};

  std::mutex ConnMu;
  std::condition_variable ShutdownCv;
  std::vector<std::thread> Handlers;
  std::set<int> OpenFds; ///< Live connections, shut down to unblock reads.

  ThreadPool Pool;
  ModuleCache Modules;
  MemoCache Memos;
  PlanCache Plans;
  ProfileStore Profiles;

  /// Times the analysis bundle was actually built (once per
  /// function × abstraction × module incarnation) — the single-flight
  /// tests assert this stays flat under concurrent first-analyzes.
  std::atomic<uint64_t> AnalysisBuilds{0};

  std::mutex BudgetMu;
  std::condition_variable BudgetCv;
  uint64_t BudgetAvail;

  mutable std::mutex StatsMu;
  std::vector<double> LatencyRing; ///< Last RingCap session latencies, ms.
  size_t RingPos = 0;
  uint64_t TotalSessions = 0;
  struct StageStat {
    uint64_t Count = 0;
    double TotalMs = 0.0;
    double TotalCpuMs = 0.0; ///< Thread cpu time of the stage tasks.
    /// Last RingCap latencies of this stage, for the stats op's
    /// per-stage p50/p90/p99 (same ring discipline as LatencyRing).
    std::vector<double> Ring;
    size_t Pos = 0;
  };
  StageStat Stages[3]; ///< compile / plan / run, under StatsMu.
  static constexpr const char *StageNames[3] = {"compile", "plan", "run"};
  std::chrono::steady_clock::time_point StartTime;
  static constexpr size_t RingCap = 512;

  /// Budget leases that found the pool short on first look (the session
  /// then blocks until capacity frees — this counts the contention).
  std::atomic<uint64_t> BudgetDenials{0};

  /// Health accounting: sessions that returned an error response (they
  /// never reach recordSession) and sessions over the slow threshold.
  std::atomic<uint64_t> FailedSessions{0};
  std::atomic<uint64_t> SlowSessions{0};

  /// Per-oracle query totals accumulated from every plan-stage stack
  /// (bundle builds and speculative sessions alike), under OracleMu.
  mutable std::mutex OracleMu;
  std::map<std::string, DepOracleStack::OracleStats> OracleTotals;
  DepOracleStack::CacheStats OracleCacheTotals;

  /// Monotonic session ordinal — names the per-session trace files.
  std::atomic<uint64_t> SessionSeq{0};

  /// The unified metrics surface (obs/Metrics.h). The cheap stat structs
  /// above stay authoritative on their hot paths; metricsText() exports
  /// them into the registry and renders.
  mutable obs::MetricsRegistry Registry;
};

} // namespace service
} // namespace psc

#endif // PSPDG_SERVICE_SERVER_H
