//===- Caches.cpp ---------------------------------------------*- C++ -*-===//

#include "service/Caches.h"

#include <cstdio>

using namespace psc;
using namespace psc::service;

uint64_t service::sourceKey(const std::string &Source,
                            const std::string &Name) {
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](const std::string &S) {
    for (char C : S) {
      H ^= static_cast<uint8_t>(C);
      H *= 1099511628211ULL;
    }
    H ^= 0xff; // separator so ("ab","c") != ("a","bc")
    H *= 1099511628211ULL;
  };
  Mix(Name);
  Mix(Source);
  return H;
}

// --- ModuleCache -------------------------------------------------------------

std::shared_ptr<const CachedModule> ModuleCache::lookup(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Stats.Misses;
    return nullptr;
  }
  ++Stats.Hits;
  LRU.splice(LRU.begin(), LRU, It->second); // bump to most-recent
  return It->second->V;
}

void ModuleCache::insert(uint64_t Key,
                         std::shared_ptr<const CachedModule> V) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Index.count(Key))
    return; // a concurrent session compiled the same source first
  LRU.push_front(Entry{Key, std::move(V)});
  Index[Key] = LRU.begin();
  while (LRU.size() > Capacity) {
    Index.erase(LRU.back().Key);
    LRU.pop_back();
    ++Stats.Evictions;
  }
}

CacheStats ModuleCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

size_t ModuleCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return LRU.size();
}

// --- MemoCache ---------------------------------------------------------------

void MemoCache::eraseKeyLocked(uint64_t Key) {
  auto It = Index.find(Key);
  if (It == Index.end())
    return;
  LRU.erase(It->second);
  Index.erase(It);
}

void MemoCache::noteBodyLocked(const std::string &FnName,
                               uint64_t BodyHash) {
  auto [It, New] = LastHash.try_emplace(FnName, BodyHash);
  if (New || It->second == BodyHash)
    return;
  // The function was edited: its name re-arrived with a different body
  // hash. Evict the predecessor's analysis loudly — a stale memo served
  // here would mean planning the *new* body with the *old* body's
  // dependence answers.
  std::fprintf(stderr,
               "pscd: memo cache invalidating @%s (body hash %016llx -> "
               "%016llx)\n",
               FnName.c_str(), (unsigned long long)It->second,
               (unsigned long long)BodyHash);
  eraseKeyLocked(It->second);
  ++Stats.Invalidations;
  It->second = BodyHash;
}

std::shared_ptr<const MemoCache::MemoTable>
MemoCache::lookup(uint64_t BodyHash) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(BodyHash);
  if (It == Index.end()) {
    ++Stats.Misses;
    return nullptr;
  }
  ++Stats.Hits;
  LRU.splice(LRU.begin(), LRU, It->second);
  return It->second->V;
}

void MemoCache::insert(const std::string &FnName, uint64_t BodyHash,
                       MemoTable T) {
  std::lock_guard<std::mutex> Lock(Mu);
  noteBodyLocked(FnName, BodyHash);
  if (Index.count(BodyHash))
    return;
  LRU.push_front(Entry{BodyHash,
                       std::make_shared<const MemoTable>(std::move(T))});
  Index[BodyHash] = LRU.begin();
  while (LRU.size() > Capacity) {
    Index.erase(LRU.back().Key);
    LRU.pop_back();
    ++Stats.Evictions;
  }
}

void MemoCache::noteBody(const std::string &FnName, uint64_t BodyHash) {
  std::lock_guard<std::mutex> Lock(Mu);
  noteBodyLocked(FnName, BodyHash);
}

CacheStats MemoCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

size_t MemoCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return LRU.size();
}
