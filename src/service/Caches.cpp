//===- Caches.cpp ---------------------------------------------*- C++ -*-===//

#include "service/Caches.h"

#include "pspdg/PSPDGBuilder.h"

using namespace psc;
using namespace psc::service;

uint64_t service::sourceKey(const std::string &Source,
                            const std::string &Name) {
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](const std::string &S) {
    for (char C : S) {
      H ^= static_cast<uint8_t>(C);
      H *= 1099511628211ULL;
    }
    H ^= 0xff; // separator so ("ab","c") != ("a","bc")
    H *= 1099511628211ULL;
  };
  Mix(Name);
  Mix(Source);
  return H;
}

// --- CachedModule analysis bundles -------------------------------------------

/// The once-per-function analysis artifacts. FAOnce/PlanOnce give
/// single-flight construction: the first session to ask builds, every
/// concurrent asker blocks inside call_once, every later asker returns
/// immediately. Entries live in a node-stable std::map guarded by
/// BundleMu (map shape only — the flags serialize the builds themselves).
struct CachedModule::FnBundle {
  std::once_flag FAOnce;
  std::unique_ptr<FunctionAnalysis> FA;
  /// One flight + result slot per AbstractionKind (OpenMP's slot exists
  /// but is never used — it has no compiler plan view).
  std::once_flag PlanOnce[4];
  std::vector<LoopPlanSummary> Plans[4];
  /// The PS-PDG, built only by the PSPDG-abstraction flight (the only
  /// flight that touches it — no cross-flight race).
  std::unique_ptr<PSPDG> G;
};

CachedModule::CachedModule() = default;
CachedModule::~CachedModule() = default;

CachedModule::FnBundle &CachedModule::bundleFor(const Function &F) const {
  std::lock_guard<std::mutex> Lock(BundleMu);
  std::unique_ptr<FnBundle> &Slot = Bundles[&F];
  if (!Slot)
    Slot = std::make_unique<FnBundle>();
  return *Slot;
}

const FunctionAnalysis &
CachedModule::functionAnalysis(const Function &F) const {
  FnBundle &B = bundleFor(F);
  std::call_once(B.FAOnce, [&] {
    obs::TraceSpan Span("analysis.bundle", "fn=%s", F.getName().c_str());
    B.FA = std::make_unique<FunctionAnalysis>(F);
  });
  return *B.FA;
}

const std::vector<LoopPlanSummary> &
CachedModule::planSummaries(
    const Function &F, AbstractionKind Abs, MemoCache *L2,
    std::atomic<uint64_t> *Builds,
    const std::function<void(const DepOracleStack &)> &OnStats) const {
  FnBundle &B = bundleFor(F);
  unsigned AbsIdx = static_cast<unsigned>(Abs);
  std::call_once(B.PlanOnce[AbsIdx], [&] {
    if (Builds)
      ++*Builds;
    const FunctionAnalysis &FA = functionAnalysis(F);
    // A sound default-chain stack: its memo (and therefore the summaries)
    // is a pure function of the body, so both are safe to share across
    // sessions and to persist through L2/L3. Speculative planning must
    // not come through here — it depends on the profile snapshot.
    DepOracleStack Stack(FA);
    uint64_t BH = BodyHashes.at(F.getName());
    if (L2)
      if (auto Seed = L2->lookup(BH))
        Stack.seedMemo(*Seed);
    // Only this abstraction's flight may touch B.G: a concurrent PDG/JK
    // flight reading it while the PSPDG flight writes would race.
    PSPDG *G = nullptr;
    if (Abs == AbstractionKind::PSPDG) {
      B.G = buildPSPDG(FA, Stack);
      G = B.G.get();
    }
    AbstractionView View(Abs, FA, Stack, G);
    B.Plans[AbsIdx] = summarizePlans(FA, View);
    if (L2)
      L2->insert(Name + ":" + F.getName(), BH, Stack.exportMemo());
    if (OnStats)
      OnStats(Stack);
  });
  return B.Plans[AbsIdx];
}

// --- PlanCache keying --------------------------------------------------------

uint64_t PlanCache::keyFor(uint64_t BodyHash, AbstractionKind Abs) {
  // Splitmix-style mix of the abstraction index into the body hash so
  // the per-abstraction entries of one body land on distinct keys.
  uint64_t K = BodyHash ^
               (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(Abs) + 1));
  K ^= K >> 30;
  K *= 0xbf58476d1ce4e5b9ULL;
  K ^= K >> 27;
  return K;
}

unsigned PlanCache::expandKeys(uint64_t OldHash, uint64_t Keys[4]) {
  for (unsigned A = 0; A < 4; ++A)
    Keys[A] = keyFor(OldHash, static_cast<AbstractionKind>(A));
  return 4;
}
