//===- Caches.cpp ---------------------------------------------*- C++ -*-===//

#include "service/Caches.h"

#include "pspdg/PSPDGBuilder.h"

#include <cstdio>

using namespace psc;
using namespace psc::service;

uint64_t service::sourceKey(const std::string &Source,
                            const std::string &Name) {
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](const std::string &S) {
    for (char C : S) {
      H ^= static_cast<uint8_t>(C);
      H *= 1099511628211ULL;
    }
    H ^= 0xff; // separator so ("ab","c") != ("a","bc")
    H *= 1099511628211ULL;
  };
  Mix(Name);
  Mix(Source);
  return H;
}

// --- CachedModule analysis bundles -------------------------------------------

/// The once-per-function analysis artifacts. FAOnce/PlanOnce give
/// single-flight construction: the first session to ask builds, every
/// concurrent asker blocks inside call_once, every later asker returns
/// immediately. Entries live in a node-stable std::map guarded by
/// BundleMu (map shape only — the flags serialize the builds themselves).
struct CachedModule::FnBundle {
  std::once_flag FAOnce;
  std::unique_ptr<FunctionAnalysis> FA;
  /// One flight + result slot per AbstractionKind (OpenMP's slot exists
  /// but is never used — it has no compiler plan view).
  std::once_flag PlanOnce[4];
  std::vector<LoopPlanSummary> Plans[4];
  /// The PS-PDG, built only by the PSPDG-abstraction flight (the only
  /// flight that touches it — no cross-flight race).
  std::unique_ptr<PSPDG> G;
};

CachedModule::CachedModule() = default;
CachedModule::~CachedModule() = default;

CachedModule::FnBundle &CachedModule::bundleFor(const Function &F) const {
  std::lock_guard<std::mutex> Lock(BundleMu);
  std::unique_ptr<FnBundle> &Slot = Bundles[&F];
  if (!Slot)
    Slot = std::make_unique<FnBundle>();
  return *Slot;
}

const FunctionAnalysis &
CachedModule::functionAnalysis(const Function &F) const {
  FnBundle &B = bundleFor(F);
  std::call_once(B.FAOnce,
                 [&] { B.FA = std::make_unique<FunctionAnalysis>(F); });
  return *B.FA;
}

const std::vector<LoopPlanSummary> &
CachedModule::planSummaries(const Function &F, AbstractionKind Abs,
                            MemoCache *L2,
                            std::atomic<uint64_t> *Builds) const {
  FnBundle &B = bundleFor(F);
  unsigned AbsIdx = static_cast<unsigned>(Abs);
  std::call_once(B.PlanOnce[AbsIdx], [&] {
    if (Builds)
      ++*Builds;
    const FunctionAnalysis &FA = functionAnalysis(F);
    // A sound default-chain stack: its memo (and therefore the summaries)
    // is a pure function of the body, so both are safe to share across
    // sessions and to persist through L2/L3. Speculative planning must
    // not come through here — it depends on the profile snapshot.
    DepOracleStack Stack(FA);
    uint64_t BH = BodyHashes.at(F.getName());
    if (L2)
      if (auto Seed = L2->lookup(BH))
        Stack.seedMemo(*Seed);
    // Only this abstraction's flight may touch B.G: a concurrent PDG/JK
    // flight reading it while the PSPDG flight writes would race.
    PSPDG *G = nullptr;
    if (Abs == AbstractionKind::PSPDG) {
      B.G = buildPSPDG(FA, Stack);
      G = B.G.get();
    }
    AbstractionView View(Abs, FA, Stack, G);
    B.Plans[AbsIdx] = summarizePlans(FA, View);
    if (L2)
      L2->insert(Name + ":" + F.getName(), BH, Stack.exportMemo());
  });
  return B.Plans[AbsIdx];
}

// --- ModuleCache -------------------------------------------------------------

std::shared_ptr<const CachedModule> ModuleCache::lookup(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Stats.Misses;
    return nullptr;
  }
  ++Stats.Hits;
  LRU.splice(LRU.begin(), LRU, It->second); // bump to most-recent
  return It->second->V;
}

void ModuleCache::insert(uint64_t Key,
                         std::shared_ptr<const CachedModule> V) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Index.count(Key))
    return; // a concurrent session compiled the same source first
  LRU.push_front(Entry{Key, std::move(V)});
  Index[Key] = LRU.begin();
  while (LRU.size() > Capacity) {
    Index.erase(LRU.back().Key);
    LRU.pop_back();
    ++Stats.Evictions;
  }
}

CacheStats ModuleCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

size_t ModuleCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return LRU.size();
}

// --- MemoCache ---------------------------------------------------------------

void MemoCache::eraseKeyLocked(uint64_t Key) {
  auto It = Index.find(Key);
  if (It == Index.end())
    return;
  LRU.erase(It->second);
  Index.erase(It);
}

void MemoCache::noteBodyLocked(const std::string &FnName,
                               uint64_t BodyHash) {
  auto [It, New] = LastHash.try_emplace(FnName, BodyHash);
  if (New || It->second == BodyHash)
    return;
  // The function was edited: its name re-arrived with a different body
  // hash. Evict the predecessor's analysis loudly — a stale memo served
  // here would mean planning the *new* body with the *old* body's
  // dependence answers.
  std::fprintf(stderr,
               "pscd: memo cache invalidating @%s (body hash %016llx -> "
               "%016llx)\n",
               FnName.c_str(), (unsigned long long)It->second,
               (unsigned long long)BodyHash);
  eraseKeyLocked(It->second);
  ++Stats.Invalidations;
  It->second = BodyHash;
}

std::shared_ptr<const MemoCache::MemoTable>
MemoCache::lookup(uint64_t BodyHash) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(BodyHash);
  if (It == Index.end()) {
    ++Stats.Misses;
    return nullptr;
  }
  ++Stats.Hits;
  LRU.splice(LRU.begin(), LRU, It->second);
  return It->second->V;
}

void MemoCache::insert(const std::string &FnName, uint64_t BodyHash,
                       MemoTable T) {
  std::lock_guard<std::mutex> Lock(Mu);
  noteBodyLocked(FnName, BodyHash);
  if (Index.count(BodyHash))
    return;
  LRU.push_front(Entry{BodyHash,
                       std::make_shared<const MemoTable>(std::move(T))});
  Index[BodyHash] = LRU.begin();
  while (LRU.size() > Capacity) {
    Index.erase(LRU.back().Key);
    LRU.pop_back();
    ++Stats.Evictions;
  }
}

void MemoCache::noteBody(const std::string &FnName, uint64_t BodyHash) {
  std::lock_guard<std::mutex> Lock(Mu);
  noteBodyLocked(FnName, BodyHash);
}

CacheStats MemoCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

size_t MemoCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return LRU.size();
}

// --- PlanCache ---------------------------------------------------------------

uint64_t PlanCache::keyFor(uint64_t BodyHash, AbstractionKind Abs) {
  // Splitmix-style mix of the abstraction index into the body hash so
  // the per-abstraction entries of one body land on distinct keys.
  uint64_t K = BodyHash ^
               (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(Abs) + 1));
  K ^= K >> 30;
  K *= 0xbf58476d1ce4e5b9ULL;
  K ^= K >> 27;
  return K;
}

void PlanCache::eraseKeyLocked(uint64_t Key) {
  auto It = Index.find(Key);
  if (It == Index.end())
    return;
  LRU.erase(It->second);
  Index.erase(It);
}

void PlanCache::noteBodyLocked(const std::string &FnName,
                               uint64_t BodyHash) {
  auto [It, New] = LastHash.try_emplace(FnName, BodyHash);
  if (New || It->second == BodyHash)
    return;
  // Edited body: evict every abstraction's lines cached under the
  // previous hash, loudly — a stale plan served for a new body is the
  // one failure mode this cache must never have.
  std::fprintf(stderr,
               "pscd: plan cache invalidating @%s (body hash %016llx -> "
               "%016llx)\n",
               FnName.c_str(), (unsigned long long)It->second,
               (unsigned long long)BodyHash);
  for (unsigned A = 0; A < 4; ++A)
    eraseKeyLocked(keyFor(It->second, static_cast<AbstractionKind>(A)));
  ++Stats.Invalidations;
  It->second = BodyHash;
}

std::shared_ptr<const std::string>
PlanCache::lookup(uint64_t BodyHash, AbstractionKind Abs) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(keyFor(BodyHash, Abs));
  if (It == Index.end()) {
    ++Stats.Misses;
    return nullptr;
  }
  ++Stats.Hits;
  LRU.splice(LRU.begin(), LRU, It->second);
  return It->second->V;
}

void PlanCache::insert(const std::string &FnName, uint64_t BodyHash,
                       AbstractionKind Abs, std::string Lines) {
  std::lock_guard<std::mutex> Lock(Mu);
  noteBodyLocked(FnName, BodyHash);
  uint64_t Key = keyFor(BodyHash, Abs);
  if (Index.count(Key))
    return; // a concurrent session rendered the same plans first
  LRU.push_front(Entry{Key,
                       std::make_shared<const std::string>(std::move(Lines))});
  Index[Key] = LRU.begin();
  while (LRU.size() > Capacity) {
    Index.erase(LRU.back().Key);
    LRU.pop_back();
    ++Stats.Evictions;
  }
}

void PlanCache::noteBody(const std::string &FnName, uint64_t BodyHash) {
  std::lock_guard<std::mutex> Lock(Mu);
  noteBodyLocked(FnName, BodyHash);
}

CacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return LRU.size();
}
