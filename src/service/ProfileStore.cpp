//===- ProfileStore.cpp ---------------------------------------*- C++ -*-===//

#include "service/ProfileStore.h"

using namespace psc;
using namespace psc::service;

ProfileStore::ProfileStore(unsigned NumShards) {
  if (NumShards == 0)
    NumShards = 1;
  Shards.reserve(NumShards);
  for (unsigned I = 0; I < NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

unsigned ProfileStore::shardOf(const std::string &FnName) const {
  uint64_t H = 1469598103934665603ULL;
  for (char C : FnName) {
    H ^= static_cast<uint8_t>(C);
    H *= 1099511628211ULL;
  }
  return static_cast<unsigned>(H % Shards.size());
}

void ProfileStore::merge(const DepProfile &P) {
  // Split the incoming document into per-shard slices first (no locks
  // held), then merge each slice under its shard's lock only. Function
  // names hash to stable shards, so one function's whole history — and
  // DepProfile::merge's stale-guard tombstones for it — stay in one
  // shard across any interleaving of concurrent merges.
  std::vector<DepProfile> Slices(Shards.size());
  for (const auto &[Name, FP] : P.Functions)
    Slices[shardOf(Name)].Functions.emplace(Name, FP);
  for (size_t I = 0; I < Shards.size(); ++I) {
    if (Slices[I].empty())
      continue;
    Shard &S = *Shards[I];
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.P.merge(Slices[I]);
    ++S.Merges;
  }
}

DepProfile ProfileStore::snapshot() const {
  DepProfile Out;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mu);
    // Shards hold disjoint function sets, so plain merge() is a union
    // with no conflict path.
    Out.merge(S->P);
  }
  return Out;
}

std::vector<ProfileStore::ShardStat> ProfileStore::shardStats() const {
  std::vector<ShardStat> Out;
  Out.reserve(Shards.size());
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mu);
    ShardStat St;
    St.Functions = S->P.Functions.size();
    for (const auto &[Name, FP] : S->P.Functions)
      St.Loops += FP.Loops.size();
    St.Merges = S->Merges;
    Out.push_back(St);
  }
  return Out;
}
