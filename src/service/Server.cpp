//===- Server.cpp ---------------------------------------------*- C++ -*-===//

#include "service/Server.h"

#include "analysis/DepOracle.h"
#include "emulator/Interpreter.h"
#include "frontend/Frontend.h"
#include "obs/Forensics.h"
#include "obs/PlanDecision.h"
#include "obs/Trace.h"
#include "parallel/AbstractionView.h"
#include "parallel/PlanLines.h"
#include "pspdg/Fingerprint.h"
#include "pspdg/PSPDGBuilder.h"
#include "runtime/Schedule.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <future>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace psc;
using namespace psc::service;

namespace {

AbstractionKind parseAbs(const std::string &S) {
  if (S == "pdg")
    return AbstractionKind::PDG;
  if (S == "jk")
    return AbstractionKind::JK;
  return AbstractionKind::PSPDG;
}

Message errorResponse(const std::string &Err) {
  return Message{{"ok", "0"}, {"error", Err}};
}

/// CPU time of the calling thread in ms — sampled at a stage task's entry
/// and exit (same pool thread) for the health layer's per-stage cpu
/// accounting.
double threadCpuMs() {
  timespec TS;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &TS) != 0)
    return 0.0;
  return TS.tv_sec * 1e3 + TS.tv_nsec / 1e6;
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  double Rank = P * (Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - Lo;
  return Sorted[Lo] * (1.0 - Frac) + Sorted[Hi] * Frac;
}

} // namespace

Server::Server(ServerConfig Config)
    : C(std::move(Config)), Pool(C.PoolThreads ? C.PoolThreads : 1),
      Modules(C.ModuleCacheCap), Memos(C.MemoCacheCap),
      Plans(C.PlanCacheCap),
      Profiles(C.ProfileShards), BudgetAvail(C.BudgetPool),
      StartTime(std::chrono::steady_clock::now()) {
  LatencyRing.reserve(RingCap);
  // Per-session trace files need the recorder armed for the server's
  // whole lifetime; sessions carve their [start, end] windows out of it.
  if (!C.TraceDir.empty())
    obs::traceEnable();
}

Server::~Server() { stop(); }

bool Server::start(std::string &Err) {
  if (C.SocketPath.empty()) {
    Err = "pscd: no socket path configured";
    return false;
  }
  if (C.SocketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
    Err = "pscd: socket path too long for AF_UNIX";
    return false;
  }
  // A client that disconnects mid-response must cost the handler an EPIPE,
  // not the process a SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Err = "pscd: socket: " + std::string(std::strerror(errno));
    return false;
  }
  ::unlink(C.SocketPath.c_str());
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, C.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0 ||
      ::listen(ListenFd, 64) != 0) {
    Err = "pscd: cannot bind " + C.SocketPath + ": " +
          std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  Accepter = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::acceptLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // listener closed (stop())
    }
    if (Stopping.load()) {
      ::close(Fd);
      break;
    }
    std::lock_guard<std::mutex> Lock(ConnMu);
    OpenFds.insert(Fd);
    Handlers.emplace_back([this, Fd] { connection(Fd); });
  }
}

void Server::connection(int Fd) {
  for (;;) {
    Message Req, Resp;
    std::string Err;
    if (!readFrame(Fd, Req, Err)) {
      // Clean EOF ends the connection silently; a malformed frame is
      // unresynchronizable, so it ends it loudly.
      if (!Err.empty())
        std::fprintf(stderr, "pscd: dropping connection: %s\n", Err.c_str());
      break;
    }
    Resp = handle(Req);
    if (!writeFrame(Fd, Resp, Err)) {
      std::fprintf(stderr, "pscd: %s\n", Err.c_str());
      break;
    }
    if (field(Req, "op") == "shutdown")
      break;
  }
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    OpenFds.erase(Fd);
  }
  ::close(Fd);
}

void Server::waitForShutdown() {
  std::unique_lock<std::mutex> Lock(ConnMu);
  ShutdownCv.wait(Lock, [&] {
    return ShutdownRequested.load() || Stopping.load();
  });
}

void Server::stop() {
  if (Stopping.exchange(true))
    return;
  if (ListenFd >= 0) {
    // shutdown() unblocks accept(); close() releases the fd.
    ::shutdown(ListenFd, SHUT_RDWR);
    ::close(ListenFd);
  }
  {
    // Unblock handlers parked in readFrame().
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (int Fd : OpenFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
  if (Accepter.joinable())
    Accepter.join();
  // After the accepter is gone, Handlers can no longer grow.
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    ToJoin.swap(Handlers);
  }
  for (std::thread &T : ToJoin)
    T.join();
  if (!C.SocketPath.empty())
    ::unlink(C.SocketPath.c_str());
  ShutdownCv.notify_all();
}

// --- Dispatch ----------------------------------------------------------------

Message Server::handle(const Message &Req) {
  std::string Op = field(Req, "op");
  if (Op == "ping")
    return Message{{"ok", "1"}, {"op", "pong"}};
  if (Op == "stats")
    return Message{{"ok", "1"}, {"json", statsJson()}};
  if (Op == "metrics")
    return Message{{"ok", "1"}, {"text", metricsText()}};
  if (Op == "health")
    return Message{{"ok", "1"}, {"json", healthJson()}};
  if (Op == "forensics") {
    // The misspeculation flight recorder's resident ring, rendered by
    // the same canonical renderer pscc's --misspec-out artifact uses —
    // record lines are byte-identical across the two surfaces.
    std::vector<obs::MisspecRecord> Records = obs::misspecRecords();
    std::string Lines;
    for (const obs::MisspecRecord &R : Records)
      Lines += obs::renderMisspecRecord(R) + "\n";
    return Message{{"ok", "1"},
                   {"total", std::to_string(obs::misspecTotal())},
                   {"count", std::to_string(Records.size())},
                   {"records", Lines}};
  }
  if (Op == "session") {
    Message Resp = handleSession(Req);
    // Error responses bypass recordSession; counting them here keeps the
    // health op's error rate honest.
    if (field(Resp, "ok") != "1")
      FailedSessions.fetch_add(1, std::memory_order_relaxed);
    return Resp;
  }
  if (Op == "explain")
    return handleExplain(Req);
  if (Op == "profile-merge")
    return handleProfileMerge(Req);
  if (Op == "shutdown") {
    ShutdownRequested.store(true);
    ShutdownCv.notify_all();
    return Message{{"ok", "1"}};
  }
  return errorResponse("unknown op '" + Op + "'");
}

void Server::onPool(const std::function<void()> &Stage) {
  std::promise<void> Done;
  std::future<void> Fut = Done.get_future();
  Pool.submit([&] {
    Stage();
    Done.set_value();
  });
  Fut.wait();
}

uint64_t Server::acquireBudget(uint64_t Want) {
  // A lease larger than the pool could never be satisfied; clamp instead
  // of deadlocking the session.
  Want = std::min<uint64_t>(std::max<uint64_t>(Want, 1), C.BudgetPool);
  std::unique_lock<std::mutex> Lock(BudgetMu);
  if (BudgetAvail < Want) {
    // The pool is short: this session now blocks until another run
    // stage releases its lease. Counted (metrics) and marked (trace) —
    // lease contention is the service's run-stage backpressure signal.
    BudgetDenials.fetch_add(1, std::memory_order_relaxed);
    obs::traceInstantf("budget.denied", "want=%llu avail=%llu",
                       (unsigned long long)Want,
                       (unsigned long long)BudgetAvail);
  }
  BudgetCv.wait(Lock, [&] { return BudgetAvail >= Want; });
  BudgetAvail -= Want;
  return Want;
}

void Server::releaseBudget(uint64_t Lease) {
  {
    std::lock_guard<std::mutex> Lock(BudgetMu);
    BudgetAvail += Lease;
  }
  BudgetCv.notify_all();
}

void Server::recordSession(double Ms) {
  // The one registry write on a session path: once per session, into a
  // lock-free histogram cell (registration cost only on first call).
  Registry
      .histogram("pscd_session_latency_ms",
                 {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000},
                 "", "End-to-end session latency in milliseconds")
      .observe(Ms);
  std::lock_guard<std::mutex> Lock(StatsMu);
  ++TotalSessions;
  if (LatencyRing.size() < RingCap) {
    LatencyRing.push_back(Ms);
  } else {
    LatencyRing[RingPos] = Ms;
    RingPos = (RingPos + 1) % RingCap;
  }
}

void Server::recordStage(unsigned Stage, double Ms, double CpuMs) {
  std::lock_guard<std::mutex> Lock(StatsMu);
  StageStat &S = Stages[Stage];
  ++S.Count;
  S.TotalMs += Ms;
  S.TotalCpuMs += CpuMs;
  if (S.Ring.size() < RingCap) {
    S.Ring.push_back(Ms);
  } else {
    S.Ring[S.Pos] = Ms;
    S.Pos = (S.Pos + 1) % RingCap;
  }
}

void Server::noteOracleStats(const DepOracleStack &Stack) {
  std::vector<DepOracleStack::OracleStats> Per = Stack.oracleStats();
  const DepOracleStack::CacheStats &QC = Stack.cacheStats();
  std::lock_guard<std::mutex> Lock(OracleMu);
  for (const DepOracleStack::OracleStats &S : Per) {
    DepOracleStack::OracleStats &T = OracleTotals[S.Name];
    T.Name = S.Name;
    T.Answered += S.Answered;
    T.NoDep += S.NoDep;
    T.MayDep += S.MayDep;
    T.MustDep += S.MustDep;
  }
  OracleCacheTotals.Queries += QC.Queries;
  OracleCacheTotals.Hits += QC.Hits;
  OracleCacheTotals.Fallback += QC.Fallback;
}

// --- Sessions ----------------------------------------------------------------

std::shared_ptr<const CachedModule>
Server::getModule(const std::string &Source, const std::string &Name,
                  bool &L1Hit, std::string &Err) {
  using Clock = std::chrono::steady_clock;
  // Compile (or L1 hit). Runs on the pool like every stage; the handler
  // thread only coordinates.
  std::shared_ptr<const CachedModule> CM;
  uint64_t Key = sourceKey(Source, Name);
  Clock::time_point S1 = Clock::now();
  double CpuMs = 0.0;
  onPool([&] {
    obs::TraceSpan Span("service.compile", "name=%s", Name.c_str());
    double Cpu0 = threadCpuMs();
    struct CpuGuard {
      double &Out, Start;
      ~CpuGuard() { Out = threadCpuMs() - Start; }
    } Cpu{CpuMs, Cpu0};
    CM = Modules.lookup(Key);
    if (CM) {
      L1Hit = true;
      return;
    }
    CompileResult R = compileSource(Source, Name);
    if (!R.ok()) {
      for (const std::string &D : R.Diagnostics)
        Err += (Err.empty() ? "" : "\n") + D;
      if (Err.empty())
        Err = "compilation failed";
      return;
    }
    auto Fresh = std::make_shared<CachedModule>();
    Fresh->Name = Name;
    Fresh->M = std::move(R.M);
    Fresh->BCM = std::make_unique<BytecodeModule>(*Fresh->M);
    for (const auto &F : Fresh->M->functions()) {
      if (F->isDeclaration())
        continue;
      uint64_t BH = functionBodyHash(*F);
      Fresh->BodyHashes[F->getName()] = BH;
      // Edited-body invalidation fires the moment the new body is seen,
      // in every body-keyed cache level. The tracking key is scoped by
      // module name: editing @main in one module must not evict another
      // module's @main (unrelated programs routinely share entry-point
      // names; their entries coexist under their own body hashes).
      Memos.noteBody(Name + ":" + F->getName(), BH);
      Plans.noteBody(Name + ":" + F->getName(), BH);
    }
    Modules.insert(Key, Fresh);
    CM = std::move(Fresh);
  });
  if (CM)
    recordStage(0,
                std::chrono::duration<double, std::milli>(Clock::now() - S1)
                    .count(),
                CpuMs);
  return CM;
}

Message Server::handleSession(const Message &Req) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point T0 = Clock::now();
  uint64_t TraceT0 = C.TraceDir.empty() ? 0 : obs::traceNowNs();

  std::string Source = field(Req, "source");
  if (Source.empty())
    return errorResponse("session without source");
  std::string Name = field(Req, "name", "session");
  std::string Mode = field(Req, "mode", "full");
  if (Mode != "run" && Mode != "analyze" && Mode != "full")
    return errorResponse("unknown mode '" + Mode + "'");
  std::string EngineS = field(Req, "engine", "bytecode");
  if (EngineS != "bytecode" && EngineS != "walker")
    return errorResponse("unknown engine '" + EngineS + "'");
  ExecEngineKind Engine = EngineS == "walker" ? ExecEngineKind::Walker
                                              : ExecEngineKind::Bytecode;
  AbstractionKind Abs = parseAbs(field(Req, "abs", "pspdg"));
  bool Spec = field(Req, "spec") == "1";

  Message Resp{{"ok", "1"}};

  // Stage 1 — compile (or L1 hit).
  std::string CompileErr;
  bool L1Hit = false;
  std::shared_ptr<const CachedModule> CM =
      getModule(Source, Name, L1Hit, CompileErr);
  if (!CM)
    return errorResponse(CompileErr);
  Resp["cached"] = L1Hit ? "1" : "0";

  // Stage 2 — plan (analyze/full). Non-speculative sessions are served
  // from the cache hierarchy: finished lines from L3 when warm; when
  // cold, the module's single-flight analysis bundle builds the
  // summaries once (seeding/exporting the L2 memo on the way) and the
  // rendered lines are published to L3. Both paths render through
  // parallel/PlanLines.h — the same code `pscc --plans` uses — so served
  // and standalone output are byte-identical by construction.
  if (Mode != "run") {
    Clock::time_point S2 = Clock::now();
    // Speculative sessions plan against a point-in-time store snapshot;
    // their oracle answers depend on it, so the memo and plan caches are
    // bypassed entirely (the profile-independent FunctionAnalysis is
    // still shared from the bundle).
    DepProfile Snapshot;
    if (Spec)
      Snapshot = Profiles.snapshot();
    DepOracleConfig OracleCfg({}, Spec ? &Snapshot : nullptr);
    std::string PlanText;
    double PlanCpuMs = 0.0;
    onPool([&] {
      obs::TraceSpan Span("service.plan", "name=%s spec=%d", Name.c_str(),
                          Spec ? 1 : 0);
      double Cpu0 = threadCpuMs();
      struct CpuGuard {
        double &Out, Start;
        ~CpuGuard() { Out = threadCpuMs() - Start; }
      } Cpu{PlanCpuMs, Cpu0};
      for (const auto &F : CM->M->functions()) {
        if (F->isDeclaration())
          continue;
        uint64_t BH = CM->BodyHashes.at(F->getName());
        if (!Spec) {
          if (auto Hit = Plans.lookup(BH, Abs)) {
            PlanText += *Hit;
            continue;
          }
          const FunctionAnalysis &FA = CM->functionAnalysis(*F);
          if (FA.loopInfo().loops().empty()) {
            // A loop-free function plans to nothing; cache the nothing
            // so warm sessions skip even the loop-forest check.
            Plans.insert(Name + ":" + F->getName(), BH, Abs,
                         std::string());
            continue;
          }
          const std::vector<LoopPlanSummary> &Summaries =
              CM->planSummaries(*F, Abs, &Memos, &AnalysisBuilds,
                                [this](const DepOracleStack &S) {
                                  noteOracleStats(S);
                                });
          std::string Lines;
          for (const LoopPlanSummary &S : Summaries)
            Lines += renderPlanLine(S);
          PlanText += Lines;
          Plans.insert(Name + ":" + F->getName(), BH, Abs,
                       std::move(Lines));
          continue;
        }
        const FunctionAnalysis &FA = CM->functionAnalysis(*F);
        if (FA.loopInfo().loops().empty())
          continue;
        DepOracleStack Stack(FA, OracleCfg);
        std::unique_ptr<PSPDG> G;
        if (Abs == AbstractionKind::PSPDG)
          G = buildPSPDG(FA, Stack);
        AbstractionView View(Abs, FA, Stack, G.get());
        PlanText += renderPlanLines(FA, View);
        noteOracleStats(Stack);
      }
    });
    Resp["plans"] = PlanText;
    recordStage(1,
                std::chrono::duration<double, std::milli>(Clock::now() - S2)
                    .count(),
                PlanCpuMs);
  }

  // Stage 3 — run (run/full): fresh ExecState per session (Interpreter
  // constructs one per run()), shared pre-decoded bytecode, instruction
  // budget leased from the server-wide pool.
  if (Mode != "analyze") {
    uint64_t Want = 2'000'000'000ULL;
    std::string BudgetS = field(Req, "budget");
    if (!BudgetS.empty())
      Want = std::strtoull(BudgetS.c_str(), nullptr, 10);
    uint64_t Lease = acquireBudget(Want);
    Clock::time_point S3 = Clock::now();
    RunResult R;
    double RunCpuMs = 0.0;
    onPool([&] {
      obs::TraceSpan Span("service.run", "name=%s engine=%s", Name.c_str(),
                          EngineS.c_str());
      double Cpu0 = threadCpuMs();
      struct CpuGuard {
        double &Out, Start;
        ~CpuGuard() { Out = threadCpuMs() - Start; }
      } Cpu{RunCpuMs, Cpu0};
      Interpreter I(*CM->M);
      I.setEngine(Engine);
      if (Engine == ExecEngineKind::Bytecode)
        I.setBytecode(CM->BCM.get());
      I.setInstructionBudget(Lease);
      R = I.run();
    });
    recordStage(2,
                std::chrono::duration<double, std::milli>(Clock::now() - S3)
                    .count(),
                RunCpuMs);
    releaseBudget(Lease);
    std::string Output;
    for (const std::string &Line : R.Output)
      Output += Line + "\n";
    Resp["output"] = Output;
    Resp["exit"] = std::to_string(R.ExitValue);
    Resp["completed"] = R.Completed ? "1" : "0";
  }

  double Ms = std::chrono::duration<double, std::milli>(Clock::now() - T0)
                  .count();
  recordSession(Ms);
  if (C.SlowSessionMs > 0 && Ms > C.SlowSessionMs) {
    // The slow-session log: one stderr line per offender, with enough
    // identity to find the matching per-session trace file.
    SlowSessions.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr,
                 "pscd: slow session name=%s mode=%s latency_ms=%.3f "
                 "(threshold %.1f)\n",
                 Name.c_str(), Mode.c_str(), Ms, C.SlowSessionMs);
  }
  Resp["latency_ms"] = std::to_string(Ms);

  if (!C.TraceDir.empty()) {
    // One trace file per session: the recorder's events restricted to
    // this session's time window. Events of sessions running
    // concurrently with the window land in the file too — documented
    // limitation (DESIGN.md §13); the session id in the metadata names
    // whose window it is.
    uint64_t Id = SessionSeq.fetch_add(1) + 1;
    std::string Path =
        C.TraceDir + "/session-" + std::to_string(Id) + ".json";
    std::string Err;
    if (!obs::traceWriteWindow(Path, TraceT0, obs::traceNowNs(),
                               {{"tool", "pscd"},
                                {"session", std::to_string(Id)},
                                {"name", Name}},
                               Err))
      std::fprintf(stderr, "pscd: %s\n", Err.c_str());
  }
  return Resp;
}

Message Server::handleExplain(const Message &Req) {
  std::string Source = field(Req, "source");
  if (Source.empty())
    return errorResponse("explain without source");
  std::string Name = field(Req, "name", "session");
  AbstractionKind Abs = parseAbs(field(Req, "abs", "pspdg"));
  unsigned Threads = 1;
  std::string ThreadsS = field(Req, "threads");
  if (!ThreadsS.empty())
    Threads = std::max(1, std::atoi(ThreadsS.c_str()));
  bool Spec = field(Req, "spec") == "1";
  std::string LoopFilter = field(Req, "loop");

  // Mirrors pscc's makeGrain so the served report is byte-identical to
  // the standalone one on the same machine.
  GrainConfig Grain;
  std::string GrainS = field(Req, "grain", "auto");
  if (GrainS == "auto") {
    Grain.Enabled = true;
    unsigned HW = std::thread::hardware_concurrency();
    Grain.Workers = std::min(Threads, HW == 0 ? Threads : HW);
  } else if (GrainS != "off") {
    Grain.Enabled = true;
    Grain.ForcedChunk = std::atol(GrainS.c_str());
  }

  std::string CompileErr;
  bool L1Hit = false;
  std::shared_ptr<const CachedModule> CM =
      getModule(Source, Name, L1Hit, CompileErr);
  if (!CM)
    return errorResponse(CompileErr);

  // The decision log depends on the profile snapshot when speculative,
  // so it is planned fresh per request (never cached) — explain is a
  // diagnostic surface, not a hot path.
  DepProfile Snapshot;
  if (Spec)
    Snapshot = Profiles.snapshot();
  DepOracleConfig OracleCfg({}, Spec ? &Snapshot : nullptr);
  obs::PlanDecisionLog Log;
  onPool([&] {
    (void)buildRuntimePlan(*CM->M, Abs, Threads, FeatureSet(), OracleCfg,
                           Grain, &Log);
  });
  return Message{{"ok", "1"},
                 {"cached", L1Hit ? "1" : "0"},
                 {"explain", obs::renderDecisionLog(Log, LoopFilter)}};
}

Message Server::handleProfileMerge(const Message &Req) {
  std::string Text = field(Req, "profile");
  if (Text.empty())
    return errorResponse("profile-merge without profile");
  DepProfile P;
  std::string Err;
  if (!DepProfile::parseJson(Text, P, Err))
    return errorResponse("profile-merge: " + Err);
  Profiles.merge(P);
  return Message{{"ok", "1"},
                 {"functions", std::to_string(P.Functions.size())}};
}

// --- Observability -----------------------------------------------------------

std::string Server::statsJson() const {
  std::vector<double> Lat;
  uint64_t Sessions;
  StageStat StageSnap[3];
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    Lat = LatencyRing;
    Sessions = TotalSessions;
    for (unsigned I = 0; I < 3; ++I)
      StageSnap[I] = Stages[I];
  }
  for (unsigned I = 0; I < 3; ++I)
    std::sort(StageSnap[I].Ring.begin(), StageSnap[I].Ring.end());
  std::sort(Lat.begin(), Lat.end());
  double Uptime = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - StartTime)
                      .count();
  CacheStats MC = Modules.stats(), XC = Memos.stats(), PC = Plans.stats();
  std::vector<ProfileStore::ShardStat> Shards = Profiles.shardStats();

  std::ostringstream J;
  J.setf(std::ios::fixed);
  J.precision(3);
  J << "{\"uptime_s\":" << Uptime << ",\"sessions\":" << Sessions
    << ",\"sessions_per_s\":" << (Uptime > 0 ? Sessions / Uptime : 0.0)
    << ",\"latency_ms\":{\"count\":" << Lat.size() << ",\"p50\":"
    << percentile(Lat, 0.50) << ",\"p90\":" << percentile(Lat, 0.90)
    << ",\"p99\":" << percentile(Lat, 0.99) << "}";
  auto Cache = [&J](const char *Name, const CacheStats &S, size_t Size) {
    J << ",\"" << Name << "\":{\"hits\":" << S.Hits << ",\"misses\":"
      << S.Misses << ",\"evictions\":" << S.Evictions
      << ",\"invalidations\":" << S.Invalidations << ",\"entries\":" << Size
      << ",\"hit_rate\":" << S.hitRate() << "}";
  };
  Cache("module_cache", MC, Modules.size());
  Cache("memo_cache", XC, Memos.size());
  Cache("plan_cache", PC, Plans.size());
  J << ",\"analysis_builds\":" << AnalysisBuilds.load();
  // Per-stage latency breakdown: each stage as its own top-level object
  // so naive single-level JSON consumers (bench_server's statOf) can
  // read the fields.
  for (unsigned I = 0; I < 3; ++I)
    J << ",\"stage_" << StageNames[I] << "\":{\"count\":"
      << StageSnap[I].Count << ",\"total_ms\":" << StageSnap[I].TotalMs
      << ",\"mean_ms\":"
      << (StageSnap[I].Count ? StageSnap[I].TotalMs / StageSnap[I].Count
                             : 0.0)
      << ",\"p50\":" << percentile(StageSnap[I].Ring, 0.50)
      << ",\"p90\":" << percentile(StageSnap[I].Ring, 0.90)
      << ",\"p99\":" << percentile(StageSnap[I].Ring, 0.99) << "}";
  J << ",\"profile_store\":{\"shards\":[";
  for (size_t I = 0; I < Shards.size(); ++I) {
    if (I)
      J << ",";
    J << "{\"functions\":" << Shards[I].Functions << ",\"loops\":"
      << Shards[I].Loops << ",\"merges\":" << Shards[I].Merges << "}";
  }
  J << "]},\"pool_workers\":" << Pool.numWorkers() << "}";
  return J.str();
}

std::string Server::healthJson() const {
  std::vector<double> Lat;
  uint64_t Sessions;
  StageStat StageSnap[3];
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    Lat = LatencyRing;
    Sessions = TotalSessions;
    for (unsigned I = 0; I < 3; ++I)
      StageSnap[I] = Stages[I];
  }
  std::sort(Lat.begin(), Lat.end());
  double P99 = percentile(Lat, 0.99);
  uint64_t Failed = FailedSessions.load(std::memory_order_relaxed);
  uint64_t Slow = SlowSessions.load(std::memory_order_relaxed);
  uint64_t All = Sessions + Failed;
  double ErrorRate = All ? static_cast<double>(Failed) / All : 0.0;
  CacheStats MC = Modules.stats(), XC = Memos.stats(), PC = Plans.stats();
  uint64_t Dropped = obs::traceDroppedEvents();

  // SLO grading. Latency and cache floors grade only with evidence (a
  // session served / traffic on the level): an idle server is healthy.
  bool ErrOk = ErrorRate <= C.MaxErrorRate;
  bool P99Ok = Lat.empty() || P99 <= C.TargetP99Ms;
  auto CacheOk = [&](const CacheStats &S) {
    return S.Hits + S.Misses == 0 || S.hitRate() >= C.MinCacheHitRate;
  };
  bool CachesOk = CacheOk(MC) && CacheOk(XC) && CacheOk(PC);
  bool Ok = ErrOk && P99Ok && CachesOk;

  std::ostringstream J;
  J.setf(std::ios::fixed);
  J.precision(4);
  J << "{\"ok\":" << (Ok ? "true" : "false")
    << ",\"sessions\":" << Sessions << ",\"failed_sessions\":" << Failed
    << ",\"error_rate\":" << ErrorRate << ",\"max_error_rate\":"
    << C.MaxErrorRate << ",\"error_rate_ok\":" << (ErrOk ? "true" : "false")
    << ",\"p99_ms\":" << P99 << ",\"target_p99_ms\":" << C.TargetP99Ms
    << ",\"p99_ok\":" << (P99Ok ? "true" : "false")
    << ",\"slow_sessions\":" << Slow << ",\"slow_threshold_ms\":"
    << C.SlowSessionMs;
  auto Cache = [&J](const char *Name, const CacheStats &S) {
    J << ",\"" << Name << "_hit_rate\":" << S.hitRate();
  };
  Cache("module_cache", MC);
  Cache("memo_cache", XC);
  Cache("plan_cache", PC);
  J << ",\"min_cache_hit_rate\":" << C.MinCacheHitRate
    << ",\"caches_ok\":" << (CachesOk ? "true" : "false");
  // Per-stage resource accounting: wall and cpu time per stage. The run
  // stage is the sequential service interpreter, so overlay / spec-log
  // footprints are zero here; they are accounted per loop in
  // LoopExecStat when the parallel engine executes in-process.
  for (unsigned I = 0; I < 3; ++I)
    J << ",\"stage_" << StageNames[I] << "_ms\":" << StageSnap[I].TotalMs
      << ",\"stage_" << StageNames[I] << "_cpu_ms\":"
      << StageSnap[I].TotalCpuMs;
  J << ",\"trace_dropped_events\":" << Dropped
    << ",\"misspec_records\":" << obs::misspecTotal() << "}";
  return J.str();
}

std::string Server::metricsText() const {
  // Export the cheap internal stat structs into the registry, then
  // render. counter().set() makes every export idempotent — repeated
  // scrapes overwrite, they never double-count.
  double Uptime = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - StartTime)
                      .count();
  Registry
      .counter("pscd_uptime_seconds", "", "Seconds since server start",
               "gauge")
      .set(static_cast<uint64_t>(Uptime));
  Registry.counter("pscd_pool_workers", "", "Session-stage pool size",
                   "gauge")
      .set(Pool.numWorkers());
  Registry
      .counter("pscd_analysis_builds_total", "",
               "Analysis bundles actually built")
      .set(AnalysisBuilds.load());
  Registry
      .counter("pscd_budget_denials_total", "",
               "Run-stage budget leases that had to wait for capacity")
      .set(BudgetDenials.load());
  Registry
      .counter("pscd_sessions_failed_total", "",
               "Sessions that returned an error response")
      .set(FailedSessions.load());
  Registry
      .counter("pscd_slow_sessions_total", "",
               "Sessions over the configured slow threshold")
      .set(SlowSessions.load());
  Registry
      .counter("trace_dropped_events_total", "",
               "Trace events lost to per-thread ring overflow")
      .set(obs::traceDroppedEvents());
  Registry
      .counter("pscd_misspec_records_total", "",
               "Misspeculation flight-recorder records captured")
      .set(obs::misspecTotal());
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    Registry.counter("pscd_sessions_total", "", "Sessions served")
        .set(TotalSessions);
    for (unsigned I = 0; I < 3; ++I) {
      std::string L = std::string("stage=\"") + StageNames[I] + "\"";
      Registry
          .counter("pscd_stage_count_total", L,
                   "Session stages executed, by stage")
          .set(Stages[I].Count);
      Registry
          .counter("pscd_stage_ms_total", L,
                   "Cumulative stage latency in ms, by stage")
          .set(static_cast<uint64_t>(Stages[I].TotalMs));
      Registry
          .counter("pscd_stage_cpu_ms_total", L,
                   "Cumulative stage thread cpu time in ms, by stage")
          .set(static_cast<uint64_t>(Stages[I].TotalCpuMs));
    }
  }
  struct {
    const char *Label;
    CacheStats S;
    size_t Size;
  } Caches[3] = {{"cache=\"module\"", Modules.stats(), Modules.size()},
                 {"cache=\"memo\"", Memos.stats(), Memos.size()},
                 {"cache=\"plan\"", Plans.stats(), Plans.size()}};
  for (const auto &E : Caches) {
    Registry
        .counter("pscd_cache_hits_total", E.Label, "Cache hits, by level")
        .set(E.S.Hits);
    Registry
        .counter("pscd_cache_misses_total", E.Label,
                 "Cache misses, by level")
        .set(E.S.Misses);
    Registry
        .counter("pscd_cache_evictions_total", E.Label,
                 "Capacity (LRU) evictions, by level")
        .set(E.S.Evictions);
    Registry
        .counter("pscd_cache_invalidations_total", E.Label,
                 "Edited-body invalidations, by level")
        .set(E.S.Invalidations);
    Registry
        .counter("pscd_cache_entries", E.Label, "Resident entries, by level",
                 "gauge")
        .set(E.Size);
  }
  {
    std::lock_guard<std::mutex> Lock(OracleMu);
    for (const auto &[Name, S] : OracleTotals) {
      std::string L = "oracle=\"" + Name + "\"";
      Registry
          .counter("pscd_oracle_answered_total", L,
                   "Dependence queries claimed, by oracle")
          .set(S.Answered);
      Registry
          .counter("pscd_oracle_nodep_total", L,
                   "Dependence disproofs, by oracle")
          .set(S.NoDep);
    }
    Registry
        .counter("pscd_depquery_total", "",
                 "Dependence queries issued (incl. memo hits)")
        .set(OracleCacheTotals.Queries);
    Registry
        .counter("pscd_depquery_memo_hits_total", "",
                 "Dependence queries served from the memo")
        .set(OracleCacheTotals.Hits);
  }
  return Registry.render();
}
