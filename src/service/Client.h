//===- Client.h - pscd client connection --------------------------*- C++ -*-===//
///
/// \file
/// Thin synchronous client for the pscd protocol: connect() to a
/// unix-domain socket (with a short bounded retry so a just-spawned
/// server's bind races are absorbed), then request() round-trips one
/// framed Message at a time. One Client is one connection; it is NOT
/// thread-safe — concurrent load generators open one Client per thread,
/// which is also what exercises the server's concurrency.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_SERVICE_CLIENT_H
#define PSPDG_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <string>

namespace psc {
namespace service {

class Client {
public:
  Client() = default;
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to \p SocketPath, retrying for up to \p RetryMs
  /// milliseconds (a freshly forked pscd may not have bound yet).
  bool connect(const std::string &SocketPath, std::string &Err,
               unsigned RetryMs = 2000);

  /// Sends \p Req and blocks for the response. False (with \p Err) on
  /// any transport failure; the connection is then unusable.
  bool request(const Message &Req, Message &Resp, std::string &Err);

  bool connected() const { return Fd >= 0; }
  void close();

private:
  int Fd = -1;
};

} // namespace service
} // namespace psc

#endif // PSPDG_SERVICE_CLIENT_H
