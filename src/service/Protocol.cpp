//===- Protocol.cpp -------------------------------------------*- C++ -*-===//

#include "service/Protocol.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

using namespace psc;
using namespace psc::service;

namespace {

void putU32(std::string &S, uint32_t V) {
  S.push_back(static_cast<char>(V & 0xff));
  S.push_back(static_cast<char>((V >> 8) & 0xff));
  S.push_back(static_cast<char>((V >> 16) & 0xff));
  S.push_back(static_cast<char>((V >> 24) & 0xff));
}

bool getU32(const std::string &S, size_t &Pos, uint32_t &V) {
  if (Pos + 4 > S.size())
    return false;
  V = static_cast<uint8_t>(S[Pos]) |
      (static_cast<uint32_t>(static_cast<uint8_t>(S[Pos + 1])) << 8) |
      (static_cast<uint32_t>(static_cast<uint8_t>(S[Pos + 2])) << 16) |
      (static_cast<uint32_t>(static_cast<uint8_t>(S[Pos + 3])) << 24);
  Pos += 4;
  return true;
}

bool writeAll(int Fd, const char *Buf, size_t Len, std::string &Err) {
  while (Len) {
    ssize_t N = ::write(Fd, Buf, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("write: ") + std::strerror(errno);
      return false;
    }
    Buf += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// Reads exactly \p Len bytes. \p SawAny reports whether any byte arrived
/// before EOF (distinguishing clean connection close from truncation).
bool readAll(int Fd, char *Buf, size_t Len, bool &SawAny, std::string &Err) {
  while (Len) {
    ssize_t N = ::read(Fd, Buf, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("read: ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      if (SawAny)
        Err = "truncated frame (connection closed mid-message)";
      return false;
    }
    SawAny = true;
    Buf += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

} // namespace

std::string service::encodeMessage(const Message &M) {
  std::string S;
  putU32(S, static_cast<uint32_t>(M.size()));
  for (const auto &[K, V] : M) {
    putU32(S, static_cast<uint32_t>(K.size()));
    S += K;
    putU32(S, static_cast<uint32_t>(V.size()));
    S += V;
  }
  return S;
}

bool service::decodeMessage(const std::string &Payload, Message &Out,
                            std::string &Err) {
  Out.clear();
  size_t Pos = 0;
  uint32_t Count = 0;
  if (!getU32(Payload, Pos, Count)) {
    Err = "truncated message header";
    return false;
  }
  // Each field needs at least its two length words.
  if (Count > Payload.size() / 8 + 1) {
    Err = "implausible field count " + std::to_string(Count);
    return false;
  }
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t KLen = 0, VLen = 0;
    if (!getU32(Payload, Pos, KLen) || Pos + KLen > Payload.size()) {
      Err = "truncated field key";
      return false;
    }
    std::string K = Payload.substr(Pos, KLen);
    Pos += KLen;
    if (!getU32(Payload, Pos, VLen) || Pos + VLen > Payload.size()) {
      Err = "truncated field value";
      return false;
    }
    Out[K] = Payload.substr(Pos, VLen);
    Pos += VLen;
  }
  if (Pos != Payload.size()) {
    Err = "trailing bytes after last field";
    return false;
  }
  return true;
}

bool service::writeFrame(int Fd, const Message &M, std::string &Err) {
  std::string Payload = encodeMessage(M);
  if (Payload.size() > MaxFrameBytes) {
    Err = "frame exceeds the protocol limit";
    return false;
  }
  std::string Frame;
  Frame.reserve(Payload.size() + 4);
  putU32(Frame, static_cast<uint32_t>(Payload.size()));
  Frame += Payload;
  return writeAll(Fd, Frame.data(), Frame.size(), Err);
}

bool service::readFrame(int Fd, Message &Out, std::string &Err) {
  Err.clear();
  char Hdr[4];
  bool SawAny = false;
  if (!readAll(Fd, Hdr, 4, SawAny, Err))
    return false;
  std::string HdrS(Hdr, 4);
  size_t Pos = 0;
  uint32_t Len = 0;
  getU32(HdrS, Pos, Len);
  if (Len > MaxFrameBytes) {
    Err = "frame length " + std::to_string(Len) + " exceeds the protocol "
          "limit (corrupt stream?)";
    return false;
  }
  std::string Payload(Len, '\0');
  if (Len && !readAll(Fd, Payload.data(), Len, SawAny, Err))
    return false;
  return decodeMessage(Payload, Out, Err);
}

std::string service::field(const Message &M, const std::string &Key,
                           const std::string &Default) {
  auto It = M.find(Key);
  return It == M.end() ? Default : It->second;
}
