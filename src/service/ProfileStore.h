//===- ProfileStore.h - Sharded training-evidence store -----------*- C++ -*-===//
///
/// \file
/// The resident service's accumulator of training evidence (DepProfile
/// documents): an incremental, concurrent counterpart of
/// `pscc --merge-profiles`. Profiles stream in one at a time (the
/// `profile-merge` request) and merge *incrementally* — each incoming
/// document is split by function name across N shards, and each shard
/// merges its slice under its own lock. Two properties follow:
///
///   * merges from concurrent connections interleave at shard
///     granularity instead of serializing on one store lock;
///   * the merge semantics per function are exactly DepProfile::merge's
///     (union of manifested pairs and accessed sets, summed counters,
///     value classes meet-joined, stale-guard conflicts tombstoned) —
///     sharding by *function* keeps every function's whole history in
///     one shard, so the tombstone discipline survives distribution.
///
/// Sessions that speculate take a snapshot(): a point-in-time combined
/// profile assembled shard by shard. A snapshot is sequentially
/// consistent per shard but not across shards — fine for training
/// evidence, which only ever *licenses* speculation the runtime still
/// validates.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_SERVICE_PROFILESTORE_H
#define PSPDG_SERVICE_PROFILESTORE_H

#include "profiling/DepProfile.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace psc {
namespace service {

class ProfileStore {
public:
  explicit ProfileStore(unsigned NumShards = 16);

  /// Streams \p P into the store: split by function name, merged shard by
  /// shard under the shard locks.
  void merge(const DepProfile &P);

  /// Point-in-time combined profile (see file comment).
  DepProfile snapshot() const;

  struct ShardStat {
    size_t Functions = 0; ///< Occupancy: functions resident in the shard.
    size_t Loops = 0;     ///< Occupancy: trained loops across them.
    uint64_t Merges = 0;  ///< Merge operations that touched the shard.
  };
  std::vector<ShardStat> shardStats() const;

  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }

  /// The shard a function's evidence lives in (FNV-1a of the name).
  unsigned shardOf(const std::string &FnName) const;

private:
  struct Shard {
    mutable std::mutex Mu;
    DepProfile P;
    uint64_t Merges = 0;
  };
  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace service
} // namespace psc

#endif // PSPDG_SERVICE_PROFILESTORE_H
