//===- Trace.h - Chrome-trace span/instant recorder -------------*- C++ -*-===//
///
/// \file
/// Zero-overhead-when-off tracing (DESIGN.md §13). Every layer of the
/// pipeline — frontend stages, analysis-bundle builds, plan enumeration,
/// the decode pass, sequential and parallel execution, the caches, and
/// the resident service — records the same two event shapes:
///
///   * spans (TraceSpan, RAII) — a named duration on the recording
///     thread: compile/plan/run stages, per-chunk DOALL execution, a
///     HELIX worker's iteration stretch, a DSWP stage, overlay commits;
///   * instants (traceInstant / traceInstantf) — a point event: cache
///     hit/miss/invalidation, misspeculation (naming the violated
///     assumption), rollback, burned-plan demotion, budget-lease denial.
///
/// Recording goes to fixed-capacity per-thread rings (overflow wraps,
/// keeping the newest events) held alive by a process-wide registry, so
/// events survive worker-thread exit. Each push takes only the ring's
/// own uncontended spinlock — one atomic exchange on a thread-private
/// cache line; there is no shared lock or allocation on the hot path.
///
/// When tracing is off (the default), every probe compiles to a single
/// branch on one cold atomic flag: TraceSpan's constructor and
/// traceInstant check `traceEnabled()` inline and do nothing else. The
/// measured cost on the bytecode dispatch hot loop is gated ≤ 2% in CI
/// (bench_micro `trace_off_overhead`).
///
/// Rendering: traceWrite() emits Chrome trace-event JSON
/// (chrome://tracing / Perfetto loadable; `ph:"X"` spans, `ph:"i"`
/// instants, timestamps in microseconds since traceEnable()).
/// traceCollect() returns the same events structurally for tests.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_OBS_TRACE_H
#define PSPDG_OBS_TRACE_H

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace psc {
namespace obs {

namespace trace_detail {
extern std::atomic<bool> Enabled;
uint64_t nowNs();
void recordSpan(const char *Name, uint64_t StartNs, uint64_t DurNs,
                const char *Detail);
void recordInstant(const char *Name, const char *Detail);
} // namespace trace_detail

/// The one branch every probe pays when tracing is off.
inline bool traceEnabled() {
  return trace_detail::Enabled.load(std::memory_order_relaxed);
}

/// Arms the recorder: resets the time epoch and starts accepting events.
/// Idempotent; rings from a previous enable are cleared.
void traceEnable();

/// Stops accepting events. Already-recorded events stay readable until
/// the next traceEnable().
void traceDisable();

/// Timestamp in nanoseconds since traceEnable() (0 when off).
uint64_t traceNowNs();

/// A recorded event, as tests and the JSON writer see it.
struct TraceEventData {
  std::string Name;
  std::string Detail; ///< args.detail; empty for plain events.
  unsigned Tid = 0;   ///< Recorder-assigned thread ordinal.
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  bool Instant = false;
};

/// Snapshot of every ring, sorted by (Tid, StartNs). Safe to call while
/// other threads record (each ring is copied under its spinlock).
std::vector<TraceEventData> traceCollect();

/// Events lost to ring overflow since traceEnable(): each per-thread
/// ring keeps only the newest 16K events, and before this accessor the
/// wrap was silent. Returns the total across rings; with \p PerThread
/// non-null also fills (tid, dropped) pairs for every ring that lost
/// events. Safe to call while other threads record.
uint64_t traceDroppedEvents(
    std::vector<std::pair<unsigned, uint64_t>> *PerThread = nullptr);

/// Writes the Chrome trace-event JSON for all recorded events to
/// \p Path, with \p Meta as the top-level metadata object. A
/// "dropped_events" key holding traceDroppedEvents() is appended to the
/// metadata automatically so overflow is never silent in the artifact.
/// Returns false with \p Err on I/O failure.
bool traceWrite(const std::string &Path,
                const std::vector<std::pair<std::string, std::string>> &Meta,
                std::string &Err);

/// Like traceWrite but restricted to events whose start lies in
/// [\p LoNs, \p HiNs] — the per-session window the resident service
/// uses for `--trace-dir` (events of sessions running concurrently with
/// the window are included; see DESIGN.md §13).
bool traceWriteWindow(
    const std::string &Path, uint64_t LoNs, uint64_t HiNs,
    const std::vector<std::pair<std::string, std::string>> &Meta,
    std::string &Err);

/// Records a point event. \p Name must be a static string.
inline void traceInstant(const char *Name) {
  if (traceEnabled())
    trace_detail::recordInstant(Name, "");
}

/// Records a point event with a printf-formatted detail string (the
/// formatting cost is paid only when tracing is on).
void traceInstantf(const char *Name, const char *Fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

/// RAII span: opens at construction, records at destruction. \p Name
/// must be a static string; the optional detail is formatted eagerly
/// (only when tracing is on) so it may reference stack state.
class TraceSpan {
public:
  explicit TraceSpan(const char *Name) {
    if (traceEnabled()) {
      this->Name = Name;
      Start = trace_detail::nowNs();
    }
  }
  TraceSpan(const char *Name, const char *Fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
      __attribute__((format(printf, 3, 4)))
#endif
      ;
  ~TraceSpan() {
    if (Name)
      trace_detail::recordSpan(Name, Start,
                               trace_detail::nowNs() - Start, Detail);
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  const char *Name = nullptr;
  uint64_t Start = 0;
  char Detail[96] = {0};
};

} // namespace obs
} // namespace psc

#endif // PSPDG_OBS_TRACE_H
