//===- Forensics.cpp ------------------------------------------*- C++ -*-===//

#include "obs/Forensics.h"

#include <deque>
#include <mutex>
#include <sstream>

using namespace psc;
using namespace psc::obs;

namespace {

struct RecorderState {
  std::mutex Mu;
  std::deque<MisspecRecord> Ring;
  uint64_t Total = 0;
};

RecorderState &state() {
  static RecorderState S;
  return S;
}

void escape(std::ostringstream &OS, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
}

void str(std::ostringstream &OS, const char *Key, const std::string &V) {
  OS << "\"" << Key << "\":\"";
  escape(OS, V);
  OS << "\"";
}

} // namespace

std::string obs::renderMisspecRecord(const MisspecRecord &R) {
  std::ostringstream OS;
  OS << "{";
  str(OS, "fn", R.Fn);
  OS << ",\"header\":" << R.Header << ",";
  str(OS, "kind", R.Kind);
  OS << ",";
  str(OS, "abstraction", R.Abstraction);
  OS << ",\"threads\":" << R.Threads;
  OS << ",\"violation\":{";
  str(OS, "kind", R.ViolationKind);
  OS << ",";
  str(OS, "description", R.Description);
  if (R.ViolationKind == "value" || R.ViolationKind == "guard")
    OS << ",\"scalar\":" << R.Scalar << ",\"iteration\":" << R.Iter;
  OS << "}";
  if (R.ViolationKind == "conflict") {
    OS << ",\"assumption\":{\"id\":" << R.AssumptionId << ",";
    str(OS, "src", R.AssumedSrc);
    OS << ",";
    str(OS, "dst", R.AssumedDst);
    OS << ",";
    // Provenance: assumptions exist only because the speculation
    // oracle's training profile predicted absence at this key.
    str(OS, "oracle", "profile");
    OS << ",\"profile_key\":[" << R.SrcIdx << "," << R.DstIdx << "]"
       << ",\"src_watch\":" << R.SrcWatch << ",\"dst_watch\":" << R.DstWatch
       << "},\"conflict\":{";
    str(OS, "object", R.Object);
    OS << ",\"offset\":" << R.Offset << ",\"src_iteration\":" << R.SrcIter
       << ",\"dst_iteration\":" << R.DstIter << "}";
  }
  OS << ",\"watch_set\":[";
  for (size_t I = 0; I < R.WatchSet.size(); ++I) {
    if (I)
      OS << ",";
    OS << "\"";
    escape(OS, R.WatchSet[I]);
    OS << "\"";
  }
  OS << "],\"lost_instructions\":" << R.LostInstructions << "}";
  return OS.str();
}

std::string obs::renderMisspecArtifact(const std::string &Tool) {
  std::vector<MisspecRecord> Records = misspecRecords();
  std::ostringstream OS;
  OS << "{";
  str(OS, "tool", Tool);
  OS << ",\"version\":1,\"total\":" << misspecTotal() << ",\"records\":[";
  for (size_t I = 0; I < Records.size(); ++I)
    OS << (I ? ",\n" : "\n") << renderMisspecRecord(Records[I]);
  OS << "\n]}\n";
  return OS.str();
}

void obs::misspecPush(MisspecRecord R) {
  RecorderState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  ++S.Total;
  S.Ring.push_back(std::move(R));
  while (S.Ring.size() > kMisspecRingCap)
    S.Ring.pop_front();
}

std::vector<MisspecRecord> obs::misspecRecords() {
  RecorderState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  return std::vector<MisspecRecord>(S.Ring.begin(), S.Ring.end());
}

uint64_t obs::misspecTotal() {
  RecorderState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  return S.Total;
}

void obs::misspecClear() {
  RecorderState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Ring.clear();
  S.Total = 0;
}
