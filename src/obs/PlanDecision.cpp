//===- PlanDecision.cpp - Rendering the plan-decision log -----*- C++ -*-===//

#include "obs/PlanDecision.h"

#include <cstdio>

using namespace psc;
using namespace psc::obs;

std::string psc::obs::renderLoopDecision(const LoopDecision &D) {
  std::string Out;
  char Buf[320];

  std::snprintf(Buf, sizeof(Buf), "loop @%s %s depth=%u [%s]\n", D.Fn.c_str(),
                D.Header.c_str(), D.Depth, D.Abstraction.c_str());
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "  plan: %s — %s\n", D.Final.c_str(),
                D.Reason.c_str());
  Out += Buf;

  if (!D.Candidates.empty()) {
    Out += "  candidates:\n";
    for (const PlanCandidate &C : D.Candidates) {
      std::snprintf(Buf, sizeof(Buf), "    %-5s %s: %s\n",
                    C.Kind.c_str(), C.Chosen ? "+" : "-", C.Verdict.c_str());
      Out += Buf;
    }
  }

  if (!D.Blockers.empty()) {
    Out += "  carried dependences kept by the view:\n";
    for (const PlanBlocker &B : D.Blockers) {
      std::snprintf(Buf, sizeof(Buf), "    %s -> %s  [oracle: %s%s]\n",
                    B.Src.c_str(), B.Dst.c_str(),
                    B.Oracle.empty() ? "?" : B.Oracle.c_str(),
                    B.Must ? ", must" : "");
      Out += Buf;
    }
  }

  if (!D.Assumptions.empty()) {
    Out += "  speculative assumptions:\n";
    for (const std::string &A : D.Assumptions)
      Out += "    " + A + "\n";
  }
  if (!D.ValueAssumptions.empty()) {
    Out += "  value assumptions:\n";
    for (const std::string &A : D.ValueAssumptions)
      Out += "    " + A + "\n";
  }

  if (D.SpecConsidered) {
    std::snprintf(Buf, sizeof(Buf),
                  "  cost model: cost=%.1f threshold=%.1f history=%llu/%llu "
                  "misspeculated -> %s\n",
                  D.SpecCost, D.SpecThreshold,
                  static_cast<unsigned long long>(D.SpecMisspecs),
                  static_cast<unsigned long long>(D.SpecAttempts),
                  D.SpecRejected ? "rejected (sound alternative)"
                                 : "accepted");
    Out += Buf;
  }

  if (!D.GrainNote.empty())
    Out += "  grain: " + D.GrainNote + "\n";

  return Out;
}

std::string psc::obs::renderDecisionLog(const PlanDecisionLog &Log,
                                        const std::string &LoopFilter) {
  std::string Out;
  for (const LoopDecision &D : Log.Loops) {
    if (!LoopFilter.empty()) {
      std::string Id = "@" + D.Fn + " " + D.Header;
      if (Id.find(LoopFilter) == std::string::npos)
        continue;
    }
    if (!Out.empty())
      Out += "\n";
    Out += renderLoopDecision(D);
  }
  if (Out.empty())
    Out = LoopFilter.empty() ? "no loops planned\n"
                             : "no loop matches '" + LoopFilter + "'\n";
  return Out;
}
