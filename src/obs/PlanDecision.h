//===- PlanDecision.h - Structured plan-decision log ------------*- C++ -*-===//
///
/// \file
/// Why did this loop get this plan? The plan compiler already computes
/// the answer — candidate schedules tried in preference order, the
/// oracle-attributed carried dependences that killed each candidate, the
/// speculative assumptions taken, the cost-model verdict, and the grain
/// demotion — but until now it threw everything except the final reason
/// string away. The decision log keeps the whole derivation as data, and
/// one renderer turns it into the `--explain` report for both standalone
/// `pscc --explain` and the resident service's `explain` op, so the two
/// are byte-identical by construction (the PlanLines.h pattern).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_OBS_PLANDECISION_H
#define PSPDG_OBS_PLANDECISION_H

#include <string>
#include <vector>

namespace psc {
namespace obs {

/// One candidate schedule kind the compiler tried for a loop, in
/// preference order, and the verdict that accepted or killed it.
struct PlanCandidate {
  std::string Kind;    ///< "DOALL" / "HELIX" / "DSWP".
  bool Chosen = false; ///< This candidate became the schedule.
  std::string Verdict; ///< "selected", or the rejection reason.
};

/// A loop-carried dependence that blocked parallelization, with the
/// owning oracle's attribution (LoopDepEdge::Oracle).
struct PlanBlocker {
  std::string Src;    ///< Source instruction summary.
  std::string Dst;    ///< Destination instruction summary.
  std::string Oracle; ///< Responding oracle name ("?" if unattributed).
  bool Must = false;  ///< MustDep proof vs conservative MayDep.
};

/// The full decision record of one loop.
struct LoopDecision {
  std::string Fn;          ///< Function name (without @).
  std::string Header;      ///< Header block name.
  unsigned HeaderIdx = 0;  ///< Header block index.
  unsigned Depth = 0;
  std::string Abstraction; ///< Abstraction the plan was built under.

  std::vector<PlanCandidate> Candidates;
  std::vector<PlanBlocker> Blockers;
  /// Speculative assumptions the chosen view relies on (one line each,
  /// "src -> dst" summaries); empty for sound plans.
  std::vector<std::string> Assumptions;
  std::vector<std::string> ValueAssumptions;

  // Cost-model evidence (SpecCostModel), set when speculation was
  // considered: modeled cost, threshold, and whether the model rejected
  // the speculative plan (forcing the sound alternative).
  bool SpecConsidered = false;
  bool SpecRejected = false;
  double SpecCost = 0.0;
  double SpecThreshold = 0.0;
  uint64_t SpecMisspecs = 0; ///< History: misspeculations / attempts.
  uint64_t SpecAttempts = 0;

  /// Grain decision: empty when the grain pass kept the schedule, else
  /// the demotion note (modeled speedup vs threshold).
  std::string GrainNote;

  std::string Final;  ///< Final schedule kind name.
  std::string Reason; ///< Final reason string (as in the exec report).
};

/// The per-module decision log `buildRuntimePlan` fills when asked.
struct PlanDecisionLog {
  std::vector<LoopDecision> Loops;
};

/// Renders one loop's decision block (multi-line, trailing newline).
std::string renderLoopDecision(const LoopDecision &D);

/// The full `--explain` report: every loop, loop-forest order. When
/// \p LoopFilter is non-empty only loops whose "@fn header" id contains
/// it are rendered (the `--explain=loop` form).
std::string renderDecisionLog(const PlanDecisionLog &Log,
                              const std::string &LoopFilter = "");

} // namespace obs
} // namespace psc

#endif // PSPDG_OBS_PLANDECISION_H
