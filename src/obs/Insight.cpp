//===- Insight.cpp --------------------------------------------*- C++ -*-===//

#include "obs/Insight.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

using namespace psc;
using namespace psc::obs;

// --- JSON parsing ------------------------------------------------------------
//
// A dependency-free recursive-descent reader for the writer's own output
// (and hand-written test inputs). Every syntax error carries the byte
// offset; truncated input fails like any other malformed input.

namespace {

struct JValue {
  enum Kind { Null, Bool, Num, Str, Arr, Obj } K = Null;
  bool B = false;
  double N = 0.0;
  std::string S;
  std::vector<JValue> A;
  std::vector<std::pair<std::string, JValue>> O;

  const JValue *get(const std::string &Key) const {
    for (const auto &[K2, V] : O)
      if (K2 == Key)
        return &V;
    return nullptr;
  }
};

struct JParser {
  const std::string &In;
  size_t Pos = 0;
  std::string Err;

  explicit JParser(const std::string &In) : In(In) {}

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg + " at byte " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < In.size() && (In[Pos] == ' ' || In[Pos] == '\t' ||
                               In[Pos] == '\n' || In[Pos] == '\r'))
      ++Pos;
  }

  bool expect(char C) {
    skipWs();
    if (Pos >= In.size() || In[Pos] != C)
      return fail(std::string("expected '") + C + "'");
    ++Pos;
    return true;
  }

  bool parseString(std::string &Out) {
    skipWs();
    if (Pos >= In.size() || In[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < In.size() && In[Pos] != '"') {
      char C = In[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= In.size())
        return fail("truncated escape");
      char E = In[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > In.size())
          return fail("truncated \\u escape");
        unsigned V = 0;
        for (int K = 0; K < 4; ++K) {
          char H = In[Pos++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        // The writer only escapes control characters; decode ASCII and
        // replace anything wider (good enough for trace details).
        Out += V < 0x80 ? static_cast<char>(V) : '?';
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (Pos >= In.size())
      return fail("unterminated string");
    ++Pos; // closing quote
    return true;
  }

  bool parseValue(JValue &V) {
    skipWs();
    if (Pos >= In.size())
      return fail("unexpected end of input");
    char C = In[Pos];
    if (C == '{') {
      ++Pos;
      V.K = JValue::Obj;
      skipWs();
      if (Pos < In.size() && In[Pos] == '}') {
        ++Pos;
        return true;
      }
      for (;;) {
        std::string Key;
        if (!parseString(Key) || !expect(':'))
          return false;
        JValue Val;
        if (!parseValue(Val))
          return false;
        V.O.emplace_back(std::move(Key), std::move(Val));
        skipWs();
        if (Pos >= In.size())
          return fail("unterminated object");
        if (In[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (In[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (C == '[') {
      ++Pos;
      V.K = JValue::Arr;
      skipWs();
      if (Pos < In.size() && In[Pos] == ']') {
        ++Pos;
        return true;
      }
      for (;;) {
        JValue Elem;
        if (!parseValue(Elem))
          return false;
        V.A.push_back(std::move(Elem));
        skipWs();
        if (Pos >= In.size())
          return fail("unterminated array");
        if (In[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (In[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == '"') {
      V.K = JValue::Str;
      return parseString(V.S);
    }
    if (C == 't' || C == 'f') {
      const char *Lit = C == 't' ? "true" : "false";
      size_t Len = C == 't' ? 4 : 5;
      if (In.compare(Pos, Len, Lit) != 0)
        return fail("bad literal");
      Pos += Len;
      V.K = JValue::Bool;
      V.B = C == 't';
      return true;
    }
    if (C == 'n') {
      if (In.compare(Pos, 4, "null") != 0)
        return fail("bad literal");
      Pos += 4;
      V.K = JValue::Null;
      return true;
    }
    // Number.
    size_t Start = Pos;
    if (In[Pos] == '-')
      ++Pos;
    while (Pos < In.size() &&
           (std::isdigit(static_cast<unsigned char>(In[Pos])) ||
            In[Pos] == '.' || In[Pos] == 'e' || In[Pos] == 'E' ||
            In[Pos] == '+' || In[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("unexpected character");
    V.K = JValue::Num;
    V.N = std::strtod(In.c_str() + Start, nullptr);
    return true;
  }
};

/// detail strings are space-separated `key=value` tokens (plus free text
/// in misspec instants); returns the value for \p Key or "".
std::string detailValue(const std::string &Detail, const std::string &Key) {
  std::string Needle = Key + "=";
  size_t Pos = 0;
  while (Pos < Detail.size()) {
    size_t End = Detail.find(' ', Pos);
    if (End == std::string::npos)
      End = Detail.size();
    if (Detail.compare(Pos, Needle.size(), Needle) == 0)
      return Detail.substr(Pos + Needle.size(), End - Pos - Needle.size());
    Pos = End + 1;
  }
  return "";
}

bool detailHasFlag(const std::string &Detail, const std::string &Flag) {
  size_t Pos = 0;
  while (Pos < Detail.size()) {
    size_t End = Detail.find(' ', Pos);
    if (End == std::string::npos)
      End = Detail.size();
    if (Detail.compare(Pos, End - Pos, Flag) == 0)
      return true;
    Pos = End + 1;
  }
  return false;
}

double toMs(uint64_t Ns) { return static_cast<double>(Ns) / 1e6; }

bool isWorkerSpan(const std::string &Name) {
  return Name == "doall.chunk" || Name == "specdoall.chunk" ||
         Name == "helix.worker" || Name == "spechelix.worker" ||
         Name == "dswp.stage";
}

bool isWaitSpan(const std::string &Name) {
  return Name == "helix.gate_wait" || Name == "dswp.token_wait";
}

} // namespace

bool obs::parseTraceJson(const std::string &Text, InsightTrace &T,
                         std::string &Err) {
  JParser P(Text);
  JValue Doc;
  if (!P.parseValue(Doc)) {
    Err = P.Err;
    return false;
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    Err = "trailing data after JSON document at byte " +
          std::to_string(P.Pos);
    return false;
  }
  if (Doc.K != JValue::Obj) {
    Err = "top level is not an object";
    return false;
  }
  const JValue *Events = Doc.get("traceEvents");
  if (!Events || Events->K != JValue::Arr) {
    Err = "missing traceEvents array";
    return false;
  }
  T.Events.clear();
  T.Meta.clear();
  for (size_t I = 0; I < Events->A.size(); ++I) {
    const JValue &E = Events->A[I];
    std::string At = "event " + std::to_string(I);
    if (E.K != JValue::Obj) {
      Err = At + " is not an object";
      return false;
    }
    const JValue *Name = E.get("name");
    const JValue *Ph = E.get("ph");
    const JValue *Tid = E.get("tid");
    const JValue *Ts = E.get("ts");
    if (!Name || Name->K != JValue::Str || !Ph || Ph->K != JValue::Str ||
        !Tid || Tid->K != JValue::Num || !Ts || Ts->K != JValue::Num) {
      Err = At + " lacks name/ph/tid/ts";
      return false;
    }
    InsightEvent Ev;
    Ev.Name = Name->S;
    Ev.Tid = static_cast<unsigned>(Tid->N);
    Ev.StartNs = static_cast<uint64_t>(Ts->N * 1000.0 + 0.5);
    if (Ph->S == "i") {
      Ev.Instant = true;
    } else if (Ph->S == "X") {
      const JValue *Dur = E.get("dur");
      if (!Dur || Dur->K != JValue::Num) {
        Err = At + " is a span without dur";
        return false;
      }
      Ev.DurNs = static_cast<uint64_t>(Dur->N * 1000.0 + 0.5);
    } else {
      Err = At + " has unknown ph '" + Ph->S + "'";
      return false;
    }
    if (const JValue *Args = E.get("args"))
      if (const JValue *Detail = Args->get("detail"))
        if (Detail->K == JValue::Str)
          Ev.Detail = Detail->S;
    T.Events.push_back(std::move(Ev));
  }
  if (const JValue *Meta = Doc.get("metadata")) {
    if (Meta->K != JValue::Obj) {
      Err = "metadata is not an object";
      return false;
    }
    for (const auto &[K, V] : Meta->O)
      if (V.K == JValue::Str)
        T.Meta.emplace_back(K, V.S);
  }
  return true;
}

bool obs::parseTraceFile(const std::string &Path, InsightTrace &T,
                         std::string &Err) {
  std::ifstream In(Path);
  if (!In) {
    Err = "cannot read trace file '" + Path + "'";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  if (!parseTraceJson(SS.str(), T, Err)) {
    Err = Path + ": " + Err;
    return false;
  }
  return true;
}

// --- Analyses ----------------------------------------------------------------

namespace {

struct SpanNode {
  size_t Ev;                ///< Index into the trace's event vector.
  size_t Parent = SIZE_MAX; ///< Index into the node vector.
  std::vector<size_t> Kids;
};

uint64_t endNs(const InsightEvent &E) { return E.StartNs + E.DurNs; }

/// Per-thread containment forests, then worker/stage roots re-attached
/// across threads to the smallest loop.invoke / service.* span that
/// contains them in time (the span that spawned the work).
std::vector<SpanNode> buildSpanForest(const std::vector<InsightEvent> &Evs) {
  std::vector<size_t> Spans;
  for (size_t I = 0; I < Evs.size(); ++I)
    if (!Evs[I].Instant)
      Spans.push_back(I);
  std::sort(Spans.begin(), Spans.end(), [&](size_t A, size_t B) {
    if (Evs[A].Tid != Evs[B].Tid)
      return Evs[A].Tid < Evs[B].Tid;
    if (Evs[A].StartNs != Evs[B].StartNs)
      return Evs[A].StartNs < Evs[B].StartNs;
    return Evs[A].DurNs > Evs[B].DurNs; // outer span first on ties
  });

  std::vector<SpanNode> Nodes;
  Nodes.reserve(Spans.size());
  std::map<size_t, size_t> NodeOf; // event index -> node index
  std::vector<size_t> Stack;       // node indices, innermost last
  unsigned CurTid = ~0u;
  for (size_t EvIdx : Spans) {
    const InsightEvent &E = Evs[EvIdx];
    if (E.Tid != CurTid) {
      Stack.clear();
      CurTid = E.Tid;
    }
    while (!Stack.empty() &&
           endNs(Evs[Nodes[Stack.back()].Ev]) < endNs(E))
      Stack.pop_back();
    SpanNode N;
    N.Ev = EvIdx;
    if (!Stack.empty() &&
        Evs[Nodes[Stack.back()].Ev].StartNs <= E.StartNs &&
        endNs(E) <= endNs(Evs[Nodes[Stack.back()].Ev]))
      N.Parent = Stack.back();
    size_t Me = Nodes.size();
    Nodes.push_back(std::move(N));
    NodeOf[EvIdx] = Me;
    if (Nodes[Me].Parent != SIZE_MAX)
      Nodes[Nodes[Me].Parent].Kids.push_back(Me);
    Stack.push_back(Me);
  }

  // Cross-thread attachment: the spans that spawn work on other threads.
  std::vector<size_t> Containers;
  for (size_t N = 0; N < Nodes.size(); ++N) {
    const std::string &Name = Evs[Nodes[N].Ev].Name;
    if (Name == "loop.invoke" || Name == "service.compile" ||
        Name == "service.plan" || Name == "service.run")
      Containers.push_back(N);
  }
  for (size_t N = 0; N < Nodes.size(); ++N) {
    if (Nodes[N].Parent != SIZE_MAX)
      continue;
    const InsightEvent &E = Evs[Nodes[N].Ev];
    bool Attachable = isWorkerSpan(E.Name) || E.Name == "compile" ||
                      E.Name == "plan.build" || E.Name == "run";
    if (!Attachable)
      continue;
    size_t Best = SIZE_MAX;
    for (size_t C : Containers) {
      const InsightEvent &CE = Evs[Nodes[C].Ev];
      if (C == N || CE.Tid == E.Tid)
        continue;
      if (CE.StartNs <= E.StartNs && endNs(E) <= endNs(CE) &&
          (Best == SIZE_MAX || Evs[Nodes[Best].Ev].DurNs > CE.DurNs))
        Best = C;
    }
    if (Best != SIZE_MAX) {
      Nodes[N].Parent = Best;
      Nodes[Best].Kids.push_back(N);
    }
  }
  return Nodes;
}

void addStage(std::vector<StageBreak> &Out, const std::string &Name,
              double Ms, uint64_t Count) {
  for (StageBreak &S : Out)
    if (S.Name == Name) {
      S.Ms += Ms;
      S.Count += Count;
      return;
    }
  StageBreak S;
  S.Name = Name;
  S.Ms = Ms;
  S.Count = Count;
  Out.push_back(std::move(S));
}

} // namespace

InsightReport obs::analyzeTrace(const InsightTrace &T,
                                const std::string &Source) {
  InsightReport R;
  R.Source = Source;
  R.Meta = T.Meta;
  R.NumEvents = T.Events.size();
  for (const auto &[K, V] : T.Meta)
    if (K == "dropped_events")
      R.DroppedEvents = std::strtoull(V.c_str(), nullptr, 10);

  const std::vector<InsightEvent> &Evs = T.Events;
  if (Evs.empty())
    return R;

  uint64_t Lo = ~0ull, Hi = 0;
  for (const InsightEvent &E : Evs) {
    Lo = std::min(Lo, E.StartNs);
    Hi = std::max(Hi, std::max(E.StartNs, endNs(E)));
  }
  R.WindowMs = toMs(Hi - Lo);

  // --- Stage breakdown: top-level pipeline spans and their children. ---
  static const struct {
    const char *Stage;
    const char *Children[5];
  } StageTable[] = {
      {"compile",
       {"compile.lex+parse", "compile.sema", "compile.codegen",
        "compile.verify", nullptr}},
      {"plan.build", {"analysis.bundle", "plan.function", nullptr}},
      {"run", {"run.decode", "loop.invoke", nullptr}},
      {"service.compile", {"compile", nullptr}},
      {"service.plan", {"analysis.bundle", "plan.function", nullptr}},
      {"service.run", {"run", nullptr}},
  };
  for (const auto &Row : StageTable) {
    double Ms = 0;
    uint64_t Count = 0;
    for (const InsightEvent &E : Evs)
      if (!E.Instant && E.Name == Row.Stage) {
        Ms += toMs(E.DurNs);
        ++Count;
      }
    if (!Count)
      continue;
    StageBreak S;
    S.Name = Row.Stage;
    S.Ms = Ms;
    S.Count = Count;
    for (const char *const *C = Row.Children; *C; ++C) {
      double CMs = 0;
      uint64_t CCount = 0;
      for (const InsightEvent &E : Evs)
        if (!E.Instant && E.Name == *C) {
          CMs += toMs(E.DurNs);
          ++CCount;
        }
      if (CCount)
        addStage(S.Children, *C, CMs, CCount);
    }
    R.Stages.push_back(std::move(S));
  }

  // --- Worker utilization: busy = worker spans minus waits. ---
  std::set<unsigned> WorkerTids;
  for (const InsightEvent &E : Evs)
    if (!E.Instant && isWorkerSpan(E.Name))
      WorkerTids.insert(E.Tid);
  std::map<unsigned, std::pair<uint64_t, uint64_t>> BusyWait; // tid -> ns
  for (const InsightEvent &E : Evs) {
    if (E.Instant || !WorkerTids.count(E.Tid))
      continue;
    if (isWorkerSpan(E.Name))
      BusyWait[E.Tid].first += E.DurNs;
    else if (isWaitSpan(E.Name))
      BusyWait[E.Tid].second += E.DurNs;
  }
  double TotalBusyMs = 0;
  for (unsigned Tid : WorkerTids) {
    ThreadUtil U;
    U.Tid = Tid;
    uint64_t Busy = BusyWait[Tid].first;
    uint64_t Wait = std::min(BusyWait[Tid].second, Busy);
    U.BusyMs = toMs(Busy - Wait);
    U.WaitMs = toMs(Wait);
    U.Pct = R.WindowMs > 0 ? 100.0 * U.BusyMs / R.WindowMs : 0.0;
    TotalBusyMs += U.BusyMs;
    R.Utilization.push_back(U);
  }
  if (!WorkerTids.empty() && R.WindowMs > 0)
    R.OverallUtilPct =
        100.0 * TotalBusyMs / (R.WindowMs * WorkerTids.size());

  // Timeline: per-bucket busy fraction across the worker threads.
  if (!WorkerTids.empty() && Hi > Lo) {
    constexpr size_t Buckets = 24;
    std::vector<double> BusyNs(Buckets, 0.0);
    double BucketNs = static_cast<double>(Hi - Lo) / Buckets;
    for (const InsightEvent &E : Evs) {
      if (E.Instant || !WorkerTids.count(E.Tid))
        continue;
      double Sign = isWorkerSpan(E.Name) ? 1.0
                    : isWaitSpan(E.Name) ? -1.0
                                         : 0.0;
      if (Sign == 0.0)
        continue;
      double S = static_cast<double>(E.StartNs - Lo);
      double F = S + static_cast<double>(E.DurNs);
      size_t B0 = std::min(Buckets - 1, static_cast<size_t>(S / BucketNs));
      size_t B1 = std::min(Buckets - 1, static_cast<size_t>(F / BucketNs));
      for (size_t B = B0; B <= B1; ++B) {
        double BLo = B * BucketNs, BHi = BLo + BucketNs;
        double Overlap = std::min(F, BHi) - std::max(S, BLo);
        if (Overlap > 0)
          BusyNs[B] += Sign * Overlap;
      }
    }
    for (size_t B = 0; B < Buckets; ++B)
      R.Timeline.push_back(std::max(
          0.0, BusyNs[B] / (BucketNs * WorkerTids.size())));
  }

  // --- Span forest + critical path. ---
  std::vector<SpanNode> Nodes = buildSpanForest(Evs);
  std::vector<size_t> Roots;
  for (size_t N = 0; N < Nodes.size(); ++N)
    if (Nodes[N].Parent == SIZE_MAX)
      Roots.push_back(N);
  std::sort(Roots.begin(), Roots.end(), [&](size_t A, size_t B) {
    return Evs[Nodes[A].Ev].StartNs < Evs[Nodes[B].Ev].StartNs;
  });
  std::vector<const InsightEvent *> MisspecInstants;
  for (const InsightEvent &E : Evs)
    if (E.Instant && E.Name == "spec.misspec")
      MisspecInstants.push_back(&E);
  auto Descend = [&](size_t Root) {
    unsigned Depth = 0;
    for (size_t N = Root;;) {
      const InsightEvent &E = Evs[Nodes[N].Ev];
      CriticalPathEntry P;
      P.Name = E.Name;
      P.Detail = E.Detail;
      P.Tid = E.Tid;
      P.Depth = Depth;
      P.Ms = toMs(E.DurNs);
      uint64_t KidNs = 0;
      for (size_t K : Nodes[N].Kids)
        KidNs += Evs[Nodes[K].Ev].DurNs;
      P.SelfMs = toMs(E.DurNs > KidNs ? E.DurNs - KidNs : 0);
      for (const InsightEvent *M : MisspecInstants)
        if (M->StartNs >= E.StartNs && M->StartNs <= endNs(E))
          P.Misspec = true;
      R.CriticalPath.push_back(std::move(P));
      // Longest child carries the chain.
      size_t Next = SIZE_MAX;
      for (size_t K : Nodes[N].Kids)
        if (Next == SIZE_MAX ||
            Evs[Nodes[K].Ev].DurNs > Evs[Nodes[Next].Ev].DurNs)
          Next = K;
      if (Next == SIZE_MAX)
        break;
      N = Next;
      ++Depth;
    }
  };
  for (size_t Root : Roots)
    Descend(Root);

  // --- Per-loop attribution. ---
  struct InvokeWindow {
    uint64_t Lo, Hi;
    LoopInsight *L;
  };
  std::map<std::pair<std::string, unsigned>, LoopInsight> LoopMap;
  std::vector<InvokeWindow> Invokes;
  for (const InsightEvent &E : Evs) {
    if (E.Instant || E.Name != "loop.invoke")
      continue;
    std::string Fn = detailValue(E.Detail, "fn");
    unsigned Header = static_cast<unsigned>(
        std::strtoul(detailValue(E.Detail, "header").c_str(), nullptr, 10));
    LoopInsight &L = LoopMap[{Fn, Header}];
    L.Fn = Fn;
    L.Header = Header;
    L.Kind = detailValue(E.Detail, "kind");
    L.Spec = L.Spec || detailHasFlag(E.Detail, "spec");
    ++L.Invocations;
    L.TotalMs += toMs(E.DurNs);
    Invokes.push_back({E.StartNs, endNs(E), &L});
  }
  // Waits and chunks attribute to the invoke window containing them.
  struct ChunkAgg {
    uint64_t MaxNs = 0, SumNs = 0, Count = 0;
  };
  std::map<const InvokeWindow *, ChunkAgg> ChunksOf;
  for (const InsightEvent &E : Evs) {
    if (E.Instant)
      continue;
    bool Wait = isWaitSpan(E.Name);
    bool Chunk = E.Name == "doall.chunk" || E.Name == "specdoall.chunk";
    if (!Wait && !Chunk)
      continue;
    for (InvokeWindow &W : Invokes) {
      if (E.StartNs < W.Lo || endNs(E) > W.Hi)
        continue;
      if (Wait) {
        if (E.Name == "helix.gate_wait")
          W.L->GateWaitMs += toMs(E.DurNs);
        else
          W.L->TokenWaitMs += toMs(E.DurNs);
      } else {
        ChunkAgg &A = ChunksOf[&W];
        A.MaxNs = std::max(A.MaxNs, E.DurNs);
        A.SumNs += E.DurNs;
        ++A.Count;
        ++W.L->Chunks;
      }
      break; // innermost-first not needed: invoke windows don't overlap
    }
  }
  // Chunk imbalance: mean over invocations of (max - mean) / max.
  std::map<LoopInsight *, std::pair<double, uint64_t>> Imb;
  for (const auto &[W, A] : ChunksOf) {
    if (A.Count < 1)
      continue;
    double Mean = static_cast<double>(A.SumNs) / A.Count;
    double Pct =
        A.MaxNs ? 100.0 * (A.MaxNs - Mean) / static_cast<double>(A.MaxNs)
                : 0.0;
    Imb[W->L].first += Pct;
    ++Imb[W->L].second;
  }
  for (auto &[L, P] : Imb)
    L->ChunkImbalancePct = P.second ? P.first / P.second : 0.0;
  // Misspec / rollback / burned attribution.
  for (const InsightEvent &E : Evs) {
    if (!E.Instant)
      continue;
    if (E.Name == "spec.misspec") {
      unsigned Header = static_cast<unsigned>(std::strtoul(
          detailValue(E.Detail, "header").c_str(), nullptr, 10));
      ++R.Spec.Misspecs;
      for (auto &[Key, L] : LoopMap)
        if (Key.second == Header)
          ++L.Misspecs;
    } else if (E.Name == "spec.rollback") {
      std::string Fn = detailValue(E.Detail, "fn");
      unsigned Header = static_cast<unsigned>(std::strtoul(
          detailValue(E.Detail, "header").c_str(), nullptr, 10));
      uint64_t Lost = std::strtoull(detailValue(E.Detail, "lost").c_str(),
                                    nullptr, 10);
      ++R.Spec.Rollbacks;
      R.Spec.LostInstructions += Lost;
      auto It = LoopMap.find({Fn, Header});
      if (It != LoopMap.end()) {
        ++It->second.Rollbacks;
        It->second.LostInstructions += Lost;
      }
    } else if (E.Name == "plan.burned") {
      std::string Fn = detailValue(E.Detail, "fn");
      unsigned Header = static_cast<unsigned>(std::strtoul(
          detailValue(E.Detail, "header").c_str(), nullptr, 10));
      ++R.Spec.BurnedPlans;
      auto It = LoopMap.find({Fn, Header});
      if (It != LoopMap.end())
        It->second.Burned = true;
    }
  }
  for (auto &[Key, L] : LoopMap) {
    (void)Key;
    if (L.Spec)
      R.Spec.SpecInvocations += L.Invocations;
    R.Loops.push_back(std::move(L));
  }
  std::sort(R.Loops.begin(), R.Loops.end(),
            [](const LoopInsight &A, const LoopInsight &B) {
              return A.TotalMs > B.TotalMs;
            });

  // --- Cache traffic. ---
  std::map<std::string, CacheInsight> CacheMap;
  for (const InsightEvent &E : Evs) {
    if (!E.Instant || E.Name.rfind("cache.", 0) != 0)
      continue;
    std::string Which = detailValue(E.Detail, "cache");
    if (Which.empty())
      Which = "?";
    CacheInsight &C = CacheMap[Which];
    C.Name = Which;
    if (E.Name == "cache.hit")
      ++C.Hits;
    else if (E.Name == "cache.miss")
      ++C.Misses;
    else if (E.Name == "cache.evict")
      ++C.Evictions;
    else if (E.Name == "cache.invalidate")
      ++C.Invalidations;
  }
  for (auto &[Name, C] : CacheMap) {
    (void)Name;
    R.Caches.push_back(std::move(C));
  }
  return R;
}

// --- Rendering ---------------------------------------------------------------

namespace {

void jsonEscape(std::ostringstream &OS, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
}

std::string fmt(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", V);
  return Buf;
}

} // namespace

std::string obs::renderInsightReport(const InsightReport &R) {
  std::ostringstream OS;
  OS << "=== psc-insight: " << R.Source << " ===\n";
  std::string Tool, Session;
  for (const auto &[K, V] : R.Meta) {
    if (K == "tool")
      Tool = V;
    if (K == "session")
      Session = V;
  }
  OS << "events: " << R.NumEvents;
  if (!Tool.empty())
    OS << "  tool: " << Tool;
  if (!Session.empty())
    OS << "  session: " << Session;
  OS << "  window: " << fmt(R.WindowMs) << " ms\n";
  if (R.DroppedEvents)
    OS << "WARNING: " << R.DroppedEvents
       << " events dropped to ring overflow — totals are lower bounds\n";

  OS << "\n-- stage breakdown --\n";
  for (const StageBreak &S : R.Stages) {
    OS << "  " << S.Name << ": " << fmt(S.Ms) << " ms (" << S.Count
       << " span" << (S.Count == 1 ? "" : "s") << ")\n";
    for (const StageBreak &C : S.Children)
      OS << "    " << C.Name << ": " << fmt(C.Ms) << " ms (" << C.Count
         << ")\n";
  }

  if (!R.Utilization.empty()) {
    OS << "\n-- worker utilization (" << fmt(R.OverallUtilPct)
       << "% overall) --\n";
    for (const ThreadUtil &U : R.Utilization)
      OS << "  tid " << U.Tid << ": busy " << fmt(U.BusyMs) << " ms, wait "
         << fmt(U.WaitMs) << " ms (" << fmt(U.Pct) << "%)\n";
    if (!R.Timeline.empty()) {
      static const char *Glyphs[] = {" ", ".", ":", "-", "=", "+",
                                     "*", "#", "%", "@"};
      OS << "  timeline [";
      for (double F : R.Timeline) {
        int G = static_cast<int>(F * 9.0 + 0.5);
        OS << Glyphs[std::max(0, std::min(9, G))];
      }
      OS << "]\n";
    }
  }

  OS << "\n-- critical path --\n";
  for (const CriticalPathEntry &P : R.CriticalPath) {
    OS << "  ";
    for (unsigned D = 0; D < P.Depth; ++D)
      OS << "  ";
    OS << P.Name;
    if (!P.Detail.empty())
      OS << " [" << P.Detail << "]";
    OS << " " << fmt(P.Ms) << " ms (self " << fmt(P.SelfMs) << ")";
    if (P.Misspec)
      OS << "  << MISSPECULATED";
    OS << "\n";
  }

  if (!R.Loops.empty()) {
    OS << "\n-- loops --\n";
    for (const LoopInsight &L : R.Loops) {
      OS << "  " << L.Fn << " header " << L.Header << " [" << L.Kind
         << (L.Spec ? " spec" : "") << "]: " << L.Invocations
         << " invocation" << (L.Invocations == 1 ? "" : "s") << ", "
         << fmt(L.TotalMs) << " ms";
      if (L.GateWaitMs > 0)
        OS << ", gate-wait " << fmt(L.GateWaitMs) << " ms";
      if (L.TokenWaitMs > 0)
        OS << ", token-wait " << fmt(L.TokenWaitMs) << " ms";
      if (L.Chunks)
        OS << ", " << L.Chunks << " chunks (imbalance "
           << fmt(L.ChunkImbalancePct) << "%)";
      if (L.Misspecs)
        OS << ", " << L.Misspecs << " misspec (lost "
           << L.LostInstructions << " instructions)";
      if (L.Burned)
        OS << ", plan burned";
      OS << "\n";
    }
  }

  OS << "\n-- speculation --\n"
     << "  spec invocations: " << R.Spec.SpecInvocations
     << ", misspecs: " << R.Spec.Misspecs << " (rate "
     << fmt(R.Spec.misspecRate() * 100.0) << "%), rollbacks: "
     << R.Spec.Rollbacks << ", lost instructions: "
     << R.Spec.LostInstructions << ", burned plans: " << R.Spec.BurnedPlans
     << "\n";

  if (!R.Caches.empty()) {
    OS << "\n-- cache traffic --\n";
    for (const CacheInsight &C : R.Caches)
      OS << "  " << C.Name << ": " << C.Hits << " hits, " << C.Misses
         << " misses (rate " << fmt(C.hitRate()) << "), " << C.Evictions
         << " evictions, " << C.Invalidations << " invalidations\n";
  }
  return OS.str();
}

std::string obs::renderInsightJson(
    const std::vector<InsightReport> &Reports) {
  std::ostringstream OS;
  OS << "{\"tool\":\"psc-insight\",\"version\":1,\"sessions\":[";
  for (size_t I = 0; I < Reports.size(); ++I) {
    const InsightReport &R = Reports[I];
    if (I)
      OS << ",";
    OS << "\n{\"source\":\"";
    jsonEscape(OS, R.Source);
    OS << "\",\"events\":" << R.NumEvents
       << ",\"dropped_events\":" << R.DroppedEvents
       << ",\"window_ms\":" << fmt(R.WindowMs) << ",\"metadata\":{";
    for (size_t M = 0; M < R.Meta.size(); ++M) {
      if (M)
        OS << ",";
      OS << "\"";
      jsonEscape(OS, R.Meta[M].first);
      OS << "\":\"";
      jsonEscape(OS, R.Meta[M].second);
      OS << "\"";
    }
    OS << "},\"stages\":[";
    for (size_t S = 0; S < R.Stages.size(); ++S) {
      const StageBreak &St = R.Stages[S];
      if (S)
        OS << ",";
      OS << "{\"name\":\"";
      jsonEscape(OS, St.Name);
      OS << "\",\"ms\":" << fmt(St.Ms) << ",\"count\":" << St.Count
         << ",\"children\":[";
      for (size_t C = 0; C < St.Children.size(); ++C) {
        if (C)
          OS << ",";
        OS << "{\"name\":\"";
        jsonEscape(OS, St.Children[C].Name);
        OS << "\",\"ms\":" << fmt(St.Children[C].Ms)
           << ",\"count\":" << St.Children[C].Count << "}";
      }
      OS << "]}";
    }
    OS << "],\"utilization\":{\"overall_pct\":" << fmt(R.OverallUtilPct)
       << ",\"threads\":[";
    for (size_t U = 0; U < R.Utilization.size(); ++U) {
      const ThreadUtil &T = R.Utilization[U];
      if (U)
        OS << ",";
      OS << "{\"tid\":" << T.Tid << ",\"busy_ms\":" << fmt(T.BusyMs)
         << ",\"wait_ms\":" << fmt(T.WaitMs) << ",\"pct\":" << fmt(T.Pct)
         << "}";
    }
    OS << "],\"timeline\":[";
    for (size_t B = 0; B < R.Timeline.size(); ++B) {
      if (B)
        OS << ",";
      OS << fmt(R.Timeline[B]);
    }
    OS << "]},\"critical_path\":[";
    for (size_t P = 0; P < R.CriticalPath.size(); ++P) {
      const CriticalPathEntry &E = R.CriticalPath[P];
      if (P)
        OS << ",";
      OS << "{\"name\":\"";
      jsonEscape(OS, E.Name);
      OS << "\",\"detail\":\"";
      jsonEscape(OS, E.Detail);
      OS << "\",\"tid\":" << E.Tid << ",\"depth\":" << E.Depth
         << ",\"ms\":" << fmt(E.Ms) << ",\"self_ms\":" << fmt(E.SelfMs)
         << ",\"misspec\":" << (E.Misspec ? "true" : "false") << "}";
    }
    OS << "],\"loops\":[";
    for (size_t L = 0; L < R.Loops.size(); ++L) {
      const LoopInsight &Lp = R.Loops[L];
      if (L)
        OS << ",";
      OS << "{\"fn\":\"";
      jsonEscape(OS, Lp.Fn);
      OS << "\",\"header\":" << Lp.Header << ",\"kind\":\"";
      jsonEscape(OS, Lp.Kind);
      OS << "\",\"spec\":" << (Lp.Spec ? "true" : "false")
         << ",\"invocations\":" << Lp.Invocations
         << ",\"total_ms\":" << fmt(Lp.TotalMs)
         << ",\"gate_wait_ms\":" << fmt(Lp.GateWaitMs)
         << ",\"token_wait_ms\":" << fmt(Lp.TokenWaitMs)
         << ",\"chunks\":" << Lp.Chunks
         << ",\"chunk_imbalance_pct\":" << fmt(Lp.ChunkImbalancePct)
         << ",\"misspecs\":" << Lp.Misspecs
         << ",\"rollbacks\":" << Lp.Rollbacks
         << ",\"rollback_lost_instructions\":" << Lp.LostInstructions
         << ",\"burned\":" << (Lp.Burned ? "true" : "false") << "}";
    }
    OS << "],\"speculation\":{\"spec_invocations\":"
       << R.Spec.SpecInvocations << ",\"misspecs\":" << R.Spec.Misspecs
       << ",\"misspec_rate\":" << fmt(R.Spec.misspecRate())
       << ",\"rollbacks\":" << R.Spec.Rollbacks
       << ",\"lost_instructions\":" << R.Spec.LostInstructions
       << ",\"burned_plans\":" << R.Spec.BurnedPlans << "},\"caches\":[";
    for (size_t C = 0; C < R.Caches.size(); ++C) {
      const CacheInsight &Ca = R.Caches[C];
      if (C)
        OS << ",";
      OS << "{\"cache\":\"";
      jsonEscape(OS, Ca.Name);
      OS << "\",\"hits\":" << Ca.Hits << ",\"misses\":" << Ca.Misses
         << ",\"evictions\":" << Ca.Evictions
         << ",\"invalidations\":" << Ca.Invalidations
         << ",\"hit_rate\":" << fmt(Ca.hitRate()) << "}";
    }
    OS << "]}";
  }
  OS << "\n]}\n";
  return OS.str();
}
