//===- Forensics.h - Misspeculation flight recorder ------------*- C++ -*-===//
///
/// \file
/// The misspeculation flight recorder (DESIGN.md §14): when a speculative
/// loop invocation rolls back, the runtime captures one bounded forensic
/// record — the violated assumption with its oracle provenance, the
/// conflicting access pair (objects, offsets, iterations), the schedule's
/// watch-set snapshot, the plan identity, and the rollback cost in lost
/// instructions — into a process-wide ring of the last kMisspecRingCap
/// records.
///
/// Two consumers read the ring through one canonical renderer
/// (renderMisspecRecord), so their output is byte-identical by
/// construction:
///   * pscc `--misspec-out=FILE` writes the records as a
///     `.psc-misspec.json` artifact after a parallel run;
///   * the pscd `forensics` op returns the resident ring.
///
/// Determinism: records carry no raw pointers and no wall-clock state —
/// objects are named through the module's global table, instructions
/// through the same opcode/storage/block summaries the plan-decision log
/// uses — so the same misspeculation renders to the same bytes in every
/// process.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_OBS_FORENSICS_H
#define PSPDG_OBS_FORENSICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace psc {
namespace obs {

/// Records kept resident (newest win; the total ever captured is still
/// reported so overflow is never silent).
constexpr size_t kMisspecRingCap = 16;

/// One misspeculation, fully attributed. String fields hold deterministic
/// summaries (instruction descriptions, object names), never pointers.
struct MisspecRecord {
  // Plan identity.
  std::string Fn;          ///< Function containing the loop.
  unsigned Header = 0;     ///< Loop header block index.
  std::string Kind;        ///< Schedule kind (DOALL/HELIX/DSWP).
  std::string Abstraction; ///< Abstraction that justified the plan.
  unsigned Threads = 0;    ///< Plan thread count.

  // The violation itself.
  std::string ViolationKind; ///< conflict | value | guard | divergence.
  std::string Description;   ///< The validator's violation text.
  unsigned Scalar = 0;       ///< value/guard: scalar or guard ordinal.
  long Iter = 0;             ///< value/guard: violating iteration.

  // Violated assumption (conflict only), with oracle provenance: the
  // dependence was assumed absent because the speculation oracle's
  // training profile never saw it manifest; SrcIdx/DstIdx are the
  // FunctionAnalysis instruction indices — the profile's key space.
  int AssumptionId = -1;
  std::string AssumedSrc, AssumedDst; ///< Instruction summaries.
  unsigned SrcIdx = 0, DstIdx = 0;    ///< Profile key of the assumption.
  unsigned SrcWatch = 0, DstWatch = 0;

  // Conflicting access pair (conflict only).
  std::string Object; ///< Global name; "<unnamed>" when not a global.
  uint64_t Offset = 0;
  long SrcIter = 0, DstIter = 0; ///< Iterations realizing the dependence.

  // Watch-set snapshot: instruction summary per dense watch index.
  std::vector<std::string> WatchSet;

  // Rollback cost: instructions executed by the discarded speculative
  // invocation (workers + validation), measured at the rollback site.
  uint64_t LostInstructions = 0;
};

/// Canonical single-line JSON for one record — the shared renderer both
/// the pscc artifact and the pscd forensics op emit through.
std::string renderMisspecRecord(const MisspecRecord &R);

/// The `.psc-misspec.json` artifact envelope around the resident ring:
/// {"tool":<Tool>,"version":1,"total":N,"records":[...]} with each
/// record rendered by renderMisspecRecord on its own line. pscc's
/// --misspec-out writes exactly this; the pscd forensics op returns the
/// same record lines, so the two stay byte-comparable.
std::string renderMisspecArtifact(const std::string &Tool);

/// Appends to the process-wide ring (keeps the newest kMisspecRingCap).
void misspecPush(MisspecRecord R);

/// The resident records, oldest first.
std::vector<MisspecRecord> misspecRecords();

/// Total records ever captured (>= misspecRecords().size()).
uint64_t misspecTotal();

/// Clears the ring and the total (tests; pscc between runs).
void misspecClear();

} // namespace obs
} // namespace psc

#endif // PSPDG_OBS_FORENSICS_H
