//===- Metrics.h - Named counters and histograms ----------------*- C++ -*-===//
///
/// \file
/// The unified metrics surface (DESIGN.md §13): one registry of named,
/// optionally labeled counters/gauges and fixed-bucket histograms,
/// rendered in the Prometheus text exposition format. The resident
/// service owns one registry and exposes it via the `metrics` op and
/// `pscd --metrics-out`; the oracle-stack and cache stat structs export
/// into it at render time (they keep their cheap internal counters — the
/// registry is the *presentation* layer, so a fleet scrape story exists
/// without putting atomics on analysis hot paths).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_OBS_METRICS_H
#define PSPDG_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace psc {
namespace obs {

/// A monotonically increasing count (or, via set(), a sampled gauge).
class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  void set(uint64_t N) { V.store(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Fixed-bucket histogram: cumulative bucket counts plus sum/count, the
/// Prometheus histogram shape.
class Histogram {
public:
  explicit Histogram(std::vector<double> UpperBounds);

  void observe(double V);
  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  double sum() const;
  /// Linearly interpolated quantile estimate from the bucket counts
  /// (exact enough for p50/p90/p99 dashboards; tests use count()).
  double quantile(double Q) const;
  const std::vector<double> &bounds() const { return Bounds; }
  uint64_t bucketCount(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

private:
  std::vector<double> Bounds; ///< Ascending upper bounds; +inf implicit.
  std::unique_ptr<std::atomic<uint64_t>[]> BucketStore;
  std::atomic<uint64_t> *Buckets; ///< Bounds.size()+1 cells.
  std::atomic<uint64_t> N{0};
  std::atomic<uint64_t> SumBits{0}; ///< double, CAS-accumulated.
};

/// Registry of metric families. Registration is mutex-guarded and
/// returns stable references; updates on the returned objects are
/// lock-free atomics.
class MetricsRegistry {
public:
  /// \p Type is "counter" or "gauge" (exposition TYPE line).
  /// \p Labels is a pre-formatted Prometheus label body, e.g.
  /// `cache="module"` — empty for an unlabeled metric.
  Counter &counter(const std::string &Name, const std::string &Labels = "",
                   const std::string &Help = "",
                   const std::string &Type = "counter");
  Histogram &histogram(const std::string &Name,
                       std::vector<double> UpperBounds,
                       const std::string &Labels = "",
                       const std::string &Help = "");

  /// Prometheus text exposition of every registered metric.
  std::string render() const;

private:
  struct Family {
    std::string Help;
    std::string Type;
    std::map<std::string, std::unique_ptr<Counter>> Counters;
    std::map<std::string, std::unique_ptr<Histogram>> Histograms;
  };
  mutable std::mutex Mu;
  std::map<std::string, Family> Families;
};

} // namespace obs
} // namespace psc

#endif // PSPDG_OBS_METRICS_H
