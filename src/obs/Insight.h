//===- Insight.h - Offline trace analytics ---------------------*- C++ -*-===//
///
/// \file
/// The analysis layer behind `psc-insight` (DESIGN.md §14): ingests the
/// Chrome trace-event JSON this repo's recorder writes (`pscc
/// --trace-out`, `pscd --trace-dir` session files) and derives, per
/// trace:
///
///   * a stage wall-clock breakdown (compile/plan/run and their
///     sub-stages, or the service.* stages for pscd sessions);
///   * a worker-utilization timeline — busy fraction per worker thread
///     with gate/token waits subtracted, bucketed over the trace window;
///   * the critical path through the span graph: per-thread containment
///     forests, worker spans re-attached across threads to the
///     loop.invoke that spawned them, then a greedy longest-child
///     descent from each top-level span in time order;
///   * per-loop attribution: invocations, wall-clock, gate-wait,
///     token-wait, chunk imbalance, misspeculations, rollback cost;
///   * speculation efficiency: misspec rate, rollback cost in lost
///     instructions (from the `lost=` detail the rollback instant
///     carries), burned-plan impact;
///   * L1/L2/L3 cache traffic from the cache.* instants.
///
/// Parsing is a dependency-free recursive-descent JSON reader that
/// rejects malformed or truncated traces with a diagnostic instead of
/// guessing. Rendering is split human/machine: renderInsightReport for
/// eyes, renderInsightJson for CI gates.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_OBS_INSIGHT_H
#define PSPDG_OBS_INSIGHT_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace psc {
namespace obs {

/// One parsed trace event (the writer's shape, decoded back to ns).
struct InsightEvent {
  std::string Name;
  std::string Detail;
  unsigned Tid = 0;
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  bool Instant = false;
};

/// A parsed trace file: events plus the top-level metadata object.
struct InsightTrace {
  std::vector<InsightEvent> Events;
  std::vector<std::pair<std::string, std::string>> Meta;
};

/// Parses trace JSON text. False (with \p Err) on malformed, truncated,
/// or schema-violating input — never a partial result.
bool parseTraceJson(const std::string &Text, InsightTrace &T,
                    std::string &Err);

/// Reads and parses \p Path. False with \p Err on I/O or parse failure.
bool parseTraceFile(const std::string &Path, InsightTrace &T,
                    std::string &Err);

/// One stage's share of the wall clock, with its sub-stage children.
struct StageBreak {
  std::string Name;
  double Ms = 0.0;
  uint64_t Count = 0;
  std::vector<StageBreak> Children;
};

/// One step on the critical path (depth > 0 = nested under the previous
/// shallower entry).
struct CriticalPathEntry {
  std::string Name;
  std::string Detail;
  unsigned Tid = 0;
  unsigned Depth = 0;
  double Ms = 0.0;
  double SelfMs = 0.0; ///< Ms minus the attached children's total.
  bool Misspec = false; ///< A spec.misspec instant fell inside this span.
};

/// One worker thread's utilization over the trace window.
struct ThreadUtil {
  unsigned Tid = 0;
  double BusyMs = 0.0; ///< Worker-span time minus gate/token waits.
  double WaitMs = 0.0; ///< Gate/token wait time.
  double Pct = 0.0;    ///< 100 * BusyMs / window.
};

/// Per-loop attribution, keyed by (fn, header) from loop.invoke spans.
struct LoopInsight {
  std::string Fn;
  unsigned Header = 0;
  std::string Kind;
  bool Spec = false;
  uint64_t Invocations = 0;
  double TotalMs = 0.0;
  double GateWaitMs = 0.0;  ///< helix.gate_wait inside this loop's invokes.
  double TokenWaitMs = 0.0; ///< dswp.token_wait inside this loop's invokes.
  uint64_t Chunks = 0;
  /// Mean over invocations of 100 * (max chunk - mean chunk) / max chunk.
  double ChunkImbalancePct = 0.0;
  uint64_t Misspecs = 0;
  uint64_t Rollbacks = 0;
  uint64_t LostInstructions = 0; ///< Sum of the rollbacks' lost= cost.
  bool Burned = false;
};

struct CacheInsight {
  std::string Name; ///< module / memo / plan.
  uint64_t Hits = 0, Misses = 0, Evictions = 0, Invalidations = 0;
  double hitRate() const {
    uint64_t T = Hits + Misses;
    return T ? static_cast<double>(Hits) / T : 0.0;
  }
};

struct SpecSummary {
  uint64_t SpecInvocations = 0;
  uint64_t Misspecs = 0;
  uint64_t Rollbacks = 0;
  uint64_t LostInstructions = 0;
  uint64_t BurnedPlans = 0;
  double misspecRate() const {
    return SpecInvocations
               ? static_cast<double>(Misspecs) / SpecInvocations
               : 0.0;
  }
};

/// Everything the analyses derive from one trace.
struct InsightReport {
  std::string Source; ///< File path (or label) the trace came from.
  std::vector<std::pair<std::string, std::string>> Meta;
  size_t NumEvents = 0;
  uint64_t DroppedEvents = 0; ///< From the writer's metadata.
  double WindowMs = 0.0;      ///< First event start to last event end.
  std::vector<StageBreak> Stages;
  std::vector<ThreadUtil> Utilization;
  std::vector<double> Timeline; ///< Per-bucket worker busy fraction [0,1].
  double OverallUtilPct = 0.0;
  std::vector<CriticalPathEntry> CriticalPath;
  std::vector<LoopInsight> Loops;
  SpecSummary Spec;
  std::vector<CacheInsight> Caches;
};

/// Runs every analysis over \p T. \p Source labels the report.
InsightReport analyzeTrace(const InsightTrace &T, const std::string &Source);

/// Human-readable report (one trace).
std::string renderInsightReport(const InsightReport &R);

/// Machine output for every analyzed trace:
/// {"tool":"psc-insight","version":1,"sessions":[...]}.
std::string renderInsightJson(const std::vector<InsightReport> &Reports);

} // namespace obs
} // namespace psc

#endif // PSPDG_OBS_INSIGHT_H
