//===- Metrics.cpp --------------------------------------------*- C++ -*-===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

using namespace psc;
using namespace psc::obs;

Histogram::Histogram(std::vector<double> UpperBounds)
    : Bounds(std::move(UpperBounds)) {
  std::sort(Bounds.begin(), Bounds.end());
  BucketStore =
      std::make_unique<std::atomic<uint64_t>[]>(Bounds.size() + 1);
  Buckets = BucketStore.get();
  for (size_t I = 0; I <= Bounds.size(); ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double V) {
  size_t I = 0;
  while (I < Bounds.size() && V > Bounds[I])
    ++I;
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
  N.fetch_add(1, std::memory_order_relaxed);
  uint64_t Old = SumBits.load(std::memory_order_relaxed);
  for (;;) {
    double S;
    std::memcpy(&S, &Old, sizeof(S));
    S += V;
    uint64_t New;
    std::memcpy(&New, &S, sizeof(New));
    if (SumBits.compare_exchange_weak(Old, New, std::memory_order_relaxed))
      break;
  }
}

double Histogram::sum() const {
  uint64_t Bits = SumBits.load(std::memory_order_relaxed);
  double S;
  std::memcpy(&S, &Bits, sizeof(S));
  return S;
}

double Histogram::quantile(double Q) const {
  uint64_t Total = count();
  if (Total == 0)
    return 0.0;
  double Rank = Q * static_cast<double>(Total);
  uint64_t Seen = 0;
  double Lo = 0.0;
  for (size_t I = 0; I <= Bounds.size(); ++I) {
    uint64_t C = Buckets[I].load(std::memory_order_relaxed);
    double Hi = I < Bounds.size() ? Bounds[I] : Bounds.empty()
                    ? 0.0
                    : Bounds.back() * 2;
    if (Seen + C >= Rank && C > 0) {
      double Frac = (Rank - static_cast<double>(Seen)) /
                    static_cast<double>(C);
      return Lo + (Hi - Lo) * std::min(1.0, std::max(0.0, Frac));
    }
    Seen += C;
    Lo = Hi;
  }
  return Lo;
}

Counter &MetricsRegistry::counter(const std::string &Name,
                                  const std::string &Labels,
                                  const std::string &Help,
                                  const std::string &Type) {
  std::lock_guard<std::mutex> Lock(Mu);
  Family &F = Families[Name];
  if (F.Type.empty()) {
    F.Type = Type;
    F.Help = Help;
  }
  std::unique_ptr<Counter> &Slot = F.Counters[Labels];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      std::vector<double> UpperBounds,
                                      const std::string &Labels,
                                      const std::string &Help) {
  std::lock_guard<std::mutex> Lock(Mu);
  Family &F = Families[Name];
  if (F.Type.empty()) {
    F.Type = "histogram";
    F.Help = Help;
  }
  std::unique_ptr<Histogram> &Slot = F.Histograms[Labels];
  if (!Slot)
    Slot = std::make_unique<Histogram>(std::move(UpperBounds));
  return *Slot;
}

namespace {

void formatNumber(std::ostringstream &OS, double V) {
  if (V == static_cast<double>(static_cast<long long>(V))) {
    OS << static_cast<long long>(V);
    return;
  }
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  OS << Buf;
}

std::string withLabels(const std::string &Name, const std::string &Labels,
                       const std::string &ExtraLabel = "") {
  std::string Body = Labels;
  if (!ExtraLabel.empty()) {
    if (!Body.empty())
      Body += ",";
    Body += ExtraLabel;
  }
  if (Body.empty())
    return Name;
  return Name + "{" + Body + "}";
}

} // namespace

std::string MetricsRegistry::render() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream OS;
  for (const auto &[Name, F] : Families) {
    if (!F.Help.empty())
      OS << "# HELP " << Name << " " << F.Help << "\n";
    OS << "# TYPE " << Name << " " << F.Type << "\n";
    for (const auto &[Labels, C] : F.Counters)
      OS << withLabels(Name, Labels) << " " << C->value() << "\n";
    for (const auto &[Labels, H] : F.Histograms) {
      uint64_t Cum = 0;
      for (size_t I = 0; I < H->bounds().size(); ++I) {
        Cum += H->bucketCount(I);
        char Le[64];
        std::snprintf(Le, sizeof(Le), "le=\"%g\"", H->bounds()[I]);
        OS << withLabels(Name + "_bucket", Labels, Le) << " " << Cum << "\n";
      }
      Cum += H->bucketCount(H->bounds().size());
      OS << withLabels(Name + "_bucket", Labels, "le=\"+Inf\"") << " " << Cum
         << "\n";
      OS << withLabels(Name + "_sum", Labels) << " ";
      formatNumber(OS, H->sum());
      OS << "\n";
      OS << withLabels(Name + "_count", Labels) << " " << H->count() << "\n";
    }
  }
  return OS.str();
}
