//===- Trace.cpp ----------------------------------------------*- C++ -*-===//

#include "obs/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

using namespace psc;
using namespace psc::obs;

std::atomic<bool> trace_detail::Enabled{false};

namespace {

constexpr size_t kRingCap = 16384; ///< Events kept per thread (newest win).

struct RawEvent {
  const char *Name = nullptr;
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  bool Instant = false;
  char Detail[96];
};

/// One thread's ring. The owner pushes under Lock (uncontended: only a
/// collector ever competes); the registry's shared_ptr keeps the ring
/// alive after the owning thread exits.
///
/// Buf grows on demand instead of pre-zeroing all kRingCap slots: worker
/// threads are born per parallel invocation, and paging in a 2 MB ring
/// on each one's first event used to cost more than the run it traced
/// (the bench_micro trace_on_overhead gate caught this). The invariant
/// Buf.size() == min(Count, kRingCap) keeps the collectors' Count-based
/// indexing valid throughout.
struct Ring {
  unsigned Tid = 0;
  std::atomic_flag Lock = ATOMIC_FLAG_INIT;
  uint64_t Count = 0; ///< Total events ever pushed (wrap = Count % cap).
  std::vector<RawEvent> Buf;

  explicit Ring(unsigned Tid) : Tid(Tid) { Buf.reserve(64); }

  void push(const char *Name, uint64_t StartNs, uint64_t DurNs, bool Instant,
            const char *Detail) {
    while (Lock.test_and_set(std::memory_order_acquire))
      ;
    if (Buf.size() < kRingCap)
      Buf.emplace_back();
    RawEvent &E = Buf[Count % kRingCap];
    E.Name = Name;
    E.StartNs = StartNs;
    E.DurNs = DurNs;
    E.Instant = Instant;
    std::snprintf(E.Detail, sizeof(E.Detail), "%s", Detail ? Detail : "");
    ++Count;
    Lock.clear(std::memory_order_release);
  }
};

struct Registry {
  std::mutex Mu;
  std::vector<std::shared_ptr<Ring>> Rings;
  std::atomic<uint64_t> EpochNs{0};
  /// Bumped by traceEnable to invalidate rings; holders compare it
  /// lock-free so the hot path never touches Mu after registration.
  std::atomic<uint64_t> Generation{0};
};

Registry &registry() {
  static Registry R;
  return R;
}

uint64_t steadyNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The calling thread's ring, registered on first use. The holder keeps
/// a generation stamp so rings recycle across traceEnable() cycles.
Ring &myRing() {
  struct Holder {
    std::shared_ptr<Ring> R;
    uint64_t Gen = ~0ull;
  };
  thread_local Holder H;
  Registry &Reg = registry();
  uint64_t Gen = Reg.Generation.load(std::memory_order_acquire);
  if (!H.R || H.Gen != Gen) {
    std::lock_guard<std::mutex> Lock(Reg.Mu);
    H.R = std::make_shared<Ring>(static_cast<unsigned>(Reg.Rings.size()));
    H.Gen = Gen;
    Reg.Rings.push_back(H.R);
  }
  return *H.R;
}

void escapeJson(std::ostringstream &OS, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
}

bool writeEvents(const std::string &Path,
                 const std::vector<TraceEventData> &Events,
                 const std::vector<std::pair<std::string, std::string>> &Meta,
                 std::string &Err) {
  std::vector<std::pair<std::string, std::string>> AllMeta = Meta;
  AllMeta.emplace_back("dropped_events",
                       std::to_string(obs::traceDroppedEvents()));
  std::ostringstream OS;
  OS << "{\"traceEvents\":[";
  for (size_t I = 0; I < Events.size(); ++I) {
    const TraceEventData &E = Events[I];
    if (I)
      OS << ",";
    OS << "\n{\"name\":\"";
    escapeJson(OS, E.Name);
    OS << "\",\"ph\":\"" << (E.Instant ? "i" : "X") << "\"";
    if (E.Instant)
      OS << ",\"s\":\"t\"";
    char Ts[64];
    std::snprintf(Ts, sizeof(Ts), "%.3f",
                  static_cast<double>(E.StartNs) / 1000.0);
    OS << ",\"pid\":1,\"tid\":" << E.Tid << ",\"ts\":" << Ts;
    if (!E.Instant) {
      std::snprintf(Ts, sizeof(Ts), "%.3f",
                    static_cast<double>(E.DurNs) / 1000.0);
      OS << ",\"dur\":" << Ts;
    }
    if (!E.Detail.empty()) {
      OS << ",\"args\":{\"detail\":\"";
      escapeJson(OS, E.Detail);
      OS << "\"}";
    }
    OS << "}";
  }
  OS << "\n],\"displayTimeUnit\":\"ms\",\"metadata\":{";
  for (size_t I = 0; I < AllMeta.size(); ++I) {
    if (I)
      OS << ",";
    OS << "\"";
    escapeJson(OS, AllMeta[I].first);
    OS << "\":\"";
    escapeJson(OS, AllMeta[I].second);
    OS << "\"";
  }
  OS << "}}\n";
  std::ofstream Out(Path);
  if (!Out) {
    Err = "cannot write trace file '" + Path + "'";
    return false;
  }
  Out << OS.str();
  return true;
}

std::vector<TraceEventData> collect(uint64_t LoNs, uint64_t HiNs) {
  Registry &Reg = registry();
  std::vector<std::shared_ptr<Ring>> Rings;
  {
    std::lock_guard<std::mutex> Lock(Reg.Mu);
    Rings = Reg.Rings;
  }
  std::vector<TraceEventData> Out;
  for (const std::shared_ptr<Ring> &R : Rings) {
    while (R->Lock.test_and_set(std::memory_order_acquire))
      ;
    uint64_t N = std::min<uint64_t>(R->Count, kRingCap);
    for (uint64_t K = R->Count - N; K < R->Count; ++K) {
      const RawEvent &E = R->Buf[K % kRingCap];
      if (E.StartNs < LoNs || E.StartNs > HiNs)
        continue;
      TraceEventData D;
      D.Name = E.Name;
      D.Detail = E.Detail;
      D.Tid = R->Tid;
      D.StartNs = E.StartNs;
      D.DurNs = E.DurNs;
      D.Instant = E.Instant;
      Out.push_back(std::move(D));
    }
    R->Lock.clear(std::memory_order_release);
  }
  std::sort(Out.begin(), Out.end(),
            [](const TraceEventData &A, const TraceEventData &B) {
              if (A.Tid != B.Tid)
                return A.Tid < B.Tid;
              return A.StartNs < B.StartNs;
            });
  return Out;
}

} // namespace

uint64_t trace_detail::nowNs() {
  return steadyNs() - registry().EpochNs.load(std::memory_order_relaxed);
}

void trace_detail::recordSpan(const char *Name, uint64_t StartNs,
                              uint64_t DurNs, const char *Detail) {
  myRing().push(Name, StartNs, DurNs, /*Instant=*/false, Detail);
}

void trace_detail::recordInstant(const char *Name, const char *Detail) {
  myRing().push(Name, trace_detail::nowNs(), 0, /*Instant=*/true, Detail);
}

void obs::traceEnable() {
  Registry &Reg = registry();
  {
    std::lock_guard<std::mutex> Lock(Reg.Mu);
    Reg.Rings.clear(); // holders re-register lazily via the generation
    ++Reg.Generation;
  }
  Reg.EpochNs.store(steadyNs(), std::memory_order_relaxed);
  trace_detail::Enabled.store(true, std::memory_order_release);
}

void obs::traceDisable() {
  trace_detail::Enabled.store(false, std::memory_order_release);
}

uint64_t obs::traceNowNs() {
  return traceEnabled() ? trace_detail::nowNs() : 0;
}

std::vector<TraceEventData> obs::traceCollect() {
  return collect(0, ~0ull);
}

uint64_t obs::traceDroppedEvents(
    std::vector<std::pair<unsigned, uint64_t>> *PerThread) {
  Registry &Reg = registry();
  std::vector<std::shared_ptr<Ring>> Rings;
  {
    std::lock_guard<std::mutex> Lock(Reg.Mu);
    Rings = Reg.Rings;
  }
  uint64_t Total = 0;
  for (const std::shared_ptr<Ring> &R : Rings) {
    while (R->Lock.test_and_set(std::memory_order_acquire))
      ;
    uint64_t Count = R->Count;
    R->Lock.clear(std::memory_order_release);
    uint64_t Dropped = Count > kRingCap ? Count - kRingCap : 0;
    Total += Dropped;
    if (PerThread && Dropped)
      PerThread->emplace_back(R->Tid, Dropped);
  }
  return Total;
}

bool obs::traceWrite(
    const std::string &Path,
    const std::vector<std::pair<std::string, std::string>> &Meta,
    std::string &Err) {
  return writeEvents(Path, collect(0, ~0ull), Meta, Err);
}

bool obs::traceWriteWindow(
    const std::string &Path, uint64_t LoNs, uint64_t HiNs,
    const std::vector<std::pair<std::string, std::string>> &Meta,
    std::string &Err) {
  return writeEvents(Path, collect(LoNs, HiNs), Meta, Err);
}

void obs::traceInstantf(const char *Name, const char *Fmt, ...) {
  if (!traceEnabled())
    return;
  char Buf[96];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  trace_detail::recordInstant(Name, Buf);
}

TraceSpan::TraceSpan(const char *Name, const char *Fmt, ...) {
  if (!traceEnabled())
    return;
  this->Name = Name;
  Start = trace_detail::nowNs();
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Detail, sizeof(Detail), Fmt, Args);
  va_end(Args);
}
