//===- DepProfile.h - Serialized dependence-manifestation profile -*- C++ -*-===//
///
/// \file
/// The training artifact of the speculation subsystem: which memory
/// dependences *actually manifested* while a workload ran. A profile
/// records, per (function, loop), the set of (src, dst) instruction pairs
/// for which an access of src in iteration i and an access of dst in a
/// later iteration j > i touched the same memory location with at least
/// one write. The speculative oracle (analysis/SpecOracle.h) downgrades a
/// sound MayDep to a runtime-validated NoDep exactly when the profile
/// *observed* the loop and the pair is absent.
///
/// Absence of data is never a license to speculate: a loop the profile did
/// not observe, or a function whose instruction count no longer matches
/// the profile (a stale profile), yields no downgrades.
///
/// Profiles serialize to a versioned JSON document and merge across
/// training inputs (union of manifested pairs, summed counters); see
/// DESIGN.md §9 for the format.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_PROFILING_DEPPROFILE_H
#define PSPDG_PROFILING_DEPPROFILE_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>

namespace psc {

/// A dependence-manifestation profile (see file comment).
class DepProfile {
public:
  /// Bumped whenever the serialized schema changes; readers reject other
  /// versions loudly rather than misinterpreting the data.
  static constexpr unsigned Version = 1;

  struct LoopProfile {
    uint64_t Invocations = 0;
    uint64_t Iterations = 0;
    /// Manifested cross-iteration pairs, as (src, dst) FunctionAnalysis
    /// instruction indices: src executed in the earlier iteration.
    std::set<std::pair<unsigned, unsigned>> Manifested;
  };

  struct FunctionProfile {
    /// Staleness guard: the function's instruction count when profiled.
    /// Instruction indices are only meaningful against the same program.
    unsigned NumInstructions = 0;
    /// Keyed by loop header block index.
    std::map<unsigned, LoopProfile> Loops;
  };

  std::map<std::string, FunctionProfile> Functions;

  bool empty() const { return Functions.empty(); }

  /// True when loop (Fn, Header) was trained and the profile is not stale
  /// for the function (\p NumInstructions matches the recorded count).
  bool observed(const std::string &Fn, unsigned NumInstructions,
                unsigned Header) const;

  /// True when the (SrcIdx → DstIdx) dependence carried at (Fn, Header)
  /// manifested in training.
  bool manifested(const std::string &Fn, unsigned Header, unsigned SrcIdx,
                  unsigned DstIdx) const;

  void recordLoop(const std::string &Fn, unsigned NumInstructions,
                  unsigned Header, uint64_t Invocations, uint64_t Iterations);
  void recordManifest(const std::string &Fn, unsigned Header, unsigned SrcIdx,
                      unsigned DstIdx);

  /// Merges \p O into this profile: union of manifested pairs, summed
  /// counters. A function whose instruction counts disagree between the
  /// two profiles is stale on one side and is dropped entirely (the
  /// conservative choice: no data, no speculation) — and stays dropped
  /// across subsequent merges into this object, so a chain of merges is
  /// order-independent. The tombstones are merge-session state, not part
  /// of the serialized document.
  void merge(const DepProfile &O);

  std::string toJson() const;

  /// Parses a serialized profile; on failure returns false with a message
  /// in \p Err. Rejects unknown formats and versions.
  static bool parseJson(const std::string &Text, DepProfile &Out,
                        std::string &Err);

  bool saveFile(const std::string &Path, std::string &Err) const;
  static bool loadFile(const std::string &Path, DepProfile &Out,
                       std::string &Err);

private:
  /// Functions dropped by merge() for version conflicts (see merge()).
  std::set<std::string> Conflicted;
};

} // namespace psc

#endif // PSPDG_PROFILING_DEPPROFILE_H
