//===- DepProfile.h - Serialized dependence + value profile ------*- C++ -*-===//
///
/// \file
/// The training artifact of the speculation subsystem. A profile records,
/// per (function, loop):
///
///   * the set of (src, dst) instruction pairs whose memory dependence
///     *actually manifested* while a workload ran (the memory-speculation
///     evidence; see SpecOracle.h);
///   * the set of instruction indices that performed any memory access
///     (so an access that never executed in training is *cold* — the
///     license for guard-watched reduction promotion, and the raw material
///     of `pscc --profile-report` manifest-density reporting);
///   * per-scalar *value observations*: whether a loop-carried scalar was
///     invariant, affine-strided, or written-before-read in every training
///     iteration (the value-speculation evidence; see ValueSpec.h);
///   * the speculation history (attempts / misspeculations) fed back by
///     `pscc --spec-feedback`, consumed by speculation-aware plan
///     selection (PlanEnumerator.h).
///
/// Staleness: indices are only meaningful against the same program, so a
/// function records both its instruction count and the canonical *body
/// hash* (pspdg/Fingerprint.h, functionBodyHash). A same-size edit no
/// longer silently retargets indices: the hash mismatch rejects the data.
/// Absence of data is never a license to speculate.
///
/// Profiles serialize to a versioned JSON document and merge across
/// training inputs (union of manifested pairs / accessed sets, summed
/// counters, value classes meet-joined); see DESIGN.md §9–§10.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_PROFILING_DEPPROFILE_H
#define PSPDG_PROFILING_DEPPROFILE_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>

namespace psc {

/// Observed value behavior of one scalar across the iterations of one loop
/// (per invocation, re-anchored at the invocation's entry value).
enum class ValueClassKind {
  Varying,    ///< No exploitable pattern (never speculated).
  Invariant,  ///< Every write stored the loop-entry value.
  Strided,    ///< Every iteration's last write advanced by a fixed stride.
  WriteFirst, ///< Every iteration's first access was a write (no iteration
              ///< reads the carried-in value).
};

const char *valueClassKindName(ValueClassKind K);

/// A dependence + value profile (see file comment).
class DepProfile {
public:
  /// Bumped whenever the serialized schema changes; readers reject other
  /// versions loudly rather than misinterpreting the data.
  /// v2: body-hash staleness guard, accessed-instruction sets, per-scalar
  /// value observations, speculation history.
  static constexpr unsigned Version = 2;

  struct ValueObs {
    ValueClassKind Kind = ValueClassKind::Varying;
    bool IsFloat = false;
    int64_t StrideI = 0; ///< Strided, int scalars.
    double StrideF = 0.0; ///< Strided, float scalars.
    uint64_t Writes = 0;  ///< Dynamic writes observed (all invocations).
  };

  struct LoopProfile {
    uint64_t Invocations = 0;
    uint64_t Iterations = 0;
    /// Speculation history (fed back by `pscc --spec-feedback`): attempts
    /// = speculative invocations, misspecs = rollbacks. Plan selection
    /// rejects speculation whose historical misspeculation rate is high.
    uint64_t SpecAttempts = 0;
    uint64_t SpecMisspecs = 0;
    /// Manifested cross-iteration pairs, as (src, dst) FunctionAnalysis
    /// instruction indices: src executed in the earlier iteration.
    std::set<std::pair<unsigned, unsigned>> Manifested;
    /// Instruction indices that performed any memory access inside the
    /// loop during training. An access instruction absent here is *cold*.
    std::set<unsigned> Accessed;
    /// Per-scalar value observations, keyed by storage name (global name,
    /// or alloca name within this function).
    std::map<std::string, ValueObs> Values;
  };

  struct FunctionProfile {
    /// Staleness guards: instruction count and canonical body hash when
    /// profiled. Indices are only meaningful against the same body.
    unsigned NumInstructions = 0;
    uint64_t BodyHash = 0;
    /// Keyed by loop header block index.
    std::map<unsigned, LoopProfile> Loops;
  };

  std::map<std::string, FunctionProfile> Functions;

  bool empty() const { return Functions.empty(); }

  /// True when loop (Fn, Header) was trained and the profile is not stale
  /// for the function (\p NumInstructions and \p BodyHash both match the
  /// recorded guards).
  bool observed(const std::string &Fn, unsigned NumInstructions,
                uint64_t BodyHash, unsigned Header) const;

  /// True when the (SrcIdx → DstIdx) dependence carried at (Fn, Header)
  /// manifested in training.
  bool manifested(const std::string &Fn, unsigned Header, unsigned SrcIdx,
                  unsigned DstIdx) const;

  /// True when instruction \p Idx performed a memory access inside loop
  /// (Fn, Header) during training. Callers must gate on observed() first.
  bool accessed(const std::string &Fn, unsigned Header, unsigned Idx) const;

  /// Value observation for scalar \p Var at (Fn, Header); null if none.
  /// Callers must gate on observed() first.
  const ValueObs *valueObs(const std::string &Fn, unsigned Header,
                           const std::string &Var) const;

  /// Speculation history of (Fn, Header): attempts and misspeculations.
  void specHistory(const std::string &Fn, unsigned Header, uint64_t &Attempts,
                   uint64_t &Misspecs) const;

  void recordLoop(const std::string &Fn, unsigned NumInstructions,
                  uint64_t BodyHash, unsigned Header, uint64_t Invocations,
                  uint64_t Iterations);
  void recordManifest(const std::string &Fn, unsigned Header, unsigned SrcIdx,
                      unsigned DstIdx);
  void recordAccessed(const std::string &Fn, unsigned Header, unsigned Idx);
  /// Bulk form: unions a whole invocation's accessed-index set with one
  /// lookup (the profiler buffers per loop frame and flushes on close).
  void recordAccessedSet(const std::string &Fn, unsigned Header,
                         const std::set<unsigned> &Idxs);
  /// Meet-joins \p Obs into the recorded class for (Fn, Header, Var):
  /// matching kinds (and strides) keep the class, anything else degrades to
  /// Varying — so multi-invocation and multi-input training stay sound.
  void recordValueObs(const std::string &Fn, unsigned Header,
                      const std::string &Var, const ValueObs &Obs);
  /// Adds a speculative-execution outcome (attempts, misspeculations) for
  /// (Fn, Header) — `pscc --spec-feedback` after a parallel run.
  void recordSpecOutcome(const std::string &Fn, unsigned Header,
                         uint64_t Attempts, uint64_t Misspecs);

  /// Merges \p O into this profile: union of manifested pairs and accessed
  /// sets, summed counters, value classes meet-joined. A function whose
  /// staleness guards disagree between the two profiles is stale on one
  /// side and is dropped entirely (the conservative choice: no data, no
  /// speculation) — and stays dropped across subsequent merges into this
  /// object, so a chain of merges is order-independent. The tombstones are
  /// merge-session state, not part of the serialized document.
  void merge(const DepProfile &O);

  std::string toJson() const;

  /// Parses a serialized profile; on failure returns false with a message
  /// in \p Err. Rejects unknown formats and versions (including v1
  /// documents, whose loops lack the staleness hash and value data).
  static bool parseJson(const std::string &Text, DepProfile &Out,
                        std::string &Err);

  bool saveFile(const std::string &Path, std::string &Err) const;
  static bool loadFile(const std::string &Path, DepProfile &Out,
                       std::string &Err);

private:
  /// Functions dropped by merge() for version conflicts (see merge()).
  std::set<std::string> Conflicted;
};

} // namespace psc

#endif // PSPDG_PROFILING_DEPPROFILE_H
