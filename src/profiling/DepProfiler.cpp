//===- DepProfiler.cpp ----------------------------------------*- C++ -*-===//

#include "profiling/DepProfiler.h"

#include "analysis/ValueSpec.h"
#include "pspdg/Fingerprint.h"

using namespace psc;

uint64_t DepProfiler::bodyHashOf(const Function &F) {
  auto It = BodyHashes.find(&F);
  if (It != BodyHashes.end())
    return It->second;
  uint64_t H = functionBodyHash(F);
  BodyHashes[&F] = H;
  return H;
}

const Value *DepProfiler::scalarStorageOf(const Instruction &I) {
  auto It = ScalarStorage.find(&I);
  if (It != ScalarStorage.end())
    return It->second;
  // Direct (GEP-free) accesses of a named scalar object: the only shape
  // PSC scalars take, and the only shape the value-speculation runtime can
  // privatize and predict.
  const Value *Ptr = nullptr;
  if (const auto *LI = dyn_cast<LoadInst>(&I))
    Ptr = LI->getPointer();
  else if (const auto *SI = dyn_cast<StoreInst>(&I))
    Ptr = SI->getPointer();
  const Value *Storage = nullptr;
  if (Ptr) {
    if (const auto *GV = dyn_cast<GlobalVariable>(Ptr)) {
      if (!isa<ArrayType>(GV->getObjectType()) && !GV->getName().empty())
        Storage = GV;
    } else if (const auto *AI = dyn_cast<AllocaInst>(Ptr)) {
      if (!isa<ArrayType>(AI->getAllocatedType()) && !AI->getName().empty())
        Storage = AI;
    }
  }
  ScalarStorage[&I] = Storage;
  return Storage;
}

void DepProfiler::onEnterFunction(const Function &F) {
  Activation A;
  A.F = &F;
  A.FA = &MA.of(F);
  Activations.push_back(std::move(A));
}

void DepProfiler::finalizeWritingIter(ValTrack &T) {
  if (T.CurIter < 0)
    return;
  // Stride between the just-completed writing iteration's final value and
  // its predecessor's (the entry value before iteration 0). Gaps — a
  // writing iteration that does not immediately follow the previous one —
  // break the write-every-iteration requirement of Strided.
  bool HaveAnchor = true;
  int64_t DI = 0;
  double DF = 0.0;
  if (T.PrevIter >= 0) {
    if (T.CurIter != T.PrevIter + 1)
      T.EveryIterWrote = false;
    DI = T.CurI - T.PrevI;
    DF = T.CurF - T.PrevF;
  } else {
    if (T.CurIter != 0)
      T.EveryIterWrote = false;
    if (T.EntryKnown) {
      DI = T.CurI - T.EntryI;
      DF = T.CurF - T.EntryF;
    } else {
      HaveAnchor = false;
    }
  }
  if (!HaveAnchor) {
    T.StridedOK = false;
  } else if (!T.StrideSet) {
    T.StrideI = DI;
    T.StrideF = DF;
    T.StrideSet = true;
  } else if (T.IsFloat ? (DF != T.StrideF) : (DI != T.StrideI)) {
    T.StridedOK = false;
  }
  T.PrevIter = T.CurIter;
  T.PrevI = T.CurI;
  T.PrevF = T.CurF;
  T.CurIter = -1;
}

void DepProfiler::closeFrame(Activation &A, LoopFrame &Fr) {
  // Iter counts header arrivals; the final arrival (the failing exit
  // check) is part of the invocation, so executed iterations = Iter.
  const std::string &Fn = A.F->getName();
  unsigned Header = Fr.L->getHeader();
  Profile.recordLoop(Fn,
                     static_cast<unsigned>(A.FA->instructions().size()),
                     bodyHashOf(*A.F), Header, /*Invocations=*/1,
                     /*Iterations=*/static_cast<uint64_t>(Fr.Iter));
  Profile.recordAccessedSet(Fn, Header, Fr.Accessed);

  for (auto &[Storage, T] : Fr.Scalars) {
    if (T.Writes == 0)
      continue;
    finalizeWritingIter(T);
    if (T.PrevIter != Fr.Iter - 1)
      T.EveryIterWrote = false; // the final iteration did not write

    DepProfile::ValueObs Obs;
    Obs.IsFloat = T.IsFloat;
    Obs.Writes = T.Writes;
    if (T.EntryKnown && T.InvariantOK) {
      Obs.Kind = ValueClassKind::Invariant;
    } else if (T.EntryKnown && T.StridedOK && T.StrideSet &&
               T.EveryIterWrote) {
      Obs.Kind = ValueClassKind::Strided;
      Obs.StrideI = T.StrideI;
      Obs.StrideF = T.StrideF;
    } else if (T.WriteFirstOK) {
      Obs.Kind = ValueClassKind::WriteFirst;
    } else {
      Obs.Kind = ValueClassKind::Varying;
    }
    Profile.recordValueObs(Fn, Header, valueStorageKey(Storage), Obs);
  }
}

void DepProfiler::onExitFunction(const Function &) {
  if (Activations.empty())
    return;
  Activation &A = Activations.back();
  while (!A.Stack.empty()) {
    closeFrame(A, A.Stack.back());
    A.Stack.pop_back();
  }
  Activations.pop_back();
}

void DepProfiler::onBlockTransfer(const Function &, const BasicBlock *,
                                  const BasicBlock *To) {
  if (Activations.empty())
    return;
  Activation &A = Activations.back();
  const LoopInfo &LI = A.FA->loopInfo();
  unsigned ToIdx = To->getIndex();
  const Loop *ToLoop = LI.getLoopFor(ToIdx);

  // Pop loops that do not contain the destination (loop exits).
  while (!A.Stack.empty() &&
         (!ToLoop || !A.Stack.back().L->contains(ToIdx))) {
    closeFrame(A, A.Stack.back());
    A.Stack.pop_back();
  }

  // A transfer to the header of a loop already on the stack is a back
  // edge: one more iteration.
  if (!A.Stack.empty() && A.Stack.back().L->getHeader() == ToIdx)
    ++A.Stack.back().Iter;

  // Push newly-entered loops (outermost first).
  std::vector<const Loop *> Chain;
  for (const Loop *L = ToLoop; L; L = L->getParent()) {
    bool OnStack = false;
    for (const LoopFrame &Fr : A.Stack)
      if (Fr.L == L)
        OnStack = true;
    if (!OnStack)
      Chain.push_back(L);
  }
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
    LoopFrame Fr;
    Fr.L = *It;
    A.Stack.push_back(std::move(Fr));
  }
}

void DepProfiler::onMemAccess(const Instruction &I, const MemObject &O,
                              uint64_t Offset, bool IsWrite) {
  if (Activations.empty())
    return;
  Activation &A = Activations.back();
  if (A.Stack.empty())
    return;
  unsigned Idx = A.FA->indexOf(&I);
  const std::string &Fn = A.F->getName();
  LocKey Key{&O, Offset};
  const Value *Scalar = scalarStorageOf(I);

  for (LoopFrame &Fr : A.Stack) {
    Fr.Accessed.insert(Idx);

    LocHist &H = Fr.Table[Key];
    unsigned Header = Fr.L->getHeader();
    // The validator's predicate, incrementally: a prior instruction whose
    // FIRST access at this location ran in an earlier iteration conflicts
    // with this access if either side writes.
    for (const auto &[SrcInstr, SrcH] : H.ByInstr) {
      if (SrcH.FirstWrite >= 0 && SrcH.FirstWrite < Fr.Iter)
        Profile.recordManifest(Fn, Header, SrcInstr, Idx); // RAW / WAW
      else if (IsWrite && SrcH.FirstRead >= 0 && SrcH.FirstRead < Fr.Iter)
        Profile.recordManifest(Fn, Header, SrcInstr, Idx); // WAR
    }
    AccessHist &Mine = H.ByInstr[Idx];
    if (IsWrite) {
      if (Mine.FirstWrite < 0)
        Mine.FirstWrite = Fr.Iter;
    } else if (Mine.FirstRead < 0) {
      Mine.FirstRead = Fr.Iter;
    }

    // Value observation: direct scalar accesses only. The observer fires
    // after a store commits (engine contract), so O holds the value just
    // written; loads leave memory untouched, so O holds the pre-access
    // value — the entry-value capture relies on both.
    if (!Scalar)
      continue;
    ValTrack &T = Fr.Scalars[Scalar];
    T.IsFloat = O.IsFloat;
    int64_t VI = O.IsFloat ? 0 : O.I[Offset];
    double VF = O.IsFloat ? O.F[Offset] : 0.0;
    if (T.FirstAccessIter != Fr.Iter) {
      T.FirstAccessIter = Fr.Iter;
      if (!IsWrite)
        T.WriteFirstOK = false; // this iteration reads the carried value
    }
    if (IsWrite) {
      ++T.Writes;
      if (!T.EntryKnown)
        T.InvariantOK = false; // no anchor to compare against
      else if (T.IsFloat ? (VF != T.EntryF) : (VI != T.EntryI))
        T.InvariantOK = false;
      if (T.CurIter != Fr.Iter) {
        finalizeWritingIter(T);
        T.CurIter = Fr.Iter;
      }
      T.CurI = VI;
      T.CurF = VF;
    } else if (!T.EntryKnown && T.Writes == 0) {
      T.EntryKnown = true;
      T.EntryI = VI;
      T.EntryF = VF;
    }
  }
}

DepProfile DepProfiler::takeProfile() {
  while (!Activations.empty()) {
    Activation &A = Activations.back();
    while (!A.Stack.empty()) {
      closeFrame(A, A.Stack.back());
      A.Stack.pop_back();
    }
    Activations.pop_back();
  }
  return std::move(Profile);
}
