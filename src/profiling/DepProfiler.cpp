//===- DepProfiler.cpp ----------------------------------------*- C++ -*-===//

#include "profiling/DepProfiler.h"

using namespace psc;

void DepProfiler::onEnterFunction(const Function &F) {
  Activation A;
  A.F = &F;
  A.FA = &MA.of(F);
  Activations.push_back(std::move(A));
}

void DepProfiler::closeFrame(Activation &A, LoopFrame &Fr) {
  // Iter counts header arrivals; the final arrival (the failing exit
  // check) is part of the invocation, so executed iterations = Iter.
  Profile.recordLoop(A.F->getName(),
                     static_cast<unsigned>(A.FA->instructions().size()),
                     Fr.L->getHeader(), /*Invocations=*/1,
                     /*Iterations=*/static_cast<uint64_t>(Fr.Iter));
}

void DepProfiler::onExitFunction(const Function &) {
  if (Activations.empty())
    return;
  Activation &A = Activations.back();
  while (!A.Stack.empty()) {
    closeFrame(A, A.Stack.back());
    A.Stack.pop_back();
  }
  Activations.pop_back();
}

void DepProfiler::onBlockTransfer(const Function &, const BasicBlock *,
                                  const BasicBlock *To) {
  if (Activations.empty())
    return;
  Activation &A = Activations.back();
  const LoopInfo &LI = A.FA->loopInfo();
  unsigned ToIdx = To->getIndex();
  const Loop *ToLoop = LI.getLoopFor(ToIdx);

  // Pop loops that do not contain the destination (loop exits).
  while (!A.Stack.empty() &&
         (!ToLoop || !A.Stack.back().L->contains(ToIdx))) {
    closeFrame(A, A.Stack.back());
    A.Stack.pop_back();
  }

  // A transfer to the header of a loop already on the stack is a back
  // edge: one more iteration.
  if (!A.Stack.empty() && A.Stack.back().L->getHeader() == ToIdx)
    ++A.Stack.back().Iter;

  // Push newly-entered loops (outermost first).
  std::vector<const Loop *> Chain;
  for (const Loop *L = ToLoop; L; L = L->getParent()) {
    bool OnStack = false;
    for (const LoopFrame &Fr : A.Stack)
      if (Fr.L == L)
        OnStack = true;
    if (!OnStack)
      Chain.push_back(L);
  }
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
    LoopFrame Fr;
    Fr.L = *It;
    A.Stack.push_back(std::move(Fr));
  }
}

void DepProfiler::onMemAccess(const Instruction &I, const MemObject &O,
                              uint64_t Offset, bool IsWrite) {
  if (Activations.empty())
    return;
  Activation &A = Activations.back();
  if (A.Stack.empty())
    return;
  unsigned Idx = A.FA->indexOf(&I);
  const std::string &Fn = A.F->getName();
  LocKey Key{&O, Offset};

  for (LoopFrame &Fr : A.Stack) {
    LocHist &H = Fr.Table[Key];
    unsigned Header = Fr.L->getHeader();
    // The validator's predicate, incrementally: a prior instruction whose
    // FIRST access at this location ran in an earlier iteration conflicts
    // with this access if either side writes.
    for (const auto &[SrcInstr, SrcH] : H.ByInstr) {
      if (SrcH.FirstWrite >= 0 && SrcH.FirstWrite < Fr.Iter)
        Profile.recordManifest(Fn, Header, SrcInstr, Idx); // RAW / WAW
      else if (IsWrite && SrcH.FirstRead >= 0 && SrcH.FirstRead < Fr.Iter)
        Profile.recordManifest(Fn, Header, SrcInstr, Idx); // WAR
    }
    AccessHist &Mine = H.ByInstr[Idx];
    if (IsWrite) {
      if (Mine.FirstWrite < 0)
        Mine.FirstWrite = Fr.Iter;
    } else if (Mine.FirstRead < 0) {
      Mine.FirstRead = Fr.Iter;
    }
  }
}

DepProfile DepProfiler::takeProfile() {
  while (!Activations.empty()) {
    Activation &A = Activations.back();
    while (!A.Stack.empty()) {
      closeFrame(A, A.Stack.back());
      A.Stack.pop_back();
    }
    Activations.pop_back();
  }
  return std::move(Profile);
}
