//===- DepProfile.cpp -----------------------------------------*- C++ -*-===//
///
/// Profile queries, merging, and the JSON serialization. The parser is a
/// minimal recursive-descent JSON reader covering exactly what the schema
/// needs (objects, arrays, strings, unsigned integers); anything else in a
/// profile file is a loud parse error, never a silent skip.
///
//===----------------------------------------------------------------------===//

#include "profiling/DepProfile.h"

#include <fstream>
#include <sstream>

using namespace psc;

//===----------------------------------------------------------------------===//
// Queries and recording
//===----------------------------------------------------------------------===//

bool DepProfile::observed(const std::string &Fn, unsigned NumInstructions,
                          unsigned Header) const {
  auto FIt = Functions.find(Fn);
  if (FIt == Functions.end())
    return false;
  if (FIt->second.NumInstructions != NumInstructions)
    return false; // stale profile: never a license to speculate
  return FIt->second.Loops.count(Header) != 0;
}

bool DepProfile::manifested(const std::string &Fn, unsigned Header,
                            unsigned SrcIdx, unsigned DstIdx) const {
  auto FIt = Functions.find(Fn);
  if (FIt == Functions.end())
    return false;
  auto LIt = FIt->second.Loops.find(Header);
  if (LIt == FIt->second.Loops.end())
    return false;
  return LIt->second.Manifested.count({SrcIdx, DstIdx}) != 0;
}

void DepProfile::recordLoop(const std::string &Fn, unsigned NumInstructions,
                            unsigned Header, uint64_t Invocations,
                            uint64_t Iterations) {
  FunctionProfile &F = Functions[Fn];
  F.NumInstructions = NumInstructions;
  LoopProfile &L = F.Loops[Header];
  L.Invocations += Invocations;
  L.Iterations += Iterations;
}

void DepProfile::recordManifest(const std::string &Fn, unsigned Header,
                                unsigned SrcIdx, unsigned DstIdx) {
  Functions[Fn].Loops[Header].Manifested.insert({SrcIdx, DstIdx});
}

void DepProfile::merge(const DepProfile &O) {
  for (const auto &[Name, OF] : O.Functions) {
    if (Conflicted.count(Name))
      continue; // dropped by an earlier merge; stays dropped
    auto It = Functions.find(Name);
    if (It == Functions.end()) {
      Functions[Name] = OF;
      continue;
    }
    FunctionProfile &F = It->second;
    if (F.NumInstructions != OF.NumInstructions) {
      // The two profiles trained different versions of this function:
      // instruction indices are incomparable, so neither side's data is
      // usable (no data, no speculation). The tombstone keeps a later
      // same-version input from resurrecting the function with only its
      // own partial training data — a merge must be order-independent.
      Functions.erase(It);
      Conflicted.insert(Name);
      continue;
    }
    for (const auto &[Header, OL] : OF.Loops) {
      LoopProfile &L = F.Loops[Header];
      L.Invocations += OL.Invocations;
      L.Iterations += OL.Iterations;
      L.Manifested.insert(OL.Manifested.begin(), OL.Manifested.end());
    }
  }
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string DepProfile::toJson() const {
  std::ostringstream OS;
  OS << "{\n  \"format\": \"psc-dep-profile\",\n  \"version\": " << Version
     << ",\n  \"functions\": [";
  bool FirstF = true;
  for (const auto &[Name, F] : Functions) {
    OS << (FirstF ? "\n" : ",\n");
    FirstF = false;
    OS << "    {\"name\": \"" << Name
       << "\", \"instructions\": " << F.NumInstructions << ", \"loops\": [";
    bool FirstL = true;
    for (const auto &[Header, L] : F.Loops) {
      OS << (FirstL ? "\n" : ",\n");
      FirstL = false;
      OS << "      {\"header\": " << Header
         << ", \"invocations\": " << L.Invocations
         << ", \"iterations\": " << L.Iterations << ", \"manifested\": [";
      bool FirstP = true;
      for (const auto &[Src, Dst] : L.Manifested) {
        OS << (FirstP ? "" : ", ") << "[" << Src << "," << Dst << "]";
        FirstP = false;
      }
      OS << "]}";
    }
    OS << (FirstL ? "]}" : "\n    ]}");
  }
  OS << (FirstF ? "]\n}\n" : "\n  ]\n}\n");
  return OS.str();
}

namespace {

/// Minimal JSON reader for the profile schema: objects, arrays, strings,
/// and unsigned integers.
class JsonReader {
public:
  explicit JsonReader(const std::string &Text) : Text(Text) {}

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg + " at offset " + std::to_string(Pos);
    return false;
  }
  const std::string &error() const { return Err; }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(std::string("expected '") + C + "'");
    ++Pos;
    return true;
  }

  /// True (and consumes) when the next non-space char is \p C.
  bool peekConsume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool string(std::string &Out) {
    if (!consume('"'))
      return false;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      if (Text[Pos] == '\\')
        return fail("escapes are not used by the profile schema");
      Out.push_back(Text[Pos++]);
    }
    return consume('"');
  }

  bool number(uint64_t &Out) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return fail("expected a non-negative integer");
    Out = 0;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
      uint64_t Digit = static_cast<uint64_t>(Text[Pos++] - '0');
      if (Out > (UINT64_MAX - Digit) / 10)
        return fail("integer overflows uint64");
      Out = Out * 10 + Digit;
    }
    return true;
  }

  bool key(const char *Expected) {
    std::string K;
    if (!string(K))
      return false;
    if (K != Expected)
      return fail(std::string("expected key \"") + Expected + "\", got \"" +
                  K + "\"");
    return consume(':');
  }

  bool atEnd() {
    skipWs();
    return Pos >= Text.size();
  }

private:
  const std::string &Text;
  size_t Pos = 0;
  std::string Err;
};

} // namespace

bool DepProfile::parseJson(const std::string &Text, DepProfile &Out,
                           std::string &Err) {
  Out.Functions.clear();
  JsonReader R(Text);
  auto Fail = [&](bool) {
    Err = R.error().empty() ? "malformed profile" : R.error();
    return false;
  };

  if (!R.consume('{'))
    return Fail(false);
  std::string Format;
  if (!R.key("format") || !R.string(Format) || !R.consume(','))
    return Fail(false);
  if (Format != "psc-dep-profile") {
    Err = "not a psc-dep-profile document (format \"" + Format + "\")";
    return false;
  }
  uint64_t Ver = 0;
  if (!R.key("version") || !R.number(Ver) || !R.consume(','))
    return Fail(false);
  if (Ver != Version) {
    Err = "unsupported profile version " + std::to_string(Ver) +
          " (expected " + std::to_string(Version) + ")";
    return false;
  }
  if (!R.key("functions") || !R.consume('['))
    return Fail(false);
  if (!R.peekConsume(']')) {
    do {
      if (!R.consume('{'))
        return Fail(false);
      std::string Name;
      uint64_t NumInsts = 0;
      if (!R.key("name") || !R.string(Name) || !R.consume(',') ||
          !R.key("instructions") || !R.number(NumInsts) || !R.consume(',') ||
          !R.key("loops") || !R.consume('['))
        return Fail(false);
      if (Out.Functions.count(Name)) {
        // A duplicate entry would let one side's loop data pass the other
        // side's staleness guard; merge() handles cross-document unions.
        Err = "duplicate function \"" + Name + "\" in profile document";
        return false;
      }
      FunctionProfile &F = Out.Functions[Name];
      F.NumInstructions = static_cast<unsigned>(NumInsts);
      if (!R.peekConsume(']')) {
        do {
          uint64_t Header = 0, Invocations = 0, Iterations = 0;
          if (!R.consume('{') || !R.key("header") || !R.number(Header) ||
              !R.consume(',') || !R.key("invocations") ||
              !R.number(Invocations) || !R.consume(',') ||
              !R.key("iterations") || !R.number(Iterations) ||
              !R.consume(',') || !R.key("manifested") || !R.consume('['))
            return Fail(false);
          LoopProfile &L = F.Loops[static_cast<unsigned>(Header)];
          L.Invocations += Invocations;
          L.Iterations += Iterations;
          if (!R.peekConsume(']')) {
            do {
              uint64_t Src = 0, Dst = 0;
              if (!R.consume('[') || !R.number(Src) || !R.consume(',') ||
                  !R.number(Dst) || !R.consume(']'))
                return Fail(false);
              L.Manifested.insert({static_cast<unsigned>(Src),
                                   static_cast<unsigned>(Dst)});
            } while (R.peekConsume(','));
            if (!R.consume(']'))
              return Fail(false);
          }
          if (!R.consume('}'))
            return Fail(false);
        } while (R.peekConsume(','));
        if (!R.consume(']'))
          return Fail(false);
      }
      if (!R.consume('}'))
        return Fail(false);
    } while (R.peekConsume(','));
    if (!R.consume(']'))
      return Fail(false);
  }
  if (!R.consume('}'))
    return Fail(false);
  if (!R.atEnd()) {
    Err = "trailing content after the profile document";
    return false;
  }
  return true;
}

bool DepProfile::saveFile(const std::string &Path, std::string &Err) const {
  std::ofstream Out(Path);
  if (!Out) {
    Err = "cannot write '" + Path + "'";
    return false;
  }
  Out << toJson();
  if (!Out) {
    Err = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

bool DepProfile::loadFile(const std::string &Path, DepProfile &Out,
                          std::string &Err) {
  std::ifstream In(Path);
  if (!In) {
    Err = "cannot open '" + Path + "'";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return parseJson(SS.str(), Out, Err);
}
