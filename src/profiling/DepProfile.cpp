//===- DepProfile.cpp -----------------------------------------*- C++ -*-===//
///
/// Profile queries, merging, and the JSON serialization. The parser is a
/// minimal recursive-descent JSON reader covering exactly what the schema
/// needs (objects, arrays, strings, integers); anything else in a profile
/// file is a loud parse error, never a silent skip. Float strides are
/// serialized as their exact IEEE-754 bit patterns (decimal uint64), so a
/// round trip is bit-preserving without a decimal-float grammar.
///
//===----------------------------------------------------------------------===//

#include "profiling/DepProfile.h"

#include <cstring>
#include <fstream>
#include <sstream>

using namespace psc;

const char *psc::valueClassKindName(ValueClassKind K) {
  switch (K) {
  case ValueClassKind::Varying:
    return "varying";
  case ValueClassKind::Invariant:
    return "invariant";
  case ValueClassKind::Strided:
    return "strided";
  case ValueClassKind::WriteFirst:
    return "writefirst";
  }
  return "?";
}

namespace {

uint64_t bitsOfDouble(double D) {
  uint64_t U = 0;
  static_assert(sizeof(U) == sizeof(D), "double is not 64-bit");
  std::memcpy(&U, &D, sizeof(U));
  return U;
}

double doubleOfBits(uint64_t U) {
  double D = 0.0;
  std::memcpy(&D, &U, sizeof(D));
  return D;
}

bool kindFromName(const std::string &S, ValueClassKind &K) {
  for (ValueClassKind C :
       {ValueClassKind::Varying, ValueClassKind::Invariant,
        ValueClassKind::Strided, ValueClassKind::WriteFirst})
    if (S == valueClassKindName(C)) {
      K = C;
      return true;
    }
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Queries and recording
//===----------------------------------------------------------------------===//

bool DepProfile::observed(const std::string &Fn, unsigned NumInstructions,
                          uint64_t BodyHash, unsigned Header) const {
  auto FIt = Functions.find(Fn);
  if (FIt == Functions.end())
    return false;
  // Stale profile: never a license to speculate. The body hash catches
  // same-size edits the instruction count alone would miss.
  if (FIt->second.NumInstructions != NumInstructions ||
      FIt->second.BodyHash != BodyHash)
    return false;
  return FIt->second.Loops.count(Header) != 0;
}

bool DepProfile::manifested(const std::string &Fn, unsigned Header,
                            unsigned SrcIdx, unsigned DstIdx) const {
  auto FIt = Functions.find(Fn);
  if (FIt == Functions.end())
    return false;
  auto LIt = FIt->second.Loops.find(Header);
  if (LIt == FIt->second.Loops.end())
    return false;
  return LIt->second.Manifested.count({SrcIdx, DstIdx}) != 0;
}

bool DepProfile::accessed(const std::string &Fn, unsigned Header,
                          unsigned Idx) const {
  auto FIt = Functions.find(Fn);
  if (FIt == Functions.end())
    return false;
  auto LIt = FIt->second.Loops.find(Header);
  if (LIt == FIt->second.Loops.end())
    return false;
  return LIt->second.Accessed.count(Idx) != 0;
}

const DepProfile::ValueObs *DepProfile::valueObs(const std::string &Fn,
                                                 unsigned Header,
                                                 const std::string &Var) const {
  auto FIt = Functions.find(Fn);
  if (FIt == Functions.end())
    return nullptr;
  auto LIt = FIt->second.Loops.find(Header);
  if (LIt == FIt->second.Loops.end())
    return nullptr;
  auto VIt = LIt->second.Values.find(Var);
  return VIt == LIt->second.Values.end() ? nullptr : &VIt->second;
}

void DepProfile::specHistory(const std::string &Fn, unsigned Header,
                             uint64_t &Attempts, uint64_t &Misspecs) const {
  Attempts = 0;
  Misspecs = 0;
  auto FIt = Functions.find(Fn);
  if (FIt == Functions.end())
    return;
  auto LIt = FIt->second.Loops.find(Header);
  if (LIt == FIt->second.Loops.end())
    return;
  Attempts = LIt->second.SpecAttempts;
  Misspecs = LIt->second.SpecMisspecs;
}

void DepProfile::recordLoop(const std::string &Fn, unsigned NumInstructions,
                            uint64_t BodyHash, unsigned Header,
                            uint64_t Invocations, uint64_t Iterations) {
  FunctionProfile &F = Functions[Fn];
  F.NumInstructions = NumInstructions;
  F.BodyHash = BodyHash;
  LoopProfile &L = F.Loops[Header];
  L.Invocations += Invocations;
  L.Iterations += Iterations;
}

void DepProfile::recordManifest(const std::string &Fn, unsigned Header,
                                unsigned SrcIdx, unsigned DstIdx) {
  Functions[Fn].Loops[Header].Manifested.insert({SrcIdx, DstIdx});
}

void DepProfile::recordAccessed(const std::string &Fn, unsigned Header,
                                unsigned Idx) {
  Functions[Fn].Loops[Header].Accessed.insert(Idx);
}

void DepProfile::recordAccessedSet(const std::string &Fn, unsigned Header,
                                   const std::set<unsigned> &Idxs) {
  Functions[Fn].Loops[Header].Accessed.insert(Idxs.begin(), Idxs.end());
}

namespace {

/// Meet of two value observations over the classification lattice
/// (Varying is bottom): matching kinds keep the class, mismatches — and
/// mismatched strides or element types — degrade to Varying.
DepProfile::ValueObs meetObs(const DepProfile::ValueObs &A,
                             const DepProfile::ValueObs &B) {
  DepProfile::ValueObs Out = A;
  Out.Writes = A.Writes + B.Writes;
  if (A.Kind != B.Kind || A.IsFloat != B.IsFloat) {
    Out.Kind = ValueClassKind::Varying;
    return Out;
  }
  if (A.Kind == ValueClassKind::Strided &&
      (A.StrideI != B.StrideI ||
       bitsOfDouble(A.StrideF) != bitsOfDouble(B.StrideF)))
    Out.Kind = ValueClassKind::Varying;
  return Out;
}

} // namespace

void DepProfile::recordValueObs(const std::string &Fn, unsigned Header,
                                const std::string &Var, const ValueObs &Obs) {
  std::map<std::string, ValueObs> &Values = Functions[Fn].Loops[Header].Values;
  auto It = Values.find(Var);
  if (It == Values.end())
    Values[Var] = Obs;
  else
    It->second = meetObs(It->second, Obs);
}

void DepProfile::recordSpecOutcome(const std::string &Fn, unsigned Header,
                                   uint64_t Attempts, uint64_t Misspecs) {
  LoopProfile &L = Functions[Fn].Loops[Header];
  L.SpecAttempts += Attempts;
  L.SpecMisspecs += Misspecs;
}

void DepProfile::merge(const DepProfile &O) {
  for (const auto &[Name, OF] : O.Functions) {
    if (Conflicted.count(Name))
      continue; // dropped by an earlier merge; stays dropped
    auto It = Functions.find(Name);
    if (It == Functions.end()) {
      Functions[Name] = OF;
      continue;
    }
    FunctionProfile &F = It->second;
    if (F.NumInstructions != OF.NumInstructions ||
        F.BodyHash != OF.BodyHash) {
      // The two profiles trained different versions of this function:
      // instruction indices are incomparable, so neither side's data is
      // usable (no data, no speculation). The tombstone keeps a later
      // same-version input from resurrecting the function with only its
      // own partial training data — a merge must be order-independent.
      Functions.erase(It);
      Conflicted.insert(Name);
      continue;
    }
    for (const auto &[Header, OL] : OF.Loops) {
      LoopProfile &L = F.Loops[Header];
      L.Invocations += OL.Invocations;
      L.Iterations += OL.Iterations;
      L.SpecAttempts += OL.SpecAttempts;
      L.SpecMisspecs += OL.SpecMisspecs;
      L.Manifested.insert(OL.Manifested.begin(), OL.Manifested.end());
      L.Accessed.insert(OL.Accessed.begin(), OL.Accessed.end());
      for (const auto &[Var, Obs] : OL.Values) {
        auto VIt = L.Values.find(Var);
        if (VIt == L.Values.end())
          L.Values[Var] = Obs;
        else
          VIt->second = meetObs(VIt->second, Obs);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string DepProfile::toJson() const {
  std::ostringstream OS;
  OS << "{\n  \"format\": \"psc-dep-profile\",\n  \"version\": " << Version
     << ",\n  \"functions\": [";
  bool FirstF = true;
  for (const auto &[Name, F] : Functions) {
    OS << (FirstF ? "\n" : ",\n");
    FirstF = false;
    OS << "    {\"name\": \"" << Name
       << "\", \"instructions\": " << F.NumInstructions
       << ", \"bodyhash\": " << F.BodyHash << ", \"loops\": [";
    bool FirstL = true;
    for (const auto &[Header, L] : F.Loops) {
      OS << (FirstL ? "\n" : ",\n");
      FirstL = false;
      OS << "      {\"header\": " << Header
         << ", \"invocations\": " << L.Invocations
         << ", \"iterations\": " << L.Iterations
         << ", \"spec_attempts\": " << L.SpecAttempts
         << ", \"spec_misspecs\": " << L.SpecMisspecs << ",\n"
         << "       \"accessed\": [";
      bool FirstA = true;
      for (unsigned A : L.Accessed) {
        OS << (FirstA ? "" : ", ") << A;
        FirstA = false;
      }
      OS << "],\n       \"values\": [";
      bool FirstV = true;
      for (const auto &[Var, Obs] : L.Values) {
        OS << (FirstV ? "" : ", ");
        FirstV = false;
        OS << "{\"var\": \"" << Var << "\", \"kind\": \""
           << valueClassKindName(Obs.Kind)
           << "\", \"float\": " << (Obs.IsFloat ? 1 : 0)
           << ", \"stride\": " << Obs.StrideI
           << ", \"fstridebits\": " << bitsOfDouble(Obs.StrideF)
           << ", \"writes\": " << Obs.Writes << "}";
      }
      OS << "],\n       \"manifested\": [";
      bool FirstP = true;
      for (const auto &[Src, Dst] : L.Manifested) {
        OS << (FirstP ? "" : ", ") << "[" << Src << "," << Dst << "]";
        FirstP = false;
      }
      OS << "]}";
    }
    OS << (FirstL ? "]}" : "\n    ]}");
  }
  OS << (FirstF ? "]\n}\n" : "\n  ]\n}\n");
  return OS.str();
}

namespace {

/// Minimal JSON reader for the profile schema: objects, arrays, strings,
/// and (optionally signed) integers.
class JsonReader {
public:
  explicit JsonReader(const std::string &Text) : Text(Text) {}

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg + " at offset " + std::to_string(Pos);
    return false;
  }
  const std::string &error() const { return Err; }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(std::string("expected '") + C + "'");
    ++Pos;
    return true;
  }

  /// True (and consumes) when the next non-space char is \p C.
  bool peekConsume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool string(std::string &Out) {
    if (!consume('"'))
      return false;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      if (Text[Pos] == '\\')
        return fail("escapes are not used by the profile schema");
      Out.push_back(Text[Pos++]);
    }
    return consume('"');
  }

  bool number(uint64_t &Out) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return fail("expected a non-negative integer");
    Out = 0;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
      uint64_t Digit = static_cast<uint64_t>(Text[Pos++] - '0');
      if (Out > (UINT64_MAX - Digit) / 10)
        return fail("integer overflows uint64");
      Out = Out * 10 + Digit;
    }
    return true;
  }

  bool signedNumber(int64_t &Out) {
    skipWs();
    bool Neg = false;
    if (Pos < Text.size() && Text[Pos] == '-') {
      Neg = true;
      ++Pos;
    }
    uint64_t U = 0;
    if (!number(U))
      return false;
    if (U > (Neg ? static_cast<uint64_t>(INT64_MAX) + 1
                 : static_cast<uint64_t>(INT64_MAX)))
      return fail("integer overflows int64");
    // Negate in unsigned space: INT64_MIN (U == 2^63) cannot be produced
    // by negating a signed value without overflow.
    Out = Neg ? static_cast<int64_t>(0u - U) : static_cast<int64_t>(U);
    return true;
  }

  bool key(const char *Expected) {
    std::string K;
    if (!string(K))
      return false;
    if (K != Expected)
      return fail(std::string("expected key \"") + Expected + "\", got \"" +
                  K + "\"");
    return consume(':');
  }

  bool atEnd() {
    skipWs();
    return Pos >= Text.size();
  }

private:
  const std::string &Text;
  size_t Pos = 0;
  std::string Err;
};

} // namespace

bool DepProfile::parseJson(const std::string &Text, DepProfile &Out,
                           std::string &Err) {
  Out.Functions.clear();
  JsonReader R(Text);
  auto Fail = [&](bool) {
    Err = R.error().empty() ? "malformed profile" : R.error();
    return false;
  };

  if (!R.consume('{'))
    return Fail(false);
  std::string Format;
  if (!R.key("format") || !R.string(Format) || !R.consume(','))
    return Fail(false);
  if (Format != "psc-dep-profile") {
    Err = "not a psc-dep-profile document (format \"" + Format + "\")";
    return false;
  }
  uint64_t Ver = 0;
  if (!R.key("version") || !R.number(Ver) || !R.consume(','))
    return Fail(false);
  if (Ver != Version) {
    Err = "unsupported profile version " + std::to_string(Ver) +
          " (expected " + std::to_string(Version) + "; retrain with this "
          "binary's --profile-out)";
    return false;
  }
  if (!R.key("functions") || !R.consume('['))
    return Fail(false);
  if (!R.peekConsume(']')) {
    do {
      if (!R.consume('{'))
        return Fail(false);
      std::string Name;
      uint64_t NumInsts = 0, BodyHash = 0;
      if (!R.key("name") || !R.string(Name) || !R.consume(',') ||
          !R.key("instructions") || !R.number(NumInsts) || !R.consume(',') ||
          !R.key("bodyhash") || !R.number(BodyHash) || !R.consume(',') ||
          !R.key("loops") || !R.consume('['))
        return Fail(false);
      if (Out.Functions.count(Name)) {
        // A duplicate entry would let one side's loop data pass the other
        // side's staleness guard; merge() handles cross-document unions.
        Err = "duplicate function \"" + Name + "\" in profile document";
        return false;
      }
      FunctionProfile &F = Out.Functions[Name];
      F.NumInstructions = static_cast<unsigned>(NumInsts);
      F.BodyHash = BodyHash;
      if (!R.peekConsume(']')) {
        do {
          uint64_t Header = 0, Invocations = 0, Iterations = 0;
          uint64_t Attempts = 0, Misspecs = 0;
          if (!R.consume('{') || !R.key("header") || !R.number(Header) ||
              !R.consume(',') || !R.key("invocations") ||
              !R.number(Invocations) || !R.consume(',') ||
              !R.key("iterations") || !R.number(Iterations) ||
              !R.consume(',') || !R.key("spec_attempts") ||
              !R.number(Attempts) || !R.consume(',') ||
              !R.key("spec_misspecs") || !R.number(Misspecs) ||
              !R.consume(',') || !R.key("accessed") || !R.consume('['))
            return Fail(false);
          LoopProfile &L = F.Loops[static_cast<unsigned>(Header)];
          L.Invocations += Invocations;
          L.Iterations += Iterations;
          L.SpecAttempts += Attempts;
          L.SpecMisspecs += Misspecs;
          if (!R.peekConsume(']')) {
            do {
              uint64_t Idx = 0;
              if (!R.number(Idx))
                return Fail(false);
              L.Accessed.insert(static_cast<unsigned>(Idx));
            } while (R.peekConsume(','));
            if (!R.consume(']'))
              return Fail(false);
          }
          if (!R.consume(',') || !R.key("values") || !R.consume('['))
            return Fail(false);
          if (!R.peekConsume(']')) {
            do {
              std::string Var, KindName;
              uint64_t IsFloat = 0, FBits = 0, Writes = 0;
              int64_t StrideI = 0;
              if (!R.consume('{') || !R.key("var") || !R.string(Var) ||
                  !R.consume(',') || !R.key("kind") || !R.string(KindName) ||
                  !R.consume(',') || !R.key("float") || !R.number(IsFloat) ||
                  !R.consume(',') || !R.key("stride") ||
                  !R.signedNumber(StrideI) || !R.consume(',') ||
                  !R.key("fstridebits") || !R.number(FBits) ||
                  !R.consume(',') || !R.key("writes") || !R.number(Writes) ||
                  !R.consume('}'))
                return Fail(false);
              ValueObs Obs;
              if (!kindFromName(KindName, Obs.Kind)) {
                Err = "unknown value class \"" + KindName + "\"";
                return false;
              }
              Obs.IsFloat = IsFloat != 0;
              Obs.StrideI = StrideI;
              Obs.StrideF = doubleOfBits(FBits);
              Obs.Writes = Writes;
              L.Values[Var] = Obs;
            } while (R.peekConsume(','));
            if (!R.consume(']'))
              return Fail(false);
          }
          if (!R.consume(',') || !R.key("manifested") || !R.consume('['))
            return Fail(false);
          if (!R.peekConsume(']')) {
            do {
              uint64_t Src = 0, Dst = 0;
              if (!R.consume('[') || !R.number(Src) || !R.consume(',') ||
                  !R.number(Dst) || !R.consume(']'))
                return Fail(false);
              L.Manifested.insert({static_cast<unsigned>(Src),
                                   static_cast<unsigned>(Dst)});
            } while (R.peekConsume(','));
            if (!R.consume(']'))
              return Fail(false);
          }
          if (!R.consume('}'))
            return Fail(false);
        } while (R.peekConsume(','));
        if (!R.consume(']'))
          return Fail(false);
      }
      if (!R.consume('}'))
        return Fail(false);
    } while (R.peekConsume(','));
    if (!R.consume(']'))
      return Fail(false);
  }
  if (!R.consume('}'))
    return Fail(false);
  if (!R.atEnd()) {
    Err = "trailing content after the profile document";
    return false;
  }
  return true;
}

bool DepProfile::saveFile(const std::string &Path, std::string &Err) const {
  std::ofstream Out(Path);
  if (!Out) {
    Err = "cannot write '" + Path + "'";
    return false;
  }
  Out << toJson();
  if (!Out) {
    Err = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

bool DepProfile::loadFile(const std::string &Path, DepProfile &Out,
                          std::string &Err) {
  std::ifstream In(Path);
  if (!In) {
    Err = "cannot open '" + Path + "'";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return parseJson(SS.str(), Out, Err);
}
