//===- DepProfiler.h - Dependence-manifestation profiler ---------*- C++ -*-===//
///
/// \file
/// Execution observer that trains a DepProfile: while a workload runs (on
/// either engine — the observer streams are engine-identical), it tracks
/// the active loop nest per function activation and, for every memory
/// access, which earlier-iteration accesses of each enclosing loop touched
/// the same location. A cross-iteration conflict (at least one side a
/// write) records the (loop, src-instr, dst-instr) pair as *manifested*.
///
/// Detection uses exactly the runtime validator's predicate
/// (runtime/SpecValidation.h): a pair (src, dst) manifests when src's
/// earliest access and dst's latest access at one location are in
/// different iterations with at least one write between them. Matching
/// the validator matters: any pattern the validator would flag at run
/// time is already in the profile, so an honestly-trained input never
/// misspeculates — and anything NOT in the profile is safe to assume
/// absent precisely because the validator will catch it if the
/// assumption ever breaks.
///
/// Accesses inside callees train the callee's own loops; cross-function
/// dependences surface as opaque-call queries, which the speculative
/// oracle never touches.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_PROFILING_DEPPROFILER_H
#define PSPDG_PROFILING_DEPPROFILER_H

#include "analysis/FunctionAnalysis.h"
#include "emulator/ExecCore.h"
#include "profiling/DepProfile.h"

#include <unordered_map>
#include <vector>

namespace psc {

class DepProfiler : public ExecutionObserver {
public:
  explicit DepProfiler(ModuleAnalyses &MA) : MA(MA) {}

  void onEnterFunction(const Function &F) override;
  void onExitFunction(const Function &F) override;
  void onBlockTransfer(const Function &F, const BasicBlock *From,
                       const BasicBlock *To) override;
  void onMemAccess(const Instruction &I, const MemObject &O, uint64_t Offset,
                   bool IsWrite) override;

  /// Finalizes open loop frames and returns the trained profile. The
  /// profiler is spent afterwards.
  DepProfile takeProfile();

private:
  struct LocKey {
    const MemObject *Obj;
    uint64_t Off;
    bool operator==(const LocKey &O) const {
      return Obj == O.Obj && Off == O.Off;
    }
  };
  struct LocKeyHash {
    size_t operator()(const LocKey &K) const {
      return std::hash<const void *>()(K.Obj) * 1000003u ^
             std::hash<uint64_t>()(K.Off);
    }
  };
  /// Per-instruction first-access iterations at one location within one
  /// loop invocation (the validator's min-side of its range predicate).
  struct AccessHist {
    long FirstRead = -1;
    long FirstWrite = -1;
  };
  struct LocHist {
    std::unordered_map<unsigned, AccessHist> ByInstr;
  };
  struct LoopFrame {
    const Loop *L = nullptr;
    long Iter = 0;
    std::unordered_map<LocKey, LocHist, LocKeyHash> Table;
  };
  struct Activation {
    const Function *F = nullptr;
    const FunctionAnalysis *FA = nullptr;
    std::vector<LoopFrame> Stack;
  };

  void closeFrame(Activation &A, LoopFrame &Fr);

  ModuleAnalyses &MA;
  std::vector<Activation> Activations;
  DepProfile Profile;
};

} // namespace psc

#endif // PSPDG_PROFILING_DEPPROFILER_H
