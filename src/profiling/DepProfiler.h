//===- DepProfiler.h - Dependence + value manifestation profiler -*- C++ -*-===//
///
/// \file
/// Execution observer that trains a DepProfile: while a workload runs (on
/// either engine — the observer streams are engine-identical), it tracks
/// the active loop nest per function activation and, for every memory
/// access, which earlier-iteration accesses of each enclosing loop touched
/// the same location. A cross-iteration conflict (at least one side a
/// write) records the (loop, src-instr, dst-instr) pair as *manifested*.
///
/// Detection uses exactly the runtime validator's predicate
/// (runtime/SpecValidation.h): a pair (src, dst) manifests when src's
/// earliest access and dst's latest access at one location are in
/// different iterations with at least one write between them. Matching
/// the validator matters: any pattern the validator would flag at run
/// time is already in the profile, so an honestly-trained input never
/// misspeculates — and anything NOT in the profile is safe to assume
/// absent precisely because the validator will catch it if the
/// assumption ever breaks.
///
/// Beyond dependences, the profiler observes *values* (DESIGN.md §10):
/// per loop it records which instructions accessed memory at all (cold
/// instructions license guard-watched reduction promotion) and classifies
/// every scalar written in the loop as invariant / affine-strided /
/// write-before-read / varying, anchored at the invocation's entry value.
/// These observations back the value-speculation oracle (ValueSpec.h).
///
/// Accesses inside callees train the callee's own loops; cross-function
/// dependences surface as opaque-call queries, which the speculative
/// oracle never touches.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_PROFILING_DEPPROFILER_H
#define PSPDG_PROFILING_DEPPROFILER_H

#include "analysis/FunctionAnalysis.h"
#include "emulator/ExecCore.h"
#include "profiling/DepProfile.h"

#include <unordered_map>
#include <vector>

namespace psc {

class DepProfiler : public ExecutionObserver {
public:
  explicit DepProfiler(ModuleAnalyses &MA) : MA(MA) {}

  void onEnterFunction(const Function &F) override;
  void onExitFunction(const Function &F) override;
  void onBlockTransfer(const Function &F, const BasicBlock *From,
                       const BasicBlock *To) override;
  void onMemAccess(const Instruction &I, const MemObject &O, uint64_t Offset,
                   bool IsWrite) override;

  /// Finalizes open loop frames and returns the trained profile. The
  /// profiler is spent afterwards.
  DepProfile takeProfile();

private:
  struct LocKey {
    const MemObject *Obj;
    uint64_t Off;
    bool operator==(const LocKey &O) const {
      return Obj == O.Obj && Off == O.Off;
    }
  };
  struct LocKeyHash {
    size_t operator()(const LocKey &K) const {
      return std::hash<const void *>()(K.Obj) * 1000003u ^
             std::hash<uint64_t>()(K.Off);
    }
  };
  /// Per-instruction first-access iterations at one location within one
  /// loop invocation (the validator's min-side of its range predicate).
  struct AccessHist {
    long FirstRead = -1;
    long FirstWrite = -1;
  };
  struct LocHist {
    std::unordered_map<unsigned, AccessHist> ByInstr;
  };
  /// One scalar's value track within one loop invocation. The entry value
  /// anchors invariant/strided classification; it is only observable when
  /// the invocation's first access is a load (otherwise the classes that
  /// need it are off and only WriteFirst can hold).
  struct ValTrack {
    bool EntryKnown = false;
    bool IsFloat = false;
    int64_t EntryI = 0;
    double EntryF = 0.0;
    uint64_t Writes = 0;
    // Per-iteration last-write folding (lazy: finalized when a later
    // iteration first writes, and at frame close).
    long CurIter = -1;       ///< Iteration currently accumulating writes.
    int64_t CurI = 0;        ///< Last value written in CurIter.
    double CurF = 0.0;
    long PrevIter = -1;      ///< Last *finalized* writing iteration.
    int64_t PrevI = 0;       ///< Its final value.
    double PrevF = 0.0;
    bool StrideSet = false;
    int64_t StrideI = 0;
    double StrideF = 0.0;
    // Classification flags (start optimistic, violations clear them).
    bool InvariantOK = true;   ///< Every write stored the entry value.
    bool StridedOK = true;     ///< Consecutive-iteration stride constant.
    bool EveryIterWrote = true;///< No iteration finished without a write.
    bool WriteFirstOK = true;  ///< Every iteration's first access wrote.
    long FirstAccessIter = -1; ///< Iteration of the first access.
  };
  struct LoopFrame {
    const Loop *L = nullptr;
    long Iter = 0;
    std::unordered_map<LocKey, LocHist, LocKeyHash> Table;
    std::unordered_map<const Value *, ValTrack> Scalars;
    /// Instruction indices that accessed memory this invocation; flushed
    /// into the profile at frame close (one map lookup per invocation
    /// instead of string-keyed lookups on the interpreter's hot path).
    std::set<unsigned> Accessed;
  };
  struct Activation {
    const Function *F = nullptr;
    const FunctionAnalysis *FA = nullptr;
    std::vector<LoopFrame> Stack;
  };

  void closeFrame(Activation &A, LoopFrame &Fr);
  void finalizeWritingIter(ValTrack &T);
  uint64_t bodyHashOf(const Function &F);
  /// Root scalar storage of a load/store (null when not a direct or
  /// GEP-free scalar access); memoized per instruction.
  const Value *scalarStorageOf(const Instruction &I);

  ModuleAnalyses &MA;
  std::vector<Activation> Activations;
  DepProfile Profile;
  std::unordered_map<const Function *, uint64_t> BodyHashes;
  std::unordered_map<const Instruction *, const Value *> ScalarStorage;
};

} // namespace psc

#endif // PSPDG_PROFILING_DEPPROFILER_H
