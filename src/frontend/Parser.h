//===- Parser.h - PSC recursive-descent parser -------------------*- C++ -*-===//
///
/// \file
/// Parses a token stream into a TranslationUnit. On the first syntax error
/// parsing stops and the error is recorded; callers check hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_FRONTEND_PARSER_H
#define PSPDG_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Token.h"

#include <string>
#include <vector>

namespace psc {

/// Recursive-descent parser for PSC.
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens);

  /// Parses the whole unit. Check errors() afterwards.
  TranslationUnit parseTranslationUnit();

  bool hasErrors() const { return !Errors.empty(); }
  const std::vector<std::string> &errors() const { return Errors; }

private:
  // Token plumbing.
  const Token &peek(unsigned Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token advance();
  bool check(TokenKind K) const { return current().is(K); }
  bool accept(TokenKind K);
  bool expect(TokenKind K, const std::string &Where);
  void error(const std::string &Msg);
  bool atEnd() const;

  // Grammar productions.
  void parseTopLevel(TranslationUnit &TU);
  void parseTopLevelPragma(TranslationUnit &TU);
  FunctionDecl parseFunction(ASTType RetTy, std::string Name);
  StmtPtr parseStatement();
  StmtPtr parseBlock();
  StmtPtr parseDeclStatement();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseFor();
  StmtPtr parseReturn();
  StmtPtr parseExprOrAssign();
  StmtPtr parsePragmaStatement();
  PragmaDirective parseDirective();
  void parseClauses(PragmaDirective &D);
  std::vector<std::string> parseNameList();

  ExprPtr parseExpr();
  ExprPtr parseBinaryRHS(int MinPrec, ExprPtr LHS);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  bool parseTypeSpecifier(ASTType &Ty);

  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::vector<std::string> Errors;
};

} // namespace psc

#endif // PSPDG_FRONTEND_PARSER_H
