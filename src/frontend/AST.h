//===- AST.h - PSC abstract syntax tree --------------------------*- C++ -*-===//
///
/// \file
/// AST node classes for PSC. The tree is owned top-down via unique_ptr.
/// Pragmas parse into PragmaDirective records; loop directives wrap the
/// following `for` statement, region directives wrap the following
/// statement/block (mirroring OpenMP's structured-block rule).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_FRONTEND_AST_H
#define PSPDG_FRONTEND_AST_H

#include "ir/ParallelInfo.h"
#include "support/Casting.h"

#include <memory>
#include <string>
#include <vector>

namespace psc {

/// Source-level scalar types (arrays are a declarator property).
enum class ASTType { Int, Double, Void };

// --- Expressions -----------------------------------------------------------

class Expr {
public:
  enum class ExprKind {
    IntLit,
    FloatLit,
    Var,
    Index,
    Binary,
    Unary,
    Call
  };

  explicit Expr(ExprKind K) : Kind(K) {}
  virtual ~Expr() = default;

  ExprKind getKind() const { return Kind; }

  /// Result type; filled in by Sema.
  ASTType getASTType() const { return Ty; }
  void setASTType(ASTType T) { Ty = T; }

  unsigned Line = 0;

private:
  ExprKind Kind;
  ASTType Ty = ASTType::Int;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLitExpr : public Expr {
public:
  explicit IntLitExpr(int64_t V) : Expr(ExprKind::IntLit), Value(V) {}
  int64_t Value;
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::IntLit;
  }
};

class FloatLitExpr : public Expr {
public:
  explicit FloatLitExpr(double V) : Expr(ExprKind::FloatLit), Value(V) {}
  double Value;
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::FloatLit;
  }
};

/// Reference to a scalar variable (or a whole array when used as a call
/// argument).
class VarExpr : public Expr {
public:
  explicit VarExpr(std::string Name)
      : Expr(ExprKind::Var), Name(std::move(Name)) {}
  std::string Name;
  bool IsArrayRef = false; ///< Set by Sema when the name denotes an array.
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Var; }
};

/// Array element access a[i].
class IndexExpr : public Expr {
public:
  IndexExpr(std::string Name, ExprPtr Idx)
      : Expr(ExprKind::Index), Name(std::move(Name)), Index(std::move(Idx)) {}
  std::string Name;
  ExprPtr Index;
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Index;
  }
};

/// Binary operator. LogicalAnd/LogicalOr are strict (both sides evaluate);
/// see DESIGN.md — no short-circuit control flow in PSC.
class BinaryExpr : public Expr {
public:
  enum class Op {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    LogicalAnd,
    LogicalOr,
    EQ,
    NE,
    LT,
    LE,
    GT,
    GE
  };

  BinaryExpr(Op O, ExprPtr L, ExprPtr R)
      : Expr(ExprKind::Binary), Operator(O), LHS(std::move(L)),
        RHS(std::move(R)) {}
  Op Operator;
  ExprPtr LHS, RHS;
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Binary;
  }
};

class UnaryExpr : public Expr {
public:
  enum class Op { Neg, Not };
  UnaryExpr(Op O, ExprPtr Sub)
      : Expr(ExprKind::Unary), Operator(O), Sub(std::move(Sub)) {}
  Op Operator;
  ExprPtr Sub;
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Unary;
  }
};

class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args)
      : Expr(ExprKind::Call), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  std::string Callee;
  std::vector<ExprPtr> Args;
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Call; }
};

// --- Pragmas -----------------------------------------------------------------

/// Parsed `#pragma psc` directive with unresolved variable names; Sema
/// validates names, CodeGen resolves them into ir::Directive VarRefs.
struct PragmaDirective {
  DirectiveKind Kind = DirectiveKind::Parallel;
  std::string CriticalName;
  std::vector<std::string> Privates;
  struct Reduction {
    std::string OpName; ///< "+", "*", "min", "max", or a function name.
    std::string Var;
  };
  std::vector<Reduction> Reductions;
  std::vector<std::string> LastPrivates;
  std::vector<std::string> FirstPrivates;
  std::vector<std::string> Relaxed; ///< relaxed(x): Any-Producer live-out.
  std::vector<std::string> Shared;
  bool NoWait = false;
  bool HasOrderedClause = false;
  long ChunkSize = 0;
  unsigned Line = 0;
};

// --- Statements ---------------------------------------------------------------

class Stmt {
public:
  enum class StmtKind {
    Decl,
    Assign,
    ExprStmt,
    If,
    While,
    For,
    Return,
    Block,
    Pragma,
    Barrier,
    Spawn,
    Sync
  };

  explicit Stmt(StmtKind K) : Kind(K) {}
  virtual ~Stmt() = default;

  StmtKind getKind() const { return Kind; }
  unsigned Line = 0;

private:
  StmtKind Kind;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// Local variable declaration: `int x;`, `double a[128];`, `int n = 5;`.
class DeclStmt : public Stmt {
public:
  DeclStmt(ASTType Ty, std::string Name)
      : Stmt(StmtKind::Decl), Ty(Ty), Name(std::move(Name)) {}
  ASTType Ty;
  std::string Name;
  bool IsArray = false;
  int64_t ArraySize = 0;
  ExprPtr Init; ///< Scalar initializer, may be null.
  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::Decl; }
};

/// Assignment to a scalar variable or array element, with optional
/// compound operator (+=, -=, *=, /=).
class AssignStmt : public Stmt {
public:
  enum class Op { Set, Add, Sub, Mul, Div };
  AssignStmt(ExprPtr Target, Op O, ExprPtr Value)
      : Stmt(StmtKind::Assign), Target(std::move(Target)), Operator(O),
        Value(std::move(Value)) {}
  ExprPtr Target; ///< VarExpr or IndexExpr.
  Op Operator;
  ExprPtr Value;
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Assign;
  }
};

class ExprStmt : public Stmt {
public:
  explicit ExprStmt(ExprPtr E) : Stmt(StmtKind::ExprStmt), E(std::move(E)) {}
  ExprPtr E;
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::ExprStmt;
  }
};

class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else)
      : Stmt(StmtKind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; ///< May be null.
  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::If; }
};

class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body)
      : Stmt(StmtKind::While), Cond(std::move(Cond)), Body(std::move(Body)) {}
  ExprPtr Cond;
  StmtPtr Body;
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::While;
  }
};

/// Canonical counted loop: `for (i = Init; i REL Bound; i += Step) Body`.
/// The parser enforces that all three positions use the same variable.
class ForStmt : public Stmt {
public:
  ForStmt() : Stmt(StmtKind::For) {}
  std::string Counter;
  ExprPtr Init;
  BinaryExpr::Op Rel = BinaryExpr::Op::LT; ///< LT/LE/GT/GE/NE.
  ExprPtr Bound;
  ExprPtr Step;         ///< Amount added each iteration (negated for -=).
  bool StepIsAdd = true; ///< false for `i -= step`.
  StmtPtr Body;
  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::For; }
};

class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(ExprPtr V) : Stmt(StmtKind::Return), Value(std::move(V)) {}
  ExprPtr Value; ///< May be null for `return;`.
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Return;
  }
};

class BlockStmt : public Stmt {
public:
  BlockStmt() : Stmt(StmtKind::Block) {}
  std::vector<StmtPtr> Stmts;
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Block;
  }
};

/// A directive attached to a statement (loop directives attach to ForStmt,
/// region directives to any statement).
class PragmaStmt : public Stmt {
public:
  PragmaStmt(PragmaDirective D, StmtPtr Sub)
      : Stmt(StmtKind::Pragma), Directive(std::move(D)), Sub(std::move(Sub)) {}
  PragmaDirective Directive;
  StmtPtr Sub;
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Pragma;
  }
};

/// `#pragma psc barrier` — a standalone statement.
class BarrierStmt : public Stmt {
public:
  BarrierStmt() : Stmt(StmtKind::Barrier) {}
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Barrier;
  }
};

/// `spawn f(args);` — a Cilk-style spawned call (paper Appendix A): the
/// call may run concurrently with the continuation until the next `sync`.
class SpawnStmt : public Stmt {
public:
  explicit SpawnStmt(ExprPtr Call)
      : Stmt(StmtKind::Spawn), Call(std::move(Call)) {}
  ExprPtr Call; ///< Must be a CallExpr (checked by Sema).
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Spawn;
  }
};

/// `sync;` — joins every task spawned in the enclosing function scope.
class SyncStmt : public Stmt {
public:
  SyncStmt() : Stmt(StmtKind::Sync) {}
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Sync;
  }
};

// --- Top level -----------------------------------------------------------------

struct ParamDecl {
  ASTType Ty = ASTType::Int;
  std::string Name;
  bool IsArray = false; ///< `int a[]` — passed as pointer.
};

struct FunctionDecl {
  ASTType RetTy = ASTType::Void;
  std::string Name;
  std::vector<ParamDecl> Params;
  std::unique_ptr<BlockStmt> Body;
  unsigned Line = 0;
};

struct GlobalDecl {
  ASTType Ty = ASTType::Int;
  std::string Name;
  bool IsArray = false;
  int64_t ArraySize = 0;
  bool HasInit = false;
  double Init = 0.0;
  unsigned Line = 0;
};

/// One parsed translation unit.
struct TranslationUnit {
  std::vector<GlobalDecl> Globals;
  std::vector<FunctionDecl> Functions;
  std::vector<std::string> ThreadPrivates; ///< From top-level pragmas.
  /// `reducible(var : fn)` top-level pragmas: variable → reducer function.
  std::vector<std::pair<std::string, std::string>> Reducibles;
};

} // namespace psc

#endif // PSPDG_FRONTEND_AST_H
