//===- CodeGen.h - AST → PSC IR lowering -------------------------*- C++ -*-===//
///
/// \file
/// Lowers a semantically-valid TranslationUnit into a Module in
/// alloca+load/store form, attaching the parallel directives into the
/// module's ParallelInfo (loop directives bind to loop headers, region
/// directives become __psc_region_begin/end marker calls).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_FRONTEND_CODEGEN_H
#define PSPDG_FRONTEND_CODEGEN_H

#include "frontend/AST.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <map>
#include <memory>
#include <string>

namespace psc {

/// One-shot code generator.
class CodeGen {
public:
  /// Lowers \p TU into a fresh module named \p ModuleName. The unit must
  /// have passed Sema.
  std::unique_ptr<Module> emit(const TranslationUnit &TU,
                               const std::string &ModuleName);

private:
  Type *lowerScalarType(ASTType Ty);

  void declareFunctions(const TranslationUnit &TU);
  void emitFunction(const FunctionDecl &F);
  void collectAllocas(const Stmt *S);

  void emitStmt(const Stmt *S);
  void emitPragma(const PragmaStmt &P);
  Directive lowerDirective(const PragmaDirective &D);

  Value *emitExpr(const Expr *E);
  Value *emitExprAs(const Expr *E, ASTType Target);
  Value *convert(Value *V, ASTType From, ASTType To);
  Value *emitAddress(const Expr *Target);
  /// Base pointer for a named variable (alloca, global, or array param).
  Value *lookupStorage(const std::string &Name) const;
  /// Normalizes an i64 to 0/1 for logical operators.
  Value *emitBoolean(Value *V);

  std::unique_ptr<Module> M;
  std::unique_ptr<IRBuilder> B;
  Function *CurFn = nullptr;
  const FunctionDecl *CurDecl = nullptr;
  std::map<std::string, Value *> LocalStorage; ///< name -> alloca/arg.
  BasicBlock *LastLoopHeader = nullptr; ///< Set by emitStmt(ForStmt).
  unsigned NextBlockId = 0;

  std::string blockName(const std::string &Hint) {
    return Hint + "." + std::to_string(NextBlockId++);
  }
};

} // namespace psc

#endif // PSPDG_FRONTEND_CODEGEN_H
