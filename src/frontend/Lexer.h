//===- Lexer.h - PSC lexer ---------------------------------------*- C++ -*-===//
///
/// \file
/// Hand-written lexer for PSC. Supports `//` and `/* */` comments, decimal
/// integer and floating literals, and in-line pragma tokenization (see
/// Token.h).
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_FRONTEND_LEXER_H
#define PSPDG_FRONTEND_LEXER_H

#include "frontend/Token.h"

#include <string>
#include <vector>

namespace psc {

/// Tokenizes a PSC source buffer.
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Lexes the entire buffer; the last token is Eof (or Error on a lexical
  /// failure, with the message in Token::Text).
  std::vector<Token> lexAll();

private:
  Token next();
  Token makeToken(TokenKind K, std::string Text);
  Token errorToken(const std::string &Msg);
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();

  std::string Source;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
  bool InPragma = false;
};

} // namespace psc

#endif // PSPDG_FRONTEND_LEXER_H
