//===- Frontend.cpp -------------------------------------------*- C++ -*-===//

#include "frontend/Frontend.h"

#include "frontend/CodeGen.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "ir/Verifier.h"
#include "obs/Trace.h"
#include "support/ErrorHandling.h"

using namespace psc;

CompileResult psc::compileSource(const std::string &Source,
                                 const std::string &ModuleName) {
  obs::TraceSpan CompileSpan("compile", "module=%s", ModuleName.c_str());
  CompileResult Result;

  TranslationUnit TU;
  {
    obs::TraceSpan Span("compile.lex+parse");
    Lexer L(Source);
    Parser P(L.lexAll());
    TU = P.parseTranslationUnit();
    if (P.hasErrors()) {
      Result.Diagnostics = P.errors();
      return Result;
    }
  }

  {
    obs::TraceSpan Span("compile.sema");
    Sema S;
    Result.Diagnostics = S.analyze(TU);
    if (!Result.Diagnostics.empty())
      return Result;
  }

  std::unique_ptr<Module> M;
  {
    obs::TraceSpan Span("compile.codegen");
    CodeGen CG;
    M = CG.emit(TU, ModuleName);
  }

  {
    obs::TraceSpan Span("compile.verify");
    std::vector<std::string> VerifierErrors = verifyModule(*M);
    if (!VerifierErrors.empty()) {
      Result.Diagnostics = std::move(VerifierErrors);
      return Result;
    }
  }

  Result.M = std::move(M);
  return Result;
}

std::unique_ptr<Module> psc::compileOrDie(const std::string &Source,
                                          const std::string &ModuleName) {
  CompileResult R = compileSource(Source, ModuleName);
  if (R.ok())
    return std::move(R.M);
  std::string Msg = "PSC compilation of '" + ModuleName + "' failed:";
  for (const std::string &D : R.Diagnostics)
    Msg += "\n  " + D;
  reportFatalError(Msg);
}
