//===- Sema.h - PSC semantic analysis ----------------------------*- C++ -*-===//
///
/// \file
/// Type checks a TranslationUnit in place: resolves identifier kinds
/// (scalar / array / function), computes expression types (annotated onto
/// Expr nodes), validates assignments, calls, loop shapes, and pragma
/// clauses. PSC forbids shadowing: all variables in a function (including
/// parameters) must have distinct names, which keeps clause resolution and
/// code generation unambiguous.
///
//===----------------------------------------------------------------------===//

#ifndef PSPDG_FRONTEND_SEMA_H
#define PSPDG_FRONTEND_SEMA_H

#include "frontend/AST.h"

#include <map>
#include <string>
#include <vector>

namespace psc {

/// Semantic analyzer; one instance per translation unit.
class Sema {
public:
  /// Analyzes \p TU; returns the diagnostics (empty = success).
  std::vector<std::string> analyze(TranslationUnit &TU);

private:
  struct VarInfo {
    ASTType Ty = ASTType::Int;
    bool IsArray = false;
    bool IsParam = false;
  };

  struct FuncInfo {
    ASTType RetTy = ASTType::Void;
    std::vector<ParamDecl> Params;
  };

  void error(unsigned Line, const std::string &Msg);

  void collectTopLevel(const TranslationUnit &TU);
  void analyzeFunction(FunctionDecl &F);
  void analyzeStmt(Stmt *S);
  void analyzePragma(PragmaStmt &P);
  /// Returns the expression type, annotating the node. Reports an error and
  /// returns Int on failure.
  ASTType analyzeExpr(Expr *E, bool AllowArrayRef = false);

  const VarInfo *lookupVar(const std::string &Name) const;

  std::map<std::string, VarInfo> Globals;
  std::map<std::string, FuncInfo> Functions;
  std::map<std::string, VarInfo> Locals; ///< Current function scope.
  ASTType CurrentRetTy = ASTType::Void;
  std::vector<std::string> Diags;
};

} // namespace psc

#endif // PSPDG_FRONTEND_SEMA_H
