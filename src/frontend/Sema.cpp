//===- Sema.cpp -----------------------------------------------*- C++ -*-===//

#include "frontend/Sema.h"

#include "ir/Module.h"

#include <array>

using namespace psc;

namespace {

/// Signature of a runtime built-in visible to PSC sources.
struct BuiltinSig {
  const char *Name;
  ASTType RetTy;
  std::vector<ASTType> Params;
};

const std::vector<BuiltinSig> &builtins() {
  static const std::vector<BuiltinSig> Table = {
      {intrinsics::Print, ASTType::Void, {ASTType::Int}},
      {intrinsics::PrintF, ASTType::Void, {ASTType::Double}},
      {intrinsics::Sqrt, ASTType::Double, {ASTType::Double}},
      {intrinsics::Fabs, ASTType::Double, {ASTType::Double}},
      {intrinsics::Sin, ASTType::Double, {ASTType::Double}},
      {intrinsics::Cos, ASTType::Double, {ASTType::Double}},
      {intrinsics::Exp, ASTType::Double, {ASTType::Double}},
      {intrinsics::Log, ASTType::Double, {ASTType::Double}},
      {intrinsics::Pow, ASTType::Double, {ASTType::Double, ASTType::Double}},
      {intrinsics::IMin, ASTType::Int, {ASTType::Int, ASTType::Int}},
      {intrinsics::IMax, ASTType::Int, {ASTType::Int, ASTType::Int}},
      {intrinsics::FMin, ASTType::Double, {ASTType::Double, ASTType::Double}},
      {intrinsics::FMax, ASTType::Double, {ASTType::Double, ASTType::Double}},
      {intrinsics::Lcg, ASTType::Int, {ASTType::Int}},
  };
  return Table;
}

const BuiltinSig *lookupBuiltin(const std::string &Name) {
  for (const BuiltinSig &B : builtins())
    if (Name == B.Name)
      return &B;
  return nullptr;
}

bool isIntOnlyOp(BinaryExpr::Op Op) {
  switch (Op) {
  case BinaryExpr::Op::Rem:
  case BinaryExpr::Op::BitAnd:
  case BinaryExpr::Op::BitOr:
  case BinaryExpr::Op::BitXor:
  case BinaryExpr::Op::Shl:
  case BinaryExpr::Op::Shr:
    return true;
  default:
    return false;
  }
}

bool isComparison(BinaryExpr::Op Op) {
  switch (Op) {
  case BinaryExpr::Op::EQ:
  case BinaryExpr::Op::NE:
  case BinaryExpr::Op::LT:
  case BinaryExpr::Op::LE:
  case BinaryExpr::Op::GT:
  case BinaryExpr::Op::GE:
    return true;
  default:
    return false;
  }
}

bool isLogical(BinaryExpr::Op Op) {
  return Op == BinaryExpr::Op::LogicalAnd || Op == BinaryExpr::Op::LogicalOr;
}

} // namespace

void Sema::error(unsigned Line, const std::string &Msg) {
  Diags.push_back("line " + std::to_string(Line) + ": " + Msg);
}

const Sema::VarInfo *Sema::lookupVar(const std::string &Name) const {
  auto It = Locals.find(Name);
  if (It != Locals.end())
    return &It->second;
  auto GIt = Globals.find(Name);
  if (GIt != Globals.end())
    return &GIt->second;
  return nullptr;
}

std::vector<std::string> Sema::analyze(TranslationUnit &TU) {
  collectTopLevel(TU);
  for (FunctionDecl &F : TU.Functions)
    analyzeFunction(F);

  // threadprivate/reducible pragmas must reference globals.
  for (const std::string &V : TU.ThreadPrivates)
    if (!Globals.count(V))
      Diags.push_back("threadprivate variable '" + V + "' is not a global");
  for (auto &[Var, Fn] : TU.Reducibles) {
    if (!Globals.count(Var))
      Diags.push_back("reducible variable '" + Var + "' is not a global");
    if (!Functions.count(Fn))
      Diags.push_back("reducer function '" + Fn + "' is not defined");
  }
  return std::move(Diags);
}

void Sema::collectTopLevel(const TranslationUnit &TU) {
  for (const GlobalDecl &G : TU.Globals) {
    if (Globals.count(G.Name) || Functions.count(G.Name)) {
      error(G.Line, "redefinition of '" + G.Name + "'");
      continue;
    }
    Globals[G.Name] = {G.Ty, G.IsArray, false};
  }
  for (const FunctionDecl &F : TU.Functions) {
    if (Functions.count(F.Name) || Globals.count(F.Name) ||
        lookupBuiltin(F.Name)) {
      error(F.Line, "redefinition of '" + F.Name + "'");
      continue;
    }
    Functions[F.Name] = {F.RetTy, F.Params};
  }
}

void Sema::analyzeFunction(FunctionDecl &F) {
  Locals.clear();
  CurrentRetTy = F.RetTy;
  for (const ParamDecl &P : F.Params) {
    if (Locals.count(P.Name)) {
      error(F.Line, "duplicate parameter '" + P.Name + "'");
      continue;
    }
    Locals[P.Name] = {P.Ty, P.IsArray, true};
  }
  if (F.Body)
    analyzeStmt(F.Body.get());
}

void Sema::analyzeStmt(Stmt *S) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::StmtKind::Decl: {
    auto *D = cast<DeclStmt>(S);
    if (Locals.count(D->Name)) {
      error(D->Line, "redeclaration of '" + D->Name +
                         "' (PSC forbids shadowing)");
      return;
    }
    if (Globals.count(D->Name))
      error(D->Line, "local '" + D->Name + "' shadows a global");
    if (D->IsArray && D->ArraySize <= 0)
      error(D->Line, "array size must be positive");
    Locals[D->Name] = {D->Ty, D->IsArray, false};
    if (D->Init) {
      if (D->IsArray) {
        error(D->Line, "array declarations cannot have initializers");
        return;
      }
      analyzeExpr(D->Init.get());
    }
    return;
  }
  case Stmt::StmtKind::Assign: {
    auto *A = cast<AssignStmt>(S);
    ASTType TargetTy = analyzeExpr(A->Target.get());
    if (auto *V = dyn_cast<VarExpr>(A->Target.get())) {
      const VarInfo *VI = lookupVar(V->Name);
      if (VI && VI->IsArray) {
        error(A->Line, "cannot assign to array '" + V->Name + "'");
        return;
      }
    }
    ASTType ValueTy = analyzeExpr(A->Value.get());
    (void)TargetTy;
    (void)ValueTy; // implicit int<->double conversion is allowed
    return;
  }
  case Stmt::StmtKind::ExprStmt:
    analyzeExpr(cast<ExprStmt>(S)->E.get());
    return;
  case Stmt::StmtKind::If: {
    auto *I = cast<IfStmt>(S);
    if (analyzeExpr(I->Cond.get()) != ASTType::Int)
      error(I->Line, "if condition must be an integer expression");
    analyzeStmt(I->Then.get());
    analyzeStmt(I->Else.get());
    return;
  }
  case Stmt::StmtKind::While: {
    auto *W = cast<WhileStmt>(S);
    if (analyzeExpr(W->Cond.get()) != ASTType::Int)
      error(W->Line, "while condition must be an integer expression");
    analyzeStmt(W->Body.get());
    return;
  }
  case Stmt::StmtKind::For: {
    auto *F = cast<ForStmt>(S);
    const VarInfo *VI = lookupVar(F->Counter);
    if (!VI)
      error(F->Line, "undeclared loop counter '" + F->Counter + "'");
    else if (VI->Ty != ASTType::Int || VI->IsArray)
      error(F->Line, "loop counter '" + F->Counter +
                         "' must be a scalar int");
    analyzeExpr(F->Init.get());
    analyzeExpr(F->Bound.get());
    analyzeExpr(F->Step.get());
    analyzeStmt(F->Body.get());
    return;
  }
  case Stmt::StmtKind::Return: {
    auto *R = cast<ReturnStmt>(S);
    if (R->Value) {
      if (CurrentRetTy == ASTType::Void) {
        error(R->Line, "void function cannot return a value");
        return;
      }
      analyzeExpr(R->Value.get());
    } else if (CurrentRetTy != ASTType::Void) {
      error(R->Line, "non-void function must return a value");
    }
    return;
  }
  case Stmt::StmtKind::Block:
    for (StmtPtr &Sub : cast<BlockStmt>(S)->Stmts)
      analyzeStmt(Sub.get());
    return;
  case Stmt::StmtKind::Pragma:
    analyzePragma(*cast<PragmaStmt>(S));
    return;
  case Stmt::StmtKind::Barrier:
    return;
  case Stmt::StmtKind::Spawn: {
    auto *Sp = cast<SpawnStmt>(S);
    auto *Call = dyn_cast_or_null<CallExpr>(Sp->Call.get());
    if (!Call) {
      error(Sp->Line, "spawn requires a function call");
      return;
    }
    if (!Functions.count(Call->Callee)) {
      error(Sp->Line, "spawned function '" + Call->Callee +
                          "' must be a defined function");
      return;
    }
    analyzeExpr(Sp->Call.get());
    return;
  }
  case Stmt::StmtKind::Sync:
    return;
  }
}

void Sema::analyzePragma(PragmaStmt &P) {
  const PragmaDirective &D = P.Directive;
  auto CheckVars = [&](const std::vector<std::string> &Names,
                       const char *Clause) {
    for (const std::string &N : Names)
      if (!lookupVar(N))
        error(D.Line, std::string("variable '") + N + "' in " + Clause +
                          " clause is not declared");
  };
  CheckVars(D.Privates, "private");
  CheckVars(D.FirstPrivates, "firstprivate");
  CheckVars(D.LastPrivates, "lastprivate");
  CheckVars(D.Relaxed, "relaxed");
  CheckVars(D.Shared, "shared");
  for (const PragmaDirective::Reduction &R : D.Reductions) {
    if (!lookupVar(R.Var))
      error(D.Line,
            "reduction variable '" + R.Var + "' is not declared");
    bool KnownOp = R.OpName == "+" || R.OpName == "*" || R.OpName == "min" ||
                   R.OpName == "max";
    if (!KnownOp && !Functions.count(R.OpName))
      error(D.Line, "unknown reduction operator/function '" + R.OpName + "'");
  }
  analyzeStmt(P.Sub.get());
}

ASTType Sema::analyzeExpr(Expr *E, bool AllowArrayRef) {
  if (!E)
    return ASTType::Int;
  switch (E->getKind()) {
  case Expr::ExprKind::IntLit:
    E->setASTType(ASTType::Int);
    return ASTType::Int;
  case Expr::ExprKind::FloatLit:
    E->setASTType(ASTType::Double);
    return ASTType::Double;
  case Expr::ExprKind::Var: {
    auto *V = cast<VarExpr>(E);
    const VarInfo *VI = lookupVar(V->Name);
    if (!VI) {
      error(E->Line, "undeclared variable '" + V->Name + "'");
      E->setASTType(ASTType::Int);
      return ASTType::Int;
    }
    if (VI->IsArray) {
      V->IsArrayRef = true;
      if (!AllowArrayRef)
        error(E->Line, "array '" + V->Name +
                           "' used as a scalar (index it or pass it to a "
                           "function)");
    }
    E->setASTType(VI->Ty);
    return VI->Ty;
  }
  case Expr::ExprKind::Index: {
    auto *I = cast<IndexExpr>(E);
    const VarInfo *VI = lookupVar(I->Name);
    if (!VI) {
      error(E->Line, "undeclared array '" + I->Name + "'");
      E->setASTType(ASTType::Int);
      return ASTType::Int;
    }
    if (!VI->IsArray)
      error(E->Line, "'" + I->Name + "' is not an array");
    if (analyzeExpr(I->Index.get()) != ASTType::Int)
      error(E->Line, "array index must be an integer");
    E->setASTType(VI->Ty);
    return VI->Ty;
  }
  case Expr::ExprKind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    ASTType L = analyzeExpr(B->LHS.get());
    ASTType R = analyzeExpr(B->RHS.get());
    if (isIntOnlyOp(B->Operator) || isLogical(B->Operator)) {
      if (L != ASTType::Int || R != ASTType::Int)
        error(E->Line, "operator requires integer operands");
      E->setASTType(ASTType::Int);
      return ASTType::Int;
    }
    if (isComparison(B->Operator)) {
      E->setASTType(ASTType::Int);
      return ASTType::Int;
    }
    ASTType Ty = (L == ASTType::Double || R == ASTType::Double)
                     ? ASTType::Double
                     : ASTType::Int;
    E->setASTType(Ty);
    return Ty;
  }
  case Expr::ExprKind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    ASTType SubTy = analyzeExpr(U->Sub.get());
    if (U->Operator == UnaryExpr::Op::Not) {
      if (SubTy != ASTType::Int)
        error(E->Line, "'!' requires an integer operand");
      E->setASTType(ASTType::Int);
      return ASTType::Int;
    }
    E->setASTType(SubTy);
    return SubTy;
  }
  case Expr::ExprKind::Call: {
    auto *C = cast<CallExpr>(E);
    // Builtins first.
    if (const BuiltinSig *B = lookupBuiltin(C->Callee)) {
      if (C->Args.size() != B->Params.size())
        error(E->Line, "wrong number of arguments to '" + C->Callee + "'");
      for (ExprPtr &A : C->Args)
        analyzeExpr(A.get());
      E->setASTType(B->RetTy);
      return B->RetTy;
    }
    auto It = Functions.find(C->Callee);
    if (It == Functions.end()) {
      error(E->Line, "call to undefined function '" + C->Callee + "'");
      E->setASTType(ASTType::Int);
      return ASTType::Int;
    }
    const FuncInfo &FI = It->second;
    if (C->Args.size() != FI.Params.size()) {
      error(E->Line, "wrong number of arguments to '" + C->Callee + "'");
    } else {
      for (size_t I = 0; I < C->Args.size(); ++I) {
        ASTType ArgTy = analyzeExpr(C->Args[I].get(),
                                    /*AllowArrayRef=*/FI.Params[I].IsArray);
        const ParamDecl &P = FI.Params[I];
        if (P.IsArray) {
          auto *V = dyn_cast<VarExpr>(C->Args[I].get());
          if (!V || !V->IsArrayRef)
            error(E->Line, "argument " + std::to_string(I + 1) + " of '" +
                               C->Callee + "' must be an array");
          else if (ArgTy != P.Ty)
            error(E->Line, "array element type mismatch in call to '" +
                               C->Callee + "'");
        }
      }
    }
    E->setASTType(FI.RetTy);
    return FI.RetTy;
  }
  }
  return ASTType::Int;
}
